// Package loadgen is a deterministic open-loop load generator for the
// topobench evaluation service. It drives POST /v1/eval with a seeded,
// precomputed request schedule — zipf-popular keys from a warm universe
// mixed with a configurable fraction of never-seen grids — and reports
// throughput and latency percentiles.
//
// Two properties matter for a benchmark harness:
//
//   - Determinism: the entire arrival schedule (times, key choices, miss
//     placements) is derived from the seed before the first request is
//     sent, so two runs against the same server issue byte-identical
//     request sequences. Only the measured latencies differ.
//
//   - Open loop: requests are scheduled at fixed arrival times (rate
//     requests/second) regardless of how fast the server answers, and
//     latency is measured from the SCHEDULED arrival, not from the moment
//     a connection became free. A server that falls behind therefore
//     shows the queueing delay it actually inflicts — the coordinated-
//     omission-free number — instead of the flattering closed-loop one.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Config parameterizes one load run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Universe holds the warm grid lines, most-popular first: request i
	// draws its grid by zipf rank over this slice.
	Universe []string
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Duration is the measured window; Rate*Duration requests are
	// scheduled.
	Duration time.Duration
	// Conns bounds concurrent in-flight requests (worker goroutines, each
	// with its own keep-alive connection). Defaults to 8.
	Conns int
	// Seed feeds the RNG that fixes the whole schedule. Same seed, same
	// universe, same rate → identical request sequence.
	Seed int64
	// ZipfS/ZipfV shape key popularity (rand.NewZipf; S > 1, V >= 1).
	// Zero values default to S=1.2, V=1.
	ZipfS, ZipfV float64
	// MissFrac in [0,1] is the fraction of requests redirected to fresh
	// never-seen grids produced by MissGrid. Zero → pure warm load.
	MissFrac float64
	// MissGrid returns the i-th distinct cold grid line. Required when
	// MissFrac > 0.
	MissGrid func(i int) string
	// Prime, when set, synchronously evaluates every universe grid once
	// before the measured window opens, so the warm mix measures the serve
	// path rather than first-touch solves.
	Prime bool
	// Client overrides the HTTP client (defaults to one with Conns
	// keep-alive connections to the host).
	Client *http.Client
}

// Result is one run's outcome.
type Result struct {
	Requests int           `json:"requests"`
	Errors   int           `json:"errors"`
	Statuses map[int]int   `json:"statuses"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	RPS      float64       `json:"rps"`
	// Percentiles of open-loop latency: time from scheduled arrival to
	// response fully read.
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
	// Slowest are the worst requests of the run — those at or above the
	// P99 latency — worst first, each carrying the trace id the server
	// echoed in X-Trace-Id (empty when the request was neither sampled
	// nor slow-captured server-side). This closes the loop between the
	// harness and GET /debug/traces: the tail's trace ids are right in
	// the report.
	Slowest []SlowRequest `json:"slowest,omitempty"`
}

// SlowRequest identifies one of the run's slowest requests.
type SlowRequest struct {
	Grid    string        `json:"grid"`
	Status  int           `json:"status"`
	Latency time.Duration `json:"latency_ns"`
	TraceID string        `json:"trace_id,omitempty"`
}

// slowTrack bounds how many candidate slow requests each worker retains;
// the merged candidates are filtered to >= P99 after the run.
const slowTrack = 8

// noteSlow keeps the top-slowTrack requests by latency: append while
// under the bound, then displace the current minimum.
func noteSlow(slow []SlowRequest, r SlowRequest) []SlowRequest {
	if len(slow) < slowTrack {
		return append(slow, r)
	}
	min := 0
	for i := 1; i < len(slow); i++ {
		if slow[i].Latency < slow[min].Latency {
			min = i
		}
	}
	if r.Latency > slow[min].Latency {
		slow[min] = r
	}
	return slow
}

type arrival struct {
	at   time.Duration
	grid string
}

// Run executes the configured load against the server and blocks until
// every scheduled request finished (or ctx is canceled — the partial
// result is still returned).
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if len(cfg.Universe) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty universe")
	}
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("loadgen: rate and duration must be positive")
	}
	if cfg.MissFrac > 0 && cfg.MissGrid == nil {
		return Result{}, fmt.Errorf("loadgen: MissFrac > 0 needs MissGrid")
	}
	conns := cfg.Conns
	if conns <= 0 {
		conns = 8
	}
	zs, zv := cfg.ZipfS, cfg.ZipfV
	if zs == 0 {
		zs = 1.2
	}
	if zv == 0 {
		zv = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: conns,
			MaxConnsPerHost:     conns,
		}}
	}

	// The whole schedule is fixed up front: arrival times on an exact
	// 1/Rate grid, key ranks and miss placements drawn from the seeded RNG
	// in request order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, zs, zv, uint64(len(cfg.Universe)-1))
	n := int(cfg.Rate * cfg.Duration.Seconds())
	if n < 1 {
		n = 1
	}
	plan := make([]arrival, n)
	missN := 0
	for i := range plan {
		at := time.Duration(float64(i) / cfg.Rate * float64(time.Second))
		grid := cfg.Universe[zipf.Uint64()]
		if cfg.MissFrac > 0 && rng.Float64() < cfg.MissFrac {
			grid = cfg.MissGrid(missN)
			missN++
		}
		plan[i] = arrival{at: at, grid: grid}
	}

	if cfg.Prime {
		for _, grid := range cfg.Universe {
			status, _, err := post(ctx, client, cfg.BaseURL, grid)
			if err != nil {
				return Result{}, fmt.Errorf("loadgen: priming %q: %w", grid, err)
			}
			if status != http.StatusOK {
				return Result{}, fmt.Errorf("loadgen: priming %q: status %d", grid, status)
			}
		}
	}

	work := make(chan arrival, n)
	for _, a := range plan {
		work <- a
	}
	close(work)

	type shard struct {
		lat      []time.Duration
		statuses map[int]int
		errs     int
		slow     []SlowRequest
	}
	shards := make([]shard, conns)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.statuses = map[int]int{}
			for a := range work {
				due := t0.Add(a.at)
				if d := time.Until(due); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				if ctx.Err() != nil {
					return
				}
				status, traceID, err := post(ctx, client, cfg.BaseURL, a.grid)
				if err != nil {
					sh.errs++
					continue
				}
				sh.statuses[status]++
				lat := time.Since(due)
				sh.lat = append(sh.lat, lat)
				sh.slow = noteSlow(sh.slow, SlowRequest{
					Grid: a.grid, Status: status, Latency: lat, TraceID: traceID})
			}
		}(&shards[w])
	}
	wg.Wait()
	elapsed := time.Since(t0)

	res := Result{Statuses: map[int]int{}, Elapsed: elapsed}
	var lat []time.Duration
	var slow []SlowRequest
	for _, sh := range shards {
		res.Errors += sh.errs
		for st, c := range sh.statuses {
			res.Statuses[st] += c
			res.Requests += c
		}
		lat = append(lat, sh.lat...)
		slow = append(slow, sh.slow...)
	}
	res.Requests += res.Errors
	if elapsed > 0 {
		res.RPS = float64(res.Requests) / elapsed.Seconds()
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50 = percentile(lat, 0.50)
	res.P95 = percentile(lat, 0.95)
	res.P99 = percentile(lat, 0.99)
	// The tail report: every retained candidate at or above P99, worst
	// first, capped so a long run stays a short report.
	sort.Slice(slow, func(i, j int) bool { return slow[i].Latency > slow[j].Latency })
	for _, r := range slow {
		if r.Latency < res.P99 || len(res.Slowest) >= slowTrack {
			break
		}
		res.Slowest = append(res.Slowest, r)
	}
	return res, ctx.Err()
}

// post sends one eval request and drains the response; the body content
// is irrelevant to the generator — only the status, the completion time,
// and the X-Trace-Id the server echoed for sampled or slow-captured
// requests matter.
func post(ctx context.Context, client *http.Client, baseURL, grid string) (int, string, error) {
	body, err := json.Marshal(struct {
		Grid string `json:"grid"`
	}{grid})
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Trace-Id"), nil
}

// percentile returns the p-th percentile (nearest-rank) of sorted
// latencies, 0 for an empty set.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
