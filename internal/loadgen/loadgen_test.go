package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// recordingServer answers every eval with 200 and records the grid of
// each request in arrival order.
func recordingServer(t *testing.T) (*httptest.Server, func() []string) {
	t.Helper()
	var (
		mu    sync.Mutex
		grids []string
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Grid string `json:"grid"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		grids = append(grids, req.Grid)
		mu.Unlock()
		w.Write([]byte("{}\n"))
	}))
	t.Cleanup(srv.Close)
	return srv, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), grids...)
	}
}

func universe(n int) []string {
	u := make([]string, n)
	for i := range u {
		u[i] = fmt.Sprintf("grid-%d", i)
	}
	return u
}

// TestDeterministicSchedule runs the same seed twice (single connection,
// so server-side arrival order is the schedule order) and demands the two
// request sequences be identical — the property the benchmark harness is
// built on.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []string {
		srv, got := recordingServer(t)
		cfg := Config{
			BaseURL:  srv.URL,
			Universe: universe(8),
			Rate:     1000,
			Duration: 100 * time.Millisecond,
			Conns:    1,
			Seed:     42,
			MissFrac: 0.3,
			MissGrid: func(i int) string { return fmt.Sprintf("miss-%d", i) },
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("errors: %d", res.Errors)
		}
		if res.Requests != 100 {
			t.Fatalf("requests: got %d want 100", res.Requests)
		}
		return got()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different request sequences:\n%v\n%v", a, b)
	}
	warm, miss := 0, 0
	for _, g := range a {
		if len(g) >= 5 && g[:5] == "miss-" {
			miss++
		} else {
			warm++
		}
	}
	if miss == 0 || warm == 0 {
		t.Fatalf("expected a warm/miss mix, got %d warm %d miss", warm, miss)
	}
}

// TestPrime evaluates every universe key once before the measured window.
func TestPrime(t *testing.T) {
	srv, got := recordingServer(t)
	u := universe(5)
	_, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Universe: u,
		Rate:     100,
		Duration: 10 * time.Millisecond,
		Conns:    2,
		Seed:     1,
		Prime:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	grids := got()
	if len(grids) < len(u) {
		t.Fatalf("got %d requests, want at least the %d priming ones", len(grids), len(u))
	}
	if !reflect.DeepEqual(grids[:len(u)], u) {
		t.Fatalf("priming order: got %v want %v", grids[:len(u)], u)
	}
}

// TestStatusesAndRPS checks counting of non-200 answers.
func TestStatusesAndRPS(t *testing.T) {
	var n int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		reject := n%2 == 0
		mu.Unlock()
		if reject {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte("{}\n"))
	}))
	defer srv.Close()
	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Universe: universe(2),
		Rate:     1000,
		Duration: 50 * time.Millisecond,
		Conns:    4,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 {
		t.Fatalf("requests: %d", res.Requests)
	}
	if res.Statuses[http.StatusOK]+res.Statuses[http.StatusTooManyRequests] != 50 {
		t.Fatalf("statuses: %v", res.Statuses)
	}
	if res.RPS <= 0 {
		t.Fatalf("rps: %g", res.RPS)
	}
	if res.P50 <= 0 || res.P99 < res.P95 || res.P95 < res.P50 {
		t.Fatalf("percentile ordering: p50=%s p95=%s p99=%s", res.P50, res.P95, res.P99)
	}
}

// TestSlowestCarriesTraceIDs runs against a server that echoes a
// distinct X-Trace-Id per request and checks the tail report: entries
// are worst-first, all at or above P99, bounded, and each carries the
// trace id the server handed back for that exact request.
func TestSlowestCarriesTraceIDs(t *testing.T) {
	var (
		mu     sync.Mutex
		n      int
		traces = map[string]string{} // trace id -> grid
	)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Grid string `json:"grid"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		mu.Lock()
		n++
		id := fmt.Sprintf("%032x", n)
		traces[id] = req.Grid
		mu.Unlock()
		w.Header().Set("X-Trace-Id", id)
		w.Write([]byte("{}\n"))
	}))
	defer srv.Close()

	res, err := Run(context.Background(), Config{
		BaseURL:  srv.URL,
		Universe: universe(4),
		Rate:     1000,
		Duration: 100 * time.Millisecond,
		Conns:    4,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slowest) == 0 {
		t.Fatal("no slowest entries despite per-request latencies")
	}
	if len(res.Slowest) > slowTrack {
		t.Fatalf("slowest list unbounded: %d entries", len(res.Slowest))
	}
	for i, sr := range res.Slowest {
		if i > 0 && sr.Latency > res.Slowest[i-1].Latency {
			t.Errorf("slowest not worst-first at %d: %s > %s", i, sr.Latency, res.Slowest[i-1].Latency)
		}
		if sr.Latency < res.P99 {
			t.Errorf("entry %d below P99: %s < %s", i, sr.Latency, res.P99)
		}
		if sr.TraceID == "" {
			t.Errorf("entry %d: no trace id recorded", i)
			continue
		}
		mu.Lock()
		grid, ok := traces[sr.TraceID]
		mu.Unlock()
		if !ok {
			t.Errorf("entry %d: trace id %s never issued by the server", i, sr.TraceID)
		} else if grid != sr.Grid {
			t.Errorf("entry %d: trace %s was for grid %q, report says %q", i, sr.TraceID, grid, sr.Grid)
		}
	}
}

// TestNoteSlow pins the bounded top-K behavior: append under the bound,
// displace the minimum above it, ignore anything not beating it.
func TestNoteSlow(t *testing.T) {
	var slow []SlowRequest
	for i := 1; i <= slowTrack; i++ {
		slow = noteSlow(slow, SlowRequest{Latency: time.Duration(i)})
	}
	if len(slow) != slowTrack {
		t.Fatalf("len %d want %d", len(slow), slowTrack)
	}
	// Not beating the min: unchanged.
	slow = noteSlow(slow, SlowRequest{Latency: 1})
	minLat := slow[0].Latency
	for _, r := range slow {
		if r.Latency < minLat {
			minLat = r.Latency
		}
	}
	if minLat != 1 {
		t.Fatalf("min displaced by an equal entry: %d", minLat)
	}
	// Beating the min: 1 leaves, 100 enters, bound holds.
	slow = noteSlow(slow, SlowRequest{Latency: 100})
	if len(slow) != slowTrack {
		t.Fatalf("bound broken: %d", len(slow))
	}
	has100, has1 := false, false
	for _, r := range slow {
		if r.Latency == 100 {
			has100 = true
		}
		if r.Latency == 1 {
			has1 = true
		}
	}
	if !has100 || has1 {
		t.Fatalf("displacement wrong: has100=%v has1=%v (%v)", has100, has1, slow)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lat, 0.50); got != 5 {
		t.Fatalf("p50: %d", got)
	}
	if got := percentile(lat, 0.99); got != 10 {
		t.Fatalf("p99: %d", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty: %d", got)
	}
}

// TestConfigValidation rejects configs the generator cannot honor.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{BaseURL: "http://x"},
		{BaseURL: "http://x", Universe: []string{"g"}},
		{BaseURL: "http://x", Universe: []string{"g"}, Rate: 10, Duration: time.Second, MissFrac: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
