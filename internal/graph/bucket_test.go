package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomLenGraph builds a connected-ish random multigraph with n nodes and
// random positive lengths drawn from [lo, hi).
func randomLenGraph(rng *rand.Rand, n int, extra int, lo, hi float64) (*Graph, []float64) {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddLink(rng.Intn(i), i, 1)
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddLink(u, v, 1)
		}
	}
	lens := make([]float64, g.NumArcs())
	for a := range lens {
		lens[a] = lo + (hi-lo)*rng.Float64()
	}
	return g, lens
}

func compareTrees(t *testing.T, ctx string, g *Graph, heap, bucket *DijkstraScratch) {
	t.Helper()
	for v := 0; v < g.N(); v++ {
		if heap.Dist(v) != bucket.Dist(v) {
			t.Fatalf("%s: dist[%d]: heap %v, bucket %v", ctx, v, heap.Dist(v), bucket.Dist(v))
		}
		if heap.Via(v) != bucket.Via(v) {
			t.Fatalf("%s: via[%d]: heap %d, bucket %d", ctx, v, heap.Via(v), bucket.Via(v))
		}
	}
}

// TestRunBucketedMatchesHeap: full runs over random graphs with random
// lengths must be bit-identical to the heap path (random lengths make
// shortest paths unique with probability 1).
func TestRunBucketedMatchesHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(60)
		g, lens := randomLenGraph(rng, n, rng.Intn(3*n), 0.1, 1.1)
		minLen, _ := LengthRange(lens)
		delta := minLen * (0.2 + 0.8*rng.Float64())
		src := rng.Intn(n)
		dh, db := g.NewDijkstraScratch(), g.NewDijkstraScratch()
		dh.Run(src, lens, nil)
		db.RunBucketed(src, lens, nil, delta)
		compareTrees(t, "full", g, dh, db)
		if !db.complete {
			t.Fatal("full bucketed run not marked complete")
		}
	}
}

// TestRunBucketedTargets: the early-exit contract matches the heap path —
// targets (and hence every node on a shortest path to them) are final.
func TestRunBucketedTargets(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(50)
		g, lens := randomLenGraph(rng, n, rng.Intn(2*n), 0.5, 2.0)
		minLen, _ := LengthRange(lens)
		src := rng.Intn(n)
		var targets []int32
		for len(targets) < 1+rng.Intn(4) {
			if v := rng.Intn(n); v != src {
				targets = append(targets, int32(v))
			}
		}
		dh, db := g.NewDijkstraScratch(), g.NewDijkstraScratch()
		dh.Run(src, lens, nil) // full reference run
		db.RunBucketed(src, lens, targets, minLen)
		for _, v := range targets {
			if db.Dist(int(v)) != dh.Dist(int(v)) {
				t.Fatalf("target %d: bucket dist %v, reference %v", v, db.Dist(int(v)), dh.Dist(int(v)))
			}
			// The whole root path must be walkable and final.
			at := int(v)
			for at != src {
				a := db.Via(at)
				if a < 0 {
					t.Fatalf("target %d: root path broken at %d", v, at)
				}
				if db.Dist(at) != dh.Dist(at) {
					t.Fatalf("path node %d: bucket dist %v, reference %v", at, db.Dist(at), dh.Dist(at))
				}
				at = int(g.Arc(int(a)).From)
			}
		}
		// An early-exited bucket run must refuse Repair, like the heap path.
		if db.complete && len(targets) < n-1 {
			// complete can legitimately be true if targets covered the run;
			// only assert the refusal when the run actually broke early.
			continue
		}
		if db.RepairStale(lens, func(int32) bool { return true }, 0) && !db.complete {
			t.Fatal("early-exited bucketed run accepted a repair")
		}
	}
}

// TestRunBucketedWideRange: a length spread far beyond the resident window
// forces overflow rebases; results must stay exact.
func TestRunBucketedWideRange(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(40)
		g, lens := randomLenGraph(rng, n, rng.Intn(n), 1, 2)
		// Stretch a random subset of arcs by up to 10^4: with delta = minLen
		// their relaxations land thousands of buckets out, exercising the
		// overflow path.
		for a := range lens {
			if rng.Intn(3) == 0 {
				lens[a] *= math.Pow(10, 1+3*rng.Float64())
			}
		}
		minLen, _ := LengthRange(lens)
		src := rng.Intn(n)
		dh, db := g.NewDijkstraScratch(), g.NewDijkstraScratch()
		dh.Run(src, lens, nil)
		db.RunBucketed(src, lens, nil, minLen)
		compareTrees(t, "wide", g, dh, db)
	}
}

// TestRunBucketedReuse: one scratch must survive interleaved heap and
// bucket runs (the solver switches per phase) and repairs after either.
func TestRunBucketedReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g, lens := randomLenGraph(rng, 40, 60, 0.2, 1.0)
	ref := g.NewDijkstraScratch()
	d := g.NewDijkstraScratch()
	for round := 0; round < 30; round++ {
		src := rng.Intn(g.N())
		minLen, _ := LengthRange(lens)
		ref.Run(src, lens, nil)
		if round%2 == 0 {
			d.RunBucketed(src, lens, nil, minLen)
		} else {
			d.Run(src, lens, nil)
		}
		compareTrees(t, "reuse", g, ref, d)
		// Grow a few lengths and repair the (complete) tree in place.
		var changed []int32
		for k := 0; k < 5; k++ {
			a := int32(rng.Intn(g.NumArcs()))
			lens[a] *= 1 + 0.2*rng.Float64()
			changed = append(changed, a)
		}
		if !d.Repair(lens, changed) {
			t.Fatalf("round %d: repair refused after %s run", round, map[bool]string{true: "bucketed", false: "heap"}[round%2 == 0])
		}
		ref.Run(src, lens, nil)
		compareTrees(t, "post-repair", g, ref, d)
	}
}

// TestRunBucketedFallback: a non-positive or NaN delta must transparently
// fall back to the heap path.
func TestRunBucketedFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, lens := randomLenGraph(rng, 20, 10, 0.5, 1.5)
	ref := g.NewDijkstraScratch()
	ref.Run(3, lens, nil)
	for _, delta := range []float64{0, -1, math.NaN()} {
		d := g.NewDijkstraScratch()
		d.RunBucketed(3, lens, nil, delta)
		compareTrees(t, "fallback", g, ref, d)
	}
}

// TestLengthRange covers the helper's edge cases.
func TestLengthRange(t *testing.T) {
	for _, c := range []struct {
		in          []float64
		minPos, max float64
	}{
		{nil, 0, 0},
		{[]float64{0, 0}, 0, 0},
		{[]float64{3, 1, 2}, 1, 3},
		{[]float64{0, 5, 0.5}, 0.5, 5},
	} {
		minPos, max := LengthRange(c.in)
		if minPos != c.minPos || max != c.max {
			t.Fatalf("LengthRange(%v) = (%v, %v), want (%v, %v)", c.in, minPos, max, c.minPos, c.max)
		}
	}
}

func BenchmarkBucketVsHeap(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, lens := randomLenGraph(rng, 400, 1000, 1.0, 1.01)
	minLen, _ := LengthRange(lens)
	d := g.NewDijkstraScratch()
	b.Run("heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Run(0, lens, nil)
		}
	})
	b.Run("bucket", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.RunBucketed(0, lens, nil, minLen)
		}
	})
}

// TestRunBucketedZeroLengthArc: a zero-length (or generally < delta) arc
// voids the within-bucket finality argument; the run must detect it, bail
// to the heap, and still produce exact results — including under early
// exit, where an unguarded bucket run would settle the target at a
// non-shortest distance.
func TestRunBucketedZeroLengthArc(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1) // arcs 0,1: len 1
	g.AddLink(0, 2, 1) // arcs 2,3: len 1.5
	g.AddLink(1, 2, 1) // arcs 4,5: len 0
	lens := []float64{1, 1, 1.5, 1.5, 0, 0}
	ref := g.NewDijkstraScratch()
	ref.Run(0, lens, nil)
	if ref.Dist(2) != 1.0 {
		t.Fatalf("reference dist(2) = %v, want 1 (via the zero arc)", ref.Dist(2))
	}
	for _, targets := range [][]int32{nil, {2}} {
		d := g.NewDijkstraScratch()
		d.RunBucketed(0, lens, targets, 1)
		if !d.BucketBailed() {
			t.Fatalf("targets=%v: zero-length arc did not trigger a bail", targets)
		}
		if d.Dist(2) != 1.0 || d.Via(2) != ref.Via(2) {
			t.Fatalf("targets=%v: dist(2)=%v via=%d, want 1.0 via=%d",
				targets, d.Dist(2), d.Via(2), ref.Via(2))
		}
	}
}

// TestRunBucketedIndexOverflowBails: distances so far beyond delta that
// the bucket index would overflow int64 must bail to the heap instead of
// silently corrupting the traversal order. delta is valid here (≤ every
// arc length) — only the spread is hostile, mimicking a mid-phase
// Garg–Könemann rebuild after heavy multiplicative length growth.
func TestRunBucketedIndexOverflowBails(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(2, 3, 1)
	delta := 1e-9
	huge := delta * float64(int64(1)<<50) // idx ≈ 2^50 > bqMaxIdx
	lens := []float64{delta, delta, huge, huge, huge, huge}
	ref := g.NewDijkstraScratch()
	ref.Run(0, lens, nil)
	d := g.NewDijkstraScratch()
	d.RunBucketed(0, lens, nil, delta)
	if !d.BucketBailed() {
		t.Fatal("index-overflow spread did not trigger a bail")
	}
	compareTrees(t, "overflow-bail", g, ref, d)
	// A benign run on the same scratch afterwards must clear the flag.
	uniform := []float64{1, 1, 1, 1, 1, 1}
	ref.Run(0, uniform, nil)
	d.RunBucketed(0, uniform, nil, 1)
	if d.BucketBailed() {
		t.Fatal("bail flag stuck after a clean run")
	}
	compareTrees(t, "post-bail", g, ref, d)
}
