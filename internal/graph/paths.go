package graph

// BFS computes unweighted (hop-count) shortest-path distances from src.
// Unreachable nodes get distance -1.
func (g *Graph) BFS(src int) []int {
	c := g.csrView()
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for k, end := c.start[u], c.start[u+1]; k < end; k++ {
			v := c.to[k]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AllPairsShortestPaths returns the full hop-count distance matrix.
// Unreachable pairs get -1.
func (g *Graph) AllPairsShortestPaths() [][]int {
	d := make([][]int, g.n)
	for i := 0; i < g.n; i++ {
		d[i] = g.BFS(i)
	}
	return d
}

// ASPL returns the average shortest path length over all ordered pairs of
// distinct nodes, and whether the graph is connected. For a disconnected
// graph the average is over reachable pairs only and ok is false.
func (g *Graph) ASPL() (aspl float64, ok bool) {
	if g.n < 2 {
		return 0, true
	}
	var sum, pairs float64
	ok = true
	for i := 0; i < g.n; i++ {
		dist := g.BFS(i)
		for j, d := range dist {
			if j == i {
				continue
			}
			if d < 0 {
				ok = false
				continue
			}
			sum += float64(d)
			pairs++
		}
	}
	if pairs == 0 {
		return 0, false
	}
	return sum / pairs, ok
}

// Diameter returns the maximum finite shortest-path distance, and whether
// the graph is connected.
func (g *Graph) Diameter() (d int, ok bool) {
	ok = true
	for i := 0; i < g.n; i++ {
		dist := g.BFS(i)
		for j, dj := range dist {
			if j == i {
				continue
			}
			if dj < 0 {
				ok = false
				continue
			}
			if dj > d {
				d = dj
			}
		}
	}
	return d, ok
}

// IsConnected reports whether the graph is connected (true for n<=1).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected component index of each node and the
// number of components.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	for s := 0; s < g.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue := []int32{int32(s)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, a := range g.adj[u] {
				v := g.arcs[a].To
				if comp[v] < 0 {
					comp[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// Path is a sequence of arc indices from a source to a destination.
type Path []int32

// Len returns the hop count of the path.
func (p Path) Len() int { return len(p) }

// ShortestPathDAGPaths enumerates up to k distinct shortest paths from src
// to dst (all of minimal hop count), walking the BFS shortest-path DAG in
// deterministic (arc-index) order. It returns nil if dst is unreachable.
//
// Multipath routing in the packet simulator and path seeding in the flow
// solver both use this: the paper's MPTCP evaluation (§8.2) uses "as many
// as 8 subflows over the shortest paths".
func (g *Graph) ShortestPathDAGPaths(src, dst, k int) []Path {
	if k <= 0 {
		return nil
	}
	distTo := g.bfsFrom(dst)
	if distTo[src] < 0 {
		return nil
	}
	var paths []Path
	var cur Path
	var walk func(u int32)
	walk = func(u int32) {
		if len(paths) >= k {
			return
		}
		if int(u) == dst {
			paths = append(paths, append(Path(nil), cur...))
			return
		}
		for _, a := range g.adj[u] {
			v := g.arcs[a].To
			if distTo[v] == distTo[u]-1 {
				cur = append(cur, a)
				walk(v)
				cur = cur[:len(cur)-1]
				if len(paths) >= k {
					return
				}
			}
		}
	}
	walk(int32(src))
	return paths
}

func (g *Graph) bfsFrom(src int) []int32 {
	c := g.csrView()
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for k, end := c.start[u], c.start[u+1]; k < end; k++ {
			v := c.to[k]
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// CountShortestPaths returns the number of distinct shortest paths between
// src and dst, capped at limit to avoid overflow on dense graphs.
func (g *Graph) CountShortestPaths(src, dst, limit int) int {
	distTo := g.bfsFrom(dst)
	if distTo[src] < 0 {
		return 0
	}
	memo := make(map[int32]int, g.n)
	var count func(u int32) int
	count = func(u int32) int {
		if int(u) == dst {
			return 1
		}
		if c, ok := memo[u]; ok {
			return c
		}
		c := 0
		for _, a := range g.adj[u] {
			v := g.arcs[a].To
			if distTo[v] == distTo[u]-1 {
				c += count(v)
				if c >= limit {
					c = limit
					break
				}
			}
		}
		memo[u] = c
		return c
	}
	return count(int32(src))
}

// Dijkstra computes weighted shortest-path distances from src using the
// provided per-arc lengths, returning distances and, for each node, the arc
// used to reach it (-1 for src/unreachable). Lengths must be non-negative.
//
// Dijkstra allocates its result slices; hot paths that run many trees over
// one graph should use NewDijkstraScratch instead.
func (g *Graph) Dijkstra(src int, length []float64) (dist []float64, via []int32) {
	s := g.NewDijkstraScratch()
	s.Run(src, length, nil)
	dist = make([]float64, g.n)
	via = make([]int32, g.n)
	for i := 0; i < g.n; i++ {
		dist[i] = s.Dist(i)
		via[i] = s.Via(i)
	}
	return dist, via
}

type item struct {
	node int32
	d    float64
}

// heapF is a minimal 4-ary min-heap on (d, node). We avoid container/heap
// to skip interface boxing in the solver's hot loop; the 4-ary layout
// halves the sift-down depth, which dominates Dijkstra's heap cost.
type heapF struct{ a []item }

func (h *heapF) len() int { return len(h.a) }

func (h *heapF) push(x item) {
	h.a = append(h.a, x)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if h.a[p].d <= h.a[i].d {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *heapF) pop() item {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		c := 4*i + 1
		if c >= last {
			break
		}
		end := c + 4
		if end > last {
			end = last
		}
		m := c
		for k := c + 1; k < end; k++ {
			if h.a[k].d < h.a[m].d {
				m = k
			}
		}
		if h.a[m].d >= h.a[i].d {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
