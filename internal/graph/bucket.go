package graph

import "math"

// The bucket-queue traversal below is the Δ-stepping-style sibling of the
// heap Dijkstra in dijkstra.go. The Garg–Könemann solver rebuilds roughly
// one shortest-path tree per (source, phase); under a near-uniform length
// function — exactly the early- and mid-phase regime of the solver, where
// lengths start at δ/cap and have not yet spread — a monotone bucket queue
// replaces every heap sift (O(log n) with data-dependent branches) with an
// O(1) append/pop on a flat slice, which is both cheaper and far friendlier
// to the cache and branch predictor.
//
// Correctness does not depend on the length spread, only the precondition
// delta ≤ min positive arc length: then a node popped from the current
// bucket can never be improved by another node of the same bucket (the
// improving path would need an arc shorter than delta), so every popped
// current entry is final exactly as in the heap traversal. Distances and
// parent arcs therefore agree with Run bit-for-bit whenever shortest paths
// are unique — the same guarantee the repair machinery gives, enforced by
// FuzzBucketMatchesHeap. Performance does depend on the spread: the
// traversal visits ~maxDist/delta buckets, so callers should prefer the
// heap when max length / min length is large (see LengthRange and the
// adaptive choice in internal/mcf).

// bqWindow is the number of resident bucket slots (a power of two).
// Entries whose bucket lies beyond the resident range go to an overflow
// list and are redistributed when the window runs dry, so memory stays
// O(bqWindow + queued entries) no matter how wide the distance range is.
const bqWindow = 256

// bqMaxIdx bounds the bucket index a relaxation may produce. Beyond it,
// the int64 conversion of distance/delta would approach overflow (whose
// result is implementation-defined and would silently corrupt the
// traversal order), so the run bails to the heap instead. The bound is
// far below 2^63 to keep the window arithmetic (idx+bqWindow etc.) safe.
const bqMaxIdx = int64(1) << 46

// LengthRange returns the smallest positive and the largest entry of
// length. It is the one O(m) scan callers need to derive a valid bucket
// width (delta ≤ minPos) and to decide heap vs bucket from the spread
// max/minPos. minPos is 0 when no entry is positive.
func LengthRange(length []float64) (minPos, max float64) {
	for _, l := range length {
		if l > 0 && (minPos == 0 || l < minPos) {
			minPos = l
		}
		if l > max {
			max = l
		}
	}
	return minPos, max
}

// RunBucketed computes the same shortest-path tree as Run — source src,
// per-arc lengths, optional early-exit targets — using a monotone bucket
// queue of width delta instead of the 4-ary heap. delta should be positive
// and no larger than the smallest arc length the traversal relaxes;
// LengthRange(length) provides such a value when lengths are positive.
//
// The precondition is self-enforcing: a non-positive (or NaN) delta, a
// relaxed arc shorter than delta (including zero-length arcs, which would
// break the within-bucket finality argument), or a distance so far beyond
// delta that the bucket index would overflow, all make the run bail and
// transparently recompute via Run — results are correct either way, and
// BucketBailed reports the fallback so adaptive callers can stop paying
// for doomed attempts.
//
// Results are read with Dist/Via/Reached exactly as after Run, the
// early-exit contract is identical, and a completed run is a valid basis
// for Repair/RepairStale. When shortest paths are unique the tree is
// bit-identical to the heap path's.
func (d *DijkstraScratch) RunBucketed(src int, length []float64, targets []int32, delta float64) {
	if !(delta > 0) {
		d.bqBailed = true
		d.Run(src, length, targets)
		return
	}
	d.bqBailed = false
	// Any relaxation reaching this distance would produce a bucket index
	// near int64 overflow; treat it as a bail condition below.
	limit := delta * float64(bqMaxIdx)
	d.epoch++
	if d.epoch == 0 { // wrapped: every stale stamp is suddenly "current"
		for i := range d.stamp {
			d.stamp[i], d.tmark[i] = 0, 0
		}
		d.epoch = 1
	}
	e := d.epoch
	c := d.g.csrView()
	// Early-exit bookkeeping differs from the heap path: within a bucket,
	// entries pop in arbitrary order and — when an arc shorter than delta
	// sneaks in — a popped node can still improve while its bucket drains.
	// A target therefore counts as settled only once cur has advanced PAST
	// its bucket: every later entry has distance ≥ cur·delta, which
	// exceeds anything in earlier buckets, so no future relaxation can
	// improve it. That keeps early exit exact for any positive delta.
	pending := d.bqPending[:0]
	for _, t := range targets {
		if d.tmark[t] != e {
			d.tmark[t] = e
			pending = append(pending, t)
		}
	}
	earlyExit := len(pending) > 0
	if d.bqSlots == nil {
		d.bqSlots = make([][]item, bqWindow)
	}
	slots, over := d.bqSlots, d.bqOver[:0]
	d.bqRebases = 0
	d.dist[src] = 0
	d.via[src] = -1
	d.stamp[src] = e
	// cur is the bucket index being drained; the resident window covers the
	// fixed range [winEnd-bqWindow, winEnd). Entries in bucket ≥ winEnd wait
	// in the overflow list; keeping the boundary FIXED until the window runs
	// dry (rather than sliding it with cur) guarantees every overflow entry
	// sorts strictly after every resident entry, so buckets are still
	// processed in increasing order. Relaxations from bucket cur land in
	// bucket ≥ cur (delta ≤ every arc length), so slots behind cur are empty
	// and the idx&mask slot addressing never collides within the window.
	cur := int64(0)
	winEnd := int64(bqWindow)
	slots[0] = append(slots[0][:0], item{node: int32(src), d: 0})
	windowLive := 1
	broke, bailed := false, false
	// settle drops every pending target whose distance now lies in a
	// bucket strictly before cur; returns true when none remain.
	settle := func() bool {
		w := 0
		for _, tn := range pending {
			if d.stamp[tn] == e && int64(d.dist[tn]/delta) < cur {
				d.tmark[tn] = 0
				continue
			}
			pending[w] = tn
			w++
		}
		pending = pending[:w]
		return w == 0
	}
	for windowLive > 0 || len(over) > 0 {
		if windowLive == 0 {
			// The window ran dry but overflow entries remain: rebase the
			// window onto the smallest overflow bucket and redistribute.
			d.bqRebases++
			minIdx, w := int64(math.MaxInt64), 0
			for _, it := range over {
				if it.d > d.dist[it.node] {
					continue // stale entry; the node improved since the push
				}
				over[w] = it
				w++
				if idx := int64(it.d / delta); idx < minIdx {
					minIdx = idx
				}
			}
			over = over[:w]
			if w == 0 {
				break
			}
			cur, winEnd = minIdx, minIdx+bqWindow
			if earlyExit && settle() {
				broke = true
				break
			}
			w = 0
			for _, it := range over {
				if idx := int64(it.d / delta); idx < winEnd {
					slots[idx&(bqWindow-1)] = append(slots[idx&(bqWindow-1)], it)
					windowLive++
				} else {
					over[w] = it
					w++
				}
			}
			over = over[:w]
			continue
		}
		s := &slots[cur&(bqWindow-1)]
		if len(*s) == 0 {
			cur++
			if earlyExit && settle() {
				broke = true
				break
			}
			continue
		}
		it := (*s)[len(*s)-1]
		*s = (*s)[:len(*s)-1]
		windowLive--
		if it.d > d.dist[it.node] {
			continue // stale entry; the node settled at a smaller distance
		}
		for k, end := c.start[it.node], c.start[it.node+1]; k < end; k++ {
			v := c.to[k]
			a := c.arc[k]
			l := length[a]
			nd := it.d + l
			if l < delta || nd >= limit {
				// An arc shorter than the bucket width (ordering argument
				// void) or a distance near index overflow: this traversal
				// cannot finish safely — hand the whole run to the heap.
				bailed = true
				break
			}
			if d.stamp[v] != e || nd < d.dist[v] {
				d.dist[v] = nd
				d.via[v] = a
				d.stamp[v] = e
				if idx := int64(nd / delta); idx < winEnd {
					slots[idx&(bqWindow-1)] = append(slots[idx&(bqWindow-1)], item{node: v, d: nd})
					windowLive++
				} else {
					over = append(over, item{node: v, d: nd})
				}
			}
		}
		if bailed {
			break
		}
	}
	if broke || bailed {
		// The break abandons queued entries; empty every slot so the next
		// run starts from a clean window.
		for i := range slots {
			slots[i] = slots[i][:0]
		}
	}
	d.bqOver = over[:0]
	d.bqPending = pending[:0]
	if bailed {
		// Partial results from this attempt carry the current epoch; Run
		// advances the epoch, so they are invisible to it and the rerun is
		// a clean from-scratch computation with identical semantics.
		d.bqBailed = true
		d.Run(src, length, targets)
		return
	}
	d.complete = !broke
}

// BucketRebases reports how many overflow redistributions the last
// RunBucketed performed. Rebases are the bucket queue's failure mode — a
// wide distance range relative to delta makes the window thrash — so
// adaptive callers (internal/mcf) treat a persistently high count as the
// signal to fall back to the heap.
func (d *DijkstraScratch) BucketRebases() int { return d.bqRebases }

// BucketBailed reports whether the last RunBucketed abandoned the bucket
// traversal (invalid delta, an arc shorter than delta, or a distance near
// bucket-index overflow) and recomputed via Run. The results are correct
// either way; adaptive callers use the flag to stop requesting bucket
// runs the input keeps rejecting.
func (d *DijkstraScratch) BucketBailed() bool { return d.bqBailed }
