package graph

import (
	"math"
	"math/rand"
	"testing"
)

// growArcs multiplies a random subset of arc lengths by (1+delta) factors,
// returning the indices that changed. Lengths only grow, matching the
// Garg–Könemann length evolution Repair is designed for.
func growArcs(rng *rand.Rand, lens []float64, count int) []int32 {
	changed := make([]int32, 0, count)
	for k := 0; k < count; k++ {
		a := int32(rng.Intn(len(lens)))
		lens[a] *= 1 + 0.5*rng.Float64()
		changed = append(changed, a)
	}
	return changed
}

// checkTreesEqual asserts the repaired scratch agrees bit-for-bit with a
// from-scratch Dijkstra (random float lengths make the tree unique, so via
// must match exactly, not just dist).
func checkTreesEqual(t *testing.T, g *Graph, d *DijkstraScratch, lens []float64, src int, ctx string) {
	t.Helper()
	dist, via := g.Dijkstra(src, lens)
	for v := 0; v < g.N(); v++ {
		if d.Dist(v) != dist[v] {
			t.Fatalf("%s: dist[%d] = %v, want %v", ctx, v, d.Dist(v), dist[v])
		}
		if d.Via(v) != via[v] {
			t.Fatalf("%s: via[%d] = %v, want %v", ctx, v, d.Via(v), via[v])
		}
	}
}

// TestRepairOracle: after every randomized arc-growth batch, Repair must
// reproduce the from-scratch tree exactly. ≥100 randomized sequences.
func TestRepairOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seq := 0; seq < 120; seq++ {
		n := 8 + rng.Intn(60)
		g, lens := randomWeighted(t, rng, n, n+rng.Intn(3*n))
		src := rng.Intn(n)
		d := g.NewDijkstraScratch()
		d.Run(src, lens, nil)
		rounds := 1 + rng.Intn(8)
		for round := 0; round < rounds; round++ {
			changed := growArcs(rng, lens, 1+rng.Intn(6))
			if !d.Repair(lens, changed) {
				t.Fatalf("seq %d round %d: Repair refused a complete tree", seq, round)
			}
			checkTreesEqual(t, g, d, lens, src, "repair oracle")
		}
	}
}

// TestRepairNonTreeArcNoop: growing arcs outside the tree must leave every
// distance untouched (the cheap-scan fast path).
func TestRepairNonTreeArcNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, lens := randomWeighted(t, rng, 40, 120)
	d := g.NewDijkstraScratch()
	d.Run(0, lens, nil)
	var nonTree []int32
	for a := 0; a < g.NumArcs(); a++ {
		v := int(g.Arc(a).To)
		if d.Via(v) != int32(a) {
			nonTree = append(nonTree, int32(a))
			if len(nonTree) == 10 {
				break
			}
		}
	}
	for _, a := range nonTree {
		lens[a] *= 2
	}
	if !d.Repair(lens, nonTree) {
		t.Fatal("Repair refused a complete tree")
	}
	checkTreesEqual(t, g, d, lens, 0, "non-tree growth")
}

// TestRepairRefusesIncompleteTree: a targets run that exits early must not
// be repairable.
func TestRepairRefusesIncompleteTree(t *testing.T) {
	g := New(5)
	for i := 0; i < 4; i++ {
		g.AddLink(i, i+1, 1)
	}
	lens := make([]float64, g.NumArcs())
	for i := range lens {
		lens[i] = 1
	}
	d := g.NewDijkstraScratch()
	d.Run(0, lens, []int32{1}) // settles node 1 and stops
	if d.Repair(lens, []int32{0}) {
		t.Fatal("Repair accepted an early-exited tree")
	}
	d.Run(0, lens, nil)
	if !d.Repair(lens, []int32{0}) {
		t.Fatal("Repair refused a complete tree")
	}
}

// TestRepairDisconnects: growing a bridge to +Inf must mark the far side
// unreached, exactly like a rebuild under the same lengths.
func TestRepairDisconnects(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(2, 3, 1)
	lens := []float64{1, 1, 1, 1, 1, 1}
	d := g.NewDijkstraScratch()
	d.Run(0, lens, nil)
	// Cut both directions of link 1-2.
	inf := make([]float64, len(lens))
	copy(inf, lens)
	inf[2], inf[3] = posInf(), posInf()
	if !d.Repair(inf, []int32{2, 3}) {
		t.Fatal("Repair refused")
	}
	if d.Reached(2) || d.Reached(3) {
		t.Fatalf("nodes beyond the cut still reached: 2=%v 3=%v", d.Reached(2), d.Reached(3))
	}
	if !d.Reached(1) || d.Dist(1) != 1 {
		t.Fatalf("near side perturbed: reached=%v dist=%v", d.Reached(1), d.Dist(1))
	}
}

func posInf() float64 { return math.Inf(1) }
