package graph

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, 1)
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.NumLinks() != 0 || g.NumArcs() != 0 {
		t.Fatalf("unexpected empty graph shape: %d nodes, %d links", g.N(), g.NumLinks())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddLinkBasics(t *testing.T) {
	g := New(3)
	id := g.AddLink(0, 1, 2.5)
	if id != 0 {
		t.Fatalf("first link id = %d", id)
	}
	if !g.HasLink(0, 1) || !g.HasLink(1, 0) {
		t.Fatal("HasLink symmetric check failed")
	}
	if g.HasLink(0, 2) {
		t.Fatal("phantom link")
	}
	if got := g.LinkCapacity(0); got != 2.5 {
		t.Fatalf("capacity %v", got)
	}
	u, v := g.LinkEnds(0)
	if u != 0 || v != 1 {
		t.Fatalf("ends %d,%d", u, v)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddLinkPanics(t *testing.T) {
	cases := []func(){
		func() { New(2).AddLink(0, 0, 1) },
		func() { New(2).AddLink(0, 5, 1) },
		func() { New(2).AddLink(-1, 0, 1) },
		func() { New(2).AddLink(0, 1, 0) },
		func() { New(2).AddLink(0, 1, -3) },
		func() { New(-1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestReverseArcPairing(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 7)
	for a := 0; a < g.NumArcs(); a++ {
		r := Reverse(a)
		if g.Arc(a).From != g.Arc(r).To || g.Arc(a).To != g.Arc(r).From {
			t.Fatalf("arc %d and reverse %d disagree", a, r)
		}
		if g.Arc(a).Cap != g.Arc(r).Cap {
			t.Fatalf("asymmetric caps on arc %d", a)
		}
	}
}

func TestMultigraph(t *testing.T) {
	g := New(2)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 1, 2)
	if g.NumLinks() != 2 || g.Degree(0) != 2 {
		t.Fatal("parallel links not supported")
	}
	if got := g.TotalCapacity(); got != 6 {
		t.Fatalf("total capacity %v, want 6", got)
	}
	if n := g.Neighbors(0); len(n) != 1 || n[0] != 1 {
		t.Fatalf("neighbors dedup failed: %v", n)
	}
}

func TestServersAndClasses(t *testing.T) {
	g := New(3)
	g.SetServers(0, 4)
	g.SetServers(2, 6)
	g.SetClass(1, 2)
	if g.TotalServers() != 10 || g.Servers(1) != 0 || g.Class(1) != 2 {
		t.Fatal("server/class bookkeeping wrong")
	}
}

func TestCutCapacities(t *testing.T) {
	// Square 0-1-2-3-0 with unit links; S = {0,1}.
	g := ring(4)
	inS := []bool{true, true, false, false}
	if got := g.CutCapacity(inS); got != 2 {
		t.Fatalf("one-direction cut %v, want 2", got)
	}
	if got := g.CrossCapacity(inS); got != 4 {
		t.Fatalf("bidirectional cut %v, want 4", got)
	}
}

func TestScaleLinkCapacity(t *testing.T) {
	g := New(2)
	g.AddLink(0, 1, 2)
	g.ScaleLinkCapacity(0, 5)
	if g.LinkCapacity(0) != 10 {
		t.Fatalf("scaled capacity %v", g.LinkCapacity(0))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBFSAndASPLRing(t *testing.T) {
	g := ring(6)
	dist := g.BFS(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if dist[i] != w {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], w)
		}
	}
	aspl, ok := g.ASPL()
	if !ok {
		t.Fatal("ring not connected?")
	}
	// C6 distances from any node: 1,2,3,2,1 -> mean 9/5.
	if aspl != 9.0/5.0 {
		t.Fatalf("aspl %v, want 1.8", aspl)
	}
	d, _ := g.Diameter()
	if d != 3 {
		t.Fatalf("diameter %d, want 3", d)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	if g.IsConnected() {
		t.Fatal("should be disconnected")
	}
	if _, ok := g.ASPL(); ok {
		t.Fatal("ASPL should flag disconnection")
	}
	comp, n := g.Components()
	if n != 2 || comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Fatalf("components %v (%d)", comp, n)
	}
}

func TestClone(t *testing.T) {
	g := ring(5)
	g.SetServers(0, 3)
	c := g.Clone()
	c.AddLink(0, 2, 1)
	c.SetServers(1, 9)
	if g.NumLinks() != 5 || g.Servers(1) != 0 {
		t.Fatal("clone aliases original")
	}
	if c.NumLinks() != 6 || c.Servers(0) != 3 {
		t.Fatal("clone incomplete")
	}
}

func TestShortestPathDAGPaths(t *testing.T) {
	// Diamond: 0-1-3, 0-2-3: two shortest paths 0->3.
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 3, 1)
	paths := g.ShortestPathDAGPaths(0, 3, 10)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Len() != 2 {
			t.Fatalf("path length %d, want 2", p.Len())
		}
		if g.Arc(int(p[0])).From != 0 || g.Arc(int(p[len(p)-1])).To != 3 {
			t.Fatal("path endpoints wrong")
		}
		// Contiguity.
		for i := 1; i < len(p); i++ {
			if g.Arc(int(p[i])).From != g.Arc(int(p[i-1])).To {
				t.Fatal("path not contiguous")
			}
		}
	}
	if got := g.CountShortestPaths(0, 3, 100); got != 2 {
		t.Fatalf("CountShortestPaths = %d", got)
	}
	if got := g.ShortestPathDAGPaths(0, 3, 1); len(got) != 1 {
		t.Fatalf("k=1 returned %d paths", len(got))
	}
	if got := g.ShortestPathDAGPaths(0, 3, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestShortestPathDAGPathsUnreachable(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1)
	if p := g.ShortestPathDAGPaths(0, 2, 5); p != nil {
		t.Fatal("unreachable should return nil")
	}
	if c := g.CountShortestPaths(0, 2, 5); c != 0 {
		t.Fatal("unreachable count should be 0")
	}
}

func TestDijkstraMatchesBFSOnUnitLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := New(30)
	for i := 1; i < 30; i++ {
		g.AddLink(i, rng.Intn(i), 1) // random tree
	}
	for k := 0; k < 20; k++ { // extra random links
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v && !g.HasLink(u, v) {
			g.AddLink(u, v, 1)
		}
	}
	lens := make([]float64, g.NumArcs())
	for i := range lens {
		lens[i] = 1
	}
	dist, via := g.Dijkstra(0, lens)
	bfs := g.BFS(0)
	for i := range bfs {
		if int(dist[i]) != bfs[i] {
			t.Fatalf("node %d: dijkstra %v, bfs %d", i, dist[i], bfs[i])
		}
	}
	if via[0] != -1 {
		t.Fatal("source should have no via arc")
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// 0-1 expensive direct, 0-2-1 cheap detour.
	g := New(3)
	g.AddLink(0, 1, 1) // arcs 0,1
	g.AddLink(0, 2, 1) // arcs 2,3
	g.AddLink(2, 1, 1) // arcs 4,5
	lens := []float64{10, 10, 1, 1, 1, 1}
	dist, via := g.Dijkstra(0, lens)
	if dist[1] != 2 {
		t.Fatalf("dist[1] = %v, want 2 (via detour)", dist[1])
	}
	if via[1] != 4 {
		t.Fatalf("via[1] = %d, want arc 4", via[1])
	}
}

func TestDegreeSequenceAndRegular(t *testing.T) {
	g := ring(5)
	ds := g.DegreeSequence()
	for _, d := range ds {
		if d != 2 {
			t.Fatalf("ring degree %v", ds)
		}
	}
	if r, ok := g.IsRegular(); !ok || r != 2 {
		t.Fatalf("IsRegular = %d,%v", r, ok)
	}
	g.AddLink(0, 2, 1)
	if _, ok := g.IsRegular(); ok {
		t.Fatal("should not be regular")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := ring(4)
	g.SetServers(2, 5)
	g.SetClass(3, 1)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Graph
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.NumLinks() != 4 || back.Servers(2) != 5 || back.Class(3) != 1 {
		t.Fatal("round trip lost data")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONRejectsBadLinks(t *testing.T) {
	var g Graph
	for _, blob := range []string{
		`{"n":2,"links":[{"u":0,"v":0,"cap":1}]}`,
		`{"n":2,"links":[{"u":0,"v":5,"cap":1}]}`,
		`{"n":2,"links":[{"u":0,"v":1,"cap":-1}]}`,
	} {
		if err := json.Unmarshal([]byte(blob), &g); err == nil {
			t.Fatalf("accepted bad blob %s", blob)
		}
	}
}

func TestDOT(t *testing.T) {
	g := New(2)
	g.AddLink(0, 1, 3)
	dot := g.DOT("test")
	for _, want := range []string{"graph \"test\"", "n0 -- n1", "label=\"3\""} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// Property: for random graphs, degree sum equals twice the link count and
// BFS distances are symmetric.
func TestQuickProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8, extra uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddLink(i, rng.Intn(i), 1)
		}
		for k := 0; k < int(extra%30); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddLink(u, v, 1+rng.Float64())
			}
		}
		if err := g.Validate(); err != nil {
			return false
		}
		sum := 0
		for _, d := range g.DegreeSequence() {
			sum += d
		}
		if sum != 2*g.NumLinks() {
			return false
		}
		// Distance symmetry on a few pairs.
		d0 := g.BFS(0)
		for v := 1; v < n; v++ {
			dv := g.BFS(v)
			if d0[v] != dv[0] {
				return false
			}
		}
		// Triangle inequality via node 0.
		d1 := g.BFS(1 % n)
		for v := 0; v < n; v++ {
			if d0[v] >= 0 && d1[0] >= 0 && d1[v] >= 0 && d0[v] > d1[0]+d1[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
