package graph

import (
	"math"
	"math/rand"
	"testing"
)

// randomWeighted builds a connected-ish random multigraph with random arc
// lengths for scratch testing.
func randomWeighted(t *testing.T, rng *rand.Rand, n, links int) (*Graph, []float64) {
	t.Helper()
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddLink(rng.Intn(i), i, 1+rng.Float64())
	}
	for i := n - 1; i < links; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddLink(u, v, 1+rng.Float64())
		}
	}
	lens := make([]float64, g.NumArcs())
	for a := range lens {
		lens[a] = 0.01 + rng.Float64()
	}
	return g, lens
}

// TestScratchMatchesDijkstra: repeated scratch runs must agree with the
// allocating Dijkstra on every reachable node, across many epochs.
func TestScratchMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, lens := randomWeighted(t, rng, 60, 180)
	scratch := g.NewDijkstraScratch()
	for trial := 0; trial < 30; trial++ {
		src := rng.Intn(g.N())
		for a := range lens {
			lens[a] *= 1 + 0.1*rng.Float64() // evolve lengths like the solver does
		}
		dist, via := g.Dijkstra(src, lens)
		scratch.Run(src, lens, nil)
		for v := 0; v < g.N(); v++ {
			if math.Abs(scratch.Dist(v)-dist[v]) > 1e-12 && !(math.IsInf(dist[v], 1) && math.IsInf(scratch.Dist(v), 1)) {
				t.Fatalf("trial %d: dist[%d] scratch %v, want %v", trial, v, scratch.Dist(v), dist[v])
			}
			if scratch.Via(v) != via[v] {
				t.Fatalf("trial %d: via[%d] scratch %v, want %v", trial, v, scratch.Via(v), via[v])
			}
		}
	}
}

// TestScratchEarlyExit: with targets, the settled targets and their path
// predecessors must carry final distances.
func TestScratchEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, lens := randomWeighted(t, rng, 80, 240)
	scratch := g.NewDijkstraScratch()
	for trial := 0; trial < 30; trial++ {
		src := rng.Intn(g.N())
		var targets []int32
		for k := 0; k < 1+rng.Intn(5); k++ {
			targets = append(targets, int32(rng.Intn(g.N())))
		}
		full, fullVia := g.Dijkstra(src, lens)
		scratch.Run(src, lens, targets)
		for _, tgt := range targets {
			if math.IsInf(full[tgt], 1) {
				continue
			}
			if math.Abs(scratch.Dist(int(tgt))-full[tgt]) > 1e-12 {
				t.Fatalf("trial %d: target %d dist %v, want %v", trial, tgt, scratch.Dist(int(tgt)), full[tgt])
			}
			// Walk the via chain back to src; every hop must be final.
			at := int(tgt)
			for steps := 0; at != src; steps++ {
				if steps > g.N() {
					t.Fatalf("trial %d: via chain from %d does not terminate", trial, tgt)
				}
				a := scratch.Via(at)
				if a < 0 {
					t.Fatalf("trial %d: broken via chain at %d", trial, at)
				}
				from := int(g.Arc(int(a)).From)
				if math.Abs(scratch.Dist(from)-full[from]) > 1e-12 {
					t.Fatalf("trial %d: predecessor %d not final", trial, from)
				}
				at = from
			}
		}
		_ = fullVia
	}
}

// TestScratchTargetDuplicates: duplicate targets must not wedge the
// early-exit countdown.
func TestScratchTargetDuplicates(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	lens := []float64{1, 1, 1, 1}
	s := g.NewDijkstraScratch()
	s.Run(0, lens, []int32{2, 2, 2, 1, 1})
	if s.Dist(2) != 2 {
		t.Fatalf("dist(2) = %v, want 2", s.Dist(2))
	}
	if !s.Reached(1) || s.Dist(1) != 1 {
		t.Fatalf("node 1 not settled correctly: %v", s.Dist(1))
	}
}

// TestCSRInvalidatedByAddLink: paths computed after a mutation must see
// the new link.
func TestCSRInvalidatedByAddLink(t *testing.T) {
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	if d := g.BFS(0); d[3] != -1 {
		t.Fatalf("node 3 should be unreachable, got %d", d[3])
	}
	g.AddLink(2, 3, 1)
	if d := g.BFS(0); d[3] != 3 {
		t.Fatalf("after AddLink, dist to 3 = %d, want 3", d[3])
	}
	lens := make([]float64, g.NumArcs())
	for i := range lens {
		lens[i] = 1
	}
	dist, _ := g.Dijkstra(0, lens)
	if dist[3] != 3 {
		t.Fatalf("Dijkstra after AddLink: dist[3] = %v, want 3", dist[3])
	}
}
