package graph

import "math"

// DijkstraScratch holds reusable state for repeated shortest-path-tree
// computations over one graph. The flow solver runs thousands of Dijkstras
// per solve under an evolving length function; the scratch makes each run
// allocation-free: dist/via validity is tracked with an epoch stamp (no
// O(n) clearing between runs) and the heap keeps its backing array.
//
// A scratch is bound to the graph that created it and must not be used
// after links are added. It is not safe for concurrent use; create one
// scratch per goroutine.
type DijkstraScratch struct {
	g     *Graph
	dist  []float64
	via   []int32
	stamp []uint32 // dist/via valid iff stamp == epoch
	tmark []uint32 // pending-target marker, same epoch discipline
	epoch uint32
	heap  []item
}

// NewDijkstraScratch returns a scratch sized for g.
func (g *Graph) NewDijkstraScratch() *DijkstraScratch {
	return &DijkstraScratch{
		g:     g,
		dist:  make([]float64, g.n),
		via:   make([]int32, g.n),
		stamp: make([]uint32, g.n),
		tmark: make([]uint32, g.n),
	}
}

// Run computes the shortest-path tree from src under the per-arc lengths.
// If targets is non-empty, the run stops as soon as every target is
// settled: dist/via are then final for the targets and every node on a
// shortest path to them, but not necessarily for other nodes. Lengths must
// be non-negative. Results are read with Dist/Via/Reached and stay valid
// until the next Run.
func (d *DijkstraScratch) Run(src int, length []float64, targets []int32) {
	d.epoch++
	if d.epoch == 0 { // wrapped: every stale stamp is suddenly "current"
		for i := range d.stamp {
			d.stamp[i], d.tmark[i] = 0, 0
		}
		d.epoch = 1
	}
	e := d.epoch
	c := d.g.csrView()
	pending := 0
	for _, t := range targets {
		if d.tmark[t] != e {
			d.tmark[t] = e
			pending++
		}
	}
	earlyExit := pending > 0
	d.dist[src] = 0
	d.via[src] = -1
	d.stamp[src] = e
	h := heapF{a: d.heap[:0]}
	h.push(item{node: int32(src), d: 0})
	for h.len() > 0 {
		it := h.pop()
		if it.d > d.dist[it.node] {
			continue // stale entry; the node settled at a smaller distance
		}
		if earlyExit && d.tmark[it.node] == e {
			d.tmark[it.node] = 0
			pending--
			if pending == 0 {
				break
			}
		}
		for k, end := c.start[it.node], c.start[it.node+1]; k < end; k++ {
			v := c.to[k]
			a := c.arc[k]
			nd := it.d + length[a]
			if d.stamp[v] != e || nd < d.dist[v] {
				d.dist[v] = nd
				d.via[v] = a
				d.stamp[v] = e
				h.push(item{node: v, d: nd})
			}
		}
	}
	d.heap = h.a
}

// Dist returns the distance of v from the last Run's source, or +Inf if v
// was not reached.
func (d *DijkstraScratch) Dist(v int) float64 {
	if d.stamp[v] != d.epoch {
		return math.Inf(1)
	}
	return d.dist[v]
}

// Via returns the arc used to reach v in the last Run's tree, or -1 for
// the source and unreached nodes.
func (d *DijkstraScratch) Via(v int) int32 {
	if d.stamp[v] != d.epoch {
		return -1
	}
	return d.via[v]
}

// Reached reports whether v was reached by the last Run.
func (d *DijkstraScratch) Reached(v int) bool { return d.stamp[v] == d.epoch }
