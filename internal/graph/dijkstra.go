package graph

import "math"

// DijkstraScratch holds reusable state for repeated shortest-path-tree
// computations over one graph. The flow solver runs thousands of Dijkstras
// per solve under an evolving length function; the scratch makes each run
// allocation-free: dist/via validity is tracked with an epoch stamp (no
// O(n) clearing between runs) and the heap keeps its backing array.
//
// A scratch is bound to the graph that created it and must not be used
// after links are added. It is not safe for concurrent use; create one
// scratch per goroutine.
type DijkstraScratch struct {
	g     *Graph
	dist  []float64
	via   []int32
	stamp []uint32 // dist/via valid iff stamp == epoch
	tmark []uint32 // pending-target marker, same epoch discipline
	epoch uint32
	heap  []item

	// complete records whether the last Run settled every reachable node
	// (no early exit), which is the precondition for Repair.
	complete bool
	// Bucket-queue state for RunBucketed (see bucket.go), allocated on
	// first use and reused after.
	bqSlots   [][]item
	bqOver    []item
	bqPending []int32
	bqRebases int
	bqBailed  bool
	// Repair working buffers, allocated on first use and reused after.
	affected  []bool
	childHead []int32
	childNext []int32
	stack     []int32 // nodes marked affected by the current repair
	dfs       []int32 // subtree-marking DFS stack
	chg       []bool  // per-arc changed marks for the list-flavored Repair
}

// NewDijkstraScratch returns a scratch sized for g.
func (g *Graph) NewDijkstraScratch() *DijkstraScratch {
	return &DijkstraScratch{
		g:     g,
		dist:  make([]float64, g.n),
		via:   make([]int32, g.n),
		stamp: make([]uint32, g.n),
		tmark: make([]uint32, g.n),
	}
}

// Run computes the shortest-path tree from src under the per-arc lengths.
// If targets is non-empty, the run stops as soon as every target is
// settled: dist/via are then final for the targets and every node on a
// shortest path to them, but not necessarily for other nodes. Lengths must
// be non-negative. Results are read with Dist/Via/Reached and stay valid
// until the next Run.
func (d *DijkstraScratch) Run(src int, length []float64, targets []int32) {
	d.epoch++
	if d.epoch == 0 { // wrapped: every stale stamp is suddenly "current"
		for i := range d.stamp {
			d.stamp[i], d.tmark[i] = 0, 0
		}
		d.epoch = 1
	}
	e := d.epoch
	c := d.g.csrView()
	pending := 0
	for _, t := range targets {
		if d.tmark[t] != e {
			d.tmark[t] = e
			pending++
		}
	}
	earlyExit := pending > 0
	d.dist[src] = 0
	d.via[src] = -1
	d.stamp[src] = e
	h := heapF{a: d.heap[:0]}
	h.push(item{node: int32(src), d: 0})
	broke := false
	for h.len() > 0 {
		it := h.pop()
		if it.d > d.dist[it.node] {
			continue // stale entry; the node settled at a smaller distance
		}
		if earlyExit && d.tmark[it.node] == e {
			d.tmark[it.node] = 0
			pending--
			if pending == 0 {
				broke = true
				break
			}
		}
		for k, end := c.start[it.node], c.start[it.node+1]; k < end; k++ {
			v := c.to[k]
			a := c.arc[k]
			nd := it.d + length[a]
			if d.stamp[v] != e || nd < d.dist[v] {
				d.dist[v] = nd
				d.via[v] = a
				d.stamp[v] = e
				h.push(item{node: v, d: nd})
			}
		}
	}
	// The break fires before the last target's out-arcs are relaxed, so an
	// empty heap after it does not imply a complete tree.
	d.complete = !broke
	d.heap = h.a
}

// Repair updates the last Run's shortest-path tree after a batch of arc
// length increases, re-relaxing only the subtrees hanging below changed
// tree arcs instead of rebuilding the whole tree. changed lists the arcs
// whose length grew since the tree was last computed (duplicates are fine;
// unchanged arcs in the list are harmless). See RepairStale for the full
// contract; Repair is the list-flavored convenience used by tests and
// fuzzing.
func (d *DijkstraScratch) Repair(length []float64, changed []int32) bool {
	if len(changed) == 0 {
		return d.complete
	}
	if d.chg == nil {
		d.chg = make([]bool, len(d.g.arcs))
	}
	for _, a := range changed {
		d.chg[a] = true
	}
	ok := d.RepairStale(length, func(a int32) bool { return d.chg[a] }, 0)
	for _, a := range changed {
		d.chg[a] = false
	}
	return ok
}

// RepairStale updates the last Run's shortest-path tree after arc length
// increases, implementing the increase-only case of Ramalingam–Reps
// dynamic SSSP:
//
//   - grew reports whether an arc's length has grown since the tree was
//     last computed. It is consulted only for current tree arcs: a changed
//     arc outside the tree cannot invalidate anything — every distance is
//     still achieved by its unchanged tree path, and no path got shorter.
//     Lengths must not have decreased — a shrunken arc can make the
//     repaired tree suboptimal without detection.
//   - Only the subtrees hanging below grown tree arcs are re-relaxed, via
//     a restricted Dijkstra seeded from the unaffected boundary. Nodes
//     outside those subtrees keep their exact distances, so the repaired
//     dist/via agree with a from-scratch Dijkstra bit-for-bit whenever the
//     shortest-path tree is unique (the oracle tests and
//     FuzzRepairMatchesRebuild enforce this).
//   - maxAffected > 0 bounds the stale region the repair is willing to
//     process: if more nodes are affected, RepairStale undoes nothing,
//     returns false, and the caller should rebuild — for large stale
//     regions a fresh Run is cheaper than boundary-seeded re-relaxation.
//
// RepairStale also returns false — leaving the tree untouched — when the
// last Run exited early on targets (the settled region is then unknown, so
// only a full Run can refresh it). After a successful repair the tree is
// again complete and current for the given lengths.
func (d *DijkstraScratch) RepairStale(length []float64, grew func(a int32) bool, maxAffected int) bool {
	if !d.complete {
		return false
	}
	e := d.epoch
	arcs := d.g.arcs
	if d.affected == nil {
		d.affected = make([]bool, d.g.n)
		d.childHead = make([]int32, d.g.n)
		d.childNext = make([]int32, d.g.n)
	}
	// Collect the roots of stale subtrees: heads of grown tree arcs. One
	// O(n) pass over the tree; most solver repairs find only a few.
	dfs := d.dfs[:0]
	for v := 0; v < d.g.n; v++ {
		if d.stamp[v] == e && d.via[v] >= 0 && grew(d.via[v]) {
			dfs = append(dfs, int32(v))
		}
	}
	if len(dfs) == 0 {
		d.dfs = dfs
		return true
	}
	// Bucket tree children (first-child/next-sibling) so subtree marking is
	// a straight DFS. O(n), paid only on repairs that found a stale subtree.
	for v := range d.childHead {
		d.childHead[v] = -1
	}
	for v := 0; v < d.g.n; v++ {
		if d.stamp[v] != e || d.via[v] < 0 {
			continue
		}
		p := arcs[d.via[v]].From
		d.childNext[v] = d.childHead[p]
		d.childHead[p] = int32(v)
	}
	// Mark every node whose tree path crosses a grown tree arc, bailing out
	// once the region exceeds the caller's repair budget.
	touched := d.stack[:0]
	bailed := false
	for len(dfs) > 0 {
		u := dfs[len(dfs)-1]
		dfs = dfs[:len(dfs)-1]
		if d.affected[u] {
			continue
		}
		if maxAffected > 0 && len(touched) >= maxAffected {
			bailed = true
			break
		}
		d.affected[u] = true
		touched = append(touched, u)
		for c := d.childHead[u]; c >= 0; c = d.childNext[c] {
			dfs = append(dfs, c)
		}
	}
	d.dfs = dfs[:0]
	if bailed {
		for _, v := range touched {
			d.affected[v] = false
		}
		d.stack = touched[:0]
		return false
	}
	// Restricted Dijkstra over the affected set, seeded from the unaffected
	// boundary: each affected node's best entry via a settled neighbor.
	c := d.g.csrView()
	h := heapF{a: d.heap[:0]}
	for _, v := range touched {
		d.dist[v] = math.Inf(1)
	}
	for _, v := range touched {
		best := math.Inf(1)
		bestArc := int32(-1)
		for k, end := c.start[v], c.start[v+1]; k < end; k++ {
			u := c.to[k]
			if d.affected[u] || d.stamp[u] != e {
				continue
			}
			in := c.arc[k] ^ 1 // the reverse arc u -> v
			if nd := d.dist[u] + length[in]; nd < best {
				best, bestArc = nd, in
			}
		}
		if bestArc >= 0 {
			d.dist[v] = best
			d.via[v] = bestArc
			h.push(item{node: v, d: best})
		}
	}
	for h.len() > 0 {
		it := h.pop()
		if it.d > d.dist[it.node] || !d.affected[it.node] {
			continue
		}
		d.affected[it.node] = false // settled
		for k, end := c.start[it.node], c.start[it.node+1]; k < end; k++ {
			v := c.to[k]
			if !d.affected[v] {
				continue
			}
			a := c.arc[k]
			nd := it.d + length[a]
			if nd < d.dist[v] {
				d.dist[v] = nd
				d.via[v] = a
				h.push(item{node: v, d: nd})
			}
		}
	}
	// Anything still marked was cut off entirely by the length growth (only
	// possible with +Inf lengths); drop it from the tree.
	for _, v := range touched {
		if d.affected[v] {
			d.affected[v] = false
			d.stamp[v] = e - 1
			d.via[v] = -1
		}
	}
	d.stack = touched[:0]
	d.heap = h.a
	return true
}

// Dist returns the distance of v from the last Run's source, or +Inf if v
// was not reached.
func (d *DijkstraScratch) Dist(v int) float64 {
	if d.stamp[v] != d.epoch {
		return math.Inf(1)
	}
	return d.dist[v]
}

// Via returns the arc used to reach v in the last Run's tree, or -1 for
// the source and unreached nodes.
func (d *DijkstraScratch) Via(v int) int32 {
	if d.stamp[v] != d.epoch {
		return -1
	}
	return d.via[v]
}

// Reached reports whether v was reached by the last Run.
func (d *DijkstraScratch) Reached(v int) bool { return d.stamp[v] == d.epoch }
