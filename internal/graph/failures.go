package graph

import (
	"fmt"
	"math/rand"
)

// WithoutLinks returns a copy of g with the given link IDs removed.
// Server counts and classes are preserved. Link IDs refer to g; the copy
// renumbers its links.
func (g *Graph) WithoutLinks(ids []int) (*Graph, error) {
	drop := make(map[int]bool, len(ids))
	for _, id := range ids {
		if id < 0 || id >= g.NumLinks() {
			return nil, fmt.Errorf("graph: link id %d out of range", id)
		}
		drop[id] = true
	}
	ng := New(g.n)
	copy(ng.servers, g.servers)
	copy(ng.class, g.class)
	for id := 0; id < g.NumLinks(); id++ {
		if drop[id] {
			continue
		}
		u, v := g.LinkEnds(id)
		ng.AddLink(u, v, g.LinkCapacity(id))
	}
	return ng, nil
}

// FailRandomLinks removes a uniformly random fraction of g's links — the
// standard link-failure model for topology resilience studies. fraction
// is clamped to [0, 1]; at least one link survives if g had any.
func (g *Graph) FailRandomLinks(rng *rand.Rand, fraction float64) (*Graph, error) {
	if fraction <= 0 {
		return g.Clone(), nil
	}
	if fraction > 1 {
		fraction = 1
	}
	n := g.NumLinks()
	k := int(fraction * float64(n))
	if k >= n && n > 0 {
		k = n - 1
	}
	perm := rng.Perm(n)
	return g.WithoutLinks(perm[:k])
}
