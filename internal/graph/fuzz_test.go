package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// FuzzGraphRoundTrip: any JSON the parser accepts must re-export to a form
// that parses again and re-exports identically (export → parse → re-export
// is a fixed point after one round).
func FuzzGraphRoundTrip(f *testing.F) {
	// Seed with real exports.
	seedGraphs := []*Graph{New(0), New(1)}
	g := New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 2.5)
	g.AddLink(2, 3, 0.125)
	g.AddLink(0, 3, 7)
	g.SetServers(1, 3)
	g.SetClass(2, 1)
	seedGraphs = append(seedGraphs, g)
	rng := rand.New(rand.NewSource(8))
	h := New(12)
	for i := 1; i < 12; i++ {
		h.AddLink(rng.Intn(i), i, 1+rng.Float64())
	}
	seedGraphs = append(seedGraphs, h)
	for _, sg := range seedGraphs {
		data, err := json.Marshal(sg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"n":2,"links":[{"u":0,"v":1,"cap":1}]}`))
	f.Add([]byte(`{"n":3,"servers":[1,2,3],"class":[0,1,2],"links":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var g1 Graph
		if err := json.Unmarshal(data, &g1); err != nil {
			return // invalid input is fine; it just must not crash
		}
		if err := g1.Validate(); err != nil {
			t.Fatalf("parser accepted an invalid graph: %v", err)
		}
		out1, err := json.Marshal(&g1)
		if err != nil {
			t.Fatalf("re-export failed: %v", err)
		}
		var g2 Graph
		if err := json.Unmarshal(out1, &g2); err != nil {
			t.Fatalf("re-parse of own export failed: %v\nexport: %s", err, out1)
		}
		out2, err := json.Marshal(&g2)
		if err != nil {
			t.Fatalf("second export failed: %v", err)
		}
		if !bytes.Equal(out1, out2) {
			t.Fatalf("export not a fixed point:\nfirst:  %s\nsecond: %s", out1, out2)
		}
	})
}

// FuzzBucketMatchesHeap: on a derived random graph with random lengths,
// the bucket-queue traversal must be bit-identical to the heap Dijkstra —
// full runs and early-exit target runs alike. The fuzzer drives the graph
// shape, the length distribution, the bucket width (any fraction of the
// minimum length, the documented validity range), and the target set.
func FuzzBucketMatchesHeap(f *testing.F) {
	f.Add(int64(1), uint8(255), []byte{0})
	f.Add(int64(42), uint8(128), []byte{1, 2, 3})
	f.Add(int64(99), uint8(1), []byte{7, 7, 7, 7})
	f.Add(int64(7), uint8(64), []byte{200, 100, 50, 25, 12, 6})

	f.Fuzz(func(t *testing.T, seed int64, deltaByte uint8, targetBytes []byte) {
		if len(targetBytes) > 64 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(50)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddLink(rng.Intn(i), i, 1)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddLink(u, v, 1)
			}
		}
		lens := make([]float64, g.NumArcs())
		for a := range lens {
			lens[a] = 0.05 + rng.Float64()
			if rng.Intn(8) == 0 {
				lens[a] *= 1000 // occasional wide spread to force rebases
			}
		}
		minLen, _ := LengthRange(lens)
		// deltaByte sweeps (0, 2·minLen]: values ≤ minLen take the fast
		// bucket path, larger ones force the short-arc bail-to-heap, and
		// both must stay bit-identical to the heap.
		delta := minLen * (float64(deltaByte) + 1) / 128
		src := rng.Intn(n)
		dh, db := g.NewDijkstraScratch(), g.NewDijkstraScratch()
		dh.Run(src, lens, nil)
		db.RunBucketed(src, lens, nil, delta)
		for v := 0; v < n; v++ {
			if dh.Dist(v) != db.Dist(v) {
				t.Fatalf("dist[%d]: heap %v, bucket %v", v, dh.Dist(v), db.Dist(v))
			}
			if dh.Via(v) != db.Via(v) {
				t.Fatalf("via[%d]: heap %d, bucket %d", v, dh.Via(v), db.Via(v))
			}
		}
		// Early-exit run: targets and their root paths must be final.
		var targets []int32
		for _, b := range targetBytes {
			if v := int(b) % n; v != src {
				targets = append(targets, int32(v))
			}
		}
		if len(targets) == 0 {
			return
		}
		db.RunBucketed(src, lens, targets, delta)
		for _, v := range targets {
			at := int(v)
			for at != src {
				if db.Dist(at) != dh.Dist(at) {
					t.Fatalf("target %d path node %d: bucket %v, full heap %v", v, at, db.Dist(at), dh.Dist(at))
				}
				a := db.Via(at)
				if a != dh.Via(at) {
					t.Fatalf("target %d path node %d: bucket via %d, full heap via %d", v, at, a, dh.Via(at))
				}
				at = int(g.Arc(int(a)).From)
			}
		}
	})
}

// FuzzRepairMatchesRebuild: arbitrary increase-only length evolutions on a
// derived random graph must keep Repair bit-identical to a from-scratch
// Dijkstra. The fuzzer drives which arcs grow, by how much, and how the
// growth is batched; seeds mirror the oracle-test corpus.
func FuzzRepairMatchesRebuild(f *testing.F) {
	f.Add(int64(42), []byte{1, 2, 3, 200, 17, 5})
	f.Add(int64(99), []byte{0, 0, 0, 0})
	f.Add(int64(7), []byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 9})
	f.Add(int64(53), []byte{10, 250, 3, 77, 77, 77, 200, 1})

	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		if len(ops) == 0 || len(ops) > 512 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddLink(rng.Intn(i), i, 1)
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddLink(u, v, 1)
			}
		}
		m := g.NumArcs()
		lens := make([]float64, m)
		for a := range lens {
			lens[a] = 0.1 + rng.Float64()
		}
		src := rng.Intn(n)
		d := g.NewDijkstraScratch()
		d.Run(src, lens, nil)
		// Each op byte grows one arc; every 4th op closes a batch and
		// checks the repaired tree against a rebuild.
		var changed []int32
		flush := func() {
			if len(changed) == 0 {
				return
			}
			if !d.Repair(lens, changed) {
				t.Fatal("repair refused a complete tree")
			}
			dist, via := g.Dijkstra(src, lens)
			for v := 0; v < n; v++ {
				if d.Dist(v) != dist[v] {
					t.Fatalf("dist[%d]: repair %v, rebuild %v", v, d.Dist(v), dist[v])
				}
				if d.Via(v) != via[v] {
					t.Fatalf("via[%d]: repair %d, rebuild %d", v, d.Via(v), via[v])
				}
			}
			changed = changed[:0]
		}
		for i, op := range ops {
			a := int32(int(op) % m)
			lens[a] *= 1 + float64(op%7)/10 + 0.01
			changed = append(changed, a)
			if i%4 == 3 {
				flush()
			}
		}
		flush()
	})
}
