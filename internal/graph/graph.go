// Package graph provides the capacitated multigraph substrate used by every
// other package in this repository.
//
// A Graph models a network of switches. Nodes are switches; each node may
// have servers attached (servers are modeled as demand endpoints, not as
// graph nodes). Links are undirected and capacitated: a link of capacity c
// between u and v provides c units of capacity in each direction,
// represented internally as a pair of directed arcs. Arc 2k and arc 2k+1
// are always the two directions of link k, so the reverse of arc a is a^1.
//
// The representation supports multigraphs (parallel links) because random
// topology constructions occasionally produce them before repair, and
// because multi-trunk links between large switches (paper §5.2) are most
// naturally expressed as parallel capacity.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Arc is one direction of an undirected link.
type Arc struct {
	From, To int32
	Cap      float64
}

// Graph is an undirected capacitated multigraph over switches.
// The zero value is an empty graph; use New to create one with nodes.
type Graph struct {
	n       int
	servers []int     // servers attached to each node
	class   []int     // optional node class (e.g. ToR / Agg / Core), default 0
	arcs    []Arc     // directed arcs; arc a's reverse is a ^ 1
	adj     [][]int32 // arc indices leaving each node

	// csrCache holds the lazily built CSR view of the adjacency used by the
	// traversal hot paths; it is invalidated by AddLink. Concurrent readers
	// may race to build it, which is harmless: the build is deterministic
	// and the last store wins.
	csrCache atomic.Pointer[csr]
}

// csr is a compressed-sparse-row view of the adjacency: the out-arcs of
// node u occupy positions start[u]..start[u+1] of the flat arrays. Keeping
// destination and arc index in parallel slices makes the Dijkstra/BFS inner
// loops walk contiguous memory instead of chasing per-node slice headers.
type csr struct {
	start []int32 // len n+1
	to    []int32 // len m: destination of the k-th adjacency entry
	arc   []int32 // len m: original arc index of the k-th adjacency entry
}

// csrView returns the CSR adjacency, building it on first use.
func (g *Graph) csrView() *csr {
	if c := g.csrCache.Load(); c != nil {
		return c
	}
	m := len(g.arcs)
	c := &csr{
		start: make([]int32, g.n+1),
		to:    make([]int32, m),
		arc:   make([]int32, m),
	}
	pos := int32(0)
	for u := 0; u < g.n; u++ {
		c.start[u] = pos
		for _, a := range g.adj[u] {
			c.to[pos] = g.arcs[a].To
			c.arc[pos] = a
			pos++
		}
	}
	c.start[g.n] = pos
	g.csrCache.Store(c)
	return c
}

// New returns a graph with n nodes and no links.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{
		n:       n,
		servers: make([]int, n),
		class:   make([]int, n),
		adj:     make([][]int32, n),
	}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:       g.n,
		servers: append([]int(nil), g.servers...),
		class:   append([]int(nil), g.class...),
		arcs:    append([]Arc(nil), g.arcs...),
		adj:     make([][]int32, g.n),
	}
	for i := range g.adj {
		c.adj[i] = append([]int32(nil), g.adj[i]...)
	}
	return c
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// NumLinks returns the number of undirected links.
func (g *Graph) NumLinks() int { return len(g.arcs) / 2 }

// NumArcs returns the number of directed arcs (2 per link).
func (g *Graph) NumArcs() int { return len(g.arcs) }

// Arc returns the a-th directed arc.
func (g *Graph) Arc(a int) Arc { return g.arcs[a] }

// Reverse returns the index of the reverse arc of a.
func Reverse(a int) int { return a ^ 1 }

// AddLink adds an undirected link of capacity cap (each direction) between
// u and v and returns the link index. Self-loops are rejected.
func (g *Graph) AddLink(u, v int, capacity float64) int {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: link (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity <= 0 {
		panic(fmt.Sprintf("graph: non-positive capacity %v", capacity))
	}
	id := len(g.arcs) / 2
	g.arcs = append(g.arcs,
		Arc{From: int32(u), To: int32(v), Cap: capacity},
		Arc{From: int32(v), To: int32(u), Cap: capacity},
	)
	g.adj[u] = append(g.adj[u], int32(2*id))
	g.adj[v] = append(g.adj[v], int32(2*id+1))
	g.csrCache.Store(nil)
	return id
}

// HasLink reports whether at least one link joins u and v.
func (g *Graph) HasLink(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if int(g.arcs[a].To) == v {
			return true
		}
	}
	return false
}

// OutArcs returns the arc indices leaving node u. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) OutArcs(u int) []int32 { return g.adj[u] }

// Degree returns the number of link endpoints at u (counting multiplicity).
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the distinct neighbors of u in ascending order.
func (g *Graph) Neighbors(u int) []int {
	seen := make(map[int]bool, len(g.adj[u]))
	out := make([]int, 0, len(g.adj[u]))
	for _, a := range g.adj[u] {
		v := int(g.arcs[a].To)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out
}

// SetServers sets the number of servers attached to node u.
func (g *Graph) SetServers(u, s int) {
	if s < 0 {
		panic("graph: negative server count")
	}
	g.servers[u] = s
}

// Servers returns the number of servers attached to node u.
func (g *Graph) Servers(u int) int { return g.servers[u] }

// TotalServers returns the total number of attached servers.
func (g *Graph) TotalServers() int {
	t := 0
	for _, s := range g.servers {
		t += s
	}
	return t
}

// SetClass tags node u with an integer class (e.g. 0=ToR, 1=Agg, 2=Core).
func (g *Graph) SetClass(u, c int) { g.class[u] = c }

// Class returns the class tag of node u.
func (g *Graph) Class(u int) int { return g.class[u] }

// TotalCapacity returns the sum of arc capacities — the paper's C, which
// counts each direction of each link separately.
func (g *Graph) TotalCapacity() float64 {
	var c float64
	for _, a := range g.arcs {
		c += a.Cap
	}
	return c
}

// LinkCapacity returns the capacity (one direction) of link id.
func (g *Graph) LinkCapacity(id int) float64 { return g.arcs[2*id].Cap }

// LinkEnds returns the endpoints of link id.
func (g *Graph) LinkEnds(id int) (u, v int) {
	return int(g.arcs[2*id].From), int(g.arcs[2*id].To)
}

// ScaleLinkCapacity multiplies the capacity of link id by f.
func (g *Graph) ScaleLinkCapacity(id int, f float64) {
	if f <= 0 {
		panic("graph: non-positive capacity scale")
	}
	g.arcs[2*id].Cap *= f
	g.arcs[2*id+1].Cap *= f
}

// CutCapacity returns the total capacity of arcs leaving the node set S
// (counting one direction: arcs from S to V\S).
func (g *Graph) CutCapacity(inS []bool) float64 {
	var c float64
	for _, a := range g.arcs {
		if inS[a.From] && !inS[a.To] {
			c += a.Cap
		}
	}
	return c
}

// CrossCapacity returns the total capacity of arcs in both directions
// between S and V\S — the paper's C̄ ("counting each direction separately").
func (g *Graph) CrossCapacity(inS []bool) float64 {
	var c float64
	for _, a := range g.arcs {
		if inS[a.From] != inS[a.To] {
			c += a.Cap
		}
	}
	return c
}

// DegreeSequence returns the degree of every node.
func (g *Graph) DegreeSequence() []int {
	d := make([]int, g.n)
	for i := range d {
		d[i] = len(g.adj[i])
	}
	return d
}

// IsRegular reports whether all nodes have degree r.
func (g *Graph) IsRegular() (r int, ok bool) {
	if g.n == 0 {
		return 0, true
	}
	r = len(g.adj[0])
	for i := 1; i < g.n; i++ {
		if len(g.adj[i]) != r {
			return 0, false
		}
	}
	return r, true
}

// Validate checks internal invariants and returns an error describing the
// first violation found, or nil. It is used by tests and by constructors of
// randomized topologies.
func (g *Graph) Validate() error {
	if len(g.arcs)%2 != 0 {
		return fmt.Errorf("graph: odd arc count %d", len(g.arcs))
	}
	for i := 0; i < len(g.arcs); i += 2 {
		f, r := g.arcs[i], g.arcs[i+1]
		if f.From != r.To || f.To != r.From {
			return fmt.Errorf("graph: arcs %d,%d are not mutual reverses", i, i+1)
		}
		if f.Cap != r.Cap {
			return fmt.Errorf("graph: asymmetric capacities on link %d", i/2)
		}
		if f.From == f.To {
			return fmt.Errorf("graph: self-loop on link %d", i/2)
		}
		if math.IsNaN(f.Cap) || f.Cap <= 0 {
			return fmt.Errorf("graph: bad capacity %v on link %d", f.Cap, i/2)
		}
	}
	total := 0
	for u, as := range g.adj {
		for _, a := range as {
			if int(g.arcs[a].From) != u {
				return fmt.Errorf("graph: adjacency of %d lists arc %d from %d", u, a, g.arcs[a].From)
			}
		}
		total += len(as)
	}
	if total != len(g.arcs) {
		return fmt.Errorf("graph: adjacency covers %d arcs, want %d", total, len(g.arcs))
	}
	return nil
}
