package graph

import (
	"encoding/json"
	"fmt"
	"strings"
)

// DOT renders the graph in Graphviz DOT format. Nodes are labeled with
// their index, class, and server count; links with their capacity.
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", name)
	for u := 0; u < g.n; u++ {
		fmt.Fprintf(&b, "  n%d [label=\"%d c%d s%d\"];\n", u, u, g.class[u], g.servers[u])
	}
	for id := 0; id < g.NumLinks(); id++ {
		u, v := g.LinkEnds(id)
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%g\"];\n", u, v, g.LinkCapacity(id))
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonGraph is the serialized form used by MarshalJSON/UnmarshalJSON and by
// the flowsolve command.
type jsonGraph struct {
	N       int        `json:"n"`
	Servers []int      `json:"servers,omitempty"`
	Class   []int      `json:"class,omitempty"`
	Links   []jsonLink `json:"links"`
}

type jsonLink struct {
	U   int     `json:"u"`
	V   int     `json:"v"`
	Cap float64 `json:"cap"`
}

// MarshalJSON serializes the graph.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{N: g.n, Servers: g.servers, Class: g.class}
	for id := 0; id < g.NumLinks(); id++ {
		u, v := g.LinkEnds(id)
		jg.Links = append(jg.Links, jsonLink{U: u, V: v, Cap: g.LinkCapacity(id)})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON deserializes a graph produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := New(jg.N)
	for i, s := range jg.Servers {
		if i < jg.N {
			ng.SetServers(i, s)
		}
	}
	for i, c := range jg.Class {
		if i < jg.N {
			ng.SetClass(i, c)
		}
	}
	for _, l := range jg.Links {
		if l.U < 0 || l.U >= jg.N || l.V < 0 || l.V >= jg.N || l.U == l.V || l.Cap <= 0 {
			return fmt.Errorf("graph: invalid link %+v", l)
		}
		ng.AddLink(l.U, l.V, l.Cap)
	}
	// Adopt ng's fields individually: Graph holds an atomic CSR cache that
	// must not be copied as a value.
	g.n = ng.n
	g.servers = ng.servers
	g.class = ng.class
	g.arcs = ng.arcs
	g.adj = ng.adj
	g.csrCache.Store(nil)
	return nil
}
