package hetero

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/rrg"
)

// BuildPowerLaw constructs the Fig. 5 scenario: switches with the given
// port counts (typically power-law distributed), with servers attached to
// switch i in proportion to ports[i]^beta (largest-remainder rounding) and
// a uniform random graph over the remaining ports.
//
// Every switch retains at least one network port; if the beta-weighted
// allocation would exceed a switch's capacity, the surplus spills to the
// switches with the most free ports (the paper: "appropriate distribution
// of servers is applied by rounding where necessary").
func BuildPowerLaw(rng *rand.Rand, ports []int, servers int, beta float64) (*graph.Graph, error) {
	n := len(ports)
	if n == 0 {
		return nil, fmt.Errorf("hetero: no switches")
	}
	alloc, err := PowerServerAllocation(ports, servers, beta)
	if err != nil {
		return nil, err
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = ports[i] - alloc[i]
	}
	if sum(deg)%2 != 0 {
		deg[argmax(deg)]--
	}
	g, err := rrg.FromDegrees(rng, deg, 1)
	if err != nil {
		return nil, err
	}
	for i, s := range alloc {
		g.SetServers(i, s)
	}
	return g, nil
}

// PowerServerAllocation apportions servers to switches proportionally to
// ports[i]^beta, capping each switch at ports[i]-1 so it keeps a network
// port, and spilling any excess to the switches with the most headroom.
func PowerServerAllocation(ports []int, servers int, beta float64) ([]int, error) {
	n := len(ports)
	capacity := 0
	weights := make([]float64, n)
	var wsum float64
	for i, p := range ports {
		if p < 2 {
			return nil, fmt.Errorf("hetero: switch %d has only %d ports", i, p)
		}
		capacity += p - 1
		weights[i] = math.Pow(float64(p), beta)
		wsum += weights[i]
	}
	if servers > capacity {
		return nil, fmt.Errorf("hetero: %d servers exceed capacity %d", servers, capacity)
	}
	if wsum == 0 {
		return nil, fmt.Errorf("hetero: zero total weight")
	}
	alloc := make([]int, n)
	type frac struct {
		i int
		f float64
	}
	var fr []frac
	assigned := 0
	for i := range ports {
		exact := float64(servers) * weights[i] / wsum
		alloc[i] = int(exact)
		if m := ports[i] - 1; alloc[i] > m {
			alloc[i] = m
		}
		assigned += alloc[i]
		fr = append(fr, frac{i, exact - float64(alloc[i])})
	}
	sort.Slice(fr, func(a, b int) bool { return fr[a].f > fr[b].f })
	for k := 0; assigned < servers; k = (k + 1) % n {
		i := fr[k].i
		if alloc[i] < ports[i]-1 {
			alloc[i]++
			assigned++
		}
	}
	return alloc, nil
}
