// Package hetero implements the paper's heterogeneous topology design
// framework (§5): networks of two switch types with different port counts
// (and optionally line-speeds), a controlled distribution of servers across
// the types, and a controlled volume of cross-cluster connectivity, with
// random wiring inside those volume constraints.
package hetero

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rrg"
)

// Node classes in graphs built by this package.
const (
	ClassLarge = 0
	ClassSmall = 1
)

// Config describes a two-switch-type network experiment point.
type Config struct {
	NumLarge, NumSmall     int // switch counts per type
	PortsLarge, PortsSmall int // low-speed ports per switch of each type

	// Servers is the total number of servers to attach.
	Servers int

	// ServersPerLarge/PerSmall, when non-negative, pin the per-switch
	// server counts explicitly (the paper's "16H, 2L" style curves). When
	// either is negative, servers are split according to ServerRatio.
	ServersPerLarge, ServersPerSmall int

	// ServerRatio is the Fig. 4 x-axis: the number of servers attached to
	// large switches as a ratio to the expectation under random (i.e.
	// port-proportional) placement. 1 means proportional. Ignored when
	// explicit per-switch counts are set.
	ServerRatio float64

	// CrossRatio is the Fig. 6 x-axis: the number of cross-cluster links
	// as a ratio to the expectation under vanilla random wiring. 1 means
	// unbiased.
	CrossRatio float64

	// HighLinksPerLarge adds that many extra high-line-speed ports to every
	// large switch, wired as a random regular graph among the large
	// switches only (§5.2: "high line-speed ports are assumed to connect
	// only to other high line-speed ports"). HighCap is their capacity in
	// units of the low line-speed (e.g. 10 for 10×).
	HighLinksPerLarge int
	HighCap           float64
}

// Build constructs a network per cfg. Nodes 0..NumLarge-1 are the large
// switches (ClassLarge); the rest are small (ClassSmall). Low-speed links
// have capacity 1.
func Build(rng *rand.Rand, cfg Config) (*graph.Graph, error) {
	if cfg.NumLarge <= 0 || cfg.NumSmall < 0 || cfg.PortsLarge <= 0 || cfg.PortsSmall < 0 {
		return nil, fmt.Errorf("hetero: invalid switch pool %+v", cfg)
	}
	sL, sS, err := splitServers(cfg)
	if err != nil {
		return nil, err
	}
	perLarge, err := spreadEvenly(sL, cfg.NumLarge, cfg.PortsLarge-1)
	if err != nil {
		return nil, fmt.Errorf("hetero: large switches cannot host %d servers (%v): %w", sL, err, ErrInfeasiblePoint)
	}
	perSmall, err := spreadEvenly(sS, cfg.NumSmall, cfg.PortsSmall-1)
	if err != nil {
		return nil, fmt.Errorf("hetero: small switches cannot host %d servers (%v): %w", sS, err, ErrInfeasiblePoint)
	}

	// Remaining low-speed ports form the switch-to-switch network.
	degL := make([]int, cfg.NumLarge)
	for i := range degL {
		degL[i] = cfg.PortsLarge - perLarge[i]
	}
	degS := make([]int, cfg.NumSmall)
	for i := range degS {
		degS[i] = cfg.PortsSmall - perSmall[i]
	}
	sa, sb := sum(degL), sum(degS)

	crossRatio := cfg.CrossRatio
	if crossRatio == 0 {
		crossRatio = 1
	}
	expected := rrg.ExpectedCrossLinks(sa, sb)
	want := int(math.Round(crossRatio * expected))
	cross, err := rrg.FeasibleCross(want, sa, sb)
	if err != nil {
		// Parity mismatch between the clusters: shave one network port off
		// the switch with the most, as a physical deployment would leave
		// one port dark.
		if sa >= sb && sa > 0 {
			degL[argmax(degL)]--
			sa--
		} else if sb > 0 {
			degS[argmax(degS)]--
			sb--
		}
		cross, err = rrg.FeasibleCross(want, sa, sb)
		if err != nil {
			return nil, err
		}
	}

	// AllowParallel: at very low cross-cluster ratios a dense cluster may
	// need more within-cluster links than distinct partners exist; physical
	// networks trunk parallel cables there.
	g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{
		DegA: degL, DegB: degS, CrossLinks: cross, LinkCap: 1, AllowParallel: true,
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.NumLarge; i++ {
		g.SetClass(i, ClassLarge)
		g.SetServers(i, perLarge[i])
	}
	for i := 0; i < cfg.NumSmall; i++ {
		g.SetClass(cfg.NumLarge+i, ClassSmall)
		g.SetServers(cfg.NumLarge+i, perSmall[i])
	}

	if cfg.HighLinksPerLarge > 0 {
		if cfg.HighCap <= 0 {
			return nil, fmt.Errorf("hetero: HighLinksPerLarge set with HighCap %v", cfg.HighCap)
		}
		hs, err := rrg.Regular(rng, cfg.NumLarge, cfg.HighLinksPerLarge)
		if err != nil {
			return nil, fmt.Errorf("hetero: high-speed mesh: %w", err)
		}
		for id := 0; id < hs.NumLinks(); id++ {
			u, v := hs.LinkEnds(id)
			g.AddLink(u, v, cfg.HighCap)
		}
	}
	return g, nil
}

// ProportionalLargeServers returns the expected number of servers at large
// switches under random (port-proportional) placement — the denominator of
// the Fig. 4 x-axis.
func ProportionalLargeServers(cfg Config) float64 {
	pl := cfg.NumLarge * cfg.PortsLarge
	ps := cfg.NumSmall * cfg.PortsSmall
	if pl+ps == 0 {
		return 0
	}
	return float64(cfg.Servers) * float64(pl) / float64(pl+ps)
}

// splitServers resolves the (large, small) server totals from cfg.
func splitServers(cfg Config) (int, int, error) {
	if cfg.ServersPerLarge >= 0 && cfg.ServersPerSmall >= 0 &&
		(cfg.ServersPerLarge > 0 || cfg.ServersPerSmall > 0) {
		sL := cfg.ServersPerLarge * cfg.NumLarge
		sS := cfg.ServersPerSmall * cfg.NumSmall
		if cfg.Servers != 0 && cfg.Servers != sL+sS {
			return 0, 0, fmt.Errorf("hetero: explicit per-switch servers (%d) conflict with Servers=%d", sL+sS, cfg.Servers)
		}
		return sL, sS, nil
	}
	ratio := cfg.ServerRatio
	if ratio == 0 {
		ratio = 1
	}
	sL := int(math.Round(ratio * ProportionalLargeServers(cfg)))
	if sL > cfg.Servers || sL < 0 {
		return 0, 0, fmt.Errorf("hetero: server ratio %v places %d of %d servers at large switches: %w",
			ratio, sL, cfg.Servers, ErrInfeasiblePoint)
	}
	return sL, cfg.Servers - sL, nil
}

// ErrInfeasiblePoint marks sweep points that no physical configuration can
// realize (e.g. a server ratio that would need more servers than exist).
// Experiment sweeps skip such points.
var ErrInfeasiblePoint = errors.New("infeasible sweep point")

// spreadEvenly divides total items across n bins as evenly as possible,
// failing if any bin would exceed maxPer (each switch must keep at least
// one network port).
func spreadEvenly(total, n, maxPer int) ([]int, error) {
	if n == 0 {
		if total != 0 {
			return nil, fmt.Errorf("%d items into 0 bins", total)
		}
		return nil, nil
	}
	if total < 0 {
		return nil, fmt.Errorf("negative total %d", total)
	}
	base, extra := total/n, total%n
	if base > maxPer || (base == maxPer && extra > 0) {
		return nil, fmt.Errorf("%d items into %d bins exceeds max %d per bin", total, n, maxPer)
	}
	out := make([]int, n)
	for i := range out {
		out[i] = base
		if i < extra {
			out[i]++
		}
	}
	return out, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func argmax(xs []int) int {
	m := 0
	for i, x := range xs {
		if x > xs[m] {
			m = i
		}
		_ = x
	}
	return m
}

// LargeClusterMask returns the indicator of the large-switch cluster for a
// graph built by Build.
func LargeClusterMask(cfg Config) []bool {
	mask := make([]bool, cfg.NumLarge+cfg.NumSmall)
	for i := 0; i < cfg.NumLarge; i++ {
		mask[i] = true
	}
	return mask
}
