package hetero

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rrg"
)

func baseCfg() Config {
	return Config{
		NumLarge: 10, NumSmall: 20,
		PortsLarge: 24, PortsSmall: 12,
		Servers:         200,
		ServersPerLarge: -1, ServersPerSmall: -1,
	}
}

func TestBuildProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := baseCfg()
	g, err := Build(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 {
		t.Fatalf("nodes %d", g.N())
	}
	if g.TotalServers() != 200 {
		t.Fatalf("servers %d", g.TotalServers())
	}
	// Proportional split: large port share 240/480 = 0.5 -> 100 servers.
	var largeServers int
	for u := 0; u < cfg.NumLarge; u++ {
		largeServers += g.Servers(u)
		if g.Class(u) != ClassLarge {
			t.Fatal("class tag wrong")
		}
	}
	if largeServers != 100 {
		t.Fatalf("servers at large %d, want 100", largeServers)
	}
	// Port budgets respected: degree + servers = ports.
	for u := 0; u < cfg.NumLarge; u++ {
		if g.Degree(u)+g.Servers(u) != cfg.PortsLarge {
			t.Fatalf("large %d: deg %d + servers %d != %d", u, g.Degree(u), g.Servers(u), cfg.PortsLarge)
		}
	}
	for u := cfg.NumLarge; u < g.N(); u++ {
		used := g.Degree(u) + g.Servers(u)
		if used > cfg.PortsSmall || used < cfg.PortsSmall-1 {
			t.Fatalf("small %d uses %d of %d ports", u, used, cfg.PortsSmall)
		}
	}
	if !g.IsConnected() {
		t.Fatal("disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildExplicitSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := baseCfg()
	cfg.Servers = 0
	cfg.ServersPerLarge, cfg.ServersPerSmall = 12, 4
	g, err := Build(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < cfg.NumLarge; u++ {
		if g.Servers(u) != 12 {
			t.Fatalf("large %d servers %d", u, g.Servers(u))
		}
	}
	for u := cfg.NumLarge; u < g.N(); u++ {
		if g.Servers(u) != 4 {
			t.Fatalf("small %d servers %d", u, g.Servers(u))
		}
	}
}

func TestBuildExplicitSplitConflict(t *testing.T) {
	cfg := baseCfg()
	cfg.ServersPerLarge, cfg.ServersPerSmall = 12, 4
	cfg.Servers = 77 // != 12·10 + 4·20 = 200
	if _, err := Build(rand.New(rand.NewSource(1)), cfg); err == nil {
		t.Fatal("conflicting totals accepted")
	}
}

func TestBuildCrossRatio(t *testing.T) {
	for _, x := range []float64{0.3, 1.0, 1.8} {
		rng := rand.New(rand.NewSource(3))
		cfg := baseCfg()
		cfg.CrossRatio = x
		g, err := Build(rng, cfg)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		mask := LargeClusterMask(cfg)
		cross := g.CrossCapacity(mask) / 2 // links
		// Compute the expectation from the realized degrees.
		var sa, sb int
		for u := 0; u < g.N(); u++ {
			if mask[u] {
				sa += g.Degree(u)
			} else {
				sb += g.Degree(u)
			}
		}
		// The realized cross count should scale roughly with x.
		if x < 0.5 && cross > float64(sa)/2 {
			t.Fatalf("x=%v produced %v cross links", x, cross)
		}
		if !g.IsConnected() {
			t.Fatalf("x=%v disconnected", x)
		}
	}
}

func TestBuildCrossRatioOrdering(t *testing.T) {
	crossAt := func(x float64) float64 {
		rng := rand.New(rand.NewSource(5))
		cfg := baseCfg()
		cfg.CrossRatio = x
		g, err := Build(rng, cfg)
		if err != nil {
			t.Fatalf("x=%v: %v", x, err)
		}
		return g.CrossCapacity(LargeClusterMask(cfg))
	}
	lo, mid, hi := crossAt(0.3), crossAt(1.0), crossAt(1.7)
	if !(lo < mid && mid < hi) {
		t.Fatalf("cross capacity not monotone in ratio: %v %v %v", lo, mid, hi)
	}
}

func TestServerRatioInfeasible(t *testing.T) {
	cfg := baseCfg()
	cfg.ServerRatio = 2.5 // 2.5·100 = 250 > 200 total servers
	_, err := Build(rand.New(rand.NewSource(1)), cfg)
	if !errors.Is(err, ErrInfeasiblePoint) {
		t.Fatalf("expected infeasible point, got %v", err)
	}
}

func TestServerOverflowInfeasible(t *testing.T) {
	cfg := baseCfg()
	cfg.Servers = 1000 // exceeds even total port count
	_, err := Build(rand.New(rand.NewSource(1)), cfg)
	if err == nil {
		t.Fatal("overfull configuration accepted")
	}
}

func TestHighSpeedLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := baseCfg()
	cfg.HighLinksPerLarge, cfg.HighCap = 3, 10
	g, err := Build(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// High-speed links exist only among large switches and have cap 10.
	var high int
	for id := 0; id < g.NumLinks(); id++ {
		if g.LinkCapacity(id) == 10 {
			u, v := g.LinkEnds(id)
			if u >= cfg.NumLarge || v >= cfg.NumLarge {
				t.Fatalf("high-speed link %d touches small switch", id)
			}
			high++
		}
	}
	if high != cfg.NumLarge*cfg.HighLinksPerLarge/2 {
		t.Fatalf("high-speed links %d, want %d", high, cfg.NumLarge*cfg.HighLinksPerLarge/2)
	}
	// Total capacity grows accordingly.
	plain, err := Build(rand.New(rand.NewSource(7)), baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalCapacity() <= plain.TotalCapacity() {
		t.Fatal("high-speed links did not add capacity")
	}
}

func TestHighSpeedMissingCap(t *testing.T) {
	cfg := baseCfg()
	cfg.HighLinksPerLarge = 3
	if _, err := Build(rand.New(rand.NewSource(1)), cfg); err == nil {
		t.Fatal("HighCap unset should error")
	}
}

func TestProportionalLargeServers(t *testing.T) {
	cfg := baseCfg()
	if got := ProportionalLargeServers(cfg); got != 100 {
		t.Fatalf("got %v, want 100", got)
	}
}

func TestSpreadEvenly(t *testing.T) {
	out, err := spreadEvenly(10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, v := range out {
		total += v
	}
	if total != 10 {
		t.Fatalf("sum %d", total)
	}
	if out[0]-out[3] > 1 {
		t.Fatalf("uneven spread %v", out)
	}
	if _, err := spreadEvenly(100, 4, 5); err == nil {
		t.Fatal("overfull spread accepted")
	}
	if _, err := spreadEvenly(3, 0, 5); err == nil {
		t.Fatal("zero bins with items accepted")
	}
}

func TestPowerServerAllocation(t *testing.T) {
	ports := []int{20, 10, 10, 5, 5}
	alloc, err := PowerServerAllocation(ports, 20, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, a := range alloc {
		if a > ports[i]-1 {
			t.Fatalf("switch %d over capacity: %d", i, a)
		}
		total += a
	}
	if total != 20 {
		t.Fatalf("allocated %d, want 20", total)
	}
	// beta=1 is proportional: switch 0 gets ~2x switch 1.
	if alloc[0] < alloc[1] {
		t.Fatalf("allocation not proportional: %v", alloc)
	}
	// beta=0 is uniform.
	alloc0, err := PowerServerAllocation(ports, 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if alloc0[0]-alloc0[4] > 1 {
		t.Fatalf("beta=0 not uniform: %v", alloc0)
	}
}

func TestPowerServerAllocationErrors(t *testing.T) {
	if _, err := PowerServerAllocation([]int{5, 5}, 100, 1); err == nil {
		t.Fatal("overfull accepted")
	}
	if _, err := PowerServerAllocation([]int{1, 5}, 2, 1); err == nil {
		t.Fatal("one-port switch accepted")
	}
}

func TestBuildPowerLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ports, err := rrg.PowerLawDegrees(rng, 30, 8, 2.2, 3, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, beta := range []float64{0, 1, 1.4} {
		g, err := BuildPowerLaw(rng, ports, 80, beta)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		if g.TotalServers() != 80 {
			t.Fatalf("beta=%v servers %d", beta, g.TotalServers())
		}
		if !g.IsConnected() {
			t.Fatalf("beta=%v disconnected", beta)
		}
	}
}

// Property: Build conserves servers and never exceeds port budgets across
// random feasible configurations.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(seed int64, ratioRaw, crossRaw uint8) bool {
		cfg := baseCfg()
		cfg.ServerRatio = 0.5 + float64(ratioRaw%100)/100 // [0.5, 1.5)
		cfg.CrossRatio = 0.2 + float64(crossRaw%160)/100  // [0.2, 1.8)
		g, err := Build(rand.New(rand.NewSource(seed)), cfg)
		if errors.Is(err, ErrInfeasiblePoint) || errors.Is(err, rrg.ErrInfeasible) {
			return true
		}
		if err != nil {
			return false
		}
		if g.TotalServers() != cfg.Servers {
			return false
		}
		for u := 0; u < cfg.NumLarge; u++ {
			if g.Degree(u)+g.Servers(u) > cfg.PortsLarge {
				return false
			}
		}
		for u := cfg.NumLarge; u < g.N(); u++ {
			if g.Degree(u)+g.Servers(u) > cfg.PortsSmall {
				return false
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
