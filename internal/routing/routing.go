// Package routing provides static multipath routing models as a baseline
// against the optimal-flow throughput of package mcf. The paper's flow
// model assumes optimal splitting (§3); real deployments run ECMP-style
// equal splitting over shortest paths, and §8.2 shows MPTCP over shortest
// paths approaches the optimum. This package quantifies the gap on the
// static side: throughput when every commodity splits its demand equally
// across its shortest paths.
package routing

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// ECMPResult reports equal-split shortest-path routing throughput.
type ECMPResult struct {
	// Throughput is the largest λ such that scaling every commodity's
	// equal-split load by λ respects all arc capacities.
	Throughput float64
	// ArcLoad is the per-arc load at λ = 1 (demands at face value).
	ArcLoad []float64
	// Bottleneck is the arc index attaining the capacity ratio.
	Bottleneck int
	// PathsPerFlow is the average number of shortest paths used.
	PathsPerFlow float64
}

// maxPathsPerCommodity caps path enumeration per commodity; beyond this
// many equal-cost paths the split is effectively fluid anyway.
const maxPathsPerCommodity = 64

// ECMP computes equal-split shortest-path routing for the commodities.
// Every commodity enumerates up to maxPathsPerCommodity shortest paths
// (all of minimal hop count) and splits its demand equally across them.
func ECMP(g *graph.Graph, flows []traffic.Flow) (*ECMPResult, error) {
	load := make([]float64, g.NumArcs())
	var totalPaths int
	for _, f := range flows {
		if f.Src == f.Dst || f.Demand <= 0 {
			return nil, fmt.Errorf("routing: invalid commodity %+v", f)
		}
		paths := g.ShortestPathDAGPaths(f.Src, f.Dst, maxPathsPerCommodity)
		if len(paths) == 0 {
			return nil, fmt.Errorf("routing: no path %d -> %d", f.Src, f.Dst)
		}
		share := f.Demand / float64(len(paths))
		for _, p := range paths {
			for _, a := range p {
				load[a] += share
			}
		}
		totalPaths += len(paths)
	}
	res := &ECMPResult{ArcLoad: load, Bottleneck: -1, Throughput: math.Inf(1)}
	for a := 0; a < g.NumArcs(); a++ {
		if load[a] == 0 {
			continue
		}
		if ratio := g.Arc(a).Cap / load[a]; ratio < res.Throughput {
			res.Throughput = ratio
			res.Bottleneck = a
		}
	}
	if res.Bottleneck < 0 {
		res.Throughput = math.Inf(1)
	}
	if len(flows) > 0 {
		res.PathsPerFlow = float64(totalPaths) / float64(len(flows))
	}
	return res, nil
}

// VLB computes Valiant load balancing throughput: every commodity routes
// via a two-phase spread over all intermediate nodes (the routing scheme
// underlying VL2's design), splitting demand equally across n two-segment
// routes src → w → dst, each segment taking equal-split shortest paths.
// This is the classical oblivious-routing baseline.
func VLB(g *graph.Graph, flows []traffic.Flow) (*ECMPResult, error) {
	n := g.N()
	load := make([]float64, g.NumArcs())
	// Precompute per-source shortest-path DAG loads lazily: for segment
	// (s, w) we spread 1 unit over its shortest paths.
	segCache := make(map[[2]int][]float64)
	segLoad := func(s, d int) ([]float64, error) {
		if s == d {
			return nil, nil
		}
		key := [2]int{s, d}
		if l, ok := segCache[key]; ok {
			return l, nil
		}
		paths := g.ShortestPathDAGPaths(s, d, maxPathsPerCommodity)
		if len(paths) == 0 {
			return nil, fmt.Errorf("routing: no path %d -> %d", s, d)
		}
		l := make([]float64, g.NumArcs())
		share := 1.0 / float64(len(paths))
		for _, p := range paths {
			for _, a := range p {
				l[a] += share
			}
		}
		segCache[key] = l
		return l, nil
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Demand <= 0 {
			return nil, fmt.Errorf("routing: invalid commodity %+v", f)
		}
		per := f.Demand / float64(n)
		for w := 0; w < n; w++ {
			for _, seg := range [][2]int{{f.Src, w}, {w, f.Dst}} {
				l, err := segLoad(seg[0], seg[1])
				if err != nil {
					return nil, err
				}
				for a, v := range l {
					if v != 0 {
						load[a] += per * v
					}
				}
			}
		}
	}
	res := &ECMPResult{ArcLoad: load, Bottleneck: -1, Throughput: math.Inf(1)}
	for a := 0; a < g.NumArcs(); a++ {
		if load[a] == 0 {
			continue
		}
		if ratio := g.Arc(a).Cap / load[a]; ratio < res.Throughput {
			res.Throughput = ratio
			res.Bottleneck = a
		}
	}
	if res.Bottleneck < 0 {
		res.Throughput = math.Inf(1)
	}
	return res, nil
}
