package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

func TestECMPSingleLink(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res, err := ECMP(g, []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput != 1 {
		t.Fatalf("throughput %v", res.Throughput)
	}
	if res.PathsPerFlow != 1 {
		t.Fatalf("paths per flow %v", res.PathsPerFlow)
	}
}

func TestECMPDiamondSplitsEvenly(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 3, 1)
	res, err := ECMP(g, []traffic.Flow{{Src: 0, Dst: 3, Demand: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Two equal-cost paths, each carrying 1 on unit arcs: λ = 1.
	if math.Abs(res.Throughput-1) > 1e-12 {
		t.Fatalf("throughput %v, want 1", res.Throughput)
	}
	if res.PathsPerFlow != 2 {
		t.Fatalf("paths %v", res.PathsPerFlow)
	}
}

func TestECMPWorseThanOptimalOnAsymmetry(t *testing.T) {
	// Two paths of different length: ECMP uses only the shortest (1 hop),
	// optimal flow uses both. Commodity demand 2 on cap-1 links.
	g := graph.New(3)
	g.AddLink(0, 2, 1) // direct
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1) // detour
	flows := []traffic.Flow{{Src: 0, Dst: 2, Demand: 2}}
	er, err := ECMP(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(er.Throughput-0.5) > 1e-12 {
		t.Fatalf("ECMP throughput %v, want 0.5 (direct path only)", er.Throughput)
	}
	opt, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Throughput <= er.Throughput+0.2 {
		t.Fatalf("optimal %v should clearly beat ECMP %v here", opt.Throughput, er.Throughput)
	}
}

func TestECMPNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		g, err := rrg.Regular(rng, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			g.SetServers(u, 2)
		}
		tm := traffic.Permutation(rng, traffic.HostsOf(g))
		er, err := ECMP(g, tm.Flows)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		// GK underestimates by ≤ε, so allow that much slack.
		if er.Throughput > opt.Throughput/(1-0.06)+1e-9 {
			t.Fatalf("ECMP %v beat optimal %v", er.Throughput, opt.Throughput)
		}
		// On RRGs ECMP over all shortest paths should be competitive
		// (the §8.2 story): within a factor ~2 of optimal.
		if er.Throughput < opt.Throughput/2.5 {
			t.Fatalf("ECMP %v far below optimal %v", er.Throughput, opt.Throughput)
		}
	}
}

func TestECMPErrors(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	if _, err := ECMP(g, []traffic.Flow{{Src: 0, Dst: 2, Demand: 1}}); err == nil {
		t.Fatal("unreachable accepted")
	}
	if _, err := ECMP(g, []traffic.Flow{{Src: 0, Dst: 0, Demand: 1}}); err == nil {
		t.Fatal("self flow accepted")
	}
}

func TestVLBOnCompleteGraph(t *testing.T) {
	// K4 with one commodity: VLB spreads over 4 intermediates (two of
	// which are the endpoints themselves).
	g := graph.New(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddLink(i, j, 1)
		}
	}
	res, err := VLB(g, []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 || math.IsInf(res.Throughput, 1) {
		t.Fatalf("VLB throughput %v", res.Throughput)
	}
	// Direct arc 0->1 carries: w=0 and w=1 both route via the direct
	// link (1/4 each + shortest-path splits) — load must be positive.
	if res.ArcLoad[0] <= 0 {
		t.Fatal("direct arc unused by VLB")
	}
}

func TestVLBvsECMPOnPermutation(t *testing.T) {
	// VLB is oblivious: on an RRG with permutation traffic it should be
	// within a constant factor of ECMP but not beat optimal.
	rng := rand.New(rand.NewSource(7))
	g, err := rrg.Regular(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	vr, err := VLB(g, tm.Flows)
	if err != nil {
		t.Fatal(err)
	}
	if vr.Throughput <= 0 {
		t.Fatalf("VLB throughput %v", vr.Throughput)
	}
	opt, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if vr.Throughput > opt.Throughput/(1-0.06)+1e-9 {
		t.Fatalf("VLB %v beat optimal %v", vr.Throughput, opt.Throughput)
	}
}
