// Package flowcheck is an independent verifier for the flows emitted by
// the internal/mcf solver. The paper's throughput comparisons are only as
// trustworthy as the solver, and the solver has accumulated aggressive
// optimizations (early stopping, persistent trees, incremental repair);
// flowcheck replays the claims from first principles, sharing none of the
// solver's hot-path machinery:
//
//   - decomposition: the recorded path decomposition is structurally a
//     flow — every path runs contiguously from its commodity's source to
//     its destination with positive volume, and the per-arc sums
//     reconstruct Result.ArcFlow.
//   - conservation: per-node net flow of ArcFlow equals the commodity
//     volumes entering/leaving that node (zero at transit nodes).
//   - capacity: no arc carries more than its capacity after the solver's
//     congestion scaling.
//   - demand: every commodity receives at least Throughput·demand —
//     concurrent-flow proportionality.
//   - optimality: the ε-gap. Result.DualLens is a length-function witness;
//     weak duality gives λ* ≤ Σ l·cap / Σ demand·dist_l for ANY
//     non-negative lengths l, so the verifier recomputes both sides with
//     its own from-scratch Dijkstra and checks the claimed throughput is
//     within the tolerated gap of that bound. The witness comes from the
//     solver, but its validity does not depend on the solver being
//     correct.
//
// The first four checks need Result.Paths, i.e. a solve with
// Options.RecordPaths set; without it they are reported as skipped.
//
// VerifyRouting applies the same discipline to the static routing
// baselines of internal/routing (ECMP and VLB): per-node conservation of
// the reported arc loads against the commodity volumes, load sanity, and
// the reported throughput re-derived from the bottleneck ratio.
//
// VerifyPacket certifies the packet simulator's measurement-window output
// (packet.Audit): exact per-node packet conservation, per-arc line-rate
// sanity, and goodput/delivered consistency.
package flowcheck

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/traffic"
)

// Options tunes the verifier's tolerances.
type Options struct {
	// Tolerance is the relative numerical slack for flow arithmetic
	// (conservation, capacity, decomposition sums). Default 1e-6: the
	// verifier re-sums volumes in a different order than the solver
	// accumulated them, so exact equality is not expected.
	Tolerance float64
	// GapTolerance is the accepted relative optimality gap against the
	// dual bound. Default 3·Result.Epsilon, the classical Garg–Könemann
	// guarantee against the best per-phase dual bound (whose length
	// snapshot is the exported witness). Solves that end on the early
	// primal-dual certificate typically show ≤ 1.5ε.
	GapTolerance float64
}

// Check is one verified invariant.
type Check struct {
	Name    string
	Pass    bool
	Skipped bool // true when the needed inputs were absent (no Paths)
	Detail  string
}

// Report is the structured result of a verification.
type Report struct {
	Checks     []Check
	Throughput float64
	// DualBound is the independently recomputed upper bound on the optimum
	// λ*, and Gap is 1 − Throughput/DualBound (0 when no flows).
	DualBound float64
	Gap       float64
	// PathCount is the number of decomposition paths examined.
	PathCount int
}

// OK reports whether every non-skipped check passed.
func (r *Report) OK() bool {
	for _, c := range r.Checks {
		if !c.Skipped && !c.Pass {
			return false
		}
	}
	return true
}

// Err returns nil when OK, else an error naming the failed checks.
func (r *Report) Err() error {
	var failed []string
	for _, c := range r.Checks {
		if !c.Skipped && !c.Pass {
			failed = append(failed, c.Name)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	return fmt.Errorf("flowcheck: failed checks: %s", strings.Join(failed, ", "))
}

// String renders the report for humans (the flowsolve -verify output).
func (r *Report) String() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.OK() {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "flowcheck: %s (λ=%.6g, dual bound %.6g, gap %.2f%%, %d paths)\n",
		verdict, r.Throughput, r.DualBound, 100*r.Gap, r.PathCount)
	for _, c := range r.Checks {
		state := "ok"
		switch {
		case c.Skipped:
			state = "skipped"
		case !c.Pass:
			state = "FAIL"
		}
		fmt.Fprintf(&b, "  %-13s %-7s %s\n", c.Name+":", state, c.Detail)
	}
	return b.String()
}

// Verify certifies res as a solution of the maximum concurrent flow
// instance (g, flows). It returns an error only for structurally unusable
// input (shape mismatches); violations of the flow invariants are reported
// as failed checks.
func Verify(g *graph.Graph, flows []traffic.Flow, res *mcf.Result, opt Options) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("flowcheck: nil result")
	}
	m := g.NumArcs()
	if len(res.ArcFlow) != m && len(res.ArcFlow) != 0 {
		return nil, fmt.Errorf("flowcheck: ArcFlow has %d arcs, graph has %d", len(res.ArcFlow), m)
	}
	if len(res.DualLens) != 0 && len(res.DualLens) != m {
		return nil, fmt.Errorf("flowcheck: DualLens has %d arcs, graph has %d", len(res.DualLens), m)
	}
	tol := opt.Tolerance
	if tol <= 0 {
		tol = 1e-6
	}
	gapTol := opt.GapTolerance
	if gapTol <= 0 {
		gapTol = 3 * res.Epsilon
	}
	if gapTol <= 0 {
		gapTol = 3 * mcf.DefaultEpsilon
	}

	r := &Report{Throughput: res.Throughput, PathCount: len(res.Paths)}
	if len(flows) == 0 {
		r.Checks = append(r.Checks, Check{Name: "instance", Pass: true,
			Detail: "no commodities; infinite throughput is trivially optimal"})
		return r, nil
	}

	vol := pathChecks(g, flows, res, tol, r)
	conservationCheck(g, flows, res, vol, tol, r)
	capacityCheck(g, res, tol, r)
	demandCheck(flows, res, vol, tol, r)
	optimalityCheck(g, flows, res, gapTol, r)
	return r, nil
}

// VerifyRouting certifies a static multipath routing result (ECMP or VLB;
// see internal/routing) against its instance from first principles:
//
//   - load: every reported arc load is finite and non-negative.
//   - conservation: the per-node net of ArcLoad equals the commodity
//     volumes sourced/sunk at that node, at face-value demands (λ = 1).
//     ECMP splits each commodity across its shortest paths and VLB across
//     two-segment detours, but in both schemes every intermediate node —
//     including VLB's bounce nodes — must pass exactly what it receives.
//   - throughput: the reported λ is re-derived as the minimum cap/load
//     ratio over loaded arcs, and the reported bottleneck arc attains it.
//
// Violations are reported as failed checks, matching Verify's contract.
func VerifyRouting(g *graph.Graph, flows []traffic.Flow, res *routing.ECMPResult, opt Options) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("flowcheck: nil routing result")
	}
	if len(res.ArcLoad) != g.NumArcs() {
		return nil, fmt.Errorf("flowcheck: ArcLoad has %d arcs, graph has %d", len(res.ArcLoad), g.NumArcs())
	}
	tol := opt.Tolerance
	if tol <= 0 {
		tol = 1e-6
	}
	r := &Report{Throughput: res.Throughput}
	if len(flows) == 0 {
		r.Checks = append(r.Checks, Check{Name: "instance", Pass: true,
			Detail: "no commodities; infinite throughput is trivially optimal"})
		return r, nil
	}

	// Load sanity.
	for a, l := range res.ArcLoad {
		if l < 0 || math.IsNaN(l) || math.IsInf(l, 0) {
			r.Checks = append(r.Checks, Check{Name: "load",
				Detail: fmt.Sprintf("arc %d carries invalid load %v", a, l)})
			return r, nil
		}
	}
	r.Checks = append(r.Checks, Check{Name: "load", Pass: true,
		Detail: fmt.Sprintf("%d arc loads finite and non-negative", len(res.ArcLoad))})

	// Per-node conservation at λ = 1.
	net := make([]float64, g.N())
	var scale float64 = 1
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		net[arc.From] += res.ArcLoad[a]
		net[arc.To] -= res.ArcLoad[a]
		if res.ArcLoad[a] > scale {
			scale = res.ArcLoad[a]
		}
	}
	for _, f := range flows {
		net[f.Src] -= f.Demand
		net[f.Dst] += f.Demand
	}
	worst, worstNode := 0.0, -1
	for v, b := range net {
		if d := math.Abs(b); d > worst {
			worst, worstNode = d, v
		}
	}
	if worst > tol*scale*float64(g.N()) {
		r.Checks = append(r.Checks, Check{Name: "conservation",
			Detail: fmt.Sprintf("node %d imbalanced by %.3g", worstNode, worst)})
	} else {
		r.Checks = append(r.Checks, Check{Name: "conservation", Pass: true,
			Detail: fmt.Sprintf("max node imbalance %.2g", worst)})
	}

	// Throughput from the bottleneck ratio.
	ratio, bottleneck := math.Inf(1), -1
	for a := 0; a < g.NumArcs(); a++ {
		if res.ArcLoad[a] == 0 {
			continue
		}
		if q := g.Arc(a).Cap / res.ArcLoad[a]; q < ratio {
			ratio, bottleneck = q, a
		}
	}
	switch {
	case bottleneck < 0:
		if math.IsInf(res.Throughput, 1) {
			r.Checks = append(r.Checks, Check{Name: "throughput", Pass: true,
				Detail: "no loaded arcs; infinite throughput is consistent"})
		} else {
			r.Checks = append(r.Checks, Check{Name: "throughput",
				Detail: fmt.Sprintf("no loaded arcs but finite throughput %v reported", res.Throughput)})
		}
	case math.Abs(res.Throughput-ratio) > tol*ratio:
		r.Checks = append(r.Checks, Check{Name: "throughput",
			Detail: fmt.Sprintf("reported λ=%.6g, recomputed bottleneck ratio %.6g (arc %d)",
				res.Throughput, ratio, bottleneck)})
	case res.Bottleneck < 0 || res.Bottleneck >= g.NumArcs() ||
		res.ArcLoad[res.Bottleneck] == 0 ||
		math.Abs(g.Arc(res.Bottleneck).Cap/res.ArcLoad[res.Bottleneck]-ratio) > tol*ratio:
		// Ties are legitimate — any arc attaining the minimum ratio may be
		// reported — but the named arc must actually attain it.
		r.Checks = append(r.Checks, Check{Name: "throughput",
			Detail: fmt.Sprintf("reported bottleneck arc %d does not attain the minimum ratio %.6g (arc %d does)",
				res.Bottleneck, ratio, bottleneck)})
	default:
		r.Checks = append(r.Checks, Check{Name: "throughput", Pass: true,
			Detail: fmt.Sprintf("λ=%.6g matches bottleneck arc %d", res.Throughput, res.Bottleneck)})
	}
	return r, nil
}

// VerifyPacket certifies a packet simulation's measurement-window
// accounting (see packet.Audit) from first principles:
//
//   - conservation: for every node, injected + arrived-over-incoming-arcs
//     equals delivered + next-hop-attempts (admissions plus drops) —
//     exactly, in integers; the simulator cannot teleport, duplicate, or
//     silently absorb packets.
//   - line rate: no arc completed more transmissions than its capacity
//     admits in the window (rate·measure, plus one transmission that may
//     straddle the window start).
//   - goodput: every flow's reported goodput equals its delivered count
//     over the window, per-node delivered totals match the flow sums, and
//     Delivered/MeanGoodput/MinGoodput are consistent re-aggregations.
//
// Violations are reported as failed checks, matching Verify's contract.
// An error is returned only for structurally unusable input.
func VerifyPacket(g *graph.Graph, res *packet.Result) error {
	r, err := VerifyPacketReport(g, res)
	if err != nil {
		return err
	}
	return r.Err()
}

// VerifyPacketReport is VerifyPacket returning the full check report.
func VerifyPacketReport(g *graph.Graph, res *packet.Result) (*Report, error) {
	if res == nil {
		return nil, fmt.Errorf("flowcheck: nil packet result")
	}
	r := &Report{Throughput: res.MeanGoodput}
	if res.Audit == nil {
		if len(res.Flows) == 0 && res.Delivered == 0 {
			r.Checks = append(r.Checks, Check{Name: "instance", Pass: true,
				Detail: "empty simulation; nothing to conserve"})
			return r, nil
		}
		return nil, fmt.Errorf("flowcheck: packet result carries no audit")
	}
	a := res.Audit
	m, n := g.NumArcs(), g.N()
	if len(a.ArcEnqueued) != m || len(a.ArcDropped) != m || len(a.ArcTransits) != m {
		return nil, fmt.Errorf("flowcheck: audit arc counters sized %d/%d/%d, graph has %d arcs",
			len(a.ArcEnqueued), len(a.ArcDropped), len(a.ArcTransits), m)
	}
	if len(a.NodeInjected) != n || len(a.NodeDelivered) != n {
		return nil, fmt.Errorf("flowcheck: audit node counters sized %d/%d, graph has %d nodes",
			len(a.NodeInjected), len(a.NodeDelivered), n)
	}
	if a.Measure <= 0 {
		return nil, fmt.Errorf("flowcheck: audit measurement window %v", a.Measure)
	}

	// Counter sanity: event counts are non-negative by construction.
	negative := -1
	for i := 0; i < m && negative < 0; i++ {
		if a.ArcEnqueued[i] < 0 || a.ArcDropped[i] < 0 || a.ArcTransits[i] < 0 {
			negative = i
		}
	}
	for v := 0; v < n && negative < 0; v++ {
		if a.NodeInjected[v] < 0 || a.NodeDelivered[v] < 0 {
			negative = v
		}
	}
	if negative >= 0 {
		r.Checks = append(r.Checks, Check{Name: "counters",
			Detail: fmt.Sprintf("negative event count at index %d", negative)})
		return r, nil
	}
	r.Checks = append(r.Checks, Check{Name: "counters", Pass: true,
		Detail: fmt.Sprintf("%d arc and %d node counters non-negative", m, n)})

	// Exact per-node conservation of the event counts.
	worst, worstNode := int64(0), -1
	for v := 0; v < n; v++ {
		balance := a.NodeInjected[v] - a.NodeDelivered[v]
		for _, arc := range g.OutArcs(v) {
			balance -= a.ArcEnqueued[arc] + a.ArcDropped[arc]
			// The reverse arc of every out-arc points into v.
			balance += a.ArcTransits[graph.Reverse(int(arc))]
		}
		if d := balance; d != 0 {
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst, worstNode = d, v
			}
		}
	}
	if worstNode >= 0 {
		r.Checks = append(r.Checks, Check{Name: "conservation",
			Detail: fmt.Sprintf("node %d imbalanced by %d packets", worstNode, worst)})
	} else {
		r.Checks = append(r.Checks, Check{Name: "conservation", Pass: true,
			Detail: fmt.Sprintf("all %d nodes balance exactly", n)})
	}

	// Line-rate sanity: an arc of capacity c serializes one packet per 1/c,
	// so the window admits at most c·measure completions plus one
	// transmission already in flight when the window opened.
	rateBad := -1
	for arc := 0; arc < m; arc++ {
		limit := g.Arc(arc).Cap*a.Measure*(1+1e-9) + 1
		if float64(a.ArcTransits[arc]) > limit {
			rateBad = arc
			break
		}
	}
	if rateBad >= 0 {
		r.Checks = append(r.Checks, Check{Name: "linerate",
			Detail: fmt.Sprintf("arc %d completed %d transmissions, capacity admits %.0f",
				rateBad, a.ArcTransits[rateBad], g.Arc(rateBad).Cap*a.Measure+1)})
	} else {
		r.Checks = append(r.Checks, Check{Name: "linerate", Pass: true,
			Detail: "no arc outran its capacity"})
	}

	// Goodput consistency: flow goodputs are delivered/measure; their node
	// and global sums must match the audit and summary fields.
	perNode := make([]float64, n)
	var total, mean, minG float64
	minG = math.Inf(1)
	goodputBad := ""
	for _, f := range res.Flows {
		if f.Goodput < 0 || math.IsNaN(f.Goodput) || math.IsInf(f.Goodput, 0) {
			goodputBad = fmt.Sprintf("flow %d->%d reports invalid goodput %v", f.Src, f.Dst, f.Goodput)
			break
		}
		if f.Dst < 0 || f.Dst >= n {
			goodputBad = fmt.Sprintf("flow destination %d out of range", f.Dst)
			break
		}
		perNode[f.Dst] += f.Goodput * a.Measure
		total += f.Goodput * a.Measure
		mean += f.Goodput
		if f.Goodput < minG {
			minG = f.Goodput
		}
	}
	const tol = 1e-6
	if goodputBad == "" {
		for v := 0; v < n; v++ {
			if math.Abs(perNode[v]-float64(a.NodeDelivered[v])) > tol*(1+float64(a.NodeDelivered[v])) {
				goodputBad = fmt.Sprintf("node %d: flow goodputs sum to %.3f delivered packets, audit counted %d",
					v, perNode[v], a.NodeDelivered[v])
				break
			}
		}
	}
	if goodputBad == "" && math.Abs(total-float64(res.Delivered)) > tol*(1+float64(res.Delivered)) {
		goodputBad = fmt.Sprintf("goodputs sum to %.3f delivered packets, result reports %d", total, res.Delivered)
	}
	if goodputBad == "" && len(res.Flows) > 0 {
		if math.Abs(mean/float64(len(res.Flows))-res.MeanGoodput) > tol*(1+res.MeanGoodput) {
			goodputBad = fmt.Sprintf("mean goodput %.6g inconsistent with flows (%.6g)",
				res.MeanGoodput, mean/float64(len(res.Flows)))
		} else if math.Abs(minG-res.MinGoodput) > tol*(1+res.MinGoodput) {
			goodputBad = fmt.Sprintf("min goodput %.6g inconsistent with flows (%.6g)", res.MinGoodput, minG)
		}
	}
	if goodputBad != "" {
		r.Checks = append(r.Checks, Check{Name: "goodput", Detail: goodputBad})
	} else {
		r.Checks = append(r.Checks, Check{Name: "goodput", Pass: true,
			Detail: fmt.Sprintf("%d flow goodputs re-aggregate to the audit counts", len(res.Flows))})
	}
	return r, nil
}

// pathChecks validates the structural flow decomposition and returns the
// per-commodity delivered volume (nil when no decomposition was recorded).
func pathChecks(g *graph.Graph, flows []traffic.Flow, res *mcf.Result, tol float64, r *Report) []float64 {
	if len(res.Paths) == 0 {
		r.Checks = append(r.Checks, Check{Name: "decomposition", Skipped: true,
			Detail: "no path decomposition (solve without RecordPaths)"})
		return nil
	}
	vol := make([]float64, len(flows))
	fromPaths := make([]float64, g.NumArcs())
	for i, p := range res.Paths {
		if p.Commodity < 0 || p.Commodity >= len(flows) {
			r.Checks = append(r.Checks, Check{Name: "decomposition",
				Detail: fmt.Sprintf("path %d references commodity %d of %d", i, p.Commodity, len(flows))})
			return nil
		}
		if p.Flow <= 0 || math.IsNaN(p.Flow) {
			r.Checks = append(r.Checks, Check{Name: "decomposition",
				Detail: fmt.Sprintf("path %d has non-positive flow %v", i, p.Flow)})
			return nil
		}
		f := flows[p.Commodity]
		at := f.Src
		for _, a := range p.Arcs {
			if a < 0 || int(a) >= g.NumArcs() || int(g.Arc(int(a)).From) != at {
				r.Checks = append(r.Checks, Check{Name: "decomposition",
					Detail: fmt.Sprintf("path %d (commodity %d) is not contiguous at node %d", i, p.Commodity, at)})
				return nil
			}
			fromPaths[a] += p.Flow
			at = int(g.Arc(int(a)).To)
		}
		if at != f.Dst {
			r.Checks = append(r.Checks, Check{Name: "decomposition",
				Detail: fmt.Sprintf("path %d ends at %d, commodity %d ends at %d", i, at, p.Commodity, f.Dst)})
			return nil
		}
		vol[p.Commodity] += p.Flow
	}
	// The decomposition must reconstruct the reported per-arc flow. A
	// result with paths but no ArcFlow is compared against zero flow (and
	// so fails unless the paths are empty too), rather than panicking.
	arcFlow := res.ArcFlow
	if len(arcFlow) == 0 {
		arcFlow = make([]float64, g.NumArcs())
	}
	worst, worstArc := 0.0, -1
	for a := range fromPaths {
		d := math.Abs(fromPaths[a] - arcFlow[a])
		if rel := d / math.Max(1, math.Abs(arcFlow[a])); rel > worst {
			worst, worstArc = rel, a
		}
	}
	if worst > tol {
		r.Checks = append(r.Checks, Check{Name: "decomposition",
			Detail: fmt.Sprintf("path sums diverge from ArcFlow by %.3g (rel) at arc %d", worst, worstArc)})
		return nil
	}
	r.Checks = append(r.Checks, Check{Name: "decomposition", Pass: true,
		Detail: fmt.Sprintf("%d paths, max ArcFlow mismatch %.2g (rel)", len(res.Paths), worst)})
	return vol
}

// conservationCheck verifies per-node balance of ArcFlow: net outflow at a
// node equals (volume sourced here) − (volume sunk here).
func conservationCheck(g *graph.Graph, flows []traffic.Flow, res *mcf.Result, vol []float64, tol float64, r *Report) {
	if vol == nil {
		r.Checks = append(r.Checks, Check{Name: "conservation", Skipped: true,
			Detail: "needs the path decomposition for per-node commodity volumes"})
		return
	}
	net := make([]float64, g.N())
	var scale float64 = 1
	for a := 0; a < g.NumArcs() && a < len(res.ArcFlow); a++ {
		arc := g.Arc(a)
		net[arc.From] += res.ArcFlow[a]
		net[arc.To] -= res.ArcFlow[a]
		if res.ArcFlow[a] > scale {
			scale = res.ArcFlow[a]
		}
	}
	for j, f := range flows {
		net[f.Src] -= vol[j]
		net[f.Dst] += vol[j]
	}
	worst, worstNode := 0.0, -1
	for v, b := range net {
		if d := math.Abs(b); d > worst {
			worst, worstNode = d, v
		}
	}
	if worst > tol*scale*float64(g.N()) {
		r.Checks = append(r.Checks, Check{Name: "conservation",
			Detail: fmt.Sprintf("node %d imbalanced by %.3g", worstNode, worst)})
		return
	}
	r.Checks = append(r.Checks, Check{Name: "conservation", Pass: true,
		Detail: fmt.Sprintf("max node imbalance %.2g", worst)})
}

// capacityCheck verifies no arc exceeds its capacity.
func capacityCheck(g *graph.Graph, res *mcf.Result, tol float64, r *Report) {
	if len(res.ArcFlow) == 0 {
		r.Checks = append(r.Checks, Check{Name: "capacity", Pass: true, Detail: "zero flow"})
		return
	}
	worst, worstArc := 0.0, -1
	for a := 0; a < g.NumArcs(); a++ {
		if u := res.ArcFlow[a] / g.Arc(a).Cap; u > worst {
			worst, worstArc = u, a
		}
	}
	if worst > 1+tol {
		r.Checks = append(r.Checks, Check{Name: "capacity",
			Detail: fmt.Sprintf("arc %d overloaded: utilization %.9f", worstArc, worst)})
		return
	}
	r.Checks = append(r.Checks, Check{Name: "capacity", Pass: true,
		Detail: fmt.Sprintf("max utilization %.6f", worst)})
}

// demandCheck verifies concurrent-flow proportionality: every commodity
// receives at least Throughput·demand.
func demandCheck(flows []traffic.Flow, res *mcf.Result, vol []float64, tol float64, r *Report) {
	if vol == nil {
		r.Checks = append(r.Checks, Check{Name: "demand", Skipped: true,
			Detail: "needs the path decomposition for per-commodity volumes"})
		return
	}
	minFrac, minJ := math.Inf(1), -1
	for j, f := range flows {
		if fr := vol[j] / f.Demand; fr < minFrac {
			minFrac, minJ = fr, j
		}
	}
	if minFrac < res.Throughput*(1-tol) {
		r.Checks = append(r.Checks, Check{Name: "demand",
			Detail: fmt.Sprintf("commodity %d delivered %.6g of demand, below λ=%.6g", minJ, minFrac, res.Throughput)})
		return
	}
	r.Checks = append(r.Checks, Check{Name: "demand", Pass: true,
		Detail: fmt.Sprintf("min delivered fraction %.6g ≥ λ=%.6g", minFrac, res.Throughput)})
}

// optimalityCheck recomputes the dual bound λ* ≤ Σ l·cap / Σ d·dist_l from
// the length witness with an independent Dijkstra and verifies the ε-gap.
func optimalityCheck(g *graph.Graph, flows []traffic.Flow, res *mcf.Result, gapTol float64, r *Report) {
	if len(res.DualLens) == 0 {
		r.Checks = append(r.Checks, Check{Name: "optimality", Skipped: true,
			Detail: "no dual length witness"})
		return
	}
	var lenCap float64
	for a := 0; a < g.NumArcs(); a++ {
		l := res.DualLens[a]
		if l < 0 || math.IsNaN(l) {
			r.Checks = append(r.Checks, Check{Name: "optimality",
				Detail: fmt.Sprintf("invalid witness length %v on arc %d", l, a)})
			return
		}
		lenCap += l * g.Arc(a).Cap
	}
	bySrc := map[int][]int{}
	for j, f := range flows {
		bySrc[f.Src] = append(bySrc[f.Src], j)
	}
	var alpha float64
	for src, js := range bySrc {
		dist, _ := g.Dijkstra(src, res.DualLens)
		for _, j := range js {
			d := dist[flows[j].Dst]
			if math.IsInf(d, 1) {
				r.Checks = append(r.Checks, Check{Name: "optimality",
					Detail: fmt.Sprintf("commodity %d unreachable under witness lengths", j)})
				return
			}
			alpha += flows[j].Demand * d
		}
	}
	if alpha <= 0 {
		r.Checks = append(r.Checks, Check{Name: "optimality",
			Detail: "degenerate dual normalizer (α ≤ 0)"})
		return
	}
	r.DualBound = lenCap / alpha
	r.Gap = 1 - res.Throughput/r.DualBound
	if r.Gap > gapTol {
		r.Checks = append(r.Checks, Check{Name: "optimality",
			Detail: fmt.Sprintf("gap %.2f%% exceeds tolerance %.2f%% (λ=%.6g, bound %.6g)",
				100*r.Gap, 100*gapTol, res.Throughput, r.DualBound)})
		return
	}
	r.Checks = append(r.Checks, Check{Name: "optimality", Pass: true,
		Detail: fmt.Sprintf("gap %.2f%% ≤ %.2f%% (dual bound %.6g)", 100*r.Gap, 100*gapTol, r.DualBound)})
}
