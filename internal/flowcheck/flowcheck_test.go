package flowcheck

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

func solved(t *testing.T) (*graph.Graph, []traffic.Flow, *mcf.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	g, err := rrg.Regular(rng, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.08, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, tm.Flows, res
}

func TestVerifyPassesOnHonestSolve(t *testing.T) {
	g, flows, res := solved(t)
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("honest solve rejected:\n%s", rep)
	}
	if rep.PathCount == 0 {
		t.Fatal("no paths examined despite RecordPaths")
	}
	for _, c := range rep.Checks {
		if c.Skipped {
			t.Fatalf("check %s skipped despite full inputs", c.Name)
		}
	}
}

// A verifier that cannot detect violations certifies nothing: tamper with
// each invariant and demand the matching check fails.
func TestVerifyDetectsOverload(t *testing.T) {
	g, flows, res := solved(t)
	a := 0
	res.ArcFlow[a] = g.Arc(a).Cap * 1.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("overloaded arc not detected")
	}
	if !strings.Contains(rep.Err().Error(), "capacity") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsInflatedThroughput(t *testing.T) {
	g, flows, res := solved(t)
	res.Throughput *= 1.2 // claims more than the delivered volumes
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("inflated throughput not detected")
	}
	if !strings.Contains(rep.Err().Error(), "demand") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsBrokenConservation(t *testing.T) {
	g, flows, res := solved(t)
	// Teleport flow: bump one arc's flow without a matching path. Both the
	// decomposition sum and node balance break; either check may fire first.
	res.ArcFlow[4] += 0.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("teleported flow not detected")
	}
}

func TestVerifyDetectsBrokenPath(t *testing.T) {
	g, flows, res := solved(t)
	res.Paths[0].Arcs = res.Paths[0].Arcs[:len(res.Paths[0].Arcs)-1] // no longer reaches dst
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("truncated path not detected")
	}
	if !strings.Contains(rep.Err().Error(), "decomposition") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsOptimalityGap(t *testing.T) {
	g, flows, res := solved(t)
	// Claim far less than the dual bound allows: scale the whole flow down.
	for a := range res.ArcFlow {
		res.ArcFlow[a] *= 0.5
	}
	for i := range res.Paths {
		res.Paths[i].Flow *= 0.5
	}
	res.Throughput *= 0.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("large optimality gap not detected")
	}
	if !strings.Contains(rep.Err().Error(), "optimality") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyWithoutPathsSkips(t *testing.T) {
	g, flows, res := solved(t)
	res.Paths = nil
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pathless verify failed:\n%s", rep)
	}
	skipped := 0
	for _, c := range rep.Checks {
		if c.Skipped {
			skipped++
		}
	}
	if skipped != 3 { // decomposition, conservation, demand
		t.Fatalf("want 3 skipped checks, got %d:\n%s", skipped, rep)
	}
}

func TestVerifyEmptyInstance(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res, err := mcf.Solve(g, nil, mcf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(g, nil, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("empty instance rejected:\n%s", rep)
	}
}

// TestVerifyPathsWithoutArcFlow: a malformed result carrying paths but no
// ArcFlow must fail the decomposition check, not panic.
func TestVerifyPathsWithoutArcFlow(t *testing.T) {
	g, flows, res := solved(t)
	res.ArcFlow = nil
	res.ArcUtil = nil
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("paths without ArcFlow accepted")
	}
	if !strings.Contains(rep.Err().Error(), "decomposition") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}
