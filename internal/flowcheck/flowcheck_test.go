package flowcheck

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

func solved(t *testing.T) (*graph.Graph, []traffic.Flow, *mcf.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	g, err := rrg.Regular(rng, 24, 5)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.08, RecordPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	return g, tm.Flows, res
}

func TestVerifyPassesOnHonestSolve(t *testing.T) {
	g, flows, res := solved(t)
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("honest solve rejected:\n%s", rep)
	}
	if rep.PathCount == 0 {
		t.Fatal("no paths examined despite RecordPaths")
	}
	for _, c := range rep.Checks {
		if c.Skipped {
			t.Fatalf("check %s skipped despite full inputs", c.Name)
		}
	}
}

// A verifier that cannot detect violations certifies nothing: tamper with
// each invariant and demand the matching check fails.
func TestVerifyDetectsOverload(t *testing.T) {
	g, flows, res := solved(t)
	a := 0
	res.ArcFlow[a] = g.Arc(a).Cap * 1.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("overloaded arc not detected")
	}
	if !strings.Contains(rep.Err().Error(), "capacity") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsInflatedThroughput(t *testing.T) {
	g, flows, res := solved(t)
	res.Throughput *= 1.2 // claims more than the delivered volumes
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("inflated throughput not detected")
	}
	if !strings.Contains(rep.Err().Error(), "demand") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsBrokenConservation(t *testing.T) {
	g, flows, res := solved(t)
	// Teleport flow: bump one arc's flow without a matching path. Both the
	// decomposition sum and node balance break; either check may fire first.
	res.ArcFlow[4] += 0.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("teleported flow not detected")
	}
}

func TestVerifyDetectsBrokenPath(t *testing.T) {
	g, flows, res := solved(t)
	res.Paths[0].Arcs = res.Paths[0].Arcs[:len(res.Paths[0].Arcs)-1] // no longer reaches dst
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("truncated path not detected")
	}
	if !strings.Contains(rep.Err().Error(), "decomposition") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyDetectsOptimalityGap(t *testing.T) {
	g, flows, res := solved(t)
	// Claim far less than the dual bound allows: scale the whole flow down.
	for a := range res.ArcFlow {
		res.ArcFlow[a] *= 0.5
	}
	for i := range res.Paths {
		res.Paths[i].Flow *= 0.5
	}
	res.Throughput *= 0.5
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("large optimality gap not detected")
	}
	if !strings.Contains(rep.Err().Error(), "optimality") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyWithoutPathsSkips(t *testing.T) {
	g, flows, res := solved(t)
	res.Paths = nil
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("pathless verify failed:\n%s", rep)
	}
	skipped := 0
	for _, c := range rep.Checks {
		if c.Skipped {
			skipped++
		}
	}
	if skipped != 3 { // decomposition, conservation, demand
		t.Fatalf("want 3 skipped checks, got %d:\n%s", skipped, rep)
	}
}

func TestVerifyEmptyInstance(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res, err := mcf.Solve(g, nil, mcf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Verify(g, nil, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("empty instance rejected:\n%s", rep)
	}
}

// TestVerifyPathsWithoutArcFlow: a malformed result carrying paths but no
// ArcFlow must fail the decomposition check, not panic.
func TestVerifyPathsWithoutArcFlow(t *testing.T) {
	g, flows, res := solved(t)
	res.ArcFlow = nil
	res.ArcUtil = nil
	rep, err := Verify(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("paths without ArcFlow accepted")
	}
	if !strings.Contains(rep.Err().Error(), "decomposition") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

// ---- static routing verification (ECMP / VLB) ----

func routed(t *testing.T) (*graph.Graph, []traffic.Flow) {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	g, err := rrg.Regular(rng, 18, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	return g, tm.Flows
}

func TestVerifyRoutingPassesOnHonestECMPAndVLB(t *testing.T) {
	g, flows := routed(t)
	for name, run := range map[string]func(*graph.Graph, []traffic.Flow) (*routing.ECMPResult, error){
		"ecmp": routing.ECMP, "vlb": routing.VLB,
	} {
		res, err := run(g, flows)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := VerifyRouting(g, flows, res, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("honest %s routing rejected:\n%s", name, rep)
		}
	}
}

// Tamper detection: a verifier that cannot catch teleported load, cooked
// throughput, or invalid loads certifies nothing.
func TestVerifyRoutingDetectsTeleportedLoad(t *testing.T) {
	g, flows := routed(t)
	res, err := routing.ECMP(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Inject flow appearing out of thin air mid-network.
	for a := range res.ArcLoad {
		if res.ArcLoad[a] > 0 {
			res.ArcLoad[a] += 0.5
			break
		}
	}
	rep, err := VerifyRouting(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("teleported load accepted:\n%s", rep)
	}
	if !strings.Contains(rep.Err().Error(), "conservation") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyRoutingDetectsInflatedThroughput(t *testing.T) {
	g, flows := routed(t)
	res, err := routing.VLB(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	res.Throughput *= 1.5
	rep, err := VerifyRouting(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("inflated throughput accepted:\n%s", rep)
	}
	if !strings.Contains(rep.Err().Error(), "throughput") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyRoutingDetectsNegativeLoad(t *testing.T) {
	g, flows := routed(t)
	res, err := routing.ECMP(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	res.ArcLoad[0] = -1
	rep, err := VerifyRouting(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("negative load accepted")
	}
	if !strings.Contains(rep.Err().Error(), "load") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

func TestVerifyRoutingShapeMismatch(t *testing.T) {
	g, flows := routed(t)
	res, err := routing.ECMP(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	res.ArcLoad = res.ArcLoad[:len(res.ArcLoad)-1]
	if _, err := VerifyRouting(g, flows, res, Options{}); err == nil {
		t.Fatal("truncated ArcLoad accepted as structurally usable")
	}
}

func TestVerifyRoutingDetectsWrongBottleneck(t *testing.T) {
	g, flows := routed(t)
	res, err := routing.ECMP(g, flows)
	if err != nil {
		t.Fatal(err)
	}
	// Point the reported bottleneck at an arc that does not attain the
	// minimum ratio (an unloaded one is never a valid bottleneck).
	for a := range res.ArcLoad {
		if res.ArcLoad[a] == 0 {
			res.Bottleneck = a
			break
		}
	}
	rep, err := VerifyRouting(g, flows, res, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("wrong bottleneck arc accepted:\n%s", rep)
	}
	if !strings.Contains(rep.Err().Error(), "throughput") {
		t.Fatalf("wrong check failed: %v", rep.Err())
	}
}

// ---- packet-simulation conservation checks ----

// simulated runs a small packet simulation whose audit the verifier can
// certify.
func simulated(t *testing.T) (*graph.Graph, *packet.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g, err := rrg.Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Two flows per source over small queues so the measurement window
	// contains drop-tail losses — the conservation identity's hardest term.
	var flows []packet.FlowSpec
	for i := 0; i < 16; i++ {
		flows = append(flows,
			packet.FlowSpec{Src: i, Dst: (i + 7) % 16},
			packet.FlowSpec{Src: i, Dst: (i + 3) % 16})
	}
	res, err := packet.Simulate(g, flows, packet.Config{
		SubflowsPerFlow: 4, Warmup: 20, Measure: 80, QueuePackets: 8,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return g, res
}

func TestVerifyPacketPassesOnHonestSimulation(t *testing.T) {
	g, res := simulated(t)
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("honest simulation failed verification:\n%s", rep)
	}
	if res.Delivered == 0 {
		t.Fatal("simulation delivered nothing; conservation check is vacuous")
	}
}

func TestVerifyPacketDetectsTeleportedPacket(t *testing.T) {
	g, res := simulated(t)
	// A packet delivered out of thin air: delivery count grows with no
	// matching arrival.
	res.Audit.NodeDelivered[3]++
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Err().Error(), "conservation") {
		t.Fatalf("teleported packet not caught: %v", rep.Err())
	}
}

func TestVerifyPacketDetectsDroppedAccounting(t *testing.T) {
	g, res := simulated(t)
	// Erase one drop-tail loss: the node now attempted fewer next hops
	// than it received packets.
	erased := false
	for a := range res.Audit.ArcDropped {
		if res.Audit.ArcDropped[a] > 0 {
			res.Audit.ArcDropped[a]--
			erased = true
			break
		}
	}
	if !erased {
		t.Fatal("fixture recorded no measurement-window drops; tamper is vacuous")
	}
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Err().Error(), "conservation") {
		t.Fatalf("erased drop not caught: %v", rep.Err())
	}
}

func TestVerifyPacketDetectsLineRateViolation(t *testing.T) {
	g, res := simulated(t)
	// An arc claiming more completed transmissions than its capacity
	// admits in the window. Forge matching enqueues at the sender and
	// deliveries at the receiver so plain conservation still balances —
	// only the line-rate check can see it.
	arc := 0
	from, to := g.Arc(arc).From, g.Arc(arc).To
	extra := int64(g.Arc(arc).Cap*res.Audit.Measure) + 10
	res.Audit.ArcTransits[arc] += extra
	res.Audit.ArcEnqueued[arc] += extra
	res.Audit.NodeInjected[from] += extra
	res.Audit.NodeDelivered[to] += extra
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Err().Error(), "linerate") {
		t.Fatalf("line-rate violation not caught: %v", rep.Err())
	}
}

func TestVerifyPacketDetectsInflatedGoodput(t *testing.T) {
	g, res := simulated(t)
	res.Flows[0].Goodput *= 2
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Err().Error(), "goodput") {
		t.Fatalf("inflated goodput not caught: %v", rep.Err())
	}
}

func TestVerifyPacketDetectsNegativeCounter(t *testing.T) {
	g, res := simulated(t)
	res.Audit.NodeInjected[0] = -1
	rep, err := VerifyPacketReport(g, res)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !strings.Contains(rep.Err().Error(), "counters") {
		t.Fatalf("negative counter not caught: %v", rep.Err())
	}
}

func TestVerifyPacketShapeMismatch(t *testing.T) {
	g, res := simulated(t)
	res.Audit.ArcTransits = res.Audit.ArcTransits[:len(res.Audit.ArcTransits)-1]
	if _, err := VerifyPacketReport(g, res); err == nil {
		t.Fatal("arc counter shape mismatch accepted")
	}
	_, res2 := simulated(t)
	res2.Audit = nil
	if _, err := VerifyPacketReport(g, res2); err == nil {
		t.Fatal("missing audit accepted for a non-empty simulation")
	}
}
