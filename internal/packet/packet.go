// Package packet is a discrete-event packet-level network simulator with an
// MPTCP-like multipath transport, used to reproduce Fig. 13: the paper
// shows that packet-level throughput with MPTCP over shortest paths lands
// within a few percent of the fluid (LP) optimum.
//
// Substitution note (see DESIGN.md): the paper uses the htsim MPTCP
// simulator. We implement the same mechanism from scratch: each flow opens
// up to SubflowsPerFlow subflows over distinct shortest paths; each subflow
// runs window-based additive-increase/multiplicative-decrease congestion
// control with NewReno-style one-halving-per-window loss recovery; links
// are FIFO drop-tail queues. ACKs return instantly (the reverse direction
// of every full-duplex link has dedicated capacity, so ACK congestion is
// negligible at these scales).
//
// Units: one capacity unit transmits one packet per unit time; a link of
// capacity c serializes a packet in 1/c time.
package packet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Config controls a simulation.
type Config struct {
	// SubflowsPerFlow is the number of MPTCP subflows (paper: up to 8).
	SubflowsPerFlow int
	// QueuePackets is the per-arc FIFO capacity in packets (default 64).
	QueuePackets int
	// Warmup and Measure are the warmup and measurement durations in unit
	// times (defaults 100 and 400).
	Warmup, Measure float64
	// InitialWindow is the initial congestion window (default 2).
	InitialWindow float64
	// MaxWindow caps the window (default 256).
	MaxWindow float64
	// RetransmitDelay is the pause before a subflow resumes sending after
	// a loss, emulating a retransmission timeout (default 1 unit time).
	RetransmitDelay float64
}

func (c Config) withDefaults() Config {
	if c.SubflowsPerFlow <= 0 {
		c.SubflowsPerFlow = 8
	}
	if c.QueuePackets <= 0 {
		c.QueuePackets = 64
	}
	if c.Warmup <= 0 {
		c.Warmup = 100
	}
	if c.Measure <= 0 {
		c.Measure = 400
	}
	if c.InitialWindow <= 0 {
		c.InitialWindow = 2
	}
	if c.MaxWindow <= 0 {
		c.MaxWindow = 256
	}
	if c.RetransmitDelay <= 0 {
		c.RetransmitDelay = 1
	}
	return c
}

// FlowSpec is one transport flow: an infinite backlog from Src to Dst
// (switch IDs). Rate goals are not needed — goodput is measured.
type FlowSpec struct {
	Src, Dst int
}

// FlowResult reports one flow's measured goodput in capacity units.
type FlowResult struct {
	FlowSpec
	Goodput  float64
	Subflows int
}

// Result is the outcome of a simulation.
type Result struct {
	Flows []FlowResult
	// MeanGoodput and MinGoodput summarize per-flow goodput.
	MeanGoodput, MinGoodput float64
	// Delivered is the total number of packets delivered in the
	// measurement window; Dropped counts drop-tail losses over the whole
	// simulation.
	Delivered, Dropped int64
	// Audit is the measurement-window packet accounting that
	// flowcheck.VerifyPacket certifies (per-node conservation, line-rate
	// sanity, goodput consistency).
	Audit *Audit
}

// Audit is the event-level packet accounting of the measurement window.
// Each counter is bumped atomically with the event it describes, so the
// exact per-node conservation identity holds for every node v:
//
//	NodeInjected[v] + Σ_{a into v} ArcTransits[a]
//	  = NodeDelivered[v] + Σ_{a out of v} (ArcEnqueued[a] + ArcDropped[a])
//
// — every packet at v either was injected there or arrived over an
// incoming arc, and either terminated there or attempted the next hop
// (successfully or as a drop-tail loss). flowcheck.VerifyPacket replays
// this identity from first principles.
type Audit struct {
	// ArcEnqueued counts successful queue admissions per arc; ArcDropped
	// counts drop-tail losses at that arc's queue; ArcTransits counts
	// completed transmissions.
	ArcEnqueued, ArcDropped, ArcTransits []int64
	// NodeInjected counts packets a source pumped into its first hop
	// (whether or not admission succeeded); NodeDelivered counts packets
	// terminating at the node.
	NodeInjected, NodeDelivered []int64
	// Measure is the measurement-window duration the counters cover.
	Measure float64
}

// Simulate runs the packet simulation of the given flows on g.
func Simulate(g *graph.Graph, flows []FlowSpec, cfg Config, rng *rand.Rand) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(flows) == 0 {
		return &Result{}, nil
	}
	s := &sim{g: g, cfg: cfg, rng: rng}
	if err := s.setup(flows); err != nil {
		return nil, err
	}
	s.run()
	return s.collect(), nil
}

// ---- internal machinery ----

type eventKind uint8

const (
	evTransmitDone eventKind = iota
	evPump
)

type event struct {
	t    float64
	kind eventKind
	arc  int32
	sub  *subflow // evPump only
	seq  int64    // tiebreaker for determinism
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// pkt is an in-flight packet.
type pkt struct {
	sub  *subflow
	hop  int // index into sub.path of the next arc to traverse
	id   int64
	lost bool
}

// arcState is the FIFO queue and transmitter of one directed arc.
type arcState struct {
	rate  float64 // packets per unit time
	queue []*pkt
	busy  bool
}

// subflow is one MPTCP subflow with NewReno-ish AIMD.
type subflow struct {
	flow     *flowState
	path     []int32 // arc indices src -> dst
	cwnd     float64
	inflight int
	nextID   int64
	recover  int64   // loss-recovery high-water mark
	backoff  float64 // no sends before this time (post-loss timeout)
	pumpAt   float64 // time of the latest scheduled pump event
}

type flowState struct {
	spec      FlowSpec
	subs      []*subflow
	delivered int64 // packets delivered during measurement
}

type sim struct {
	g     *graph.Graph
	cfg   Config
	rng   *rand.Rand
	arcs  []arcState
	flows []*flowState
	h     eventHeap
	now   float64
	seq   int64

	measuring bool
	dropped   int64
	delivered int64
	audit     Audit
}

func (s *sim) setup(flows []FlowSpec) error {
	s.arcs = make([]arcState, s.g.NumArcs())
	s.audit = Audit{
		ArcEnqueued: make([]int64, s.g.NumArcs()),
		ArcDropped:  make([]int64, s.g.NumArcs()),
		ArcTransits: make([]int64, s.g.NumArcs()),
		NodeInjected:  make([]int64, s.g.N()),
		NodeDelivered: make([]int64, s.g.N()),
		Measure:       s.cfg.Measure,
	}
	for a := range s.arcs {
		s.arcs[a].rate = s.g.Arc(a).Cap
	}
	for _, fs := range flows {
		if fs.Src == fs.Dst {
			return fmt.Errorf("packet: flow with identical endpoints %d", fs.Src)
		}
		paths := s.g.ShortestPathDAGPaths(fs.Src, fs.Dst, 4*s.cfg.SubflowsPerFlow)
		if len(paths) == 0 {
			return fmt.Errorf("packet: no path %d -> %d", fs.Src, fs.Dst)
		}
		// Spread subflows across distinct paths; sample without
		// replacement, reusing paths round-robin when fewer exist.
		s.rng.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
		f := &flowState{spec: fs}
		for k := 0; k < s.cfg.SubflowsPerFlow; k++ {
			p := paths[k%len(paths)]
			arcs := make([]int32, len(p))
			copy(arcs, p)
			f.subs = append(f.subs, &subflow{flow: f, path: arcs, cwnd: s.cfg.InitialWindow})
		}
		s.flows = append(s.flows, f)
	}
	return nil
}

func (s *sim) run() {
	heap.Init(&s.h)
	// Prime every subflow.
	for _, f := range s.flows {
		for _, sub := range f.subs {
			s.pump(sub)
		}
	}
	end := s.cfg.Warmup + s.cfg.Measure
	for s.h.Len() > 0 {
		ev := heap.Pop(&s.h).(event)
		s.now = ev.t
		if s.now > end {
			return
		}
		if !s.measuring && s.now >= s.cfg.Warmup {
			s.measuring = true
			s.delivered = 0
			for _, f := range s.flows {
				f.delivered = 0
			}
		}
		switch ev.kind {
		case evTransmitDone:
			s.transmitDone(int(ev.arc))
		case evPump:
			s.pump(ev.sub)
		}
	}
}

// pump injects packets while the window allows and the subflow is not in
// a post-loss timeout. A drop at the first hop ends the burst: the subflow
// backs off and a pump event is scheduled, never recursing.
func (s *sim) pump(sub *subflow) {
	if s.now < sub.backoff {
		s.schedulePump(sub, sub.backoff)
		return
	}
	for sub.inflight < int(sub.cwnd) {
		p := &pkt{sub: sub, id: sub.nextID}
		sub.nextID++
		sub.inflight++
		if s.measuring {
			s.audit.NodeInjected[sub.flow.spec.Src]++
		}
		if !s.tryEnqueue(p, 0) {
			s.registerLoss(p)
			return
		}
	}
}

// schedulePump arranges for pump(sub) to run at time t (deduplicated).
func (s *sim) schedulePump(sub *subflow, t float64) {
	if sub.pumpAt >= t && sub.pumpAt > s.now {
		return
	}
	sub.pumpAt = t
	s.seq++
	heap.Push(&s.h, event{t: t, kind: evPump, sub: sub, seq: s.seq})
}

// tryEnqueue places p on its hop-th arc; false means drop-tail loss.
func (s *sim) tryEnqueue(p *pkt, hop int) bool {
	p.hop = hop
	a := int(p.sub.path[hop])
	as := &s.arcs[a]
	if len(as.queue) >= s.cfg.QueuePackets {
		if s.measuring {
			s.audit.ArcDropped[a]++
		}
		return false
	}
	if s.measuring {
		s.audit.ArcEnqueued[a]++
	}
	as.queue = append(as.queue, p)
	if !as.busy {
		s.startTransmit(a)
	}
	return true
}

func (s *sim) startTransmit(a int) {
	as := &s.arcs[a]
	as.busy = true
	s.seq++
	heap.Push(&s.h, event{t: s.now + 1/as.rate, kind: evTransmitDone, arc: int32(a), seq: s.seq})
}

func (s *sim) transmitDone(a int) {
	as := &s.arcs[a]
	p := as.queue[0]
	as.queue = as.queue[1:]
	if s.measuring {
		s.audit.ArcTransits[a]++
	}
	if len(as.queue) > 0 {
		s.startTransmit(a)
	} else {
		as.busy = false
	}
	if p.hop+1 < len(p.sub.path) {
		if !s.tryEnqueue(p, p.hop+1) {
			s.registerLoss(p)
		}
		return
	}
	s.onDelivered(p)
}

// onDelivered handles a packet reaching its destination: instant ACK.
func (s *sim) onDelivered(p *pkt) {
	sub := p.sub
	sub.inflight--
	if s.measuring {
		sub.flow.delivered++
		s.delivered++
		s.audit.NodeDelivered[sub.flow.spec.Dst]++
	}
	// Additive increase: +1 window per window's worth of ACKs, capped.
	if sub.cwnd < s.cfg.MaxWindow {
		sub.cwnd += 1 / sub.cwnd
	}
	s.pump(sub)
}

// registerLoss applies one multiplicative decrease per window (NewReno-
// style recovery: further losses below the recovery mark do not halve
// again) and backs the subflow off for a retransmission timeout. The lost
// packet is retransmitted implicitly: goodput counts deliveries, and the
// window re-injects after the backoff.
func (s *sim) registerLoss(p *pkt) {
	s.dropped++
	sub := p.sub
	sub.inflight--
	if p.id >= sub.recover {
		sub.cwnd /= 2
		if sub.cwnd < 1 {
			sub.cwnd = 1
		}
		sub.recover = sub.nextID
	}
	sub.backoff = s.now + s.cfg.RetransmitDelay
	s.schedulePump(sub, sub.backoff)
}

func (s *sim) collect() *Result {
	audit := s.audit
	res := &Result{Delivered: s.delivered, Dropped: s.dropped, Audit: &audit}
	res.MinGoodput = -1
	var sum float64
	for _, f := range s.flows {
		gp := float64(f.delivered) / s.cfg.Measure
		res.Flows = append(res.Flows, FlowResult{FlowSpec: f.spec, Goodput: gp, Subflows: len(f.subs)})
		sum += gp
		if res.MinGoodput < 0 || gp < res.MinGoodput {
			res.MinGoodput = gp
		}
	}
	sort.Slice(res.Flows, func(i, j int) bool {
		if res.Flows[i].Src != res.Flows[j].Src {
			return res.Flows[i].Src < res.Flows[j].Src
		}
		return res.Flows[i].Dst < res.Flows[j].Dst
	})
	if len(res.Flows) > 0 {
		res.MeanGoodput = sum / float64(len(res.Flows))
	}
	if res.MinGoodput < 0 {
		res.MinGoodput = 0
	}
	return res
}
