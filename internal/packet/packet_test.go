package packet

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
)

func TestSingleFlowSaturatesLink(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	rng := rand.New(rand.NewSource(1))
	res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 1}}, Config{
		SubflowsPerFlow: 1, Warmup: 50, Measure: 200,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// A single AIMD flow on a dedicated link should achieve near line rate.
	if res.MeanGoodput < 0.85 || res.MeanGoodput > 1.01 {
		t.Fatalf("goodput %v, want ~1", res.MeanGoodput)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Path 0-1-2 with both flows crossing arc 1->2... instead: two flows
	// 0->2 sharing the single 0-1-2 path via distinct sources is complex;
	// simplest fairness check: two flows on one link.
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	rng := rand.New(rand.NewSource(2))
	res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}, Config{
		SubflowsPerFlow: 1, Warmup: 100, Measure: 400,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows %d", len(res.Flows))
	}
	total := res.Flows[0].Goodput + res.Flows[1].Goodput
	if total > 1.01 {
		t.Fatalf("aggregate %v exceeds capacity", total)
	}
	if total < 0.8 {
		t.Fatalf("aggregate %v badly underutilizes", total)
	}
	// Fairness: neither flow starves (min ≥ 25% of fair share).
	if res.MinGoodput < 0.125 {
		t.Fatalf("min goodput %v: starvation", res.MinGoodput)
	}
}

func TestCapacityMonotonicity(t *testing.T) {
	run := func(capacity float64) float64 {
		g := graph.New(2)
		g.AddLink(0, 1, capacity)
		res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 1}}, Config{
			SubflowsPerFlow: 2, Warmup: 50, Measure: 200, MaxWindow: 512,
		}, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanGoodput
	}
	if g1, g2 := run(1), run(2); g2 <= g1 {
		t.Fatalf("doubling capacity did not help: %v -> %v", g1, g2)
	}
}

func TestMultipathUsesBothPaths(t *testing.T) {
	// Diamond with two disjoint 2-hop paths: 2 subflows should beat the
	// single-path rate 1.
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 3, 1)
	res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 3}}, Config{
		SubflowsPerFlow: 2, Warmup: 100, Measure: 300,
	}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanGoodput < 1.3 {
		t.Fatalf("multipath goodput %v, want ~2", res.MeanGoodput)
	}
}

func TestConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := rrg.Regular(rng, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	var flows []FlowSpec
	for i := 0; i < 12; i++ {
		flows = append(flows, FlowSpec{Src: i, Dst: (i + 5) % 12})
	}
	res, err := Simulate(g, flows, Config{SubflowsPerFlow: 4, Warmup: 50, Measure: 200}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered <= 0 {
		t.Fatal("nothing delivered")
	}
	// Aggregate goodput cannot exceed total capacity.
	var sum float64
	for _, f := range res.Flows {
		if f.Goodput < 0 {
			t.Fatal("negative goodput")
		}
		sum += f.Goodput
	}
	if sum > g.TotalCapacity() {
		t.Fatalf("aggregate %v exceeds capacity %v", sum, g.TotalCapacity())
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	run := func() float64 {
		res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 2}}, Config{
			SubflowsPerFlow: 2, Warmup: 20, Measure: 100,
		}, rand.New(rand.NewSource(6)))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanGoodput
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestErrors(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	rng := rand.New(rand.NewSource(7))
	if _, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 0}}, Config{}, rng); err == nil {
		t.Fatal("self-flow accepted")
	}
	if _, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 2}}, Config{}, rng); err == nil {
		t.Fatal("unreachable flow accepted")
	}
	res, err := Simulate(g, nil, Config{}, rng)
	if err != nil || len(res.Flows) != 0 {
		t.Fatal("empty flow list should be a no-op")
	}
}

func TestSmallQueueStillDelivers(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	res, err := Simulate(g, []FlowSpec{{Src: 0, Dst: 2}, {Src: 1, Dst: 2}}, Config{
		SubflowsPerFlow: 1, QueuePackets: 2, Warmup: 50, Measure: 200,
	}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanGoodput <= 0.1 {
		t.Fatalf("tiny queues collapsed goodput to %v", res.MeanGoodput)
	}
	if res.Dropped == 0 {
		t.Fatal("expected drops with 2-packet queues and competing flows")
	}
}

func TestFlowsSortedInResult(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	g.AddLink(2, 3, 1)
	res, err := Simulate(g, []FlowSpec{{Src: 3, Dst: 0}, {Src: 0, Dst: 3}, {Src: 1, Dst: 2}}, Config{
		SubflowsPerFlow: 1, Warmup: 10, Measure: 50,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Flows); i++ {
		if res.Flows[i-1].Src > res.Flows[i].Src {
			t.Fatal("results not sorted")
		}
	}
}
