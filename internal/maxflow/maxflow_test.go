package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rrg"
)

func TestSingleLink(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 3)
	nw := NewNetwork(g)
	if got := nw.MaxFlow(0, 1); got != 3 {
		t.Fatalf("max flow %v, want 3", got)
	}
	// Reusable for other terminals.
	if got := nw.MaxFlow(1, 0); got != 3 {
		t.Fatalf("reverse max flow %v, want 3", got)
	}
}

func TestSeriesBottleneck(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 5)
	g.AddLink(1, 2, 2)
	nw := NewNetwork(g)
	if got := nw.MaxFlow(0, 2); got != 2 {
		t.Fatalf("max flow %v, want 2", got)
	}
}

func TestParallelPaths(t *testing.T) {
	// Diamond with unit links: two disjoint paths.
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 3, 1)
	nw := NewNetwork(g)
	if got := nw.MaxFlow(0, 3); got != 2 {
		t.Fatalf("max flow %v, want 2", got)
	}
}

func TestRegularGraphDegreeCut(t *testing.T) {
	// In an r-regular unit-capacity graph the trivial cut around a node
	// bounds the flow by r; for an RRG it is typically exactly r.
	rng := rand.New(rand.NewSource(3))
	g, err := rrg.Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw := NewNetwork(g)
	got := nw.MaxFlow(0, 9)
	if got > 4+1e-9 {
		t.Fatalf("flow %v exceeds degree cut 4", got)
	}
	if got < 1 {
		t.Fatalf("flow %v suspiciously low for a connected graph", got)
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g, err := rrg.Regular(rng, 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		nw := NewNetwork(g)
		s, d := 0, 6
		value, side := nw.MinCut(s, d)
		if !side[s] || side[d] {
			t.Fatal("cut does not separate terminals")
		}
		// The graph cut capacity (one direction, s-side to t-side) must
		// equal the max flow.
		if cut := g.CutCapacity(side); math.Abs(cut-value) > 1e-9 {
			t.Fatalf("min cut %v != flow %v", cut, value)
		}
	}
}

func TestDirectedArcsNetwork(t *testing.T) {
	nw := NewNetworkFromArcs(3, []graph.Arc{
		{From: 0, To: 1, Cap: 4},
		{From: 1, To: 2, Cap: 3},
	})
	if got := nw.MaxFlow(0, 2); got != 3 {
		t.Fatalf("directed flow %v, want 3", got)
	}
	// No reverse capacity was added.
	if got := nw.MaxFlow(2, 0); got != 0 {
		t.Fatalf("reverse flow %v, want 0", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	nw := NewNetwork(g)
	if got := nw.MaxFlow(0, 3); got != 0 {
		t.Fatalf("flow across components %v, want 0", got)
	}
}

func TestBisectionBandwidthRing(t *testing.T) {
	// A ring's bisection is 2 links (one direction).
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		g.AddLink(i, (i+1)%8, 1)
	}
	got := BisectionBandwidth(g, 4)
	if got != 2 {
		t.Fatalf("ring bisection %v, want 2", got)
	}
}

func TestBisectionBandwidthBarbell(t *testing.T) {
	// Two K4s joined by one link: bisection 1.
	g := graph.New(8)
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddLink(4*c+i, 4*c+j, 1)
			}
		}
	}
	g.AddLink(0, 4, 1)
	if got := BisectionBandwidth(g, 6); got != 1 {
		t.Fatalf("barbell bisection %v, want 1", got)
	}
}

// Property: max-flow is symmetric on our undirected-style networks and
// bounded by both endpoint degrees.
func TestQuickFlowBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := rrg.Regular(rng, 10, 3)
		if err != nil {
			return true
		}
		nw := NewNetwork(g)
		a := nw.MaxFlow(0, 5)
		b := nw.MaxFlow(5, 0)
		return math.Abs(a-b) < 1e-9 && a <= 3+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
