package maxflow

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
)

// refineBalancedReference is the seed's O(n²·m) implementation, kept as a
// test oracle for the incremental-gain version.
func refineBalancedReference(g *graph.Graph, inS []bool) {
	n := g.N()
	improved := true
	for improved {
		improved = false
		cur := g.CutCapacity(inS)
		for i := 0; i < n && !improved; i++ {
			if !inS[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if inS[j] {
					continue
				}
				inS[i], inS[j] = false, true
				if c := g.CutCapacity(inS); c < cur-eps {
					improved = true
					break
				}
				inS[i], inS[j] = true, false
			}
		}
	}
}

// TestRefineBalancedMatchesReference: on unit-capacity graphs the gain
// arithmetic is exact, so the incremental refinement must make the same
// swap decisions as the brute-force reference.
func TestRefineBalancedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		g, err := rrg.Regular(rng, 24, 4)
		if err != nil {
			t.Fatal(err)
		}
		for start := 0; start < 3; start++ {
			a := make([]bool, g.N())
			b := make([]bool, g.N())
			for i := range a {
				a[i] = (i+start)%2 == 0
				b[i] = a[i]
			}
			refineBalanced(g, a)
			refineBalancedReference(g, b)
			ca, cb := g.CutCapacity(a), g.CutCapacity(b)
			if ca != cb {
				t.Fatalf("trial %d start %d: incremental cut %v, reference %v", trial, start, ca, cb)
			}
		}
	}
}

// TestBisectionWorkersInvariant: the trial reduction is a min, so the
// estimate must not depend on the worker count.
func TestBisectionWorkersInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := rrg.Regular(rng, 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	serial := BisectionBandwidthWorkers(g, 4, 1)
	parallel := BisectionBandwidthWorkers(g, 4, 8)
	def := BisectionBandwidth(g, 4)
	if serial != parallel || serial != def {
		t.Fatalf("worker-count dependence: serial %v, parallel %v, default %v", serial, parallel, def)
	}
}

// TestRefineBalancedPreservesBalance: swaps must keep the side sizes.
func TestRefineBalancedPreservesBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := rrg.Regular(rng, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	inS := make([]bool, g.N())
	want := 0
	for i := range inS {
		inS[i] = i%2 == 0
		if inS[i] {
			want++
		}
	}
	refineBalanced(g, inS)
	got := 0
	for _, b := range inS {
		if b {
			got++
		}
	}
	if got != want {
		t.Fatalf("side size changed: %d, want %d", got, want)
	}
}
