// Package maxflow implements exact single-commodity maximum flow (Dinic's
// algorithm) on the repository's graphs. The paper's throughput model is
// multi-commodity (package mcf); exact max-flow serves as the substrate for
// cut-based checks: bisection bandwidth, min-cut certificates, and
// cross-validation of the approximate multi-commodity solver.
package maxflow

import (
	"math"

	"repro/internal/graph"
	"repro/internal/runner"
)

// arc is an internal residual-network arc.
type arc struct {
	to   int32
	rev  int32 // index of the reverse arc in adj[to]
	cap  float64
	flow float64
}

// Network is a residual flow network built from a Graph. Each undirected
// link contributes two independent directed capacities, matching the
// paper's "unit capacity in each direction" convention.
type Network struct {
	n   int
	adj [][]arc
}

// NewNetwork builds a flow network from g.
func NewNetwork(g *graph.Graph) *Network {
	nw := &Network{n: g.N(), adj: make([][]arc, g.N())}
	for id := 0; id < g.NumLinks(); id++ {
		u, v := g.LinkEnds(id)
		c := g.LinkCapacity(id)
		nw.addEdge(u, v, c)
		nw.addEdge(v, u, c)
	}
	return nw
}

// NewNetworkFromArcs builds a network with explicit directed arcs.
func NewNetworkFromArcs(n int, arcs []graph.Arc) *Network {
	nw := &Network{n: n, adj: make([][]arc, n)}
	for _, a := range arcs {
		nw.addEdge(int(a.From), int(a.To), a.Cap)
	}
	return nw
}

func (nw *Network) addEdge(u, v int, c float64) {
	nw.adj[u] = append(nw.adj[u], arc{to: int32(v), rev: int32(len(nw.adj[v])), cap: c})
	nw.adj[v] = append(nw.adj[v], arc{to: int32(u), rev: int32(len(nw.adj[u]) - 1), cap: 0})
}

// reset zeroes all flow so the network can be reused.
func (nw *Network) reset() {
	for u := range nw.adj {
		for i := range nw.adj[u] {
			nw.adj[u][i].flow = 0
		}
	}
}

const eps = 1e-12

// MaxFlow computes the maximum s-t flow value. The network's flow state is
// reset first, so MaxFlow can be called repeatedly with different
// terminals.
func (nw *Network) MaxFlow(s, t int) float64 {
	nw.reset()
	var total float64
	level := make([]int32, nw.n)
	iter := make([]int, nw.n)
	for nw.bfsLevel(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, math.Inf(1), level, iter)
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (nw *Network) bfsLevel(s, t int, level []int32) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.adj[u] {
			if a.cap-a.flow > eps && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return level[t] >= 0
}

func (nw *Network) dfs(u, t int, limit float64, level []int32, iter []int) float64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(nw.adj[u]); iter[u]++ {
		a := &nw.adj[u][iter[u]]
		if a.cap-a.flow > eps && level[a.to] == level[u]+1 {
			f := nw.dfs(int(a.to), t, math.Min(limit, a.cap-a.flow), level, iter)
			if f > eps {
				a.flow += f
				nw.adj[a.to][a.rev].flow -= f
				return f
			}
		}
	}
	return 0
}

// MinCut computes the max s-t flow and returns the source-side node set of
// a minimum cut.
func (nw *Network) MinCut(s, t int) (value float64, sourceSide []bool) {
	value = nw.MaxFlow(s, t)
	sourceSide = make([]bool, nw.n)
	queue := []int32{int32(s)}
	sourceSide[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.adj[u] {
			if a.cap-a.flow > eps && !sourceSide[a.to] {
				sourceSide[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return value, sourceSide
}

// BisectionBandwidth estimates the bisection bandwidth of g: the minimum
// over sampled balanced bipartitions of the capacity crossing the cut (one
// direction). Exact bisection is NP-hard; we refine deterministic balanced
// splits with Kernighan–Lin style local search. Trials are independent and
// run concurrently (bounded by GOMAXPROCS); the min-reduction is
// order-insensitive, so the result is deterministic given the trial seeds.
func BisectionBandwidth(g *graph.Graph, trials int) float64 {
	return BisectionBandwidthWorkers(g, trials, 0)
}

// BisectionBandwidthWorkers is BisectionBandwidth with an explicit worker
// bound: 0 means GOMAXPROCS, 1 forces serial execution. Callers already
// running inside a parallel grid should pass their own worker budget.
func BisectionBandwidthWorkers(g *graph.Graph, trials, workers int) float64 {
	n := g.N()
	if n < 2 || trials <= 0 {
		return 0
	}
	cuts, _ := runner.Map(runner.New(workers), trials, func(t int) (float64, error) {
		inS := make([]bool, n)
		for i := 0; i < n; i++ {
			inS[i] = (i+t)%2 == 0
		}
		refineBalanced(g, inS)
		return g.CutCapacity(inS), nil
	})
	best := math.Inf(1)
	for _, c := range cuts {
		if c < best {
			best = c
		}
	}
	return best
}

// refineBalanced greedily swaps node pairs across the cut while the cut
// capacity decreases (Kernighan–Lin style). Swap gains come from per-node
// boundary capacities: with D[u] = cap(u, other side) - cap(u, own side),
// swapping i ∈ S with j ∉ S changes the cut by -(D[i] + D[j] - 2·w(i,j)).
// Each candidate pair is therefore O(1) (plus an O(deg) row fill per
// pivot), instead of recomputing the full cut capacity O(n²) times per
// pass as the seed implementation did.
func refineBalanced(g *graph.Graph, inS []bool) {
	n := g.N()
	D := make([]float64, n)
	for id := 0; id < g.NumLinks(); id++ {
		u, v := g.LinkEnds(id)
		w := g.LinkCapacity(id)
		if inS[u] != inS[v] {
			D[u] += w
			D[v] += w
		} else {
			D[u] -= w
			D[v] -= w
		}
	}
	// move flips u to the other side and updates the boundary capacities of
	// u and its neighbors.
	move := func(u int) {
		inS[u] = !inS[u]
		D[u] = -D[u]
		for _, a := range g.OutArcs(u) {
			arc := g.Arc(int(a))
			v := int(arc.To)
			if inS[v] == inS[u] {
				D[v] -= 2 * arc.Cap // the link just became internal
			} else {
				D[v] += 2 * arc.Cap // the link just started crossing
			}
		}
	}
	// wRow[j] caches cap(pivot, j); rows are invalidated by stamping.
	wRow := make([]float64, n)
	rowStamp := make([]int64, n)
	var stamp int64
	improved := true
	for improved {
		improved = false
		for i := 0; i < n && !improved; i++ {
			if !inS[i] {
				continue
			}
			stamp++
			for _, a := range g.OutArcs(i) {
				arc := g.Arc(int(a))
				v := int(arc.To)
				if rowStamp[v] != stamp {
					rowStamp[v] = stamp
					wRow[v] = 0
				}
				wRow[v] += arc.Cap
			}
			for j := 0; j < n; j++ {
				if inS[j] {
					continue
				}
				var w float64
				if rowStamp[j] == stamp {
					w = wRow[j]
				}
				if D[i]+D[j]-2*w > eps {
					move(i)
					move(j)
					improved = true
					break
				}
			}
		}
	}
}
