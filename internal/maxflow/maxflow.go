// Package maxflow implements exact single-commodity maximum flow (Dinic's
// algorithm) on the repository's graphs. The paper's throughput model is
// multi-commodity (package mcf); exact max-flow serves as the substrate for
// cut-based checks: bisection bandwidth, min-cut certificates, and
// cross-validation of the approximate multi-commodity solver.
package maxflow

import (
	"math"

	"repro/internal/graph"
)

// arc is an internal residual-network arc.
type arc struct {
	to   int32
	rev  int32 // index of the reverse arc in adj[to]
	cap  float64
	flow float64
}

// Network is a residual flow network built from a Graph. Each undirected
// link contributes two independent directed capacities, matching the
// paper's "unit capacity in each direction" convention.
type Network struct {
	n   int
	adj [][]arc
}

// NewNetwork builds a flow network from g.
func NewNetwork(g *graph.Graph) *Network {
	nw := &Network{n: g.N(), adj: make([][]arc, g.N())}
	for id := 0; id < g.NumLinks(); id++ {
		u, v := g.LinkEnds(id)
		c := g.LinkCapacity(id)
		nw.addEdge(u, v, c)
		nw.addEdge(v, u, c)
	}
	return nw
}

// NewNetworkFromArcs builds a network with explicit directed arcs.
func NewNetworkFromArcs(n int, arcs []graph.Arc) *Network {
	nw := &Network{n: n, adj: make([][]arc, n)}
	for _, a := range arcs {
		nw.addEdge(int(a.From), int(a.To), a.Cap)
	}
	return nw
}

func (nw *Network) addEdge(u, v int, c float64) {
	nw.adj[u] = append(nw.adj[u], arc{to: int32(v), rev: int32(len(nw.adj[v])), cap: c})
	nw.adj[v] = append(nw.adj[v], arc{to: int32(u), rev: int32(len(nw.adj[u]) - 1), cap: 0})
}

// reset zeroes all flow so the network can be reused.
func (nw *Network) reset() {
	for u := range nw.adj {
		for i := range nw.adj[u] {
			nw.adj[u][i].flow = 0
		}
	}
}

const eps = 1e-12

// MaxFlow computes the maximum s-t flow value. The network's flow state is
// reset first, so MaxFlow can be called repeatedly with different
// terminals.
func (nw *Network) MaxFlow(s, t int) float64 {
	nw.reset()
	var total float64
	level := make([]int32, nw.n)
	iter := make([]int, nw.n)
	for nw.bfsLevel(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := nw.dfs(s, t, math.Inf(1), level, iter)
			if f <= eps {
				break
			}
			total += f
		}
	}
	return total
}

func (nw *Network) bfsLevel(s, t int, level []int32) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int32{int32(s)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.adj[u] {
			if a.cap-a.flow > eps && level[a.to] < 0 {
				level[a.to] = level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return level[t] >= 0
}

func (nw *Network) dfs(u, t int, limit float64, level []int32, iter []int) float64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(nw.adj[u]); iter[u]++ {
		a := &nw.adj[u][iter[u]]
		if a.cap-a.flow > eps && level[a.to] == level[u]+1 {
			f := nw.dfs(int(a.to), t, math.Min(limit, a.cap-a.flow), level, iter)
			if f > eps {
				a.flow += f
				nw.adj[a.to][a.rev].flow -= f
				return f
			}
		}
	}
	return 0
}

// MinCut computes the max s-t flow and returns the source-side node set of
// a minimum cut.
func (nw *Network) MinCut(s, t int) (value float64, sourceSide []bool) {
	value = nw.MaxFlow(s, t)
	sourceSide = make([]bool, nw.n)
	queue := []int32{int32(s)}
	sourceSide[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range nw.adj[u] {
			if a.cap-a.flow > eps && !sourceSide[a.to] {
				sourceSide[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return value, sourceSide
}

// BisectionBandwidth estimates the bisection bandwidth of g: the minimum
// over sampled balanced bipartitions of the capacity crossing the cut (one
// direction). Exact bisection is NP-hard; we combine (a) max-flow min-cuts
// between node pairs, keeping only near-balanced ones, and (b) a
// Kernighan–Lin style local refinement from a random balanced split.
// Deterministic given the trials order.
func BisectionBandwidth(g *graph.Graph, trials int) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	best := math.Inf(1)
	// Local refinement from deterministic seeds.
	for t := 0; t < trials; t++ {
		inS := make([]bool, n)
		for i := 0; i < n; i++ {
			inS[i] = (i+t)%2 == 0
		}
		refineBalanced(g, inS)
		if c := g.CutCapacity(inS); c < best {
			best = c
		}
	}
	return best
}

// refineBalanced greedily swaps node pairs across the cut while the cut
// capacity decreases.
func refineBalanced(g *graph.Graph, inS []bool) {
	n := g.N()
	improved := true
	for improved {
		improved = false
		cur := g.CutCapacity(inS)
		for i := 0; i < n && !improved; i++ {
			if !inS[i] {
				continue
			}
			for j := 0; j < n; j++ {
				if inS[j] {
					continue
				}
				inS[i], inS[j] = false, true
				if c := g.CutCapacity(inS); c < cur-eps {
					improved = true
					break
				}
				inS[i], inS[j] = true, false
			}
		}
	}
}
