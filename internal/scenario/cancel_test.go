package scenario

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestMeasureRunsCtxCanceled: a canceled context surfaces as the
// context's own error (errors.Is-able), and no partial values leak into
// the cache — re-evaluating after cancellation yields the full result.
func TestMeasureRunsCtxCanceled(t *testing.T) {
	topo, err := ParseTopology("rrg:n=10,deg=3,sps=1")
	if err != nil {
		t.Fatal(err)
	}
	eval, err := ParseEvaluator("aspl")
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{{Topo: topo, Eval: eval, Seed: 1, Runs: 2}}

	cache := NewCache()
	eng := &Engine{Parallel: 1, Cache: cache}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.MeasureRunsCtx(ctx, pts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v, want context.Canceled", err)
	}
	if cache.Stats().Entries != 0 {
		t.Fatal("a canceled evaluation left cache entries behind")
	}

	// The same engine recovers fully once the pressure is off.
	vals, err := eng.MeasureRunsCtx(context.Background(), pts)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := (&Engine{Parallel: 1}).MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, clean) {
		t.Fatal("post-cancellation evaluation differs from a clean one")
	}
}
