package scenario

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/hetero"
	"repro/internal/store"
)

// failEval always errors; its points claim a lease (via the tiered
// backend) and then have nothing to publish.
type failEval struct{}

func (failEval) Spec() string                           { return "faileval" }
func (failEval) Evaluate(*EvalContext) (float64, error) { return 0, errors.New("solver exploded") }

// parkEval blocks until the evaluation is canceled, then reports the
// cancellation.
type parkEval struct{ entered chan struct{} }

func (e parkEval) Spec() string { return "parkeval" }
func (e parkEval) Evaluate(ctx *EvalContext) (float64, error) {
	close(e.entered)
	<-ctx.Cancel
	return 0, errors.New("canceled mid-solve")
}

// infeasEval reports its point physically unrealizable.
type infeasEval struct{}

func (infeasEval) Spec() string { return "infeaseval" }
func (infeasEval) Evaluate(*EvalContext) (float64, error) {
	return 0, hetero.ErrInfeasiblePoint
}

func claimedEngine(t *testing.T) (*Engine, *store.Store, *store.Tiered) {
	t.Helper()
	disk, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTiered(disk, nil, store.TieredOptions{
		LeaseTTL: 10 * time.Second, Poll: 2 * time.Millisecond,
	})
	cache := NewCache()
	cache.SetBackend(tiered)
	return &Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}, disk, tiered
}

// TestAbandonedSolveReleasesClaim pins the claim-leak fix: a solve that
// claims a lease (tiered miss) and then errors must release the lease
// immediately. Pre-fix, only Save released claims, so a failed solve
// parked every fleet peer waiting on the key for the full lease TTL.
func TestAbandonedSolveReleasesClaim(t *testing.T) {
	eng, disk, tiered := claimedEngine(t)
	topo, err := ParseTopology("rrg:n=10,deg=3,sps=1")
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{{Topo: topo, Eval: failEval{}, Seed: 1, Runs: 1}}
	if _, err := eng.MeasureRuns(pts); err == nil {
		t.Fatal("failing evaluator must surface its error")
	}
	addr := store.Addr(pts[0].Key())
	if owner, _, ok := disk.ClaimHolder(addr); ok {
		t.Fatalf("failed solve left its claim parked (held by %q) — peers wait out the full TTL", owner)
	}
	if got := tiered.Stats().Abandons; got == 0 {
		t.Fatal("abandon not counted")
	}
}

// TestCanceledSolveReleasesClaim: the same invariant under cancellation —
// a canceled eval frees its claim immediately, not at lease expiry.
func TestCanceledSolveReleasesClaim(t *testing.T) {
	eng, disk, _ := claimedEngine(t)
	topo, err := ParseTopology("rrg:n=10,deg=3,sps=1")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	pts := []Point{{Topo: topo, Eval: parkEval{entered: entered}, Seed: 1, Runs: 1}}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := eng.MeasureRunsCtx(ctx, pts)
		errc <- err
	}()
	<-entered // the solve holds the claim and is parked in the evaluator
	addr := store.Addr(pts[0].Key())
	if _, _, ok := disk.ClaimHolder(addr); !ok {
		t.Fatal("test setup: the in-flight solve should hold the claim")
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err: %v, want context.Canceled", err)
	}
	if owner, _, ok := disk.ClaimHolder(addr); ok {
		t.Fatalf("canceled solve left its claim parked (held by %q)", owner)
	}
}

// TestInfeasibleSkipReleasesClaim: an infeasible point is skipped, not
// failed — but it publishes nothing either, so its claim must be released
// all the same.
func TestInfeasibleSkipReleasesClaim(t *testing.T) {
	eng, disk, _ := claimedEngine(t)
	topo, err := ParseTopology("rrg:n=10,deg=3,sps=1")
	if err != nil {
		t.Fatal(err)
	}
	pts := []Point{{Topo: topo, Eval: infeasEval{}, Seed: 1, Runs: 1}}
	vals, err := eng.MeasureRuns(pts)
	if err != nil {
		t.Fatalf("infeasible point must skip, not fail: %v", err)
	}
	if vals[0] != nil {
		t.Fatal("infeasible point must report nil runs")
	}
	if owner, _, ok := disk.ClaimHolder(store.Addr(pts[0].Key())); ok {
		t.Fatalf("infeasible skip left its claim parked (held by %q)", owner)
	}
}

// TestMeasureRunsProgress: the per-point callback fires once up front
// (0/n) and once per completed point, monotonically, ending at n/n.
func TestMeasureRunsProgress(t *testing.T) {
	topo, err := ParseTopology("rrg:n=10,deg=3,sps=1")
	if err != nil {
		t.Fatal(err)
	}
	eval, err := ParseEvaluator("aspl")
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, 3)
	for i := range pts {
		pts[i] = Point{Topo: topo, Eval: eval, Seed: int64(i + 1), Runs: 1}
	}
	var mu sync.Mutex
	var ticks [][2]int
	eng := &Engine{Parallel: 1}
	_, err = eng.MeasureRunsProgress(context.Background(), pts, func(done, total int) {
		mu.Lock()
		ticks = append(ticks, [2]int{done, total})
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ticks) != len(pts)+1 {
		t.Fatalf("ticks: %v, want %d calls", ticks, len(pts)+1)
	}
	if ticks[0] != [2]int{0, 3} {
		t.Fatalf("first tick %v, want {0 3}", ticks[0])
	}
	for i, tk := range ticks {
		if tk[1] != 3 {
			t.Fatalf("tick %d total %d, want 3", i, tk[1])
		}
		if i > 0 && tk[0] != ticks[i-1][0]+1 {
			t.Fatalf("ticks not monotone: %v", ticks)
		}
	}
	if last := ticks[len(ticks)-1]; last != [2]int{3, 3} {
		t.Fatalf("final tick %v, want {3 3}", last)
	}
}
