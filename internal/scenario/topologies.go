package scenario

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/rrg"
	"repro/internal/topo"
)

// Built-in topology registry entries. Each wraps one constructor of the
// topo/rrg/hetero layer; the experiment runners and topobench -scenario
// address them through the same specs.
func init() {
	RegisterTopology("rrg", parseRRG)
	RegisterTopology("plrrg", parsePowerLawRRG)
	RegisterTopology("hetero", parseHetero)
	RegisterTopology("vl2", parseVL2)
	RegisterTopology("rewired-vl2", parseRewiredVL2)
	RegisterTopology("fattree", parseFatTree)
	RegisterTopology("hypercube", parseHypercube)
	RegisterTopology("torus", parseTorus)
	RegisterTopology("jellyfish", parseJellyfish)
	RegisterTopology("twocluster", parseTwoCluster)
	RegisterTopology("expand", parseExpand)
}

// RRG is the paper's homogeneous design: a uniform random regular graph of
// n switches with network degree deg, hosting sps servers per switch.
type RRG struct {
	N, Deg, SPS int
}

func (t *RRG) Spec() string {
	return FormatSpec("rrg", "n", IntParam(t.N), "deg", IntParam(t.Deg), "sps", IntParam(t.SPS))
}

func (t *RRG) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, err := rrg.Regular(rng, t.N, t.Deg)
	if err != nil {
		return nil, err
	}
	if t.SPS > 0 {
		for u := 0; u < t.N; u++ {
			g.SetServers(u, t.SPS)
		}
	}
	return g, nil
}

func parseRRG(p Params) (Topology, error) {
	r := p.Reader()
	t := &RRG{N: r.Int("n", 40), Deg: r.Int("deg", 10), SPS: r.Int("sps", 0)}
	return t, r.Err()
}

// PowerLawRRG draws a power-law port sequence (exponent gamma, ports in
// [kmin, kmax], mean avg) deterministically from pseed, wires it as a
// random graph, and attaches servers in proportion to degree^beta (§5's
// power-law extension, Fig. 5). Servers may be given explicitly or as
// sfrac (fraction of total ports).
type PowerLawRRG struct {
	N          int
	Avg, Gamma float64
	Kmin, Kmax int
	Servers    int     // explicit server count; 0 means use SFrac
	SFrac      float64 // servers as a fraction of total ports
	Beta       float64
	PortSeed   int64 // seed of the port-sequence draw (shared across runs)
}

func (t *PowerLawRRG) Spec() string {
	return FormatSpec("plrrg",
		"n", IntParam(t.N), "avg", FloatParam(t.Avg), "gamma", FloatParam(t.Gamma),
		"kmin", IntParam(t.Kmin), "kmax", IntParam(t.Kmax),
		"servers", IntParam(t.Servers), "sfrac", FloatParam(t.SFrac),
		"beta", FloatParam(t.Beta), "pseed", fmt.Sprint(t.PortSeed))
}

// Ports returns the deterministic port sequence of the spec (every run
// shares it, so sweeps isolate the effect of beta as Fig. 5 requires).
func (t *PowerLawRRG) Ports() ([]int, error) {
	return rrg.PowerLawDegrees(rand.New(rand.NewSource(t.PortSeed)), t.N, t.Avg, t.Gamma, t.Kmin, t.Kmax)
}

func (t *PowerLawRRG) Build(rng *rand.Rand) (*graph.Graph, error) {
	ports, err := t.Ports()
	if err != nil {
		return nil, err
	}
	servers := t.Servers
	if servers == 0 && t.SFrac > 0 {
		total := 0
		for _, p := range ports {
			total += p
		}
		servers = int(t.SFrac * float64(total))
	}
	return hetero.BuildPowerLaw(rng, ports, servers, t.Beta)
}

func parsePowerLawRRG(p Params) (Topology, error) {
	r := p.Reader()
	t := &PowerLawRRG{
		N: r.Int("n", 40), Avg: r.Float("avg", 8), Gamma: r.Float("gamma", 2.2),
		Kmin: r.Int("kmin", 3), Kmax: r.Int("kmax", 20),
		Servers: r.Int("servers", 0), SFrac: r.Float("sfrac", 0),
		Beta: r.Float("beta", 1), PortSeed: r.Int64("pseed", 1),
	}
	return t, r.Err()
}

// Hetero wraps the §5 two-switch-type design framework (hetero.Config):
// switch pools, server split (explicit or ratio-driven), cross-cluster
// volume, and optional high line-speed links among the large switches.
type Hetero struct {
	Cfg hetero.Config
}

func (t *Hetero) Spec() string {
	c := t.Cfg
	return FormatSpec("hetero",
		"nl", IntParam(c.NumLarge), "ns", IntParam(c.NumSmall),
		"pl", IntParam(c.PortsLarge), "ps", IntParam(c.PortsSmall),
		"servers", IntParam(c.Servers),
		"spl", IntParam(c.ServersPerLarge), "sps", IntParam(c.ServersPerSmall),
		"ratio", FloatParam(c.ServerRatio), "cross", FloatParam(c.CrossRatio),
		"hl", IntParam(c.HighLinksPerLarge), "hc", FloatParam(c.HighCap))
}

func (t *Hetero) Build(rng *rand.Rand) (*graph.Graph, error) {
	return hetero.Build(rng, t.Cfg)
}

func parseHetero(p Params) (Topology, error) {
	r := p.Reader()
	t := &Hetero{Cfg: hetero.Config{
		NumLarge: r.Int("nl", 20), NumSmall: r.Int("ns", 40),
		PortsLarge: r.Int("pl", 30), PortsSmall: r.Int("ps", 10),
		Servers:         r.Int("servers", 0),
		ServersPerLarge: r.Int("spl", -1), ServersPerSmall: r.Int("sps", -1),
		ServerRatio: r.Float("ratio", 0), CrossRatio: r.Float("cross", 0),
		HighLinksPerLarge: r.Int("hl", 0), HighCap: r.Float("hc", 0),
	}}
	return t, r.Err()
}

// VL2 is the standard VL2 fabric of §7 with an arbitrary ToR count
// (tors=0 means the designed DA·DI/4).
type VL2 struct {
	DA, DI, ToRs, ServersPerToR int
}

func (t *VL2) Spec() string {
	return FormatSpec("vl2",
		"da", IntParam(t.DA), "di", IntParam(t.DI),
		"tors", IntParam(t.ToRs), "sptor", IntParam(t.ServersPerToR))
}

func (t *VL2) Build(rng *rand.Rand) (*graph.Graph, error) {
	cfg := topo.VL2Config{DA: t.DA, DI: t.DI, ServersPerToR: t.ServersPerToR}
	tors := t.ToRs
	if tors == 0 {
		tors = cfg.NumToRs()
	}
	return topo.VL2WithToRs(cfg, tors)
}

func parseVL2(p Params) (Topology, error) {
	r := p.Reader()
	t := &VL2{DA: r.Int("da", 8), DI: r.Int("di", 8), ToRs: r.Int("tors", 0), ServersPerToR: r.Int("sptor", 0)}
	return t, r.Err()
}

// RewiredVL2 is the paper's §7 rewiring of the VL2 equipment pool.
type RewiredVL2 struct {
	DA, DI, ToRs, ServersPerToR int
}

func (t *RewiredVL2) Spec() string {
	return FormatSpec("rewired-vl2",
		"da", IntParam(t.DA), "di", IntParam(t.DI),
		"tors", IntParam(t.ToRs), "sptor", IntParam(t.ServersPerToR))
}

func (t *RewiredVL2) Build(rng *rand.Rand) (*graph.Graph, error) {
	cfg := topo.VL2Config{DA: t.DA, DI: t.DI, ServersPerToR: t.ServersPerToR}
	tors := t.ToRs
	if tors == 0 {
		tors = cfg.NumToRs()
	}
	return topo.RewiredVL2(rng, cfg, tors)
}

func parseRewiredVL2(p Params) (Topology, error) {
	r := p.Reader()
	t := &RewiredVL2{DA: r.Int("da", 8), DI: r.Int("di", 8), ToRs: r.Int("tors", 0), ServersPerToR: r.Int("sptor", 0)}
	return t, r.Err()
}

// FatTree is the k-ary fat-tree (servers set by the constructor).
type FatTree struct{ K int }

func (t *FatTree) Spec() string { return FormatSpec("fattree", "k", IntParam(t.K)) }

func (t *FatTree) Build(rng *rand.Rand) (*graph.Graph, error) { return topo.FatTree(t.K) }

func parseFatTree(p Params) (Topology, error) {
	r := p.Reader()
	t := &FatTree{K: r.Int("k", 4)}
	return t, r.Err()
}

// Hypercube is the dim-dimensional hypercube with sps servers per node.
type Hypercube struct{ Dim, SPS int }

func (t *Hypercube) Spec() string {
	return FormatSpec("hypercube", "dim", IntParam(t.Dim), "sps", IntParam(t.SPS))
}

func (t *Hypercube) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, err := topo.Hypercube(t.Dim)
	if err != nil {
		return nil, err
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, t.SPS)
	}
	return g, nil
}

func parseHypercube(p Params) (Topology, error) {
	r := p.Reader()
	t := &Hypercube{Dim: r.Int("dim", 6), SPS: r.Int("sps", 1)}
	return t, r.Err()
}

// Torus is the a×b 2D torus with sps servers per node.
type Torus struct{ A, B, SPS int }

func (t *Torus) Spec() string {
	return FormatSpec("torus", "a", IntParam(t.A), "b", IntParam(t.B), "sps", IntParam(t.SPS))
}

func (t *Torus) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, err := topo.Torus2D(t.A, t.B)
	if err != nil {
		return nil, err
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, t.SPS)
	}
	return g, nil
}

func parseTorus(p Params) (Topology, error) {
	r := p.Reader()
	t := &Torus{A: r.Int("a", 8), B: r.Int("b", 8), SPS: r.Int("sps", 1)}
	return t, r.Err()
}

// Jellyfish is RRG(n, ports, deg) with ports-deg servers per switch.
type Jellyfish struct{ N, Ports, Deg int }

func (t *Jellyfish) Spec() string {
	return FormatSpec("jellyfish", "n", IntParam(t.N), "ports", IntParam(t.Ports), "deg", IntParam(t.Deg))
}

func (t *Jellyfish) Build(rng *rand.Rand) (*graph.Graph, error) {
	return topo.Jellyfish(rng, t.N, t.Ports, t.Deg)
}

func parseJellyfish(p Params) (Topology, error) {
	r := p.Reader()
	t := &Jellyfish{N: r.Int("n", 40), Ports: r.Int("ports", 15), Deg: r.Int("deg", 10)}
	return t, r.Err()
}

// TwoCluster is the Theorem 2 setting: two clusters of n constant-degree
// nodes each, cross cross-cluster links (snapped to feasibility), unit
// capacities, no servers.
type TwoCluster struct{ N, Deg, Cross int }

func (t *TwoCluster) Spec() string {
	return FormatSpec("twocluster", "n", IntParam(t.N), "deg", IntParam(t.Deg), "cross", IntParam(t.Cross))
}

func (t *TwoCluster) Build(rng *rand.Rand) (*graph.Graph, error) {
	deg := make([]int, t.N)
	for i := range deg {
		deg[i] = t.Deg
	}
	x, err := rrg.FeasibleCross(t.Cross, t.N*t.Deg, t.N*t.Deg)
	if err != nil {
		return nil, err
	}
	return rrg.TwoCluster(rng, rrg.TwoClusterSpec{DegA: deg, DegB: deg, CrossLinks: x, LinkCap: 1})
}

func parseTwoCluster(p Params) (Topology, error) {
	r := p.Reader()
	t := &TwoCluster{N: r.Int("n", 12), Deg: r.Int("deg", 6), Cross: r.Int("cross", 8)}
	return t, r.Err()
}

// Expand is the paper's §2 incremental-expansion story made sweepable: an
// RRG of n switches (degree deg, sps servers each) grown by steps
// additional switches via rrg.ExpandWithSwitch — each new switch joins by
// breaking deg/2 random existing links and rewiring both halves to
// itself, leaving existing degrees untouched. New switches get the same
// sps servers and links of capacity cap. Sweeping steps measures how
// throughput evolves as a deployed fabric grows (deg must be even; odd
// values are infeasible sweep points).
type Expand struct {
	N, Deg, SPS, Steps int
	Cap                float64
}

func (t *Expand) Spec() string {
	return FormatSpec("expand",
		"n", IntParam(t.N), "deg", IntParam(t.Deg), "sps", IntParam(t.SPS),
		"steps", IntParam(t.Steps), "cap", FloatParam(t.Cap))
}

func (t *Expand) Build(rng *rand.Rand) (*graph.Graph, error) {
	g, err := rrg.Regular(rng, t.N, t.Deg)
	if err != nil {
		return nil, err
	}
	if t.SPS > 0 {
		for u := 0; u < t.N; u++ {
			g.SetServers(u, t.SPS)
		}
	}
	g, err = rrg.ExpandBy(rng, g, t.Steps, t.Deg, t.Cap)
	if err != nil {
		return nil, err
	}
	if t.SPS > 0 {
		for u := t.N; u < g.N(); u++ {
			g.SetServers(u, t.SPS)
		}
	}
	return g, nil
}

// ParentTopology makes an expansion step delta-shaped: the parent is the
// same growth at steps−1. Both points build from the same RNG stream, so
// the first steps−1 expansions are draw-for-draw identical and the parent
// graph is the child graph minus the last switch — its witness maps onto
// the child by surviving-link matching, with the rewired and new links
// taking the solver's neutral prior.
func (t *Expand) ParentTopology() (Topology, bool) {
	if t.Steps <= 0 {
		return nil, false
	}
	p := *t
	p.Steps--
	return &p, true
}

func parseExpand(p Params) (Topology, error) {
	r := p.Reader()
	t := &Expand{
		N: r.Int("n", 40), Deg: r.Int("deg", 10), SPS: r.Int("sps", 0),
		Steps: r.Int("steps", 1), Cap: r.Float("cap", 1),
	}
	return t, r.Err()
}
