package scenario

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// TestRegistryRoundTrip pins the canonicalization fixed point: parsing a
// spec and reprinting it yields a spec that parses to an identical
// scenario and reprints identically (spec → scenario → spec is stable
// after one canonicalization).
func TestRegistryRoundTrip(t *testing.T) {
	cases := []struct {
		parse func(string) (interface{ Spec() string }, error)
		specs []string
	}{
		{
			parse: func(s string) (interface{ Spec() string }, error) { return ParseTopology(s) },
			specs: []string{
				"rrg",
				"rrg:n=400,deg=10",
				"rrg:sps=5,n=40,deg=10", // key order does not matter
				"plrrg:n=40,avg=8,kmax=16,sfrac=0.4,beta=1.2,pseed=7",
				"hetero:nl=20,ns=30,pl=30,ps=20,servers=480,ratio=1.3",
				"vl2:da=8,di=8",
				"rewired-vl2:da=10,di=16,tors=50",
				"fattree:k=6",
				"hypercube:dim=5,sps=2",
				"torus:a=4,b=6",
				"jellyfish:n=40,ports=15,deg=10",
				"twocluster:n=12,deg=6,cross=8",
				"expand",
				"expand:n=20,deg=6,sps=2,steps=4,cap=2",
			},
		},
		{
			parse: func(s string) (interface{ Spec() string }, error) { return ParseTraffic(s) },
			specs: []string{
				"permutation", "all-to-all", "chunky:frac=0.6",
				"hotspot:frac=0.25", "bipartite:n1=12", "none",
			},
		},
		{
			parse: func(s string) (interface{ Spec() string }, error) { return ParseEvaluator(s) },
			specs: []string{
				"mcf", "aspl", "bisection:trials=8",
				"packet:subflows=4,warmup=40,measure=160", "cut:n1=12",
				"failures",
				"failures:frac=0.1,eval=mcf",
				"failures:frac=0.15,eval=bisection/trials=8",
			},
		},
	}
	for _, c := range cases {
		for _, spec := range c.specs {
			first, err := c.parse(spec)
			if err != nil {
				t.Fatalf("parse %q: %v", spec, err)
			}
			canonical := first.Spec()
			second, err := c.parse(canonical)
			if err != nil {
				t.Fatalf("re-parse %q (from %q): %v", canonical, spec, err)
			}
			if got := second.Spec(); got != canonical {
				t.Errorf("spec %q not a canonical fixed point: %q -> %q", spec, canonical, got)
			}
			if !reflect.DeepEqual(first, second) {
				t.Errorf("spec %q: canonical re-parse differs: %+v vs %+v", spec, first, second)
			}
		}
	}
}

// TestRegistryRejectsUnknown pins the error paths: unknown kinds, unknown
// parameters, and malformed values must all fail loudly.
func TestRegistryRejectsUnknown(t *testing.T) {
	if _, err := ParseTopology("nope:n=4"); err == nil {
		t.Error("unknown topology kind accepted")
	}
	if _, err := ParseTopology("rrg:dge=10"); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Errorf("typo parameter not rejected: %v", err)
	}
	if _, err := ParseTopology("rrg:n=ten"); err == nil {
		t.Error("malformed integer accepted")
	}
	if _, err := ParseTraffic("chunky:frac=much"); err == nil {
		t.Error("malformed float accepted")
	}
	if _, err := ParseEvaluator("packet:subflows=4,subflows=8"); err == nil {
		t.Error("duplicate parameter accepted")
	}
	if _, err := ParseEvaluator("failures:eval=nope"); err == nil {
		t.Error("failures with unknown inner evaluator accepted")
	}
	if _, err := ParseEvaluator("failures:eval=failures"); err == nil {
		t.Error("self-nested failures evaluator accepted")
	}
}

// TestFailuresEvaluator pins the failure wrapper's semantics: frac=0 is
// the intact metric, higher fractions are deterministic per (point, run)
// and never above the intact value for mcf throughput.
func TestFailuresEvaluator(t *testing.T) {
	run := func(spec string) []float64 {
		t.Helper()
		ev, err := ParseEvaluator(spec)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := ParseTopology("rrg:n=16,deg=6,sps=2")
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Parallel: 1}
		vals, err := e.MeasureRuns([]Point{{
			Topo: topo, Traffic: Permutation{}, Eval: ev,
			Seed: 4, Runs: 2, Epsilon: 0.12,
		}})
		if err != nil {
			t.Fatal(err)
		}
		return vals[0]
	}
	intact := run("mcf")
	zero := run("failures:frac=0,eval=mcf")
	if !reflect.DeepEqual(intact, zero) {
		t.Fatalf("frac=0 differs from intact metric: %v vs %v", zero, intact)
	}
	failedA := run("failures:frac=0.2,eval=mcf")
	failedB := run("failures:frac=0.2,eval=mcf")
	if !reflect.DeepEqual(failedA, failedB) {
		t.Fatalf("failure pattern not deterministic: %v vs %v", failedA, failedB)
	}
	for i, v := range failedA {
		if v > intact[i]*(1+0.2) { // losing links cannot raise λ beyond ε jitter
			t.Fatalf("run %d: throughput rose under failures: %v -> %v", i, intact[i], v)
		}
	}
}

// TestExpandTopology pins the expansion topology: steps new switches,
// original degrees preserved, servers attached to the new switches.
func TestExpandTopology(t *testing.T) {
	topo, err := ParseTopology("expand:n=20,deg=6,sps=2,steps=3")
	if err != nil {
		t.Fatal(err)
	}
	g, err := topo.Build(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 23 {
		t.Fatalf("expanded to %d switches, want 23", g.N())
	}
	for u := 0; u < g.N(); u++ {
		if g.Servers(u) != 2 {
			t.Fatalf("switch %d has %d servers, want 2", u, g.Servers(u))
		}
	}
	if !g.IsConnected() {
		t.Fatal("expanded graph disconnected")
	}
	// An expanded point runs end-to-end through the engine.
	e := &Engine{Parallel: 1}
	vals, err := e.MeasureRuns([]Point{{
		Topo: topo, Traffic: Permutation{}, Eval: MCF{}, Seed: 2, Runs: 1, Epsilon: 0.12,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals[0]) != 1 || vals[0][0] <= 0 {
		t.Fatalf("expanded point evaluation: %v", vals)
	}
}

// TestGridPoints pins the declarative grid materialization: axis product,
// parameter overriding, per-point seed derivation.
func TestGridPoints(t *testing.T) {
	g := Grid{
		Topo:    "rrg:n=20,sps=2",
		Traffic: "permutation",
		Eval:    "mcf",
		Sweep: []Axis{
			{Target: "topo", Param: "deg", Values: []string{"4", "6"}},
			{Target: "traffic", Param: "frac", Values: []string{"0.2", "0.8"}},
		},
		Runs: 2, Seed: 9,
	}
	g.Traffic = "chunky:frac=0.5"
	pts, err := g.Points()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	wantTopo := []string{"rrg:n=20,deg=4,sps=2", "rrg:n=20,deg=4,sps=2", "rrg:n=20,deg=6,sps=2", "rrg:n=20,deg=6,sps=2"}
	wantTraffic := []string{"chunky:frac=0.2", "chunky:frac=0.8", "chunky:frac=0.2", "chunky:frac=0.8"}
	for i, p := range pts {
		if got := p.Topo.Spec(); got != wantTopo[i] {
			t.Errorf("point %d topo %q, want %q", i, got, wantTopo[i])
		}
		if got := p.Traffic.Spec(); got != wantTraffic[i] {
			t.Errorf("point %d traffic %q, want %q", i, got, wantTraffic[i])
		}
		if p.Seed != 9+int64(i) {
			t.Errorf("point %d seed %d, want %d", i, p.Seed, 9+int64(i))
		}
		if len(p.Coords) != 2 {
			t.Errorf("point %d coords %v", i, p.Coords)
		}
	}
}

// TestParseGrid pins the -scenario line grammar.
func TestParseGrid(t *testing.T) {
	g, err := ParseGrid("topo=rrg:n=400,deg=10 traffic=permutation eval=mcf sweep=deg:4..16:4 runs=5 seed=3 eps=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Topo != "rrg:n=400,deg=10" || g.Traffic != "permutation" || g.Eval != "mcf" {
		t.Fatalf("specs wrong: %+v", g)
	}
	if g.Runs != 5 || g.Seed != 3 || g.Epsilon != 0.1 {
		t.Fatalf("controls wrong: %+v", g)
	}
	if len(g.Sweep) != 1 || !reflect.DeepEqual(g.Sweep[0].Values, []string{"4", "8", "12", "16"}) {
		t.Fatalf("sweep wrong: %+v", g.Sweep)
	}
	if _, err := ParseGrid("traffic=permutation"); err == nil {
		t.Error("grid without topo accepted")
	}
	if _, err := ParseGrid("topo=rrg bogus=1"); err == nil {
		t.Error("unknown grid key accepted")
	}
	if _, err := ParseGrid("topo=rrg sweep=deg:16..4"); err == nil {
		t.Error("inverted sweep range accepted")
	}
	// List sweeps and target prefixes.
	g, err = ParseGrid("topo=rrg traffic=chunky:frac=1 sweep=traffic.frac:0.2,0.6,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if g.Sweep[0].Target != "traffic" || g.Sweep[0].Param != "frac" || len(g.Sweep[0].Values) != 3 {
		t.Fatalf("prefixed sweep wrong: %+v", g.Sweep[0])
	}
}
