package scenario

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Axis is one sweep dimension of a Grid: a parameter of the topology,
// traffic, or evaluator spec swept over explicit values.
type Axis struct {
	// Target is "topo", "traffic", or "eval".
	Target string
	// Param is the spec parameter the axis overrides (e.g. "deg").
	Param string
	// Values are the swept values, as spec-parameter strings.
	Values []string
}

// Grid is a declarative scenario sweep: base specs for the three
// registries, any number of sweep axes (their cartesian product is the
// point grid), and run controls. Per-point seed derivation: point i (in
// axis-product order) uses Seed + i as its base seed, giving every point
// a distinct deterministic RNG stream. The seed is positional: appending
// values to the last axis leaves earlier points' streams (and cache
// keys) untouched, but inserting a value mid-axis re-seeds every later
// point.
type Grid struct {
	Topo    string
	Traffic string
	Eval    string
	Sweep   []Axis
	Runs    int
	Seed    int64
	// SeedFactor is the per-run seed derivation factor (see Point).
	SeedFactor int64
	Epsilon    float64
}

// GridPoint is one materialized point of a grid with its sweep
// coordinates.
type GridPoint struct {
	Point
	// Coords holds the axis values of this point, in axis order.
	Coords []string
}

// Points materializes the grid: the cartesian product of the sweep axes
// (base specs with each axis parameter overridden), in row-major axis
// order. A grid with no axes is a single point.
func (g Grid) Points() ([]GridPoint, error) {
	if g.Topo == "" {
		return nil, fmt.Errorf("scenario: grid needs a topo spec")
	}
	if g.Traffic == "" {
		g.Traffic = "none"
	}
	if g.Eval == "" {
		g.Eval = "mcf"
	}
	idx := make([]int, len(g.Sweep))
	for _, ax := range g.Sweep {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: sweep axis %s.%s has no values", ax.Target, ax.Param)
		}
	}
	var out []GridPoint
	for {
		topoSpec, trafficSpec, evalSpec := g.Topo, g.Traffic, g.Eval
		coords := make([]string, len(g.Sweep))
		for ai, ax := range g.Sweep {
			v := ax.Values[idx[ai]]
			coords[ai] = v
			var err error
			switch ax.Target {
			case "", "topo":
				topoSpec, err = overrideParam(topoSpec, ax.Param, v)
			case "traffic":
				trafficSpec, err = overrideParam(trafficSpec, ax.Param, v)
			case "eval":
				evalSpec, err = overrideParam(evalSpec, ax.Param, v)
			default:
				err = fmt.Errorf("scenario: unknown sweep target %q (want topo, traffic, or eval)", ax.Target)
			}
			if err != nil {
				return nil, err
			}
		}
		topo, err := ParseTopology(topoSpec)
		if err != nil {
			return nil, err
		}
		tr, err := ParseTraffic(trafficSpec)
		if err != nil {
			return nil, err
		}
		ev, err := ParseEvaluator(evalSpec)
		if err != nil {
			return nil, err
		}
		out = append(out, GridPoint{
			Point: Point{
				Topo: topo, Traffic: tr, Eval: ev,
				Seed: g.Seed + int64(len(out)), SeedFactor: g.SeedFactor,
				Runs: g.Runs, Epsilon: g.Epsilon,
			},
			Coords: coords,
		})
		// Advance the odometer.
		ai := len(idx) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(g.Sweep[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	return out, nil
}

// overrideParam sets (or replaces) one key=value in a spec string.
func overrideParam(spec, key, value string) (string, error) {
	kind, params, err := SplitSpec(spec)
	if err != nil {
		return "", err
	}
	params[key] = value
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kv := make([]string, 0, 2*len(keys))
	for _, k := range keys {
		kv = append(kv, k, params[k])
	}
	return FormatSpec(kind, kv...), nil
}

// Run materializes the grid and measures every point on the engine.
func (g Grid) Run(e *Engine) ([]GridPoint, []Stat, error) {
	gps, err := g.Points()
	if err != nil {
		return nil, nil, err
	}
	pts := make([]Point, len(gps))
	for i, gp := range gps {
		pts[i] = gp.Point
	}
	stats, err := e.Measure(pts)
	if err != nil {
		return nil, nil, err
	}
	return gps, stats, nil
}

// WriteTSV runs the grid and writes one row per point: the sweep
// coordinates followed by mean, std, min, max over runs. Infeasible
// (skipped) points are commented out.
func (g Grid) WriteTSV(e *Engine, w io.Writer) error {
	gps, stats, err := g.Run(e)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# scenario: topo=%s traffic=%s eval=%s runs=%d seed=%d eps=%g\n",
		g.Topo, g.Traffic, g.Eval, gps[0].runs(), g.Seed, g.Epsilon); err != nil {
		return err
	}
	cols := make([]string, 0, len(g.Sweep)+4)
	for _, ax := range g.Sweep {
		cols = append(cols, ax.Param)
	}
	cols = append(cols, "mean", "std", "min", "max")
	if _, err := fmt.Fprintf(w, "# %s\n", strings.Join(cols, "\t")); err != nil {
		return err
	}
	for i, gp := range gps {
		row := append([]string(nil), gp.Coords...)
		st := stats[i]
		if !st.OK {
			if _, err := fmt.Fprintf(w, "# %s\tinfeasible\n", strings.Join(row, "\t")); err != nil {
				return err
			}
			continue
		}
		row = append(row,
			FloatParam(st.Mean), FloatParam(st.Std), FloatParam(st.Min), FloatParam(st.Max))
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// ParseGrid parses the topobench -scenario line grammar:
//
//	topo=rrg:n=400,deg=10 traffic=permutation eval=mcf sweep=deg:4..16
//
// Fields are whitespace-separated key=value tokens. Recognized keys:
// topo, traffic, eval (registry specs), sweep (repeatable), runs, seed,
// eps. A sweep token is param:values where values is lo..hi[:step]
// (integer range) or a comma list (v1,v2,v3); prefix the parameter with
// "traffic." or "eval." to sweep those specs instead of the topology.
func ParseGrid(line string) (Grid, error) {
	g := Grid{}
	for _, tok := range strings.Fields(line) {
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return g, fmt.Errorf("scenario: bad token %q (want key=value)", tok)
		}
		switch key {
		case "topo":
			g.Topo = val
		case "traffic":
			g.Traffic = val
		case "eval":
			g.Eval = val
		case "sweep":
			ax, err := parseAxis(val)
			if err != nil {
				return g, err
			}
			g.Sweep = append(g.Sweep, ax)
		case "runs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return g, fmt.Errorf("scenario: bad runs %q", val)
			}
			g.Runs = n
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return g, fmt.Errorf("scenario: bad seed %q", val)
			}
			g.Seed = n
		case "eps":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return g, fmt.Errorf("scenario: bad eps %q", val)
			}
			g.Epsilon = f
		default:
			return g, fmt.Errorf("scenario: unknown grid key %q (want topo, traffic, eval, sweep, runs, seed, eps)", key)
		}
	}
	if g.Topo == "" {
		return g, fmt.Errorf("scenario: grid needs topo=<spec>")
	}
	return g, nil
}

// parseAxis parses "param:lo..hi[:step]" or "param:v1,v2,..." with an
// optional "traffic."/"eval." target prefix on the parameter.
func parseAxis(s string) (Axis, error) {
	param, vals, ok := strings.Cut(s, ":")
	if !ok || param == "" || vals == "" {
		return Axis{}, fmt.Errorf("scenario: bad sweep %q (want param:values)", s)
	}
	ax := Axis{Target: "topo", Param: param}
	if t, p, hasDot := strings.Cut(param, "."); hasDot && (t == "topo" || t == "traffic" || t == "eval") {
		ax.Target, ax.Param = t, p
	}
	if lo, hi, isRange := strings.Cut(vals, ".."); isRange {
		step := 1
		if hiPart, stepPart, hasStep := strings.Cut(hi, ":"); hasStep {
			hi = hiPart
			st, err := strconv.Atoi(stepPart)
			if err != nil || st <= 0 {
				return Axis{}, fmt.Errorf("scenario: bad sweep step in %q", s)
			}
			step = st
		}
		a, err1 := strconv.Atoi(lo)
		b, err2 := strconv.Atoi(hi)
		if err1 != nil || err2 != nil || b < a {
			return Axis{}, fmt.Errorf("scenario: bad sweep range %q (want lo..hi with lo <= hi)", vals)
		}
		for v := a; v <= b; v += step {
			ax.Values = append(ax.Values, strconv.Itoa(v))
		}
		return ax, nil
	}
	ax.Values = strings.Split(vals, ",")
	return ax, nil
}
