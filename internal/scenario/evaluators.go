package scenario

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/flowcheck"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/spectral"
	"repro/internal/trace"
)

// Built-in evaluator registry entries: the paper's throughput metric
// (mcf), topology-structure metrics (aspl, bisection via maxflow, cut),
// and the packet-level simulator.
func init() {
	RegisterEvaluator("mcf", func(p Params) (Evaluator, error) {
		return MCF{}, p.Reader().Err()
	})
	RegisterEvaluator("aspl", func(p Params) (Evaluator, error) {
		return ASPL{}, p.Reader().Err()
	})
	RegisterEvaluator("bisection", parseBisection)
	RegisterEvaluator("packet", parsePacket)
	RegisterEvaluator("cut", parseCut)
	RegisterEvaluator("failures", parseFailures)
}

// Detail is one run's full flow result, for the decomposition and bound
// figures that need more than the scalar.
type Detail struct {
	Value float64
	G     *graph.Graph
	Res   *mcf.Result
}

// DetailedEvaluator is implemented by evaluators that can also return the
// full per-run result (currently MCF).
type DetailedEvaluator interface {
	Evaluator
	EvaluateDetailed(ctx *EvalContext) (Detail, error)
}

// MCF measures λ, the maximum concurrent flow throughput of §3, with the
// point's ε. Disconnected commodities report zero throughput rather than
// failing, exactly as the sweeps always treated them.
type MCF struct{}

func (MCF) Spec() string { return "mcf" }

func (e MCF) Evaluate(ctx *EvalContext) (float64, error) {
	d, err := e.EvaluateDetailed(ctx)
	return d.Value, err
}

func (MCF) EvaluateDetailed(ctx *EvalContext) (Detail, error) {
	opt := mcf.Options{Epsilon: ctx.Epsilon, Cancel: ctx.Cancel}
	w := ctx.Warm
	if w != nil && w.ParentLens != nil {
		// Seed the solve from the parent's witness mapped onto this run's
		// graph. A failed mapping yields nil and the solve runs cold.
		opt.WarmLens = MapArcLens(w.ParentG, ctx.G, w.ParentLens)
	}
	sp := trace.StartSpan(ctx.Ctx, "mcf.solve")
	res, err := mcf.Solve(ctx.G, ctx.TM.Flows, opt)
	solveSpan(sp, res, opt.WarmLens != nil)
	if errors.Is(err, mcf.ErrUnreachable) {
		// A disconnected instance (e.g. zero cross-cluster links) has zero
		// concurrent throughput; report it rather than failing the sweep.
		return Detail{G: ctx.G, Res: &mcf.Result{
			ArcFlow: make([]float64, ctx.G.NumArcs()),
			ArcUtil: make([]float64, ctx.G.NumArcs()),
		}}, nil
	}
	if err != nil {
		return Detail{}, err
	}
	if res.WarmStarted {
		// The Fleischer (1+ε) guarantee is re-certified on every
		// warm-started solve rather than assumed: flowcheck checks capacity
		// feasibility and, against the independent-Dijkstra dual bound of
		// the exported witness, the ε-optimality gap. A solve that fails
		// certification is re-run cold — warm starts may cost a wasted
		// solve, never wrong data.
		csp := trace.StartSpan(ctx.Ctx, "warm.certify")
		rep, verr := flowcheck.Verify(ctx.G, ctx.TM.Flows, res, flowcheck.Options{})
		if verr != nil || !rep.OK() {
			csp.Attr("outcome", "fallback")
			csp.End()
			w.CertFallback = true
			opt.WarmLens = nil
			fsp := trace.StartSpan(ctx.Ctx, "mcf.solve")
			res, err = mcf.Solve(ctx.G, ctx.TM.Flows, opt)
			solveSpan(fsp, res, false)
			if err != nil {
				return Detail{}, err
			}
		} else {
			csp.Attr("outcome", "certified")
			csp.End()
			w.WarmStarted = true
		}
	}
	if w != nil {
		// Export this solve's witness so the engine can store it for the
		// point's future children (cold solves seed children too).
		w.Witness = res.DualLens
	}
	return Detail{Value: res.Throughput, G: ctx.G, Res: res}, nil
}

// solveSpan closes a solver span with the solve's phase telemetry: the
// prebuild/route wall-clock split from Result.Timing, the tree
// build/repair and bucket-vs-heap counters, and how the solve was
// seeded. Inert (free) when the span is not live.
func solveSpan(sp trace.Span, res *mcf.Result, seeded bool) {
	if !sp.OK() {
		return
	}
	if res != nil {
		sp.AttrInt("phases", int64(res.Phases))
		sp.AttrInt("prebuild_ns", res.Timing.PrebuildNanos)
		sp.AttrInt("route_ns", res.Timing.RouteNanos)
		sp.AttrInt("solve_ns", res.Timing.SolveNanos)
		sp.AttrInt("tree_builds", int64(res.TreeBuilds))
		sp.AttrInt("tree_repairs", int64(res.TreeRepairs))
		sp.AttrInt("tree_prebuilds", int64(res.TreePrebuilds))
		sp.AttrInt("bucket_builds", int64(res.BucketBuilds))
		if res.WarmStarted {
			sp.Attr("seed", "warm")
		} else if seeded {
			sp.Attr("seed", "warm-rejected")
		} else {
			sp.Attr("seed", "cold")
		}
	}
	sp.End()
}

// ASPL measures the average shortest path length of the topology (no
// traffic needed).
type ASPL struct{}

func (ASPL) Spec() string { return "aspl" }

func (ASPL) Evaluate(ctx *EvalContext) (float64, error) {
	v, _ := ctx.G.ASPL()
	return v, nil
}

// Bisection estimates the bisection bandwidth by sampled balanced min-cuts
// (maxflow.BisectionBandwidth). Trials are deterministic, so the value is
// a pure function of the topology.
type Bisection struct{ Trials int }

func (e Bisection) Spec() string { return FormatSpec("bisection", "trials", IntParam(e.Trials)) }

func (e Bisection) Evaluate(ctx *EvalContext) (float64, error) {
	return maxflow.BisectionBandwidth(ctx.G, e.Trials), nil
}

func parseBisection(p Params) (Evaluator, error) {
	r := p.Reader()
	e := Bisection{Trials: r.Int("trials", 4)}
	return e, r.Err()
}

// Packet runs the discrete-event MPTCP simulator on the workload (demand d
// expands to d parallel transport flows, matching server granularity) and
// reports mean per-flow goodput. Every simulation's per-node packet
// conservation is certified by flowcheck.VerifyPacket before the value is
// accepted.
type Packet struct {
	Subflows        int
	Warmup, Measure float64
}

func (e Packet) Spec() string {
	return FormatSpec("packet",
		"subflows", IntParam(e.Subflows),
		"warmup", FloatParam(e.Warmup), "measure", FloatParam(e.Measure))
}

func (e Packet) Evaluate(ctx *EvalContext) (float64, error) {
	var specs []packet.FlowSpec
	for _, f := range ctx.TM.Flows {
		for k := 0; k < int(f.Demand); k++ {
			specs = append(specs, packet.FlowSpec{Src: f.Src, Dst: f.Dst})
		}
	}
	res, err := packet.Simulate(ctx.G, specs, packet.Config{
		SubflowsPerFlow: e.Subflows,
		Warmup:          e.Warmup,
		Measure:         e.Measure,
	}, ctx.Rng)
	if err != nil {
		return 0, err
	}
	if err := flowcheck.VerifyPacket(ctx.G, res); err != nil {
		return 0, fmt.Errorf("scenario: packet conservation: %w", err)
	}
	return res.MeanGoodput, nil
}

func parsePacket(p Params) (Evaluator, error) {
	r := p.Reader()
	e := Packet{Subflows: r.Int("subflows", 8), Warmup: r.Float("warmup", 60), Measure: r.Float("measure", 240)}
	return e, r.Err()
}

// Cut measures the non-uniform sparsest cut for the K_{V1,V2} demand over
// the (first n1 switches | rest) partition — the Theorem 2 comparison.
type Cut struct{ N1 int }

func (e Cut) Spec() string { return FormatSpec("cut", "n1", IntParam(e.N1)) }

func (e Cut) Evaluate(ctx *EvalContext) (float64, error) {
	inV1 := make([]bool, ctx.G.N())
	for i := 0; i < e.N1 && i < ctx.G.N(); i++ {
		inV1[i] = true
	}
	return spectral.SparsestCutBipartite(ctx.G, inV1), nil
}

func parseCut(p Params) (Evaluator, error) {
	r := p.Reader()
	e := Cut{N1: r.Int("n1", 12)}
	return e, r.Err()
}

// Failures wraps any registered evaluator with the random link-failure
// model of the resilience sweeps: each run fails frac of the links
// (graph.FailRandomLinks, drawn from the run's RNG stream right after
// topology and traffic, so the failure pattern is a deterministic
// function of the point like everything else) and evaluates the inner
// metric on the degraded topology against the intact topology's traffic
// matrix — exactly the FailureSweep semantics. Sweeping eval.frac yields
// a graceful-degradation curve for any topology × traffic × metric
// combination.
//
// The inner evaluator spec is embedded with '/' in place of ':' and ';'
// in place of ',' (the spec grammar reserves those), e.g.
//
//	failures:frac=0.1,eval=mcf
//	failures:frac=0.15,eval=bisection/trials=8
type Failures struct {
	Frac  float64
	Inner Evaluator
}

func (e Failures) Spec() string {
	return FormatSpec("failures",
		"frac", FloatParam(e.Frac), "eval", embedSpec(e.Inner.Spec()))
}

func (e Failures) Evaluate(ctx *EvalContext) (float64, error) {
	fg, err := ctx.G.FailRandomLinks(ctx.Rng, e.Frac)
	if err != nil {
		return 0, err
	}
	inner := *ctx
	inner.G = fg
	return e.Inner.Evaluate(&inner)
}

// ParentEvaluator makes a failure rung delta-shaped: its parent is the
// same evaluation at frac=0, which degrades nothing (FailRandomLinks at
// zero is a clone, consuming no RNG), so the parent's solved graph is
// arc-identical to the child run's intact built graph and its witness
// maps onto the failed graph by surviving-link matching.
func (e Failures) ParentEvaluator() (Evaluator, bool) {
	if e.Frac <= 0 {
		return nil, false
	}
	return Failures{Frac: 0, Inner: e.Inner}, true
}

// embedSpec/unembedSpec translate a nested evaluator spec into a form a
// single spec parameter value can carry.
func embedSpec(spec string) string {
	return strings.NewReplacer(":", "/", ",", ";").Replace(spec)
}

func unembedSpec(v string) string {
	return strings.NewReplacer("/", ":", ";", ",").Replace(v)
}

func parseFailures(p Params) (Evaluator, error) {
	r := p.Reader()
	e := Failures{Frac: r.Float("frac", 0.1)}
	innerSpec := unembedSpec(r.String("eval", "mcf"))
	if err := r.Err(); err != nil {
		return nil, err
	}
	if kind, _, err := SplitSpec(innerSpec); err != nil {
		return nil, err
	} else if kind == "failures" {
		return nil, fmt.Errorf("scenario: failures evaluator cannot nest itself")
	}
	inner, err := ParseEvaluator(innerSpec)
	if err != nil {
		return nil, fmt.Errorf("scenario: failures inner evaluator: %w", err)
	}
	e.Inner = inner
	return e, nil
}
