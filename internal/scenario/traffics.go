package scenario

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// Built-in traffic registry entries, wrapping internal/traffic. All
// server-level generators derive placements via traffic.HostsOf, exactly
// as core.Evaluation always did, so RNG streams are unchanged.
func init() {
	RegisterTraffic("permutation", func(p Params) (Traffic, error) {
		return Permutation{}, p.Reader().Err()
	})
	RegisterTraffic("all-to-all", func(p Params) (Traffic, error) {
		return AllToAll{}, p.Reader().Err()
	})
	RegisterTraffic("chunky", parseChunky)
	RegisterTraffic("hotspot", parseHotspot)
	RegisterTraffic("bipartite", parseBipartite)
	RegisterTraffic("none", func(p Params) (Traffic, error) {
		return None{}, p.Reader().Err()
	})
}

// Permutation is random permutation traffic among servers (the paper's
// default workload, §3).
type Permutation struct{}

func (Permutation) Spec() string { return "permutation" }

func (Permutation) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) {
	return traffic.Permutation(rng, traffic.HostsOf(g)), nil
}

// AllToAll is all-to-all traffic among servers.
type AllToAll struct{}

func (AllToAll) Spec() string { return "all-to-all" }

func (AllToAll) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) {
	return traffic.AllToAll(traffic.HostsOf(g)), nil
}

// Chunky is the §8.1 x% Chunky pattern.
type Chunky struct{ Frac float64 }

func (t Chunky) Spec() string { return FormatSpec("chunky", "frac", FloatParam(t.Frac)) }

func (t Chunky) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) {
	return traffic.Chunky(rng, traffic.HostsOf(g), t.Frac)
}

func parseChunky(p Params) (Traffic, error) {
	r := p.Reader()
	t := Chunky{Frac: r.Float("frac", 1)}
	return t, r.Err()
}

// Hotspot sends a fraction of all servers to one hot destination while the
// rest run a permutation — a workload present in internal/traffic that no
// paper figure exercises; the scenario registry makes it reachable.
type Hotspot struct{ Frac float64 }

func (t Hotspot) Spec() string { return FormatSpec("hotspot", "frac", FloatParam(t.Frac)) }

func (t Hotspot) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) {
	return traffic.Hotspot(rng, traffic.HostsOf(g), t.Frac)
}

func parseHotspot(p Params) (Traffic, error) {
	r := p.Reader()
	t := Hotspot{Frac: r.Float("frac", 0.25)}
	return t, r.Err()
}

// Bipartite is the Theorem 2 demand K_{V1,V2}: one unit between every
// ordered pair crossing the (first n1 switches | rest) partition,
// regardless of server placement.
type Bipartite struct{ N1 int }

func (t Bipartite) Spec() string { return FormatSpec("bipartite", "n1", IntParam(t.N1)) }

func (t Bipartite) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) {
	m := &traffic.Matrix{}
	for u := 0; u < t.N1; u++ {
		for v := t.N1; v < g.N(); v++ {
			m.Flows = append(m.Flows,
				traffic.Flow{Src: u, Dst: v, Demand: 1},
				traffic.Flow{Src: v, Dst: u, Demand: 1},
			)
		}
	}
	m.ServerFlows = len(m.Flows)
	return m, nil
}

func parseBipartite(p Params) (Traffic, error) {
	r := p.Reader()
	t := Bipartite{N1: r.Int("n1", 12)}
	return t, r.Err()
}

// None is the empty workload, for evaluators that measure the topology
// itself (aspl, bisection).
type None struct{}

func (None) Spec() string { return "none" }

func (None) Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error) { return nil, nil }
