// Package scenario is the unified scenario engine: it turns the repo from
// a fixed set of figure regenerators into a general topology-evaluation
// system. A scenario is a (Topology, Traffic, Evaluator) triple; each side
// comes from a string-keyed registry, so any combination — including ones
// no paper figure exercises — can be described by a spec string, swept over
// a declarative Grid, executed on the internal/runner pool with the
// byte-identical serial/parallel guarantee, and memoized in a
// content-addressed solve cache.
//
// # Spec grammar
//
// Every registry entry is addressed as
//
//	kind[:key=value,key=value,...]
//
// e.g. "rrg:n=40,deg=10,sps=5", "permutation", "chunky:frac=0.6",
// "packet:subflows=4,warmup=40,measure=160". Unknown kinds and unknown or
// malformed parameters are errors. Parsing is canonicalizing: the Spec()
// of a parsed scenario prints every parameter (defaults resolved) in a
// fixed order, so Parse(x).Spec() is a fixed point — the registry
// round-trip property the tests pin — and equal specs mean equal build
// behavior.
//
// A full scenario line, as consumed by `topobench -scenario`, combines the
// three registries with sweep axes and run controls:
//
//	topo=rrg:n=400,deg=10 traffic=permutation eval=mcf sweep=deg:4..16
//
// (see Grid and ParseGrid).
//
// # Cache key invariant
//
// The solve cache (Cache) is content-addressed: a point's key is the hash
// of (topology spec, traffic spec, evaluator spec, ε, seed, seed factor,
// run count) — exactly the inputs that determine the evaluation. Every
// Topology/Traffic/Evaluator implementation MUST encode all build inputs
// in its Spec(): two instances with equal specs must consume their RNG
// streams identically and produce identical results. Under that invariant
// a cache hit returns the same bytes a cold solve would, so figures and
// sweeps sharing instances never re-solve and cached output is
// indistinguishable from fresh output (enforced by the cache tests).
//
// # Adding a new topology, traffic, or evaluator
//
// Implement the interface, give it a canonical Spec(), and register a
// parser in an init():
//
//	scenario.RegisterTopology("mytopo", func(p scenario.Params) (scenario.Topology, error) {
//	    r := p.Reader()
//	    n := r.Int("n", 40)
//	    if err := r.Err(); err != nil { return nil, err }
//	    return &myTopo{n: n}, nil
//	})
//
// The entry is then immediately usable from Grid specs, the experiment
// layer, and topobench -scenario.
package scenario

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// Topology builds one network instance. Build must keep all randomness on
// the supplied RNG and must consume the stream identically for equal
// Spec() strings (the cache key invariant).
type Topology interface {
	// Spec returns the canonical registry spec, e.g. "rrg:n=40,deg=10,sps=5".
	Spec() string
	Build(rng *rand.Rand) (*graph.Graph, error)
}

// Traffic generates a workload for a built topology.
type Traffic interface {
	Spec() string
	// Matrix derives the switch-level commodities. Implementations that
	// operate on servers derive placements via traffic.HostsOf(g).
	Matrix(rng *rand.Rand, g *graph.Graph) (*traffic.Matrix, error)
}

// Evaluator measures one scalar of a (topology, traffic) instance.
type Evaluator interface {
	Spec() string
	Evaluate(ctx *EvalContext) (float64, error)
}

// EvalContext is the per-run input handed to an Evaluator.
type EvalContext struct {
	G *graph.Graph
	// TM is nil when the point's traffic is "none".
	TM *traffic.Matrix
	// Rng continues the run's RNG stream (topology and traffic draws
	// already consumed), for evaluators with internal randomness (packet).
	Rng *rand.Rand
	// Epsilon is the flow-solver approximation parameter of the point.
	Epsilon float64
	// Cancel, when non-nil, is closed to abort the evaluation (typically a
	// request context's Done channel threaded through the engine).
	// Long-running evaluators should poll it at natural checkpoints and
	// return the cancellation as an error; cancellation may abort a run,
	// never change a completed run's value.
	Cancel <-chan struct{}
	// Warm, when non-nil, is the warm-start exchange between the engine
	// and delta-aware evaluators (see WarmExchange). Wrapper evaluators
	// copy EvalContext by value, so the pointer travels into nested
	// contexts and the innermost solve reports back through it.
	Warm *WarmExchange
	// Ctx is the run's request context, carried for observability only:
	// evaluators use it to record trace spans (internal/trace) around
	// their solves. It may be nil; cancellation still travels via Cancel,
	// never via Ctx, so evaluator behavior cannot depend on it.
	Ctx context.Context
}

// ---- registries ----

var (
	topoRegistry    = map[string]func(Params) (Topology, error){}
	trafficRegistry = map[string]func(Params) (Traffic, error){}
	evalRegistry    = map[string]func(Params) (Evaluator, error){}
)

// RegisterTopology adds a topology kind to the registry. Registering a
// duplicate kind panics: registries are wired in init() and a collision is
// a programming error.
func RegisterTopology(kind string, parse func(Params) (Topology, error)) {
	if _, dup := topoRegistry[kind]; dup {
		panic("scenario: duplicate topology kind " + kind)
	}
	topoRegistry[kind] = parse
}

// RegisterTraffic adds a traffic kind to the registry.
func RegisterTraffic(kind string, parse func(Params) (Traffic, error)) {
	if _, dup := trafficRegistry[kind]; dup {
		panic("scenario: duplicate traffic kind " + kind)
	}
	trafficRegistry[kind] = parse
}

// RegisterEvaluator adds an evaluator kind to the registry.
func RegisterEvaluator(kind string, parse func(Params) (Evaluator, error)) {
	if _, dup := evalRegistry[kind]; dup {
		panic("scenario: duplicate evaluator kind " + kind)
	}
	evalRegistry[kind] = parse
}

// ParseTopology resolves a topology spec string against the registry.
func ParseTopology(spec string) (Topology, error) {
	kind, params, err := SplitSpec(spec)
	if err != nil {
		return nil, err
	}
	parse, ok := topoRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown topology %q (have %s)", kind, strings.Join(TopologyKinds(), ", "))
	}
	return parse(params)
}

// ParseTraffic resolves a traffic spec string against the registry.
func ParseTraffic(spec string) (Traffic, error) {
	kind, params, err := SplitSpec(spec)
	if err != nil {
		return nil, err
	}
	parse, ok := trafficRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown traffic %q (have %s)", kind, strings.Join(TrafficKinds(), ", "))
	}
	return parse(params)
}

// ParseEvaluator resolves an evaluator spec string against the registry.
func ParseEvaluator(spec string) (Evaluator, error) {
	kind, params, err := SplitSpec(spec)
	if err != nil {
		return nil, err
	}
	parse, ok := evalRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("scenario: unknown evaluator %q (have %s)", kind, strings.Join(EvaluatorKinds(), ", "))
	}
	return parse(params)
}

// TopologyKinds lists the registered topology kinds, sorted.
func TopologyKinds() []string { return sortedKeys(topoRegistry) }

// TrafficKinds lists the registered traffic kinds, sorted.
func TrafficKinds() []string { return sortedKeys(trafficRegistry) }

// EvaluatorKinds lists the registered evaluator kinds, sorted.
func EvaluatorKinds() []string { return sortedKeys(evalRegistry) }

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---- spec strings and parameters ----

// Params holds the key=value parameters of one spec.
type Params map[string]string

// SplitSpec splits "kind:k=v,k=v" into its kind and parameters.
func SplitSpec(spec string) (string, Params, error) {
	spec = strings.TrimSpace(spec)
	kind, rest, has := strings.Cut(spec, ":")
	if kind == "" {
		return "", nil, fmt.Errorf("scenario: empty spec %q", spec)
	}
	p := Params{}
	if has {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return "", nil, fmt.Errorf("scenario: bad parameter %q in spec %q (want key=value)", kv, spec)
			}
			if _, dup := p[k]; dup {
				return "", nil, fmt.Errorf("scenario: duplicate parameter %q in spec %q", k, spec)
			}
			p[k] = v
		}
	}
	return kind, p, nil
}

// FormatSpec assembles a canonical spec string: the kind plus every
// key=value pair in the given order. Use FloatParam for float values so
// equal numbers always print identically.
func FormatSpec(kind string, kv ...string) string {
	if len(kv)%2 != 0 {
		panic("scenario: FormatSpec needs key/value pairs")
	}
	if len(kv) == 0 {
		return kind
	}
	var b strings.Builder
	b.WriteString(kind)
	for i := 0; i < len(kv); i += 2 {
		if i == 0 {
			b.WriteByte(':')
		} else {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteByte('=')
		b.WriteString(kv[i+1])
	}
	return b.String()
}

// FloatParam formats a float for a canonical spec (shortest round-trip
// form, so 0.6 prints as "0.6" and 2 as "2").
func FloatParam(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// IntParam formats an int for a canonical spec.
func IntParam(v int) string { return strconv.Itoa(v) }

// Reader returns a consuming reader over the params: typed accessors with
// defaults, error accumulation, and unknown-key detection via Err.
func (p Params) Reader() *ParamReader {
	return &ParamReader{params: p, used: map[string]bool{}}
}

// ParamReader reads typed parameters out of a Params map. All accessors
// record malformed values; Err additionally rejects parameters that were
// never read (catching typos like "dge=10").
type ParamReader struct {
	params Params
	used   map[string]bool
	errs   []string
}

func (r *ParamReader) lookup(key string) (string, bool) {
	r.used[key] = true
	v, ok := r.params[key]
	return v, ok
}

// String reads a raw string parameter, with a default when absent.
func (r *ParamReader) String(key, def string) string {
	s, ok := r.lookup(key)
	if !ok {
		return def
	}
	return s
}

// Int reads an integer parameter, with a default when absent.
func (r *ParamReader) Int(key string, def int) int {
	s, ok := r.lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		r.errs = append(r.errs, fmt.Sprintf("%s=%q is not an integer", key, s))
		return def
	}
	return v
}

// Int64 reads an int64 parameter, with a default when absent.
func (r *ParamReader) Int64(key string, def int64) int64 {
	s, ok := r.lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		r.errs = append(r.errs, fmt.Sprintf("%s=%q is not an integer", key, s))
		return def
	}
	return v
}

// Float reads a float parameter, with a default when absent.
func (r *ParamReader) Float(key string, def float64) float64 {
	s, ok := r.lookup(key)
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		r.errs = append(r.errs, fmt.Sprintf("%s=%q is not a number", key, s))
		return def
	}
	return v
}

// Err reports accumulated value errors plus any parameters never read.
func (r *ParamReader) Err() error {
	var unknown []string
	for k := range r.params {
		if !r.used[k] {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	errs := r.errs
	if len(unknown) > 0 {
		errs = append(errs, "unknown parameter(s) "+strings.Join(unknown, ", "))
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario: %s", strings.Join(errs, "; "))
}
