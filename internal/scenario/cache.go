package scenario

import (
	"context"
	"crypto/sha256"
	"sync"

	"repro/internal/trace"
)

// Backend is an optional second, durable tier beneath the in-memory
// cache — in practice internal/store's disk-backed result store, but any
// key-value layer honoring the contract plugs in. Load returns the values
// stored under a point key (false on any miss, including corruption —
// a backend must never surface wrong data, only absence); Save publishes
// them. Both must be safe for concurrent use. Under the cache key
// invariant, whatever a backend returns for a key is exactly what a cold
// solve of that key would compute, so tiering changes latency, never
// results.
type Backend interface {
	Load(key string) ([]float64, bool)
	Save(key string, vals []float64) error
}

// Cache is the content-addressed solve cache. Entries are keyed by the
// SHA-256 of a Point's Key() — (topology spec, traffic spec, evaluator
// spec, ε, seed, seed factor, runs) — which under the cache key invariant
// (see the package comment) fully determines the run values. A hit
// therefore returns exactly what a cold solve would compute, so enabling
// the cache can never change results, only skip work; the cache tests
// enforce reflect.DeepEqual between cached and cold values.
//
// Lookup is tiered: the in-memory map first, then the optional Backend
// (a disk store persisting results across processes). A backend hit is
// promoted into memory; a put writes through to both tiers. Backend save
// errors (disk full, torn permissions) are counted, not raised — the
// solve already has its value, durability is best-effort.
//
// The cache is safe for concurrent use. Values are stored and returned as
// private copies, so callers can neither corrupt an entry nor observe a
// later mutation.
type Cache struct {
	mu        sync.Mutex
	entries   map[[sha256.Size]byte][]float64
	backend   Backend
	hits      int64
	misses    int64
	storeHits int64
	storeErrs int64
}

// CacheStats snapshots a cache's lookup counters: Hits served from
// memory, StoreHits served from the backend (and promoted), Misses served
// from neither; StoreErrs counts backend save failures, Entries the
// resident in-memory entries.
type CacheStats struct {
	Hits, Misses         int64
	StoreHits, StoreErrs int64
	Entries              int
}

// NewCache returns an empty in-memory solve cache.
func NewCache() *Cache {
	return &Cache{entries: map[[sha256.Size]byte][]float64{}}
}

// Default is the process-wide cache shared by the experiment layer: every
// figure and sweep run through it, so instances shared across figures (or
// across probes of one adaptive search) solve once per process. topobench
// attaches a disk store beneath it when -cache-dir is set, making "once
// per process" into "once, ever".
var Default = NewCache()

// SetBackend attaches (or, with nil, detaches) the durable tier. Safe to
// call concurrently with lookups; typically wired once at startup.
func (c *Cache) SetBackend(b Backend) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.backend = b
}

// Get returns the run values stored under key, if any — from memory, or
// failing that from the backend (promoting the entry into memory).
func (c *Cache) Get(key string) ([]float64, bool) {
	return c.GetCtx(context.Background(), key)
}

// CtxBackend is the optional backend extension for context-aware loads:
// backends that can propagate cancellation or trace context downstream
// (the store's Tiered, the remote store client) implement LoadCtx;
// GetCtx uses it when present and falls back to the plain Load. The
// contract is Load's — ok=false on any miss, never wrong data.
type CtxBackend interface {
	LoadCtx(ctx context.Context, key string) ([]float64, bool)
}

// GetCtx is Get carrying the caller's context. When the context holds a
// sampled trace span, the lookup records tier spans (memory, then the
// backend) with hit/miss outcomes; when it does not, the span calls are
// inert and GetCtx costs the same as Get.
func (c *Cache) GetCtx(ctx context.Context, key string) ([]float64, bool) {
	h := sha256.Sum256([]byte(key))
	c.mu.Lock()
	vals, ok := c.entries[h]
	backend := c.backend
	if ok {
		c.hits++
		out := make([]float64, len(vals))
		copy(out, vals)
		c.mu.Unlock()
		if sp := trace.StartSpan(ctx, "tier.memory"); sp.OK() {
			sp.Attr("outcome", "hit")
			sp.End()
		}
		return out, true
	}
	c.mu.Unlock()

	if backend != nil {
		// The backend read happens outside the cache lock: disk latency must
		// not serialize unrelated lookups.
		sp := trace.StartSpan(ctx, "tier.store")
		vals, ok := c.loadBackend(ctx, backend, key)
		if ok {
			sp.Attr("outcome", "hit")
			sp.End()
			cp := make([]float64, len(vals))
			copy(cp, vals)
			c.mu.Lock()
			c.entries[h] = cp
			c.storeHits++
			c.mu.Unlock()
			out := make([]float64, len(vals))
			copy(out, vals)
			return out, true
		}
		sp.Attr("outcome", "miss")
		sp.End()
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
	return nil, false
}

// loadBackend dispatches one backend read, via LoadCtx when the backend
// is context-aware.
func (c *Cache) loadBackend(ctx context.Context, backend Backend, key string) ([]float64, bool) {
	if cb, ok := backend.(CtxBackend); ok {
		return cb.LoadCtx(ctx, key)
	}
	return backend.Load(key)
}

// BackendAbandoner is the optional backend extension for abandoned
// solves: a backend that coordinates misses through claim leases (the
// store's Tiered) implements Abandon to release the lease on a key whose
// solve produced nothing to Put — errored, canceled, or infeasible.
type BackendAbandoner interface {
	Abandon(key string)
}

// Abandon tells the backend, if it cares, that the solve for key ended
// without a value. For plain backends this is a no-op; for claim-holding
// tiers it releases the lease immediately instead of parking fleet peers
// until it expires.
func (c *Cache) Abandon(key string) {
	c.mu.Lock()
	backend := c.backend
	c.mu.Unlock()
	if a, ok := backend.(BackendAbandoner); ok {
		a.Abandon(key)
	}
}

// Put stores the run values under key, writing through to the backend
// when one is attached.
func (c *Cache) Put(key string, vals []float64) {
	c.PutLinked(key, vals, "")
}

// LinkedBackend is the optional backend extension for parent-linked
// publication (structurally store.LinkedSaver): backends that can record
// which entry's result warm-started this one implement it. PutLinked
// falls back to a plain Save — losing the link, never the values — when
// the backend does not.
type LinkedBackend interface {
	SaveLinked(key string, vals []float64, parentKey string) error
}

// PutLinked is Put carrying the parent point key whose result
// warm-started this solve (""  for none). The link is durable provenance
// and observability; lookups never depend on it.
func (c *Cache) PutLinked(key string, vals []float64, parentKey string) {
	h := sha256.Sum256([]byte(key))
	cp := make([]float64, len(vals))
	copy(cp, vals)
	c.mu.Lock()
	c.entries[h] = cp
	backend := c.backend
	c.mu.Unlock()
	if backend == nil {
		return
	}
	var err error
	if lb, ok := backend.(LinkedBackend); ok && parentKey != "" {
		err = lb.SaveLinked(key, vals, parentKey)
	} else {
		err = backend.Save(key, vals)
	}
	if err != nil {
		c.mu.Lock()
		c.storeErrs++
		c.mu.Unlock()
	}
}

// BackendPinner is the optional backend extension for eviction pinning
// (structurally store.Store.PinKey/store.Tiered.PinKey): Pin uses it to
// keep a parent entry resident for the duration of an in-flight warm
// start, so a concurrent Prune can never evict the entry a delta solve
// is depending on.
type BackendPinner interface {
	PinKey(key string) func()
}

// Pin pins key's backend entry against eviction, returning an idempotent
// release. A backend without pinning (or no backend) returns a no-op.
func (c *Cache) Pin(key string) func() {
	c.mu.Lock()
	backend := c.backend
	c.mu.Unlock()
	if p, ok := backend.(BackendPinner); ok {
		return p.PinKey(key)
	}
	return func() {}
}

// Stats reports the cache's lookup counters and resident entries.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		StoreHits: c.storeHits, StoreErrs: c.storeErrs,
		Entries: len(c.entries),
	}
}

// Reset drops every in-memory entry and zeroes the counters. The backend,
// if any, keeps its entries — durable state outlives process resets.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[[sha256.Size]byte][]float64{}
	c.hits, c.misses, c.storeHits, c.storeErrs = 0, 0, 0, 0
}
