package scenario

import (
	"crypto/sha256"
	"sync"
)

// Cache is the content-addressed in-memory solve cache. Entries are keyed
// by the SHA-256 of a Point's Key() — (topology spec, traffic spec,
// evaluator spec, ε, seed, seed factor, runs) — which under the cache key
// invariant (see the package comment) fully determines the run values. A
// hit therefore returns exactly what a cold solve would compute, so
// enabling the cache can never change results, only skip work; the cache
// tests enforce reflect.DeepEqual between cached and cold values.
//
// The cache is safe for concurrent use. Values are stored and returned as
// private copies, so callers can neither corrupt an entry nor observe a
// later mutation.
type Cache struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte][]float64
	hits    int64
	misses  int64
}

// NewCache returns an empty solve cache.
func NewCache() *Cache {
	return &Cache{entries: map[[sha256.Size]byte][]float64{}}
}

// Default is the process-wide cache shared by the experiment layer: every
// figure and sweep run through it, so instances shared across figures (or
// across probes of one adaptive search) solve once per process.
var Default = NewCache()

// Get returns the run values stored under key, if any.
func (c *Cache) Get(key string) ([]float64, bool) {
	h := sha256.Sum256([]byte(key))
	c.mu.Lock()
	defer c.mu.Unlock()
	vals, ok := c.entries[h]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	out := make([]float64, len(vals))
	copy(out, vals)
	return out, true
}

// Put stores the run values under key.
func (c *Cache) Put(key string, vals []float64) {
	h := sha256.Sum256([]byte(key))
	cp := make([]float64, len(vals))
	copy(cp, vals)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[h] = cp
}

// Stats reports lookup hits, misses, and resident entries.
func (c *Cache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

// Reset drops every entry and zeroes the counters.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[[sha256.Size]byte][]float64{}
	c.hits, c.misses = 0, 0
}
