package scenario

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/store"
)

// testPoints is a small mixed grid spanning the registries: RRG × mcf,
// hetero (with one infeasible sweep point) × mcf, twocluster × cut.
func testPoints() []Point {
	mustTopo := func(spec string) Topology {
		t, err := ParseTopology(spec)
		if err != nil {
			panic(err)
		}
		return t
	}
	return []Point{
		{Topo: mustTopo("rrg:n=20,deg=6,sps=2"), Traffic: Permutation{}, Eval: MCF{},
			Seed: 5, Runs: 2, Epsilon: 0.12},
		{Topo: mustTopo("hetero:nl=6,ns=8,pl=10,ps=6,servers=30,ratio=1"), Traffic: Permutation{}, Eval: MCF{},
			Seed: 6, Runs: 2, Epsilon: 0.12},
		// ratio=3 would put 90 of 30 servers at large switches: infeasible.
		{Topo: mustTopo("hetero:nl=6,ns=8,pl=10,ps=6,servers=30,ratio=3"), Traffic: Permutation{}, Eval: MCF{},
			Seed: 7, Runs: 2, Epsilon: 0.12},
		{Topo: mustTopo("twocluster:n=8,deg=4,cross=6"), Traffic: Bipartite{N1: 8}, Eval: Cut{N1: 8},
			Seed: 8, Runs: 2},
	}
}

// storeBacked returns a cache tiered onto a fresh disk store in a temp
// dir — the configuration topobench -cache-dir wires up.
func storeBacked(t *testing.T, dir string) *Cache {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetBackend(st)
	return c
}

// TestScenarioDeterministicAcrossWorkers is the engine's mirror of the
// solver determinism contract: the same grid measured at 1, 2, GOMAXPROCS,
// and 5 workers — and with no cache, the in-memory cache, or the
// store-backed tiered cache — must produce reflect.DeepEqual results.
// Every run's RNG derives from (seed, run) and reductions are serial in
// index order, so scheduling cannot leak in; the cache tiers only ever
// return what a cold solve would.
func TestScenarioDeterministicAcrossWorkers(t *testing.T) {
	pts := testPoints()
	storeDir := t.TempDir()
	var ref [][]float64
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 5} {
		for _, mode := range []string{"nocache", "memory", "store"} {
			var cache *Cache
			switch mode {
			case "memory":
				cache = NewCache()
			case "store":
				// A fresh handle on a shared dir each time: later iterations
				// answer from entries persisted by earlier ones.
				cache = storeBacked(t, storeDir)
			}
			e := &Engine{Parallel: workers, Cache: cache, SkipInfeasible: true}
			vals, err := e.MeasureRuns(pts)
			if err != nil {
				t.Fatalf("workers=%d cache=%s: %v", workers, mode, err)
			}
			if vals[2] != nil {
				t.Fatalf("infeasible point not skipped (workers=%d)", workers)
			}
			if ref == nil {
				ref = vals
				continue
			}
			if !reflect.DeepEqual(vals, ref) {
				t.Fatalf("workers=%d cache=%s: results differ from serial reference\n got %v\nwant %v",
					workers, mode, vals, ref)
			}
		}
	}
}

// TestStoreWarmRestartEqualsColdSolve is the durability clause of the
// cache-key invariant: a second "process" (fresh Cache, fresh store
// handle on the same dir) answers entirely from the store, with values
// reflect.DeepEqual to a cold solve, and without re-solving.
func TestStoreWarmRestartEqualsColdSolve(t *testing.T) {
	pts := testPoints()[:2]
	dir := t.TempDir()

	cold := &Engine{Parallel: 1, SkipInfeasible: true}
	coldVals, err := cold.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}

	first := storeBacked(t, dir)
	firstVals, err := (&Engine{Parallel: 1, Cache: first, SkipInfeasible: true}).MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if st := first.Stats(); st.Misses != 2 || st.StoreErrs != 0 {
		t.Fatalf("first process stats: %+v", st)
	}

	second := storeBacked(t, dir) // restart: empty memory, warm disk
	secondVals, err := (&Engine{Parallel: 1, Cache: second, SkipInfeasible: true}).MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.StoreHits != 2 || st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("second process did not answer from the store: %+v", st)
	}
	if !reflect.DeepEqual(firstVals, coldVals) || !reflect.DeepEqual(secondVals, coldVals) {
		t.Fatalf("warm restart values differ from cold solve:\n cold %v\n first %v\n second %v",
			coldVals, firstVals, secondVals)
	}

	// Promoted entries serve from memory on re-lookup, and mutating a
	// returned slice must not poison either tier.
	secondVals[0][0] = -1
	thirdVals, err := (&Engine{Parallel: 1, Cache: second, SkipInfeasible: true}).MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.Hits != 2 {
		t.Fatalf("promoted entries not served from memory: %+v", st)
	}
	if !reflect.DeepEqual(thirdVals, coldVals) {
		t.Fatal("cache tier poisoned through a returned slice")
	}
}

// TestCacheHitEqualsColdSolve is the cache-key invariant made executable:
// a cached result is reflect.DeepEqual to a cold solve of the same point,
// the second measurement actually hits, and a differing spec misses.
func TestCacheHitEqualsColdSolve(t *testing.T) {
	pts := testPoints()[:2]
	cold := &Engine{Parallel: 1, SkipInfeasible: true}
	coldVals, err := cold.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}

	cache := NewCache()
	warm := &Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	first, err := warm.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses, entries := cacheStats(cache); hits != 0 || misses != 2 || entries != 2 {
		t.Fatalf("after first pass: hits=%d misses=%d entries=%d", hits, misses, entries)
	}
	second, err := warm.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := cacheStats(cache); hits != 2 {
		t.Fatalf("second pass did not hit the cache")
	}
	if !reflect.DeepEqual(first, coldVals) || !reflect.DeepEqual(second, coldVals) {
		t.Fatalf("cached values differ from cold solve:\n cold %v\n first %v\n second %v", coldVals, first, second)
	}

	// A changed spec (different ε) must miss.
	changed := pts[0]
	changed.Epsilon = 0.2
	if _, err := warm.MeasureRuns([]Point{changed}); err != nil {
		t.Fatal(err)
	}
	if _, misses, entries := cacheStats(cache); misses != 3 || entries != 3 {
		t.Fatalf("changed spec did not miss: misses=%d entries=%d", misses, entries)
	}

	// Returned slices are private copies: mutating one must not poison the
	// cache.
	second[0][0] = -1
	third, err := warm.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(third, coldVals) {
		t.Fatalf("cache entry mutated through a returned slice")
	}
}

func cacheStats(c *Cache) (int64, int64, int) {
	st := c.Stats()
	return st.Hits, st.Misses, st.Entries
}

// TestDetailedMatchesScalar pins the two evaluation paths of the mcf
// evaluator against each other: the detailed value equals the scalar
// value, and detailed runs carry usable graphs and results.
func TestDetailedMatchesScalar(t *testing.T) {
	pts := testPoints()[:1]
	e := &Engine{Parallel: 1}
	vals, err := e.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := e.MeasureDetailed(pts)
	if err != nil {
		t.Fatal(err)
	}
	for run, d := range dets[0] {
		if d.Value != vals[0][run] {
			t.Fatalf("run %d: detailed value %v != scalar %v", run, d.Value, vals[0][run])
		}
		if d.G == nil || d.Res == nil {
			t.Fatalf("run %d: detailed result incomplete", run)
		}
		if d.Res.Throughput != d.Value {
			t.Fatalf("run %d: result throughput %v != value %v", run, d.Res.Throughput, d.Value)
		}
	}
}

// TestAdHocTopologyBypassesCache: topologies with an empty spec (closures
// not in the registry) must evaluate but never populate the cache.
func TestAdHocTopologyBypassesCache(t *testing.T) {
	cache := NewCache()
	e := &Engine{Parallel: 1, Cache: cache}
	pt := Point{Topo: adHoc{}, Traffic: Permutation{}, Eval: MCF{}, Seed: 3, Runs: 1, Epsilon: 0.15}
	if _, err := e.MeasureRuns([]Point{pt}); err != nil {
		t.Fatal(err)
	}
	if _, _, entries := cacheStats(cache); entries != 0 {
		t.Fatalf("ad-hoc topology cached (%d entries)", entries)
	}
}

type adHoc struct{}

func (adHoc) Spec() string { return "" }

func (adHoc) Build(rng *rand.Rand) (*graph.Graph, error) {
	cfg := hetero.Config{NumLarge: 4, NumSmall: 4, PortsLarge: 6, PortsSmall: 6, Servers: 8,
		ServersPerLarge: -1, ServersPerSmall: -1, ServerRatio: 1}
	return hetero.Build(rng, cfg)
}
