package scenario

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/store"
)

// warmTestPoints is a small delta-shaped grid: two failure-ladder rungs
// sharing one frac=0 parent, plus one expansion step whose parent is the
// unexpanded topology.
func warmTestPoints(t *testing.T) []Point {
	t.Helper()
	topo, err := ParseTopology("rrg:n=20,deg=6,sps=2")
	if err != nil {
		t.Fatal(err)
	}
	return []Point{
		{Topo: topo, Traffic: Permutation{}, Eval: Failures{Frac: 0.1, Inner: MCF{}},
			Seed: 1, Runs: 2, Epsilon: 0.12},
		{Topo: topo, Traffic: Permutation{}, Eval: Failures{Frac: 0.2, Inner: MCF{}},
			Seed: 1, Runs: 2, Epsilon: 0.12},
		{Topo: &Expand{N: 20, Deg: 6, SPS: 2, Steps: 1, Cap: 1}, Traffic: Permutation{}, Eval: MCF{},
			Seed: 1, Runs: 2, Epsilon: 0.12},
	}
}

// warmBand checks a warm value against its cold counterpart: a warm start
// may move a value only within the certified class. The solver stops a
// warm-seeded solve at optimality gap 3ε against a valid dual bound (the
// class flowcheck certifies), and a cold solve is itself only (1−1.5ε)-
// tight, so the ratio is bounded by (1−3.1ε) on either side (the extra
// 0.1ε absorbs the bounds' own slack).
func warmBand(t *testing.T, what string, warm, cold, eps float64) {
	t.Helper()
	lo := 1 - 3.1*eps
	if warm < lo*cold || cold < lo*warm {
		t.Fatalf("%s: warm value %v outside the certified class of cold value %v (eps=%v)",
			what, warm, cold, eps)
	}
}

// TestWarmStartCertifiedWithinClass is the headline warm-start property:
// every warm-started solve passes flowcheck certification (Starts counts
// only certified solves), and its value stays within the certified ε
// class of the cold solve of the same point.
func TestWarmStartCertifiedWithinClass(t *testing.T) {
	pts := warmTestPoints(t)
	coldVals, err := (&Engine{Parallel: 1}).MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Parallel: 1, Cache: NewCache(), WarmStart: true}
	warmVals, err := e.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	ws := e.WarmStats()
	if ws.Starts == 0 {
		t.Fatalf("no solve warm-started: %+v", ws)
	}
	if ws.Starts+ws.Fallbacks > ws.Attempts {
		t.Fatalf("inconsistent warm counters: %+v", ws)
	}
	if ws.ParentMisses == 0 {
		t.Fatalf("parents were never materialized: %+v", ws)
	}
	for i := range pts {
		for run := range warmVals[i] {
			warmBand(t, pts[i].Key(), warmVals[i][run], coldVals[i][run], pts[i].Epsilon)
		}
	}
}

// TestWarmStartDeterministicAcrossWorkers extends the engine determinism
// contract to warm starts: the same delta-shaped grid, warm-started at 1,
// 2, GOMAXPROCS, and 5 workers, produces reflect.DeepEqual values. The
// witness is a pure function of the parent point, the mapping is a pure
// function of witness and graphs, and the warm solve is deterministic in
// its seed — so scheduling cannot leak in.
func TestWarmStartDeterministicAcrossWorkers(t *testing.T) {
	pts := warmTestPoints(t)
	var ref [][]float64
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 5} {
		e := &Engine{Parallel: workers, Cache: NewCache(), WarmStart: true}
		vals, err := e.MeasureRuns(pts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ws := e.WarmStats(); ws.Starts == 0 {
			t.Fatalf("workers=%d: no solve warm-started: %+v", workers, ws)
		}
		if ref == nil {
			ref = vals
			continue
		}
		if !reflect.DeepEqual(vals, ref) {
			t.Fatalf("workers=%d: warm-started results differ from serial reference\n got %v\nwant %v",
				workers, vals, ref)
		}
	}
}

// memBackend is a map-backed cache Backend standing in for a peer
// replica's result store: entries arrive via Save from "another process"
// and are served to this one via Load, exercising the same promotion path
// a remotestore client uses.
type memBackend struct {
	mu sync.Mutex
	m  map[string][]float64
}

func newMemBackend() *memBackend { return &memBackend{m: map[string][]float64{}} }

func (b *memBackend) Load(key string) ([]float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[key]
	return v, ok
}

func (b *memBackend) Save(key string, vals []float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	cp := make([]float64, len(vals))
	copy(cp, vals)
	b.m[key] = cp
	return nil
}

// TestWarmStartParentSourceIrrelevant pins byte-determinism across the
// witness transport ladder: a child warm-started from a parent witness it
// materialized in memory, one loaded from a disk store written by an
// earlier "process", and one served by a peer-replica-style backend all
// produce reflect.DeepEqual values. Witnesses are ordinary TBRS entries
// (bit-exact float64), so where the parent came from cannot matter.
func TestWarmStartParentSourceIrrelevant(t *testing.T) {
	pts := warmTestPoints(t)
	parents := make([]Point, 0, len(pts))
	for _, p := range pts {
		pp, ok := ParentPoint(p)
		if !ok {
			t.Fatalf("point %s has no parent", p.Key())
		}
		parents = append(parents, pp)
	}

	// Memory: a fresh warm engine materializes the parents itself.
	mem := &Engine{Parallel: 1, Cache: NewCache(), WarmStart: true}
	memVals, err := mem.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ws := mem.WarmStats(); ws.ParentMisses == 0 || ws.Starts == 0 {
		t.Fatalf("memory run did not materialize parents: %+v", ws)
	}

	// Disk: process A (warm, so it publishes witnesses) solves only the
	// parents; process B, a fresh handle on the same dir, solves the
	// children from the stored witnesses.
	dir := t.TempDir()
	a := &Engine{Parallel: 1, Cache: storeBacked(t, dir), WarmStart: true}
	if _, err := a.MeasureRuns(parents); err != nil {
		t.Fatal(err)
	}
	b := &Engine{Parallel: 1, Cache: storeBacked(t, dir), WarmStart: true}
	diskVals, err := b.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ws := b.WarmStats(); ws.ParentHits != int64(len(pts)) {
		t.Fatalf("disk run did not load every parent witness set from the store: %+v", ws)
	}

	// Peer: the same replay with the witnesses held by a peer-style
	// backend instead of a disk store.
	peer := newMemBackend()
	ca := NewCache()
	ca.SetBackend(peer)
	if _, err := (&Engine{Parallel: 1, Cache: ca, WarmStart: true}).MeasureRuns(parents); err != nil {
		t.Fatal(err)
	}
	cb := NewCache()
	cb.SetBackend(peer)
	peerEng := &Engine{Parallel: 1, Cache: cb, WarmStart: true}
	peerVals, err := peerEng.MeasureRuns(pts)
	if err != nil {
		t.Fatal(err)
	}
	if ws := peerEng.WarmStats(); ws.ParentHits != int64(len(pts)) {
		t.Fatalf("peer run did not load every parent witness set from the backend: %+v", ws)
	}

	if !reflect.DeepEqual(diskVals, memVals) || !reflect.DeepEqual(peerVals, memVals) {
		t.Fatalf("warm values depend on the parent's source:\n mem  %v\n disk %v\n peer %v",
			memVals, diskVals, peerVals)
	}
}

// TestWarmStartParentLinkDurable: a warm-started point's store entry
// records its parent's content address (codec v2 link), readable by any
// process, and the store counts the linked write.
func TestWarmStartParentLinkDurable(t *testing.T) {
	pts := warmTestPoints(t)[:1]
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache()
	c.SetBackend(st)
	e := &Engine{Parallel: 1, Cache: c, WarmStart: true}
	if _, err := e.MeasureRuns(pts); err != nil {
		t.Fatal(err)
	}
	if ws := e.WarmStats(); ws.Starts == 0 {
		t.Fatalf("no solve warm-started: %+v", ws)
	}
	if ss := st.Stats(); ss.ParentLinks == 0 {
		t.Fatalf("no parent-linked entry written: %+v", ss)
	}
	raw, _, ok := st.LoadAddrBuf(store.Addr(pts[0].Key()), nil, nil)
	if !ok {
		t.Fatal("child entry missing from the store")
	}
	_, parent, ok := store.DecodeEntry(raw)
	if !ok {
		t.Fatal("child entry does not decode")
	}
	pp, _ := ParentPoint(pts[0])
	if want := store.Addr(pp.Key()); parent != want {
		t.Fatalf("child entry parent link = %q, want %q", parent, want)
	}
}

// TestParentPoint pins the parent derivation rules: a failure rung's
// parent is the same point at frac=0, an expansion step's parent is
// steps−1, base cases and plain points have none.
func TestParentPoint(t *testing.T) {
	topo, err := ParseTopology("rrg:n=20,deg=6,sps=2")
	if err != nil {
		t.Fatal(err)
	}
	rung := Point{Topo: topo, Traffic: Permutation{}, Eval: Failures{Frac: 0.1, Inner: MCF{}},
		Seed: 1, Runs: 2, Epsilon: 0.12}
	pp, ok := ParentPoint(rung)
	if !ok || pp.Eval.Spec() != (Failures{Frac: 0, Inner: MCF{}}).Spec() {
		t.Fatalf("failure rung parent = %+v, ok=%v", pp, ok)
	}
	if pp.Seed != rung.Seed || pp.Runs != rung.Runs || pp.Epsilon != rung.Epsilon {
		t.Fatalf("parent does not inherit run controls: %+v", pp)
	}

	exp := Point{Topo: &Expand{N: 20, Deg: 6, SPS: 2, Steps: 2, Cap: 1}, Traffic: Permutation{}, Eval: MCF{},
		Seed: 1, Runs: 2, Epsilon: 0.12}
	pp, ok = ParentPoint(exp)
	if !ok || pp.Topo.Spec() != (&Expand{N: 20, Deg: 6, SPS: 2, Steps: 1, Cap: 1}).Spec() {
		t.Fatalf("expansion parent = %+v, ok=%v", pp, ok)
	}

	base := Point{Topo: topo, Traffic: Permutation{}, Eval: Failures{Frac: 0, Inner: MCF{}}}
	if _, ok := ParentPoint(base); ok {
		t.Fatal("frac=0 base case must have no parent")
	}
	plain := Point{Topo: topo, Traffic: Permutation{}, Eval: MCF{}}
	if _, ok := ParentPoint(plain); ok {
		t.Fatal("plain point must have no parent")
	}
}
