package scenario

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/hetero"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/trace"
)

// DefaultSeedFactor is the historical per-run seed derivation of
// core.Evaluation: run i of a point draws from Seed*1_000_003 + i.
const DefaultSeedFactor = 1_000_003

// Point is one fully-specified scenario evaluation: a topology × traffic ×
// evaluator triple plus run controls. Run i draws its RNG from
// Seed*SeedFactor + i, builds the topology, generates the traffic, and
// evaluates — all on that one stream, so a point's results depend only on
// its specs and seeds, never on scheduling.
type Point struct {
	Topo    Topology
	Traffic Traffic
	Eval    Evaluator
	// Seed is the point's base RNG seed.
	Seed int64
	// SeedFactor scales Seed in the per-run derivation
	// rng(i) = NewSource(Seed*SeedFactor + i). 0 means DefaultSeedFactor;
	// figure runners that historically seeded runs as base+run use 1.
	SeedFactor int64
	// Runs is the number of independent runs (0 means 3).
	Runs int
	// Epsilon is the flow-solver approximation parameter (0 = solver default).
	Epsilon float64
}

func (p Point) runs() int {
	if p.Runs <= 0 {
		return 3
	}
	return p.Runs
}

func (p Point) seedFactor() int64 {
	if p.SeedFactor == 0 {
		return DefaultSeedFactor
	}
	return p.SeedFactor
}

// Key is the point's content address: every input that determines its
// result, in a fixed order. Points whose topology has an empty spec are
// not addressable (ad-hoc closures) and bypass the cache.
func (p Point) Key() string {
	var b strings.Builder
	b.WriteString(p.Topo.Spec())
	b.WriteByte('|')
	if p.Traffic != nil {
		b.WriteString(p.Traffic.Spec())
	}
	b.WriteByte('|')
	b.WriteString(p.Eval.Spec())
	fmt.Fprintf(&b, "|eps=%g|seed=%d|factor=%d|runs=%d", p.Epsilon, p.Seed, p.seedFactor(), p.runs())
	return b.String()
}

// Stat summarizes one point's runs. OK is false when the point was
// physically infeasible (skipped by a sweep).
type Stat struct {
	Mean, Std, Min, Max float64
	Runs                int
	OK                  bool
}

// Engine executes scenario points on the shared runner substrate. The
// zero value runs at GOMAXPROCS without a cache.
type Engine struct {
	// Parallel bounds worker goroutines at every level (points and runs);
	// 0 means GOMAXPROCS, 1 forces fully serial execution. Output is
	// byte-identical for any value — every run's RNG derives from
	// (Seed, SeedFactor, run index) and reductions are serial in index
	// order.
	Parallel int
	// Cache, when non-nil, memoizes per-point run values by content
	// address, so sweeps and figures sharing instances never re-solve.
	Cache *Cache
	// SkipInfeasible treats physically-unrealizable sweep points
	// (hetero.ErrInfeasiblePoint, rrg.ErrInfeasible) as skipped (nil runs,
	// Stat.OK=false) instead of failing the whole grid.
	SkipInfeasible bool
	// WarmStart enables incremental (delta) evaluation: points with a
	// derivable parent (see ParentPoint) seed their flow solves from the
	// parent's stored dual witness instead of solving from scratch. Every
	// warm-started solve is re-certified by flowcheck and falls back to a
	// cold solve on failure, so enabling this may change a point's value
	// only within the certified (1+ε) class — never outside it. Requires a
	// Cache; off by default, preserving byte-exact legacy output.
	WarmStart bool

	warmAttempts  atomic.Int64
	warmStarts    atomic.Int64
	warmFallbacks atomic.Int64
	parentHits    atomic.Int64
	parentMisses  atomic.Int64

	warmMu       sync.Mutex
	warmInflight map[string]*sync.WaitGroup
}

// WarmStats snapshots the engine's incremental-evaluation counters:
// Attempts counts runs that entered the solver warm-seeded, Starts the
// subset that passed flowcheck certification, Fallbacks the subset
// re-solved cold after a failed certification (Attempts − Starts −
// Fallbacks were rejected by the solver itself, e.g. unusable seeds).
// ParentHits counts points whose full parent witness set was already in
// the cache tiers; ParentMisses points that had to materialize (or do
// without) their parent.
type WarmStats struct {
	Attempts, Starts, Fallbacks int64
	ParentHits, ParentMisses    int64
}

// WarmStats reports the engine's warm-start counters.
func (e *Engine) WarmStats() WarmStats {
	return WarmStats{
		Attempts:     e.warmAttempts.Load(),
		Starts:       e.warmStarts.Load(),
		Fallbacks:    e.warmFallbacks.Load(),
		ParentHits:   e.parentHits.Load(),
		ParentMisses: e.parentMisses.Load(),
	}
}

func (e *Engine) pool() *runner.Pool { return runner.New(e.Parallel) }

// infeasible classifies build errors that mark a sweep point as
// unrealizable rather than broken.
func infeasible(err error) bool {
	return errors.Is(err, hetero.ErrInfeasiblePoint) || errors.Is(err, rrg.ErrInfeasible)
}

// Measure evaluates every point and summarizes its runs. Points run
// concurrently on the engine's pool, runs concurrently within each point,
// all bounded by the process-wide runner semaphore.
func (e *Engine) Measure(pts []Point) ([]Stat, error) {
	vals, err := e.MeasureRuns(pts)
	if err != nil {
		return nil, err
	}
	stats := make([]Stat, len(vals))
	for i, v := range vals {
		stats[i] = summarize(v)
	}
	return stats, nil
}

// MeasureRuns evaluates every point and returns the raw per-run values in
// run order. A nil slice marks a point skipped as infeasible. The returned
// slices may be served from the cache and must be treated as read-only.
func (e *Engine) MeasureRuns(pts []Point) ([][]float64, error) {
	return e.MeasureRunsCtx(context.Background(), pts)
}

// MeasureRunsCtx is MeasureRuns under a context: once ctx is done, no new
// point or run starts, in-flight flow solves abort at their next phase
// boundary (mcf.Options.Cancel), and the context's error is returned.
// Cancellation never reaches the cache — an aborted run stores nothing —
// so a canceled grid re-evaluates cleanly. The evaluation service threads
// each request's context here so a dropped client stops burning solver
// time instead of holding a queue slot to completion.
func (e *Engine) MeasureRunsCtx(ctx context.Context, pts []Point) ([][]float64, error) {
	return e.MeasureRunsProgress(ctx, pts, nil)
}

// ProgressFunc observes grid progress: done points completed out of total.
// Calls arrive from worker goroutines (serialized per call site, but the
// callback must be safe against concurrent invocation) and must be cheap —
// a slow callback stalls point completion.
type ProgressFunc func(done, total int)

// MeasureRunsProgress is MeasureRunsCtx with a per-point progress
// callback: progress(0, n) fires before evaluation starts, then
// progress(k, n) after each point completes (cache hits and infeasible
// skips count — every point resolves exactly once). The async job API
// threads its progress persistence through here. A nil progress is
// MeasureRunsCtx exactly.
func (e *Engine) MeasureRunsProgress(ctx context.Context, pts []Point, progress ProgressFunc) ([][]float64, error) {
	var completed atomic.Int64
	if progress != nil {
		progress(0, len(pts))
	}
	vals, err := runner.Map(e.pool(), len(pts), func(i int) ([]float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vals, err := e.runPoint(ctx, pts[i])
		if err != nil {
			// Report the cancellation itself, not the per-point error it
			// surfaced as, so callers can errors.Is it.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("scenario: point %d (%s): %w", i, pts[i].Key(), err)
		}
		if progress != nil {
			progress(int(completed.Add(1)), len(pts))
		}
		return vals, nil
	})
	return vals, err
}

// MeasureOne evaluates a single point (the adaptive-search building block;
// with a cache attached, repeated probes of the same point are free).
func (e *Engine) MeasureOne(p Point) (Stat, error) {
	stats, err := e.Measure([]Point{p})
	if err != nil {
		return Stat{}, err
	}
	return stats[0], nil
}

func (e *Engine) runPoint(ctx context.Context, p Point) ([]float64, error) {
	key := ""
	if p.Topo.Spec() != "" {
		key = p.Key()
	}
	if sp := trace.StartSpan(ctx, "point"); sp.OK() {
		sp.Attr("key", key)
		ctx = trace.ContextWithSpan(ctx, sp)
		defer sp.End()
	}
	if e.Cache != nil && key != "" {
		if vals, ok := e.Cache.GetCtx(ctx, key); ok {
			return vals, nil
		}
	}
	pw := e.prepareWarm(ctx, p, key)
	if pw != nil {
		defer pw.unpin()
	}
	vals, err := runner.Map(e.pool(), p.runs(), func(i int) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		v, _, err := e.oneRun(ctx, p, i, false, pw)
		return v, err
	})
	if err != nil {
		// No Put will follow, so release any claim lease Get acquired for
		// this key — a failed, canceled, or infeasible solve must not park
		// fleet peers until the lease expires.
		if e.Cache != nil && key != "" {
			e.Cache.Abandon(key)
		}
		if e.SkipInfeasible && infeasible(err) {
			return nil, nil
		}
		return nil, err
	}
	if e.Cache != nil && key != "" {
		parentKey := ""
		if pw != nil {
			parentKey = pw.parentKey
		}
		e.Cache.PutLinked(key, vals, parentKey)
	}
	return vals, nil
}

// pointWarm is the per-point warm-start plan prepareWarm assembles for
// runPoint: the parent's identity and per-run witnesses, plus the pin
// release keeping the parent's entries eviction-safe while runs consume
// them.
type pointWarm struct {
	parentKey  string
	kind       parentKind
	parentTopo Topology
	// lens[i] is run i's parent witness (nil: that run solves cold).
	lens  [][]float64
	unpin func()
}

// prepareWarm derives the point's parent and gathers its per-run
// witnesses from the cache tiers (memory → disk → remote), materializing
// the parent point on a full-tier miss. Returns nil when the point has no
// derivable parent or no witness could be obtained — the point then runs
// exactly as with WarmStart off. Never returns an error: warm starts are
// an optimization, and any failure here degrades to a cold solve.
func (e *Engine) prepareWarm(ctx context.Context, p Point, key string) *pointWarm {
	if !e.WarmStart || e.Cache == nil || key == "" {
		return nil
	}
	pp, kind, ok := parentPoint(p)
	if !ok || pp.Topo.Spec() == "" {
		return nil
	}
	parentKey := pp.Key()
	sp := trace.StartSpan(ctx, "warm.prepare")
	sp.Attr("parent", parentKey)
	defer sp.End()
	load := func() ([][]float64, bool) {
		lens := make([][]float64, p.runs())
		all := true
		for i := range lens {
			if w, ok := e.Cache.GetCtx(ctx, WitnessKey(parentKey, i)); ok {
				lens[i] = w
			} else {
				all = false
			}
		}
		return lens, all
	}
	lens, all := load()
	if all {
		sp.Attr("witnesses", "hit")
		e.parentHits.Add(1)
	} else {
		// Some or all witnesses are missing in every tier: solve the parent
		// point now (deduplicated per parent key, so concurrent siblings of
		// a ladder share one materialization). Parents are themselves
		// delta-shaped points, so this recursion walks expansion ladders
		// down to their base. A parent that was cached as a result by a
		// non-warm process has no witnesses to offer; its children solve
		// cold — a documented degradation, never an error.
		sp.Attr("witnesses", "miss")
		e.parentMisses.Add(1)
		e.materializeParent(ctx, pp, parentKey)
		lens, _ = load()
	}
	any := false
	var unpins []func()
	for i := range lens {
		if lens[i] != nil {
			any = true
			unpins = append(unpins, e.Cache.Pin(WitnessKey(parentKey, i)))
		}
	}
	if !any {
		return nil
	}
	// Pin the parent's result entry too: the in-flight warm start is what
	// makes this entry "hot", and a concurrent store Prune must not evict
	// it (or the witnesses above) mid-flight.
	unpins = append(unpins, e.Cache.Pin(parentKey))
	return &pointWarm{
		parentKey:  parentKey,
		kind:       kind,
		parentTopo: pp.Topo,
		lens:       lens,
		unpin: func() {
			for _, u := range unpins {
				u()
			}
		},
	}
}

// materializeParent solves the parent point so its witnesses land in the
// cache, deduplicating concurrent requests per parent key. The solve's
// error (if any) is deliberately dropped: the children fall back to cold
// solves and the error resurfaces if the parent point is ever evaluated
// in its own right.
func (e *Engine) materializeParent(ctx context.Context, pp Point, parentKey string) {
	msp := trace.StartSpan(ctx, "warm.materialize")
	defer msp.End()
	e.warmMu.Lock()
	if wg, ok := e.warmInflight[parentKey]; ok {
		e.warmMu.Unlock()
		msp.Attr("outcome", "joined")
		wg.Wait()
		return
	}
	if e.warmInflight == nil {
		e.warmInflight = map[string]*sync.WaitGroup{}
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	e.warmInflight[parentKey] = wg
	e.warmMu.Unlock()
	msp.Attr("outcome", "solved")
	defer func() {
		e.warmMu.Lock()
		delete(e.warmInflight, parentKey)
		e.warmMu.Unlock()
		wg.Done()
	}()
	_, _ = e.runPoint(ctx, pp)
}

// MeasureDetailed evaluates every point keeping each run's full result
// (requires the evaluator to implement DetailedEvaluator). Details hold
// graphs and flow results, so they are never cached.
func (e *Engine) MeasureDetailed(pts []Point) ([][]Detail, error) {
	return runner.Map(e.pool(), len(pts), func(i int) ([]Detail, error) {
		p := pts[i]
		if _, ok := p.Eval.(DetailedEvaluator); !ok {
			return nil, fmt.Errorf("scenario: evaluator %s has no detailed mode", p.Eval.Spec())
		}
		dets, err := runner.Map(e.pool(), p.runs(), func(run int) (Detail, error) {
			_, d, err := e.oneRun(context.Background(), p, run, true, nil)
			return d, err
		})
		if err != nil {
			if e.SkipInfeasible && infeasible(err) {
				return nil, nil
			}
			return nil, fmt.Errorf("scenario: point %d (%s): %w", i, p.Key(), err)
		}
		return dets, nil
	})
}

// oneRun executes run i of a point: one RNG stream through build, traffic,
// and evaluation. cctx's cancellation is handed to the evaluator; it never
// influences a completed run's value. pw, when non-nil, carries the
// point's warm-start plan: run i is seeded from pw.lens[i] and the run's
// own witness is stored for the point's future children.
func (e *Engine) oneRun(cctx context.Context, p Point, i int, keep bool, pw *pointWarm) (float64, Detail, error) {
	if sp := trace.StartSpan(cctx, "run"); sp.OK() {
		sp.AttrInt("idx", int64(i))
		cctx = trace.ContextWithSpan(cctx, sp)
		defer sp.End()
	}
	rng := rand.New(rand.NewSource(p.Seed*p.seedFactor() + int64(i)))
	g, err := p.Topo.Build(rng)
	if err != nil {
		return 0, Detail{}, fmt.Errorf("build run %d: %w", i, err)
	}
	ctx := &EvalContext{G: g, Rng: rng, Epsilon: p.Epsilon, Cancel: cctx.Done(), Ctx: cctx}
	var w *WarmExchange
	if e.WarmStart {
		w = &WarmExchange{}
		ctx.Warm = w
		if pw != nil && i < len(pw.lens) && pw.lens[i] != nil {
			switch pw.kind {
			case deltaEval:
				// An evaluator delta's parent solved (a clone of) this very
				// graph: same stream prefix, degradation not yet applied.
				w.ParentG, w.ParentLens = g, pw.lens[i]
				e.warmAttempts.Add(1)
			case deltaTopo:
				// A topology delta's parent graph is rebuilt on a fresh copy
				// of the run's stream — identical prefix, one step shorter.
				prng := rand.New(rand.NewSource(p.Seed*p.seedFactor() + int64(i)))
				if pg, perr := pw.parentTopo.Build(prng); perr == nil {
					w.ParentG, w.ParentLens = pg, pw.lens[i]
					e.warmAttempts.Add(1)
				}
			}
		}
	}
	if p.Traffic != nil {
		ctx.TM, err = p.Traffic.Matrix(rng, g)
		if err != nil {
			return 0, Detail{}, err
		}
	}
	var v float64
	var d Detail
	if keep {
		d, err = p.Eval.(DetailedEvaluator).EvaluateDetailed(ctx)
		v = d.Value
	} else {
		v, err = p.Eval.Evaluate(ctx)
	}
	if w != nil && err == nil {
		if w.WarmStarted {
			e.warmStarts.Add(1)
		}
		if w.CertFallback {
			e.warmFallbacks.Add(1)
		}
		if e.Cache != nil && w.Witness != nil && p.Topo.Spec() != "" {
			// Publish the run's witness as an ordinary cache entry so this
			// point's future children (in this process or any replica) can
			// warm-start from it.
			e.Cache.Put(WitnessKey(p.Key(), i), w.Witness)
		}
	}
	return v, d, err
}

// MaxAtFull binary-searches the largest size in [lo, hi] whose point still
// achieves Min ≥ threshold(size) across all runs — the §7 "supported at
// full throughput" search, generalized to any point family. With a cache
// attached, re-probing a size (e.g. across workload variants sharing a
// sizing search) costs nothing.
func (e *Engine) MaxAtFull(lo, hi int, threshold func(size int) float64, point func(size int) Point) (int, error) {
	ok := func(size int) (bool, error) {
		st, err := e.MeasureOne(point(size))
		if err != nil {
			return false, err
		}
		return st.OK && st.Min >= threshold(size), nil
	}
	okLo, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return lo - 1, nil
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// Summarize folds raw run values (as returned by MeasureRuns) into a
// Stat — the hook for layers that need both the values and the summary,
// like the evaluation service.
func Summarize(vals []float64) Stat { return summarize(vals) }

// summarize folds run values into a Stat, reducing in run order (the same
// arithmetic core.Evaluation used, so refactored figures keep their bytes).
func summarize(vals []float64) Stat {
	if vals == nil {
		return Stat{}
	}
	st := Stat{Runs: len(vals), Min: math.Inf(1), Max: math.Inf(-1), OK: true}
	if len(vals) == 0 {
		return st
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(ss / float64(len(vals)))
	return st
}
