package scenario

import (
	"strconv"

	"repro/internal/graph"
)

// Incremental (delta) evaluation: a "what if" point — a failure ladder
// rung, an expansion step — is one small edit away from a cheaper parent
// point. When Engine.WarmStart is on, the engine derives that parent,
// obtains the parent solve's exported dual witness (mcf.Result.DualLens,
// stored per run as an ordinary content-addressed cache entry, so it
// flows through memory → disk → remote exactly like results), maps it
// onto the child's arcs, and seeds the child solve with it. Every
// warm-started solve is re-certified by internal/flowcheck before its
// value is accepted; a failed certification falls back to a cold solve —
// the degradation ladder's "never wrong data" rule, extended to warm
// starts.

// WarmExchange is the per-run warm-start exchange threaded through
// EvalContext.Warm. The engine fills the parent side before the run;
// delta-aware evaluators (currently MCF, reached directly or through the
// Failures wrapper) consume it and report the solve's own witness back.
type WarmExchange struct {
	// ParentG is the graph the parent solve ran on; ParentLens is its
	// witness, indexed on ParentG's arcs. Both nil when no parent
	// information is available — the run solves cold.
	ParentG    *graph.Graph
	ParentLens []float64

	// Witness is the run's own exported dual witness (mcf.Result.DualLens
	// on the solved graph), set by the evaluator for the engine to store —
	// the seed for this point's future children. Set for cold solves too.
	Witness []float64
	// WarmStarted reports that the solve was warm-seeded AND passed
	// flowcheck certification; CertFallback that a warm solve failed
	// certification and was re-solved cold.
	WarmStarted  bool
	CertFallback bool
}

// DeltaTopology is implemented by topologies whose instances are one
// incremental step away from a cheaper parent instance sharing the same
// RNG-stream prefix (so run i of the parent point builds a graph the
// child's run i physically contains or extends).
type DeltaTopology interface {
	Topology
	// ParentTopology returns the one-step-smaller topology, or false when
	// this instance is already the base of its family.
	ParentTopology() (Topology, bool)
}

// DeltaEvaluator is implemented by evaluator wrappers whose measurement
// degrades a parent measurement (currently the failures wrapper, whose
// parent is the same evaluation at frac=0 — the intact graph).
type DeltaEvaluator interface {
	Evaluator
	// ParentEvaluator returns the undegraded evaluator, or false when this
	// instance already is the base case.
	ParentEvaluator() (Evaluator, bool)
}

// ParentPoint derives the parent point of a delta-shaped point: the same
// point with the evaluator's base case (failures at frac=0) or, failing
// that, the topology one step back (expand at steps−1). Seed, seed
// factor, run count, ε, and traffic are inherited, so run i of the parent
// shares the child's run-i RNG stream prefix — the property that makes
// the parent's graph (and therefore its witness) mappable onto the
// child's. ok=false means the point has no derivable parent and always
// solves cold.
func ParentPoint(p Point) (Point, bool) {
	pp, _, ok := parentPoint(p)
	return pp, ok
}

// parentKind distinguishes how the parent graph of run i is obtained:
// for an evaluator delta the parent solved (a clone of) the run's own
// built graph; for a topology delta the parent topology must be rebuilt
// on the run's RNG stream.
type parentKind int

const (
	deltaEval parentKind = iota + 1
	deltaTopo
)

func parentPoint(p Point) (Point, parentKind, bool) {
	if de, ok := p.Eval.(DeltaEvaluator); ok {
		if pe, ok := de.ParentEvaluator(); ok {
			pp := p
			pp.Eval = pe
			return pp, deltaEval, true
		}
	}
	if dt, ok := p.Topo.(DeltaTopology); ok {
		if pt, ok := dt.ParentTopology(); ok {
			pp := p
			pp.Topo = pt
			return pp, deltaTopo, true
		}
	}
	return Point{}, 0, false
}

// WitnessKey is the cache key of run i's dual witness for the point with
// the given result key. Witness entries are ordinary content-addressed
// entries — same hashing, same tiers, same TBRS byte-exactness — so a
// witness loaded from memory, disk, or a peer replica is bit-identical
// and warm-started solves are byte-deterministic regardless of where the
// parent came from.
func WitnessKey(pointKey string, run int) string {
	return "witness|" + pointKey + "|run=" + strconv.Itoa(run)
}

// MapArcLens transfers a per-arc length function from a parent graph onto
// a child graph that shares its link structure up to one incremental edit
// (links removed by failures; links removed and added by an expansion
// step). Links are matched by endpoint pair in link order — exactly the
// order graph.WithoutLinks and rrg.ExpandWithSwitch preserve — with
// parallel links consumed first-to-first. Child arcs with no parent
// counterpart get 0, which the solver treats as "no information". Returns
// nil when nothing matched (or the witness length is wrong), meaning the
// caller should solve cold.
func MapArcLens(parent, child *graph.Graph, plens []float64) []float64 {
	if parent == nil || child == nil || len(plens) != parent.NumArcs() {
		return nil
	}
	type ends struct{ u, v int }
	queues := make(map[ends][]int32, parent.NumLinks())
	for id := 0; id < parent.NumLinks(); id++ {
		u, v := parent.LinkEnds(id)
		queues[ends{u, v}] = append(queues[ends{u, v}], int32(id))
	}
	out := make([]float64, child.NumArcs())
	matched := 0
	for id := 0; id < child.NumLinks(); id++ {
		u, v := child.LinkEnds(id)
		if q := queues[ends{u, v}]; len(q) > 0 {
			pid := int(q[0])
			queues[ends{u, v}] = q[1:]
			out[2*id] = plens[2*pid]
			out[2*id+1] = plens[2*pid+1]
			matched++
			continue
		}
		// Opposite orientation: the parent stored this link as (v, u), so
		// its forward arc corresponds to the child's reverse arc.
		if q := queues[ends{v, u}]; len(q) > 0 {
			pid := int(q[0])
			queues[ends{v, u}] = q[1:]
			out[2*id] = plens[2*pid+1]
			out[2*id+1] = plens[2*pid]
			matched++
		}
	}
	if matched == 0 {
		return nil
	}
	return out
}
