package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func rk(s string) respKey {
	k, _ := respKeyFor(nil, respKeyPrefix, s)
	return k
}

func TestRespCacheRoundTrip(t *testing.T) {
	c := newRespCache(1 << 20)
	body := []byte(`{"x":1}`)
	if got := c.get(rk("a")); got != nil {
		t.Fatalf("empty cache hit: %q", got)
	}
	c.put(rk("a"), body)
	if got := c.get(rk("a")); !bytes.Equal(got, body) {
		t.Fatalf("round trip: got %q want %q", got, body)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len(body)) {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRespCacheLRUEviction fills past the budget and checks that the
// least-recently-used entry leaves first — and leaves WHOLE: a get after
// eviction is a clean miss, never a partial body.
func TestRespCacheLRUEviction(t *testing.T) {
	body := make([]byte, 100)
	c := newRespCache(250) // room for two entries
	c.put(rk("a"), body)
	c.put(rk("b"), body)
	c.get(rk("a")) // touch a: b becomes LRU
	c.put(rk("c"), body)
	if c.get(rk("b")) != nil {
		t.Fatal("LRU entry b survived eviction")
	}
	if got := c.get(rk("a")); len(got) != len(body) {
		t.Fatalf("a: got %d bytes want %d", len(got), len(body))
	}
	if got := c.get(rk("c")); len(got) != len(body) {
		t.Fatalf("c: got %d bytes want %d", len(got), len(body))
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRespCacheOversizedAndDisabled(t *testing.T) {
	c := newRespCache(10)
	c.put(rk("big"), make([]byte, 11))
	if c.stats().Entries != 0 {
		t.Fatal("oversized body was admitted")
	}
	d := newRespCache(-1)
	d.put(rk("a"), []byte("x"))
	if d.get(rk("a")) != nil {
		t.Fatal("disabled cache served a hit")
	}
}

// TestRespCacheRacingPut: two populates for one key keep the first
// resident body (they are byte-identical by the invariant; the test uses
// equal bytes in different backing arrays to observe which survived).
func TestRespCacheRacingPut(t *testing.T) {
	c := newRespCache(1 << 20)
	b1 := []byte("same-bytes")
	b2 := append([]byte(nil), b1...)
	c.put(rk("k"), b1)
	c.put(rk("k"), b2)
	if got := c.get(rk("k")); &got[0] != &b1[0] {
		t.Fatal("racing put replaced the resident entry")
	}
	if st := c.stats(); st.Bytes != int64(len(b1)) {
		t.Fatalf("double-counted bytes: %+v", st)
	}
}

// TestRespCacheVersionedKeys: bumping either the response schema version
// or the store codec version must change every key, so bytes cached under
// an old encoding become unreachable.
func TestRespCacheVersionedKeys(t *testing.T) {
	base := respPrefix(respSchemaVersion, 1)
	schemaBump := respPrefix(respSchemaVersion+1, 1)
	codecBump := respPrefix(respSchemaVersion, 2)
	k0, _ := respKeyFor(nil, base, testGridQuick)
	k1, _ := respKeyFor(nil, schemaBump, testGridQuick)
	k2, _ := respKeyFor(nil, codecBump, testGridQuick)
	if k0 == k1 || k0 == k2 || k1 == k2 {
		t.Fatal("version bump did not change the cache key")
	}
	c := newRespCache(1 << 20)
	c.put(k0, []byte("old-encoding"))
	if c.get(k1) != nil || c.get(k2) != nil {
		t.Fatal("stale-version entry reachable after bump")
	}
}

// TestRespCacheConcurrent hammers put/get/evict from many goroutines
// under a tiny budget (run with -race in CI): every hit must be the
// complete body put under that key — eviction drops references, it never
// truncates or mutates.
func TestRespCacheConcurrent(t *testing.T) {
	const keys = 32
	bodies := make([][]byte, keys)
	for i := range bodies {
		bodies[i] = bytes.Repeat([]byte{byte(i)}, 64+i)
	}
	c := newRespCache(512) // a handful of entries: constant eviction churn
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (i*7 + w*13) % keys
				key := rk(fmt.Sprintf("key-%d", k))
				if got := c.get(key); got != nil && !bytes.Equal(got, bodies[k]) {
					panic(fmt.Sprintf("key %d: corrupt hit (%d bytes)", k, len(got)))
				}
				if i%3 == 0 {
					c.put(key, bodies[k])
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.stats(); st.Evictions == 0 {
		t.Fatalf("expected eviction churn, got %+v", st)
	}
}
