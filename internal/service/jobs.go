package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Async jobs are the service's answer to grids that outgrow a connection:
// POST /v1/jobs answers 202 with a job id immediately, the evaluation runs
// detached from any socket, and clients poll GET /v1/jobs/<id> until the
// result is ready. Jobs reuse the whole synchronous machinery — the flight
// table (a job and a /v1/eval request for the same grid share one solve),
// the job-slot queue (jobs wait for a slot instead of 429ing; they already
// answered, so waiting is cheap), and the tiered cache.
//
// Durability rides the store's job records (store.JobRecord): the record
// is persisted before the 202 leaves, progress updates are throttled
// through it, and completion stores the content address of the canonical
// response bytes. After a restart, RecoverJobs re-adopts every record:
// unfinished jobs re-dispatch (their solves resume against the warm
// store), finished ones replay lazily — the first poll re-runs the grid
// through the cache, which is byte-identical by the durability invariant,
// and the replayed bytes are verified against the recorded address.
//
// Job records obey a one-rung degradation ladder: lost or corrupt reads
// as "unknown job, resubmit" (404), never a wedge and never wrong bytes.

// job is one async evaluation: the durable record plus the live parts a
// record cannot hold — the cancel func and the resident result bytes.
type job struct {
	id   string
	grid string

	ctx    context.Context
	cancel context.CancelFunc

	mu  sync.Mutex
	rec store.JobRecord
	// body/status are the result bytes once the evaluation (or a
	// post-restart replay) finished in this process. A done record with no
	// resident body replays on first poll.
	body   []byte
	status int
	// replay marks a re-run of an already-done job after a restart; its
	// completion verifies bytes against rec.ResultAddr instead of
	// recounting the job as done.
	replay bool
	// lastPersist throttles progress persistence (unix nanos).
	lastPersist int64
}

// newJobID draws a fresh 128-bit hex job id.
func newJobID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; ids just need
		// uniqueness, so fall back to the clock.
		return fmt.Sprintf("%032x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

func (s *Server) jobCount() int {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	return len(s.jobTab)
}

// persistJob writes the record through to the store, best-effort: a
// replica without a store serves jobs memory-only (no restart survival),
// and a failed write degrades the same way — the job still runs, only its
// record may read as unknown later.
func (s *Server) persistJob(rec store.JobRecord) {
	if s.cfg.Store != nil {
		s.cfg.Store.SaveJob(rec)
	}
}

// jobStatusPayload is the GET /v1/jobs/<id> body (and the 202 body of a
// DELETE on a running job).
type jobStatusPayload struct {
	Job   string `json:"job"`
	Grid  string `json:"grid"`
	State string `json:"state"`
	Done  uint32 `json:"done"`
	Total uint32 `json:"total"`
	// Result is the poll target for the finished bytes, set once the
	// result is fetchable.
	Result string `json:"result,omitempty"`
	Error  string `json:"error,omitempty"`
}

// statusPayload snapshots the job for a poll response. A done record
// whose bytes are not resident (finished before a restart) reports
// "running" while the replay re-materializes them: "done" always means
// the result is fetchable right now.
func (j *job) statusPayload() jobStatusPayload {
	j.mu.Lock()
	defer j.mu.Unlock()
	p := jobStatusPayload{
		Job:   j.id,
		Grid:  j.grid,
		State: j.rec.State.String(),
		Done:  j.rec.Done,
		Total: j.rec.Total,
		Error: j.rec.Error,
	}
	if j.rec.State == store.JobDone && j.body == nil {
		p.State = store.JobRunning.String()
	}
	if p.State == store.JobDone.String() || j.rec.State == store.JobFailed || j.rec.State == store.JobCanceled {
		p.Result = "/v1/jobs/" + j.id + "/result"
	}
	return p
}

func writeJobStatus(w http.ResponseWriter, status int, j *job) {
	body, err := json.MarshalIndent(j.statusPayload(), "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, status, append(body, '\n'))
}

// handleSubmitJob accepts the same body as /v1/eval and answers 202 with
// the job id before any evaluation work starts. The queued record is
// persisted synchronously first, so a crash right after the 202 still
// leaves a recoverable job.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if strings.TrimSpace(req.Grid) == "" {
		writeError(w, http.StatusBadRequest, errors.New("request needs a grid line"))
		return
	}
	line := strings.Join(strings.Fields(req.Grid), " ")
	// Parse up front: a malformed grid fails the submission, not the job.
	grid, err := scenario.ParseGrid(line)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	gps, err := grid.Points()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.jobCount() >= s.cfg.MaxQueuedJobs {
		s.jobsRejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("job table full (%d jobs resident)", s.cfg.MaxQueuedJobs))
		return
	}

	now := time.Now().UnixNano()
	j := &job{id: newJobID(), grid: line}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	j.rec = store.JobRecord{
		ID:      j.id,
		Grid:    line,
		State:   store.JobQueued,
		Total:   uint32(len(gps)),
		Created: now,
		Updated: now,
	}
	s.persistJob(j.rec)
	s.jobsMu.Lock()
	s.jobTab[j.id] = j
	s.jobsMu.Unlock()
	s.jobsSubmitted.Add(1)
	go s.runJob(j)

	body, _ := json.MarshalIndent(struct {
		Job  string `json:"job"`
		Poll string `json:"poll"`
	}{j.id, "/v1/jobs/" + j.id}, "", "  ")
	writeBytes(w, http.StatusAccepted, append(body, '\n'))
}

// runJob drives one job through the shared evaluation path. It blocks for
// a job slot when the queue is full (the 202 already went out) and feeds
// per-point progress back into the record.
func (s *Server) runJob(j *job) {
	progress := func(done, total int) { s.jobProgress(j, done, total) }
	status, body, err := s.evalShared(j.ctx, j.grid, true, s.cfg.JobTimeout, progress)
	if err != nil {
		// Only the job's own ctx can fail a blocking evalShared: the job
		// was canceled while still waiting for a slot.
		status, body = 499, errorBody(errors.New("job canceled before evaluation started"))
	}
	s.finishJob(j, status, body)
}

// jobProgress is the engine's per-point callback: it flips a queued job
// to running, advances the counter monotonically (attached flights and
// retries may re-announce earlier totals), and persists the record at
// most every 250ms so a million-point grid does not turn progress into a
// write storm.
func (s *Server) jobProgress(j *job, done, total int) {
	now := time.Now().UnixNano()
	j.mu.Lock()
	if j.rec.State == store.JobQueued {
		j.rec.State = store.JobRunning
	}
	if j.rec.State != store.JobRunning {
		j.mu.Unlock()
		return
	}
	if uint32(done) > j.rec.Done {
		j.rec.Done = uint32(done)
	}
	if total > 0 {
		j.rec.Total = uint32(total)
	}
	j.rec.Updated = now
	persist := done == 0 || done == total || now-j.lastPersist > int64(250*time.Millisecond)
	if persist {
		j.lastPersist = now
	}
	rec := j.rec
	j.mu.Unlock()
	if persist {
		s.persistJob(rec)
	}
}

// finishJob records the evaluation's outcome. 200 → done, with the
// canonical bytes' content address persisted as the byte-identity witness
// for post-restart replays; 499 → canceled; anything else → failed with
// the status and error retained for replay. A replay's completion only
// re-materializes bytes (and verifies them against the recorded address)
// — it never recounts or re-states the job.
func (s *Server) finishJob(j *job, status int, body []byte) {
	now := time.Now().UnixNano()
	j.mu.Lock()
	if j.replay {
		j.replay = false
		if status == http.StatusOK {
			s.jobsReplayed.Add(1)
			addr := store.Addr(string(body))
			if addr != j.rec.ResultAddr {
				// The warm store no longer reproduces the recorded bytes
				// (pruned entries re-solved under a changed build, say).
				// Serve the fresh bytes — they are what this server computes
				// — but count the broken witness.
				s.jobsReplayMismatch.Add(1)
				j.rec.ResultAddr = addr
				j.rec.Updated = now
			}
			j.status, j.body = status, body
		}
		// A failed replay (canceled, timeout) leaves the record done and
		// the bytes absent; the next poll retries.
		rec := j.rec
		j.mu.Unlock()
		s.persistJob(rec)
		return
	}
	j.status, j.body = status, body
	j.rec.Updated = now
	switch {
	case status == http.StatusOK:
		j.rec.State = store.JobDone
		j.rec.Status = http.StatusOK
		j.rec.Done = j.rec.Total
		j.rec.ResultAddr = store.Addr(string(body))
		s.jobsDone.Add(1)
	case status == 499:
		j.rec.State = store.JobCanceled
		j.rec.Status = 499
		j.rec.Error = errorMessage(body)
		s.jobsCanceled.Add(1)
	default:
		j.rec.State = store.JobFailed
		j.rec.Status = uint16(status)
		j.rec.Error = errorMessage(body)
		s.jobsFailed.Add(1)
	}
	rec := j.rec
	j.mu.Unlock()
	s.persistJob(rec)
}

// errorMessage extracts the message from an errorBody payload, falling
// back to the raw bytes.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// lookupJob finds a job by id: the live table first, then the store's
// records (a record persisted by a previous process is adopted on first
// touch). nil means unknown — lost, expired, corrupt, or never submitted
// — and the client should resubmit.
func (s *Server) lookupJob(id string) *job {
	s.jobsMu.Lock()
	if j, ok := s.jobTab[id]; ok {
		s.jobsMu.Unlock()
		return j
	}
	s.jobsMu.Unlock()
	if s.cfg.Store == nil {
		return nil
	}
	rec, ok := s.cfg.Store.LoadJob(id)
	if !ok {
		return nil
	}
	return s.adoptJob(rec)
}

// adoptJob registers a persisted record as a live job. Non-terminal jobs
// (queued/running when the previous process died) re-dispatch
// immediately; terminal ones sit passive until polled. The live table is
// re-checked under the lock so concurrent adopters converge on one job.
func (s *Server) adoptJob(rec store.JobRecord) *job {
	s.jobsMu.Lock()
	if j, ok := s.jobTab[rec.ID]; ok {
		s.jobsMu.Unlock()
		return j
	}
	j := &job{id: rec.ID, grid: rec.Grid, rec: rec}
	j.ctx, j.cancel = context.WithCancel(context.Background())
	s.jobTab[rec.ID] = j
	s.jobsMu.Unlock()
	s.jobsRecovered.Add(1)
	if !rec.State.Terminal() {
		j.mu.Lock()
		j.rec.State = store.JobQueued
		j.mu.Unlock()
		go s.runJob(j)
	}
	return j
}

// RecoverJobs scans the store's job records, discards terminal jobs older
// than JobRetain, and re-adopts the rest: unfinished jobs resume against
// the warm store, finished ones become replayable. Call once at startup,
// before serving.
func (s *Server) RecoverJobs() int {
	if s.cfg.Store == nil {
		return 0
	}
	n := 0
	for _, id := range s.cfg.Store.Jobs() {
		rec, ok := s.cfg.Store.LoadJob(id)
		if !ok {
			continue // damaged record, already dropped by LoadJob
		}
		if rec.State.Terminal() && time.Since(time.Unix(0, rec.Updated)) > s.cfg.JobRetain {
			s.cfg.Store.DeleteJob(id)
			continue
		}
		s.adoptJob(rec)
		n++
	}
	return n
}

// ensureResult re-materializes the bytes of a done job that finished in a
// previous process (or whose resident bytes were dropped). It tries the
// response-byte cache first — if the canonical bytes for the job's grid
// are still resident AND their content address matches the recorded
// witness, they are adopted synchronously, no replay, no 202 round-trip.
// Otherwise it kicks off the usual async replay through the evaluation
// path. Idempotent: one replay runs at a time.
func (s *Server) ensureResult(j *job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.rec.State != store.JobDone || j.body != nil || j.replay {
		return
	}
	rk, _ := respKeyFor(nil, respKeyPrefix, j.grid)
	if body := s.resp.get(rk); body != nil && store.Addr(string(body)) == j.rec.ResultAddr {
		j.status, j.body = http.StatusOK, body
		return
	}
	j.replay = true
	go s.runJob(j)
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.jobsUnknown.Add(1)
		writeError(w, http.StatusNotFound,
			errors.New("unknown job (lost or expired record): resubmit the grid"))
		return
	}
	s.ensureResult(j)
	writeJobStatus(w, http.StatusOK, j)
}

// handleJobResult serves the finished bytes: 200 with the canonical
// EvalResponse for a done job (byte-identical to the synchronous /v1/eval
// response for the same grid), the recorded failure status and error for
// a failed or canceled job, and 202 with the status payload while the
// evaluation (or a post-restart replay) is still running.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(r.PathValue("id"))
	if j == nil {
		s.jobsUnknown.Add(1)
		writeError(w, http.StatusNotFound,
			errors.New("unknown job (lost or expired record): resubmit the grid"))
		return
	}
	// Before reading state: a byte-cache adoption inside ensureResult lands
	// synchronously, so a done-but-not-resident job whose bytes are still
	// cached answers 200 on this very poll instead of a 202 round-trip.
	s.ensureResult(j)
	j.mu.Lock()
	state, status, body, errMsg := j.rec.State, int(j.rec.Status), j.body, j.rec.Error
	j.mu.Unlock()
	switch {
	case state == store.JobDone && body != nil:
		writeBytes(w, http.StatusOK, body)
	case state == store.JobFailed || state == store.JobCanceled:
		if status == 0 {
			status = http.StatusInternalServerError
		}
		writeError(w, status, errors.New(errMsg))
	default:
		writeJobStatus(w, http.StatusAccepted, j)
	}
}

// handleCancelJob cancels a running or queued job through the flight
// cancellation path (202: cancellation lands at the solver's next phase
// boundary, or immediately if the job still waits for a slot) and
// discards a terminal job's record entirely (204).
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		s.jobsUnknown.Add(1)
		writeError(w, http.StatusNotFound,
			errors.New("unknown job (lost or expired record): resubmit the grid"))
		return
	}
	j.mu.Lock()
	terminal := j.rec.State.Terminal()
	j.mu.Unlock()
	if terminal {
		s.jobsMu.Lock()
		delete(s.jobTab, id)
		s.jobsMu.Unlock()
		if s.cfg.Store != nil {
			s.cfg.Store.DeleteJob(id)
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	j.cancel()
	writeJobStatus(w, http.StatusAccepted, j)
}
