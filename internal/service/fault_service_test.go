package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/remotestore"
	"repro/internal/scenario"
	"repro/internal/store"
)

// cancelEval parks until the run's Cancel channel fires — the
// deterministic probe for context propagation through the whole stack
// (request → flight → engine → EvalContext).
type cancelEval struct{}

var cancelEntered = make(chan struct{}, 16)

func (cancelEval) Spec() string { return "testcancel" }

func (cancelEval) Evaluate(ctx *scenario.EvalContext) (float64, error) {
	cancelEntered <- struct{}{}
	select {
	case <-ctx.Cancel:
		return 0, errors.New("solve aborted by cancellation")
	case <-time.After(30 * time.Second):
		return 0, errors.New("cancellation never propagated")
	}
}

// wedgeEval parks until released — a solver that hangs forever, for the
// /healthz wedge detector.
type wedgeEval struct{}

var (
	wedgeEntered = make(chan struct{}, 16)
	wedgeRelease = make(chan struct{})
	wedgeOnce    sync.Once
)

func (wedgeEval) Spec() string { return "testwedge" }

func (wedgeEval) Evaluate(ctx *scenario.EvalContext) (float64, error) {
	wedgeEntered <- struct{}{}
	<-wedgeRelease
	return 1, nil
}

func init() {
	scenario.RegisterEvaluator("testcancel", func(p scenario.Params) (scenario.Evaluator, error) {
		return cancelEval{}, p.Reader().Err()
	})
	scenario.RegisterEvaluator("testwedge", func(p scenario.Params) (scenario.Evaluator, error) {
		return wedgeEval{}, p.Reader().Err()
	})
}

// putEntry PUTs raw TBRS bytes and returns the status.
func putEntry(t *testing.T, url, addr string, body []byte) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url+"/v1/result/"+addr, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", remotestore.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// getRaw GETs a result in the raw TBRS representation.
func getRaw(t *testing.T, url, addr string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/result/"+addr, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", remotestore.ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestPutAndRawGet: the peer-replication wire — a CRC-verified PUT lands
// in the store, the raw GET returns byte-identical codec bytes, and every
// malformed upload is rejected before touching disk.
func TestPutAndRawGet(t *testing.T) {
	srv, hs := newTestServer(t, t.TempDir(), 4)
	vals := []float64{3.25, -1, 0.5}
	addr := store.Addr("pushed point")
	entry := store.EncodeValues(vals)

	if status := putEntry(t, hs.URL, addr, entry); status != http.StatusNoContent {
		t.Fatalf("PUT: %d", status)
	}
	if got, ok := srv.cfg.Store.LoadAddr(addr); !ok || got[2] != 0.5 {
		t.Fatalf("PUT did not land in the store: %v %v", got, ok)
	}
	status, raw := getRaw(t, hs.URL, addr)
	if status != http.StatusOK || !bytes.Equal(raw, entry) {
		t.Fatalf("raw GET: %d, %d bytes (want the exact %d-byte entry)", status, len(raw), len(entry))
	}
	// The JSON representation still serves for humans.
	if status, body := get(t, hs.URL+"/v1/result/"+addr); status != http.StatusOK || !strings.Contains(string(body), "3.25") {
		t.Fatalf("JSON GET: %d %s", status, body)
	}

	// Corruption at the network boundary: flipped bit, truncation, garbage,
	// and a malformed address are all rejected; the store is untouched.
	flipped := append([]byte(nil), entry...)
	flipped[len(flipped)-2] ^= 0x08
	for name, put := range map[string]struct {
		addr string
		body []byte
		want int
	}{
		"bitflip":   {store.Addr("other"), flipped, http.StatusBadRequest},
		"truncated": {store.Addr("other"), entry[:len(entry)/2], http.StatusBadRequest},
		"garbage":   {store.Addr("other"), []byte("junk"), http.StatusBadRequest},
		"badaddr":   {"not-an-address", entry, http.StatusBadRequest},
	} {
		if status := putEntry(t, hs.URL, put.addr, put.body); status != put.want {
			t.Fatalf("%s: %d, want %d", name, status, put.want)
		}
	}
	if _, ok := srv.cfg.Store.LoadAddr(store.Addr("other")); ok {
		t.Fatal("a rejected PUT reached the store")
	}
	if got := metric(t, hs.URL, "result_puts_rejected_total"); got != 4 {
		t.Fatalf("rejected-put metric: %d, want 4", got)
	}

	// Without a store there is nothing to accept into.
	_, hsNoStore := newTestServer(t, "", 4)
	if status := putEntry(t, hsNoStore.URL, addr, entry); status != http.StatusNotImplemented {
		t.Fatalf("PUT without store: %d", status)
	}
}

// TestRequestTimeoutAnswers504: a solve that outlives RequestTimeout is
// aborted through the context chain and reported as a gateway timeout.
func TestRequestTimeoutAnswers504(t *testing.T) {
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 2, RequestTimeout: 60 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	status, body := postEval(t, hs.URL, "topo=rrg:n=8,deg=3 traffic=none eval=testcancel runs=1 seed=1")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s", status, body)
	}
	<-cancelEntered // drain the signal
	if got := metric(t, hs.URL, "eval_timeouts_total"); got != 1 {
		t.Fatalf("timeout metric: %d", got)
	}
	// The slot is free again: a quick grid serves normally.
	if status, body := postEval(t, hs.URL, testGridQuick); status != http.StatusOK {
		t.Fatalf("post-timeout eval: %d %s", status, body)
	}
}

// TestDisconnectCancelsSolve: when the only client requesting a grid goes
// away, the in-flight solve is aborted and its job slot freed — a dropped
// connection cannot strand solver work.
func TestDisconnectCancelsSolve(t *testing.T) {
	_, hs := newTestServer(t, "", 1) // ONE slot: a leak would wedge the server
	grid := "topo=rrg:n=8,deg=4 traffic=none eval=testcancel runs=1 seed=1"

	body, _ := json.Marshal(EvalRequest{Grid: grid})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.URL+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-cancelEntered // the solve is running and parked on its Cancel channel
	cancel()        // the client hangs up
	if err := <-errc; err == nil {
		t.Fatal("canceled request reported success")
	}

	// The abort propagates and the slot frees: the next (distinct) eval on
	// the single-slot server must be accepted and succeed.
	deadline := time.After(10 * time.Second)
	for {
		status, _ := postEval(t, hs.URL, testGridQuick)
		if status == http.StatusOK {
			break
		}
		select {
		case <-deadline:
			t.Fatal("job slot never freed after client disconnect")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if got := metric(t, hs.URL, "eval_canceled_total"); got != 1 {
		t.Fatalf("canceled metric: %d", got)
	}
}

// TestHealthzDegradedAndWedged walks the health ladder: ok → degraded
// (remote tier failing; still 200, still serving) → wedged (job queue
// full with no progress; 503).
func TestHealthzDegradedAndWedged(t *testing.T) {
	// Degraded: a remote client that has just failed against a dead peer.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	remote := remotestore.New(remotestore.Options{BaseURL: deadURL, Attempts: 1, Timeout: 200 * time.Millisecond})

	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 1, Remote: remote, WedgeAfter: 60 * time.Millisecond})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	var rep struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons"`
	}
	check := func(wantStatus int, wantState string) {
		t.Helper()
		status, body := get(t, hs.URL+"/healthz")
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("healthz body %q: %v", body, err)
		}
		if status != wantStatus || rep.Status != wantState {
			t.Fatalf("healthz: %d %s, want %d %s", status, body, wantStatus, wantState)
		}
	}

	check(http.StatusOK, "ok")
	remote.Load("some key") // fails against the dead peer → recent errors
	check(http.StatusOK, "degraded")
	if len(rep.Reasons) == 0 {
		t.Fatal("degraded report carries no reasons")
	}

	// Wedged: the one slot is stuck in a parked solve with no turnover.
	// (Raw POST, not the postEval helper — t.Fatal is off-limits in a
	// goroutine, and this request only returns once the test releases it.)
	go func() {
		body := strings.NewReader(`{"grid": "topo=rrg:n=8,deg=3 traffic=none eval=testwedge runs=1 seed=1"}`)
		if resp, err := http.Post(hs.URL+"/v1/eval", "application/json", body); err == nil {
			resp.Body.Close()
		}
	}()
	<-wedgeEntered
	time.Sleep(100 * time.Millisecond) // exceed WedgeAfter with the queue full
	status, body := get(t, hs.URL+"/healthz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("wedged healthz: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil || rep.Status != "wedged" {
		t.Fatalf("wedged report: %s", body)
	}
	wedgeOnce.Do(func() { close(wedgeRelease) })
}

// chaosGrids are the workload of the fleet tests — small enough to solve
// in milliseconds, varied enough to cover mcf and structural evaluators
// plus a sweep.
var chaosGrids = []string{
	"topo=rrg:n=12,deg=4,sps=2 traffic=permutation eval=mcf runs=2 eps=0.2 seed=3",
	"topo=rrg:n=10,deg=3,sps=1 traffic=permutation eval=aspl runs=2 seed=1",
	"topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=aspl sweep=deg:3..5 runs=2 seed=2",
}

// referenceBytes evaluates every chaos grid on a fresh, clean,
// single-process engine — the ground truth the fleet must match.
func referenceBytes(t *testing.T) map[string][]byte {
	t.Helper()
	ref := map[string][]byte{}
	for _, grid := range chaosGrids {
		resp, err := EvalGrid(&scenario.Engine{Parallel: 1, SkipInfeasible: true}, grid, Defaults{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := resp.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		ref[grid] = b
	}
	return ref
}

// TestChaosFleetByteIdentical is the chaos smoke: replica B shares
// results with replica A over a fault-injected wire (20% transport
// errors, 5% corrupted payloads, injected latency). Every response B
// serves must be byte-identical to a clean single-process evaluation —
// faults may cost retries and duplicate solves, never wrong bytes, and
// must never surface as request errors.
func TestChaosFleetByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver evaluation; skipped in -short")
	}
	ref := referenceBytes(t)

	// Replica A: a healthy peer with a persistent store, pre-warmed with
	// the first grid so B exercises the remote-hit path, not just misses.
	_, hsA := newTestServer(t, t.TempDir(), 8)
	if status, body := postEval(t, hsA.URL, chaosGrids[0]); status != http.StatusOK {
		t.Fatalf("warming A: %d %s", status, body)
	}

	// Replica B: its remote tier speaks to A through the fault injector.
	fcfg, err := faultinject.ParseSpec("seed=11,error=0.2,corrupt=0.05,latency=200us,latencyprob=0.3")
	if err != nil {
		t.Fatal(err)
	}
	remote := remotestore.New(remotestore.Options{
		BaseURL:   hsA.URL,
		Transport: faultinject.NewTransport(nil, fcfg),
		Timeout:   2 * time.Second,
		// A small breaker so the chaos run also exercises open/half-open
		// transitions under the 20% error rate.
		BreakerThreshold: 3, BreakerCooldown: 50 * time.Millisecond,
	})
	diskB, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := store.NewTiered(diskB, remote, store.TieredOptions{})
	cacheB := scenario.NewCache()
	cacheB.SetBackend(tiered)
	engB := &scenario.Engine{Parallel: 2, Cache: cacheB, SkipInfeasible: true}
	srvB := New(Config{Engine: engB, Cache: cacheB, Store: diskB, MaxJobs: 8, Remote: remote, Tiered: tiered})
	hsB := httptest.NewServer(srvB.Handler())
	t.Cleanup(hsB.Close)

	// Three passes over every grid: cold (remote hits + local solves under
	// faults), then warm replays (disk hits) — all byte-identical to the
	// clean reference, all 200s.
	for pass := 0; pass < 3; pass++ {
		for _, grid := range chaosGrids {
			status, body := postEval(t, hsB.URL, grid)
			if status != http.StatusOK {
				t.Fatalf("pass %d grid %q: status %d %s — faults must degrade, never error", pass, grid, status, body)
			}
			if !bytes.Equal(body, ref[grid]) {
				t.Fatalf("pass %d grid %q: response differs from the clean reference\n--- fleet ---\n%s--- reference ---\n%s",
					pass, grid, body, ref[grid])
			}
		}
	}

	rs := remote.Stats()
	if rs.Loads == 0 {
		t.Fatal("chaos run never touched the remote tier")
	}
	if rs.Failures == 0 {
		t.Fatalf("fault injector injected nothing (stats %+v) — the chaos run tested a calm sea", rs)
	}
	t.Logf("chaos: %d loads (%d hits), %d failures, %d retries, %d corrupt, %d breaker opens, %d short circuits",
		rs.Loads, rs.LoadHits, rs.Failures, rs.Retries, rs.Corrupt, rs.BreakerOpens, rs.ShortCircuits)
}

// TestExactlyOnceColdSolveSharedPool: with faults off and claim leases
// on, two replicas sharing one store directory that are hit with the same
// cold grid concurrently solve each point exactly once fleet-wide.
func TestExactlyOnceColdSolveSharedPool(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver evaluation; skipped in -short")
	}
	dir := t.TempDir()
	grid := chaosGrids[2] // 3-point sweep
	const points = 3

	type replica struct {
		st *store.Store
		hs *httptest.Server
	}
	mk := func(owner string) replica {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		tiered := store.NewTiered(st, nil, store.TieredOptions{
			LeaseTTL: 10 * time.Second, Poll: 2 * time.Millisecond, Owner: owner,
		})
		cache := scenario.NewCache()
		cache.SetBackend(tiered)
		eng := &scenario.Engine{Parallel: 2, Cache: cache, SkipInfeasible: true}
		srv := New(Config{Engine: eng, Cache: cache, Store: st, MaxJobs: 4, Tiered: tiered})
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		return replica{st: st, hs: hs}
	}
	a, b := mk("replica-a"), mk("replica-b")

	type result struct {
		status int
		body   []byte
	}
	results := make(chan result, 2)
	for _, r := range []replica{a, b} {
		go func(url string) {
			st, body := postEval(t, url, grid)
			results <- result{st, body}
		}(r.hs.URL)
	}
	ra, rb := <-results, <-results
	if ra.status != http.StatusOK || rb.status != http.StatusOK {
		t.Fatalf("statuses: %d / %d", ra.status, rb.status)
	}
	if !bytes.Equal(ra.body, rb.body) {
		t.Fatal("replicas answered different bytes for the same grid")
	}

	wa, wb := a.st.Stats().Writes, b.st.Stats().Writes
	if wa+wb != points {
		t.Fatalf("fleet-wide cold solves: %d writes (A=%d B=%d), want exactly %d — claims failed to dedup", wa+wb, wa, wb, points)
	}
}
