// Package service is the HTTP face of the scenario engine: a
// topology-evaluation daemon (`topobench serve`) answering declarative
// grid requests from the tiered solve cache, solving only what no process
// has solved before.
//
// API (JSON unless noted):
//
//	POST /v1/eval          {"grid": "topo=... traffic=... eval=... sweep=..."}
//	                       → EvalResponse: per-point coords, content
//	                       address, summary stats, and raw run values.
//	GET  /v1/result/<key>  one stored result by content address (hex
//	                       SHA-256 of the point key) → 404 if absent.
//	GET  /v1/scenarios     the three registries (topologies, traffics,
//	                       evaluators).
//	GET  /healthz          liveness probe ("ok").
//	GET  /metrics          Prometheus text: cache/store hit/miss/bytes,
//	                       request/rejection/dedup counters.
//
// Identical grids requested concurrently are deduplicated in flight
// (singleflight): one evaluation runs, every waiter gets its bytes.
// Admission is a bounded job queue — when MaxJobs evaluations are already
// in flight, new distinct grids are rejected with 429 Too Many Requests
// and a Retry-After hint, so overload degrades by backpressure instead of
// queue collapse. Responses are canonically marshaled, so a warm replay
// of a grid is byte-identical to the cold response (`topobench -scenario
// -json` emits the same encoding for offline comparison).
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Config wires a Server. Engine and Cache normally share the same tiered
// cache; Store is the cache's durable tier (nil for memory-only serving).
type Config struct {
	Engine *scenario.Engine
	Cache  *scenario.Cache
	Store  *store.Store
	// MaxJobs bounds eval requests in flight (executing, not waiting on an
	// identical flight); further distinct grids get 429. <= 0 means
	// 2·GOMAXPROCS.
	MaxJobs int
	// StoreMaxBytes, when > 0, prunes the store to this LRU byte budget
	// after each evaluation.
	StoreMaxBytes int64
	// Defaults fill grid run controls the request line leaves unset.
	Defaults Defaults
}

// Server handles the evaluation API. Create with New.
type Server struct {
	cfg  Config
	jobs chan struct{}

	mu      sync.Mutex
	flights map[string]*flight

	requests atomic.Int64
	rejected atomic.Int64
	shared   atomic.Int64
}

// flight is one in-progress evaluation; waiters replay its bytes.
type flight struct {
	done   chan struct{}
	status int
	body   []byte
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2 * runtime.GOMAXPROCS(0)
	}
	return &Server{
		cfg:     cfg,
		jobs:    make(chan struct{}, cfg.MaxJobs),
		flights: map[string]*flight{},
	}
}

// Handler returns the service's route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// EvalRequest is the POST /v1/eval body.
type EvalRequest struct {
	// Grid is a scenario grid line, the same grammar as `topobench
	// -scenario` (see scenario.ParseGrid).
	Grid string `json:"grid"`
}

// PointResult is one grid point of an EvalResponse.
type PointResult struct {
	// Coords are the point's sweep-axis values, in axis order.
	Coords []string `json:"coords,omitempty"`
	// Key is the point's content address — the hex SHA-256 of its cache
	// key, usable with GET /v1/result/<key>.
	Key string `json:"key"`
	// OK is false when the point was infeasible and skipped.
	OK   bool    `json:"ok"`
	Runs int     `json:"runs"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Values are the raw per-run values, in run order.
	Values []float64 `json:"values,omitempty"`
}

// EvalResponse is the POST /v1/eval result.
type EvalResponse struct {
	Grid   string        `json:"grid"`
	Points []PointResult `json:"points"`
}

// Defaults fill run controls a grid line leaves unset, mirroring the
// topobench flag semantics (values inside the line always win). A zero
// Seed defaults to 1 either way, so a line and its explicit-seed twin
// address the same cache entries.
type Defaults struct {
	Runs    int
	Seed    int64
	Epsilon float64
}

// ErrBadRequest marks EvalGrid errors caused by the request (grammar,
// unknown kinds) rather than by evaluation itself.
var ErrBadRequest = errors.New("bad eval request")

// EvalGrid parses and evaluates one grid line on the engine and builds
// the canonical response. It is the single evaluation path shared by the
// HTTP handler and `topobench -scenario -json`, so their bytes agree.
func EvalGrid(eng *scenario.Engine, line string, def Defaults) (*EvalResponse, error) {
	line = strings.Join(strings.Fields(line), " ")
	grid, err := scenario.ParseGrid(line)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if grid.Runs == 0 {
		grid.Runs = def.Runs
	}
	if grid.Seed == 0 {
		grid.Seed = def.Seed
	}
	if grid.Seed == 0 {
		grid.Seed = 1
	}
	if grid.Epsilon == 0 {
		grid.Epsilon = def.Epsilon
	}
	gps, err := grid.Points()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	pts := make([]scenario.Point, len(gps))
	for i, gp := range gps {
		pts[i] = gp.Point
	}
	vals, err := eng.MeasureRuns(pts)
	if err != nil {
		return nil, err
	}
	resp := &EvalResponse{Grid: line, Points: make([]PointResult, len(gps))}
	for i, gp := range gps {
		st := scenario.Summarize(vals[i])
		resp.Points[i] = PointResult{
			Coords: gp.Coords,
			Key:    store.Addr(gp.Key()),
			OK:     st.OK,
			Runs:   st.Runs,
			Mean:   st.Mean, Std: st.Std, Min: st.Min, Max: st.Max,
			Values: vals[i],
		}
	}
	return resp, nil
}

// MarshalCanonical renders the response in its one true byte form —
// indented JSON plus trailing newline — so equal results are equal bytes
// across processes, machines, and transports.
func (r *EvalResponse) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req EvalRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if strings.TrimSpace(req.Grid) == "" {
		writeError(w, http.StatusBadRequest, errors.New("request needs a grid line"))
		return
	}
	key := strings.Join(strings.Fields(req.Grid), " ")

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		// An identical grid is already evaluating: wait for its bytes
		// instead of competing for a job slot.
		s.mu.Unlock()
		s.shared.Add(1)
		<-f.done
		writeBytes(w, f.status, f.body)
		return
	}
	select {
	case s.jobs <- struct{}{}:
	default:
		s.mu.Unlock()
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("evaluation queue full (%d jobs in flight)", cap(s.jobs)))
		return
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	// Cleanup must survive a panicking evaluation (net/http recovers
	// handler panics): an undeleted flight would wedge every future
	// request for this grid on <-f.done, and an unreleased job slot would
	// shrink the queue permanently.
	defer func() {
		s.mu.Lock()
		delete(s.flights, key)
		s.mu.Unlock()
		close(f.done)
		<-s.jobs
	}()
	f.status, f.body = s.evaluate(key)
	writeBytes(w, f.status, f.body)
}

// evaluate runs one deduplicated grid evaluation and renders its bytes.
// A panicking evaluator is reported as a 500, not a dropped connection.
func (s *Server) evaluate(line string) (status int, body []byte) {
	defer func() {
		if r := recover(); r != nil {
			status = http.StatusInternalServerError
			body = errorBody(fmt.Errorf("evaluation panicked: %v", r))
		}
	}()
	resp, err := EvalGrid(s.cfg.Engine, line, s.cfg.Defaults)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrBadRequest) {
			status = http.StatusBadRequest
		}
		return status, errorBody(err)
	}
	if s.cfg.Store != nil && s.cfg.StoreMaxBytes > 0 {
		s.cfg.Store.Prune(s.cfg.StoreMaxBytes)
	}
	body, err = resp.MarshalCanonical()
	if err != nil {
		return http.StatusInternalServerError, errorBody(err)
	}
	return http.StatusOK, body
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, errors.New("no result store attached (serve with -cache-dir)"))
		return
	}
	key := r.PathValue("key")
	vals, ok := s.cfg.Store.LoadAddr(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result under %s", key))
		return
	}
	body, err := json.MarshalIndent(struct {
		Key    string    `json:"key"`
		Values []float64 `json:"values"`
	}{key, vals}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, http.StatusOK, append(body, '\n'))
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	body, err := json.MarshalIndent(struct {
		Topologies []string `json:"topologies"`
		Traffics   []string `json:"traffics"`
		Evaluators []string `json:"evaluators"`
	}{scenario.TopologyKinds(), scenario.TrafficKinds(), scenario.EvaluatorKinds()}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, http.StatusOK, append(body, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g := func(name string, v int64) {
		fmt.Fprintf(w, "topobench_%s %d\n", name, v)
	}
	if c := s.cfg.Cache; c != nil {
		st := c.Stats()
		g("cache_hits_total", st.Hits)
		g("cache_store_hits_total", st.StoreHits)
		g("cache_misses_total", st.Misses)
		g("cache_store_errors_total", st.StoreErrs)
		g("cache_entries", int64(st.Entries))
	}
	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		g("store_hits_total", ss.Hits)
		g("store_misses_total", ss.Misses)
		g("store_writes_total", ss.Writes)
		g("store_corrupt_total", ss.Corrupt)
		g("store_evicted_total", ss.Evicted)
		g("store_entries", int64(ss.Entries))
		g("store_bytes", ss.Bytes)
	}
	g("eval_requests_total", s.requests.Load())
	g("eval_rejected_total", s.rejected.Load())
	g("eval_shared_total", s.shared.Load())
	g("eval_inflight", int64(len(s.jobs)))
}

func writeBytes(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(body)
}

func errorBody(err error) []byte {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{err.Error()})
	return append(body, '\n')
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeBytes(w, status, errorBody(err))
}
