// Package service is the HTTP face of the scenario engine: a
// topology-evaluation daemon (`topobench serve`) answering declarative
// grid requests from the tiered solve cache, solving only what no process
// has solved before.
//
// API (JSON unless noted):
//
//	POST /v1/eval          {"grid": "topo=... traffic=... eval=... sweep=..."}
//	                       → EvalResponse: per-point coords, content
//	                       address, summary stats, and raw run values.
//	POST /v1/jobs          same body → 202 {"job": id, "poll": path}: the
//	                       grid evaluates asynchronously; the job record
//	                       is persisted in the result store and survives
//	                       restart (see handleSubmitJob in jobs.go).
//	GET  /v1/jobs/<id>     job status: state, progress (done/total
//	                       points), result address once done.
//	GET  /v1/jobs/<id>/result
//	                       the finished job's canonical EvalResponse
//	                       bytes (202 + status while still running).
//	DELETE /v1/jobs/<id>   cancel a running job (202) or discard a
//	                       terminal one (204).
//	GET  /v1/result/<key>  one stored result by content address (hex
//	                       SHA-256 of the point key) → 404 if absent.
//	                       Carries a strong, representation-versioned
//	                       ETag; If-None-Match revalidation answers 304
//	                       without touching the store (content addresses
//	                       are immutable).
//	GET  /v1/scenarios     the three registries (topologies, traffics,
//	                       evaluators).
//	GET  /healthz          liveness probe ("ok").
//	GET  /metrics          Prometheus text: cache/store hit/miss/bytes,
//	                       request/rejection/dedup counters, response-
//	                       byte-cache counters, and a request-latency
//	                       histogram (topobench_request_seconds, split
//	                       by route class: eval, result, jobs, other).
//	GET  /debug/traces     recently completed traces from the tracer's
//	                       ring, newest first (?min=250ms filters by
//	                       duration). 404 when serving without a Tracer.
//
// # Observability
//
// With Config.Tracer set, requests are traced end to end (internal/
// trace): a request is sampled by the tracer's 1-in-N counter gate, or
// unconditionally when it carries a sampled W3C `traceparent` header —
// which is how a peer replica's result fetch joins the originating
// request's trace across processes. A sampled request gets a root span
// named after its method and path, its trace id echoed in the
// `X-Trace-Id` response header, and child spans for flight
// attach/lead, solve-cache tiers (memory/disk/peer), claim-lease
// waits, warm-start preparation/certification, and per-solve phase
// breakdowns (mcf.solve). Completed traces land in the tracer's
// fixed-size ring, served by GET /debug/traces.
//
// Sampling is decided once, at the root: an unsampled request runs the
// exact same instrumented code with inert zero spans and allocates
// nothing extra, so the warm dataplane's alloc budget holds at any
// sampling rate (TestWarmEvalAllocsTraced pins this). Requests at or
// over the tracer's slow threshold are always captured — post hoc,
// with a freshly minted trace id, when head sampling skipped them —
// and logged through Config.Logger with their route, grid, duration,
// response source, and trace id.
//
// Identical grids requested concurrently are deduplicated in flight
// (singleflight): one evaluation runs, every waiter gets its bytes.
// Warm grids are answered from a content-addressed response-byte cache
// (bytecache.go) — canonical bytes, no re-marshal, zero-alloc request
// loop — sized by Config.RespCacheMaxBytes.
// Admission is a bounded job queue — when MaxJobs evaluations are already
// in flight, new distinct grids are rejected with 429 Too Many Requests
// and a Retry-After hint, so overload degrades by backpressure instead of
// queue collapse. Responses are canonically marshaled, so a warm replay
// of a grid is byte-identical to the cold response (`topobench -scenario
// -json` emits the same encoding for offline comparison).
//
// The service is hardened to be a safe fleet peer (see the repo's "Fault
// tolerance" doc section): every handler runs under panic-recovery
// middleware (a bug answers 500, the daemon survives); each evaluation
// runs under its request's context — plus an optional RequestTimeout —
// so a disconnected client aborts its solve at the next phase boundary
// instead of burning a queue slot (a singleflighted evaluation aborts
// only once EVERY attached request is gone); GET /v1/result/<key> serves
// raw TBRS codec bytes to peers that ask (Accept: application/x-tbrs) and
// PUT /v1/result/<key> accepts them, CRC-verified before anything touches
// the store; /healthz reports degraded state (remote-tier errors, open
// circuit breaker) and 503 only when the job queue is wedged; and
// /metrics exposes the breaker/retry/claim counters alongside the cache
// and store ones.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/remotestore"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config wires a Server. Engine and Cache normally share the same tiered
// cache; Store is the cache's durable tier (nil for memory-only serving).
type Config struct {
	Engine *scenario.Engine
	Cache  *scenario.Cache
	Store  *store.Store
	// MaxJobs bounds eval requests in flight (executing, not waiting on an
	// identical flight); further distinct grids get 429. <= 0 means
	// 2·GOMAXPROCS.
	MaxJobs int
	// StoreMaxBytes, when > 0, prunes the store to this LRU byte budget
	// after each evaluation.
	StoreMaxBytes int64
	// Defaults fill grid run controls the request line leaves unset.
	Defaults Defaults
	// Remote, when the cache has a remote tier, surfaces its breaker and
	// retry counters on /metrics and drives the degraded /healthz state.
	Remote *remotestore.Client
	// Tiered, when the store is fronted by store.Tiered, surfaces its
	// hit/promotion/claim counters on /metrics.
	Tiered *store.Tiered
	// RequestTimeout bounds each evaluation's wall clock (0 = unbounded);
	// expiry aborts the solve at its next phase boundary and answers 504.
	RequestTimeout time.Duration
	// WedgeAfter is how long the job queue may sit full with no slot
	// acquired or released before /healthz reports wedged (503).
	// 0 means 5 minutes.
	WedgeAfter time.Duration
	// JobTimeout bounds one async job's evaluation wall clock (0 =
	// unbounded). Async jobs deliberately do NOT inherit RequestTimeout:
	// outliving a connection-scale deadline is their reason to exist.
	JobTimeout time.Duration
	// JobRetain is how long a terminal job's record is kept before the
	// recovery sweep discards it. 0 means 24 hours.
	JobRetain time.Duration
	// MaxQueuedJobs bounds async jobs resident at once (queued + running +
	// finished-but-retained); submissions beyond it get 429. <= 0 means
	// 16·MaxJobs.
	MaxQueuedJobs int
	// RespCacheMaxBytes bounds the response-byte cache (bytecache.go): the
	// canonical response bytes of previously-answered grids, served with
	// zero re-marshal on hit and evicted LRU beyond the budget. 0 means
	// 64 MiB; negative disables the cache.
	RespCacheMaxBytes int64
	// Tracer, when non-nil, enables request tracing (see the package
	// Observability section). nil keeps every trace entry point inert, so
	// the dataplane is untouched.
	Tracer *trace.Tracer
	// Logger receives the service's structured log lines (currently the
	// slow-request line). nil discards.
	Logger *slog.Logger
}

// Server handles the evaluation API. Create with New.
type Server struct {
	cfg  Config
	jobs chan struct{}
	// resp caches canonical response bytes by versioned content address —
	// the warm dataplane (see bytecache.go).
	resp *respCache
	// hists are the per-route-class request-latency histograms behind
	// topobench_request_seconds on /metrics, indexed by route class.
	hists [numRoutes]reqHist
	// log is cfg.Logger, resolved to a discard logger when nil so call
	// sites never branch.
	log *slog.Logger

	mu      sync.Mutex
	flights map[string]*flight

	// jobsMu guards jobTab, the in-memory registry of async jobs (the
	// durable truth lives in the store's job records; jobTab adds the live
	// cancel funcs and resident result bytes).
	jobsMu sync.Mutex
	jobTab map[string]*job

	jobsSubmitted      atomic.Int64
	jobsDone           atomic.Int64
	jobsFailed         atomic.Int64
	jobsCanceled       atomic.Int64
	jobsRejected       atomic.Int64
	jobsRecovered      atomic.Int64
	jobsReplayed       atomic.Int64
	jobsReplayMismatch atomic.Int64
	jobsUnknown        atomic.Int64

	requests atomic.Int64
	rejected atomic.Int64
	shared   atomic.Int64
	panics   atomic.Int64
	timeouts atomic.Int64
	canceled atomic.Int64
	puts     atomic.Int64
	putBad   atomic.Int64
	sampled  atomic.Int64
	slowReqs atomic.Int64
	// lastSlot is the unix-nano time a job slot last changed hands — the
	// liveness signal behind /healthz wedge detection.
	lastSlot atomic.Int64
}

// flight is one in-progress evaluation; waiters replay its bytes. The
// evaluation runs under the flight's context, which is canceled only when
// every attached request has gone away (or RequestTimeout expires), so one
// impatient client never aborts a solve other waiters still want.
type flight struct {
	done    chan struct{}
	status  int
	body    []byte
	ctx     context.Context
	cancel  context.CancelFunc
	waiters atomic.Int64
}

func newFlight(timeout time.Duration) *flight {
	f := &flight{done: make(chan struct{})}
	if timeout > 0 {
		f.ctx, f.cancel = context.WithTimeout(context.Background(), timeout)
	} else {
		f.ctx, f.cancel = context.WithCancel(context.Background())
	}
	return f
}

// attach ties one request's lifetime to the flight: the flight's context
// is canceled only once EVERY attached request is gone and the evaluation
// has not already completed.
func (f *flight) attach(rctx context.Context) {
	f.waiters.Add(1)
	go func() {
		select {
		case <-rctx.Done():
		case <-f.done:
		}
		if f.waiters.Add(-1) == 0 {
			select {
			case <-f.done: // completed: nothing left to cancel
			default:
				f.cancel()
			}
		}
	}()
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.WedgeAfter <= 0 {
		cfg.WedgeAfter = 5 * time.Minute
	}
	if cfg.JobRetain <= 0 {
		cfg.JobRetain = 24 * time.Hour
	}
	if cfg.MaxQueuedJobs <= 0 {
		cfg.MaxQueuedJobs = 16 * cfg.MaxJobs
	}
	if cfg.RespCacheMaxBytes == 0 {
		cfg.RespCacheMaxBytes = 64 << 20
	}
	s := &Server{
		cfg:     cfg,
		resp:    newRespCache(cfg.RespCacheMaxBytes),
		jobs:    make(chan struct{}, cfg.MaxJobs),
		flights: map[string]*flight{},
		jobTab:  map[string]*job{},
		log:     cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	s.lastSlot.Store(time.Now().UnixNano())
	return s
}

// Handler returns the service's routes wrapped in panic-recovery
// middleware: a handler bug answers 500 (when nothing was written yet) and
// increments topobench_eval_panics_total; the daemon survives.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/eval", s.handleEval)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/result/{key}", s.handleResult)
	mux.HandleFunc("PUT /v1/result/{key}", s.handlePutResult)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return s.timing(s.recoverer(mux))
}

// timing is the outermost middleware: it classifies the request's route,
// feeds its wall clock into that route's latency histogram, and owns the
// trace lifecycle — deciding sampling once at the root (the counter gate,
// or unconditionally on an incoming sampled traceparent so a peer's
// request joins its caller's trace), echoing X-Trace-Id, committing the
// finished trace to the ring, and capturing slow-but-unsampled requests
// post hoc so the always-sample-slow rule holds either way. It wraps the
// recoverer, so panicking (recovered) requests are observed too.
//
// The unsampled path costs one atomic counter increment and allocates
// nothing, preserving the warm dataplane's alloc budget at any sampling
// rate.
func (s *Server) timing(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt := routeClass(r.URL.Path)
		t := s.cfg.Tracer
		var parent trace.TraceID
		var remote trace.SpanID
		sampled := false
		if t != nil {
			if h := r.Header.Get("traceparent"); h != "" {
				if tid, sid, flag, ok := trace.ParseTraceparent(h); ok {
					parent, remote = tid, sid
					sampled = flag
				}
			}
			sampled = sampled || t.SampleNext()
		}
		if !sampled {
			start := time.Now()
			next.ServeHTTP(w, r)
			dur := time.Since(start)
			s.hists[rt].observe(dur)
			if slow := t.Slow(); slow > 0 && dur >= slow {
				s.slowReqs.Add(1)
				// A handler that already captured its own slow trace (the
				// eval path, which knows the grid) set X-Trace-Id; don't
				// mint a second trace for the same request.
				if _, done := w.Header()["X-Trace-Id"]; !done {
					id := t.Capture(r.Method+" "+r.URL.Path, start, dur)
					s.log.Warn("slow request",
						"route", routeNames[rt], "method", r.Method, "path", r.URL.Path,
						"duration", dur, "trace", id.String())
				}
			}
			return
		}
		s.sampled.Add(1)
		tr := t.Start(parent, remote)
		w.Header()["X-Trace-Id"] = []string{tr.ID().String()}
		root := tr.Root(r.Method + " " + r.URL.Path)
		r = r.WithContext(trace.ContextWithSpan(r.Context(), root))
		start := time.Now()
		next.ServeHTTP(w, r)
		dur := time.Since(start)
		root.End()
		slow := t.Slow() > 0 && dur >= t.Slow()
		t.Finish(tr, dur, slow)
		s.hists[rt].observe(dur)
		if slow {
			s.slowReqs.Add(1)
			// Eval requests log their own richer line (grid, source) from
			// handleEval; everything else is logged here.
			if rt != routeEval {
				s.log.Warn("slow request",
					"route", routeNames[rt], "method", r.Method, "path", r.URL.Path,
					"duration", dur, "trace", tr.ID().String())
			}
		}
	})
}

func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.panics.Add(1)
				// Best effort: if the handler already wrote headers this is
				// a no-op on them, but the connection still closes cleanly.
				writeError(w, http.StatusInternalServerError,
					fmt.Errorf("internal panic: %v", rec))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// EvalRequest is the POST /v1/eval body.
type EvalRequest struct {
	// Grid is a scenario grid line, the same grammar as `topobench
	// -scenario` (see scenario.ParseGrid).
	Grid string `json:"grid"`
}

// PointResult is one grid point of an EvalResponse.
type PointResult struct {
	// Coords are the point's sweep-axis values, in axis order.
	Coords []string `json:"coords,omitempty"`
	// Key is the point's content address — the hex SHA-256 of its cache
	// key, usable with GET /v1/result/<key>.
	Key string `json:"key"`
	// OK is false when the point was infeasible and skipped.
	OK   bool    `json:"ok"`
	Runs int     `json:"runs"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// Values are the raw per-run values, in run order.
	Values []float64 `json:"values,omitempty"`
}

// EvalResponse is the POST /v1/eval result.
type EvalResponse struct {
	Grid   string        `json:"grid"`
	Points []PointResult `json:"points"`
}

// Defaults fill run controls a grid line leaves unset, mirroring the
// topobench flag semantics (values inside the line always win). A zero
// Seed defaults to 1 either way, so a line and its explicit-seed twin
// address the same cache entries.
type Defaults struct {
	Runs    int
	Seed    int64
	Epsilon float64
}

// ErrBadRequest marks EvalGrid errors caused by the request (grammar,
// unknown kinds) rather than by evaluation itself.
var ErrBadRequest = errors.New("bad eval request")

// EvalGrid parses and evaluates one grid line on the engine and builds
// the canonical response. It is the single evaluation path shared by the
// HTTP handler and `topobench -scenario -json`, so their bytes agree.
func EvalGrid(eng *scenario.Engine, line string, def Defaults) (*EvalResponse, error) {
	return EvalGridCtx(context.Background(), eng, line, def)
}

// EvalGridCtx is EvalGrid under a context: cancellation stops the grid at
// the next point/run boundary (and in-flight MCF solves at their next
// phase boundary) and returns the context's error. A canceled evaluation
// stores nothing, so re-requesting the grid re-solves cleanly.
func EvalGridCtx(ctx context.Context, eng *scenario.Engine, line string, def Defaults) (*EvalResponse, error) {
	return EvalGridProgress(ctx, eng, line, def, nil)
}

// EvalGridProgress is EvalGridCtx with a per-point progress callback
// (see scenario.MeasureRunsProgress) — the async job API's hook for
// persisting job progress as the grid advances. nil progress is
// EvalGridCtx exactly.
func EvalGridProgress(ctx context.Context, eng *scenario.Engine, line string, def Defaults, progress scenario.ProgressFunc) (*EvalResponse, error) {
	line = strings.Join(strings.Fields(line), " ")
	grid, err := scenario.ParseGrid(line)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if grid.Runs == 0 {
		grid.Runs = def.Runs
	}
	if grid.Seed == 0 {
		grid.Seed = def.Seed
	}
	if grid.Seed == 0 {
		grid.Seed = 1
	}
	if grid.Epsilon == 0 {
		grid.Epsilon = def.Epsilon
	}
	gps, err := grid.Points()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	pts := make([]scenario.Point, len(gps))
	for i, gp := range gps {
		pts[i] = gp.Point
	}
	vals, err := eng.MeasureRunsProgress(ctx, pts, progress)
	if err != nil {
		return nil, err
	}
	resp := &EvalResponse{Grid: line, Points: make([]PointResult, len(gps))}
	for i, gp := range gps {
		st := scenario.Summarize(vals[i])
		resp.Points[i] = PointResult{
			Coords: gp.Coords,
			Key:    store.Addr(gp.Key()),
			OK:     st.OK,
			Runs:   st.Runs,
			Mean:   st.Mean, Std: st.Std, Min: st.Min, Max: st.Max,
			Values: vals[i],
		}
	}
	return resp, nil
}

// MarshalCanonical renders the response in its one true byte form —
// indented JSON plus trailing newline — so equal results are equal bytes
// across processes, machines, and transports.
func (r *EvalResponse) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// errQueueFull is evalShared's non-blocking admission refusal; handleEval
// maps it to 429.
var errQueueFull = errors.New("evaluation queue full")

// evalScratch is the pooled per-request parse scratch: the request-body
// read buffer and the key-preimage buffer live across requests instead of
// being reallocated per request, so the warm dataplane's only remaining
// parse allocations are encoding/json's own small decode state.
type evalScratch struct {
	body []byte
	key  []byte
}

var evalScratchPool = sync.Pool{New: func() any { return &evalScratch{} }}

// maxEvalBody bounds a request body read — a grid line is at most a few
// hundred bytes; anything beyond this is not a grid request.
const maxEvalBody = 1 << 20

// readGrid reads and parses the request body into sc, returning the
// whitespace-normalized grid line.
func readGrid(r *http.Request, sc *evalScratch) (string, error) {
	buf := sc.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			sc.body = buf
			return "", fmt.Errorf("reading request: %w", err)
		}
		if len(buf) > maxEvalBody {
			sc.body = buf
			return "", errors.New("request body too large")
		}
	}
	sc.body = buf
	var req EvalRequest
	if err := json.Unmarshal(buf, &req); err != nil {
		return "", fmt.Errorf("decoding request: %w", err)
	}
	if strings.TrimSpace(req.Grid) == "" {
		return "", errors.New("request needs a grid line")
	}
	return normalizeLine(req.Grid), nil
}

// normalizeLine is strings.Join(strings.Fields(s), " ") with an
// allocation-free fast path for lines that are already in canonical form
// (single interior spaces, no leading/trailing whitespace) — which is
// every line a well-behaved client or the loadgen harness sends.
func normalizeLine(s string) string {
	if s == "" {
		return s
	}
	clean := s[0] != ' ' && s[len(s)-1] != ' '
	for i := 0; clean && i < len(s); i++ {
		switch s[i] {
		case '\t', '\n', '\v', '\f', '\r':
			clean = false
		case ' ':
			if i+1 < len(s) && s[i+1] == ' ' {
				clean = false
			}
		}
	}
	if clean {
		return s
	}
	return strings.Join(strings.Fields(s), " ")
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	slowAt := s.cfg.Tracer.Slow()
	var start time.Time
	if slowAt > 0 {
		start = time.Now()
	}
	sc := evalScratchPool.Get().(*evalScratch)
	defer evalScratchPool.Put(sc)
	key, err := readGrid(r, sc)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status, body, src, err := s.evalSharedScratch(r.Context(), key, false, s.cfg.RequestTimeout, nil, sc)
	if err != nil {
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			fmt.Errorf("evaluation queue full (%d jobs in flight)", cap(s.jobs)))
		return
	}
	if slowAt > 0 {
		if dur := time.Since(start); dur >= slowAt {
			// The slow-eval line carries what the generic middleware line
			// cannot: the grid and how the bytes were produced. When head
			// sampling skipped the request, mint its trace post hoc and echo
			// the id — setting X-Trace-Id also tells the middleware this
			// request's slow capture is handled.
			id := trace.SpanFromContext(r.Context()).TraceID()
			if id.IsZero() {
				id = s.cfg.Tracer.Capture(r.Method+" "+r.URL.Path, start, dur,
					trace.Attr{Key: "grid", Str: key},
					trace.Attr{Key: "source", Str: src})
				w.Header()["X-Trace-Id"] = []string{id.String()}
			}
			s.log.Warn("slow request",
				"route", "eval", "grid", key, "source", src, "status", status,
				"duration", dur, "trace", id.String())
		}
	}
	writeBytes(w, status, body)
}

// evalShared runs one deduplicated grid evaluation on behalf of a caller
// — a synchronous /v1/eval request or an async job — and returns its
// status and canonical bytes. Identical keys share one flight; ctx is the
// caller's lifetime (detaching the last caller cancels the solve).
//
// block selects the admission policy when every job slot is taken:
// synchronous requests refuse immediately (errQueueFull → 429), jobs wait
// for a slot (they already answered 202; holding a goroutine is cheap,
// holding a connection was the problem). The only other error is the
// caller's own ctx expiring while waiting.
//
// Two flight-lifecycle rules live here rather than in the handler:
//
//   - Never attach to a canceled flight. A flight whose waiters all
//     disconnected cancels its context but stays in the map until its
//     leader's cleanup runs; attaching in that window would replay the
//     cached 499 "all clients disconnected" body to a live client. Such a
//     flight is treated as absent — the newcomer leads a fresh one (the
//     map slot is overwritten; the old leader's cleanup only deletes its
//     own flight).
//   - Re-dispatch after losing this race anyway. An attacher that was
//     tied to a flight before its cancellation still wakes to a 499; if
//     its own ctx is live, it loops and re-dispatches instead of
//     forwarding a disconnect it did not suffer.
func (s *Server) evalShared(ctx context.Context, key string, block bool, timeout time.Duration, progress scenario.ProgressFunc) (int, []byte, error) {
	sc := evalScratchPool.Get().(*evalScratch)
	defer evalScratchPool.Put(sc)
	status, body, _, err := s.evalSharedScratch(ctx, key, block, timeout, progress, sc)
	return status, body, err
}

// evalSharedScratch is evalShared with a caller-supplied parse scratch
// (the key-preimage buffer). The response-byte cache fronts everything:
// a warm grid returns its canonical bytes here — no flight, no job slot,
// no engine walk, no marshal — and a cold evaluation's 200 bytes populate
// the cache on the way out (one put per flight: population is
// singleflighted by construction).
//
// The src return names how the bytes were produced — "bytecache" (warm
// hit), "shared" (attached to an identical in-flight evaluation), or
// "lead" (this call ran the solve) — for the slow-request log line.
func (s *Server) evalSharedScratch(ctx context.Context, key string, block bool, timeout time.Duration, progress scenario.ProgressFunc, sc *evalScratch) (int, []byte, string, error) {
	var rk respKey
	rk, sc.key = respKeyFor(sc.key, respKeyPrefix, key)
	if body := s.resp.get(rk); body != nil {
		if sp := trace.StartSpan(ctx, "resp.cache"); sp.OK() {
			sp.Attr("outcome", "hit")
			sp.End()
		}
		return http.StatusOK, body, "bytecache", nil
	}
	for {
		s.mu.Lock()
		if f, ok := s.flights[key]; ok && f.ctx.Err() == nil {
			// An identical grid is already evaluating: wait for its bytes
			// instead of competing for a job slot. Attaching keeps the solve
			// alive even if its originating client hangs up first.
			f.attach(ctx)
			s.mu.Unlock()
			s.shared.Add(1)
			asp := trace.StartSpan(ctx, "flight.attach")
			<-f.done
			asp.AttrInt("status", int64(f.status))
			asp.End()
			if f.status == 499 && ctx.Err() == nil {
				continue
			}
			return f.status, f.body, "shared", nil
		}
		select {
		case s.jobs <- struct{}{}:
			s.lastSlot.Store(time.Now().UnixNano())
		default:
			s.mu.Unlock()
			if !block {
				return 0, nil, "", errQueueFull
			}
			// Blocking acquisition happens outside the lock (a full queue
			// must not wedge every handler). The slot is released right away
			// and the loop re-checks the flight table: a flight for this key
			// may have appeared while waiting, and attaching to it beats
			// leading a duplicate.
			select {
			case s.jobs <- struct{}{}:
				s.lastSlot.Store(time.Now().UnixNano())
				<-s.jobs
				s.lastSlot.Store(time.Now().UnixNano())
				continue
			case <-ctx.Done():
				return 0, nil, "", ctx.Err()
			}
		}
		f := newFlight(timeout)
		// The flight leader's span travels in f.ctx, so the whole solve —
		// engine walk, cache tiers, claim waits, mcf phases — nests under
		// this request's trace. Attached waiters see only their own
		// flight.attach span; the solve detail lives on the leader's trace.
		lsp := trace.StartSpan(ctx, "flight.lead")
		f.ctx = trace.ContextWithSpan(f.ctx, lsp)
		f.attach(ctx)
		s.flights[key] = f
		s.mu.Unlock()

		// Cleanup must survive a panicking evaluation: an undeleted flight
		// would wedge every future request for this grid on <-f.done, and an
		// unreleased job slot would shrink the queue permanently. The delete
		// compares first — a canceled flight may already have been replaced
		// by a successor's, which must not be torn down with it.
		func() {
			defer func() {
				s.mu.Lock()
				if s.flights[key] == f {
					delete(s.flights, key)
				}
				s.mu.Unlock()
				close(f.done)
				f.cancel()
				<-s.jobs
				s.lastSlot.Store(time.Now().UnixNano())
			}()
			f.status, f.body = s.evaluate(f.ctx, key, progress)
			lsp.AttrInt("status", int64(f.status))
			lsp.End()
			if f.status == http.StatusOK {
				s.resp.put(rk, f.body)
			}
		}()
		return f.status, f.body, "lead", nil
	}
}

// evaluate runs one deduplicated grid evaluation and renders its bytes.
// A panicking evaluator is reported as a 500, not a dropped connection;
// cancellation and deadline expiry get their own statuses so callers can
// tell an aborted solve from a broken one.
func (s *Server) evaluate(ctx context.Context, line string, progress scenario.ProgressFunc) (status int, body []byte) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			status = http.StatusInternalServerError
			body = errorBody(fmt.Errorf("evaluation panicked: %v", r))
		}
	}()
	resp, err := EvalGridProgress(ctx, s.cfg.Engine, line, s.cfg.Defaults, progress)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.timeouts.Add(1)
			status = http.StatusGatewayTimeout
			err = fmt.Errorf("evaluation exceeded the request timeout (%s)", s.cfg.RequestTimeout)
		case errors.Is(err, context.Canceled):
			// 499: nginx's "client closed request" — every attached client
			// went away, so nobody reads this, but the flight records it.
			s.canceled.Add(1)
			status = 499
			err = errors.New("evaluation canceled: all requesting clients disconnected")
		case errors.Is(err, ErrBadRequest):
			status = http.StatusBadRequest
		}
		return status, errorBody(err)
	}
	if s.cfg.Store != nil && s.cfg.StoreMaxBytes > 0 {
		s.cfg.Store.Prune(s.cfg.StoreMaxBytes)
	}
	body, err = resp.MarshalCanonical()
	if err != nil {
		return http.StatusInternalServerError, errorBody(err)
	}
	return http.StatusOK, body
}

// Result representations carry strong ETags: a content address fully
// determines its bytes (the byte-identity invariant), so the ETag is the
// address itself plus a representation-and-version suffix — `.j<n>` for
// the JSON view (n = respSchemaVersion) and `.t<n>` for the raw TBRS view
// (n = store.CodecVersion). Bumping either version changes every ETag, so
// clients can never revalidate bytes produced under an older encoding.
var (
	etagJSONSuffix = fmt.Sprintf(".j%d\"", respSchemaVersion)
	etagTBRSSuffix = fmt.Sprintf(".t%d\"", store.CodecVersion)

	jsonCTVal    = []string{"application/json; charset=utf-8"}
	tbrsCTVal    = []string{remotestore.ContentType}
	metricsCTVal = []string{"text/plain; version=0.0.4; charset=utf-8"}
	varyAccept   = []string{"Accept"}
)

// etagMatch reports whether an If-None-Match header matches etag, per RFC
// 7232 weak comparison: `*` matches anything, a W/ prefix on a candidate
// is ignored, and the list form is scanned tag by tag.
func etagMatch(header, etag string) bool {
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			return false
		}
		t := header
		if strings.HasPrefix(t, "W/") {
			t = t[2:]
		}
		if len(t) < 2 || t[0] != '"' {
			return false // malformed header: treat as no match
		}
		end := strings.IndexByte(t[1:], '"')
		if end < 0 {
			return false
		}
		if t[:end+2] == etag {
			return true
		}
		header = t[end+2:]
	}
}

// resultScratch pools the GET /v1/result read scratch: entry bytes and
// decoded values are reused across requests, so the peer-facing TBRS hot
// path reads the store without per-request buffer allocations.
type resultScratch struct {
	buf  []byte
	vals []float64
}

var resultScratchPool = sync.Pool{New: func() any { return &resultScratch{} }}

// handleResult serves one stored result by content address. Conditional
// requests short-circuit BEFORE the store is touched: content addressing
// makes every representation immutable (an address can only ever map to
// one byte sequence, across processes and restarts), so a client
// presenting a matching ETag holds the current bytes by construction and
// a 304 — carrying no body — needs no store read at all, not even an
// existence check.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotFound, errors.New("no result store attached (serve with -cache-dir)"))
		return
	}
	key := r.PathValue("key")
	if !validAddr(key) {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result under %s", key))
		return
	}
	tbrs := r.Header.Get("Accept") == remotestore.ContentType
	suffix := etagJSONSuffix
	if tbrs {
		suffix = etagTBRSSuffix
	}
	etag := `"` + key + suffix
	h := w.Header()
	h["Vary"] = varyAccept
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatch(inm, etag) {
		h["Etag"] = []string{etag}
		w.WriteHeader(http.StatusNotModified)
		return
	}
	sc := resultScratchPool.Get().(*resultScratch)
	defer resultScratchPool.Put(sc)
	raw, vals, ok := s.cfg.Store.LoadAddrBuf(key, sc.buf, sc.vals)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no result under %s", key))
		return
	}
	sc.buf, sc.vals = raw, vals
	h["Etag"] = []string{etag}
	if tbrs {
		// Peer replicas (internal/remotestore) ask for the raw TBRS codec
		// bytes. raw is the verified on-disk entry exactly as a Save wrote
		// it — decodeAppend already re-checked magic, version, and CRC — so
		// it is forwarded without re-encoding and a peer still never
		// receives disk corruption.
		h["Content-Type"] = tbrsCTVal
		h["Content-Length"] = []string{strconv.Itoa(len(raw))}
		w.WriteHeader(http.StatusOK)
		w.Write(raw)
		return
	}
	// The JSON view also surfaces the entry's parent link (the content
	// address of the result whose witness warm-started this solve), when
	// the codec recorded one.
	_, parent, _ := store.DecodeEntry(raw)
	body, err := json.MarshalIndent(struct {
		Key    string    `json:"key"`
		Values []float64 `json:"values"`
		Parent string    `json:"parent,omitempty"`
	}{key, vals, parent}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, http.StatusOK, append(body, '\n'))
}

// maxPutBytes bounds a PUT /v1/result body — matches the remotestore
// client's own entry cap (a run-values entry is a few KB in practice).
const maxPutBytes = 4 << 20

// handlePutResult accepts one TBRS entry from a peer replica. The body is
// decoded — CRC re-verified — before anything touches the store, so a
// corrupt or truncated upload is rejected with 400 and can never poison
// the cache (the codec-boundary corruption rule, applied to the network).
func (s *Server) handlePutResult(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Store == nil {
		writeError(w, http.StatusNotImplemented, errors.New("no result store attached (serve with -cache-dir)"))
		return
	}
	key := r.PathValue("key")
	if !validAddr(key) {
		s.putBad.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed content address %q", key))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPutBytes+1))
	if err != nil {
		s.putBad.Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading entry: %w", err))
		return
	}
	if len(body) > maxPutBytes {
		s.putBad.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("entry exceeds %d bytes", maxPutBytes))
		return
	}
	vals, parent, ok := store.DecodeEntry(body)
	if !ok {
		s.putBad.Add(1)
		writeError(w, http.StatusBadRequest, errors.New("entry failed codec/CRC verification"))
		return
	}
	if err := s.cfg.Store.SaveAddrLinked(key, vals, parent); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.puts.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func validAddr(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handleHealthz reports liveness in three grades: "ok"; "degraded" (still
// 200 — the replica serves, but its remote tier saw errors in the last 30s
// or the breaker is open, so it may be solving cold); and "wedged" (503 —
// every job slot has been occupied with no slot turnover for WedgeAfter,
// so new work cannot make progress and the replica should be restarted or
// drained).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type report struct {
		Status  string   `json:"status"`
		Reasons []string `json:"reasons,omitempty"`
	}
	render := func(status int, rep report) {
		body, _ := json.Marshal(rep)
		writeBytes(w, status, append(body, '\n'))
	}
	if len(s.jobs) == cap(s.jobs) {
		idle := time.Since(time.Unix(0, s.lastSlot.Load()))
		if idle > s.cfg.WedgeAfter {
			render(http.StatusServiceUnavailable, report{
				Status: "wedged",
				Reasons: []string{fmt.Sprintf(
					"all %d job slots occupied with no turnover for %s", cap(s.jobs), idle.Round(time.Second))},
			})
			return
		}
	}
	var reasons []string
	if c := s.cfg.Remote; c != nil {
		if state := c.State(); state != remotestore.Closed {
			reasons = append(reasons, "remote store circuit breaker "+state.String())
		}
		if n := c.RecentErrors(30 * time.Second); n > 0 {
			reasons = append(reasons, fmt.Sprintf("%d remote store errors in the last 30s", n))
		}
	}
	if len(reasons) > 0 {
		render(http.StatusOK, report{Status: "degraded", Reasons: reasons})
		return
	}
	render(http.StatusOK, report{Status: "ok"})
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	body, err := json.MarshalIndent(struct {
		Topologies []string `json:"topologies"`
		Traffics   []string `json:"traffics"`
		Evaluators []string `json:"evaluators"`
	}{scenario.TopologyKinds(), scenario.TrafficKinds(), scenario.EvaluatorKinds()}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, http.StatusOK, append(body, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The exposition is rendered into a buffer first so the response can
	// carry Content-Length like every other endpoint. Every family goes
	// out with its HELP/TYPE pair (emitMetric), so the scrape is
	// well-formed Prometheus text, not just name/value lines.
	var buf bytes.Buffer
	g := func(name string, v int64) {
		emitMetric(&buf, name, v)
	}
	if c := s.cfg.Cache; c != nil {
		st := c.Stats()
		g("cache_hits_total", st.Hits)
		g("cache_store_hits_total", st.StoreHits)
		g("cache_misses_total", st.Misses)
		g("cache_store_errors_total", st.StoreErrs)
		g("cache_entries", int64(st.Entries))
	}
	if st := s.cfg.Store; st != nil {
		ss := st.Stats()
		g("store_hits_total", ss.Hits)
		g("store_misses_total", ss.Misses)
		g("store_writes_total", ss.Writes)
		g("store_corrupt_total", ss.Corrupt)
		g("store_evicted_total", ss.Evicted)
		g("store_orphans_total", ss.Orphans)
		g("store_negative_hits_total", ss.NegHits)
		g("store_parent_links_total", ss.ParentLinks)
		g("store_entries", int64(ss.Entries))
		g("store_bytes", ss.Bytes)
	}
	if e := s.cfg.Engine; e != nil {
		ws := e.WarmStats()
		g("warm_attempts_total", ws.Attempts)
		g("warm_starts_total", ws.Starts)
		g("warm_cert_fallbacks_total", ws.Fallbacks)
		g("warm_parent_hits_total", ws.ParentHits)
		g("warm_parent_misses_total", ws.ParentMisses)
	}
	if t := s.cfg.Tiered; t != nil {
		ts := t.Stats()
		g("tiered_disk_hits_total", ts.DiskHits)
		g("tiered_remote_hits_total", ts.RemoteHits)
		g("tiered_misses_total", ts.Misses)
		g("tiered_promotions_total", ts.Promotions)
		g("tiered_promote_errors_total", ts.PromoteErrs)
		g("tiered_remote_save_errors_total", ts.RemoteSaveErrs)
		g("claims_won_total", ts.ClaimsWon)
		g("claims_lost_total", ts.ClaimsLost)
		g("claim_wait_hits_total", ts.WaitHits)
		g("claim_wait_timeouts_total", ts.WaitTimeouts)
		g("claims_reclaimed_total", ts.Reclaims)
	}
	if c := s.cfg.Remote; c != nil {
		rs := c.Stats()
		g("remote_loads_total", rs.Loads)
		g("remote_load_hits_total", rs.LoadHits)
		g("remote_load_misses_total", rs.LoadMisses)
		g("remote_saves_total", rs.Saves)
		g("remote_save_errors_total", rs.SaveErrs)
		g("remote_attempts_total", rs.Attempts)
		g("remote_retries_total", rs.Retries)
		g("remote_failures_total", rs.Failures)
		g("remote_corrupt_total", rs.Corrupt)
		g("remote_breaker_opens_total", rs.BreakerOpens)
		g("remote_short_circuits_total", rs.ShortCircuits)
		g("remote_breaker_state", int64(rs.State))
	}
	if t := s.cfg.Tiered; t != nil {
		g("claims_abandoned_total", t.Stats().Abandons)
	}
	g("jobs_submitted_total", s.jobsSubmitted.Load())
	g("jobs_done_total", s.jobsDone.Load())
	g("jobs_failed_total", s.jobsFailed.Load())
	g("jobs_canceled_total", s.jobsCanceled.Load())
	g("jobs_rejected_total", s.jobsRejected.Load())
	g("jobs_recovered_total", s.jobsRecovered.Load())
	g("jobs_replayed_total", s.jobsReplayed.Load())
	g("jobs_replay_mismatch_total", s.jobsReplayMismatch.Load())
	g("jobs_unknown_total", s.jobsUnknown.Load())
	g("jobs_resident", int64(s.jobCount()))
	g("eval_requests_total", s.requests.Load())
	g("eval_rejected_total", s.rejected.Load())
	g("eval_shared_total", s.shared.Load())
	g("eval_panics_total", s.panics.Load())
	g("eval_timeouts_total", s.timeouts.Load())
	g("eval_canceled_total", s.canceled.Load())
	g("result_puts_total", s.puts.Load())
	g("result_puts_rejected_total", s.putBad.Load())
	g("eval_inflight", int64(len(s.jobs)))
	rc := s.resp.stats()
	g("response_bytes_cache_hits_total", rc.Hits)
	g("response_bytes_cache_misses_total", rc.Misses)
	g("response_bytes_cache_evictions_total", rc.Evictions)
	g("response_bytes_cache_entries", int64(rc.Entries))
	g("response_bytes_cache_bytes", rc.Bytes)
	if s.cfg.Tracer != nil {
		g("traces_sampled_total", s.sampled.Load())
		g("traces_slow_total", s.slowReqs.Load())
	}
	renderRouteHists(&buf, "topobench_request_seconds", &s.hists)
	h := w.Header()
	h["Content-Type"] = metricsCTVal
	h["Content-Length"] = []string{strconv.Itoa(buf.Len())}
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// handleTraces serves the tracer's ring of completed traces, newest
// first, as JSON. ?min=<duration> keeps only traces at least that slow —
// the operator's "show me what hurt" filter. 404 without a Tracer, so a
// tracing-disabled replica looks exactly like an older one.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	t := s.cfg.Tracer
	if t == nil {
		writeError(w, http.StatusNotFound, errors.New("tracing disabled (serve with -trace-sample)"))
		return
	}
	var min time.Duration
	if q := r.URL.Query().Get("min"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad min duration %q: %v", q, err))
			return
		}
		min = d
	}
	traces := t.Snapshot(min)
	if traces == nil {
		traces = []trace.TraceJSON{}
	}
	body, err := json.MarshalIndent(struct {
		Traces []trace.TraceJSON `json:"traces"`
	}{traces}, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeBytes(w, http.StatusOK, append(body, '\n'))
}

// writeBytes writes a complete JSON response with explicit Content-Length.
// The Content-Type value slice is shared and preallocated (net/http never
// mutates header value slices), so the only per-response header allocation
// is the Content-Length itoa.
func writeBytes(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = jsonCTVal
	h["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(status)
	w.Write(body)
}

func errorBody(err error) []byte {
	body, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{err.Error()})
	return append(body, '\n')
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeBytes(w, status, errorBody(err))
}
