package service

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"time"
)

// Route classes split the request-latency histogram so dataplane
// latency (eval) is not blended with control-plane traffic (result
// fetches, job polls, everything else) in one distribution.
const (
	routeEval = iota
	routeResult
	routeJobs
	routeOther
	numRoutes
)

// routeNames are the `route` label values, indexed by route class.
var routeNames = [numRoutes]string{"eval", "result", "jobs", "other"}

// routeClass buckets a request path into its route class. Plain
// equality/prefix tests on the path — no parsing, no allocation — so
// classification is free on the warm dataplane.
func routeClass(path string) int {
	switch {
	case path == "/v1/eval":
		return routeEval
	case strings.HasPrefix(path, "/v1/result/"):
		return routeResult
	case path == "/v1/jobs" || strings.HasPrefix(path, "/v1/jobs/"):
		return routeJobs
	}
	return routeOther
}

// reqHistBuckets are the topobench_request_seconds histogram's upper
// bounds, in seconds. The range spans byte-cache hits (tens of
// microseconds) through cold multi-point solves (seconds), with the
// conventional 1-2.5-5 spacing Prometheus tooling expects.
var reqHistBuckets = [...]float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01,
	.025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// reqHist is a fixed-bucket request-latency histogram. observe is two
// atomic adds and a short linear scan — no locks, no allocations — so it
// sits on the dataplane without disturbing the zero-alloc budget.
type reqHist struct {
	counts [len(reqHistBuckets) + 1]atomic.Int64 // +1: the +Inf bucket
	nanos  atomic.Int64
}

func (h *reqHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(reqHistBuckets) && sec > reqHistBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.nanos.Add(int64(d))
}

// render writes one route's series of the histogram in Prometheus text
// exposition format: cumulative le-labeled buckets, _sum, and _count,
// all carrying the route label (le last, the conventional order).
func (h *reqHist) render(w io.Writer, name, route string) {
	var cum int64
	for i, le := range reqHistBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{route=%q,le=\"%g\"} %d\n", name, route, le, cum)
	}
	cum += h.counts[len(reqHistBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{route=%q,le=\"+Inf\"} %d\n", name, route, cum)
	fmt.Fprintf(w, "%s_sum{route=%q} %g\n", name, route, float64(h.nanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count{route=%q} %d\n", name, route, cum)
}

// renderRouteHists writes the whole request-latency family: one
// HELP/TYPE pair, then every route class's series.
func renderRouteHists(w io.Writer, name string, hs *[numRoutes]reqHist) {
	fmt.Fprintf(w, "# HELP %s Request wall-clock latency, split by route class.\n", name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	for rt := range hs {
		hs[rt].render(w, name, routeNames[rt])
	}
}
