package service

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// reqHistBuckets are the topobench_request_seconds histogram's upper
// bounds, in seconds. The range spans byte-cache hits (tens of
// microseconds) through cold multi-point solves (seconds), with the
// conventional 1-2.5-5 spacing Prometheus tooling expects.
var reqHistBuckets = [...]float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01,
	.025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// reqHist is a fixed-bucket request-latency histogram. observe is two
// atomic adds and a short linear scan — no locks, no allocations — so it
// sits on the dataplane without disturbing the zero-alloc budget.
type reqHist struct {
	counts [len(reqHistBuckets) + 1]atomic.Int64 // +1: the +Inf bucket
	nanos  atomic.Int64
}

func (h *reqHist) observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(reqHistBuckets) && sec > reqHistBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.nanos.Add(int64(d))
}

// render writes the histogram in Prometheus text exposition format:
// cumulative le-labeled buckets, _sum, and _count.
func (h *reqHist) render(w io.Writer, name string) {
	var cum int64
	for i, le := range reqHistBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, le, cum)
	}
	cum += h.counts[len(reqHistBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.nanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, cum)
}
