package service

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/store"
)

// The response-byte cache is the serve path's answer to the store's
// byte-identity guarantee: since a warm replay of a grid is byte-identical
// to its cold marshal (the durability clause of the cache-key invariant),
// the canonical response BYTES themselves are cacheable — a warm request
// is answered by one map lookup and one socket write, with no grid parse,
// no engine walk, and no re-marshal. Population is already singleflighted
// by the flight table (one evaluation, one put); eviction is LRU to a byte
// budget, mirroring store.Prune semantics: entries leave whole or not at
// all — a hit returns the complete cached body or nil, never a prefix —
// and a response already handed to a writer stays valid after eviction
// because entries are immutable (eviction drops the reference, it never
// mutates or truncates the bytes).
//
// Keys are the same SHA-256 content addressing the store uses, over a
// VERSIONED preimage: respSchemaVersion | store.CodecVersion | grid line.
// Bump respSchemaVersion whenever the canonical response encoding changes
// (field added, marshal layout changed — the EvalResponse sibling of the
// store's "bump CodecVersion" rule); the store's own codec version rides
// in the key too, so a value-encoding bump can never serve bytes computed
// under the old semantics. Stale-version entries are simply unreachable —
// they age out by LRU, exactly like stale-codec store entries read as
// misses.

// respSchemaVersion versions the byte-cache key against changes to the
// canonical EvalResponse encoding. Bump it whenever MarshalCanonical's
// output for an unchanged grid could change. v2: warm-start landed —
// grids evaluated under an engine with incremental evaluation enabled may
// produce values in a different (certified-equal) ε class than v1's.
const respSchemaVersion uint16 = 2

// respKey is a byte-cache key: the SHA-256 of the versioned preimage.
// Using the raw digest as the map key keeps the hot lookup free of hex
// encoding and string allocation.
type respKey [sha256.Size]byte

// respKeyPrefix is the versioned preimage prefix shared by every key.
var respKeyPrefix = respPrefix(respSchemaVersion, uint16(store.CodecVersion))

func respPrefix(schema, codec uint16) string {
	return fmt.Sprintf("resp|schema=%d|codec=%d|", schema, codec)
}

// respKeyFor hashes the versioned preimage for a grid line, building it in
// scratch (grown only when too small) so a hot request computes its key
// with zero heap allocations. The returned scratch is handed back for
// reuse.
func respKeyFor(scratch []byte, prefix, line string) (respKey, []byte) {
	scratch = append(scratch[:0], prefix...)
	scratch = append(scratch, line...)
	return sha256.Sum256(scratch), scratch
}

// respEntry is one cached canonical response. body is immutable from
// insertion on.
type respEntry struct {
	body   []byte
	access int64
}

// respCacheStats is a point-in-time snapshot of the byte cache.
type respCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
	Bytes                   int64
}

// respCache is the content-addressed response-byte cache. maxBytes <= 0
// disables it entirely (every get is a counted miss, every put a no-op).
type respCache struct {
	maxBytes int64

	mu        sync.Mutex
	entries   map[respKey]*respEntry
	bytes     int64
	clock     int64
	hits      int64
	misses    int64
	evictions int64
}

func newRespCache(maxBytes int64) *respCache {
	return &respCache{maxBytes: maxBytes, entries: map[respKey]*respEntry{}}
}

// get returns the complete cached canonical bytes for k, or nil on a miss.
// The returned slice is shared and immutable: callers write it, they never
// modify it.
func (c *respCache) get(k respKey) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil
	}
	c.clock++
	e.access = c.clock
	c.hits++
	return e.body
}

// put caches body under k and evicts least-recently-used entries until the
// cache fits its byte budget. The caller transfers the body in: it must
// never be mutated afterwards (the service's response bodies never are —
// they are freshly marshaled and only ever written to sockets). A body
// larger than the whole budget is not cached: admitting it would evict
// everything for an entry the next put removes anyway.
func (c *respCache) put(k respKey, body []byte) {
	if c.maxBytes <= 0 || int64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	if e, ok := c.entries[k]; ok {
		// Racing populates for one key carry byte-identical bodies (the
		// invariant this cache is built on); keep the resident entry.
		e.access = c.clock
		return
	}
	c.entries[k] = &respEntry{body: body, access: c.clock}
	c.bytes += int64(len(body))
	for c.bytes > c.maxBytes {
		var (
			lruKey respKey
			lru    *respEntry
		)
		for key, e := range c.entries {
			if e == c.entries[k] {
				continue // never evict the entry this put admitted
			}
			if lru == nil || e.access < lru.access {
				lruKey, lru = key, e
			}
		}
		if lru == nil {
			break
		}
		delete(c.entries, lruKey)
		c.bytes -= int64(len(lru.body))
		c.evictions++
	}
}

// stats snapshots the cache counters and resident state.
func (c *respCache) stats() respCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return respCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.entries), Bytes: c.bytes,
	}
}
