package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/remotestore"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/trace"
)

// newTracedServer wires a server whose tracer samples every request,
// backed by a disk store so the tier spans appear in traces.
func newTracedServer(t *testing.T, dir string) (*trace.Tracer, *store.Store, *httptest.Server) {
	t.Helper()
	tr := trace.New(trace.Options{Sample: 1})
	var st *store.Store
	cache := scenario.NewCache()
	if dir != "" {
		var err error
		st, err = store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache.SetBackend(st)
	}
	eng := &scenario.Engine{Parallel: 2, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, Store: st, MaxJobs: 4, Tracer: tr})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return tr, st, hs
}

// postEvalTraced is postEval plus the X-Trace-Id response header.
func postEvalTraced(t *testing.T, url, grid string) (int, []byte, string) {
	t.Helper()
	body, err := json.Marshal(EvalRequest{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out.Bytes(), resp.Header.Get("X-Trace-Id")
}

// tracesJSON fetches and decodes GET /debug/traces.
func tracesJSON(t *testing.T, url, query string) []trace.TraceJSON {
	t.Helper()
	status, body := get(t, url+"/debug/traces"+query)
	if status != http.StatusOK {
		t.Fatalf("GET /debug/traces%s: %d %s", query, status, body)
	}
	var rep struct {
		Traces []trace.TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding /debug/traces: %v\n%s", err, body)
	}
	if rep.Traces == nil {
		t.Fatalf("traces is null, want [] or entries:\n%s", body)
	}
	return rep.Traces
}

// findTrace returns the retained trace with the given id, or fails.
func findTrace(t *testing.T, traces []trace.TraceJSON, id string) trace.TraceJSON {
	t.Helper()
	for _, tr := range traces {
		if tr.TraceID == id {
			return tr
		}
	}
	t.Fatalf("no trace with id %s among %d retained traces", id, len(traces))
	return trace.TraceJSON{}
}

// spanNames collects the set of span names in a trace.
func spanNames(tr trace.TraceJSON) map[string]bool {
	names := make(map[string]bool, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestTraceColdAndWarmEval samples a cold eval and demands the full span
// chain — HTTP root, flight leadership, the engine's per-point span, the
// solver phase, and the store tier probes — then checks a warm replay of
// the same grid shows the byte-cache answering instead.
func TestTraceColdAndWarmEval(t *testing.T) {
	// An mcf grid, so the solver-phase span appears (aspl has no solve).
	const grid = "topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=mcf runs=1 eps=0.3 seed=1"
	_, _, hs := newTracedServer(t, t.TempDir())

	status, _, coldID := postEvalTraced(t, hs.URL, grid)
	if status != http.StatusOK {
		t.Fatalf("cold eval: %d", status)
	}
	if coldID == "" {
		t.Fatal("cold eval: no X-Trace-Id header on a sample-everything server")
	}
	cold := findTrace(t, tracesJSON(t, hs.URL, ""), coldID)
	if cold.Root != "POST /v1/eval" {
		t.Fatalf("cold trace root: got %q want %q", cold.Root, "POST /v1/eval")
	}
	names := spanNames(cold)
	for _, want := range []string{"POST /v1/eval", "flight.lead", "point", "mcf.solve", "tier.store"} {
		if !names[want] {
			t.Errorf("cold trace missing span %q (have %v)", want, names)
		}
	}

	// Every span except the root must name a parent inside the trace, so
	// the tree reconstructs.
	ids := make(map[string]bool, len(cold.Spans))
	for _, sp := range cold.Spans {
		ids[sp.SpanID] = true
	}
	for i, sp := range cold.Spans {
		if i == 0 {
			continue
		}
		if sp.Parent == "" || !ids[sp.Parent] {
			t.Errorf("span %q: parent %q not in trace", sp.Name, sp.Parent)
		}
	}

	status, _, warmID := postEvalTraced(t, hs.URL, grid)
	if status != http.StatusOK {
		t.Fatalf("warm eval: %d", status)
	}
	if warmID == "" || warmID == coldID {
		t.Fatalf("warm eval trace id: %q (cold was %q)", warmID, coldID)
	}
	warm := findTrace(t, tracesJSON(t, hs.URL, ""), warmID)
	wnames := spanNames(warm)
	if !wnames["resp.cache"] {
		t.Errorf("warm trace missing resp.cache span (have %v)", wnames)
	}
	if wnames["flight.lead"] || wnames["mcf.solve"] {
		t.Errorf("warm trace re-solved: spans %v", wnames)
	}

	// ?min filters by duration; an absurd floor leaves nothing.
	if got := tracesJSON(t, hs.URL, "?min=10h"); len(got) != 0 {
		t.Fatalf("?min=10h kept %d traces", len(got))
	}
	if status, body := get(t, hs.URL+"/debug/traces?min=bogus"); status != http.StatusBadRequest {
		t.Fatalf("?min=bogus: got %d %s, want 400", status, body)
	}
}

// TestTracesDisabled404 keeps /debug/traces an explicit 404 when the
// server runs without a tracer, so operators learn the flag, not a
// silent empty list.
func TestTracesDisabled404(t *testing.T) {
	_, hs := newTestServer(t, "", 4)
	status, body := get(t, hs.URL+"/debug/traces")
	if status != http.StatusNotFound {
		t.Fatalf("got %d, want 404", status)
	}
	if !strings.Contains(string(body), "trace-sample") {
		t.Fatalf("404 body should point at the flag: %s", body)
	}
}

// TestTracePeerJoinsCallerTrace is the cross-process propagation check:
// replica A misses locally, fetches the result from replica B through
// the remote tier, and B — receiving A's sampled traceparent — records
// its serving spans under A's trace id.
func TestTracePeerJoinsCallerTrace(t *testing.T) {
	// Replica B solves the grid first, so A's eval is a pure peer fetch.
	trB, _, hsB := newTracedServer(t, t.TempDir())
	if status, _, _ := postEvalTraced(t, hsB.URL, testGridQuick); status != http.StatusOK {
		t.Fatalf("warming B: %d", status)
	}

	trA := trace.New(trace.Options{Sample: 1})
	diskA, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote := remotestore.New(remotestore.Options{BaseURL: hsB.URL, Timeout: 5 * time.Second})
	tiered := store.NewTiered(diskA, remote, store.TieredOptions{})
	cacheA := scenario.NewCache()
	cacheA.SetBackend(tiered)
	engA := &scenario.Engine{Parallel: 2, Cache: cacheA, SkipInfeasible: true}
	srvA := New(Config{Engine: engA, Cache: cacheA, Store: diskA, MaxJobs: 4,
		Remote: remote, Tiered: tiered, Tracer: trA})
	hsA := httptest.NewServer(srvA.Handler())
	t.Cleanup(hsA.Close)

	status, _, id := postEvalTraced(t, hsA.URL, testGridQuick)
	if status != http.StatusOK {
		t.Fatalf("eval via A: %d", status)
	}
	if id == "" {
		t.Fatal("no X-Trace-Id from A")
	}

	// A's trace shows the peer tier answering.
	aTrace := findTrace(t, trA.Snapshot(0), id)
	anames := spanNames(aTrace)
	if !anames["tier.peer"] {
		t.Fatalf("A's trace missing tier.peer span (have %v)", anames)
	}
	if anames["mcf.solve"] {
		t.Fatalf("A re-solved despite a warm peer: spans %v", anames)
	}

	// B retained a trace under the SAME id: its result-serving request
	// joined A's trace via the forwarded traceparent.
	bTrace := findTrace(t, trB.Snapshot(0), id)
	if !strings.HasPrefix(bTrace.Root, "GET /v1/result/") {
		t.Fatalf("B's joined trace root: %q, want a result read", bTrace.Root)
	}
	// B's root span is parented to A's requesting span, not floating.
	if len(bTrace.Spans) == 0 || bTrace.Spans[0].Parent == "" {
		t.Fatalf("B's root span should carry A's span as parent: %+v", bTrace.Spans)
	}
}

// TestSlowRequestCaptured drives the always-sample-slow rule with a 1ns
// threshold and head sampling off: the request must still get a trace
// id, a slow-flagged row in the ring with grid and source attrs, and a
// structured warn line carrying the same id.
func TestSlowRequestCaptured(t *testing.T) {
	tr := trace.New(trace.Options{Slow: time.Nanosecond})
	var logBuf bytes.Buffer
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 4, Tracer: tr,
		Logger: slog.New(slog.NewTextHandler(&logBuf, nil))})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	status, _, id := postEvalTraced(t, hs.URL, testGridQuick)
	if status != http.StatusOK {
		t.Fatalf("eval: %d", status)
	}
	if id == "" {
		t.Fatal("slow capture did not echo X-Trace-Id")
	}
	rec := findTrace(t, tracesJSON(t, hs.URL, ""), id)
	if !rec.Slow {
		t.Fatalf("captured trace not flagged slow: %+v", rec)
	}
	if len(rec.Spans) == 0 {
		t.Fatal("captured trace has no spans")
	}
	attrs := rec.Spans[0].Attrs
	if attrs["grid"] != testGridQuick {
		t.Errorf("slow capture grid attr: %v", attrs)
	}
	if src, ok := attrs["source"].(string); !ok || src == "" {
		t.Errorf("slow capture source attr: %v", attrs)
	}
	logLine := logBuf.String()
	if !strings.Contains(logLine, "slow request") || !strings.Contains(logLine, id) {
		t.Errorf("slow log line missing marker or trace id %s:\n%s", id, logLine)
	}
	if !strings.Contains(logLine, "route=eval") {
		t.Errorf("slow log line missing route class:\n%s", logLine)
	}

	// Non-eval routes get their line from the middleware instead.
	logBuf.Reset()
	if status, _ := get(t, hs.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}
	if line := logBuf.String(); !strings.Contains(line, "route=other") {
		t.Errorf("middleware slow line for /healthz missing route=other:\n%s", line)
	}

	// /metrics counts the slow captures.
	if n := metric(t, hs.URL, "traces_slow_total"); n < 2 {
		t.Errorf("traces_slow_total = %d, want >= 2", n)
	}
}

// TestWarmEvalAllocsTraced re-runs the warm-dataplane allocation gate
// with a tracer installed at the serve defaults (0.1% head sampling,
// 250ms slow threshold). Unsampled requests must cost the same alloc
// budget as an untraced server: the tracing fast path is one atomic
// add and two clock reads.
func TestWarmEvalAllocsTraced(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 4,
		Tracer: trace.New(trace.Options{Sample: 0.001, Slow: 250 * time.Millisecond})})
	h := srv.Handler()
	payload, err := json.Marshal(EvalRequest{Grid: testGridQuick})
	if err != nil {
		t.Fatal(err)
	}
	body := &evalBody{bytes.NewReader(payload)}
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", body)
	w := &nullRW{h: http.Header{}}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		t.Fatalf("prime request: status %d", w.status)
	}
	avg := testing.AllocsPerRun(200, func() {
		body.Seek(0, 0)
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	})
	const budget = 12
	if avg > budget {
		t.Fatalf("warm eval with default tracing: %.1f allocs/op, budget %d", avg, budget)
	}
}
