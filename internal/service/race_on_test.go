//go:build race

package service

// raceEnabled mirrors the race detector's presence: allocation-count
// assertions only hold without instrumentation.
const raceEnabled = true
