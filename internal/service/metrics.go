package service

import (
	"fmt"
	"io"
	"strings"
)

// emitMetric writes one single-sample metric family in Prometheus text
// exposition format: HELP, TYPE, sample. The type is derived from the
// conventional `_total` counter suffix; help text comes from the curated
// map below, falling back to the humanized metric name so every family
// is well-formed even when a new counter lands without a description.
func emitMetric(w io.Writer, name string, v int64) {
	full := "topobench_" + name
	typ := "gauge"
	if strings.HasSuffix(name, "_total") {
		typ = "counter"
	}
	help, ok := metricHelp[name]
	if !ok {
		help = strings.ReplaceAll(name, "_", " ")
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", full, help, full, typ, full, v)
}

// metricHelp holds the HELP text of the service's metric families,
// keyed by unprefixed name.
var metricHelp = map[string]string{
	"cache_hits_total":         "Solve-cache memory-tier hits.",
	"cache_store_hits_total":   "Solve-cache hits served from the backing store tier.",
	"cache_misses_total":       "Solve-cache misses (the point was solved).",
	"cache_store_errors_total": "Solve-cache store-tier read/write errors.",
	"cache_entries":            "Solve-cache resident memory-tier entries.",

	"store_hits_total":          "Result-store reads that found a verified entry.",
	"store_misses_total":        "Result-store reads that found nothing.",
	"store_writes_total":        "Result-store entries written.",
	"store_corrupt_total":       "Result-store entries rejected by codec/CRC verification.",
	"store_evicted_total":       "Result-store entries evicted by LRU pruning.",
	"store_orphans_total":       "Result-store orphaned temp files swept at startup.",
	"store_negative_hits_total": "Result-store reads short-circuited by the negative cache.",
	"store_parent_links_total":  "Result-store entries written with a warm-start parent link.",
	"store_entries":             "Result-store resident entries.",
	"store_bytes":               "Result-store resident bytes.",

	"warm_attempts_total":       "Delta solves attempted with a parent witness.",
	"warm_starts_total":         "Delta solves that ran warm-started and certified.",
	"warm_cert_fallbacks_total": "Warm-started solves that failed certification and re-ran cold.",
	"warm_parent_hits_total":    "Parent witness lookups that found a usable witness.",
	"warm_parent_misses_total":  "Parent witness lookups that found none.",

	"tiered_disk_hits_total":          "Tiered reads served by the local disk store.",
	"tiered_remote_hits_total":        "Tiered reads served by the remote tier.",
	"tiered_misses_total":             "Tiered reads served by neither tier (caller solves).",
	"tiered_promotions_total":         "Remote hits written back to the local disk store.",
	"tiered_promote_errors_total":     "Failed write-backs of remote hits (hit still served).",
	"tiered_remote_save_errors_total": "Failed best-effort remote-tier publications.",
	"claims_won_total":                "Claim leases acquired before solving a miss.",
	"claims_lost_total":               "Claim leases another replica held; this one waited.",
	"claim_wait_hits_total":           "Results that appeared while waiting on a peer's claim.",
	"claim_wait_timeouts_total":       "Claim waits exhausted; the load degraded to a local solve.",
	"claims_reclaimed_total":          "Claim leases that expired under a waiter (crashed claimant).",
	"claims_abandoned_total":          "Claims released without a result (failed or canceled solves).",

	"remote_loads_total":          "Remote-store load calls.",
	"remote_load_hits_total":      "Remote-store loads that returned an entry.",
	"remote_load_misses_total":    "Remote-store loads that answered 404.",
	"remote_saves_total":          "Remote-store save calls.",
	"remote_save_errors_total":    "Remote-store saves that failed after retries.",
	"remote_attempts_total":       "Remote-store HTTP attempts, including retries.",
	"remote_retries_total":        "Remote-store attempts that were retries.",
	"remote_failures_total":       "Remote-store operations that exhausted their retry budget.",
	"remote_corrupt_total":        "Remote-store responses rejected by codec/CRC verification.",
	"remote_breaker_opens_total":  "Circuit-breaker transitions to open.",
	"remote_short_circuits_total": "Remote-store calls refused by an open breaker.",
	"remote_breaker_state":        "Circuit-breaker state (0 closed, 1 open, 2 half-open).",

	"jobs_submitted_total":       "Async jobs accepted (202).",
	"jobs_done_total":            "Async jobs that finished with a result.",
	"jobs_failed_total":          "Async jobs that finished with an error.",
	"jobs_canceled_total":        "Async jobs canceled before finishing.",
	"jobs_rejected_total":        "Async job submissions refused by the resident-job bound.",
	"jobs_recovered_total":       "Job records re-adopted from the store after a restart.",
	"jobs_replayed_total":        "Done jobs whose bytes were re-materialized by replay.",
	"jobs_replay_mismatch_total": "Replays whose bytes no longer matched the recorded address.",
	"jobs_unknown_total":         "Polls for unknown (lost or expired) job ids.",
	"jobs_resident":              "Async jobs resident (queued, running, or retained).",

	"eval_requests_total":        "Evaluation requests received (/v1/eval and /v1/jobs).",
	"eval_rejected_total":        "Synchronous evaluations refused with 429 (queue full).",
	"eval_shared_total":          "Requests answered by attaching to an identical in-flight evaluation.",
	"eval_panics_total":          "Panics recovered in handlers or evaluations.",
	"eval_timeouts_total":        "Evaluations aborted by the request timeout (504).",
	"eval_canceled_total":        "Evaluations aborted because every client disconnected (499).",
	"eval_inflight":              "Job slots currently occupied.",
	"result_puts_total":          "Peer result uploads accepted.",
	"result_puts_rejected_total": "Peer result uploads rejected before touching the store.",

	"response_bytes_cache_hits_total":      "Warm grids answered from cached canonical response bytes.",
	"response_bytes_cache_misses_total":    "Response-byte cache lookups that missed.",
	"response_bytes_cache_evictions_total": "Response-byte cache entries evicted by the byte budget.",
	"response_bytes_cache_entries":         "Response-byte cache resident entries.",
	"response_bytes_cache_bytes":           "Response-byte cache resident bytes.",

	"traces_sampled_total": "Requests head-sampled (or joined from a traceparent) into the trace ring.",
	"traces_slow_total":    "Requests at or over the slow threshold (sampled or captured post hoc).",
}
