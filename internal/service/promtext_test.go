package service

import (
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// This file is a minimal Prometheus text-exposition parser and the
// validity test built on it: every sample /metrics emits must belong to
// a family with HELP and TYPE declared first, carry a legal metric
// name, and — for histograms — have monotone bucket counts whose +Inf
// bucket equals the family's _count. Substring checks elsewhere pin
// individual metrics; this test pins the format itself, so a scrape by
// a real Prometheus never half-works.

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// promSample is one parsed sample line.
type promSample struct {
	name   string            // full name including _bucket/_sum/_count
	labels map[string]string // nil when the line has no label set
	value  float64
	line   int
}

// promFamily is the declared metadata for one metric family.
type promFamily struct {
	help, typ string
	declared  int // line of the first declaration
}

// parsePromText parses the exposition text, failing the test on any
// line that is neither a comment, a blank, nor a well-formed sample.
func parsePromText(t *testing.T, text string) (map[string]*promFamily, []promSample) {
	t.Helper()
	families := make(map[string]*promFamily)
	var samples []promSample
	for i, line := range strings.Split(text, "\n") {
		ln := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln, line)
			}
			name := fields[2]
			if !metricNameRe.MatchString(name) {
				t.Fatalf("line %d: illegal metric name %q", ln, name)
			}
			f := families[name]
			if f == nil {
				f = &promFamily{declared: ln}
				families[name] = f
			}
			switch fields[1] {
			case "HELP":
				if f.help != "" {
					t.Fatalf("line %d: duplicate HELP for %s", ln, name)
				}
				f.help = fields[3]
			case "TYPE":
				if f.typ != "" {
					t.Fatalf("line %d: duplicate TYPE for %s", ln, name)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown TYPE %q for %s", ln, fields[3], name)
				}
				f.typ = fields[3]
			}
			continue
		}
		name, labels, val := parsePromSample(t, ln, line)
		samples = append(samples, promSample{name: name, labels: labels, value: val, line: ln})
	}
	return families, samples
}

// parsePromSample splits `name{l1="v1",l2="v2"} value` (labels optional).
func parsePromSample(t *testing.T, ln int, line string) (string, map[string]string, float64) {
	t.Helper()
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		t.Fatalf("line %d: no value separator in %q", ln, line)
	}
	name := line[:nameEnd]
	if !metricNameRe.MatchString(name) {
		t.Fatalf("line %d: illegal metric name %q", ln, name)
	}
	rest := line[nameEnd:]
	var labels map[string]string
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			t.Fatalf("line %d: unterminated label set in %q", ln, line)
		}
		labels = make(map[string]string)
		for _, pair := range strings.Split(rest[1:close], ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: malformed label %q in %q", ln, pair, line)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", ln, valStr, err)
	}
	return name, labels, val
}

// familyOf maps a sample name to its declared family: histogram series
// drop the _bucket/_sum/_count suffix.
func familyOf(name string, families map[string]*promFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f := families[base]; f != nil && f.typ == "histogram" {
				return base
			}
		}
	}
	return name
}

// TestMetricsPrometheusWellFormed scrapes a traced server after real
// traffic and validates the whole exposition.
func TestMetricsPrometheusWellFormed(t *testing.T) {
	_, _, hs := newTracedServer(t, t.TempDir())
	if status, _, _ := postEvalTraced(t, hs.URL, testGridQuick); status != http.StatusOK {
		t.Fatal("eval failed")
	}
	postEvalTraced(t, hs.URL, testGridQuick) // warm hit, so cache counters move
	get(t, hs.URL+"/healthz")

	status, body := get(t, hs.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("GET /metrics: %d", status)
	}
	families, samples := parsePromText(t, string(body))
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// Every sample's family is fully declared, before the sample.
	for _, s := range samples {
		fam := familyOf(s.name, families)
		f := families[fam]
		if f == nil {
			t.Errorf("line %d: sample %s has no HELP/TYPE declaration", s.line, s.name)
			continue
		}
		if f.help == "" || f.typ == "" {
			t.Errorf("family %s: missing %s", fam, map[bool]string{true: "HELP", false: "TYPE"}[f.help == ""])
		}
		if f.declared > s.line {
			t.Errorf("line %d: sample %s precedes its declaration at line %d", s.line, s.name, f.declared)
		}
		if f.typ == "counter" && s.value < 0 {
			t.Errorf("line %d: counter %s is negative: %g", s.line, s.name, s.value)
		}
	}
	// No family is declared and then never sampled.
	sampled := make(map[string]bool)
	for _, s := range samples {
		sampled[familyOf(s.name, families)] = true
	}
	for fam := range families {
		if !sampled[fam] {
			t.Errorf("family %s declared but has no samples", fam)
		}
	}

	// Histogram shape: per label set, buckets monotone over increasing le,
	// +Inf present and equal to _count.
	type series struct {
		le     []float64
		counts map[float64]float64
		sum    float64
		count  float64
		hasCnt bool
	}
	hists := make(map[string]*series) // keyed by family + label signature (minus le)
	sigOf := func(fam string, labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		sig := fam
		for _, k := range keys {
			sig += "|" + k + "=" + labels[k]
		}
		return sig
	}
	for _, s := range samples {
		fam := familyOf(s.name, families)
		if f := families[fam]; f == nil || f.typ != "histogram" {
			continue
		}
		sig := sigOf(fam, s.labels)
		h := hists[sig]
		if h == nil {
			h = &series{counts: make(map[float64]float64)}
			hists[sig] = h
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			leStr, ok := s.labels["le"]
			if !ok {
				t.Errorf("line %d: %s bucket without le label", s.line, s.name)
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Errorf("line %d: bad le %q", s.line, leStr)
				continue
			}
			h.le = append(h.le, le)
			h.counts[le] = s.value
		case strings.HasSuffix(s.name, "_sum"):
			h.sum = s.value
		case strings.HasSuffix(s.name, "_count"):
			h.count, h.hasCnt = s.value, true
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series parsed")
	}
	for sig, h := range hists {
		sort.Float64s(h.le)
		prev := -1.0
		for i, le := range h.le {
			if i > 0 && h.counts[le] < prev {
				t.Errorf("%s: bucket le=%g count %g < previous %g", sig, le, h.counts[le], prev)
			}
			prev = h.counts[le]
		}
		inf, ok := h.counts[math.Inf(1)]
		if !ok {
			t.Errorf("%s: no +Inf bucket", sig)
			continue
		}
		if !h.hasCnt {
			t.Errorf("%s: no _count series", sig)
		} else if inf != h.count {
			t.Errorf("%s: +Inf bucket %g != _count %g", sig, inf, h.count)
		}
		if h.count > 0 && h.sum < 0 {
			t.Errorf("%s: negative _sum %g", sig, h.sum)
		}
	}
}
