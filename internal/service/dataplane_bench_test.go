package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/scenario"
)

// The dataplane benchmarks measure the serve path alone: one warm request
// through the full handler stack against a reusable request and a null
// ResponseWriter, so allocs/op and ns/op are the service's own cost — no
// client, no sockets, no recorder. BenchmarkServeEvalWarm is the number
// the ServeLoad CI gate tracks: what answering an already-solved grid
// costs per request.

// nullRW is a ResponseWriter that discards the body and reuses its header
// map, so the benchmark charges the handler's writes and nothing else.
type nullRW struct {
	h      http.Header
	status int
	n      int
}

func (w *nullRW) Header() http.Header         { return w.h }
func (w *nullRW) Write(p []byte) (int, error) { w.n += len(p); return len(p), nil }
func (w *nullRW) WriteHeader(s int)           { w.status = s }

// reset clears per-request state without reallocating the header map.
func (w *nullRW) reset() {
	w.status, w.n = 0, 0
	for k := range w.h {
		delete(w.h, k)
	}
}

// evalBody is a replayable request body: Seek(0) rearms it for the next
// iteration without allocating a fresh reader.
type evalBody struct{ *bytes.Reader }

func (evalBody) Close() error { return nil }

// newWarmBench wires a memory-only server, primes one cheap grid, and
// returns a rearming request for it.
func newWarmBench(b testing.TB, grid string) (http.Handler, *http.Request, *evalBody, *nullRW) {
	b.Helper()
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 4})
	h := srv.Handler()
	payload, err := json.Marshal(EvalRequest{Grid: grid})
	if err != nil {
		b.Fatal(err)
	}
	body := &evalBody{bytes.NewReader(payload)}
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", body)
	w := &nullRW{h: http.Header{}}
	h.ServeHTTP(w, req)
	if w.status != http.StatusOK {
		b.Fatalf("prime request: status %d", w.status)
	}
	return h, req, body, w
}

// BenchmarkServeEvalWarm is one warm POST /v1/eval — every layer below
// the service has already solved and cached this grid, so the measured
// cost is pure dataplane: request parse, lookup, response write.
func BenchmarkServeEvalWarm(b *testing.B) {
	h, req, body, w := newWarmBench(b, testGridQuick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body.Seek(0, 0)
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			b.Fatalf("status %d", w.status)
		}
	}
}
