package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/remotestore"
	"repro/internal/scenario"
	"repro/internal/store"
)

// newDataplaneServer is newTestServer with a configurable response-byte
// cache budget.
func newDataplaneServer(t *testing.T, dir string, respBytes int64) (*Server, *httptest.Server) {
	t.Helper()
	cache := scenario.NewCache()
	var st *store.Store
	if dir != "" {
		var err error
		st, err = store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache.SetBackend(st)
	}
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, Store: st, MaxJobs: 4, RespCacheMaxBytes: respBytes})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

// TestByteCacheHitByteIdentical is the tentpole invariant: a byte-cache
// hit returns bytes IDENTICAL to the cold marshal, and the second request
// for a grid is served from the cache (a counted hit), not re-marshaled.
func TestByteCacheHitByteIdentical(t *testing.T) {
	srv, hs := newDataplaneServer(t, t.TempDir(), 0)
	status, cold := postEval(t, hs.URL, testGridQuick)
	if status != http.StatusOK {
		t.Fatalf("cold eval: %d %s", status, cold)
	}
	status, warm := postEval(t, hs.URL, testGridQuick)
	if status != http.StatusOK {
		t.Fatalf("warm eval: %d", status)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("byte-cache hit differs from cold marshal:\ncold %q\nwarm %q", cold, warm)
	}
	if st := srv.resp.stats(); st.Hits < 1 {
		t.Fatalf("expected a byte-cache hit, stats %+v", st)
	}
	// Whitespace-normalized spellings of the same grid share the entry.
	status, sloppy := postEval(t, hs.URL, "  "+strings.Replace(testGridQuick, " ", "   ", 1)+" ")
	if status != http.StatusOK || !bytes.Equal(cold, sloppy) {
		t.Fatalf("normalized spelling missed the cache: %d", status)
	}
}

// TestByteCacheEvictionByteIdentity squeezes the cache to one entry: the
// evicted grid must re-populate with byte-identical content — eviction
// can cost a re-marshal, never a different (or partial) response.
func TestByteCacheEvictionByteIdentity(t *testing.T) {
	gridA := testGridQuick
	gridB := strings.Replace(testGridQuick, "seed=1", "seed=2", 1)
	_, cold := postEval(t, newOneShot(t, gridA), gridA)

	srv, hs := newDataplaneServer(t, t.TempDir(), int64(len(cold))+16)
	status, a1 := postEval(t, hs.URL, gridA)
	if status != http.StatusOK {
		t.Fatalf("eval A: %d", status)
	}
	if status, _ := postEval(t, hs.URL, gridB); status != http.StatusOK {
		t.Fatalf("eval B: %d", status)
	}
	status, a2 := postEval(t, hs.URL, gridA)
	if status != http.StatusOK {
		t.Fatalf("re-eval A: %d", status)
	}
	if !bytes.Equal(a1, a2) {
		t.Fatal("response for evicted grid changed after re-populate")
	}
	if st := srv.resp.stats(); st.Evictions == 0 {
		t.Fatalf("budget for one entry, two grids: expected evictions, stats %+v", st)
	}
}

// newOneShot spins a throwaway memory-only server just to learn a grid's
// canonical response size.
func newOneShot(t *testing.T, grid string) string {
	t.Helper()
	_, hs := newTestServer(t, "", 4)
	return hs.URL
}

func evalPointKey(t *testing.T, url, grid string) string {
	t.Helper()
	status, body := postEval(t, url, grid)
	if status != http.StatusOK {
		t.Fatalf("eval: %d %s", status, body)
	}
	var resp EvalResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) == 0 || resp.Points[0].Key == "" {
		t.Fatalf("no point key in response: %s", body)
	}
	return resp.Points[0].Key
}

func getWithHeaders(t *testing.T, url string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestResult304NoStoreRead is the satellite regression test: a
// revalidation answered 304 must not touch the store at all — content
// addressing makes representations immutable, so a matching ETag is
// proof enough. Store hit/miss counters are the witness.
func TestResult304NoStoreRead(t *testing.T) {
	srv, hs := newDataplaneServer(t, t.TempDir(), 0)
	key := evalPointKey(t, hs.URL, testGridQuick)

	resp := getWithHeaders(t, hs.URL+"/v1/result/"+key, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d", resp.StatusCode)
	}
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("no ETag on result response")
	}
	resp.Body.Close()

	before := srv.cfg.Store.Stats()
	for _, inm := range []string{etag, "*", `W/` + etag, `"bogus", ` + etag} {
		resp := getWithHeaders(t, hs.URL+"/v1/result/"+key, map[string]string{"If-None-Match": inm})
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("If-None-Match %q: got %d want 304", inm, resp.StatusCode)
		}
		if resp.Header.Get("Etag") != etag {
			t.Fatalf("304 lost the ETag: %q", resp.Header.Get("Etag"))
		}
		var buf [1]byte
		if n, _ := resp.Body.Read(buf[:]); n != 0 {
			t.Fatal("304 carried a body")
		}
	}
	after := srv.cfg.Store.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("304 touched the store: before %+v after %+v", before, after)
	}

	// A non-matching validator still serves the full body (and reads the
	// store again).
	resp = getWithHeaders(t, hs.URL+"/v1/result/"+key, map[string]string{"If-None-Match": `"nope"`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale validator: got %d want 200", resp.StatusCode)
	}
}

// TestResultHeaders: Content-Length and representation-specific ETags on
// both views, and raw TBRS bytes decoding to the same values as the JSON
// view.
func TestResultHeaders(t *testing.T) {
	_, hs := newDataplaneServer(t, t.TempDir(), 0)
	key := evalPointKey(t, hs.URL, testGridQuick)

	jr := getWithHeaders(t, hs.URL+"/v1/result/"+key, nil)
	jbody := readAll(t, jr)
	if cl := jr.Header.Get("Content-Length"); cl != itoa(len(jbody)) {
		t.Fatalf("json Content-Length %q, body %d bytes", cl, len(jbody))
	}
	jtag := jr.Header.Get("Etag")
	if !strings.HasPrefix(jtag, `"`+key+".j") {
		t.Fatalf("json ETag %q", jtag)
	}
	var stored struct {
		Values []float64 `json:"values"`
	}
	if err := json.Unmarshal(jbody, &stored); err != nil {
		t.Fatal(err)
	}

	tr := getWithHeaders(t, hs.URL+"/v1/result/"+key, map[string]string{"Accept": remotestore.ContentType})
	tbody := readAll(t, tr)
	if ct := tr.Header.Get("Content-Type"); ct != remotestore.ContentType {
		t.Fatalf("tbrs Content-Type %q", ct)
	}
	if cl := tr.Header.Get("Content-Length"); cl != itoa(len(tbody)) {
		t.Fatalf("tbrs Content-Length %q, body %d bytes", cl, len(tbody))
	}
	ttag := tr.Header.Get("Etag")
	if !strings.HasPrefix(ttag, `"`+key+".t") || ttag == jtag {
		t.Fatalf("tbrs ETag %q (json %q): representations must not share validators", ttag, jtag)
	}
	vals, ok := store.DecodeValues(tbody)
	if !ok {
		t.Fatal("raw TBRS response failed codec verification")
	}
	if len(vals) != len(stored.Values) {
		t.Fatalf("tbrs %d values, json %d", len(vals), len(stored.Values))
	}
	for i := range vals {
		if vals[i] != stored.Values[i] {
			t.Fatalf("value %d: tbrs %v json %v", i, vals[i], stored.Values[i])
		}
	}

	// The JSON validator must not revalidate the TBRS view and vice versa.
	x := getWithHeaders(t, hs.URL+"/v1/result/"+key,
		map[string]string{"Accept": remotestore.ContentType, "If-None-Match": jtag})
	if x.StatusCode != http.StatusOK {
		t.Fatalf("json ETag revalidated the TBRS view: %d", x.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestEtagMatch(t *testing.T) {
	etag := `"abc.j1"`
	cases := []struct {
		header string
		want   bool
	}{
		{etag, true},
		{`*`, true},
		{` * `, true},
		{`W/` + etag, true},
		{`"x", ` + etag, true},
		{`"x",` + etag + `, "y"`, true},
		{`"abc.j2"`, false},
		{`abc.j1`, false},
		{``, false},
		{`"x", "y"`, false},
	}
	for _, c := range cases {
		if got := etagMatch(c.header, etag); got != c.want {
			t.Errorf("etagMatch(%q) = %v, want %v", c.header, got, c.want)
		}
	}
}

// TestWarmEvalAllocs pins the dataplane's per-request allocation budget:
// a warm POST /v1/eval through the full handler stack. The pre-PR number
// was 60 allocs/op; the byte cache plus pooled scratch brings it to 8.
// The bound leaves slack for Go-version drift but fails on any regression
// that reintroduces per-request marshal or parse garbage.
func TestWarmEvalAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts include race-detector instrumentation")
	}
	h, req, body, w := newWarmBench(t, testGridQuick)
	allocs := testing.AllocsPerRun(200, func() {
		body.Seek(0, 0)
		w.reset()
		h.ServeHTTP(w, req)
		if w.status != http.StatusOK {
			t.Fatalf("status %d", w.status)
		}
	})
	if allocs > 12 {
		t.Errorf("warm eval: %.0f allocs/op, budget 12", allocs)
	}
}

// TestMetricsDataplane: the new byte-cache counters and the request
// histogram appear on /metrics.
func TestMetricsDataplane(t *testing.T) {
	_, hs := newDataplaneServer(t, "", 0)
	postEval(t, hs.URL, testGridQuick)
	postEval(t, hs.URL, testGridQuick)
	if v := metric(t, hs.URL, "response_bytes_cache_hits_total"); v < 1 {
		t.Fatalf("byte-cache hits: %d", v)
	}
	if v := metric(t, hs.URL, "response_bytes_cache_misses_total"); v < 1 {
		t.Fatalf("byte-cache misses: %d", v)
	}
	_, body := get(t, hs.URL+"/metrics")
	for _, want := range []string{
		"topobench_request_seconds_bucket{route=\"eval\",le=\"+Inf\"}",
		"topobench_request_seconds_bucket{route=\"other\",le=\"+Inf\"}",
		"topobench_request_seconds_sum{route=\"eval\"}",
		"topobench_request_seconds_count{route=\"eval\"}",
		"topobench_response_bytes_cache_evictions_total",
		"# TYPE topobench_request_seconds histogram",
		"# TYPE topobench_eval_requests_total counter",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}

// TestJobAdoptsByteCache: a job finished by a previous process answers
// its FIRST result poll with 200 when the new process already holds the
// canonical bytes in its byte cache (a synchronous adoption, no replay
// round-trip), and the bytes match the synchronous eval's.
func TestJobAdoptsByteCache(t *testing.T) {
	dir := t.TempDir()
	_, hsA := newTestServer(t, dir, 4)
	var sub struct {
		Job  string `json:"job"`
		Poll string `json:"poll"`
	}
	status, body := postJSON(t, hsA.URL+"/v1/jobs", `{"grid":"`+testGridQuick+`"}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d %s", status, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, hsA.URL, sub.Job)

	// "Restart": a fresh process over the same store, byte cache warmed by
	// a synchronous eval of the same grid.
	_, hsB := newTestServer(t, dir, 4)
	status, evalBody := postEval(t, hsB.URL, testGridQuick)
	if status != http.StatusOK {
		t.Fatalf("warm eval on B: %d", status)
	}
	status, jobBody := get(t, hsB.URL+"/v1/jobs/"+sub.Job+"/result")
	if status != http.StatusOK {
		t.Fatalf("first poll after restart: got %d want 200 (byte-cache adoption should be synchronous)", status)
	}
	if !bytes.Equal(jobBody, evalBody) {
		t.Fatal("adopted job bytes differ from the synchronous eval's")
	}
}

func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

func waitJobDone(t *testing.T, url, id string) {
	t.Helper()
	deadline := 200
	for i := 0; i < deadline; i++ {
		_, body := get(t, url+"/v1/jobs/"+id)
		var st struct {
			State string `json:"state"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s: %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not done after %d polls", id, deadline)
}
