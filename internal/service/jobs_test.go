package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

// lingerEval holds the late-waiter window open deterministically: its
// FIRST evaluation parks, acknowledges the flight's cancellation (so the
// flight is canceled-but-still-in-the-map), and only returns once
// released. Every later evaluation succeeds immediately.
type lingerEval struct{}

var (
	lingerFirst    atomic.Bool
	lingerEntered  = make(chan struct{}, 16)
	lingerCanceled = make(chan struct{}, 16)
	lingerRelease  = make(chan struct{}, 16)
)

func (lingerEval) Spec() string { return "testlinger" }

func (lingerEval) Evaluate(ctx *scenario.EvalContext) (float64, error) {
	if lingerFirst.CompareAndSwap(true, false) {
		lingerEntered <- struct{}{}
		<-ctx.Cancel
		lingerCanceled <- struct{}{}
		<-lingerRelease
		return 0, errors.New("solve aborted by cancellation")
	}
	return 1, nil
}

func init() {
	scenario.RegisterEvaluator("testlinger", func(p scenario.Params) (scenario.Evaluator, error) {
		return lingerEval{}, p.Reader().Err()
	})
}

// TestLateWaiterNeverSeesForeign499 pins the late-attach fix: a request
// arriving while a flight for the same grid is canceled (all PRIOR
// clients disconnected) but not yet torn down must get a fresh
// evaluation, not the canceled flight's replayed 499. Pre-fix, the new
// client attached to the dead flight and was told IT had disconnected.
func TestLateWaiterNeverSeesForeign499(t *testing.T) {
	lingerFirst.Store(true)
	srv, hs := newTestServer(t, "", 2)
	grid := "topo=rrg:n=8,deg=3 traffic=none eval=testlinger runs=1 seed=1"

	// Client 1 starts the flight and disconnects; the evaluator
	// acknowledges the cancellation but keeps the flight's teardown parked,
	// holding open the canceled-flight-in-the-map window.
	body, _ := json.Marshal(EvalRequest{Grid: grid})
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req = req.WithContext(ctx)
	go func() {
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	<-lingerEntered
	cancel()
	<-lingerCanceled

	// Client 2 asks for the same grid, live and patient.
	shared0 := srv.shared.Load()
	type res struct {
		status int
		body   []byte
	}
	resc := make(chan res, 1)
	go func() {
		status, b := postEval(t, hs.URL, grid)
		resc <- res{status, b}
	}()

	var got res
	deadline := time.After(10 * time.Second)
poll:
	for {
		select {
		case got = <-resc:
			break poll
		case <-deadline:
			t.Fatal("late waiter never completed")
		case <-time.After(2 * time.Millisecond):
			if srv.shared.Load() > shared0 {
				// The late waiter attached to the canceled flight (the
				// pre-fix path): release the parked teardown so its replayed
				// bytes arrive, then fail on them below.
				select {
				case lingerRelease <- struct{}{}:
				default:
				}
			}
		}
	}
	lingerRelease <- struct{}{} // let the first flight's teardown finish either way

	if got.status != http.StatusOK {
		t.Fatalf("late waiter got %d %s — a canceled flight's 499 replayed to a live client", got.status, got.body)
	}
	// And the server is clean afterwards: the same grid still serves.
	if status, b := postEval(t, hs.URL, grid); status != http.StatusOK {
		t.Fatalf("post-race eval: %d %s", status, b)
	}
}

// submitJob POSTs a grid to /v1/jobs and returns the status plus the
// accepted job id (empty unless 202).
func submitJobReq(t *testing.T, url, grid string) (int, string) {
	t.Helper()
	body, _ := json.Marshal(EvalRequest{Grid: grid})
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, ""
	}
	var acc struct {
		Job  string `json:"job"`
		Poll string `json:"poll"`
	}
	if err := json.Unmarshal(data, &acc); err != nil || acc.Job == "" {
		t.Fatalf("malformed accept body: %s", data)
	}
	if acc.Poll != "/v1/jobs/"+acc.Job {
		t.Fatalf("poll path %q does not address job %q", acc.Poll, acc.Job)
	}
	return resp.StatusCode, acc.Job
}

type jobStatus struct {
	Job    string `json:"job"`
	Grid   string `json:"grid"`
	State  string `json:"state"`
	Done   uint32 `json:"done"`
	Total  uint32 `json:"total"`
	Result string `json:"result"`
	Error  string `json:"error"`
}

// pollState polls the job until its reported state is one of want (or
// the deadline passes).
func pollState(t *testing.T, url, id string, want ...string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		status, body := get(t, url+"/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll: %d %s", status, body)
		}
		var st jobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("poll body %q: %v", body, err)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q (want %v)", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobLifecycle: submit → 202 immediately → poll to done → result
// bytes equal the synchronous /v1/eval bytes for the same grid → DELETE
// discards the terminal record.
func TestJobLifecycle(t *testing.T) {
	_, hs := newTestServer(t, t.TempDir(), 2)

	status, id := submitJobReq(t, hs.URL, testGridQuick)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d", status)
	}
	st := pollState(t, hs.URL, id, "done")
	if st.Done != st.Total || st.Total == 0 {
		t.Fatalf("done job progress %d/%d", st.Done, st.Total)
	}
	if st.Result == "" {
		t.Fatal("done status carries no result path")
	}
	rstatus, rbody := get(t, hs.URL+st.Result)
	if rstatus != http.StatusOK {
		t.Fatalf("result: %d %s", rstatus, rbody)
	}
	estatus, ebody := postEval(t, hs.URL, testGridQuick)
	if estatus != http.StatusOK {
		t.Fatalf("sync eval: %d", estatus)
	}
	if !bytes.Equal(rbody, ebody) {
		t.Fatalf("job result differs from the synchronous bytes\n--- job ---\n%s--- sync ---\n%s", rbody, ebody)
	}
	if got := metric(t, hs.URL, "jobs_done_total"); got != 1 {
		t.Fatalf("jobs done metric: %d", got)
	}

	// DELETE on a terminal job discards its record entirely.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete terminal job: %d", resp.StatusCode)
	}
	if gstatus, _ := get(t, hs.URL+"/v1/jobs/"+id); gstatus != http.StatusNotFound {
		t.Fatalf("discarded job still known: %d", gstatus)
	}
}

// TestJobSurvivesRestart: a finished job's record outlives the process —
// a fresh server over the same store dir answers the SAME job id with
// byte-identical result bytes (replayed through the warm store). An
// unfinished (queued) record left by a crash re-dispatches to completion.
func TestJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, hs1 := newTestServer(t, dir, 2)
	_, id := submitJobReq(t, hs1.URL, testGridQuick)
	pollState(t, hs1.URL, id, "done")
	_, ref := get(t, hs1.URL+"/v1/jobs/"+id+"/result")
	hs1.Close()

	// Simulate a crash mid-queue too: a second record that never ran.
	crashed := store.JobRecord{
		ID: "c0ffee", Grid: testGridQuick, State: store.JobQueued,
		Total: 1, Created: time.Now().UnixNano(), Updated: time.Now().UnixNano(),
	}
	if err := srv1.cfg.Store.SaveJob(crashed); err != nil {
		t.Fatal(err)
	}

	srv2, hs2 := newTestServer(t, dir, 2)
	if n := srv2.RecoverJobs(); n != 2 {
		t.Fatalf("recovered %d jobs, want 2", n)
	}
	// The finished job replays to byte-identical completion.
	pollState(t, hs2.URL, id, "done")
	rstatus, rbody := get(t, hs2.URL+"/v1/jobs/"+id+"/result")
	if rstatus != http.StatusOK || !bytes.Equal(rbody, ref) {
		t.Fatalf("restarted result: %d, byte-identical=%v", rstatus, bytes.Equal(rbody, ref))
	}
	if got := metric(t, hs2.URL, "jobs_replay_mismatch_total"); got != 0 {
		t.Fatalf("replay mismatches: %d", got)
	}
	// The crashed queued job re-dispatched and finished with the same bytes.
	pollState(t, hs2.URL, "c0ffee", "done")
	if status, body := get(t, hs2.URL+"/v1/jobs/c0ffee/result"); status != http.StatusOK || !bytes.Equal(body, ref) {
		t.Fatalf("recovered queued job: %d, byte-identical=%v", status, bytes.Equal(body, ref))
	}
}

// TestJobCancel: DELETE on a running job cancels through the flight path;
// the job lands in canceled with the 499 status recorded, and the claim
// on a fresh solve is not needed — the evaluation stops burning.
func TestJobCancel(t *testing.T) {
	_, hs := newTestServer(t, t.TempDir(), 2)
	grid := "topo=rrg:n=8,deg=5 traffic=none eval=testcancel runs=1 seed=1"
	_, id := submitJobReq(t, hs.URL, grid)
	<-cancelEntered // the solve is running and parked on its Cancel channel

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running job: %d", resp.StatusCode)
	}
	st := pollState(t, hs.URL, id, "canceled")
	if st.Error == "" {
		t.Fatal("canceled job carries no reason")
	}
	if status, _ := get(t, hs.URL+"/v1/jobs/"+id+"/result"); status != 499 {
		t.Fatalf("canceled job result status: %d, want 499", status)
	}
	if got := metric(t, hs.URL, "jobs_canceled_total"); got != 1 {
		t.Fatalf("jobs canceled metric: %d", got)
	}
}

// TestJobUnknownAndCorrupt: unknown ids 404 with the resubmit hint, and a
// corrupt record reads as unknown AND is swept — the job-record rung of
// the degradation ladder.
func TestJobUnknownAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	srv, hs := newTestServer(t, dir, 2)
	for _, id := range []string{"deadbeef", "not-HEX!", "0123zz"} {
		status, body := get(t, hs.URL+"/v1/jobs/"+id)
		if status != http.StatusNotFound {
			t.Fatalf("unknown job %q: %d %s", id, status, body)
		}
	}

	// A record that rotted on disk: unknown, and the damage is dropped.
	rec := store.JobRecord{ID: "abcd", Grid: testGridQuick, State: store.JobDone, Status: 200, Total: 1, Done: 1}
	if err := srv.cfg.Store.SaveJob(rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "jobs", "abcd")
	if err := os.WriteFile(path, []byte("bit rot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if status, _ := get(t, hs.URL+"/v1/jobs/abcd"); status != http.StatusNotFound {
		t.Fatalf("corrupt record answered %d, want 404", status)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt record not swept")
	}
	if got := metric(t, hs.URL, "jobs_unknown_total"); got != 4 {
		t.Fatalf("unknown-job metric: %d, want 4", got)
	}
}

// TestJobTableBound: MaxQueuedJobs rejects further submissions with 429 —
// the async path gets backpressure too, just at a much higher ceiling.
func TestJobTableBound(t *testing.T) {
	cache := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, MaxJobs: 2, MaxQueuedJobs: 1})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	grid := "topo=rrg:n=8,deg=6 traffic=none eval=testcancel runs=1 seed=1"
	status, id := submitJobReq(t, hs.URL, grid)
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d", status)
	}
	<-cancelEntered
	if status, _ := submitJobReq(t, hs.URL, testGridQuick); status != http.StatusTooManyRequests {
		t.Fatalf("over-bound submit: %d, want 429", status)
	}
	if got := metric(t, hs.URL, "jobs_rejected_total"); got != 1 {
		t.Fatalf("jobs rejected metric: %d", got)
	}
	// Malformed grids fail the submission, not the job.
	if status, _ := submitJobReq(t, hs.URL, "topo=nonsense"); status != http.StatusBadRequest {
		t.Fatalf("bad grid submit: %d, want 400", status)
	}
	// Unwedge: cancel the parked job.
	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
	pollState(t, hs.URL, id, "canceled")
}
