package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/store"
)

const testGrid = "topo=rrg:n=16,deg=6,sps=2 traffic=permutation eval=mcf sweep=deg:4..6:2 runs=2 eps=0.12 seed=1"

// newTestServer wires a service exactly as `topobench serve -cache-dir`
// does: tiered cache over a store in dir (or memory-only when dir is "").
func newTestServer(t *testing.T, dir string, maxJobs int) (*Server, *httptest.Server) {
	t.Helper()
	cache := scenario.NewCache()
	var st *store.Store
	if dir != "" {
		var err error
		st, err = store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache.SetBackend(st)
	}
	eng := &scenario.Engine{Parallel: 1, Cache: cache, SkipInfeasible: true}
	srv := New(Config{Engine: eng, Cache: cache, Store: st, MaxJobs: maxJobs})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return srv, hs
}

func postEval(t *testing.T, url, grid string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(EvalRequest{Grid: grid})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/eval", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// metric extracts one gauge value from a /metrics scrape.
func metric(t *testing.T, url, name string) int64 {
	t.Helper()
	_, body := get(t, url+"/metrics")
	for _, line := range strings.Split(string(body), "\n") {
		var v int64
		if _, err := fmt.Sscanf(line, "topobench_"+name+" %d", &v); err == nil {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestEvalMatchesEngineAndPersists is the end-to-end contract: the HTTP
// response equals a direct engine evaluation byte-for-byte; a re-POST is
// byte-identical; and a RESTARTED service (fresh cache + fresh store
// handle, same dir) answers the same bytes from the store without
// re-solving.
func TestEvalMatchesEngineAndPersists(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver evaluation; skipped in -short")
	}
	dir := t.TempDir()
	_, hs := newTestServer(t, dir, 4)

	status, cold := postEval(t, hs.URL, testGrid)
	if status != http.StatusOK {
		t.Fatalf("cold eval: %d %s", status, cold)
	}
	// Direct engine evaluation, cold, no cache: the reference bytes.
	ref, err := EvalGrid(&scenario.Engine{Parallel: 1, SkipInfeasible: true}, testGrid, Defaults{})
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := ref.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold, refBytes) {
		t.Fatalf("service response differs from direct evaluation:\n--- service ---\n%s--- direct ---\n%s", cold, refBytes)
	}

	status, warm := postEval(t, hs.URL, testGrid)
	if status != http.StatusOK || !bytes.Equal(warm, cold) {
		t.Fatalf("same-process warm replay differs (status %d)", status)
	}

	// Restart: a second service over the same store dir.
	srv2, hs2 := newTestServer(t, dir, 4)
	status, restarted := postEval(t, hs2.URL, testGrid)
	if status != http.StatusOK || !bytes.Equal(restarted, cold) {
		t.Fatalf("cross-process warm replay differs (status %d):\n%s", status, restarted)
	}
	if cs := srv2.cfg.Cache.Stats(); cs.StoreHits != 2 || cs.Misses != 0 {
		t.Fatalf("restarted service did not answer from the store: %+v", cs)
	}
	if got := metric(t, hs2.URL, "cache_store_hits_total"); got != 2 {
		t.Fatalf("store-hit metric: %d, want 2", got)
	}
}

// TestResultByContentAddress: every point key in an eval response is
// retrievable via GET /v1/result/<key> with matching values.
func TestResultByContentAddress(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver evaluation; skipped in -short")
	}
	_, hs := newTestServer(t, t.TempDir(), 4)
	status, body := postEval(t, hs.URL, testGrid)
	if status != http.StatusOK {
		t.Fatalf("eval: %d %s", status, body)
	}
	var resp EvalResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(resp.Points))
	}
	for _, p := range resp.Points {
		status, rb := get(t, hs.URL+"/v1/result/"+p.Key)
		if status != http.StatusOK {
			t.Fatalf("result %s: %d %s", p.Key, status, rb)
		}
		var stored struct {
			Key    string    `json:"key"`
			Values []float64 `json:"values"`
		}
		if err := json.Unmarshal(rb, &stored); err != nil {
			t.Fatal(err)
		}
		if stored.Key != p.Key || !reflect.DeepEqual(stored.Values, p.Values) {
			t.Fatalf("stored result mismatch: %+v vs point %+v", stored, p)
		}
	}
	if status, _ := get(t, hs.URL+"/v1/result/"+strings.Repeat("ab", 32)); status != http.StatusNotFound {
		t.Fatalf("unknown address: %d, want 404", status)
	}
	if status, _ := get(t, hs.URL+"/v1/result/nothex"); status != http.StatusNotFound {
		t.Fatalf("malformed address: %d, want 404", status)
	}
}

// TestScenariosAndHealth: the registry listing includes the PR's new
// kinds, and the liveness probe answers.
func TestScenariosAndHealth(t *testing.T) {
	_, hs := newTestServer(t, "", 4)
	status, body := get(t, hs.URL+"/v1/scenarios")
	if status != http.StatusOK {
		t.Fatalf("scenarios: %d", status)
	}
	var reg struct {
		Topologies []string `json:"topologies"`
		Traffics   []string `json:"traffics"`
		Evaluators []string `json:"evaluators"`
	}
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	if !contains(reg.Topologies, "expand") || !contains(reg.Topologies, "rrg") {
		t.Fatalf("topologies missing expected kinds: %v", reg.Topologies)
	}
	if !contains(reg.Evaluators, "failures") || !contains(reg.Evaluators, "mcf") {
		t.Fatalf("evaluators missing expected kinds: %v", reg.Evaluators)
	}
	if status, body := get(t, hs.URL+"/healthz"); status != http.StatusOK || string(body) != "{\"status\":\"ok\"}\n" {
		t.Fatalf("healthz: %d %q", status, body)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestBadRequests: malformed JSON, an empty grid, and a bad grammar all
// answer 400 with a JSON error, never 500.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, "", 4)
	resp, err := http.Post(hs.URL+"/v1/eval", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %d", resp.StatusCode)
	}
	for _, grid := range []string{"", "traffic=permutation", "topo=nope:n=4", "topo=rrg bogus=1"} {
		status, body := postEval(t, hs.URL, grid)
		if status != http.StatusBadRequest {
			t.Fatalf("grid %q: status %d body %s", grid, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Fatalf("grid %q: error body %s", grid, body)
		}
	}
}

// blockEval is a registry evaluator that parks until released — the
// deterministic way to hold a job slot occupied while the test probes
// backpressure and singleflight.
type blockEval struct{}

var (
	blockEntered = make(chan struct{}, 16)
	blockRelease = make(chan struct{})
	blockOnce    sync.Once
)

func (blockEval) Spec() string { return "testblock" }

func (blockEval) Evaluate(ctx *scenario.EvalContext) (float64, error) {
	blockEntered <- struct{}{}
	<-blockRelease
	return 1, nil
}

// panicEval simulates a buggy registry evaluator.
type panicEval struct{}

func (panicEval) Spec() string { return "testpanic" }

func (panicEval) Evaluate(ctx *scenario.EvalContext) (float64, error) {
	panic("evaluator bug")
}

func init() {
	scenario.RegisterEvaluator("testblock", func(p scenario.Params) (scenario.Evaluator, error) {
		return blockEval{}, p.Reader().Err()
	})
	scenario.RegisterEvaluator("testpanic", func(p scenario.Params) (scenario.Evaluator, error) {
		return panicEval{}, p.Reader().Err()
	})
}

// TestPanicDoesNotWedgeService: a panicking evaluation answers 500, and
// neither the flight entry nor the job slot leaks — the same grid and
// fresh grids still serve afterwards, even with a single job slot.
func TestPanicDoesNotWedgeService(t *testing.T) {
	_, hs := newTestServer(t, "", 1)
	grid := "topo=rrg:n=8,deg=3 traffic=none eval=testpanic runs=1 seed=1"
	for i := 0; i < 2; i++ { // twice: a wedged flight would hang the retry
		status, body := postEval(t, hs.URL, grid)
		if status != http.StatusInternalServerError {
			t.Fatalf("attempt %d: status %d body %s", i, status, body)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "panicked") {
			t.Fatalf("attempt %d: error body %s", i, body)
		}
	}
	if status, body := postEval(t, hs.URL, testGridQuick); status != http.StatusOK {
		t.Fatalf("job slot leaked after panic: %d %s", status, body)
	}
}

// TestBackpressureAndSingleflight: with one job slot, a second DISTINCT
// grid is rejected 429 while an IDENTICAL grid waits and shares the
// leader's bytes — one evaluation, two responses.
func TestBackpressureAndSingleflight(t *testing.T) {
	srv, hs := newTestServer(t, "", 1)
	grid := "topo=rrg:n=8,deg=3 traffic=none eval=testblock runs=1 seed=1"

	type result struct {
		status int
		body   []byte
	}
	leader := make(chan result, 1)
	go func() {
		st, b := postEval(t, hs.URL, grid)
		leader <- result{st, b}
	}()
	<-blockEntered // the leader holds the only job slot now

	follower := make(chan result, 1)
	go func() {
		st, b := postEval(t, hs.URL, grid) // identical: must dedup, not 429
		follower <- result{st, b}
	}()
	// Wait until the follower has joined the flight (never evaluates).
	for srv.shared.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	status, body := postEval(t, hs.URL, "topo=rrg:n=8,deg=4 traffic=none eval=testblock runs=1 seed=1")
	if status != http.StatusTooManyRequests {
		t.Fatalf("distinct grid under full queue: %d %s", status, body)
	}
	if got := metric(t, hs.URL, "eval_rejected_total"); got != 1 {
		t.Fatalf("rejected metric: %d", got)
	}

	blockOnce.Do(func() { close(blockRelease) })
	lr, fr := <-leader, <-follower
	if lr.status != http.StatusOK || fr.status != http.StatusOK {
		t.Fatalf("leader %d / follower %d", lr.status, fr.status)
	}
	if !bytes.Equal(lr.body, fr.body) {
		t.Fatal("singleflight follower got different bytes")
	}
	if got := metric(t, hs.URL, "eval_shared_total"); got != 1 {
		t.Fatalf("shared metric: %d", got)
	}
	// Only ONE evaluation ran for the two identical requests.
	select {
	case <-blockEntered:
		t.Fatal("identical grid evaluated twice despite singleflight")
	default:
	}
	// The queue drains: a fresh grid is accepted again.
	if status, body := postEval(t, hs.URL, testGridQuick); status != http.StatusOK {
		t.Fatalf("post-drain eval: %d %s", status, body)
	}
}

const testGridQuick = "topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=aspl runs=1 seed=1"
