// Package spectral provides the expander-theoretic machinery behind the
// paper's §6.2 analysis: adjacency spectra via power iteration, the
// expander mixing lemma check, sweep cuts, and non-uniform sparsest-cut
// estimates for the two-cluster demand graph of Theorem 2.
package spectral

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// SecondEigenvalue estimates the non-principal adjacency eigenvalue of
// largest magnitude (signed) of an r-regular graph g, via power iteration
// with deflation against the all-ones top eigenvector. This is the λ of
// the expander mixing lemma: for a good expander |λ| is well separated
// from r. Note that for near-bipartite graphs the result can be negative
// (e.g. −2 for an even cycle).
func SecondEigenvalue(g *graph.Graph, iters int, rng *rand.Rand) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	deflate(v)
	normalize(v)
	w := make([]float64, n)
	var lambda float64
	for it := 0; it < iters; it++ {
		multiplyAdj(g, v, w)
		deflate(w)
		lambda = norm(w)
		if lambda == 0 {
			return 0
		}
		for i := range w {
			w[i] /= lambda
		}
		v, w = w, v
	}
	// Rayleigh quotient for the signed eigenvalue.
	multiplyAdj(g, v, w)
	var rq float64
	for i := range v {
		rq += v[i] * w[i]
	}
	return rq
}

// SpectralGap returns r - λ2 for an r-regular graph (0 for non-regular).
func SpectralGap(g *graph.Graph, iters int, rng *rand.Rand) float64 {
	r, ok := g.IsRegular()
	if !ok {
		return 0
	}
	return float64(r) - SecondEigenvalue(g, iters, rng)
}

// multiplyAdj computes w = A·v using link multiplicity (capacity ignored).
func multiplyAdj(g *graph.Graph, v, w []float64) {
	for i := range w {
		w[i] = 0
	}
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		w[arc.To] += v[arc.From]
	}
}

func deflate(v []float64) {
	var mean float64
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func norm(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// MixingCheck verifies the expander mixing lemma on a vertex subset S of an
// r-regular graph: |e(S, V\S) - r·|S|·|V\S|/n| ≤ λ·sqrt(|S|·|V\S|), where
// λ is the second eigenvalue magnitude. Returns the deviation and the
// lemma's allowance; deviation ≤ allowance for a true expander.
func MixingCheck(g *graph.Graph, inS []bool, lambda float64) (deviation, allowance float64) {
	n := g.N()
	var sizeS int
	for _, b := range inS {
		if b {
			sizeS++
		}
	}
	sizeT := n - sizeS
	var cut float64
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		if inS[arc.From] && !inS[arc.To] {
			cut++ // counts each undirected cut link once (one direction)
		}
	}
	r, _ := g.IsRegular()
	expected := float64(r) * float64(sizeS) * float64(sizeT) / float64(n)
	deviation = math.Abs(cut - expected)
	allowance = math.Abs(lambda) * math.Sqrt(float64(sizeS)*float64(sizeT))
	return deviation, allowance
}

// SweepCut computes an approximate sparsest (conductance) cut by sorting
// nodes along the second eigenvector and sweeping the threshold. Returns
// the best cut's conductance and node set.
func SweepCut(g *graph.Graph, iters int, rng *rand.Rand) (conductance float64, inS []bool) {
	n := g.N()
	if n < 2 {
		return 0, make([]bool, n)
	}
	v := fiedlerish(g, iters, rng)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return v[order[a]] < v[order[b]] })

	vol := make([]float64, n) // weighted degree
	var volAll float64
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		vol[arc.From] += arc.Cap
		volAll += arc.Cap
	}
	in := make([]bool, n)
	best := math.Inf(1)
	bestK := 0
	var volS, cut float64
	for k := 0; k < n-1; k++ {
		u := order[k]
		in[u] = true
		volS += vol[u]
		// Update the cut: arcs from u to outside increase it; arcs from u
		// to inside remove previously-counted cut arcs.
		for _, ai := range g.OutArcs(u) {
			arc := g.Arc(int(ai))
			if in[arc.To] {
				cut -= arc.Cap
			} else {
				cut += arc.Cap
			}
		}
		denom := math.Min(volS, volAll-volS)
		if denom <= 0 {
			continue
		}
		if phi := cut / denom; phi < best {
			best = phi
			bestK = k
		}
	}
	inS = make([]bool, n)
	for k := 0; k <= bestK; k++ {
		inS[order[k]] = true
	}
	return best, inS
}

// fiedlerish returns an approximate second adjacency eigenvector.
func fiedlerish(g *graph.Graph, iters int, rng *rand.Rand) []float64 {
	n := g.N()
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	deflate(v)
	normalize(v)
	w := make([]float64, n)
	// Power-iterate on (A + cI) to favor the largest signed eigenvalue and
	// keep the iteration stable; c = max degree.
	var c float64
	for i := 0; i < n; i++ {
		if d := float64(g.Degree(i)); d > c {
			c = d
		}
	}
	for it := 0; it < iters; it++ {
		multiplyAdj(g, v, w)
		for i := range w {
			w[i] += c * v[i]
		}
		deflate(w)
		normalize(w)
		v, w = w, v
	}
	return v
}

// SparsestCutBipartite computes the exact non-uniform sparsest cut value
// for the two-cluster complete-bipartite demand graph K_{V1,V2} of §6.2,
// restricted to cuts of the form S = (k1 ⊆ V1) ∪ (k2 ⊆ V2) where the
// lemma's extremes (k1, k2) ∈ {(k,0), (0,k)} are scanned exhaustively and
// greedy node orderings approximate the interior. Cap(S)/Dem(S) with
// Dem(S) = |S∩V1|·|V2\S| + |S∩V2|·|V1\S|.
//
// For the graphs of Lemma 2 the minimum is attained at one-sided cuts, so
// the scan is exact up to the greedy ordering of which nodes enter first
// (we order by external degree, matching the expander-mixing argument).
func SparsestCutBipartite(g *graph.Graph, inV1 []bool) float64 {
	n := g.N()
	var v1, v2 []int
	for i := 0; i < n; i++ {
		if inV1[i] {
			v1 = append(v1, i)
		} else {
			v2 = append(v2, i)
		}
	}
	best := math.Inf(1)
	try := func(side, other []int) {
		// Greedy: add nodes of `side` in order of increasing degree.
		ord := append([]int(nil), side...)
		deg := make(map[int]float64, len(side))
		for _, u := range side {
			for _, ai := range g.OutArcs(u) {
				deg[u] += g.Arc(int(ai)).Cap
			}
		}
		sort.Slice(ord, func(a, b int) bool { return deg[ord[a]] < deg[ord[b]] })
		in := make([]bool, n)
		var cut float64
		for k, u := range ord {
			in[u] = true
			for _, ai := range g.OutArcs(u) {
				arc := g.Arc(int(ai))
				if in[arc.To] {
					cut -= arc.Cap
				} else {
					cut += arc.Cap
				}
			}
			kk := k + 1
			dem := float64(kk) * float64(len(other))
			if kk == len(side) && len(other) == 0 {
				continue
			}
			if dem > 0 {
				if phi := cut / dem; phi < best {
					best = phi
				}
			}
		}
	}
	try(v1, v2)
	try(v2, v1)
	return best
}
