package spectral

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
)

func TestSecondEigenvalueCompleteGraph(t *testing.T) {
	// K_n has spectrum {n-1, -1, ..., -1}: the second-largest by value is
	// -1, and the deflated power iteration converges to magnitude 1.
	g := graph.New(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.AddLink(i, j, 1)
		}
	}
	rng := rand.New(rand.NewSource(1))
	l2 := SecondEigenvalue(g, 300, rng)
	if math.Abs(math.Abs(l2)-1) > 0.05 {
		t.Fatalf("K8 second eigenvalue %v, want magnitude 1", l2)
	}
}

func TestSecondEigenvalueCycle(t *testing.T) {
	// Even cycles are bipartite: the non-principal eigenvalue of largest
	// magnitude is -2. Odd cycles are not: C13's is 2·cos(2π/13).
	even := graph.New(12)
	for i := 0; i < 12; i++ {
		even.AddLink(i, (i+1)%12, 1)
	}
	l := SecondEigenvalue(even, 800, rand.New(rand.NewSource(2)))
	if math.Abs(l-(-2)) > 0.05 {
		t.Fatalf("C12 λ = %v, want -2", l)
	}
	// C13's non-principal eigenvalue of largest magnitude is the most
	// negative one, 2·cos(12π/13) ≈ -1.971.
	odd := graph.New(13)
	for i := 0; i < 13; i++ {
		odd.AddLink(i, (i+1)%13, 1)
	}
	l = SecondEigenvalue(odd, 3000, rand.New(rand.NewSource(2)))
	want := 2 * math.Cos(12*math.Pi/13)
	if math.Abs(l-want) > 0.1 {
		t.Fatalf("C13 λ = %v, want %v", l, want)
	}
}

func TestSpectralGapRRGIsExpander(t *testing.T) {
	// Random regular graphs are near-Ramanujan w.h.p.: λ2 ≲ 2√(r-1)+o(1).
	rng := rand.New(rand.NewSource(3))
	g, err := rrg.Regular(rng, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	l2 := SecondEigenvalue(g, 400, rng)
	ramanujan := 2 * math.Sqrt(5)
	if l2 > ramanujan+1.0 {
		t.Fatalf("RRG λ2 = %v far above Ramanujan bound %v", l2, ramanujan)
	}
	if gap := SpectralGap(g, 400, rand.New(rand.NewSource(3))); gap < 0.5 {
		t.Fatalf("spectral gap %v too small for an expander", gap)
	}
}

func TestSpectralGapNonRegular(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	if gap := SpectralGap(g, 50, rand.New(rand.NewSource(1))); gap != 0 {
		t.Fatalf("non-regular gap %v, want 0", gap)
	}
}

func TestMixingCheckOnRRG(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, err := rrg.Regular(rng, 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	lambda := SecondEigenvalue(g, 400, rng)
	// Random balanced subsets should satisfy the mixing lemma.
	for trial := 0; trial < 10; trial++ {
		inS := make([]bool, g.N())
		perm := rng.Perm(g.N())
		for _, u := range perm[:g.N()/2] {
			inS[u] = true
		}
		dev, allow := MixingCheck(g, inS, lambda)
		// Allow slack for the approximate λ estimate.
		if dev > allow*1.5+1 {
			t.Fatalf("mixing violated: deviation %v > allowance %v", dev, allow)
		}
	}
}

func TestSweepCutFindsPlantedBottleneck(t *testing.T) {
	// Two dense clusters joined by few links: the sweep cut should find
	// conductance far below a random cut's.
	rng := rand.New(rand.NewSource(7))
	degA := make([]int, 16)
	degB := make([]int, 16)
	for i := range degA {
		degA[i], degB[i] = 6, 6
	}
	g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{DegA: degA, DegB: degB, CrossLinks: 4, LinkCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	phi, inS := SweepCut(g, 500, rng)
	// Total volume is 2·|links| = 192; the planted cut has 4 links and
	// conductance 4/96 ≈ 0.042.
	if phi > 0.1 {
		t.Fatalf("sweep cut conductance %v, planted is ~0.042", phi)
	}
	// The cut should roughly separate the clusters.
	var inFirst int
	for u := 0; u < 16; u++ {
		if inS[u] {
			inFirst++
		}
	}
	if inFirst != 0 && inFirst != 16 {
		// Mixed membership is acceptable only if conductance is still low;
		// strict separation is the typical outcome.
		t.Logf("sweep cut mixed: %d of cluster A on one side (phi=%v)", inFirst, phi)
	}
}

func TestSparsestCutBipartiteTwoCluster(t *testing.T) {
	// Lemma 2: for H = K_{V1,V2}, the sparsest cut is ~2q (per unit
	// demand), attained by separating one cluster.
	rng := rand.New(rand.NewSource(9))
	n := 20
	degA := make([]int, n)
	degB := make([]int, n)
	for i := range degA {
		degA[i], degB[i] = 8, 8
	}
	for _, cross := range []int{8, 24, 48} {
		g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{DegA: degA, DegB: degB, CrossLinks: cross, LinkCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		inV1 := make([]bool, g.N())
		for i := 0; i < n; i++ {
			inV1[i] = true
		}
		phi := SparsestCutBipartite(g, inV1)
		// Whole-cluster cut: capacity 2·cross (both dirs... Cap counts one
		// direction per arc scan) over demand n·n.
		whole := float64(2*cross) / float64(n*n)
		if phi > whole+1e-9 {
			t.Fatalf("cross=%d: sparsest %v exceeds whole-cluster cut %v", cross, phi, whole)
		}
		if phi <= 0 {
			t.Fatalf("cross=%d: non-positive sparsest cut %v", cross, phi)
		}
	}
}

// Theorem 2's qualitative claim: the sparsest-cut value scales linearly
// with the cross-cluster connectivity q.
func TestSparsestCutLinearInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	deg := make([]int, n)
	for i := range deg {
		deg[i] = 8
	}
	val := func(cross int) float64 {
		g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{DegA: deg, DegB: deg, CrossLinks: cross, LinkCap: 1})
		if err != nil {
			t.Fatal(err)
		}
		inV1 := make([]bool, g.N())
		for i := 0; i < n; i++ {
			inV1[i] = true
		}
		return SparsestCutBipartite(g, inV1)
	}
	v1, v2 := val(10), val(40)
	ratio := v2 / v1
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("4x cross links changed sparsest cut by %vx; want ~4x", ratio)
	}
}
