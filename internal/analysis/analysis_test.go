package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

func solved(t *testing.T) (*graph.Graph, *mcf.Result, *traffic.Matrix) {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	g, err := rrg.Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 3)
		g.SetClass(u, u%2) // two artificial classes
	}
	h := traffic.HostsOf(g)
	tm := traffic.Permutation(rng, h)
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return g, res, tm
}

func TestDecomposeIdentity(t *testing.T) {
	g, res, tm := solved(t)
	d := Decompose(g, res)
	if d.Capacity != g.TotalCapacity() {
		t.Fatal("capacity mismatch")
	}
	// T ≈ C·U/(⟨D⟩·AS·f) where f is total demand (the solver routes every
	// commodity the same multiple of its demand).
	id := d.Identity(tm.TotalDemand())
	if math.Abs(id-d.Throughput) > 0.1*d.Throughput {
		t.Fatalf("identity %v vs throughput %v", id, d.Throughput)
	}
}

func TestIdentityDegenerate(t *testing.T) {
	var d Decomposition
	if d.Identity(0) != 0 || d.Identity(10) != 0 {
		t.Fatal("degenerate identity should be 0")
	}
}

func TestClassUtilization(t *testing.T) {
	g, res, _ := solved(t)
	cu := ClassUtilization(g, res)
	if len(cu) == 0 {
		t.Fatal("no class pairs")
	}
	for p, u := range cu {
		if u < 0 || u > 1+1e-9 {
			t.Fatalf("class %v utilization %v", p, u)
		}
	}
	// Aggregate consistency: capacity-weighted average of class
	// utilizations equals overall utilization.
	var flow, capTotal float64
	for a := 0; a < g.NumArcs(); a++ {
		flow += res.ArcFlow[a]
		capTotal += g.Arc(a).Cap
	}
	var byClass float64
	for p, u := range cu {
		var classCap float64
		for a := 0; a < g.NumArcs(); a++ {
			arc := g.Arc(a)
			ca, cb := g.Class(int(arc.From)), g.Class(int(arc.To))
			if ca > cb {
				ca, cb = cb, ca
			}
			if (ClassPair{ca, cb}) == p {
				classCap += arc.Cap
			}
		}
		byClass += u * classCap
	}
	if math.Abs(byClass-flow) > 1e-6*flow {
		t.Fatalf("class flows %v != total flow %v", byClass, flow)
	}
}

func TestClassPairsSorted(t *testing.T) {
	g, _, _ := solved(t)
	ps := ClassPairs(g)
	for i := 1; i < len(ps); i++ {
		if ps[i-1].A > ps[i].A || (ps[i-1].A == ps[i].A && ps[i-1].B >= ps[i].B) {
			t.Fatalf("pairs unsorted: %v", ps)
		}
	}
	for _, p := range ps {
		if p.A > p.B {
			t.Fatalf("pair %v not canonical", p)
		}
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{1, 2, 3}
	ds := []Decomposition{
		{Throughput: 0.2, Utilization: 0.5, SPL: 2, Stretch: 1.2},
		{Throughput: 0.4, Utilization: 1.0, SPL: 2.5, Stretch: 1.1}, // peak
		{Throughput: 0.3, Utilization: 0.8, SPL: 3, Stretch: 1.3},
	}
	ns := Normalize(x, ds)
	if ns.Throughput[1] != 1 || ns.Util[1] != 1 || ns.InvSPL[1] != 1 || ns.InvStretch[1] != 1 {
		t.Fatalf("peak point not normalized to 1: %+v", ns)
	}
	if math.Abs(ns.Throughput[0]-0.5) > 1e-12 {
		t.Fatalf("normalized throughput %v, want 0.5", ns.Throughput[0])
	}
	// InvSPL at index 0: (1/2)/(1/2.5) = 1.25.
	if math.Abs(ns.InvSPL[0]-1.25) > 1e-12 {
		t.Fatalf("normalized inv SPL %v, want 1.25", ns.InvSPL[0])
	}
}

func TestNormalizeZeroSafe(t *testing.T) {
	ns := Normalize([]float64{1}, []Decomposition{{}})
	if ns.Throughput[0] != 0 || ns.InvSPL[0] != 0 {
		t.Fatal("zero decomposition should normalize to zeros, not NaN")
	}
	for _, v := range [][]float64{ns.Throughput, ns.Util, ns.InvSPL, ns.InvStretch} {
		for _, y := range v {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatal("NaN/Inf leaked from Normalize")
			}
		}
	}
}

func TestClassPairString(t *testing.T) {
	if (ClassPair{0, 2}).String() != "0-2" {
		t.Fatal("ClassPair formatting")
	}
}
