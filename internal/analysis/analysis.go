// Package analysis implements the paper's §6.1 throughput decomposition
//
//	T = C · U · (1/⟨D⟩) · (1/AS)
//
// (total capacity × utilization × inverse shortest path length × inverse
// stretch) and the per-link-class utilization breakdown used to locate
// bottlenecks ("we averaged link utilization for each link type").
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/mcf"
)

// Decomposition captures the four factors of §6.1 for one solved instance.
type Decomposition struct {
	Throughput  float64 // T (per-flow)
	Capacity    float64 // C, total arc capacity
	Utilization float64 // U = total flow volume / C
	SPL         float64 // ⟨D⟩, demand-weighted shortest path length
	Stretch     float64 // AS ≥ 1
}

// Decompose extracts the decomposition from a flow result on g.
func Decompose(g *graph.Graph, res *mcf.Result) Decomposition {
	return Decomposition{
		Throughput:  res.Throughput,
		Capacity:    g.TotalCapacity(),
		Utilization: res.Utilization,
		SPL:         res.DemandSPL,
		Stretch:     res.Stretch,
	}
}

// Identity returns C·U/(⟨D⟩·AS·f): with f the number of unit-demand
// commodities this should approximately reproduce T (exact for an
// exactly-concurrent optimal flow). Tests use it as a consistency check.
func (d Decomposition) Identity(f float64) float64 {
	if d.SPL == 0 || d.Stretch == 0 || f == 0 {
		return 0
	}
	return d.Capacity * d.Utilization / (d.SPL * d.Stretch * f)
}

// ClassPair identifies a link class by the (smaller, larger) classes of
// its endpoints.
type ClassPair struct{ A, B int }

func (p ClassPair) String() string { return fmt.Sprintf("%d-%d", p.A, p.B) }

// ClassUtilization reports average link utilization per link class — e.g.
// links inside the large-switch cluster vs. links crossing clusters. The
// average is capacity-weighted (total flow over total capacity per class).
func ClassUtilization(g *graph.Graph, res *mcf.Result) map[ClassPair]float64 {
	flow := make(map[ClassPair]float64)
	capacity := make(map[ClassPair]float64)
	for a := 0; a < g.NumArcs(); a++ {
		arc := g.Arc(a)
		ca, cb := g.Class(int(arc.From)), g.Class(int(arc.To))
		if ca > cb {
			ca, cb = cb, ca
		}
		p := ClassPair{ca, cb}
		flow[p] += res.ArcFlow[a]
		capacity[p] += arc.Cap
	}
	out := make(map[ClassPair]float64, len(flow))
	for p, c := range capacity {
		if c > 0 {
			out[p] = flow[p] / c
		}
	}
	return out
}

// ClassPairs returns the class pairs present in g, sorted.
func ClassPairs(g *graph.Graph) []ClassPair {
	seen := make(map[ClassPair]bool)
	for a := 0; a < g.NumArcs(); a += 2 {
		arc := g.Arc(a)
		ca, cb := g.Class(int(arc.From)), g.Class(int(arc.To))
		if ca > cb {
			ca, cb = cb, ca
		}
		seen[ClassPair{ca, cb}] = true
	}
	out := make([]ClassPair, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// NormalizedSeries rescales each metric series so its value at the index
// of peak throughput equals 1, as in Fig. 9 ("we normalize its value with
// respect to its value when the throughput is highest").
type NormalizedSeries struct {
	X          []float64
	Throughput []float64
	Util       []float64
	InvSPL     []float64
	InvStretch []float64
}

// Normalize builds a NormalizedSeries from raw decompositions.
func Normalize(x []float64, ds []Decomposition) NormalizedSeries {
	ns := NormalizedSeries{X: append([]float64(nil), x...)}
	peak := 0
	for i, d := range ds {
		if d.Throughput > ds[peak].Throughput {
			peak = i
		}
		_ = i
		_ = d
	}
	div := func(v, ref float64) float64 {
		if ref == 0 {
			return 0
		}
		return v / ref
	}
	p := ds[peak]
	for _, d := range ds {
		ns.Throughput = append(ns.Throughput, div(d.Throughput, p.Throughput))
		ns.Util = append(ns.Util, div(d.Utilization, p.Utilization))
		invSPL, pInvSPL := safeInv(d.SPL), safeInv(p.SPL)
		ns.InvSPL = append(ns.InvSPL, div(invSPL, pInvSPL))
		invSt, pInvSt := safeInv(d.Stretch), safeInv(p.Stretch)
		ns.InvStretch = append(ns.InvStretch, div(invSt, pInvSt))
	}
	return ns
}

func safeInv(v float64) float64 {
	if v == 0 {
		return 0
	}
	return 1 / v
}
