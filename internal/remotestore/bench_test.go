package remotestore

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// benchPeer is a minimal in-memory peer speaking the result routes: the
// remote-store hot path without engine or disk noise, so the benchmark
// isolates the client's own cost (codec, CRC re-verify, retry machinery).
func benchPeer(b *testing.B) *httptest.Server {
	b.Helper()
	var mu sync.Mutex
	data := map[string][]byte{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		addr := strings.TrimPrefix(r.URL.Path, "/v1/result/")
		switch r.Method {
		case http.MethodGet:
			mu.Lock()
			body, ok := data[addr]
			mu.Unlock()
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", ContentType)
			w.Write(body)
		case http.MethodPut:
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mu.Lock()
			data[addr] = body
			mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method", http.StatusMethodNotAllowed)
		}
	}))
	b.Cleanup(hs.Close)
	return hs
}

// BenchmarkRemoteStore measures one remote Load round trip against a warm
// peer: "clean" over a healthy transport, "faulty" through the chaos
// injector at the CI smoke's rates (20% errors, 5% corruption) — the
// faulty/clean ratio is what fault tolerance costs on the hit path
// (retries, backoff bookkeeping, breaker trips) while every call still
// terminates with an answer.
func BenchmarkRemoteStore(b *testing.B) {
	for _, mode := range []string{"clean", "faulty"} {
		b.Run(mode, func(b *testing.B) {
			hs := benchPeer(b)
			opt := Options{
				BaseURL: hs.URL,
				// Microsecond backoff: the benchmark measures machinery, not
				// the (configurable) waits themselves.
				BackoffBase:     time.Microsecond,
				BackoffMax:      10 * time.Microsecond,
				BreakerCooldown: time.Millisecond,
			}
			if mode == "faulty" {
				fcfg, err := faultinject.ParseSpec("seed=11,error=0.2,corrupt=0.05")
				if err != nil {
					b.Fatal(err)
				}
				opt.Transport = faultinject.NewTransport(nil, fcfg)
			}
			c := New(opt)
			key := "bench-point"
			vals := make([]float64, 16)
			for i := range vals {
				vals[i] = float64(i) * 0.5
			}
			if err := c.Save(key, vals); err != nil {
				b.Fatal(err)
			}
			if got, ok := c.Load(key); !ok || len(got) != len(vals) {
				b.Fatal("peer did not serve the primed entry")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Under faults a call may degrade to a miss (breaker open,
				// retries exhausted) — that IS the measured behavior; what it
				// must never do is error or stall.
				c.Load(key)
			}
			b.StopTimer()
			if st := c.Stats(); st.Loads < int64(b.N) {
				b.Fatalf("stats undercount: %+v", st)
			}
		})
	}
}
