// Package remotestore is the network tier of the result store: a
// scenario.Backend speaking HTTP to a peer `topobench serve` replica's
// result routes (GET and PUT /v1/result/<key>), so a fleet of replicas
// shares one content-addressed result pool.
//
// The wire format is the store's own TBRS codec — the bytes on the wire
// are the bytes on disk, so the CRC travels with the values and the
// receiver re-verifies it; a payload truncated or bit-flipped anywhere in
// transit decodes as a miss, never as wrong data.
//
// The client is built for a flaky fleet and degrades, never escalates:
//
//   - every attempt runs under its own deadline (Options.Timeout), so a
//     hung peer costs bounded latency, never a stalled solve;
//   - retryable failures (network errors, timeouts, 429, 5xx, corrupt
//     payloads) are retried a bounded number of times with exponential
//     backoff and full jitter; authoritative answers (200, 404) and
//     client errors are never retried;
//   - a circuit breaker trips open after Options.BreakerThreshold
//     consecutive failed attempts, short-circuiting calls for the
//     cooldown, then half-opens to let exactly one probe through — a dead
//     peer costs one cheap rejection per call, not a retry storm;
//   - and every failure, at every layer, surfaces as "miss" from Load
//     (the caller solves locally) or a counted error from Save
//     (durability is best-effort). Under the cache-key invariant a local
//     solve returns byte-identical values, so aggressive degradation is
//     always safe.
package remotestore

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
)

// ContentType is the raw-entry media type of the result routes: request
// it on GET (Accept header) to receive TBRS codec bytes instead of JSON,
// and declare it on PUT bodies.
const ContentType = "application/x-tbrs"

// maxEntryBytes bounds how much of a response body a Load will read — a
// misbehaving peer cannot balloon memory. Entries are 16 bytes + 8 per
// run value, so 4 MiB covers ~500k runs per point.
const maxEntryBytes = 4 << 20

// Options configures a Client. The zero value of every field gets a
// sensible default; only BaseURL is required.
type Options struct {
	// BaseURL is the peer's root, e.g. "http://10.0.0.2:8080".
	BaseURL string
	// Timeout is the per-attempt deadline (default 2s).
	Timeout time.Duration
	// Attempts is the total attempts per call, first try included
	// (default 3). Only retryable failures consume extra attempts.
	Attempts int
	// BackoffBase/BackoffMax shape the retry backoff: attempt k waits a
	// uniformly-jittered duration in [0, min(BackoffMax, BackoffBase·2^k)]
	// (full jitter; defaults 50ms and 1s). Full jitter desynchronizes a
	// fleet of replicas hammering one recovering peer.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// BreakerThreshold trips the circuit breaker after this many
	// consecutive failed attempts (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting a
	// half-open probe through (default 5s).
	BreakerCooldown time.Duration
	// Transport overrides the HTTP transport (nil means
	// http.DefaultTransport) — the seam the fault injector wraps.
	Transport http.RoundTripper
	// Seed feeds the jitter RNG (default 1), so tests replay exact backoff
	// sequences.
	Seed int64
}

func (o *Options) defaults() {
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = time.Second
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 5 * time.Second
	}
	if o.Transport == nil {
		o.Transport = http.DefaultTransport
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

const (
	// Closed: calls flow normally.
	Closed BreakerState = iota
	// Open: calls short-circuit until the cooldown elapses.
	Open
	// HalfOpen: one probe is allowed through; its outcome decides.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Stats snapshots a client's activity.
type Stats struct {
	Loads      int64 // Load calls
	LoadHits   int64 // Loads answered with verified values
	LoadMisses int64 // Loads answered miss (404, failures, short-circuits)
	Saves      int64 // Save calls
	SaveErrs   int64 // Saves that ultimately failed
	Attempts   int64 // HTTP attempts actually made
	Retries    int64 // attempts beyond the first of their call
	Failures   int64 // failed attempts (network, timeout, 5xx, corrupt)
	Corrupt    int64 // payloads rejected by CRC/decode re-verification
	// BreakerOpens counts transitions into Open; ShortCircuits counts
	// calls rejected without touching the network while open.
	BreakerOpens  int64
	ShortCircuits int64
	State         BreakerState
}

// errWindowSecs is the resolution of the recent-error window backing
// RecentErrors (per-second buckets; queries beyond this clamp to it).
const errWindowSecs = 60

// Client implements scenario.Backend over a peer replica. Safe for
// concurrent use. Create with New.
type Client struct {
	opt Options
	hc  *http.Client

	mu   sync.Mutex
	rng  *rand.Rand
	st   Stats
	fail int // consecutive failed attempts
	// breaker
	state    BreakerState
	openedAt time.Time
	probing  bool
	// recent-error ring: errAt[i] is the unix second errN[i] counts.
	errN  [errWindowSecs]int64
	errAt [errWindowSecs]int64

	// test hooks (package-internal): now/sleep default to real time.
	now   func() time.Time
	sleep func(time.Duration)
}

// New returns a client for the peer at opt.BaseURL.
func New(opt Options) *Client {
	opt.defaults()
	return &Client{
		opt:   opt,
		hc:    &http.Client{Transport: opt.Transport},
		rng:   rand.New(rand.NewSource(opt.Seed)),
		now:   time.Now,
		sleep: time.Sleep,
	}
}

// BaseURL reports the peer this client speaks to.
func (c *Client) BaseURL() string { return c.opt.BaseURL }

// Stats snapshots the client's counters and breaker state.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.State = c.stateLocked()
	return st
}

// State reports the breaker's current disposition (Open decays to
// HalfOpen once the cooldown has elapsed).
func (c *Client) State() BreakerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stateLocked()
}

func (c *Client) stateLocked() BreakerState {
	if c.state == Open && c.now().Sub(c.openedAt) >= c.opt.BreakerCooldown {
		return HalfOpen
	}
	return c.state
}

// RecentErrors counts failed attempts within the trailing window
// (clamped to 60s) — the /healthz degraded signal.
func (c *Client) RecentErrors(window time.Duration) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > errWindowSecs {
		secs = errWindowSecs
	}
	cutoff := c.now().Unix() - secs
	var n int64
	for i, at := range c.errAt {
		if at > cutoff {
			n += c.errN[i]
		}
	}
	return n
}

// allow is the breaker gate for one attempt. Allowed probe attempts in
// the half-open state are exclusive: concurrent calls short-circuit until
// the probe reports.
func (c *Client) allow() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch c.stateLocked() {
	case Closed:
		return true
	case HalfOpen:
		if c.probing {
			c.st.ShortCircuits++
			return false
		}
		c.state = HalfOpen
		c.probing = true
		return true
	default: // Open, cooling down
		c.st.ShortCircuits++
		return false
	}
}

// onResult records an attempt's outcome into the failure streak, the
// breaker, and the recent-error window.
func (c *Client) onResult(failed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wasProbe := c.probing
	c.probing = false
	if !failed {
		c.fail = 0
		c.state = Closed
		return
	}
	c.st.Failures++
	sec := c.now().Unix()
	i := sec % errWindowSecs
	if c.errAt[i] != sec {
		c.errAt[i], c.errN[i] = sec, 0
	}
	c.errN[i]++
	c.fail++
	if wasProbe || (c.state == Closed && c.fail >= c.opt.BreakerThreshold) {
		c.state = Open
		c.openedAt = c.now()
		c.st.BreakerOpens++
	}
}

// attemptErr classifies one attempt: nil means authoritative success,
// retryable says whether another attempt may help.
type attemptErr struct {
	err       error
	retryable bool
}

// call runs the bounded retry loop around one logical operation. do
// performs one attempt; it returns nil on an authoritative answer. call
// returns the last attempt's error, or a short-circuit error when the
// breaker rejected the call outright.
func (c *Client) call(do func(ctx context.Context) *attemptErr) error {
	var last error
	for attempt := 0; attempt < c.opt.Attempts; attempt++ {
		if !c.allow() {
			if last != nil {
				return last
			}
			return fmt.Errorf("remotestore: circuit breaker open for %s", c.opt.BaseURL)
		}
		if attempt > 0 {
			c.mu.Lock()
			c.st.Retries++
			c.mu.Unlock()
			c.sleep(c.backoff(attempt))
		}
		c.mu.Lock()
		c.st.Attempts++
		c.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), c.opt.Timeout)
		ae := do(ctx)
		cancel()
		if ae == nil {
			c.onResult(false)
			return nil
		}
		c.onResult(true)
		last = ae.err
		if !ae.retryable {
			return last
		}
	}
	return last
}

// backoff draws attempt k's full-jitter wait: uniform in
// [0, min(BackoffMax, BackoffBase·2^(k-1))].
func (c *Client) backoff(attempt int) time.Duration {
	ceil := c.opt.BackoffBase << (attempt - 1)
	if ceil > c.opt.BackoffMax || ceil <= 0 {
		ceil = c.opt.BackoffMax
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.mu.Unlock()
	return d
}

func (c *Client) url(addr string) string {
	return strings.TrimSuffix(c.opt.BaseURL, "/") + "/v1/result/" + addr
}

// classify buckets an HTTP status: retryable server-side trouble vs a
// terminal client-side answer.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// Load fetches the values stored under key on the peer. Every failure —
// timeout, refused connection, 5xx, breaker open, corrupt payload after
// retries — degrades to (nil, false): the caller solves locally, which
// under the cache-key invariant yields identical bytes.
func (c *Client) Load(key string) ([]float64, bool) {
	return c.LoadCtx(context.Background(), key)
}

// LoadCtx is Load carrying the caller's context (store.CtxBackend).
// When the context holds a sampled trace span, every attempt forwards it
// as a W3C `traceparent` header, so the peer replica samples the request
// and its spans land under the caller's trace id — the cross-process
// half of end-to-end tracing. The attempt timeout still derives from the
// client's own Options.Timeout, not from ctx: a caller's deadline must
// not change the retry/breaker behavior the chaos tests pin down.
func (c *Client) LoadCtx(ctx context.Context, key string) ([]float64, bool) {
	c.mu.Lock()
	c.st.Loads++
	c.mu.Unlock()
	caller := trace.SpanFromContext(ctx)
	addr := store.Addr(key)
	var vals []float64
	var found bool
	err := c.call(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(addr), nil)
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Accept", ContentType)
		if caller.OK() {
			req.Header.Set("traceparent", trace.FormatTraceparent(caller.TraceID(), caller.ID(), true))
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			body, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
			if err != nil {
				return &attemptErr{err: err, retryable: true}
			}
			v, ok := store.DecodeValues(body)
			if !ok {
				// The CRC re-verification: a truncated or bit-flipped
				// payload is a transport fault, worth another attempt.
				c.mu.Lock()
				c.st.Corrupt++
				c.mu.Unlock()
				return &attemptErr{err: fmt.Errorf("remotestore: corrupt entry for %s", addr), retryable: true}
			}
			vals, found = v, true
			return nil
		case resp.StatusCode == http.StatusNotFound:
			return nil // authoritative miss
		default:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
			return &attemptErr{
				err:       fmt.Errorf("remotestore: GET %s: %s", addr, resp.Status),
				retryable: retryableStatus(resp.StatusCode),
			}
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil || !found {
		c.st.LoadMisses++
		return nil, false
	}
	c.st.LoadHits++
	return vals, true
}

// Save publishes the values under key to the peer. The returned error is
// informational — callers (scenario.Cache, store.Tiered) count it and
// move on; remote durability is best-effort by design.
func (c *Client) Save(key string, vals []float64) error {
	return c.SaveLinked(key, vals, "")
}

// SaveLinked is Save with a parent content-address link (store.LinkedSaver):
// the link rides inside the TBRS body, under the same CRC as the values,
// so the receiving replica persists the warm-start provenance too.
func (c *Client) SaveLinked(key string, vals []float64, parentKey string) error {
	c.mu.Lock()
	c.st.Saves++
	c.mu.Unlock()
	addr := store.Addr(key)
	parent := ""
	if parentKey != "" {
		parent = store.Addr(parentKey)
	}
	body := store.EncodeLinked(vals, parent)
	err := c.call(func(ctx context.Context) *attemptErr {
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.url(addr), bytes.NewReader(body))
		if err != nil {
			return &attemptErr{err: err}
		}
		req.Header.Set("Content-Type", ContentType)
		resp, err := c.hc.Do(req)
		if err != nil {
			return &attemptErr{err: err, retryable: true}
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			return nil
		}
		return &attemptErr{
			err:       fmt.Errorf("remotestore: PUT %s: %s", addr, resp.Status),
			retryable: retryableStatus(resp.StatusCode),
		}
	})
	if err != nil {
		c.mu.Lock()
		c.st.SaveErrs++
		c.mu.Unlock()
		return err
	}
	return nil
}
