package remotestore

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
)

// fakeClock is a settable time source so breaker cooldowns and the
// recent-error window are tested without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestClient wires a client at the server with instant sleeps and a
// fake clock, returning both.
func newTestClient(t *testing.T, url string, opt Options) (*Client, *fakeClock) {
	t.Helper()
	opt.BaseURL = url
	c := New(opt)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	c.now = clk.now
	c.sleep = func(time.Duration) {} // backoff decisions still draw jitter
	return c, clk
}

const testKey = "some point key"

func testVals() []float64 { return []float64{1.5, 2.5, 3.5} }

// resultServer answers GET/PUT /v1/result like the real service, with a
// per-call hook for fault scripting. Returns the server and a call count.
func resultServer(t *testing.T, hook func(n int64, w http.ResponseWriter, r *http.Request) bool) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	var mu sync.Mutex
	stored := map[string][]byte{}
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if hook != nil && hook(n, w, r) {
			return
		}
		addr := r.URL.Path[len("/v1/result/"):]
		switch r.Method {
		case http.MethodGet:
			mu.Lock()
			body, ok := stored[addr]
			mu.Unlock()
			if !ok {
				http.Error(w, "not found", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", ContentType)
			w.Write(body)
		case http.MethodPut:
			body := make([]byte, 0, 64)
			buf := make([]byte, 4096)
			for {
				n, err := r.Body.Read(buf)
				body = append(body, buf[:n]...)
				if err != nil {
					break
				}
			}
			if _, ok := store.DecodeValues(body); !ok {
				http.Error(w, "corrupt", http.StatusBadRequest)
				return
			}
			mu.Lock()
			stored[addr] = body
			mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
		}
	}))
	t.Cleanup(hs.Close)
	return hs, &calls
}

// TestSaveThenLoadRoundTrip: the wire format survives a PUT/GET cycle
// with values intact.
func TestSaveThenLoadRoundTrip(t *testing.T) {
	hs, _ := resultServer(t, nil)
	c, _ := newTestClient(t, hs.URL, Options{})
	if err := c.Save(testKey, testVals()); err != nil {
		t.Fatal(err)
	}
	vals, ok := c.Load(testKey)
	if !ok || !reflect.DeepEqual(vals, testVals()) {
		t.Fatalf("round trip: %v %v", vals, ok)
	}
	st := c.Stats()
	if st.LoadHits != 1 || st.SaveErrs != 0 || st.Retries != 0 || st.State != Closed {
		t.Fatalf("stats: %+v", st)
	}
}

// TestMissIsAuthoritative: a 404 is an answer, not a failure — exactly
// one attempt, no retries, breaker stays closed.
func TestMissIsAuthoritative(t *testing.T) {
	hs, calls := resultServer(t, nil)
	c, _ := newTestClient(t, hs.URL, Options{Attempts: 5})
	if _, ok := c.Load("never stored"); ok {
		t.Fatal("phantom hit")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("404 consumed %d attempts, want 1", got)
	}
	st := c.Stats()
	if st.LoadMisses != 1 || st.Retries != 0 || st.Failures != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestRetryOn5xxThenSuccess: transient server trouble is retried with
// backoff and the call still succeeds within its attempt budget.
func TestRetryOn5xxThenSuccess(t *testing.T) {
	hs, calls := resultServer(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if n <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return true
		}
		return false
	})
	c, _ := newTestClient(t, hs.URL, Options{Attempts: 3})
	if err := c.Save(testKey, testVals()); err != nil {
		t.Fatalf("save failed despite a successful final attempt: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts: %d, want 3", got)
	}
	st := c.Stats()
	if st.Retries != 2 || st.Failures != 2 || st.SaveErrs != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCorruptPayloadReadsAsMiss: bit-flipped and truncated bodies fail
// the CRC re-verification, are retried, and ultimately degrade to a miss
// — never to wrong values.
func TestCorruptPayloadReadsAsMiss(t *testing.T) {
	good := store.EncodeValues(testVals())
	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-3] ^= 0x40 // flip one payload bit
	for name, body := range map[string][]byte{
		"bitflip":   corrupt,
		"truncated": good[:len(good)/2],
		"garbage":   []byte("not a TBRS entry at all"),
	} {
		t.Run(name, func(t *testing.T) {
			hs, calls := resultServer(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
				w.Header().Set("Content-Type", ContentType)
				w.Write(body)
				return true
			})
			c, _ := newTestClient(t, hs.URL, Options{Attempts: 3})
			if vals, ok := c.Load(testKey); ok {
				t.Fatalf("corrupt payload surfaced as values: %v", vals)
			}
			if got := calls.Load(); got != 3 {
				t.Fatalf("corruption should be retried: %d attempts, want 3", got)
			}
			if st := c.Stats(); st.Corrupt != 3 || st.LoadMisses != 1 {
				t.Fatalf("stats: %+v", st)
			}
		})
	}
}

// TestDeadPeerDegradesToMiss: a connection-refused peer costs retries,
// then a miss — Load never returns an error or panics.
func TestDeadPeerDegradesToMiss(t *testing.T) {
	hs, _ := resultServer(t, nil)
	url := hs.URL
	hs.Close() // now nothing listens there
	c, _ := newTestClient(t, url, Options{Attempts: 2})
	if _, ok := c.Load(testKey); ok {
		t.Fatal("hit from a dead peer")
	}
	if err := c.Save(testKey, testVals()); err == nil {
		t.Fatal("save to a dead peer must report its (counted) error")
	}
	st := c.Stats()
	if st.LoadMisses != 1 || st.SaveErrs != 1 || st.Failures != 4 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestBreakerTripShortCircuitAndProbe walks the breaker's whole life:
// consecutive failures trip it Open, open calls short-circuit without
// touching the network, the cooldown admits exactly one half-open probe,
// and a successful probe closes it again.
func TestBreakerTripShortCircuitAndProbe(t *testing.T) {
	var healthy atomic.Bool
	hs, calls := resultServer(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return true
		}
		return false
	})
	c, clk := newTestClient(t, hs.URL, Options{
		Attempts: 1, BreakerThreshold: 3, BreakerCooldown: 5 * time.Second,
	})

	for i := 0; i < 3; i++ {
		if _, ok := c.Load(testKey); ok {
			t.Fatal("hit from a failing peer")
		}
	}
	if got := c.State(); got != Open {
		t.Fatalf("state after %d consecutive failures: %v, want open", 3, got)
	}
	if got := c.Stats().BreakerOpens; got != 1 {
		t.Fatalf("breaker opens: %d", got)
	}

	// Open: calls short-circuit — the network is not touched.
	before := calls.Load()
	for i := 0; i < 4; i++ {
		if _, ok := c.Load(testKey); ok {
			t.Fatal("hit while open")
		}
	}
	if calls.Load() != before {
		t.Fatalf("open breaker still hit the network: %d calls", calls.Load()-before)
	}
	if got := c.Stats().ShortCircuits; got != 4 {
		t.Fatalf("short circuits: %d, want 4", got)
	}

	// Cooldown elapses: half-open. A failed probe re-opens...
	clk.advance(6 * time.Second)
	if got := c.State(); got != HalfOpen {
		t.Fatalf("state after cooldown: %v, want half-open", got)
	}
	if _, ok := c.Load(testKey); ok {
		t.Fatal("probe hit a failing peer")
	}
	if got := c.State(); got != Open {
		t.Fatalf("state after failed probe: %v, want open", got)
	}

	// ...and a successful probe closes the breaker for good.
	healthy.Store(true)
	clk.advance(6 * time.Second)
	if _, ok := c.Load("never stored"); ok {
		t.Fatal("phantom hit")
	}
	if got := c.State(); got != Closed {
		t.Fatalf("state after successful probe: %v, want closed", got)
	}
	if err := c.Save(testKey, testVals()); err != nil {
		t.Fatalf("save through a recovered breaker: %v", err)
	}
	if vals, ok := c.Load(testKey); !ok || !reflect.DeepEqual(vals, testVals()) {
		t.Fatalf("round trip after recovery: %v %v", vals, ok)
	}
}

// TestHalfOpenProbeIsExclusive: while one probe is in flight, concurrent
// calls short-circuit instead of stampeding the recovering peer.
func TestHalfOpenProbeIsExclusive(t *testing.T) {
	release := make(chan struct{})
	var fail atomic.Bool
	fail.Store(true)
	hs, _ := resultServer(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		if fail.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return true
		}
		<-release // hold the probe open while the test issues more calls
		http.Error(w, "not found", http.StatusNotFound)
		return true
	})
	c, clk := newTestClient(t, hs.URL, Options{Attempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Second})
	c.Load(testKey) // trips immediately (threshold 1)
	if c.State() != Open {
		t.Fatal("breaker should be open")
	}
	fail.Store(false)
	clk.advance(2 * time.Second)

	probeDone := make(chan struct{})
	go func() {
		defer close(probeDone)
		c.Load(testKey) // the probe; parks on <-release
	}()
	// Wait until the probe owns the half-open slot, then race others.
	for {
		c.mu.Lock()
		probing := c.probing
		c.mu.Unlock()
		if probing {
			break
		}
		time.Sleep(time.Millisecond)
	}
	before := c.Stats().ShortCircuits
	c.Load(testKey)
	if got := c.Stats().ShortCircuits; got != before+1 {
		t.Fatalf("concurrent call during probe: short circuits %d, want %d", got, before+1)
	}
	close(release)
	<-probeDone
	if c.State() != Closed {
		t.Fatalf("state after successful probe: %v", c.State())
	}
}

// TestRecentErrorsWindow: the /healthz degraded signal counts failures
// inside the trailing window and forgets them as time passes.
func TestRecentErrorsWindow(t *testing.T) {
	hs, _ := resultServer(t, func(n int64, w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, "down", http.StatusInternalServerError)
		return true
	})
	c, clk := newTestClient(t, hs.URL, Options{Attempts: 2, BreakerThreshold: 100})
	c.Load(testKey) // 2 failed attempts
	if got := c.RecentErrors(30 * time.Second); got != 2 {
		t.Fatalf("recent errors: %d, want 2", got)
	}
	clk.advance(40 * time.Second)
	if got := c.RecentErrors(30 * time.Second); got != 0 {
		t.Fatalf("recent errors after window passed: %d, want 0", got)
	}
}

// TestBackoffIsBoundedAndJittered: the drawn waits stay within the
// exponential ceiling and are not all identical (full jitter).
func TestBackoffIsBoundedAndJittered(t *testing.T) {
	c := New(Options{BaseURL: "http://unused", BackoffBase: 50 * time.Millisecond, BackoffMax: time.Second})
	distinct := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		for attempt := 1; attempt <= 6; attempt++ {
			d := c.backoff(attempt)
			ceil := 50 * time.Millisecond << (attempt - 1)
			if ceil > time.Second || ceil <= 0 {
				ceil = time.Second
			}
			if d < 0 || d > ceil {
				t.Fatalf("attempt %d drew %v outside [0, %v]", attempt, d, ceil)
			}
			distinct[d] = true
		}
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct backoff draws — jitter missing", len(distinct))
	}
}
