// Package mcf computes the paper's throughput metric: the maximum
// concurrent multi-commodity flow (the largest λ such that every commodity
// j can ship λ·demand_j simultaneously without exceeding any link
// capacity). This is the "maximize the minimum flow" LP of §3, which the
// paper solves with CPLEX.
//
// Substitution: instead of an LP solver we use the Garg–Könemann
// fully-polynomial approximation scheme with Fleischer-style source
// batching. The returned throughput is certified feasible — the final flow
// is explicitly scaled by its maximum congestion, so Result.Throughput is
// always achievable — and is within the configured ε of the LP optimum
// (validated against closed-form optima in the tests).
package mcf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/runner"
	"repro/internal/traffic"
)

// Options configures the solver.
type Options struct {
	// Epsilon is the approximation parameter; smaller is more accurate and
	// slower. Values in [0.02, 0.2] are sensible; 0 means DefaultEpsilon.
	Epsilon float64
	// MaxPhases caps the number of Garg–Könemann phases as a safety valve.
	// 0 means no explicit cap (the length-function stopping rule applies).
	MaxPhases int
	// RecordPaths keeps the per-piece path decomposition of the routed flow
	// in Result.Paths (congestion-scaled, like ArcFlow), so an external
	// verifier such as internal/flowcheck can replay conservation, capacity,
	// and demand proportionality from first principles. Off by default: the
	// decomposition can hold one entry per routed piece.
	RecordPaths bool
	// DisableRepair forces stale shortest-path trees to be rebuilt from
	// scratch instead of incrementally repaired. The solver trajectory is
	// unaffected either way (a repaired tree equals a rebuilt tree whenever
	// shortest paths are unique); the knob exists for the repair-vs-rebuild
	// benchmarks and oracle tests.
	DisableRepair bool
	// Workers bounds the concurrency of the phase-start tree prebuild
	// (0 means GOMAXPROCS, 1 forces the serial path). Worker count NEVER
	// changes the solve's output: all trees a phase prebuilds are computed
	// against the frozen phase-start length function with per-source
	// scratch state, and all shared counters are reduced serially in
	// source order afterwards — TestSolverDeterministicAcrossWorkers
	// enforces byte-identical results for 1, 2, and GOMAXPROCS workers.
	// Actual parallelism is additionally bounded by the process-wide
	// runner semaphore (runner.SetMaxInFlight), so nested solves cannot
	// multiply goroutines.
	Workers int
	// PrebuildMargin tightens the phase-start staleness test by that
	// fraction of ε: the concurrent prebuild refreshes every tree whose
	// worst requested root path has grown past (1 + (1−margin)·ε) of its
	// at-build length, not just past the full (1+ε) the routing loop
	// enforces. Borderline-fresh trees — the ones this phase's routing
	// would push over the threshold after a piece or two — are thereby
	// refreshed at phase start, in parallel, while their stale region is
	// still small enough for a cheap incremental repair, instead of
	// mid-phase, serially, after the region has grown (often past the
	// repair budget, costing a failed repair plus a rebuild: the
	// double-build tax on tiny high-ε instances). 0 (the default) keeps
	// the exact routing test and the historical trajectory; valid values
	// are [0, 1). Any margin changes only WHEN trees refresh, never the
	// (1+ε) slack routing tolerates, so the Fleischer guarantee is
	// untouched; output remains byte-identical across worker counts for
	// any fixed margin (the margin test is evaluated on the frozen
	// phase-start lengths).
	PrebuildMargin float64
	// Cancel, when non-nil, aborts the solve at the next phase boundary
	// once the channel is closed (typically a context's Done channel):
	// Solve then returns ErrCanceled and whatever partial work was done is
	// discarded. Phase boundaries are the only check points, so a
	// completed solve is byte-identical whether or not a Cancel channel
	// was attached — cancellation can abort results, never change them.
	// The evaluation service wires a dropped client's request context
	// here, so an abandoned grid stops burning CPU within one phase.
	Cancel <-chan struct{}
	// DisableBucket forces every tree construction onto the 4-ary heap
	// Dijkstra instead of letting the solver pick the bucket-queue
	// traversal when the phase's length spread favors it. The trajectory
	// is unaffected either way (both traversals produce identical trees
	// when shortest paths are unique); the knob is the kill switch for
	// workloads where the adaptive heuristic misjudges.
	DisableBucket bool
	// WarmLens, when it holds one entry per arc, warm-starts the solve
	// from a parent solve's exported witness: entries > 0 seed the initial
	// Garg–Könemann length function with the parent's (mapped) DualLens,
	// entries ≤ 0 (or non-finite) mark arcs with no parent information and
	// receive an average-utilization prior. All seed lengths are rescaled
	// so the starting potential Σ l·cap equals the cold start's m·δ —
	// the parent's congestion SHAPE carries over, the termination
	// accounting is untouched. Weak duality holds for any non-negative
	// lengths, so the per-phase dual bound and the early-stop certificate
	// remain valid; only the worst-case phase-count analysis assumed the
	// uniform start, which is why callers MUST re-certify warm-started
	// results (internal/flowcheck) and fall back to a cold solve on
	// failure rather than trust the (1+ε) guarantee. A WarmLens of the
	// wrong length, or one with no usable entry, is ignored: the solve
	// runs cold and Result.WarmStarted stays false.
	WarmLens []float64
}

// DefaultEpsilon is used when Options.Epsilon is zero.
const DefaultEpsilon = 0.08

// ErrUnreachable is returned when some commodity's endpoints are not
// connected, so no positive concurrent throughput exists.
var ErrUnreachable = errors.New("mcf: commodity endpoints disconnected")

// ErrCanceled is returned when Options.Cancel fired before the solve
// converged; no partial result is produced.
var ErrCanceled = errors.New("mcf: solve canceled")

// Result reports the solved flow and the decomposition metrics of §6.1.
type Result struct {
	// Throughput is λ: every commodity can ship λ·demand concurrently.
	Throughput float64
	// ArcFlow is the certified-feasible per-arc flow (indexed like
	// graph arc indices), after congestion scaling.
	ArcFlow []float64
	// ArcUtil is ArcFlow[a]/cap(a) per arc, in [0, 1].
	ArcUtil []float64
	// Utilization is total flow volume over total capacity — the paper's U.
	Utilization float64
	// FlowPathLen is the average hop length of routed flow, weighted by
	// flow volume.
	FlowPathLen float64
	// DemandSPL is the demand-weighted average shortest path length
	// between commodity endpoints.
	DemandSPL float64
	// Stretch is FlowPathLen/DemandSPL — the paper's AS (≥ 1).
	Stretch float64
	// Phases is the number of completed Garg–Könemann phases.
	Phases int
	// TreeBuilds and TreeRepairs count full Dijkstra tree constructions and
	// incremental repairs, respectively — the repair hit rate.
	TreeBuilds  int
	TreeRepairs int
	// TreePrebuilds counts the tree refreshes (builds or repairs) executed
	// by the concurrent phase-start prebuild pass rather than serially
	// inside the routing loop — the parallelizable share of the tree work.
	TreePrebuilds int
	// BucketBuilds counts the tree constructions served by the monotone
	// bucket-queue traversal; the remaining TreeBuilds used the 4-ary
	// heap. The solver picks per phase from the length spread and falls
	// back to the heap when bucket rebases keep losing.
	BucketBuilds int
	// Epsilon is the effective approximation parameter of the solve.
	Epsilon float64
	// DualLens is the Garg–Könemann length function of the phase whose
	// dual bound was smallest, exported as a witness: for any non-negative
	// arc lengths l, the optimum λ* satisfies
	// λ* ≤ Σ_a l_a·cap_a / Σ_j demand_j·dist_l(s_j,t_j), so a verifier can
	// certify the ε-optimality gap with one independent Dijkstra per
	// source (see internal/flowcheck). The best phase is exported rather
	// than the last because solves that end on the potential rule keep
	// inflating lengths after the dual bound has bottomed out, making the
	// final lengths a much looser witness.
	DualLens []float64
	// WarmStarted reports that the solve's length function was seeded from
	// Options.WarmLens rather than the uniform cold start. A warm-started
	// result is still certified feasible (congestion scaling), but its
	// ε-optimality must be re-certified externally — see Options.WarmLens.
	WarmStarted bool
	// Paths is the congestion-scaled path decomposition of ArcFlow, present
	// only when Options.RecordPaths was set. Summing Flow over the paths of
	// commodity j gives j's delivered volume (≥ Throughput·demand_j);
	// summing over paths crossing an arc reconstructs ArcFlow.
	Paths []PathFlow
	// Timing is the solve's wall-clock phase telemetry for observability
	// (prebuild vs. routing time). Unlike every other Result field it is
	// inherently NON-deterministic; determinism tests must zero it before
	// comparing Results with reflect.DeepEqual.
	Timing SolveTiming
}

// SolveTiming is the wall-clock breakdown of one solve: where the time
// went between the concurrent phase-start tree prebuild pass and the
// serial routing loop. It feeds the tracing layer's solver-phase spans
// (internal/trace via the scenario evaluators); nothing in the solver
// reads it back.
type SolveTiming struct {
	// PrebuildNanos is the time spent in prebuildTrees across all
	// phases — the parallelizable share of the tree work.
	PrebuildNanos int64
	// RouteNanos is the time spent in the serial per-phase routing
	// loops (including any in-loop tree rebuilds the prebuild margin
	// did not cover).
	RouteNanos int64
	// SolveNanos is the whole solve's wall clock, from state
	// construction through result extraction.
	SolveNanos int64
}

// PathFlow is one path of the flow decomposition: Flow units of commodity
// Commodity routed along the directed arcs Arcs (source to destination).
type PathFlow struct {
	Commodity int
	Arcs      []int32
	Flow      float64
}

// Solve computes the maximum concurrent flow for the commodities in flows
// on graph g.
func Solve(g *graph.Graph, flows []traffic.Flow, opt Options) (*Result, error) {
	eps := opt.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if eps >= 0.5 {
		return nil, fmt.Errorf("mcf: epsilon %v too large", eps)
	}
	if opt.PrebuildMargin < 0 || opt.PrebuildMargin >= 1 {
		return nil, fmt.Errorf("mcf: prebuild margin %v outside [0, 1)", opt.PrebuildMargin)
	}
	if len(flows) == 0 {
		return &Result{Throughput: math.Inf(1), Stretch: 1}, nil
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Demand <= 0 {
			return nil, fmt.Errorf("mcf: invalid commodity %+v", f)
		}
	}

	s := newState(g, flows, eps, opt)
	if err := s.checkReachability(); err != nil {
		return nil, err
	}
	maxPhases := opt.MaxPhases
	if maxPhases <= 0 {
		maxPhases = math.MaxInt32
	}
	// The classical Garg–Könemann potential rule (Σ lens·caps ≥ 1) bounds
	// the phase count in the worst case, but in practice the primal-dual
	// gap closes much earlier. Each phase costs O(m) extra to certify: the
	// phase's tree builds yield α(l) = Σ_j demand_j·dist_l(s_j, t_j) under
	// length functions ≤ the end-of-phase lengths, so λ* ≤ lenCapSum/α is a
	// valid dual bound, and the scaled primal minRatio/χ is feasible. Stop
	// at whichever certificate fires first. The gap target 1.5ε matches the
	// accuracy the potential rule actually delivers on this workload family
	// (measured ≈ 1.2ε at ε = 0.1), so the early stop does not change the
	// solver's effective quality class, only its phase count.
	for s.lenCapSum < 1 && s.phases < maxPhases {
		if opt.Cancel != nil {
			select {
			case <-opt.Cancel:
				return nil, ErrCanceled
			default:
			}
		}
		s.runPhase()
		if s.alpha > 0 {
			// Track the best dual bound seen and snapshot its length
			// function as the optimality witness for the verifier.
			if bound := s.lenCapSum / s.alpha; bound < s.bestBound {
				s.bestBound = bound
				if s.bestLens == nil {
					s.bestLens = make([]float64, s.m)
				}
				copy(s.bestLens, s.lens)
			}
			// Gap target for the early stop. Cold solves compare against the
			// CURRENT phase's bound with a 1.5ε gap — preserved exactly, so
			// cold output stays byte-identical. Warm-seeded solves compare
			// against the best bound seen, at the FULL certification gap 3ε:
			// the parent's witness makes bestBound usable from phase one (a
			// cold solve only earns a bound near the end), which is where
			// the delta-evaluation speedup comes from — but a witness mapped
			// across a topology delta is looser than a native one, so
			// insisting on 1.5ε against it would burn the saved phases back.
			// bestBound is a valid dual bound for ANY nonnegative length
			// function, its argmin is exactly the witness exported in
			// Result.DualLens, and flowcheck certifies warm results against
			// that witness at its default tolerance 3ε — so every warm stop
			// is re-certified in exactly the class it targeted, and one that
			// somehow missed it falls back to a cold solve upstream.
			target := s.lenCapSum / s.alpha
			gap := 1.5 * eps
			if s.warm {
				target, gap = s.bestBound, 3*eps
			}
			if s.primal() >= (1-gap)*target {
				break
			}
		}
	}
	return s.result(), nil
}

// state holds the working data of one solve.
type state struct {
	g     *graph.Graph
	eps   float64
	m     int       // arc count
	caps  []float64 // per-arc capacity
	lens  []float64 // GK length function
	flow  []float64 // raw accumulated per-arc flow
	bySrc map[int][]int
	srcs  []int // sorted keys of bySrc, for deterministic iteration
	flows []traffic.Flow
	// routed[j] is the total demand routed so far for commodity j.
	routed []float64
	// volume-weighted path length accumulator.
	volLen, vol float64
	phases      int
	// alpha is the dual normalizer of the just-finished phase:
	// Σ_j demand_j · dist(s_j, t_j) with each distance measured under a
	// length function pointwise ≤ the end-of-phase lengths, making
	// lenCapSum/alpha a valid upper bound on the optimum λ*.
	alpha float64

	// lenCapSum is Σ lens[a]·caps[a], the Garg–Könemann potential that ends
	// the solve once it reaches 1. It is maintained incrementally (O(1) per
	// arc update) instead of rescanning all m arcs every phase.
	lenCapSum float64
	// perSrc holds one persistent shortest-path tree per distinct source.
	// Trees survive across phases: lengths only grow, so a tree path stays
	// usable until its total length exceeds (1+ε) of its at-build total,
	// regardless of when the tree was built. When the per-source footprint
	// would be too large, perSrc is nil and the shared tree is rebuilt per
	// source batch instead.
	perSrc    map[int]*srcTree
	shared    *srcTree
	pathBuf   []int32
	targetBuf []int32

	// grownAt[a] is the value of growSeq when arc a's length last grew;
	// growSeq advances once per routed piece. A persistent tree remembers
	// the seq it was last current at, so "which of my tree arcs went stale"
	// is answered in O(1) per tree arc and the tree is incrementally
	// repaired instead of rebuilt. Unused (noRepair) when
	// Options.DisableRepair is set or the shared-tree fallback is active.
	grownAt  []int64
	growSeq  int64
	noRepair bool

	// bestBound/bestLens track the smallest per-phase dual bound and its
	// length snapshot — the ε-optimality witness exported on Result.
	bestBound float64
	bestLens  []float64

	// builds/repairs count full tree constructions vs incremental repairs;
	// repairTries counts attempts. When attempts keep exceeding the repair
	// budget (stale regions are global, as in dense high-demand instances),
	// repair is switched off for the rest of the solve and tree builds
	// return to early-exiting Dijkstras.
	builds, repairs, repairTries int

	// Wall-clock phase telemetry for Result.Timing: startedAt stamps
	// state construction; prebuildNanos/routeNanos split each phase
	// between the concurrent prebuild pass and the serial routing loop.
	startedAt                 time.Time
	prebuildNanos, routeNanos int64

	// Phase-start concurrent prebuild (see prebuildTrees): pool bounds the
	// workers, staleSrcs is the reusable list of sources whose trees the
	// phase refreshes up front, prebuilds counts those refreshes, and
	// margin (Options.PrebuildMargin) widens the refresh set to
	// borderline-fresh trees.
	pool      *runner.Pool
	staleSrcs []int
	prebuilds int
	margin    float64

	// Per-phase traversal choice (see choosePhaseTraversal): phaseDelta is
	// the bucket width derived from the phase-start length function,
	// useBucket the phase's heap-vs-bucket decision, noBucket the sticky
	// off switch (Options.DisableBucket or the rebase kill switch).
	// bucketBuilds/bucketRebases track the bucket path's hit count and its
	// failure mode, mirroring the repair kill-switch machinery.
	phaseDelta    float64
	useBucket     bool
	noBucket      bool
	bucketBuilds  int
	bucketRebases int
	bucketBails   int

	// rec accumulates the path decomposition when Options.RecordPaths is on.
	rec []PathFlow
	// recordPaths mirrors Options.RecordPaths.
	recordPaths bool
	// warm records that the length function was seeded from
	// Options.WarmLens (exported as Result.WarmStarted).
	warm bool
}

// srcTree is a shortest-path tree rooted at one source, with the length
// snapshot needed to detect per-path staleness.
type srcTree struct {
	scratch    *graph.DijkstraScratch
	lenAtBuild []float64
	built      bool
	// seq is the state.growSeq value the tree is current for: arcs with
	// grownAt > seq are length growths the tree has not absorbed yet.
	seq int64
	// full records whether the last build settled the whole graph (the
	// precondition for incremental repair); cold sources early-exit instead.
	full bool
	// hot marks a source whose tree went stale more than once within a
	// single phase: its demand outruns its bottlenecks, so staleness is
	// self-inflicted and localized — the regime where incremental repair
	// beats rebuilding. Hot sources get full (repairable) builds.
	hot bool
	// phaseOf/refreshes implement the heat detector: refresh count within
	// the phase the tree was last refreshed in.
	phaseOf   int
	refreshes int
	// targets caches the source batch's destination list so a concurrent
	// prebuild task needs no shared buffer; filled by the phase-start scan.
	targets []int32
}

// persistentTreeBudget caps the memory (in bytes, approximately) spent on
// per-source persistent trees before falling back to one shared tree.
const persistentTreeBudget = 1 << 28

func newState(g *graph.Graph, flows []traffic.Flow, eps float64, opt Options) *state {
	m := g.NumArcs()
	s := &state{
		g:           g,
		eps:         eps,
		m:           m,
		caps:        make([]float64, m),
		lens:        make([]float64, m),
		flow:        make([]float64, m),
		bySrc:       make(map[int][]int),
		flows:       flows,
		routed:      make([]float64, len(flows)),
		noRepair:    opt.DisableRepair,
		noBucket:    opt.DisableBucket,
		pool:        runner.New(opt.Workers),
		margin:      opt.PrebuildMargin,
		recordPaths: opt.RecordPaths,
		bestBound:   math.Inf(1),
		startedAt:   time.Now(),
	}
	delta := (1 + eps) * math.Pow((1+eps)*float64(m), -1/eps)
	for a := 0; a < m; a++ {
		s.caps[a] = g.Arc(a).Cap
	}
	if !s.seedWarm(opt.WarmLens, delta) {
		for a := 0; a < m; a++ {
			s.lens[a] = delta / s.caps[a]
			s.lenCapSum += delta
		}
	}
	for j, f := range flows {
		s.bySrc[f.Src] = append(s.bySrc[f.Src], j)
	}
	for src := range s.bySrc {
		s.srcs = append(s.srcs, src)
	}
	sort.Ints(s.srcs)
	// Footprint per persistent tree: lenAtBuild (8m) plus the scratch's
	// dist/via/stamp/tmark arrays (20n).
	if len(s.srcs)*(8*m+20*g.N()) <= persistentTreeBudget {
		s.perSrc = make(map[int]*srcTree, len(s.srcs))
	} else {
		s.shared = &srcTree{scratch: g.NewDijkstraScratch(), lenAtBuild: make([]float64, m)}
		// The shared slot is reused by every source, so a tree never
		// survives long enough for incremental repair to pay off.
		s.noRepair = true
	}
	if !s.noRepair {
		s.grownAt = make([]int64, m)
	}
	return s
}

// seedWarm initializes the length function from a parent solve's witness
// (see Options.WarmLens), reporting whether the warm start was taken.
// Mapped arcs (warm > 0, finite) keep the parent's length; unmapped arcs
// — links the parent graph did not have, or that the arc mapping could
// not match — get the mean l·cap of the mapped arcs divided by their own
// capacity, a neutral average-utilization prior. Everything is then
// rescaled so Σ l·cap = m·δ, the cold start's potential: the dual bound
// lenCapSum/α is scale-invariant, so the rescale preserves the witness's
// quality while the potential rule's termination accounting stays exactly
// as the cold analysis assumes. Every step is deterministic in the input
// bytes: identical WarmLens (bit for bit) yields identical seeds, hence
// byte-identical solves regardless of where the witness was loaded from.
func (s *state) seedWarm(warm []float64, delta float64) bool {
	if len(warm) != s.m {
		return false
	}
	usable := func(l float64) bool { return l > 0 && !math.IsInf(l, 1) && !math.IsNaN(l) }
	var sum float64
	mapped := 0
	for a, l := range warm {
		if usable(l) {
			sum += l * s.caps[a]
			mapped++
		}
	}
	if mapped == 0 || sum <= 0 || math.IsInf(sum, 1) || math.IsNaN(sum) {
		return false
	}
	fill := sum / float64(mapped)
	var tot float64
	for a := 0; a < s.m; a++ {
		lc := fill
		if l := warm[a]; usable(l) {
			lc = l * s.caps[a]
		}
		s.lens[a] = lc / s.caps[a]
		tot += lc
	}
	scale := float64(s.m) * delta / tot
	s.lenCapSum = 0
	for a := 0; a < s.m; a++ {
		s.lens[a] *= scale
		s.lenCapSum += s.lens[a] * s.caps[a]
	}
	s.warm = true
	return true
}

// treeFor returns the tree slot for src: the persistent per-source tree,
// or the shared slot (invalidated, since another source last used it).
func (s *state) treeFor(src int) *srcTree {
	if s.perSrc == nil {
		s.shared.built = false
		return s.shared
	}
	t := s.perSrc[src]
	if t == nil {
		t = &srcTree{scratch: s.g.NewDijkstraScratch(), lenAtBuild: make([]float64, s.m)}
		s.perSrc[src] = t
	}
	return t
}

func (s *state) checkReachability() error {
	// One BFS per distinct source suffices.
	for _, src := range s.srcs {
		js := s.bySrc[src]
		dist := s.g.BFS(src)
		for _, j := range js {
			if dist[s.flows[j].Dst] < 0 {
				return fmt.Errorf("%w: %d -> %d", ErrUnreachable, src, s.flows[j].Dst)
			}
		}
	}
	return nil
}

// bucketRangeLimit bounds the length spread (max/min over positive arc
// lengths) under which the bucket-queue traversal is considered at all.
// Beyond it, bucket indices (distance/delta) can outgrow what the queue
// handles gracefully: the window thrashes and, in the extreme, the
// float→int64 bucket conversion itself would overflow. Garg–Könemann
// lengths start uniform up to capacity ratios and spread multiplicatively
// as phases route, so early and mid solve sit far below the limit.
const bucketRangeLimit = 1 << 16

// Deterministic bucket kill switch, mirroring the repair one: once
// bucketMinRuns bucket traversals have executed and they averaged more
// than bucketRebaseBudget overflow rebases each, the length structure is
// hostile (distances spread far beyond the resident window) and the solver
// reverts to the heap for the rest of the solve. Rebase counts depend only
// on the frozen inputs of each run, so the switch flips — or doesn't —
// identically across worker counts.
const (
	bucketMinRuns      = 16
	bucketRebaseBudget = 4
)

// choosePhaseTraversal derives the phase's bucket width from the
// phase-start length function and decides heap vs bucket from the length
// spread. One O(m) scan per phase; every rebuild in the phase reuses the
// decision (lengths only grow, so phaseDelta stays a valid bucket width
// all phase).
func (s *state) choosePhaseTraversal() {
	if s.noBucket {
		s.useBucket = false
		return
	}
	minLen, maxLen := graph.LengthRange(s.lens)
	s.phaseDelta = minLen
	s.useBucket = minLen > 0 && maxLen <= bucketRangeLimit*minLen
}

// runTree executes one shortest-path tree construction for src with the
// phase's traversal choice, reporting whether the bucket path ran and how
// many overflow rebases it needed. It writes only t's scratch, so it is
// safe to run concurrently for distinct trees while s.lens is frozen.
func (s *state) runTree(t *srcTree, src int, targets []int32) (bucket, bailed bool, rebases int) {
	if t.full {
		targets = nil
	}
	if s.useBucket {
		t.scratch.RunBucketed(src, s.lens, targets, s.phaseDelta)
		return true, t.scratch.BucketBailed(), t.scratch.BucketRebases()
	}
	t.scratch.Run(src, s.lens, targets)
	return false, false, 0
}

// noteBucket folds one construction's traversal stats into the solve and
// trips the kill switches when the bucket path keeps losing: persistent
// window rebases mean the length spread outgrew the resident window, and
// bails mean mid-phase length growth pushed distances past what the
// phase-start bucket width can index at all (each bail already cost a
// wasted partial traversal before the heap rerun, so two are enough).
func (s *state) noteBucket(bucket, bailed bool, rebases int) {
	if !bucket {
		return
	}
	if bailed {
		s.bucketBails++
		if s.bucketBails >= 2 {
			s.noBucket = true
			s.useBucket = false
		}
		return
	}
	s.bucketBuilds++
	s.bucketRebases += rebases
	if s.bucketBuilds >= bucketMinRuns && s.bucketRebases > bucketRebaseBudget*s.bucketBuilds {
		s.noBucket = true
		s.useBucket = false
	}
}

// buildTree computes a fresh shortest-path tree for the source batch and
// snapshots the length function so later routing can detect staleness.
// Hot sources (see srcTree.hot) are built in full — incremental repair
// needs every reachable node settled — while cold sources keep the early
// exit once every destination of the batch is settled, exactly as before
// repair existed.
func (s *state) buildTree(t *srcTree, src int, targets []int32) {
	t.full = !s.noRepair && t.hot
	bucket, bailed, rebases := s.runTree(t, src, targets)
	copy(t.lenAtBuild, s.lens)
	t.seq = s.growSeq
	t.built = true
	s.builds++
	s.noteBucket(bucket, bailed, rebases)
}

// repairBudget bounds the stale region an incremental repair may process,
// as a fraction of the node count (denominator): beyond roughly half the
// tree, boundary-seeded re-relaxation costs about as much as a fresh
// early-exiting Dijkstra, so the repair bails and the tree is rebuilt.
const repairBudget = 2

// Adaptive kill switch: once repairMinTries attempts have been made and
// fewer than 1/repairWinRatio of them succeeded, the workload's stale
// regions are global (a Garg–Könemann phase that reroutes every commodity
// touches nearly every arc) and repair cannot beat an early-exiting
// rebuild, so the solver stops attempting it.
const (
	repairMinTries = 64
	repairWinRatio = 8
)

// refreshTree brings a stale tree up to date with the current length
// function: an incremental repair over the arcs that grew since the tree's
// seq, falling back to a rebuild when the source is cold (early-exited
// tree), repair is disabled, or the repair went over budget (stale region
// too large).
func (s *state) refreshTree(t *srcTree, src int, targets []int32) {
	if !t.built {
		s.buildTree(t, src, targets)
		return
	}
	// Heat detector: a second staleness within one phase means the source's
	// own routing is outrunning its bottlenecks; from the next build on it
	// gets a full, repairable tree.
	if t.phaseOf == s.phases {
		t.refreshes++
		if t.refreshes >= 2 {
			t.hot = true
		}
	} else {
		t.phaseOf, t.refreshes = s.phases, 1
	}
	if s.noRepair || !t.full {
		s.buildTree(t, src, targets)
		return
	}
	seq := t.seq
	s.repairTries++
	ok := t.scratch.RepairStale(s.lens,
		func(a int32) bool { return s.grownAt[a] > seq },
		s.g.N()/repairBudget)
	if ok {
		copy(t.lenAtBuild, s.lens)
		t.seq = s.growSeq
		s.repairs++
	}
	if s.repairTries >= repairMinTries && s.repairs*repairWinRatio < s.repairTries {
		s.noRepair = true
	}
	if !ok {
		s.buildTree(t, src, targets)
	}
}

// phaseStale reports whether src's tree needs a phase-start refresh: never
// built, or some requested root path is missing or has outgrown
// (1 + (1−margin)·ε) of its at-build length under the phase-start lengths.
// At margin 0 this is exactly the test the routing loop applies before
// each piece, so the prebuild refreshes only trees whose first piece of
// the phase would have forced a serial refresh anyway; a positive margin
// additionally catches borderline-fresh trees before the phase's own
// routing stales them mid-phase (see Options.PrebuildMargin).
func (s *state) phaseStale(t *srcTree, src int) bool {
	if !t.built {
		return true
	}
	onePlusEps := 1 + s.eps*(1-s.margin)
	for _, j := range s.bySrc[src] {
		var nowLen, buildLen float64
		at := s.flows[j].Dst
		for at != src {
			a := t.scratch.Via(at)
			if a < 0 {
				return true // the tree does not reach this destination
			}
			nowLen += s.lens[a]
			buildLen += t.lenAtBuild[a]
			at = int(s.g.Arc(int(a)).From)
		}
		if nowLen > onePlusEps*buildLen {
			return true
		}
	}
	return false
}

// prebuildStats is one prebuild task's outcome, returned instead of
// mutating shared counters so the reduce stays serial and deterministic.
type prebuildStats struct {
	repairTried bool
	repaired    bool
	bucket      bool
	bailed      bool
	rebases     int
}

// prebuildOne brings one stale tree current against the frozen phase-start
// length function. It is the concurrent mirror of refreshTree: same repair
// attempt, budget, and rebuild fallback — but every shared input (lens,
// grownAt, growSeq, the phase's traversal choice, the adaptive switches)
// is read-only here, and it writes only t.
func (s *state) prebuildOne(t *srcTree, src int) prebuildStats {
	var st prebuildStats
	if t.built && t.full && !s.noRepair {
		seq := t.seq
		st.repairTried = true
		if t.scratch.RepairStale(s.lens,
			func(a int32) bool { return s.grownAt[a] > seq },
			s.g.N()/repairBudget) {
			st.repaired = true
			copy(t.lenAtBuild, s.lens)
			t.seq = s.growSeq
			return st
		}
	}
	t.full = !s.noRepair && t.hot
	st.bucket, st.bailed, st.rebases = s.runTree(t, src, t.targets)
	copy(t.lenAtBuild, s.lens)
	t.seq = s.growSeq
	t.built = true
	return st
}

// prebuildTrees is the phase-start parallel pass: under the frozen
// phase-start length function it finds every source whose tree the phase
// is about to refresh anyway (phaseStale) and refreshes them all
// concurrently, one persistent scratch per source, bounded by the solve's
// pool and the process-wide runner semaphore. Routing then proceeds
// serially against those trees, so the solve's output is byte-identical
// regardless of worker count; only wall-clock changes. The (1+ε) staleness
// check in the routing loop still guards every piece, so trees that go
// stale again mid-phase (from this phase's own routing) are refreshed
// serially exactly as before.
func (s *state) prebuildTrees() {
	if s.perSrc == nil {
		return // shared-tree fallback: one slot, nothing to parallelize
	}
	stale := s.staleSrcs[:0]
	for _, src := range s.srcs {
		t := s.treeFor(src)
		if !s.phaseStale(t, src) {
			continue
		}
		// The phase-start staleness of a previously-built tree counts
		// toward the heat detector exactly as the first serial refresh of
		// the phase used to.
		if t.built {
			t.phaseOf, t.refreshes = s.phases, 1
		}
		t.targets = t.targets[:0]
		for _, j := range s.bySrc[src] {
			t.targets = append(t.targets, int32(s.flows[j].Dst))
		}
		stale = append(stale, src)
	}
	s.staleSrcs = stale
	if len(stale) == 0 {
		return
	}
	stats, _ := runner.Map(s.pool, len(stale), func(i int) (prebuildStats, error) {
		src := stale[i]
		return s.prebuildOne(s.perSrc[src], src), nil
	})
	// Serial reduce in source order: counters and kill switches see the
	// same sequence no matter how the tasks were scheduled.
	for _, st := range stats {
		if st.repairTried {
			s.repairTries++
		}
		if st.repaired {
			s.repairs++
		} else {
			s.builds++
		}
		s.prebuilds++
		s.noteBucket(st.bucket, st.bailed, st.rebases)
	}
	if s.repairTries >= repairMinTries && s.repairs*repairWinRatio < s.repairTries {
		s.noRepair = true
	}
}

// runPhase routes each commodity's full demand once under the current
// length function. Commodities sharing a source share one Dijkstra tree
// (Fleischer-style batching), and trees persist across phases; a tree is
// recomputed only when the path a piece is about to use has grown stale —
// its total length under the current length function exceeds (1+ε) times
// its length when the tree was built. Until then the path is within (1+ε)
// of a current shortest path (lengths only increase), which is exactly the
// slack the Garg–Könemann analysis tolerates, so capacity-limited pieces
// whose updates moved the lengths only negligibly no longer force a fresh
// Dijkstra each, and sources whose neighborhoods are quiet skip the
// per-phase Dijkstra entirely.
func (s *state) runPhase() {
	s.choosePhaseTraversal()
	phaseStart := time.Now()
	s.prebuildTrees()
	routeStart := time.Now()
	s.prebuildNanos += routeStart.Sub(phaseStart).Nanoseconds()
	defer func() { s.routeNanos += time.Since(routeStart).Nanoseconds() }()
	onePlusEps := 1 + s.eps
	s.alpha = 0
	for _, src := range s.srcs {
		js := s.bySrc[src]
		targets := s.targetBuf[:0]
		for _, j := range js {
			targets = append(targets, int32(s.flows[j].Dst))
		}
		s.targetBuf = targets
		t := s.treeFor(src)
		if !t.built {
			s.buildTree(t, src, targets)
		}
		for _, j := range js {
			dst := s.flows[j].Dst
			remaining := s.flows[j].Demand
			// In shared-tree mode the slot is overwritten by the next
			// source, so the dual term must be taken from the tree the
			// first piece routes on; per-source mode defers to the fresher
			// phase-end trees below.
			firstPiece := s.perSrc == nil
			for remaining > 0 {
				path := s.walkPath(t, dst)
				if path != nil {
					var nowLen, buildLen float64
					for _, a := range path {
						nowLen += s.lens[a]
						buildLen += t.lenAtBuild[a]
					}
					if nowLen > onePlusEps*buildLen {
						path = nil // stale: force a rebuild
					}
				}
				if path == nil {
					s.refreshTree(t, src, targets)
					path = s.walkPath(t, dst)
					if path == nil {
						// Should be impossible after checkReachability.
						break
					}
				}
				if firstPiece {
					s.alpha += s.flows[j].Demand * t.scratch.Dist(dst)
					firstPiece = false
				}
				bottleneck := math.Inf(1)
				for _, a := range path {
					if s.caps[a] < bottleneck {
						bottleneck = s.caps[a]
					}
				}
				u := math.Min(remaining, bottleneck)
				if !s.noRepair {
					s.growSeq++
					for _, a := range path {
						s.grownAt[a] = s.growSeq
					}
				}
				for _, a := range path {
					s.flow[a] += u
					old := s.lens[a]
					nl := old * (1 + s.eps*u/s.caps[a])
					s.lens[a] = nl
					s.lenCapSum += (nl - old) * s.caps[a]
				}
				if s.recordPaths {
					s.recordPiece(j, path, u)
				}
				s.routed[j] += u
				s.volLen += u * float64(len(path))
				s.vol += u
				remaining -= u
			}
		}
	}
	if s.perSrc != nil {
		// Dual normalizer from the phase-end trees: each source's newest
		// tree was built (or repaired) under lengths ≤ the end-of-phase
		// lengths, so Σ demand·dist is a valid α — and the freshest one
		// available without extra Dijkstras, which keeps the primal-dual
		// certificate as tight as possible now that prebuilt trees carry
		// phase-start (smaller) distances.
		for _, src := range s.srcs {
			t := s.perSrc[src]
			for _, j := range s.bySrc[src] {
				s.alpha += s.flows[j].Demand * t.scratch.Dist(s.flows[j].Dst)
			}
		}
	}
	s.phases++
}

// recordPiece appends one routed piece to the decomposition, merging with
// the previous entry when the same commodity reused the same path (the
// common case when demand exceeds the bottleneck).
func (s *state) recordPiece(j int, path []int32, u float64) {
	if n := len(s.rec); n > 0 {
		last := &s.rec[n-1]
		if last.Commodity == j && int32SlicesEqual(last.Arcs, path) {
			last.Flow += u
			return
		}
	}
	s.rec = append(s.rec, PathFlow{Commodity: j, Arcs: append([]int32(nil), path...), Flow: u})
}

func int32SlicesEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// walkPath returns the arc sequence from t's root to dst, or nil if dst
// was unreachable. The returned slice is a reusable buffer, valid until
// the next walkPath call.
func (s *state) walkPath(t *srcTree, dst int) []int32 {
	rev := s.pathBuf[:0]
	at := dst
	for {
		a := t.scratch.Via(at)
		if a < 0 {
			break
		}
		rev = append(rev, a)
		at = int(s.g.Arc(int(a)).From)
	}
	s.pathBuf = rev
	if len(rev) == 0 {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// primal returns the certified-feasible throughput of the flow routed so
// far: the worst commodity's routed fraction, scaled down by the maximum
// congestion.
func (s *state) primal() float64 {
	var chi float64
	for a := 0; a < s.m; a++ {
		if c := s.flow[a] / s.caps[a]; c > chi {
			chi = c
		}
	}
	if chi == 0 {
		return 0
	}
	minRatio := math.Inf(1)
	for j := range s.flows {
		if r := s.routed[j] / s.flows[j].Demand; r < minRatio {
			minRatio = r
		}
	}
	return minRatio / chi
}

func (s *state) result() *Result {
	witness := s.bestLens
	if witness == nil {
		witness = s.lens
	}
	res := &Result{
		ArcFlow:       make([]float64, s.m),
		ArcUtil:       make([]float64, s.m),
		Phases:        s.phases,
		TreeBuilds:    s.builds,
		TreeRepairs:   s.repairs,
		TreePrebuilds: s.prebuilds,
		BucketBuilds:  s.bucketBuilds,
		Epsilon:       s.eps,
		DualLens:      append([]float64(nil), witness...),
		WarmStarted:   s.warm,
		Timing: SolveTiming{
			PrebuildNanos: s.prebuildNanos,
			RouteNanos:    s.routeNanos,
			SolveNanos:    time.Since(s.startedAt).Nanoseconds(),
		},
	}
	// Maximum congestion certifies feasibility after scaling.
	var chi float64
	for a := 0; a < s.m; a++ {
		if c := s.flow[a] / s.caps[a]; c > chi {
			chi = c
		}
	}
	if chi == 0 {
		return res
	}
	minRatio := math.Inf(1)
	for j := range s.flows {
		if r := s.routed[j] / s.flows[j].Demand; r < minRatio {
			minRatio = r
		}
	}
	res.Throughput = minRatio / chi
	if s.recordPaths {
		res.Paths = s.rec
		for i := range res.Paths {
			res.Paths[i].Flow /= chi
		}
	}
	var totalFlow, totalCap float64
	for a := 0; a < s.m; a++ {
		res.ArcFlow[a] = s.flow[a] / chi
		res.ArcUtil[a] = res.ArcFlow[a] / s.caps[a]
		totalFlow += res.ArcFlow[a]
		totalCap += s.caps[a]
	}
	res.Utilization = totalFlow / totalCap
	if s.vol > 0 {
		res.FlowPathLen = s.volLen / s.vol
	}
	// Demand-weighted shortest path length (hops).
	var dsum, dtot float64
	distCache := make(map[int][]int)
	for _, f := range s.flows {
		dist, ok := distCache[f.Src]
		if !ok {
			dist = s.g.BFS(f.Src)
			distCache[f.Src] = dist
		}
		dsum += float64(dist[f.Dst]) * f.Demand
		dtot += f.Demand
	}
	if dtot > 0 {
		res.DemandSPL = dsum / dtot
	}
	if res.DemandSPL > 0 {
		res.Stretch = res.FlowPathLen / res.DemandSPL
	}
	return res
}
