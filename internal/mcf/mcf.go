// Package mcf computes the paper's throughput metric: the maximum
// concurrent multi-commodity flow (the largest λ such that every commodity
// j can ship λ·demand_j simultaneously without exceeding any link
// capacity). This is the "maximize the minimum flow" LP of §3, which the
// paper solves with CPLEX.
//
// Substitution: instead of an LP solver we use the Garg–Könemann
// fully-polynomial approximation scheme with Fleischer-style source
// batching. The returned throughput is certified feasible — the final flow
// is explicitly scaled by its maximum congestion, so Result.Throughput is
// always achievable — and is within the configured ε of the LP optimum
// (validated against closed-form optima in the tests).
package mcf

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// Options configures the solver.
type Options struct {
	// Epsilon is the approximation parameter; smaller is more accurate and
	// slower. Values in [0.02, 0.2] are sensible; 0 means DefaultEpsilon.
	Epsilon float64
	// MaxPhases caps the number of Garg–Könemann phases as a safety valve.
	// 0 means no explicit cap (the length-function stopping rule applies).
	MaxPhases int
}

// DefaultEpsilon is used when Options.Epsilon is zero.
const DefaultEpsilon = 0.08

// ErrUnreachable is returned when some commodity's endpoints are not
// connected, so no positive concurrent throughput exists.
var ErrUnreachable = errors.New("mcf: commodity endpoints disconnected")

// Result reports the solved flow and the decomposition metrics of §6.1.
type Result struct {
	// Throughput is λ: every commodity can ship λ·demand concurrently.
	Throughput float64
	// ArcFlow is the certified-feasible per-arc flow (indexed like
	// graph arc indices), after congestion scaling.
	ArcFlow []float64
	// ArcUtil is ArcFlow[a]/cap(a) per arc, in [0, 1].
	ArcUtil []float64
	// Utilization is total flow volume over total capacity — the paper's U.
	Utilization float64
	// FlowPathLen is the average hop length of routed flow, weighted by
	// flow volume.
	FlowPathLen float64
	// DemandSPL is the demand-weighted average shortest path length
	// between commodity endpoints.
	DemandSPL float64
	// Stretch is FlowPathLen/DemandSPL — the paper's AS (≥ 1).
	Stretch float64
	// Phases is the number of completed Garg–Könemann phases.
	Phases int
}

// Solve computes the maximum concurrent flow for the commodities in flows
// on graph g.
func Solve(g *graph.Graph, flows []traffic.Flow, opt Options) (*Result, error) {
	eps := opt.Epsilon
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	if eps >= 0.5 {
		return nil, fmt.Errorf("mcf: epsilon %v too large", eps)
	}
	if len(flows) == 0 {
		return &Result{Throughput: math.Inf(1), Stretch: 1}, nil
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Demand <= 0 {
			return nil, fmt.Errorf("mcf: invalid commodity %+v", f)
		}
	}

	s := newState(g, flows, eps)
	if err := s.checkReachability(); err != nil {
		return nil, err
	}
	maxPhases := opt.MaxPhases
	if maxPhases <= 0 {
		maxPhases = math.MaxInt32
	}
	for s.sumLenCap() < 1 && s.phases < maxPhases {
		s.runPhase()
	}
	return s.result(), nil
}

// state holds the working data of one solve.
type state struct {
	g     *graph.Graph
	eps   float64
	m     int       // arc count
	caps  []float64 // per-arc capacity
	lens  []float64 // GK length function
	flow  []float64 // raw accumulated per-arc flow
	bySrc map[int][]int
	srcs  []int // sorted keys of bySrc, for deterministic iteration
	flows []traffic.Flow
	// routed[j] is the total demand routed so far for commodity j.
	routed []float64
	// volume-weighted path length accumulator.
	volLen, vol float64
	phases      int
}

func newState(g *graph.Graph, flows []traffic.Flow, eps float64) *state {
	m := g.NumArcs()
	s := &state{
		g:      g,
		eps:    eps,
		m:      m,
		caps:   make([]float64, m),
		lens:   make([]float64, m),
		flow:   make([]float64, m),
		bySrc:  make(map[int][]int),
		flows:  flows,
		routed: make([]float64, len(flows)),
	}
	delta := (1 + eps) * math.Pow((1+eps)*float64(m), -1/eps)
	for a := 0; a < m; a++ {
		s.caps[a] = g.Arc(a).Cap
		s.lens[a] = delta / s.caps[a]
	}
	for j, f := range flows {
		s.bySrc[f.Src] = append(s.bySrc[f.Src], j)
	}
	for src := range s.bySrc {
		s.srcs = append(s.srcs, src)
	}
	sort.Ints(s.srcs)
	return s
}

func (s *state) checkReachability() error {
	// One BFS per distinct source suffices.
	for _, src := range s.srcs {
		js := s.bySrc[src]
		dist := s.g.BFS(src)
		for _, j := range js {
			if dist[s.flows[j].Dst] < 0 {
				return fmt.Errorf("%w: %d -> %d", ErrUnreachable, src, s.flows[j].Dst)
			}
		}
	}
	return nil
}

func (s *state) sumLenCap() float64 {
	var d float64
	for a := 0; a < s.m; a++ {
		d += s.lens[a] * s.caps[a]
	}
	return d
}

// runPhase routes each commodity's full demand once under the current
// length function. Commodities sharing a source reuse one Dijkstra tree
// for their first piece (Fleischer-style batching); residual demand after
// a capacity-limited piece triggers a fresh Dijkstra.
func (s *state) runPhase() {
	for _, src := range s.srcs {
		js := s.bySrc[src]
		_, via := s.g.Dijkstra(src, s.lens)
		for _, j := range js {
			remaining := s.flows[j].Demand
			first := true
			for remaining > 0 {
				if !first {
					_, via = s.g.Dijkstra(src, s.lens)
				}
				path := s.walkPath(via, s.flows[j].Dst)
				if path == nil {
					// Should be impossible after checkReachability.
					break
				}
				bottleneck := math.Inf(1)
				for _, a := range path {
					if s.caps[a] < bottleneck {
						bottleneck = s.caps[a]
					}
				}
				u := math.Min(remaining, bottleneck)
				for _, a := range path {
					s.flow[a] += u
					s.lens[a] *= 1 + s.eps*u/s.caps[a]
				}
				s.routed[j] += u
				s.volLen += u * float64(len(path))
				s.vol += u
				remaining -= u
				first = false
			}
		}
	}
	s.phases++
}

// walkPath returns the arc sequence from the Dijkstra root to dst, or nil
// if dst was unreachable.
func (s *state) walkPath(via []int32, dst int) []int32 {
	if via[dst] < 0 {
		return nil
	}
	var rev []int32
	at := int32(dst)
	for via[at] >= 0 {
		a := via[at]
		rev = append(rev, a)
		at = s.g.Arc(int(a)).From
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (s *state) result() *Result {
	res := &Result{
		ArcFlow: make([]float64, s.m),
		ArcUtil: make([]float64, s.m),
		Phases:  s.phases,
	}
	// Maximum congestion certifies feasibility after scaling.
	var chi float64
	for a := 0; a < s.m; a++ {
		if c := s.flow[a] / s.caps[a]; c > chi {
			chi = c
		}
	}
	if chi == 0 {
		return res
	}
	minRatio := math.Inf(1)
	for j := range s.flows {
		if r := s.routed[j] / s.flows[j].Demand; r < minRatio {
			minRatio = r
		}
	}
	res.Throughput = minRatio / chi
	var totalFlow, totalCap float64
	for a := 0; a < s.m; a++ {
		res.ArcFlow[a] = s.flow[a] / chi
		res.ArcUtil[a] = res.ArcFlow[a] / s.caps[a]
		totalFlow += res.ArcFlow[a]
		totalCap += s.caps[a]
	}
	res.Utilization = totalFlow / totalCap
	if s.vol > 0 {
		res.FlowPathLen = s.volLen / s.vol
	}
	// Demand-weighted shortest path length (hops).
	var dsum, dtot float64
	distCache := make(map[int][]int)
	for _, f := range s.flows {
		dist, ok := distCache[f.Src]
		if !ok {
			dist = s.g.BFS(f.Src)
			distCache[f.Src] = dist
		}
		dsum += float64(dist[f.Dst]) * f.Demand
		dtot += f.Demand
	}
	if dtot > 0 {
		res.DemandSPL = dsum / dtot
	}
	if res.DemandSPL > 0 {
		res.Stretch = res.FlowPathLen / res.DemandSPL
	}
	return res
}
