package mcf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

// tol is the acceptance band for the ε-approximate solver in tests that
// compare against closed-form LP optima.
const tol = 0.12

func near(t *testing.T, got, want, tolerance float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tolerance*want {
		t.Fatalf("%s: got %v, want %v ± %v%%", msg, got, want, tolerance*100)
	}
}

func solve(t *testing.T, g *graph.Graph, flows []traffic.Flow, eps float64) *Result {
	t.Helper()
	res, err := Solve(g, flows, Options{Epsilon: eps})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestSingleLink(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res := solve(t, g, []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}}, 0.05)
	near(t, res.Throughput, 1.0, tol, "single link throughput")
	if res.Throughput > 1+1e-9 {
		t.Fatalf("throughput %v exceeds capacity bound 1", res.Throughput)
	}
}

func TestSingleLinkBothDirections(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	flows := []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}, {Src: 1, Dst: 0, Demand: 1}}
	res := solve(t, g, flows, 0.05)
	// Each direction has independent capacity 1.
	near(t, res.Throughput, 1.0, tol, "bidirectional throughput")
}

func TestSharedBottleneck(t *testing.T) {
	// Path 0-1-2: commodities 0->1 and 0->2 share arc 0->1 of capacity 1.
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	flows := []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}, {Src: 0, Dst: 2, Demand: 1}}
	res := solve(t, g, flows, 0.05)
	near(t, res.Throughput, 0.5, tol, "shared bottleneck throughput")
}

func TestDemandScaling(t *testing.T) {
	// Demand 2 on a unit link: λ = 0.5.
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res := solve(t, g, []traffic.Flow{{Src: 0, Dst: 1, Demand: 2}}, 0.05)
	near(t, res.Throughput, 0.5, tol, "demand-2 throughput")
}

func TestStarPermutation(t *testing.T) {
	// Star with center 0 and leaves 1..5; leaf i sends to leaf i+1.
	// Every flow uses its private up-arc and down-arc: λ = 1 exactly.
	const k = 5
	g := graph.New(k + 1)
	for i := 1; i <= k; i++ {
		g.AddLink(0, i, 1)
	}
	var flows []traffic.Flow
	for i := 1; i <= k; i++ {
		j := i%k + 1
		flows = append(flows, traffic.Flow{Src: i, Dst: j, Demand: 1})
	}
	res := solve(t, g, flows, 0.05)
	near(t, res.Throughput, 1.0, tol, "star permutation throughput")
	if res.Stretch < 1-1e-9 {
		t.Fatalf("stretch %v < 1", res.Stretch)
	}
}

func TestTwoClusterSingleBridge(t *testing.T) {
	// Two K4s joined by one link; two commodities cross it in the same
	// direction: λ = 0.5.
	g := graph.New(8)
	for c := 0; c < 2; c++ {
		base := 4 * c
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddLink(base+i, base+j, 1)
			}
		}
	}
	g.AddLink(0, 4, 1)
	flows := []traffic.Flow{
		{Src: 1, Dst: 5, Demand: 1},
		{Src: 2, Dst: 6, Demand: 1},
	}
	res := solve(t, g, flows, 0.05)
	near(t, res.Throughput, 0.5, tol, "bridge-limited throughput")
}

func TestMultipathBeatsSinglePath(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3, one commodity 0->3 with demand 2.
	// Two disjoint 2-hop paths: λ = 1.
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 1)
	g.AddLink(2, 3, 1)
	res := solve(t, g, []traffic.Flow{{Src: 0, Dst: 3, Demand: 2}}, 0.05)
	near(t, res.Throughput, 1.0, tol, "diamond multipath throughput")
}

func TestFeasibilityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := rrg.Regular(rng, 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 3)
	}
	h := traffic.HostsOf(g)
	tm := traffic.Permutation(rng, h)
	res := solve(t, g, tm.Flows, 0.08)
	if res.Throughput <= 0 {
		t.Fatalf("non-positive throughput %v", res.Throughput)
	}
	for a, f := range res.ArcFlow {
		if f > g.Arc(a).Cap+1e-9 {
			t.Fatalf("arc %d overloaded: flow %v > cap %v", a, f, g.Arc(a).Cap)
		}
		if res.ArcUtil[a] < -1e-12 || res.ArcUtil[a] > 1+1e-9 {
			t.Fatalf("arc %d utilization %v out of [0,1]", a, res.ArcUtil[a])
		}
	}
	if res.Stretch < 1-1e-9 {
		t.Fatalf("stretch %v < 1", res.Stretch)
	}
	if res.Utilization <= 0 || res.Utilization > 1+1e-9 {
		t.Fatalf("utilization %v out of (0,1]", res.Utilization)
	}
}

func TestAgainstMaxFlowSingleCommodity(t *testing.T) {
	// For a single commodity, max concurrent flow with demand d equals
	// maxflow/d. Cross-check GK against Dinic on random graphs.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g, err := rrg.Regular(rng, 12, 3)
		if err != nil {
			t.Fatal(err)
		}
		nw := maxflow.NewNetwork(g)
		s, d := 0, 6
		exact := nw.MaxFlow(s, d)
		res := solve(t, g, []traffic.Flow{{Src: s, Dst: d, Demand: 1}}, 0.05)
		near(t, res.Throughput, exact, tol, "GK vs Dinic")
		if res.Throughput > exact+1e-9 {
			t.Fatalf("GK %v exceeds exact max flow %v", res.Throughput, exact)
		}
	}
}

func TestUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	_, err := Solve(g, []traffic.Flow{{Src: 0, Dst: 3, Demand: 1}}, Options{})
	if err == nil {
		t.Fatal("expected error for disconnected commodity")
	}
}

func TestEmptyFlows(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	res, err := Solve(g, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.Throughput, 1) {
		t.Fatalf("empty TM throughput %v, want +Inf", res.Throughput)
	}
}

func TestInvalidCommodity(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	if _, err := Solve(g, []traffic.Flow{{Src: 0, Dst: 0, Demand: 1}}, Options{}); err == nil {
		t.Fatal("expected error for self-commodity")
	}
	if _, err := Solve(g, []traffic.Flow{{Src: 0, Dst: 1, Demand: 0}}, Options{}); err == nil {
		t.Fatal("expected error for zero demand")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := rrg.Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	h := traffic.HostsOf(g)
	tm := traffic.Permutation(rand.New(rand.NewSource(5)), h)
	a := solve(t, g, tm.Flows, 0.1)
	b := solve(t, g, tm.Flows, 0.1)
	if a.Throughput != b.Throughput {
		t.Fatalf("non-deterministic: %v vs %v", a.Throughput, b.Throughput)
	}
}

func TestEpsilonImprovesAccuracy(t *testing.T) {
	// Tighter epsilon should not give a materially worse answer on a
	// known-optimum instance.
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	flows := []traffic.Flow{{Src: 0, Dst: 2, Demand: 1}}
	loose := solve(t, g, flows, 0.2)
	tight := solve(t, g, flows, 0.03)
	if tight.Throughput < loose.Throughput-0.02 {
		t.Fatalf("eps=0.03 gave %v, worse than eps=0.2's %v", tight.Throughput, loose.Throughput)
	}
	near(t, tight.Throughput, 1.0, 0.05, "tight epsilon accuracy")
}
