package mcf

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
	"repro/internal/traffic"
)

// cancelInstance builds a solve big enough to span multiple phases.
func cancelInstance(t *testing.T) (*graph.Graph, []traffic.Flow) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g, err := rrg.Regular(rng, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 24; u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	return g, tm.Flows
}

// TestSolveCancelBeforeStart: a pre-closed Cancel channel aborts at the
// first phase boundary with ErrCanceled and no result.
func TestSolveCancelBeforeStart(t *testing.T) {
	g, flows := cancelInstance(t)
	done := make(chan struct{})
	close(done)
	res, err := Solve(g, flows, Options{Epsilon: 0.1, Cancel: done})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err: %v, want ErrCanceled", err)
	}
	if res != nil {
		t.Fatal("canceled solve returned a result")
	}
}

// TestSolveCancelNeverChangesResults: a completed solve is byte-identical
// whether or not a (never-fired) Cancel channel was attached — the
// guarantee that lets the service thread request contexts into every
// solve without risking the determinism contract.
func TestSolveCancelNeverChangesResults(t *testing.T) {
	g, flows := cancelInstance(t)
	plain, err := Solve(g, flows, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	armed, err := Solve(g, flows, Options{Epsilon: 0.1, Cancel: make(chan struct{})})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Throughput != armed.Throughput || !reflect.DeepEqual(plain.ArcFlow, armed.ArcFlow) {
		t.Fatal("attaching an unfired Cancel channel changed the solve")
	}
}
