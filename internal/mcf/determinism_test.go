// Determinism of the phase-parallel solver: the phase-start tree prebuild
// fans out across workers, but every tree is computed against the frozen
// phase-start length function with per-source scratch state and all shared
// counters are reduced serially in source order — so the solve's output
// must be byte-identical for ANY worker count. This is the contract that
// lets the golden figure tests stay byte-for-byte across machines with
// different core counts.
package mcf_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// instance is one (graph, demands, ε) determinism fixture.
type instance struct {
	g     *graph.Graph
	flows []traffic.Flow
	eps   float64
}

// determinismInstances builds named fixtures spanning the solver's
// regimes: permutation on RRG (the benchmark workload), heavy demand
// (repair-heavy), and the Clos baseline.
func determinismInstances(t *testing.T) map[string]instance {
	t.Helper()
	out := map[string]instance{}

	rng := rand.New(rand.NewSource(7))
	g, err := rrg.Regular(rng, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 4)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	out["rrg-permutation"] = instance{g, tm.Flows, 0.1}

	g2, err := rrg.Regular(rng, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	out["rrg-heavy"] = instance{g2, randomDemands(rng, 30, 10, 40), 0.1}

	ft, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	ftm := traffic.Permutation(rng, traffic.HostsOf(ft))
	out["fat-tree"] = instance{ft, ftm.Flows, 0.08}
	return out
}

// TestSolverDeterministicAcrossWorkers: solving the same instance with 1,
// 2, and GOMAXPROCS prebuild workers must produce identical Results down
// to the last bit — flows, paths, counters, and the dual witness alike.
func TestSolverDeterministicAcrossWorkers(t *testing.T) {
	// Open the process-wide semaphore so multi-worker runs actually fan
	// out even on small CI boxes (the default cap is GOMAXPROCS).
	runner.SetMaxInFlight(8)
	defer runner.SetMaxInFlight(0)

	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0), 5}
	// Margin 0 is the historical exact phase-start test; 0.5 exercises the
	// widened borderline-fresh prebuild — both must be worker-independent.
	for name, inst := range determinismInstances(t) {
		for _, margin := range []float64{0, 0.5} {
			var ref *mcf.Result
			for _, w := range workerCounts {
				res, err := mcf.Solve(inst.g, inst.flows, mcf.Options{
					Epsilon: inst.eps, RecordPaths: true, Workers: w, PrebuildMargin: margin,
				})
				if err != nil {
					t.Fatalf("%s margin=%v workers=%d: %v", name, margin, w, err)
				}
				// Timing is wall clock — the one Result field that is
				// non-deterministic by contract. Everything else must match.
				res.Timing = mcf.SolveTiming{}
				if ref == nil {
					ref = res
					if res.TreePrebuilds == 0 {
						t.Fatalf("%s margin=%v: prebuild never engaged; the determinism test is vacuous", name, margin)
					}
					continue
				}
				if got, want := math.Float64bits(res.Throughput), math.Float64bits(ref.Throughput); got != want {
					t.Fatalf("%s margin=%v workers=%d: throughput %v differs from workers=%d reference %v",
						name, margin, w, res.Throughput, workerCounts[0], ref.Throughput)
				}
				if !reflect.DeepEqual(res, ref) {
					t.Fatalf("%s margin=%v workers=%d: result diverges from workers=%d reference:\n%s",
						name, margin, w, workerCounts[0], diffResults(ref, res))
				}
			}
		}
	}
}

// diffResults names the first field that differs, for a readable failure.
func diffResults(a, b *mcf.Result) string {
	av, bv := reflect.ValueOf(*a), reflect.ValueOf(*b)
	for i := 0; i < av.NumField(); i++ {
		if !reflect.DeepEqual(av.Field(i).Interface(), bv.Field(i).Interface()) {
			return fmt.Sprintf("field %s: %v vs %v",
				av.Type().Field(i).Name, av.Field(i).Interface(), bv.Field(i).Interface())
		}
	}
	return "(no field diff found)"
}

// TestSolverDeterministicBucketAblation: the bucket kill switch changes
// only the traversal implementation; with unique shortest paths the two
// must agree bit-for-bit on the benchmark workload's early phases... which
// cannot be asserted globally (uniform initial lengths tie-break
// differently), so instead assert the weaker ε-class property plus exact
// per-option determinism across repeated runs.
func TestSolverDeterministicBucketAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := rrg.Regular(rng, 24, 6)
	if err != nil {
		t.Fatal(err)
	}
	flows := randomDemands(rng, 24, 30, 3)
	for _, disable := range []bool{false, true} {
		var ref *mcf.Result
		for rep := 0; rep < 2; rep++ {
			res, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1, RecordPaths: true, DisableBucket: disable})
			if err != nil {
				t.Fatal(err)
			}
			res.Timing = mcf.SolveTiming{} // wall clock: non-deterministic by contract
			if ref == nil {
				ref = res
			} else if !reflect.DeepEqual(res, ref) {
				t.Fatalf("disableBucket=%v: repeated solve not deterministic:\n%s", disable, diffResults(ref, res))
			}
		}
	}
	on, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	off, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1, DisableBucket: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(on.Throughput-off.Throughput) / off.Throughput; d > 2*0.1 {
		t.Fatalf("bucket on λ=%v vs off λ=%v diverge by %.1f%%", on.Throughput, off.Throughput, 100*d)
	}
	if on.BucketBuilds == 0 {
		t.Fatal("bucket traversal never engaged on the ablation instance")
	}
	if off.BucketBuilds != 0 {
		t.Fatal("DisableBucket did not disable the bucket traversal")
	}
}
