package mcf

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/traffic"
)

func TestWriteLPStructure(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)   // arcs 0,1
	g.AddLink(1, 2, 2.5) // arcs 2,3
	flows := []traffic.Flow{{Src: 0, Dst: 2, Demand: 1}, {Src: 2, Dst: 0, Demand: 2}}
	var sb strings.Builder
	if err := WriteLP(&sb, g, flows); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Maximize",
		"obj: t",
		"Subject To",
		"demand_0:", "demand_1:",
		"- 1 t >= 0", "- 2 t >= 0",
		"cons_0_1:", // interior node of commodity 0
		"cap_0:", "cap_3:",
		"<= 2.5",
		"Bounds",
		"End",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP missing %q:\n%s", want, out)
		}
	}
	// One capacity row per arc.
	if got := strings.Count(out, "cap_"); got != g.NumArcs() {
		t.Fatalf("%d capacity rows, want %d", got, g.NumArcs())
	}
	// One conservation row per (commodity, interior node).
	if got := strings.Count(out, "cons_"); got != 2*1 {
		t.Fatalf("%d conservation rows, want 2", got)
	}
}

func TestWriteLPErrors(t *testing.T) {
	g := graph.New(2)
	g.AddLink(0, 1, 1)
	var sb strings.Builder
	if err := WriteLP(&sb, g, nil); err == nil {
		t.Fatal("empty commodity list accepted")
	}
	if err := WriteLP(&sb, g, []traffic.Flow{{Src: 0, Dst: 0, Demand: 1}}); err == nil {
		t.Fatal("self commodity accepted")
	}
}

// The LP and the approximate solver describe the same problem: for an
// instance with a known optimum, the demand rows must reference every
// out-arc of the source and the solver must approach the LP's optimal t.
func TestWriteLPConsistentWithSolver(t *testing.T) {
	g := graph.New(3)
	g.AddLink(0, 1, 1)
	g.AddLink(1, 2, 1)
	flows := []traffic.Flow{{Src: 0, Dst: 1, Demand: 1}, {Src: 0, Dst: 2, Demand: 1}}
	var sb strings.Builder
	if err := WriteLP(&sb, g, flows); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g, flows, Options{Epsilon: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	// LP optimum is 0.5 (shared arc 0->1); GK must be within epsilon-ish.
	if res.Throughput < 0.45 || res.Throughput > 0.5+1e-9 {
		t.Fatalf("solver %v vs LP optimum 0.5", res.Throughput)
	}
}
