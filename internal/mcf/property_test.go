// Property-based certification of the solver: every solve on randomized
// instances must pass the independent flowcheck verifier, and the solver's
// incremental tree repair must be indistinguishable from full rebuilds.
// The package is mcf_test so it can import flowcheck (which imports mcf).
package mcf_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/flowcheck"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// randomDemands draws a randomized demand matrix: each commodity joins two
// distinct random switches with a demand in (0, maxD].
func randomDemands(rng *rand.Rand, n, count int, maxD float64) []traffic.Flow {
	var flows []traffic.Flow
	seen := map[[2]int]bool{}
	for len(flows) < count {
		s, d := rng.Intn(n), rng.Intn(n)
		if s == d || seen[[2]int{s, d}] {
			continue
		}
		seen[[2]int{s, d}] = true
		flows = append(flows, traffic.Flow{Src: s, Dst: d, Demand: maxD * (0.1 + 0.9*rng.Float64())})
	}
	return flows
}

// certify solves the instance with path recording and demands a clean
// flowcheck report.
func certify(t *testing.T, g *graph.Graph, flows []traffic.Flow, eps float64, ctx string) *mcf.Result {
	t.Helper()
	res, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps, RecordPaths: true})
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	rep, err := flowcheck.Verify(g, flows, res, flowcheck.Options{})
	if err != nil {
		t.Fatalf("%s: %v", ctx, err)
	}
	if !rep.OK() {
		t.Fatalf("%s: verifier rejected the solve:\n%s", ctx, rep)
	}
	return res
}

// TestFlowcheckCertifiesRandomRRG: randomized regular random graphs under
// randomized demand matrices; every solve must verify.
func TestFlowcheckCertifiesRandomRRG(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		n := 12 + rng.Intn(30)
		r := 3 + rng.Intn(5)
		if r >= n {
			r = n - 1
		}
		if n*r%2 == 1 {
			r--
		}
		g, err := rrg.Regular(rng, n, r)
		if err != nil {
			t.Fatal(err)
		}
		flows := randomDemands(rng, n, 2+rng.Intn(3*n), 1+4*rng.Float64())
		eps := 0.05 + 0.1*rng.Float64()
		certify(t, g, flows, eps, fmt.Sprintf("rrg trial %d (n=%d r=%d)", trial, n, r))
	}
}

// TestFlowcheckCertifiesFatTree: the Clos baseline with permutation and
// randomized demands.
func TestFlowcheckCertifiesFatTree(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g, err := topo.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	certify(t, g, tm.Flows, 0.08, "fat-tree permutation")
	flows := randomDemands(rng, g.N(), 40, 2)
	certify(t, g, flows, 0.1, "fat-tree random demands")
}

// TestFlowcheckCertifiesAllToAll: the potential-rule exit regime. Dense
// all-to-all demand ends the solve on Σ lens·caps ≥ 1 rather than the
// early certificate, where only the classical 3ε guarantee (against the
// best-phase dual witness) holds — the regime that forced DualLens to be
// the argmin-phase snapshot instead of the final lengths.
func TestFlowcheckCertifiesAllToAll(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	g, err := rrg.Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 2)
	}
	tm := traffic.AllToAll(traffic.HostsOf(g))
	certify(t, g, tm.Flows, 0.1, "all-to-all")
}

// TestFlowcheckCertifiesHeavyDemand: the repair-heavy regime (demand far
// above bottleneck capacity, many pieces per phase) must stay certified.
func TestFlowcheckCertifiesHeavyDemand(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, err := rrg.Regular(rng, 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	flows := randomDemands(rng, 60, 8, 30)
	res := certify(t, g, flows, 0.1, "heavy-demand")
	if res.TreeRepairs == 0 {
		t.Log("note: no repairs engaged on the heavy-demand instance")
	}
}

// TestRepairTrajectoryMatchesRebuild: with repair on vs off the solver may
// break shortest-path ties differently, but throughput must agree within
// the ε class and both runs must verify.
func TestRepairTrajectoryMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		n := 20 + rng.Intn(40)
		g, err := rrg.Regular(rng, n, 4+2*rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		flows := randomDemands(rng, n, 5+rng.Intn(10), 25)
		eps := 0.1
		on, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		off, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps, DisableRepair: true, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(on.Throughput-off.Throughput) / off.Throughput; d > 2*eps {
			t.Fatalf("trial %d: repair-on λ=%v vs repair-off λ=%v diverge by %.1f%%",
				trial, on.Throughput, off.Throughput, 100*d)
		}
		for name, res := range map[string]*mcf.Result{"on": on, "off": off} {
			rep, err := flowcheck.Verify(g, flows, res, flowcheck.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("trial %d repair-%s rejected:\n%s", trial, name, rep)
			}
		}
	}
}

// TestRepairOracleUnderSolverLengths drives the graph-level repair through
// the exact length evolution the solver produces — multiplicative growth
// along root-to-destination paths — and demands bit-identical dist/via
// against a from-scratch Dijkstra after every batch. Together with
// graph.TestRepairOracle this is the repair oracle: ≥100 randomized
// sequences across the two.
func TestRepairOracleUnderSolverLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for seq := 0; seq < 60; seq++ {
		n := 16 + rng.Intn(60)
		r := 3 + rng.Intn(4)
		if r >= n {
			r = n - 1
		}
		if n*r%2 == 1 {
			r--
		}
		g, err := rrg.Regular(rng, n, r)
		if err != nil {
			t.Fatal(err)
		}
		m := g.NumArcs()
		lens := make([]float64, m)
		for a := range lens {
			lens[a] = 0.01 * (1 + 0.001*rng.Float64()) // near-uniform GK start, no exact ties
		}
		src := rng.Intn(n)
		d := g.NewDijkstraScratch()
		d.Run(src, lens, nil)
		for round := 0; round < 6; round++ {
			// Grow the arcs of the current tree path to a random target by
			// the solver's (1 + ε·u/c) factor, plus a few foreign arcs.
			var changed []int32
			dst := rng.Intn(n)
			for at := dst; at != src; {
				a := d.Via(at)
				if a < 0 {
					break
				}
				lens[a] *= 1 + 0.1*rng.Float64()
				changed = append(changed, a)
				at = int(g.Arc(int(a)).From)
			}
			for k := 0; k < 3; k++ {
				a := int32(rng.Intn(m))
				lens[a] *= 1 + 0.05*rng.Float64()
				changed = append(changed, a)
			}
			if !d.Repair(lens, changed) {
				t.Fatalf("seq %d round %d: repair refused", seq, round)
			}
			dist, via := g.Dijkstra(src, lens)
			for v := 0; v < n; v++ {
				if d.Dist(v) != dist[v] || d.Via(v) != via[v] {
					t.Fatalf("seq %d round %d: node %d repair (%v, %d) != rebuild (%v, %d)",
						seq, round, v, d.Dist(v), d.Via(v), dist[v], via[v])
				}
			}
		}
	}
}

// TestFlowcheckCertifiesMarginSolves: the prebuild staleness margin moves
// tree refreshes to phase start but must stay inside the GK analysis —
// every margined solve still passes the independent verifier, and the
// throughput stays within the ε class of the margin-0 solve.
func TestFlowcheckCertifiesMarginSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 6; trial++ {
		n := 16 + 2*rng.Intn(12) // even, so any degree is feasible
		r := 4 + rng.Intn(4)
		g, err := rrg.Regular(rng, n, r)
		if err != nil {
			t.Fatal(err)
		}
		flows := randomDemands(rng, n, n+rng.Intn(2*n), 6)
		eps := 0.2
		base, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps, RecordPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, margin := range []float64{0.25, 0.5, 0.9} {
			res, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps, RecordPaths: true, PrebuildMargin: margin})
			if err != nil {
				t.Fatalf("trial %d margin %v: %v", trial, margin, err)
			}
			rep, err := flowcheck.Verify(g, flows, res, flowcheck.Options{})
			if err != nil {
				t.Fatalf("trial %d margin %v: %v", trial, margin, err)
			}
			if !rep.OK() {
				t.Fatalf("trial %d margin %v: verifier rejected the solve:\n%s", trial, margin, rep)
			}
			if d := math.Abs(res.Throughput-base.Throughput) / base.Throughput; d > 2*eps {
				t.Fatalf("trial %d margin %v: λ=%v vs margin-0 λ=%v diverge by %.1f%%",
					trial, margin, res.Throughput, base.Throughput, 100*d)
			}
		}
	}
	// Out-of-range margins must be rejected.
	g, err := rrg.Regular(rand.New(rand.NewSource(1)), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	flows := randomDemands(rand.New(rand.NewSource(2)), 12, 8, 2)
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1, PrebuildMargin: bad}); err == nil {
			t.Fatalf("margin %v accepted", bad)
		}
	}
}
