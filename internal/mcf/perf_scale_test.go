package mcf

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/rrg"
	"repro/internal/traffic"
)

func TestPerfScale(t *testing.T) {
	if testing.Short() {
		t.Skip("perf scale test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct {
		n, r, sps int
		eps       float64
	}{
		{40, 10, 10, 0.1}, {40, 10, 10, 0.05}, {200, 10, 5, 0.1},
	} {
		g, err := rrg.Regular(rng, cfg.n, cfg.r)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < g.N(); u++ {
			g.SetServers(u, cfg.sps)
		}
		h := traffic.HostsOf(g)
		tm := traffic.Permutation(rng, h)
		start := time.Now()
		res, err := Solve(g, tm.Flows, Options{Epsilon: cfg.eps})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("n=%d r=%d sps=%d eps=%.2f: T=%.4f phases=%d in %v", cfg.n, cfg.r, cfg.sps, cfg.eps, res.Throughput, res.Phases, time.Since(start))
	}
	// all-to-all at N=40
	g, _ := rrg.Regular(rng, 40, 10)
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 5)
	}
	h := traffic.HostsOf(g)
	tm := traffic.AllToAll(h)
	start := time.Now()
	res, err := Solve(g, tm.Flows, Options{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("all-to-all n=40: T=%.5f phases=%d commodities=%d in %v", res.Throughput, res.Phases, len(tm.Flows), time.Since(start))
}
