package mcf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rrg"
	"repro/internal/traffic"
)

// Property: measured throughput never exceeds the Theorem 1 bound
// evaluated with the *observed* ASPL (which is exact, unlike d*).
func TestThroughputRespectsTheorem1(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		n := 16
		r := int(rRaw%4) + 3
		rng := rand.New(rand.NewSource(seed))
		g, err := rrg.Regular(rng, n, r)
		if err != nil {
			return true
		}
		for u := 0; u < n; u++ {
			g.SetServers(u, 2)
		}
		h := traffic.HostsOf(g)
		tm := traffic.Permutation(rng, h)
		if len(tm.Flows) == 0 {
			return true
		}
		res, err := Solve(g, tm.Flows, Options{Epsilon: 0.1})
		if err != nil {
			return false
		}
		// Bound with the demand-weighted SPL of this very instance; use
		// the total network demand as f.
		f := tm.TotalDemand()
		if f == 0 || res.DemandSPL == 0 {
			return true
		}
		ub := g.TotalCapacity() / (res.DemandSPL * f)
		return res.Throughput <= ub+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: throughput never exceeds the two-cluster cut bound (Eq. 1's
// second term) on biased two-cluster instances.
func TestThroughputRespectsCutBound(t *testing.T) {
	f := func(seed int64, xRaw uint8) bool {
		const nA, nB, d = 8, 8, 4
		deg := make([]int, nA)
		for i := range deg {
			deg[i] = d
		}
		x, err := rrg.FeasibleCross(int(xRaw%20)+2, nA*d, nB*d)
		if err != nil || x == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{DegA: deg, DegB: deg, CrossLinks: x, LinkCap: 1})
		if err != nil {
			return true
		}
		for u := 0; u < g.N(); u++ {
			g.SetServers(u, 2)
		}
		h := traffic.HostsOf(g)
		tm := traffic.Permutation(rng, h)
		res, err := Solve(g, tm.Flows, Options{Epsilon: 0.1})
		if err != nil {
			return true // disconnected permutations etc.
		}
		mask := make([]bool, g.N())
		for i := 0; i < nA; i++ {
			mask[i] = true
		}
		aspl, ok := g.ASPL()
		if !ok {
			return true
		}
		// The Eq. 1 bound holds only in expectation over the permutation's
		// cross-cluster flow count; the per-instance cut bound uses the
		// actual cross demand.
		var crossDemand float64
		for _, fl := range tm.Flows {
			if mask[fl.Src] != mask[fl.Dst] {
				crossDemand += fl.Demand
			}
		}
		if crossDemand == 0 {
			return true
		}
		cutBound := g.CrossCapacity(mask) / crossDemand
		pathBound := g.TotalCapacity() / (aspl * tm.TotalDemand())
		_ = pathBound // informational; the cut bound is the sharp one here
		return res.Throughput <= cutBound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
