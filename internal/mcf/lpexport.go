package mcf

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/traffic"
)

// WriteLP emits the maximum concurrent flow problem as a CPLEX LP-format
// file, exactly the artifact the authors' TopoBench generates and feeds
// to CPLEX (§3). This allows cross-validation of this repository's
// approximate solver against any external LP solver:
//
//	maximize t
//	s.t.  flow conservation per (commodity, node)
//	      Σ_j f_j(a) ≤ cap(a)           per arc a
//	      net outflow of commodity j at its source ≥ t·demand_j
//
// Variables: f_<j>_<a> is commodity j's flow on directed arc a; t is the
// concurrent throughput. All variables are continuous and non-negative.
func WriteLP(w io.Writer, g *graph.Graph, flows []traffic.Flow) error {
	bw := bufio.NewWriter(w)
	if len(flows) == 0 {
		return fmt.Errorf("mcf: no commodities to export")
	}
	for _, f := range flows {
		if f.Src == f.Dst || f.Demand <= 0 {
			return fmt.Errorf("mcf: invalid commodity %+v", f)
		}
	}

	fmt.Fprintln(bw, "\\ Maximum concurrent multi-commodity flow")
	fmt.Fprintf(bw, "\\ %d nodes, %d arcs, %d commodities\n", g.N(), g.NumArcs(), len(flows))
	fmt.Fprintln(bw, "Maximize")
	fmt.Fprintln(bw, " obj: t")
	fmt.Fprintln(bw, "Subject To")

	// Demand satisfaction: source net outflow ≥ t·demand.
	for j, f := range flows {
		fmt.Fprintf(bw, " demand_%d:", j)
		for _, a := range g.OutArcs(f.Src) {
			fmt.Fprintf(bw, " + f_%d_%d", j, a)
		}
		for a := 0; a < g.NumArcs(); a++ {
			if int(g.Arc(a).To) == f.Src {
				fmt.Fprintf(bw, " - f_%d_%d", j, a)
			}
		}
		fmt.Fprintf(bw, " - %g t >= 0\n", f.Demand)
	}

	// Conservation at interior nodes.
	for j, f := range flows {
		for v := 0; v < g.N(); v++ {
			if v == f.Src || v == f.Dst {
				continue
			}
			fmt.Fprintf(bw, " cons_%d_%d:", j, v)
			wrote := false
			for _, a := range g.OutArcs(v) {
				fmt.Fprintf(bw, " + f_%d_%d", j, a)
				wrote = true
			}
			for a := 0; a < g.NumArcs(); a++ {
				if int(g.Arc(a).To) == v {
					fmt.Fprintf(bw, " - f_%d_%d", j, a)
					wrote = true
				}
			}
			if !wrote {
				fmt.Fprint(bw, " 0 f_0_0")
			}
			fmt.Fprintln(bw, " = 0")
		}
	}

	// Arc capacities.
	for a := 0; a < g.NumArcs(); a++ {
		fmt.Fprintf(bw, " cap_%d:", a)
		for j := range flows {
			fmt.Fprintf(bw, " + f_%d_%d", j, a)
		}
		fmt.Fprintf(bw, " <= %g\n", g.Arc(a).Cap)
	}

	fmt.Fprintln(bw, "Bounds")
	fmt.Fprintln(bw, " t >= 0")
	fmt.Fprintln(bw, "End")
	return bw.Flush()
}
