package rrg

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegularBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, r int }{{10, 3}, {20, 4}, {40, 10}, {15, 4}, {8, 7}} {
		g, err := Regular(rng, c.n, c.r)
		if err != nil {
			t.Fatalf("Regular(%d,%d): %v", c.n, c.r, err)
		}
		if r, ok := g.IsRegular(); !ok || r != c.r {
			t.Fatalf("Regular(%d,%d): degree %d regular=%v", c.n, c.r, r, ok)
		}
		if !g.IsConnected() {
			t.Fatalf("Regular(%d,%d) disconnected", c.n, c.r)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		// Simplicity: no duplicate links.
		seen := map[[2]int]bool{}
		for id := 0; id < g.NumLinks(); id++ {
			u, v := g.LinkEnds(id)
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				t.Fatalf("duplicate link %d-%d", u, v)
			}
			seen[[2]int{u, v}] = true
		}
	}
}

func TestRegularInfeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, c := range []struct{ n, r int }{{5, 3}, {4, 4}, {0, 1}, {3, -1}} {
		if _, err := Regular(rng, c.n, c.r); !errors.Is(err, ErrInfeasible) {
			t.Fatalf("Regular(%d,%d) should be infeasible, got %v", c.n, c.r, err)
		}
	}
}

func TestRegularComplete(t *testing.T) {
	// r = n-1 forces the complete graph.
	rng := rand.New(rand.NewSource(5))
	g, err := Regular(rng, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 15 {
		t.Fatalf("K6 links %d, want 15", g.NumLinks())
	}
}

func TestRegularDeterminism(t *testing.T) {
	a, err := Regular(rand.New(rand.NewSource(9)), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Regular(rand.New(rand.NewSource(9)), 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("same seed, different graphs")
	}
	for id := 0; id < a.NumLinks(); id++ {
		au, av := a.LinkEnds(id)
		bu, bv := b.LinkEnds(id)
		if au != bu || av != bv {
			t.Fatalf("link %d differs: (%d,%d) vs (%d,%d)", id, au, av, bu, bv)
		}
	}
}

func TestFromDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	deg := []int{5, 4, 3, 3, 2, 2, 2, 2, 2, 1}
	g, err := FromDegrees(rng, deg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range deg {
		if g.Degree(i) != d {
			t.Fatalf("node %d degree %d, want %d", i, g.Degree(i), d)
		}
	}
	if g.LinkCapacity(0) != 2.0 {
		t.Fatal("link capacity not honored")
	}
}

func TestFromDegreesOddSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := FromDegrees(rng, []int{3, 2, 2}, 1); !errors.Is(err, ErrInfeasible) {
		t.Fatal("odd degree sum should fail")
	}
}

func TestTwoClusterExactCross(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, cross := range []int{4, 10, 20, 40} {
		degA := repeat(8, 10) // 10 nodes, degree 8
		degB := repeat(6, 12) // 12 nodes, degree 6
		x, err := FeasibleCross(cross, sum(degA), sum(degB))
		if err != nil {
			t.Fatal(err)
		}
		g, err := TwoCluster(rng, TwoClusterSpec{DegA: degA, DegB: degB, CrossLinks: x, LinkCap: 1})
		if err != nil {
			t.Fatalf("cross=%d: %v", x, err)
		}
		mask := make([]bool, g.N())
		for i := 0; i < len(degA); i++ {
			mask[i] = true
		}
		// CrossCapacity counts both directions.
		if got := g.CrossCapacity(mask); got != float64(2*x) {
			t.Fatalf("cross=%d: capacity %v, want %v", x, got, 2*x)
		}
		// Degrees preserved.
		for i := range degA {
			if g.Degree(i) != degA[i] {
				t.Fatalf("cluster A node %d degree %d", i, g.Degree(i))
			}
		}
		for i := range degB {
			if g.Degree(len(degA)+i) != degB[i] {
				t.Fatalf("cluster B node %d degree %d", i, g.Degree(len(degA)+i))
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if x > 0 && !g.IsConnected() {
			t.Fatalf("cross=%d disconnected", x)
		}
	}
}

func TestTwoClusterZeroCross(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := TwoCluster(rng, TwoClusterSpec{
		DegA: repeat(4, 8), DegB: repeat(4, 8), CrossLinks: 0, LinkCap: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsConnected() {
		t.Fatal("zero cross links cannot be connected")
	}
	_, count := g.Components()
	if count != 2 {
		t.Fatalf("components %d, want 2", count)
	}
}

func TestTwoClusterParityRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// sum(DegA) - cross odd -> infeasible.
	_, err := TwoCluster(rng, TwoClusterSpec{DegA: []int{3, 2}, DegB: []int{4, 4}, CrossLinks: 2})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("expected parity failure, got %v", err)
	}
}

func TestFeasibleCross(t *testing.T) {
	cases := []struct {
		want, sa, sb int
		expect       int
	}{
		{10, 40, 40, 10},
		{11, 40, 40, 10}, // parity snap
		{100, 40, 60, 40},
		{-5, 40, 40, 0},
		{0, 41, 41, 1}, // leftover parity forces one cross link
	}
	for _, c := range cases {
		got, err := FeasibleCross(c.want, c.sa, c.sb)
		if err != nil {
			t.Fatalf("FeasibleCross(%d,%d,%d): %v", c.want, c.sa, c.sb, err)
		}
		if got != c.expect {
			t.Fatalf("FeasibleCross(%d,%d,%d) = %d, want %d", c.want, c.sa, c.sb, got, c.expect)
		}
		if (c.sa-got)%2 != 0 || (c.sb-got)%2 != 0 {
			t.Fatalf("result %d leaves odd leftovers", got)
		}
	}
	if _, err := FeasibleCross(5, 10, 11); !errors.Is(err, ErrInfeasible) {
		t.Fatal("mismatched parity should error")
	}
}

func TestExpectedCrossLinks(t *testing.T) {
	if got := ExpectedCrossLinks(0, 10); got != 0 {
		t.Fatalf("empty side expected 0, got %v", got)
	}
	got := ExpectedCrossLinks(100, 100)
	if got < 49 || got > 51 {
		t.Fatalf("symmetric case ~50, got %v", got)
	}
}

func TestPowerLawDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	deg, err := PowerLawDegrees(rng, 50, 8, 2.2, 3, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(deg) != 50 {
		t.Fatalf("len %d", len(deg))
	}
	total := 0
	for _, d := range deg {
		if d < 2 || d >= 50 {
			t.Fatalf("degree %d out of range", d)
		}
		total += d
	}
	if total%2 != 0 {
		t.Fatal("odd degree sum")
	}
	mean := float64(total) / 50
	if mean < 6 || mean > 10 {
		t.Fatalf("mean %v too far from 8", mean)
	}
	// Must be realizable.
	if _, err := FromDegrees(rng, deg, 1); err != nil {
		t.Fatalf("power-law sequence unrealizable: %v", err)
	}
}

func TestPowerLawDegreesRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range []struct {
		n   int
		avg float64
		a   float64
		k0  int
		k1  int
	}{
		{0, 8, 2.2, 3, 32}, {10, 1, 2.2, 3, 32}, {10, 8, 0.5, 3, 32}, {10, 8, 2.2, 8, 3},
	} {
		if _, err := PowerLawDegrees(rng, c.n, c.avg, c.a, c.k0, c.k1); err == nil {
			t.Fatalf("accepted bad params %+v", c)
		}
	}
}

// Property: Regular produces a connected simple r-regular graph for all
// feasible (n, r) in a small randomized family.
func TestQuickRegular(t *testing.T) {
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw%30) + 4
		r := int(rRaw%6) + 3
		if r >= n {
			r = n - 1
		}
		if (n*r)%2 != 0 {
			r--
		}
		if r < 3 {
			return true
		}
		g, err := Regular(rand.New(rand.NewSource(seed)), n, r)
		if err != nil {
			return false
		}
		rr, ok := g.IsRegular()
		return ok && rr == r && g.IsConnected() && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: TwoCluster honors the exact cross-link budget across random
// feasible specs.
func TestQuickTwoCluster(t *testing.T) {
	f := func(seed int64, da, db, xRaw uint8) bool {
		degA := repeat(int(da%5)+3, 8)
		degB := repeat(int(db%5)+3, 10)
		x, err := FeasibleCross(int(xRaw)%sum(degA), sum(degA), sum(degB))
		if err != nil {
			return true // parity mismatch between clusters: skip
		}
		g, err := TwoCluster(rand.New(rand.NewSource(seed)), TwoClusterSpec{
			DegA: degA, DegB: degB, CrossLinks: x, LinkCap: 1,
		})
		if err != nil {
			return false
		}
		mask := make([]bool, g.N())
		for i := range degA {
			mask[i] = true
		}
		return g.CrossCapacity(mask) == float64(2*x) && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
