package rrg

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
)

func TestExpandWithSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := Regular(rng, 20, 6)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := ExpandWithSwitch(rng, g, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != 21 {
		t.Fatalf("nodes %d", ng.N())
	}
	// All degrees preserved; new node has exactly 6.
	if r, ok := ng.IsRegular(); !ok || r != 6 {
		t.Fatalf("expansion broke regularity: degree %d regular=%v", r, ok)
	}
	if !ng.IsConnected() {
		t.Fatal("expansion disconnected the graph")
	}
	if err := ng.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if g.N() != 20 {
		t.Fatal("original mutated")
	}
}

func TestExpandBy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, err := Regular(rng, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := ExpandBy(rng, g, 5, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ng.N() != 21 {
		t.Fatalf("nodes %d, want 21", ng.N())
	}
	if r, ok := ng.IsRegular(); !ok || r != 4 {
		t.Fatalf("degree %d after repeated expansion", r)
	}
	if !ng.IsConnected() {
		t.Fatal("disconnected after repeated expansion")
	}
}

// The Jellyfish claim behind expansion: the grown graph keeps near-optimal
// path lengths (ASPL stays close to the lower bound).
func TestExpandKeepsASPLNearBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := Regular(rng, 30, 6)
	if err != nil {
		t.Fatal(err)
	}
	ng, err := ExpandBy(rng, g, 10, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	aspl, ok := ng.ASPL()
	if !ok {
		t.Fatal("disconnected")
	}
	lb := bounds.ASPLLowerBound(ng.N(), 6)
	if aspl > 1.25*lb {
		t.Fatalf("expanded graph ASPL %v vs bound %v: structure degraded", aspl, lb)
	}
}

func TestExpandErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := Regular(rng, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpandWithSwitch(rng, g, 3, 1); err == nil {
		t.Fatal("odd degree accepted")
	}
	if _, err := ExpandWithSwitch(rng, g, 0, 1); err == nil {
		t.Fatal("zero degree accepted")
	}
	tiny, err := Regular(rng, 4, 2)
	if err == nil {
		// degree 2 may legitimately fail to connect; only test when built
		if _, err := ExpandWithSwitch(rng, tiny, 40, 1); err == nil {
			t.Fatal("oversized expansion accepted")
		}
	}
}
