// Package rrg builds the random graphs at the core of the paper: uniform
// random regular graphs (RRGs), random graphs with arbitrary degree
// sequences, and the two-cluster constructions with a controlled
// cross-cluster connectivity budget used throughout §5 and §6.
//
// All constructions use the configuration (stub-pairing) model followed by
// a local swap repair that removes self-loops and duplicate links while
// preserving the degree sequence. Disconnected outcomes are re-sampled a
// bounded number of times.
package rrg

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErrInfeasible indicates that no simple graph with the requested structure
// exists (or none was found within the retry budget).
var ErrInfeasible = errors.New("rrg: infeasible construction")

const (
	maxRestarts    = 60 // full re-shuffles before giving up on a matching
	maxResamples   = 40 // connectivity re-samples before giving up
	repairSweepCap = 80 // swap-repair sweeps per shuffle
)

// Regular samples a random r-regular graph on n nodes with unit-capacity
// links (the paper's RRG(N, k, r) switch-to-switch interconnect). The graph
// is guaranteed simple and connected. Fails with ErrInfeasible if n·r is
// odd, r ≥ n, or no connected simple graph was found within the retry
// budget (possible only for degenerate parameters such as r ≤ 2).
func Regular(rng *rand.Rand, n, r int) (*graph.Graph, error) {
	if n <= 0 || r < 0 || r >= n || (n*r)%2 != 0 {
		return nil, fmt.Errorf("%w: no simple %d-regular graph on %d nodes", ErrInfeasible, r, n)
	}
	deg := make([]int, n)
	for i := range deg {
		deg[i] = r
	}
	return FromDegrees(rng, deg, 1.0)
}

// FromDegrees samples a simple connected random graph with the given degree
// sequence; every link gets capacity linkCap. Nodes with degree 0 are
// permitted only when n == 1.
func FromDegrees(rng *rand.Rand, degrees []int, linkCap float64) (*graph.Graph, error) {
	n := len(degrees)
	total := 0
	for i, d := range degrees {
		if d < 0 || d >= n && n > 1 {
			return nil, fmt.Errorf("%w: degree %d at node %d with n=%d", ErrInfeasible, d, i, n)
		}
		total += d
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("%w: odd degree sum %d", ErrInfeasible, total)
	}
	for attempt := 0; attempt < maxResamples; attempt++ {
		pairs, err := matchWithin(rng, stubsOf(degrees), nil)
		if err != nil {
			return nil, err
		}
		g := graph.New(n)
		for _, p := range pairs {
			g.AddLink(int(p[0]), int(p[1]), linkCap)
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: could not obtain a connected graph", ErrInfeasible)
}

// TwoClusterSpec describes a two-cluster random construction: DegA and DegB
// give each node's switch-to-switch port budget within cluster A and B, and
// CrossLinks is the exact number of links that must cross between the
// clusters. Remaining ports pair up uniformly at random within each
// cluster. Nodes 0..len(DegA)-1 form cluster A; the rest form cluster B.
type TwoClusterSpec struct {
	DegA, DegB []int
	CrossLinks int
	LinkCap    float64
	// AllowParallel permits parallel (trunked) links when a cluster is so
	// dense that no simple graph realizes its within-cluster degrees —
	// e.g. 10 switches that each need 12 within-cluster links. Physical
	// deployments trunk multiple cables between the same switch pair in
	// this regime. Self-loops are never produced.
	AllowParallel bool
}

// TwoCluster builds the biased random interconnect of §5.1: an exact number
// of cross-cluster links, the remainder paired within clusters. Parity of
// the per-cluster leftovers must work out: sum(DegA)-CrossLinks and
// sum(DegB)-CrossLinks must both be even and non-negative. Use
// FeasibleCross to snap a desired cross-link count to a feasible one.
func TwoCluster(rng *rand.Rand, spec TwoClusterSpec) (*graph.Graph, error) {
	if spec.LinkCap <= 0 {
		spec.LinkCap = 1
	}
	na, nb := len(spec.DegA), len(spec.DegB)
	sa, sb := sum(spec.DegA), sum(spec.DegB)
	x := spec.CrossLinks
	if x < 0 || x > sa || x > sb || (sa-x)%2 != 0 || (sb-x)%2 != 0 {
		return nil, fmt.Errorf("%w: cross=%d with stub totals %d/%d", ErrInfeasible, x, sa, sb)
	}
	n := na + nb

	for attempt := 0; attempt < maxResamples; attempt++ {
		// Allocate each side's x cross stubs across its nodes roughly in
		// proportion to degree, then repair so no node's within-cluster
		// degree exceeds what a simple graph on its cluster can absorb.
		capA, capB := na, nb
		if spec.AllowParallel {
			capA, capB = 1<<30, 1<<30
		}
		crossA, err := allocateCross(rng, spec.DegA, x, capA)
		if err != nil {
			return nil, err
		}
		crossB, err := allocateCross(rng, spec.DegB, x, capB)
		if err != nil {
			return nil, err
		}
		var stubsA, stubsB, withinAStubs, withinBStubs []int32
		for i, c := range crossA {
			for j := 0; j < c; j++ {
				stubsA = append(stubsA, int32(i))
			}
			for j := 0; j < spec.DegA[i]-c; j++ {
				withinAStubs = append(withinAStubs, int32(i))
			}
		}
		for i, c := range crossB {
			for j := 0; j < c; j++ {
				stubsB = append(stubsB, int32(na+i))
			}
			for j := 0; j < spec.DegB[i]-c; j++ {
				withinBStubs = append(withinBStubs, int32(na+i))
			}
		}

		crossPairs, err := matchAcross(rng, stubsA, stubsB)
		if err != nil {
			continue
		}
		taken := linkSet{}
		for _, p := range crossPairs {
			taken.add(p[0], p[1])
		}
		withinA, err := matchWithin(rng, withinAStubs, taken)
		if err != nil && spec.AllowParallel {
			withinA, err = matchWithinParallel(rng, withinAStubs)
		}
		if err != nil {
			continue
		}
		for _, p := range withinA {
			taken.add(p[0], p[1])
		}
		withinB, err := matchWithin(rng, withinBStubs, taken)
		if err != nil && spec.AllowParallel {
			withinB, err = matchWithinParallel(rng, withinBStubs)
		}
		if err != nil {
			continue
		}

		g := graph.New(n)
		for _, p := range crossPairs {
			g.AddLink(int(p[0]), int(p[1]), spec.LinkCap)
		}
		for _, p := range withinA {
			g.AddLink(int(p[0]), int(p[1]), spec.LinkCap)
		}
		for _, p := range withinB {
			g.AddLink(int(p[0]), int(p[1]), spec.LinkCap)
		}
		for i := na; i < n; i++ {
			g.SetClass(i, 1)
		}
		if x == 0 {
			// With no cross links the graph cannot be connected (unless one
			// side is empty); accept the two-component result so callers can
			// still evaluate the degenerate leftmost sweep points.
			return g, nil
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("%w: two-cluster construction failed", ErrInfeasible)
}

// FeasibleCross snaps want to the nearest feasible cross-link count for
// stub totals sa and sb: 0 ≤ x ≤ min(sa, sb), sa-x and sb-x both even.
// If sa and sb have different parities no x satisfies both exactly when
// their difference is odd — in that case FeasibleCross returns an error
// (the caller must adjust a degree by one, as the paper's generator does).
func FeasibleCross(want, sa, sb int) (int, error) {
	if (sa-sb)%2 != 0 {
		return 0, fmt.Errorf("%w: stub totals %d and %d have different parity", ErrInfeasible, sa, sb)
	}
	x := want
	if x < 0 {
		x = 0
	}
	if m := min(sa, sb); x > m {
		x = m
	}
	if (sa-x)%2 != 0 { // same adjustment fixes both sides (equal parity)
		if x > 0 {
			x--
		} else {
			x++
		}
	}
	if x < 0 || x > sa || x > sb {
		return 0, fmt.Errorf("%w: no feasible cross count near %d", ErrInfeasible, want)
	}
	return x, nil
}

// ExpectedCrossLinks returns the number of cross-cluster links a vanilla
// (unbiased) random pairing would produce in expectation: each of the
// sa stubs in A pairs with a B stub with probability sb/(sa+sb-1).
func ExpectedCrossLinks(sa, sb int) float64 {
	t := sa + sb
	if t < 2 {
		return 0
	}
	return float64(sa) * float64(sb) / float64(t-1)
}

// allocateCross splits x cross-cluster stubs across the nodes of one
// cluster roughly in proportion to their degrees, with three constraints:
// a node's cross count cannot exceed its degree; the leftover within-
// cluster degree deg_i - cross_i cannot exceed clusterSize-1 (a simple
// graph on the cluster cannot absorb more); and the total is exactly x.
// Remainders are assigned at random for an unbiased construction.
func allocateCross(rng *rand.Rand, deg []int, x, clusterSize int) ([]int, error) {
	n := len(deg)
	total := sum(deg)
	cross := make([]int, n)
	if total == 0 {
		if x != 0 {
			return nil, fmt.Errorf("%w: cross stubs on empty cluster", ErrInfeasible)
		}
		return cross, nil
	}
	assigned := 0
	order := rng.Perm(n)
	for _, i := range order {
		c := x * deg[i] / total
		if c > deg[i] {
			c = deg[i]
		}
		cross[i] = c
		assigned += c
	}
	// Distribute the remainder randomly among nodes with headroom.
	for guard := 0; assigned < x && guard < 64*n; guard++ {
		i := rng.Intn(n)
		if cross[i] < deg[i] {
			cross[i]++
			assigned++
		}
	}
	if assigned < x {
		// Deterministic fallback sweep.
		for i := 0; i < n && assigned < x; i++ {
			for cross[i] < deg[i] && assigned < x {
				cross[i]++
				assigned++
			}
		}
	}
	if assigned != x {
		return nil, fmt.Errorf("%w: cannot place %d cross stubs on cluster with %d total", ErrInfeasible, x, total)
	}
	// Repair within-degree overflow: nodes needing more within-cluster
	// links than the cluster has distinct partners take extra cross links
	// from nodes with slack.
	maxWithin := clusterSize - 1
	for i := 0; i < n; i++ {
		for deg[i]-cross[i] > maxWithin {
			if cross[i] >= deg[i] {
				break
			}
			// Move one cross stub from the node with the most within-slack.
			donor := -1
			for j := 0; j < n; j++ {
				if j == i || cross[j] == 0 {
					continue
				}
				if deg[j]-cross[j]+1 <= maxWithin && (donor < 0 || deg[j]-cross[j] < deg[donor]-cross[donor]) {
					donor = j
				}
			}
			if donor < 0 {
				return nil, fmt.Errorf("%w: within-cluster degree overflow unrepairable", ErrInfeasible)
			}
			cross[donor]--
			cross[i]++
		}
		if deg[i]-cross[i] > maxWithin {
			return nil, fmt.Errorf("%w: node degree %d exceeds cluster capacity", ErrInfeasible, deg[i])
		}
	}
	return cross, nil
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

func stubsOf(degrees []int) []int32 {
	var stubs []int32
	for i, d := range degrees {
		for j := 0; j < d; j++ {
			stubs = append(stubs, int32(i))
		}
	}
	return stubs
}

// linkSet tracks which node pairs already carry a link.
type linkSet map[uint64]bool

func key(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

func (s linkSet) has(u, v int32) bool { return s != nil && s[key(u, v)] }
func (s linkSet) add(u, v int32)      { s[key(u, v)] = true }

// matchWithin pairs stubs among themselves into simple links, avoiding
// self-loops, duplicates among the new pairs, and any link in forbid.
func matchWithin(rng *rand.Rand, stubs []int32, forbid linkSet) ([][2]int32, error) {
	if len(stubs)%2 != 0 {
		return nil, fmt.Errorf("%w: odd stub count %d", ErrInfeasible, len(stubs))
	}
	if len(stubs) == 0 {
		return nil, nil
	}
	work := append([]int32(nil), stubs...)
	for restart := 0; restart < maxRestarts; restart++ {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		pairs := make([][2]int32, len(work)/2)
		for i := range pairs {
			pairs[i] = [2]int32{work[2*i], work[2*i+1]}
		}
		if repairPairs(rng, pairs, forbid) {
			return pairs, nil
		}
	}
	return nil, fmt.Errorf("%w: stub matching failed", ErrInfeasible)
}

// matchWithinParallel pairs stubs allowing parallel links (multigraph);
// only self-loops are repaired away. Used as the dense-cluster fallback.
func matchWithinParallel(rng *rand.Rand, stubs []int32) ([][2]int32, error) {
	if len(stubs)%2 != 0 {
		return nil, fmt.Errorf("%w: odd stub count %d", ErrInfeasible, len(stubs))
	}
	if len(stubs) == 0 {
		return nil, nil
	}
	work := append([]int32(nil), stubs...)
	for restart := 0; restart < maxRestarts; restart++ {
		rng.Shuffle(len(work), func(i, j int) { work[i], work[j] = work[j], work[i] })
		pairs := make([][2]int32, len(work)/2)
		ok := true
		for i := range pairs {
			pairs[i] = [2]int32{work[2*i], work[2*i+1]}
		}
		// Repair self-loops by partner swaps.
		for sweep := 0; sweep < repairSweepCap; sweep++ {
			fixed := true
			for i := range pairs {
				if pairs[i][0] != pairs[i][1] {
					continue
				}
				fixed = false
				done := false
				for t := 0; t < 4*len(pairs); t++ {
					j := rng.Intn(len(pairs))
					if j == i {
						continue
					}
					if pairs[j][1] != pairs[i][0] && pairs[j][0] != pairs[i][1] {
						pairs[i][1], pairs[j][1] = pairs[j][1], pairs[i][1]
						done = true
						break
					}
				}
				if !done {
					break
				}
			}
			if fixed {
				return pairs, nil
			}
		}
		ok = true
		for i := range pairs {
			if pairs[i][0] == pairs[i][1] {
				ok = false
				break
			}
		}
		if ok {
			return pairs, nil
		}
	}
	return nil, fmt.Errorf("%w: parallel matching failed (all stubs on one node?)", ErrInfeasible)
}

// matchAcross pairs stubsA[i] with a shuffled stubsB into simple bipartite
// links (self-loops impossible; duplicates repaired by swaps).
func matchAcross(rng *rand.Rand, stubsA, stubsB []int32) ([][2]int32, error) {
	if len(stubsA) != len(stubsB) {
		return nil, fmt.Errorf("%w: unbalanced cross stubs %d/%d", ErrInfeasible, len(stubsA), len(stubsB))
	}
	if len(stubsA) == 0 {
		return nil, nil
	}
	b := append([]int32(nil), stubsB...)
	for restart := 0; restart < maxRestarts; restart++ {
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		pairs := make([][2]int32, len(stubsA))
		for i := range pairs {
			pairs[i] = [2]int32{stubsA[i], b[i]}
		}
		if repairPairs(rng, pairs, nil) {
			return pairs, nil
		}
	}
	return nil, fmt.Errorf("%w: cross matching failed", ErrInfeasible)
}

// repairPairs removes self-loops and duplicate links from pairs by random
// partner swaps, preserving which stub belongs to which node. Swapping the
// second elements of two pairs keeps bipartite matchings bipartite.
// Returns false if a conflict-free configuration was not reached.
func repairPairs(rng *rand.Rand, pairs [][2]int32, forbid linkSet) bool {
	seen := make(map[uint64]int, len(pairs)) // link key -> count among pairs
	bad := func(p [2]int32) bool {
		return p[0] == p[1] || forbid.has(p[0], p[1])
	}
	for _, p := range pairs {
		seen[key(p[0], p[1])]++
	}
	conflicted := func(i int) bool {
		p := pairs[i]
		return bad(p) || seen[key(p[0], p[1])] > 1
	}
	for sweep := 0; sweep < repairSweepCap; sweep++ {
		fixedAll := true
		for i := range pairs {
			if !conflicted(i) {
				continue
			}
			fixedAll = false
			// Try a bounded number of random swap partners.
			ok := false
			for t := 0; t < 4*len(pairs); t++ {
				j := rng.Intn(len(pairs))
				if j == i {
					continue
				}
				pi, pj := pairs[i], pairs[j]
				ni := [2]int32{pi[0], pj[1]}
				nj := [2]int32{pj[0], pi[1]}
				if bad(ni) || bad(nj) {
					continue
				}
				ki, kj := key(pi[0], pi[1]), key(pj[0], pj[1])
				nki, nkj := key(ni[0], ni[1]), key(nj[0], nj[1])
				// Count occupancy after removing the two old links; reject if
				// either new link already exists or the two new pairs would
				// form the same link (a duplicate between themselves).
				seen[ki]--
				seen[kj]--
				if seen[nki] > 0 || seen[nkj] > 0 || nki == nkj {
					seen[ki]++
					seen[kj]++
					continue
				}
				seen[nki]++
				seen[nkj]++
				pairs[i], pairs[j] = ni, nj
				ok = true
				break
			}
			if !ok {
				return false
			}
		}
		if fixedAll {
			return true
		}
	}
	// Final verification sweep.
	for i := range pairs {
		if conflicted(i) {
			return false
		}
	}
	return true
}
