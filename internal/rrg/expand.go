package rrg

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ExpandWithSwitch implements the incremental expansion the paper credits
// to Jellyfish (§2): "adding equipment simply involves a few random link
// swaps". A new switch with netDegree network ports (plus servers, set by
// the caller afterwards) joins an existing random graph by removing
// netDegree/2 random existing links (u,v) and rewiring them as (u,new)
// and (v,new). Degrees of existing switches are unchanged; the new switch
// ends with exactly netDegree links (netDegree must be even).
//
// The returned graph is a new object; g is not modified. linkCap is the
// capacity of the new links (existing links keep theirs).
func ExpandWithSwitch(rng *rand.Rand, g *graph.Graph, netDegree int, linkCap float64) (*graph.Graph, error) {
	if netDegree <= 0 || netDegree%2 != 0 {
		return nil, fmt.Errorf("%w: expansion degree %d must be positive and even", ErrInfeasible, netDegree)
	}
	if g.NumLinks() < netDegree/2 {
		return nil, fmt.Errorf("%w: not enough links to swap", ErrInfeasible)
	}
	for attempt := 0; attempt < maxRestarts; attempt++ {
		ng, ok := tryExpand(rng, g, netDegree, linkCap)
		if ok && ng.IsConnected() {
			return ng, nil
		}
	}
	return nil, fmt.Errorf("%w: expansion failed", ErrInfeasible)
}

func tryExpand(rng *rand.Rand, g *graph.Graph, netDegree int, linkCap float64) (*graph.Graph, bool) {
	n := g.N()
	newNode := n
	// Choose netDegree/2 distinct links to break, avoiding links whose
	// endpoints already link to everything (cannot happen for the new
	// node) and duplicate (endpoint, newNode) pairs.
	chosen := make(map[int]bool)
	endpointUsed := make(map[int]bool)
	var breaks []int
	for guard := 0; len(breaks) < netDegree/2 && guard < 50*g.NumLinks(); guard++ {
		id := rng.Intn(g.NumLinks())
		if chosen[id] {
			continue
		}
		u, v := g.LinkEnds(id)
		// Each endpoint may gain at most one link to the new switch here;
		// a duplicate would create a parallel link.
		if endpointUsed[u] || endpointUsed[v] {
			continue
		}
		chosen[id] = true
		endpointUsed[u] = true
		endpointUsed[v] = true
		breaks = append(breaks, id)
	}
	if len(breaks) < netDegree/2 {
		return nil, false
	}
	ng := graph.New(n + 1)
	for u := 0; u < n; u++ {
		ng.SetServers(u, g.Servers(u))
		ng.SetClass(u, g.Class(u))
	}
	for id := 0; id < g.NumLinks(); id++ {
		if chosen[id] {
			continue
		}
		u, v := g.LinkEnds(id)
		ng.AddLink(u, v, g.LinkCapacity(id))
	}
	for _, id := range breaks {
		u, v := g.LinkEnds(id)
		ng.AddLink(u, newNode, linkCap)
		ng.AddLink(v, newNode, linkCap)
	}
	return ng, true
}

// ExpandBy grows g by count switches, each with netDegree network links,
// applying ExpandWithSwitch repeatedly.
func ExpandBy(rng *rand.Rand, g *graph.Graph, count, netDegree int, linkCap float64) (*graph.Graph, error) {
	cur := g
	for i := 0; i < count; i++ {
		ng, err := ExpandWithSwitch(rng, cur, netDegree, linkCap)
		if err != nil {
			return nil, fmt.Errorf("rrg: expansion step %d: %w", i, err)
		}
		cur = ng
	}
	return cur, nil
}
