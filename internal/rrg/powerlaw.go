package rrg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// PowerLawDegrees samples n port counts following a truncated power-law
// distribution P(k) ∝ k^(-alpha) on k ∈ [kmin, kmax], then rescales the
// sample so its mean is approximately avg (paper Fig. 5 uses average port
// counts 6, 8 and 10). The returned sequence has an even sum (adjusted by
// at most one port on one switch) and every entry ≥ 2 so a connected
// simple graph remains feasible.
func PowerLawDegrees(rng *rand.Rand, n int, avg float64, alpha float64, kmin, kmax int) ([]int, error) {
	if n <= 0 || avg < 2 || kmin < 1 || kmax < kmin || alpha <= 1 {
		return nil, fmt.Errorf("%w: PowerLawDegrees(n=%d, avg=%v, alpha=%v, k=[%d,%d])",
			ErrInfeasible, n, avg, alpha, kmin, kmax)
	}
	// Inverse-CDF sampling on the continuous truncated Pareto, then round.
	raw := make([]float64, n)
	a := 1 - alpha
	lo := math.Pow(float64(kmin), a)
	hi := math.Pow(float64(kmax), a)
	var mean float64
	for i := range raw {
		u := rng.Float64()
		raw[i] = math.Pow(lo+u*(hi-lo), 1/a)
		mean += raw[i]
	}
	mean /= float64(n)
	scale := avg / mean
	deg := make([]int, n)
	total := 0
	for i, r := range raw {
		d := int(math.Round(r * scale))
		if d < 2 {
			d = 2
		}
		if d >= n {
			d = n - 1
		}
		deg[i] = d
		total += d
	}
	if total%2 != 0 {
		// Bump the smallest degree that can move without leaving bounds.
		idx := 0
		for i := 1; i < n; i++ {
			if deg[i] < deg[idx] {
				idx = i
			}
		}
		if deg[idx] < n-1 {
			deg[idx]++
		} else {
			deg[idx]--
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(deg)))
	return deg, nil
}
