package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
)

func TestDesignHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := HomogeneousSpec{Switches: 20, Ports: 10, Servers: 80}
	g, err := DesignHomogeneous(rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalServers() != 80 {
		t.Fatalf("servers %d", g.TotalServers())
	}
	if r, ok := g.IsRegular(); !ok || r != spec.NetworkDegree() {
		t.Fatalf("degree %d, want %d", r, spec.NetworkDegree())
	}
}

func TestDesignHomogeneousErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := DesignHomogeneous(rng, HomogeneousSpec{Switches: 20, Ports: 10, Servers: 81}); err == nil {
		t.Fatal("uneven servers accepted")
	}
	if _, err := DesignHomogeneous(rng, HomogeneousSpec{Switches: 20, Ports: 4, Servers: 80}); err == nil {
		t.Fatal("zero network ports accepted")
	}
}

func TestUpperBoundMatchesBoundsPackage(t *testing.T) {
	spec := HomogeneousSpec{Switches: 40, Ports: 15, Servers: 200}
	ub := UpperBound(spec, 200)
	if ub <= 0 || math.IsInf(ub, 0) {
		t.Fatalf("bound %v", ub)
	}
}

func testBuilder(n, r, servers int) Builder {
	return func(rng *rand.Rand) (*graph.Graph, error) {
		g, err := rrg.Regular(rng, n, r)
		if err != nil {
			return nil, err
		}
		for u := 0; u < n; u++ {
			g.SetServers(u, servers)
		}
		return g, nil
	}
}

func TestEvaluationThroughput(t *testing.T) {
	ev := Evaluation{Workload: Permutation, Runs: 4, Seed: 3, Epsilon: 0.1}
	st, err := ev.Throughput(testBuilder(16, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 4 {
		t.Fatalf("runs %d", st.Runs)
	}
	if st.Min > st.Mean || st.Mean > st.Max {
		t.Fatalf("stat ordering broken: %+v", st)
	}
	if st.Mean <= 0 {
		t.Fatalf("mean %v", st.Mean)
	}
	if st.Std < 0 {
		t.Fatalf("std %v", st.Std)
	}
}

func TestEvaluationDeterministicAcrossParallelism(t *testing.T) {
	base := Evaluation{Workload: Permutation, Runs: 4, Seed: 5, Epsilon: 0.12}
	seq := base
	seq.Parallel = 1
	par := base
	par.Parallel = 4
	a, err := seq.Throughput(testBuilder(12, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := par.Throughput(testBuilder(12, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Min != b.Min {
		t.Fatalf("parallelism changed results: %+v vs %+v", a, b)
	}
}

func TestEvaluationWorkloads(t *testing.T) {
	for _, w := range []Workload{Permutation, AllToAll, Chunky} {
		ev := Evaluation{Workload: w, ChunkyFraction: 0.5, Runs: 2, Seed: 7, Epsilon: 0.15}
		st, err := ev.Throughput(testBuilder(10, 4, 2))
		if err != nil {
			t.Fatalf("%v: %v", w, err)
		}
		if st.Mean <= 0 {
			t.Fatalf("%v: mean %v", w, st.Mean)
		}
	}
}

func TestEvaluationUnknownWorkload(t *testing.T) {
	ev := Evaluation{Workload: Workload(99), Runs: 1}
	if _, err := ev.Throughput(testBuilder(10, 4, 2)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestEvaluationBuilderError(t *testing.T) {
	ev := Evaluation{Runs: 2}
	boom := errors.New("boom")
	_, err := ev.Throughput(func(*rand.Rand) (*graph.Graph, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("builder error lost: %v", err)
	}
}

func TestEvaluationDisconnectedIsZero(t *testing.T) {
	ev := Evaluation{Workload: Permutation, Runs: 2, Seed: 1, Epsilon: 0.15}
	st, err := ev.Throughput(func(*rand.Rand) (*graph.Graph, error) {
		g := graph.New(4)
		g.AddLink(0, 1, 1)
		g.AddLink(2, 3, 1)
		g.SetServers(0, 2)
		g.SetServers(2, 2)
		return g, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mean != 0 {
		t.Fatalf("disconnected throughput %v, want 0", st.Mean)
	}
}

func TestDetailed(t *testing.T) {
	ev := Evaluation{Workload: Permutation, Runs: 3, Seed: 9, Epsilon: 0.12}
	results, graphs, err := ev.Detailed(testBuilder(12, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || len(graphs) != 3 {
		t.Fatalf("detailed lengths %d/%d", len(results), len(graphs))
	}
	for i, res := range results {
		if res == nil || graphs[i] == nil {
			t.Fatal("nil detail entry")
		}
		if res.Throughput <= 0 {
			t.Fatalf("run %d throughput %v", i, res.Throughput)
		}
	}
}

func TestMaxAtFullThroughput(t *testing.T) {
	// Synthetic criterion: a "topology" whose throughput is 10/size.
	ev := Evaluation{Workload: Permutation, Runs: 1, Seed: 1, Epsilon: 0.1}
	calls := 0
	build := func(size int) Builder {
		return func(*rand.Rand) (*graph.Graph, error) {
			calls++
			// Star of `size` leaves with 1 server each; the center link
			// capacity makes throughput fall with size.
			g := graph.New(size + 1)
			for i := 1; i <= size; i++ {
				g.AddLink(0, i, 1)
				g.SetServers(i, 1)
			}
			return g, nil
		}
	}
	// Star leaves run a permutation among themselves: every flow crosses
	// two leaf links; throughput stays ~1 regardless of size, so with
	// threshold 0.5 the search should hit hi.
	got, err := ev.MaxAtFullThroughput(2, 9, func(int) float64 { return 0.5 }, build)
	if err != nil {
		t.Fatal(err)
	}
	if got != 9 {
		t.Fatalf("search result %d, want 9", got)
	}
	// An impossible threshold fails at lo.
	got, err = ev.MaxAtFullThroughput(2, 9, func(int) float64 { return 5 }, build)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("impossible threshold returned %d, want lo-1 = 1", got)
	}
	if calls == 0 {
		t.Fatal("builder never called")
	}
}

func TestWorkloadString(t *testing.T) {
	if Permutation.String() != "permutation" || AllToAll.String() != "all-to-all" ||
		Chunky.String() != "chunky" || Workload(42).String() == "" {
		t.Fatal("Workload.String broken")
	}
}
