// Package core is the library's high-level API, tying together the paper's
// methodology: build a topology (homogeneous RRG, heterogeneous two-type,
// or VL2-style), generate a workload, solve for throughput, and compare
// against the analytical bounds.
//
// The lower-level packages remain usable directly; core packages the
// common paths:
//
//	g, _ := core.DesignHomogeneous(rng, core.HomogeneousSpec{Switches: 40, Ports: 20, Servers: 200})
//	ev := core.Evaluation{Workload: core.Permutation, Runs: 20, Seed: 1}
//	stat, _ := ev.Throughput(func(r *rand.Rand) (*graph.Graph, error) { return g.Clone(), nil })
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/traffic"
)

// Workload selects a traffic matrix family.
type Workload int

const (
	// Permutation is random permutation traffic among servers (the
	// paper's default, §3).
	Permutation Workload = iota
	// AllToAll is all-to-all traffic among servers.
	AllToAll
	// Chunky is the §8.1 pattern; set Evaluation.ChunkyFraction.
	Chunky
)

func (w Workload) String() string {
	switch w {
	case Permutation:
		return "permutation"
	case AllToAll:
		return "all-to-all"
	case Chunky:
		return "chunky"
	default:
		return fmt.Sprintf("workload(%d)", int(w))
	}
}

// HomogeneousSpec describes the §4 setting: N identical switches with k
// ports each, hosting S servers; each switch devotes k - S/N ports to the
// network.
type HomogeneousSpec struct {
	Switches int // N
	Ports    int // k
	Servers  int // S (must divide evenly across switches)
}

// NetworkDegree returns r = k - S/N.
func (s HomogeneousSpec) NetworkDegree() int { return s.Ports - s.Servers/s.Switches }

// DesignHomogeneous builds the paper's near-optimal homogeneous design: a
// uniform random regular graph over the ports left after spreading servers
// evenly (Jellyfish-style).
func DesignHomogeneous(rng *rand.Rand, spec HomogeneousSpec) (*graph.Graph, error) {
	if spec.Switches <= 0 || spec.Servers < 0 || spec.Servers%spec.Switches != 0 {
		return nil, fmt.Errorf("core: servers %d must divide across %d switches", spec.Servers, spec.Switches)
	}
	perSwitch := spec.Servers / spec.Switches
	r := spec.Ports - perSwitch
	if r < 1 {
		return nil, fmt.Errorf("core: no network ports left (k=%d, servers/switch=%d)", spec.Ports, perSwitch)
	}
	g, err := rrg.Regular(rng, spec.Switches, r)
	if err != nil {
		return nil, err
	}
	for u := 0; u < spec.Switches; u++ {
		g.SetServers(u, perSwitch)
	}
	return g, nil
}

// UpperBound returns the Theorem 1 + ASPL-lower-bound throughput cap for
// the homogeneous spec under f unit-demand flows.
func UpperBound(spec HomogeneousSpec, f int) float64 {
	return bounds.ThroughputUpperBound(spec.Switches, spec.NetworkDegree(), f)
}

// Stat summarizes repeated throughput measurements.
type Stat struct {
	Mean, Std, Min, Max float64
	Runs                int
}

// Evaluation configures repeated measurement of a (randomized) topology
// under a workload. Each run draws a fresh topology from the builder and a
// fresh traffic matrix, using a run-specific deterministic RNG.
type Evaluation struct {
	Workload       Workload
	ChunkyFraction float64
	Runs           int     // number of runs (default 3)
	Seed           int64   // base seed; run i uses Seed*1e6 + i
	Epsilon        float64 // solver epsilon (0 = mcf.DefaultEpsilon)
	Parallel       int     // worker goroutines (0 = GOMAXPROCS)
}

// Builder constructs a topology for one run.
type Builder func(rng *rand.Rand) (*graph.Graph, error)

// Throughput measures mean/std/min/max per-flow throughput across runs.
func (ev Evaluation) Throughput(build Builder) (Stat, error) {
	vals, _, err := ev.run(build, false)
	if err != nil {
		return Stat{}, err
	}
	return summarize(vals), nil
}

// Detailed runs the evaluation and returns every run's full flow result
// (for the Fig. 9 decomposition analysis) along with the graphs used.
func (ev Evaluation) Detailed(build Builder) ([]*mcf.Result, []*graph.Graph, error) {
	_, det, err := ev.run(build, true)
	if err != nil {
		return nil, nil, err
	}
	res := make([]*mcf.Result, len(det))
	gs := make([]*graph.Graph, len(det))
	for i, d := range det {
		res[i], gs[i] = d.res, d.g
	}
	return res, gs, nil
}

type detail struct {
	res *mcf.Result
	g   *graph.Graph
}

func (ev Evaluation) run(build Builder, keep bool) ([]float64, []detail, error) {
	runs := ev.Runs
	if runs <= 0 {
		runs = 3
	}
	type runOut struct {
		val float64
		det detail
	}
	outs, err := runner.Map(runner.New(ev.Parallel), runs, func(i int) (runOut, error) {
		v, d, err := ev.oneRun(build, i, keep)
		return runOut{val: v, det: d}, err
	})
	if err != nil {
		return nil, nil, err
	}
	vals := make([]float64, runs)
	dets := make([]detail, runs)
	for i, o := range outs {
		vals[i], dets[i] = o.val, o.det
	}
	if !keep {
		return vals, nil, nil
	}
	return vals, dets, nil
}

func (ev Evaluation) oneRun(build Builder, i int, keep bool) (float64, detail, error) {
	rng := rand.New(rand.NewSource(ev.Seed*1_000_003 + int64(i)))
	g, err := build(rng)
	if err != nil {
		return 0, detail{}, fmt.Errorf("core: build run %d: %w", i, err)
	}
	h := traffic.HostsOf(g)
	var tm *traffic.Matrix
	switch ev.Workload {
	case Permutation:
		tm = traffic.Permutation(rng, h)
	case AllToAll:
		tm = traffic.AllToAll(h)
	case Chunky:
		tm, err = traffic.Chunky(rng, h, ev.ChunkyFraction)
		if err != nil {
			return 0, detail{}, err
		}
	default:
		return 0, detail{}, fmt.Errorf("core: unknown workload %v", ev.Workload)
	}
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: ev.Epsilon})
	if errors.Is(err, mcf.ErrUnreachable) {
		// A disconnected instance (e.g. zero cross-cluster links) has zero
		// concurrent throughput; report it rather than failing the sweep.
		return 0, detail{res: &mcf.Result{ArcFlow: make([]float64, g.NumArcs()), ArcUtil: make([]float64, g.NumArcs())}, g: g}, nil
	}
	if err != nil {
		return 0, detail{}, err
	}
	d := detail{}
	if keep {
		d = detail{res: res, g: g}
	}
	return res.Throughput, d, nil
}

func summarize(vals []float64) Stat {
	st := Stat{Runs: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(vals) == 0 {
		return st
	}
	var sum float64
	for _, v := range vals {
		sum += v
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
	}
	st.Mean = sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - st.Mean) * (v - st.Mean)
	}
	st.Std = math.Sqrt(ss / float64(len(vals)))
	return st
}

// MaxAtFullThroughput binary-searches the largest size parameter in
// [lo, hi] for which every run of the evaluation achieves throughput ≥
// threshold(size) (the paper's "supported at full throughput" search of
// §7, which uses threshold 1 under random permutation traffic).
//
// The builder receives the size parameter (e.g. a ToR count). Because the
// flow solver is ε-approximate and only *underestimates* throughput, a
// threshold slightly below 1 (e.g. 1-ε) reproduces the paper's criterion
// without penalizing solver slack. The threshold is size-dependent so
// workloads whose per-flow fair share shrinks with size (all-to-all) can
// be handled: full throughput there means λ ≥ fairShare(size).
func (ev Evaluation) MaxAtFullThroughput(lo, hi int, threshold func(size int) float64, build func(size int) Builder) (int, error) {
	ok := func(size int) (bool, error) {
		st, err := ev.Throughput(build(size))
		if err != nil {
			return false, err
		}
		return st.Min >= threshold(size), nil
	}
	okLo, err := ok(lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return lo - 1, nil
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		good, err := ok(mid)
		if err != nil {
			return 0, err
		}
		if good {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
