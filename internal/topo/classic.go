package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rrg"
)

// FatTree builds the k-ary fat-tree of Al-Fares et al. (SIGCOMM 2008),
// which the paper (via Jellyfish) uses as the canonical Clos baseline.
// k must be even. The topology has 5k²/4 switches: k²/4 cores and k pods
// of k/2 aggregation + k/2 edge switches; each edge switch hosts k/2
// servers. All links have unit capacity.
//
// Node order: edges (pod-major), aggregations (pod-major), cores.
func FatTree(k int) (*graph.Graph, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree k=%d must be even and >= 2", k)
	}
	half := k / 2
	nEdge, nAgg, nCore := k*half, k*half, half*half
	g := graph.New(nEdge + nAgg + nCore)
	edge := func(pod, i int) int { return pod*half + i }
	agg := func(pod, i int) int { return nEdge + pod*half + i }
	core := func(i, j int) int { return nEdge + nAgg + i*half + j }
	for pod := 0; pod < k; pod++ {
		for e := 0; e < half; e++ {
			g.SetServers(edge(pod, e), half)
			g.SetClass(edge(pod, e), ClassToR)
			for a := 0; a < half; a++ {
				g.AddLink(edge(pod, e), agg(pod, a), 1)
			}
		}
		for a := 0; a < half; a++ {
			g.SetClass(agg(pod, a), ClassAgg)
			for j := 0; j < half; j++ {
				g.AddLink(agg(pod, a), core(a, j), 1)
			}
		}
	}
	for i := 0; i < half; i++ {
		for j := 0; j < half; j++ {
			g.SetClass(core(i, j), ClassCore)
		}
	}
	return g, nil
}

// Hypercube builds the d-dimensional binary hypercube (2^d switches,
// degree d, unit capacities). The paper cites the ~30% RRG advantage over
// hypercubes at 512 nodes.
func Hypercube(d int) (*graph.Graph, error) {
	if d < 1 || d > 24 {
		return nil, fmt.Errorf("topo: hypercube dimension %d out of [1,24]", d)
	}
	n := 1 << d
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << b)
			if u < v {
				g.AddLink(u, v, 1)
			}
		}
	}
	return g, nil
}

// Torus2D builds an a×b wrap-around 2D torus (degree 4 for a,b ≥ 3).
func Torus2D(a, b int) (*graph.Graph, error) {
	if a < 3 || b < 3 {
		return nil, fmt.Errorf("topo: torus %dx%d needs both dims >= 3", a, b)
	}
	g := graph.New(a * b)
	id := func(i, j int) int { return i*b + j }
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.AddLink(id(i, j), id((i+1)%a, j), 1)
			g.AddLink(id(i, j), id(i, (j+1)%b), 1)
		}
	}
	return g, nil
}

// Complete builds the complete graph K_n with unit capacities.
func Complete(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: complete graph needs n >= 2")
	}
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddLink(i, j, 1)
		}
	}
	return g, nil
}

// Jellyfish builds the Jellyfish topology: an RRG(N, k, r) with k-r servers
// on each of the N switches (Singla et al., NSDI 2012). It is the
// homogeneous design the paper proves near-optimal.
func Jellyfish(rng *rand.Rand, n, k, r int) (*graph.Graph, error) {
	if r > k {
		return nil, fmt.Errorf("topo: network degree r=%d exceeds port count k=%d", r, k)
	}
	g, err := rrg.Regular(rng, n, r)
	if err != nil {
		return nil, err
	}
	for u := 0; u < n; u++ {
		g.SetServers(u, k-r)
	}
	return g, nil
}
