// Package topo constructs the named topologies used by the paper: VL2 and
// its rewired variant (§7), plus the classical structured designs the paper
// situates itself against — fat-tree, hypercube, 2D torus, and the complete
// graph — and a Jellyfish-style random-regular-graph wrapper.
//
// Conventions: one capacity unit is one server line-rate (1 GbE). VL2
// switch-to-switch links are 10 units (10 GbE).
package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rrg"
)

// Node classes used by the VL2 generators.
const (
	ClassToR  = 0
	ClassAgg  = 1
	ClassCore = 2
)

// VL2Config parameterizes the VL2 topology of Greenberg et al. as described
// in §7: each ToR hosts 20 1 GbE servers and has 2 10 GbE uplinks to
// distinct aggregation switches; aggregation switches have DA 10 GbE ports,
// core (intermediate) switches have DI 10 GbE ports, and aggregation and
// core switches form a complete bipartite graph.
type VL2Config struct {
	DA int // ports per aggregation switch (even)
	DI int // ports per core switch
	// ServersPerToR defaults to 20 when zero.
	ServersPerToR int
	// UplinkCap is the ToR uplink / fabric line rate in server-line-rate
	// units; defaults to 10 when zero.
	UplinkCap float64
}

func (c VL2Config) withDefaults() VL2Config {
	if c.ServersPerToR == 0 {
		c.ServersPerToR = 20
	}
	if c.UplinkCap == 0 {
		c.UplinkCap = 10
	}
	return c
}

// NumToRs returns the number of ToRs VL2 supports at full throughput:
// DA·DI/4 (§7).
func (c VL2Config) NumToRs() int { return c.DA * c.DI / 4 }

// NumAggs returns the number of aggregation switches (= DI).
func (c VL2Config) NumAggs() int { return c.DI }

// NumCores returns the number of core switches (= DA/2).
func (c VL2Config) NumCores() int { return c.DA / 2 }

// VL2 builds the standard VL2 topology. Node order: ToRs, then aggregation
// switches, then cores. Each ToR's two uplinks go to a distinct round-robin
// pair of aggregation switches, balancing ToR load across the aggregation
// layer as in the deployed design.
func VL2(cfg VL2Config) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.DA < 2 || cfg.DA%2 != 0 || cfg.DI < 2 {
		return nil, fmt.Errorf("topo: invalid VL2 config DA=%d DI=%d", cfg.DA, cfg.DI)
	}
	nTor, nAgg, nCore := cfg.NumToRs(), cfg.NumAggs(), cfg.NumCores()
	g := graph.New(nTor + nAgg + nCore)
	agg := func(i int) int { return nTor + i }
	core := func(i int) int { return nTor + nAgg + i }
	for t := 0; t < nTor; t++ {
		g.SetClass(t, ClassToR)
		g.SetServers(t, cfg.ServersPerToR)
		a1 := (2 * t) % nAgg
		a2 := (2*t + 1) % nAgg
		if a1 == a2 { // nAgg == 1 cannot host two distinct uplinks
			return nil, fmt.Errorf("topo: VL2 needs DI >= 2 distinct aggregation switches")
		}
		g.AddLink(t, agg(a1), cfg.UplinkCap)
		g.AddLink(t, agg(a2), cfg.UplinkCap)
	}
	for i := 0; i < nAgg; i++ {
		g.SetClass(agg(i), ClassAgg)
	}
	for i := 0; i < nCore; i++ {
		g.SetClass(core(i), ClassCore)
	}
	for i := 0; i < nAgg; i++ {
		for j := 0; j < nCore; j++ {
			g.AddLink(agg(i), core(j), cfg.UplinkCap)
		}
	}
	return g, nil
}

// VL2WithToRs builds VL2 with an arbitrary ToR count on the cfg fabric
// (round-robin uplinks over aggregation pairs), allowing under- and
// oversubscription relative to the designed DA·DI/4 — the §7 capacity
// search probes exactly this family.
func VL2WithToRs(cfg VL2Config, tors int) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if tors == cfg.NumToRs() {
		return VL2(cfg)
	}
	if cfg.DA < 2 || cfg.DA%2 != 0 || cfg.DI < 2 {
		return nil, fmt.Errorf("topo: invalid VL2 config DA=%d DI=%d", cfg.DA, cfg.DI)
	}
	if tors < 1 {
		return nil, fmt.Errorf("topo: tors=%d", tors)
	}
	nAgg, nCore := cfg.NumAggs(), cfg.NumCores()
	g := graph.New(tors + nAgg + nCore)
	agg := func(i int) int { return tors + i }
	core := func(i int) int { return tors + nAgg + i }
	for t := 0; t < tors; t++ {
		g.SetClass(t, ClassToR)
		g.SetServers(t, cfg.ServersPerToR)
		a1 := (2 * t) % nAgg
		a2 := (2*t + 1) % nAgg
		g.AddLink(t, agg(a1), cfg.UplinkCap)
		g.AddLink(t, agg(a2), cfg.UplinkCap)
	}
	for i := 0; i < nAgg; i++ {
		g.SetClass(agg(i), ClassAgg)
		for j := 0; j < nCore; j++ {
			g.AddLink(agg(i), core(j), cfg.UplinkCap)
		}
	}
	for j := 0; j < nCore; j++ {
		g.SetClass(core(j), ClassCore)
	}
	return g, nil
}

// RewiredVL2 builds the paper's improved topology (§7) from the same
// equipment pool as VL2(cfg) but hosting numToRs ToRs: ToR uplinks are
// spread across aggregation and core switches in proportion to switch
// degree, and all remaining 10 GbE ports are interconnected uniformly at
// random.
//
// Equipment accounting: DI aggregation switches with DA ports each and
// DA/2 core switches with DI ports each, exactly as in VL2; each ToR
// contributes 2 uplink ports.
func RewiredVL2(rng *rand.Rand, cfg VL2Config, numToRs int) (*graph.Graph, error) {
	cfg = cfg.withDefaults()
	if cfg.DA < 2 || cfg.DA%2 != 0 || cfg.DI < 2 {
		return nil, fmt.Errorf("topo: invalid VL2 config DA=%d DI=%d", cfg.DA, cfg.DI)
	}
	if numToRs < 1 {
		return nil, fmt.Errorf("topo: numToRs=%d", numToRs)
	}
	nAgg, nCore := cfg.NumAggs(), cfg.NumCores()
	nFabric := nAgg + nCore
	ports := make([]int, nFabric) // free 10G ports per fabric switch
	for i := 0; i < nAgg; i++ {
		ports[i] = cfg.DA
	}
	for i := 0; i < nCore; i++ {
		ports[nAgg+i] = cfg.DI
	}
	totalPorts := nAgg*cfg.DA + nCore*cfg.DI
	uplinks := 2 * numToRs
	if uplinks >= totalPorts {
		return nil, fmt.Errorf("topo: %d ToR uplinks exceed %d fabric ports", uplinks, totalPorts)
	}

	// Assign ToR uplinks to fabric switches in proportion to port count,
	// using largest-remainder apportionment, then round-robin the actual
	// ToR endpoints across the assigned slots.
	slots := apportion(ports, uplinks)
	for i, s := range slots {
		if s > ports[i] {
			return nil, fmt.Errorf("topo: apportionment overflow at switch %d", i)
		}
	}

	g := graph.New(numToRs + nFabric)
	fab := func(i int) int { return numToRs + i }
	for t := 0; t < numToRs; t++ {
		g.SetClass(t, ClassToR)
		g.SetServers(t, cfg.ServersPerToR)
	}
	for i := 0; i < nAgg; i++ {
		g.SetClass(fab(i), ClassAgg)
	}
	for i := 0; i < nCore; i++ {
		g.SetClass(fab(nAgg+i), ClassCore)
	}

	// Expand slots into an endpoint list and deal ToRs onto it so each ToR
	// gets two distinct fabric switches whenever possible.
	var endpoints []int
	for i, s := range slots {
		for k := 0; k < s; k++ {
			endpoints = append(endpoints, i)
		}
	}
	rng.Shuffle(len(endpoints), func(i, j int) { endpoints[i], endpoints[j] = endpoints[j], endpoints[i] })
	// Repair duplicate pairs before wiring anything: a ToR whose two slots
	// landed on the same switch swaps one slot with any pair that avoids
	// that switch entirely (such a pair exists unless one switch owns all
	// but one slot, which the apportionment cannot produce for numToRs>1).
	for t := 0; t < numToRs; t++ {
		if endpoints[2*t] != endpoints[2*t+1] {
			continue
		}
		e := endpoints[2*t]
		fixed := false
		for u := 0; u < numToRs && !fixed; u++ {
			if u == t {
				continue
			}
			if endpoints[2*u] != e && endpoints[2*u+1] != e {
				endpoints[2*t+1], endpoints[2*u] = endpoints[2*u], endpoints[2*t+1]
				fixed = true
			}
		}
		if !fixed {
			return nil, fmt.Errorf("topo: cannot give ToR %d two distinct uplink switches", t)
		}
	}
	for t := 0; t < numToRs; t++ {
		e1, e2 := endpoints[2*t], endpoints[2*t+1]
		g.AddLink(t, fab(e1), cfg.UplinkCap)
		g.AddLink(t, fab(e2), cfg.UplinkCap)
		ports[e1]--
		ports[e2]--
	}

	// Random interconnect over the remaining fabric ports.
	free := append([]int(nil), ports...)
	totalFree := 0
	for _, p := range free {
		totalFree += p
	}
	if totalFree%2 != 0 {
		// Drop one port from the switch with the most leftovers; an odd
		// total cannot be fully paired (one port stays dark, as in any
		// physical deployment).
		maxI := 0
		for i, p := range free {
			if p > free[maxI] {
				maxI = i
			}
		}
		free[maxI]--
	}
	sub, err := rrg.FromDegrees(rng, free, cfg.UplinkCap)
	if err != nil {
		return nil, fmt.Errorf("topo: rewired VL2 interconnect: %w", err)
	}
	for id := 0; id < sub.NumLinks(); id++ {
		u, v := sub.LinkEnds(id)
		g.AddLink(fab(u), fab(v), cfg.UplinkCap)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("topo: rewired VL2 disconnected")
	}
	return g, nil
}

// apportion splits total slots across entries in proportion to weights
// using the largest-remainder method, never exceeding the weight itself.
func apportion(weights []int, total int) []int {
	sumW := 0
	for _, w := range weights {
		sumW += w
	}
	out := make([]int, len(weights))
	type rem struct {
		i    int
		frac float64
	}
	var rems []rem
	assigned := 0
	for i, w := range weights {
		exact := float64(total) * float64(w) / float64(sumW)
		out[i] = int(exact)
		if out[i] > w {
			out[i] = w
		}
		assigned += out[i]
		rems = append(rems, rem{i, exact - float64(out[i])})
	}
	// Distribute the remainder by largest fractional part (stable order).
	for assigned < total {
		best := -1
		for k := range rems {
			i := rems[k].i
			if out[i] >= weights[i] {
				continue
			}
			if best < 0 || rems[k].frac > rems[best].frac {
				best = k
			}
		}
		if best < 0 {
			break
		}
		out[rems[best].i]++
		rems[best].frac = -1
		assigned++
	}
	return out
}
