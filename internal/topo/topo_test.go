package topo

import (
	"math/rand"
	"testing"
)

func TestVL2Shape(t *testing.T) {
	cfg := VL2Config{DA: 8, DI: 6}
	g, err := VL2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	nTor, nAgg, nCore := cfg.NumToRs(), cfg.NumAggs(), cfg.NumCores()
	if nTor != 12 || nAgg != 6 || nCore != 4 {
		t.Fatalf("counts %d/%d/%d", nTor, nAgg, nCore)
	}
	if g.N() != nTor+nAgg+nCore {
		t.Fatalf("nodes %d", g.N())
	}
	// ToR degree 2; each ToR hosts 20 servers.
	for u := 0; u < nTor; u++ {
		if g.Degree(u) != 2 || g.Servers(u) != 20 || g.Class(u) != ClassToR {
			t.Fatalf("ToR %d: deg=%d servers=%d class=%d", u, g.Degree(u), g.Servers(u), g.Class(u))
		}
	}
	// Aggregation switches: DA ports used (DA/2 down + DI... here full
	// bipartite to cores plus ToR uplinks).
	for i := 0; i < nAgg; i++ {
		u := nTor + i
		if g.Class(u) != ClassAgg {
			t.Fatal("agg class wrong")
		}
		if got := g.Degree(u); got != nCore+2*nTor/nAgg {
			t.Fatalf("agg %d degree %d", i, got)
		}
	}
	// Cores: exactly DI ports, all to aggs.
	for j := 0; j < nCore; j++ {
		u := nTor + nAgg + j
		if g.Degree(u) != cfg.DI || g.Class(u) != ClassCore {
			t.Fatalf("core %d degree %d", j, g.Degree(u))
		}
	}
	if !g.IsConnected() {
		t.Fatal("VL2 disconnected")
	}
	// All fabric links are 10 units.
	for id := 0; id < g.NumLinks(); id++ {
		if g.LinkCapacity(id) != 10 {
			t.Fatalf("link %d capacity %v", id, g.LinkCapacity(id))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVL2DistinctUplinks(t *testing.T) {
	g, err := VL2(VL2Config{DA: 8, DI: 6})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 12; u++ {
		nb := g.Neighbors(u)
		if len(nb) != 2 {
			t.Fatalf("ToR %d has %d distinct uplink switches", u, len(nb))
		}
	}
}

func TestVL2Invalid(t *testing.T) {
	for _, cfg := range []VL2Config{{DA: 7, DI: 6}, {DA: 0, DI: 6}, {DA: 8, DI: 1}} {
		if _, err := VL2(cfg); err == nil {
			t.Fatalf("accepted invalid %+v", cfg)
		}
	}
}

func TestRewiredVL2EquipmentAccounting(t *testing.T) {
	cfg := VL2Config{DA: 8, DI: 6}
	rng := rand.New(rand.NewSource(2))
	tors := cfg.NumToRs()
	g, err := RewiredVL2(rng, cfg, tors)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("rewired VL2 disconnected")
	}
	// ToRs keep exactly 2 uplinks and 20 servers.
	for u := 0; u < tors; u++ {
		if g.Degree(u) != 2 || g.Servers(u) != 20 {
			t.Fatalf("ToR %d: deg=%d servers=%d", u, g.Degree(u), g.Servers(u))
		}
	}
	// Fabric switches never exceed their port budget, and at most one port
	// in the whole fabric is left dark.
	nAgg, nCore := cfg.NumAggs(), cfg.NumCores()
	usedTotal, budgetTotal := 0, 0
	for i := 0; i < nAgg+nCore; i++ {
		u := tors + i
		budget := cfg.DA
		if i >= nAgg {
			budget = cfg.DI
		}
		if g.Degree(u) > budget {
			t.Fatalf("fabric switch %d uses %d of %d ports", i, g.Degree(u), budget)
		}
		usedTotal += g.Degree(u)
		budgetTotal += budget
	}
	if budgetTotal-usedTotal > 1 {
		t.Fatalf("wasted %d fabric ports", budgetTotal-usedTotal)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRewiredVL2Oversubscribed(t *testing.T) {
	cfg := VL2Config{DA: 8, DI: 6}
	rng := rand.New(rand.NewSource(3))
	g, err := RewiredVL2(rng, cfg, cfg.NumToRs()*2)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("oversubscribed rewired VL2 disconnected")
	}
}

func TestRewiredVL2TooManyToRs(t *testing.T) {
	cfg := VL2Config{DA: 8, DI: 6}
	rng := rand.New(rand.NewSource(3))
	total := cfg.NumAggs()*cfg.DA + cfg.NumCores()*cfg.DI
	if _, err := RewiredVL2(rng, cfg, total); err == nil {
		t.Fatal("should reject ToR uplinks exceeding fabric ports")
	}
}

func TestFatTree(t *testing.T) {
	g, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 { // 5k²/4 = 20
		t.Fatalf("k=4 fat-tree has %d switches, want 20", g.N())
	}
	if g.TotalServers() != 16 { // k³/4
		t.Fatalf("servers %d, want 16", g.TotalServers())
	}
	// Every switch has degree k (edge switches: k/2 up only in-network).
	for u := 0; u < g.N(); u++ {
		want := 4
		if g.Class(u) == ClassToR {
			want = 2 // k/2 network ports; the other k/2 host servers
		}
		if g.Degree(u) != want {
			t.Fatalf("switch %d degree %d, want %d", u, g.Degree(u), want)
		}
	}
	if !g.IsConnected() {
		t.Fatal("fat-tree disconnected")
	}
	if _, err := FatTree(5); err == nil {
		t.Fatal("odd k should fail")
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatalf("nodes %d", g.N())
	}
	if r, ok := g.IsRegular(); !ok || r != 4 {
		t.Fatalf("degree %d regular=%v", r, ok)
	}
	d, _ := g.Diameter()
	if d != 4 {
		t.Fatalf("diameter %d, want 4", d)
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("dim 0 should fail")
	}
}

func TestTorus2D(t *testing.T) {
	g, err := Torus2D(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 20 {
		t.Fatalf("nodes %d", g.N())
	}
	if r, ok := g.IsRegular(); !ok || r != 4 {
		t.Fatalf("torus degree %d regular=%v", r, ok)
	}
	if _, err := Torus2D(2, 5); err == nil {
		t.Fatal("dim < 3 should fail")
	}
}

func TestComplete(t *testing.T) {
	g, err := Complete(7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumLinks() != 21 {
		t.Fatalf("K7 links %d", g.NumLinks())
	}
	aspl, _ := g.ASPL()
	if aspl != 1 {
		t.Fatalf("K7 ASPL %v", aspl)
	}
}

func TestJellyfish(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, err := Jellyfish(rng, 20, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalServers() != 60 { // (8-5)·20
		t.Fatalf("servers %d", g.TotalServers())
	}
	if r, ok := g.IsRegular(); !ok || r != 5 {
		t.Fatalf("degree %d", r)
	}
	if _, err := Jellyfish(rng, 20, 4, 5); err == nil {
		t.Fatal("r > k should fail")
	}
}

func TestApportion(t *testing.T) {
	weights := []int{30, 30, 16, 16}
	got := apportion(weights, 23)
	total := 0
	for i, v := range got {
		if v > weights[i] {
			t.Fatalf("bin %d over weight", i)
		}
		total += v
	}
	if total != 23 {
		t.Fatalf("apportioned %d, want 23", total)
	}
	// Proportionality: the 30-weight bins get more than the 16s.
	if got[0] < got[2] {
		t.Fatalf("apportion not proportional: %v", got)
	}
}

func TestApportionSaturation(t *testing.T) {
	got := apportion([]int{2, 2, 10}, 12)
	if got[0]+got[1]+got[2] != 12 {
		t.Fatalf("apportion %v", got)
	}
	if got[0] > 2 || got[1] > 2 {
		t.Fatalf("bins exceeded caps: %v", got)
	}
}
