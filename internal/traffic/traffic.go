// Package traffic generates the workloads evaluated in the paper: random
// permutation traffic among servers (§3, the default), all-to-all traffic,
// and the x% Chunky pattern of §8.1. Server-level flows are aggregated to
// switch-level commodities for the flow solver.
package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Flow is a switch-level commodity: Demand units must travel from switch
// Src to switch Dst. Aggregation sums the demands of all server pairs with
// the same (Src, Dst).
type Flow struct {
	Src, Dst int
	Demand   float64
}

// Matrix is a set of commodities plus bookkeeping about the server-level
// flows it was aggregated from.
type Matrix struct {
	Flows []Flow
	// ServerFlows is the number of server-level flows, including flows
	// whose endpoints share a switch (which consume no network capacity
	// and are dropped from Flows). This is the paper's f.
	ServerFlows int
	// Colocated counts the dropped same-switch flows.
	Colocated int
}

// TotalDemand returns the sum of commodity demands.
func (m *Matrix) TotalDemand() float64 {
	var t float64
	for _, f := range m.Flows {
		t += f.Demand
	}
	return t
}

// Hosts maps server IDs to switches. Server IDs are assigned contiguously
// switch by switch: switch u hosts servers [first[u], first[u+1]).
type Hosts struct {
	SwitchOf []int // server -> switch
	BySwitch [][]int
}

// HostsOf derives the server placement from a graph's per-node server
// counts.
func HostsOf(g *graph.Graph) *Hosts {
	h := &Hosts{BySwitch: make([][]int, g.N())}
	id := 0
	for u := 0; u < g.N(); u++ {
		for k := 0; k < g.Servers(u); k++ {
			h.SwitchOf = append(h.SwitchOf, u)
			h.BySwitch[u] = append(h.BySwitch[u], id)
			id++
		}
	}
	return h
}

// NumServers returns the total number of servers.
func (h *Hosts) NumServers() int { return len(h.SwitchOf) }

// aggregate turns server-level (src, dst) pairs into switch-level
// commodities with unit demand per pair.
func (h *Hosts) aggregate(pairs [][2]int) *Matrix {
	type key struct{ s, d int }
	agg := make(map[key]float64)
	m := &Matrix{ServerFlows: len(pairs)}
	for _, p := range pairs {
		su, du := h.SwitchOf[p[0]], h.SwitchOf[p[1]]
		if su == du {
			m.Colocated++
			continue
		}
		agg[key{su, du}]++
	}
	m.Flows = make([]Flow, 0, len(agg))
	for k, d := range agg {
		m.Flows = append(m.Flows, Flow{Src: k.s, Dst: k.d, Demand: d})
	}
	sort.Slice(m.Flows, func(i, j int) bool {
		if m.Flows[i].Src != m.Flows[j].Src {
			return m.Flows[i].Src < m.Flows[j].Src
		}
		return m.Flows[i].Dst < m.Flows[j].Dst
	})
	return m
}

// Permutation generates random permutation traffic: every server sends to
// exactly one other server and receives from exactly one other server, and
// no server sends to itself (a random derangement).
func Permutation(rng *rand.Rand, h *Hosts) *Matrix {
	n := h.NumServers()
	perm := Derangement(rng, n)
	pairs := make([][2]int, 0, n)
	for s, d := range perm {
		pairs = append(pairs, [2]int{s, d})
	}
	return h.aggregate(pairs)
}

// Derangement returns a uniform-ish random permutation of [0,n) with no
// fixed points, using rejection of fixed points via swap repair. For n == 1
// the identity is unavoidable and returned as-is.
func Derangement(rng *rand.Rand, n int) []int {
	perm := rng.Perm(n)
	if n < 2 {
		return perm
	}
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	// The swap above cannot create a new fixed point: perm[j] != i by
	// injectivity (position i already mapped to i), so position i receives
	// a non-fixed value and position j receives i != j. Re-check
	// defensively all the same.
	for i := 0; i < n; i++ {
		for perm[i] == i {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	return perm
}

// AllToAll generates all-to-all traffic: every server sends one unit to
// every other server.
func AllToAll(h *Hosts) *Matrix {
	n := h.NumServers()
	pairs := make([][2]int, 0, n*(n-1))
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				pairs = append(pairs, [2]int{s, d})
			}
		}
	}
	return h.aggregate(pairs)
}

// Chunky generates the x% Chunky pattern of §8.1: a fraction of the ToRs
// (switches that host servers) engage in a ToR-level permutation — every
// server of ToR A sends all traffic to servers of one other ToR B in the
// chunky set — while the remaining servers run a server-level random
// permutation among themselves.
func Chunky(rng *rand.Rand, h *Hosts, fraction float64) (*Matrix, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: chunky fraction %v out of [0,1]", fraction)
	}
	var tors []int
	for u, list := range h.BySwitch {
		if len(list) > 0 {
			tors = append(tors, u)
		}
	}
	nChunky := int(float64(len(tors))*fraction + 0.5)
	if nChunky%2 == 1 { // ToR-level permutation needs pairs
		nChunky--
	}
	rng.Shuffle(len(tors), func(i, j int) { tors[i], tors[j] = tors[j], tors[i] })
	chunky := tors[:nChunky]

	var pairs [][2]int
	// ToR-level permutation among the chunky set: match ToRs into a
	// derangement at ToR granularity, then map server i of A to server
	// i mod |B| of B.
	cperm := Derangement(rng, len(chunky))
	for ai, bi := range cperm {
		a, b := chunky[ai], chunky[bi]
		bs := h.BySwitch[b]
		for i, s := range h.BySwitch[a] {
			pairs = append(pairs, [2]int{s, bs[i%len(bs)]})
		}
	}
	// Server-level permutation among the rest.
	var rest []int
	inChunky := make(map[int]bool, len(chunky))
	for _, u := range chunky {
		inChunky[u] = true
	}
	for u, list := range h.BySwitch {
		if len(list) > 0 && !inChunky[u] {
			rest = append(rest, list...)
		}
	}
	rperm := Derangement(rng, len(rest))
	for i, j := range rperm {
		pairs = append(pairs, [2]int{rest[i], rest[j]})
	}
	return h.aggregate(pairs), nil
}

// Hotspot generates a pattern where a fraction of servers all send to a
// single hot destination server while the rest run a permutation. Not in
// the paper's figures; provided for "easy to augment with arbitrary
// traffic patterns" (§9).
func Hotspot(rng *rand.Rand, h *Hosts, fraction float64) (*Matrix, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("traffic: hotspot fraction %v out of [0,1]", fraction)
	}
	n := h.NumServers()
	if n < 2 {
		return h.aggregate(nil), nil
	}
	hot := rng.Intn(n)
	nHot := int(float64(n) * fraction)
	order := rng.Perm(n)
	var pairs [][2]int
	var rest []int
	count := 0
	for _, s := range order {
		if s == hot {
			continue
		}
		if count < nHot {
			pairs = append(pairs, [2]int{s, hot})
			count++
		} else {
			rest = append(rest, s)
		}
	}
	rperm := Derangement(rng, len(rest))
	for i, j := range rperm {
		pairs = append(pairs, [2]int{rest[i], rest[j]})
	}
	return h.aggregate(pairs), nil
}
