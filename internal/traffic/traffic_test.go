package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func hostsWith(servers ...int) (*graph.Graph, *Hosts) {
	g := graph.New(len(servers))
	for i := 1; i < len(servers); i++ {
		g.AddLink(i-1, i, 1)
	}
	for i, s := range servers {
		g.SetServers(i, s)
	}
	return g, HostsOf(g)
}

func TestHostsOf(t *testing.T) {
	_, h := hostsWith(2, 0, 3)
	if h.NumServers() != 5 {
		t.Fatalf("servers %d", h.NumServers())
	}
	want := []int{0, 0, 2, 2, 2}
	for s, sw := range h.SwitchOf {
		if sw != want[s] {
			t.Fatalf("server %d on switch %d, want %d", s, sw, want[s])
		}
	}
	if len(h.BySwitch[1]) != 0 || len(h.BySwitch[2]) != 3 {
		t.Fatal("BySwitch wrong")
	}
}

func TestDerangementProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 2
		perm := Derangement(rand.New(rand.NewSource(seed)), n)
		seen := make([]bool, n)
		for i, p := range perm {
			if p == i || p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDerangementTiny(t *testing.T) {
	if p := Derangement(rand.New(rand.NewSource(1)), 1); len(p) != 1 {
		t.Fatal("n=1 should return identity of length 1")
	}
	p := Derangement(rand.New(rand.NewSource(1)), 2)
	if p[0] != 1 || p[1] != 0 {
		t.Fatalf("n=2 derangement %v", p)
	}
}

func TestPermutationStructure(t *testing.T) {
	_, h := hostsWith(3, 3, 3, 3)
	rng := rand.New(rand.NewSource(4))
	m := Permutation(rng, h)
	if m.ServerFlows != 12 {
		t.Fatalf("server flows %d, want 12", m.ServerFlows)
	}
	// Aggregated demand must equal non-colocated server flows.
	if got := m.TotalDemand(); got != float64(12-m.Colocated) {
		t.Fatalf("total demand %v with %d colocated", got, m.Colocated)
	}
	for _, f := range m.Flows {
		if f.Src == f.Dst {
			t.Fatal("intra-switch commodity survived aggregation")
		}
		if f.Demand <= 0 {
			t.Fatal("non-positive demand")
		}
	}
	// Per-switch out-demand can't exceed its server count.
	out := map[int]float64{}
	for _, f := range m.Flows {
		out[f.Src] += f.Demand
	}
	for sw, d := range out {
		if d > 3 {
			t.Fatalf("switch %d sends %v > 3", sw, d)
		}
	}
}

func TestPermutationDeterminism(t *testing.T) {
	_, h := hostsWith(5, 5, 5)
	a := Permutation(rand.New(rand.NewSource(7)), h)
	b := Permutation(rand.New(rand.NewSource(7)), h)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("nondeterministic flows")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs", i)
		}
	}
}

func TestAllToAll(t *testing.T) {
	_, h := hostsWith(2, 2)
	m := AllToAll(h)
	if m.ServerFlows != 12 { // 4·3
		t.Fatalf("server flows %d, want 12", m.ServerFlows)
	}
	if m.Colocated != 4 { // 2 per switch, ordered
		t.Fatalf("colocated %d, want 4", m.Colocated)
	}
	// Two commodities (0->1 and 1->0) of demand 4 each.
	if len(m.Flows) != 2 {
		t.Fatalf("flows %d, want 2", len(m.Flows))
	}
	for _, f := range m.Flows {
		if f.Demand != 4 {
			t.Fatalf("demand %v, want 4", f.Demand)
		}
	}
}

func TestChunkyFractions(t *testing.T) {
	_, h := hostsWith(4, 4, 4, 4, 4, 4)
	rng := rand.New(rand.NewSource(5))
	for _, frac := range []float64{0, 0.5, 1.0} {
		m, err := Chunky(rng, h, frac)
		if err != nil {
			t.Fatal(err)
		}
		// Conservation: every server sends exactly once.
		if got := m.TotalDemand() + float64(m.Colocated); got != 24 {
			t.Fatalf("frac=%v: demand+colocated %v, want 24", frac, got)
		}
	}
	if _, err := Chunky(rng, h, 1.5); err == nil {
		t.Fatal("fraction > 1 should error")
	}
	if _, err := Chunky(rng, h, -0.1); err == nil {
		t.Fatal("negative fraction should error")
	}
}

func TestChunky100IsToRLevel(t *testing.T) {
	_, h := hostsWith(3, 3, 3, 3)
	rng := rand.New(rand.NewSource(11))
	m, err := Chunky(rng, h, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// 100% chunky on equal ToRs: each ToR sends all 3 units to exactly one
	// other ToR.
	out := map[int]map[int]float64{}
	for _, f := range m.Flows {
		if out[f.Src] == nil {
			out[f.Src] = map[int]float64{}
		}
		out[f.Src][f.Dst] += f.Demand
	}
	for sw, dsts := range out {
		if len(dsts) != 1 {
			t.Fatalf("switch %d sends to %d ToRs, want 1", sw, len(dsts))
		}
		for _, d := range dsts {
			if d != 3 {
				t.Fatalf("switch %d sends %v, want 3", sw, d)
			}
		}
	}
}

func TestChunkyOddChunkySetRoundsDown(t *testing.T) {
	_, h := hostsWith(2, 2, 2, 2, 2) // 5 ToRs; 60% -> 3 -> rounds to 2
	rng := rand.New(rand.NewSource(13))
	m, err := Chunky(rng, h, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TotalDemand() + float64(m.Colocated); got != 10 {
		t.Fatalf("demand+colocated %v, want 10", got)
	}
}

func TestHotspot(t *testing.T) {
	_, h := hostsWith(4, 4, 4)
	rng := rand.New(rand.NewSource(17))
	m, err := Hotspot(rng, h, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if m.TotalDemand()+float64(m.Colocated) != 11 { // 12 servers, hot one sends nothing
		t.Fatalf("hotspot conservation: %v", m.TotalDemand())
	}
	if _, err := Hotspot(rng, h, 2); err == nil {
		t.Fatal("fraction > 1 should error")
	}
}

func TestFlowsSorted(t *testing.T) {
	_, h := hostsWith(3, 3, 3, 3, 3)
	m := Permutation(rand.New(rand.NewSource(19)), h)
	for i := 1; i < len(m.Flows); i++ {
		a, b := m.Flows[i-1], m.Flows[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Dst >= b.Dst) {
			t.Fatal("flows not sorted")
		}
	}
}
