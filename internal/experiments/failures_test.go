package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/rrg"
)

func TestFailureSweepDegradesGracefully(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	o := Options{Quick: true, Runs: 2, Seed: 5}
	pts, err := FailureSweep(o, func(rng *rand.Rand) (*graph.Graph, error) {
		g, err := rrg.Regular(rng, 20, 6)
		if err != nil {
			return nil, err
		}
		for u := 0; u < g.N(); u++ {
			g.SetServers(u, 3)
		}
		return g, nil
	}, []float64{0, 0.05, 0.15, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Throughput != 1 {
		t.Fatalf("zero-failure point normalized to %v", pts[0].Throughput)
	}
	// Monotone degradation (up to small noise).
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput > pts[i-1].Throughput*1.1 {
			t.Fatalf("throughput rose with more failures: %+v", pts)
		}
	}
	// Graceful: 5% failures should not halve throughput on a degree-6 RRG.
	if pts[1].Throughput < 0.5 {
		t.Fatalf("5%% failures collapsed throughput to %v", pts[1].Throughput)
	}
	// 30% failures hurt but rarely disconnect a degree-6 expander.
	if pts[3].Disconnected > 1 {
		t.Fatalf("degree-6 RRG disconnected in %d/2 runs at 30%%", pts[3].Disconnected)
	}
}

func TestRRGVsFatTreeFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	o := Options{Quick: true, Runs: 2, Seed: 5}
	rrgPts, ftPts, err := RRGVsFatTreeFailures(o, 4, []float64{0, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rrgPts) != 2 || len(ftPts) != 2 {
		t.Fatal("bad sweep lengths")
	}
	if rrgPts[0].Absolute <= 0 || ftPts[0].Absolute <= 0 {
		t.Fatal("zero baseline throughput")
	}
	// Both should retain positive throughput at 10% failures unless
	// disconnected; the RRG should not degrade catastrophically more
	// than the fat-tree.
	if rrgPts[1].Disconnected == 0 && rrgPts[1].Throughput < 0.3 {
		t.Fatalf("RRG lost %v of throughput at 10%% failures", 1-rrgPts[1].Throughput)
	}
}

func TestGraphFailureHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	// WithoutLinks removes exactly the requested links.
	ng, err := g.WithoutLinks([]int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if ng.NumLinks() != g.NumLinks()-2 {
		t.Fatalf("links %d, want %d", ng.NumLinks(), g.NumLinks()-2)
	}
	if _, err := g.WithoutLinks([]int{999}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	// FailRandomLinks at 0 is a clone; at 1 leaves at least one link.
	same, err := g.FailRandomLinks(rng, 0)
	if err != nil || same.NumLinks() != g.NumLinks() {
		t.Fatalf("frac=0 changed the graph: %v", err)
	}
	one, err := g.FailRandomLinks(rng, 1)
	if err != nil || one.NumLinks() < 1 {
		t.Fatalf("frac=1 left %d links (err %v)", one.NumLinks(), err)
	}
}
