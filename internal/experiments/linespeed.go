package experiments

import (
	"fmt"

	"repro/internal/hetero"
)

// fig8Base is the §5.2 equipment pool: 20 large switches with 40 low
// line-speed ports each, 20 small switches with 15 low line-speed ports
// each; large switches additionally carry high line-speed links among
// themselves.
func fig8Base() hetero.Config {
	return hetero.Config{
		NumLarge: 20, NumSmall: 20,
		PortsLarge: 40, PortsSmall: 15,
	}
}

// Fig8a: server splits under mixed line-speeds. 3 extra 10× links per
// large switch; five server distributions sharing one total; cross-cluster
// sweep. The paper's finding: multiple configurations are near-optimal.
func Fig8a(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "8a", Title: "Mixed line-speeds: server splits × interconnect",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	xs := crossRatioXs(o.Quick)
	var peak float64
	type curve struct {
		s   Series
		raw []float64
	}
	var curves []curve
	for _, split := range [][2]int{{36, 7}, {35, 8}, {34, 9}, {33, 10}, {32, 11}} {
		label := fmt.Sprintf("%dH, %dL", split[0], split[1])
		base := fig8Base()
		base.ServersPerLarge, base.ServersPerSmall = split[0], split[1]
		base.HighLinksPerLarge, base.HighCap = 3, 10
		pts, err := sweepHetero(o, xs,
			func(x float64) hetero.Config {
				cfg := base
				cfg.CrossRatio = x
				return cfg
			},
			func(x float64) int64 { return labelSeed(label) + int64(x*1000) })
		if err != nil {
			return nil, err
		}
		s, raw := collectSeries(label, pts)
		for _, v := range raw {
			if v > peak {
				peak = v
			}
		}
		curves = append(curves, curve{s, raw})
	}
	for _, c := range curves {
		normalizeBy(&c.s, c.raw, peak)
		fig.Series = append(fig.Series, c.s)
	}
	return fig, nil
}

// normalizeBy rescales a series by an external reference value.
func normalizeBy(s *Series, raw []float64, ref float64) {
	if ref == 0 {
		s.Y = append([]float64(nil), raw...)
		return
	}
	s.Y = make([]float64, len(raw))
	for i, v := range raw {
		s.Y[i] = v / ref
		if i < len(s.Err) {
			s.Err[i] /= ref
		}
	}
}

// fig8ServerSplit is the fixed proportional-ish split used by Fig. 8b/8c.
var fig8ServerSplit = [2]int{34, 9}

// fig8bc sweeps cross-cluster connectivity for several (count, speed)
// settings of the high line-speed links. All curves are normalized by the
// weakest setting's value at x = 1, so the benefit of extra high-speed
// capacity is visible (y can exceed 1), as in the paper.
func fig8bc(o Options, id, title string, settings []struct {
	label string
	count int
	speed float64
}) (*Figure, error) {
	fig := &Figure{
		ID: id, Title: title,
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	xs := crossRatioXs(o.Quick)
	type curve struct {
		s   Series
		raw []float64
	}
	var curves []curve
	var ref float64
	for si, set := range settings {
		base := fig8Base()
		base.ServersPerLarge, base.ServersPerSmall = fig8ServerSplit[0], fig8ServerSplit[1]
		base.HighLinksPerLarge, base.HighCap = set.count, set.speed
		pts, err := sweepHetero(o, xs,
			func(x float64) hetero.Config {
				cfg := base
				cfg.CrossRatio = x
				return cfg
			},
			func(x float64) int64 { return labelSeed(set.label) + int64(x*1000) })
		if err != nil {
			return nil, err
		}
		s, raw := collectSeries(set.label, pts)
		if si == 0 {
			for _, p := range pts {
				if p.ok && p.x == 1.0 {
					ref = p.mean
				}
			}
		}
		curves = append(curves, curve{s, raw})
	}
	if ref == 0 && len(curves) > 0 { // quick grids may miss x=1.0 exactly
		for _, v := range curves[0].raw {
			if v > ref {
				ref = v
			}
		}
	}
	for _, c := range curves {
		normalizeBy(&c.s, c.raw, ref)
		fig.Series = append(fig.Series, c.s)
	}
	return fig, nil
}

// Fig8b: varying the high line-speed (2×, 4×, 8×) with 6 high-speed links
// per large switch.
func Fig8b(o Options) (*Figure, error) {
	o = o.withDefaults()
	return fig8bc(o, "8b", "Mixed line-speeds: varying high line-speed (6 H-links)",
		[]struct {
			label string
			count int
			speed float64
		}{
			{"High-speed = 2", 6, 2},
			{"High-speed = 4", 6, 4},
			{"High-speed = 8", 6, 8},
		})
}

// Fig8c: varying the number of high-speed links (3/6/9) at speed 4×.
func Fig8c(o Options) (*Figure, error) {
	o = o.withDefaults()
	return fig8bc(o, "8c", "Mixed line-speeds: varying high-speed link count (speed 4)",
		[]struct {
			label string
			count int
			speed float64
		}{
			{"3 H-links", 3, 4},
			{"6 H-links", 6, 4},
			{"9 H-links", 9, 4},
		})
}
