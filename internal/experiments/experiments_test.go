package experiments

import (
	"math"
	"strings"
	"testing"
)

func quickOpts() Options {
	return Options{Quick: true, Runs: 2, Seed: 1}
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() has %d entries, Registry %d", len(ids), len(Registry))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("figure %s in IDs but not Registry", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 20 || o.Seed != 1 || o.Epsilon != 0.08 {
		t.Fatalf("full defaults wrong: %+v", o)
	}
	q := Options{Quick: true}.withDefaults()
	if q.Runs != 3 || q.Epsilon != 0.12 {
		t.Fatalf("quick defaults wrong: %+v", q)
	}
}

func TestTSVFormat(t *testing.T) {
	fig := &Figure{
		ID: "x", Title: "T", XLabel: "xs", YLabel: "ys",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}, Err: []float64{0.1, 0.2}, Note: "n"},
			{Label: "b", X: []float64{5}, Y: []float64{6}},
		},
	}
	var sb strings.Builder
	if err := fig.TSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# Figure x: T", "# series: a", "# note: n", "1\t3\t0.1", "5\t6"} {
		if !strings.Contains(out, want) {
			t.Fatalf("TSV missing %q:\n%s", want, out)
		}
	}
}

// seriesValueAt fetches y at the given x (exact match).
func seriesValueAt(s Series, x float64) (float64, bool) {
	for i, xv := range s.X {
		if xv == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func TestFig1bObservedAboveBound(t *testing.T) {
	fig, err := Fig1b(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series %d", len(fig.Series))
	}
	obs, bound := fig.Series[0], fig.Series[1]
	for i := range obs.X {
		if obs.Y[i] < bound.Y[i]-1e-9 {
			t.Fatalf("observed ASPL %v below bound %v at x=%v", obs.Y[i], bound.Y[i], obs.X[i])
		}
	}
	// ASPL decreases with density.
	if obs.Y[0] <= obs.Y[len(obs.Y)-1] {
		t.Fatal("ASPL should fall as degree grows")
	}
}

func TestFig1aRatioShape(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver figure; skipped in -short")
	}
	fig, err := Fig1a(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y < 0 || y > 1.05 {
				t.Fatalf("%s: ratio %v out of [0,1] at x=%v", s.Label, y, s.X[i])
			}
		}
		// Ratio at the right edge (dense) should be high. Quick mode runs
		// the solver at ε=0.12, so measured ratios drift within the ε
		// class whenever the solver's path tie-breaking changes (the 5
		// servers/switch series sits at ≈0.60 ± ε-jitter); the margin here
		// asserts the shape without pinning one trajectory's luck — exact
		// outputs are pinned by the golden tests instead.
		if last := s.Y[len(s.Y)-1]; last < 0.55 {
			t.Fatalf("%s: dense-network ratio %v too low", s.Label, last)
		}
	}
}

func TestFig3RatioApproachesOne(t *testing.T) {
	fig, err := Fig3(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	var ratio Series
	for _, s := range fig.Series {
		if s.Label == "Ratio" {
			ratio = s
		}
	}
	if len(ratio.Y) == 0 {
		t.Fatal("no ratio series")
	}
	for i, y := range ratio.Y {
		if y < 1-1e-9 || y > 1.35 {
			t.Fatalf("ratio %v out of plausible band at x=%v", y, ratio.X[i])
		}
	}
	// Largest size should be within ~15% of the bound.
	if last := ratio.Y[len(ratio.Y)-1]; last > 1.15 {
		t.Fatalf("ratio at max size %v, want closer to 1", last)
	}
}

func TestFig4cPeakAtProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver figure; skipped in -short")
	}
	fig, err := Fig4c(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		yAt1, ok := seriesValueAt(s, 1.0)
		if !ok {
			t.Fatalf("%s: no x=1 point", s.Label)
		}
		if math.Abs(yAt1-1) > 1e-9 {
			// Peak-normalized: x=1 should be the (or near the) peak.
			if yAt1 < 0.95 {
				t.Fatalf("%s: proportional placement %v not near peak", s.Label, yAt1)
			}
		}
		// Extremes fall off.
		if edge, ok := seriesValueAt(s, 1.6); ok && edge > yAt1 {
			t.Fatalf("%s: skewed placement (%v) beats proportional (%v)", s.Label, edge, yAt1)
		}
	}
}

func TestFig6cPlateauAndDrop(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver figure; skipped in -short")
	}
	fig, err := Fig6c(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Label == "300 Servers" {
			continue // lightly-loaded case may not drop in the quick grid
		}
		low, okLow := seriesValueAt(s, 0.2)
		mid, okMid := seriesValueAt(s, 1.0)
		hi, okHi := seriesValueAt(s, 1.5)
		if !okMid {
			t.Fatalf("%s: missing x=1", s.Label)
		}
		if okLow && low > 0.7*mid {
			t.Fatalf("%s: no drop at sparse cut (%v vs %v)", s.Label, low, mid)
		}
		if okHi && math.Abs(hi-mid) > 0.15 {
			t.Fatalf("%s: plateau not flat (%v vs %v)", s.Label, hi, mid)
		}
	}
}

func TestFig11ThresholdAnnotated(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver figure; skipped in -short")
	}
	o := quickOpts()
	fig, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range fig.Series {
		if !strings.Contains(s.Note, "C̄*") {
			t.Fatalf("%s: missing threshold note", s.Label)
		}
		// Normalization: peak is 1.
		var peak float64
		for _, y := range s.Y {
			if y > peak {
				peak = y
			}
		}
		if math.Abs(peak-1) > 1e-9 {
			t.Fatalf("%s: peak %v != 1", s.Label, peak)
		}
	}
}

func TestFig13PacketWithinFewPercent(t *testing.T) {
	if testing.Short() {
		t.Skip("packet-sim figure; skipped in -short")
	}
	fig, err := Fig13(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	flow, pkt := fig.Series[0], fig.Series[1]
	for i := range flow.X {
		gap := math.Abs(flow.Y[i] - pkt.Y[i])
		if gap > 0.15 {
			t.Fatalf("DA=%v: packet %v vs flow %v differ by %v", flow.X[i], pkt.Y[i], flow.Y[i], gap)
		}
	}
}

func TestLabelSeedStable(t *testing.T) {
	a, b := labelSeed("3:1 Port-ratio"), labelSeed("3:1 Port-ratio")
	if a != b || a < 0 {
		t.Fatalf("labelSeed unstable or negative: %d %d", a, b)
	}
	if labelSeed("x") == labelSeed("y") {
		t.Fatal("distinct labels collided (unlucky but fix the hash)")
	}
}

func TestNormalizePeakZeroSafe(t *testing.T) {
	s := Series{X: []float64{1, 2}}
	normalizePeak(&s, []float64{0, 0})
	for _, y := range s.Y {
		if math.IsNaN(y) {
			t.Fatal("NaN from zero-peak normalization")
		}
	}
}
