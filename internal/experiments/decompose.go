package experiments

import (
	"repro/internal/analysis"
	"repro/internal/hetero"
	"repro/internal/scenario"
)

// decompSweep evaluates a sweep on the scenario engine (one detailed point
// per grid value) and returns the averaged §6.1 decomposition at every
// feasible point.
func decompSweep(o Options, mk func(x float64) hetero.Config, xs []float64, seedMix int64) ([]float64, []analysis.Decomposition, error) {
	pts := make([]scenario.Point, len(xs))
	for i, x := range xs {
		pts[i] = o.evalPoint(&scenario.Hetero{Cfg: mk(x)}, scenario.Permutation{}, seedMix+int64(x*1000))
	}
	details, err := o.sweepEngine().MeasureDetailed(pts)
	if err != nil {
		return nil, nil, err
	}
	var keptX []float64
	var ds []analysis.Decomposition
	for i, dets := range details {
		if dets == nil {
			continue // infeasible sweep point
		}
		var agg analysis.Decomposition
		for _, det := range dets {
			d := analysis.Decompose(det.G, det.Res)
			agg.Throughput += d.Throughput
			agg.Capacity += d.Capacity
			agg.Utilization += d.Utilization
			agg.SPL += d.SPL
			agg.Stretch += d.Stretch
		}
		n := float64(len(dets))
		agg.Throughput /= n
		agg.Capacity /= n
		agg.Utilization /= n
		agg.SPL /= n
		agg.Stretch /= n
		keptX = append(keptX, xs[i])
		ds = append(ds, agg)
	}
	return keptX, ds, nil
}

// decompFigure packages a normalized decomposition as a 4-series figure.
func decompFigure(id, title, xlabel string, xs []float64, ds []analysis.Decomposition) *Figure {
	ns := analysis.Normalize(xs, ds)
	return &Figure{
		ID: id, Title: title, XLabel: xlabel, YLabel: "Normalized Metric",
		Series: []Series{
			{Label: "Throughput", X: ns.X, Y: ns.Throughput},
			{Label: "Inverse SPL", X: ns.X, Y: ns.InvSPL},
			{Label: "Inverse Stretch", X: ns.X, Y: ns.InvStretch},
			{Label: "Utilization", X: ns.X, Y: ns.Util},
		},
	}
}

// Fig9a: decomposition of the Fig. 4c "480 Servers" server-placement
// sweep. The paper's finding: utilization tracks throughput best; path
// length contributes at the right edge.
func Fig9a(o Options) (*Figure, error) {
	o = o.withDefaults()
	xs, ds, err := decompSweep(o, func(x float64) hetero.Config {
		return hetero.Config{
			NumLarge: 20, NumSmall: 30,
			PortsLarge: 30, PortsSmall: 20,
			Servers:         480,
			ServersPerLarge: -1, ServersPerSmall: -1,
			ServerRatio: x,
		}
	}, serverRatioXs(o.Quick), 9100)
	if err != nil {
		return nil, err
	}
	return decompFigure("9a", "Throughput decomposition: server distribution (480 servers)",
		"Number of Servers at Large Switches (Ratio to Expected Under Random Distribution)", xs, ds), nil
}

// Fig9b: decomposition of the Fig. 6c "500 Servers" cross-cluster sweep.
func Fig9b(o Options) (*Figure, error) {
	o = o.withDefaults()
	xs, ds, err := decompSweep(o, func(x float64) hetero.Config {
		return hetero.Config{
			NumLarge: 20, NumSmall: 30,
			PortsLarge: 30, PortsSmall: 20,
			Servers:         500,
			ServersPerLarge: -1, ServersPerSmall: -1,
			ServerRatio: 1,
			CrossRatio:  x,
		}
	}, crossRatioXs(o.Quick), 9200)
	if err != nil {
		return nil, err
	}
	return decompFigure("9b", "Throughput decomposition: cross-cluster sweep (500 servers)",
		"Cross-cluster Links (Ratio to Expected Under Random Connection)", xs, ds), nil
}

// Fig9c: decomposition of the Fig. 8c "3 H-links" mixed line-speed sweep.
func Fig9c(o Options) (*Figure, error) {
	o = o.withDefaults()
	xs, ds, err := decompSweep(o, func(x float64) hetero.Config {
		cfg := fig8Base()
		cfg.ServersPerLarge, cfg.ServersPerSmall = fig8ServerSplit[0], fig8ServerSplit[1]
		cfg.HighLinksPerLarge, cfg.HighCap = 3, 4
		cfg.CrossRatio = x
		return cfg
	}, crossRatioXs(o.Quick), 9300)
	if err != nil {
		return nil, err
	}
	return decompFigure("9c", "Throughput decomposition: mixed line-speeds (3 H-links)",
		"Cross-cluster Links (Ratio to Expected Under Random Connection)", xs, ds), nil
}
