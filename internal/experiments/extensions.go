package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// rrgFromDegrees is a thin alias kept so the comparison code reads at the
// same altitude as the topo constructors.
func rrgFromDegrees(rng *rand.Rand, deg []int) (*graph.Graph, error) {
	return rrg.FromDegrees(rng, deg, 1)
}

// Comparison is the outcome of one equal-equipment topology comparison.
type Comparison struct {
	Name               string
	BaseT, ChallengerT float64 // mean per-flow throughput
	Gain               float64 // ChallengerT/BaseT - 1
}

// JellyfishVsFatTree reproduces the background claim the paper inherits
// from Jellyfish (NSDI 2012): a random graph built from the same switch
// equipment as a k-ary fat-tree supports more servers at full throughput
// (≈25% more at scale).
//
// The metric is the paper's own (§7): the fat-tree supports exactly k³/4
// servers at full throughput by construction and cannot host more without
// violating its port budget; the random graph on the same 5k²/4 k-port
// switches binary-searches the largest server count that still sees full
// throughput under random permutation traffic. BaseT/ChallengerT hold the
// two server counts; Gain is the equipment-for-equipment capacity gain.
func JellyfishVsFatTree(o Options, k int) (*Comparison, error) {
	o = o.withDefaults()
	base, err := topo.FatTree(k)
	if err != nil {
		return nil, err
	}
	nSwitches := base.N()
	ftServers := base.TotalServers() // k³/4, full throughput by design
	threshold := fullThroughputThreshold(o.Epsilon)
	ev := core.Evaluation{
		Workload: core.Permutation, Runs: o.Runs, Seed: o.Seed + 777,
		Epsilon: o.Epsilon, Parallel: o.Parallel,
	}
	build := func(servers int) core.Builder {
		return func(rng *rand.Rand) (*graph.Graph, error) {
			per, extra := servers/nSwitches, servers%nSwitches
			deg := make([]int, nSwitches)
			alloc := make([]int, nSwitches)
			for i := range deg {
				alloc[i] = per
				if i < extra {
					alloc[i]++
				}
				deg[i] = k - alloc[i]
				if deg[i] < 1 {
					return nil, fmt.Errorf("experiments: %d servers leave no network ports", servers)
				}
			}
			if sumInts(deg)%2 != 0 {
				deg[0]--
			}
			g, err := rrgFromDegrees(rng, deg)
			if err != nil {
				return nil, err
			}
			for i, s := range alloc {
				g.SetServers(i, s)
			}
			return g, nil
		}
	}
	jfServers, err := ev.MaxAtFullThroughput(ftServers/2, nSwitches*(k-1),
		func(int) float64 { return threshold }, build)
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Name:  fmt.Sprintf("Jellyfish vs fat-tree (k=%d): servers at full throughput", k),
		BaseT: float64(ftServers), ChallengerT: float64(jfServers),
		Gain: float64(jfServers)/float64(ftServers) - 1,
	}, nil
}

func sumInts(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// RRGVsHypercube reproduces the §1 claim (via [20]): random graphs have
// roughly 30% higher throughput than hypercubes at 512 nodes, with the
// gap growing with scale. dim is the hypercube dimension (degree).
func RRGVsHypercube(o Options, dim, serversPerSwitch int) (*Comparison, error) {
	o = o.withDefaults()
	n := 1 << dim
	hcT, err := meanThroughput(o, func(rng *rand.Rand) (*graph.Graph, error) {
		g, err := topo.Hypercube(dim)
		if err != nil {
			return nil, err
		}
		for u := 0; u < g.N(); u++ {
			g.SetServers(u, serversPerSwitch)
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	rrT, err := meanThroughput(o, func(rng *rand.Rand) (*graph.Graph, error) {
		g, err := topo.Jellyfish(rng, n, dim+serversPerSwitch, dim)
		if err != nil {
			return nil, err
		}
		return g, nil
	})
	if err != nil {
		return nil, err
	}
	return &Comparison{
		Name:  fmt.Sprintf("RRG vs hypercube (n=%d, degree=%d)", n, dim),
		BaseT: hcT, ChallengerT: rrT, Gain: rrT/hcT - 1,
	}, nil
}

func meanThroughput(o Options, build func(*rand.Rand) (*graph.Graph, error)) (float64, error) {
	vals, err := runner.Map(o.pool(), o.Runs, func(run int) (float64, error) {
		rng := rand.New(rand.NewSource(o.Seed*977 + int64(run)))
		g, err := build(rng)
		if err != nil {
			return 0, err
		}
		tm := traffic.Permutation(rng, traffic.HostsOf(g))
		res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: o.Epsilon})
		if err != nil {
			return 0, err
		}
		return res.Throughput, nil
	})
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(o.Runs), nil
}
