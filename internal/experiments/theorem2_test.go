package experiments

import "testing"

// Theorem 2's two regimes: throughput grows roughly linearly with the
// cross-cluster budget while the cut binds, then plateaus. We check
// (a) monotonicity up to noise, (b) the cut-bound regime at small q is
// near-linear, and (c) the plateau: quadrupling q from an already-large
// value gains little.
func TestTheorem2Regimes(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	o := Options{Quick: true, Runs: 2, Seed: 3}
	// n=12 per cluster, degree 6: total stubs 72 per side.
	pts, err := Theorem2Check(o, 12, 6, []int{4, 8, 16, 32, 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 4 {
		t.Fatalf("too few points: %d", len(pts))
	}
	// Throughput never decreases much with more cross links.
	for i := 1; i < len(pts); i++ {
		if pts[i].Throughput < 0.8*pts[i-1].Throughput {
			t.Fatalf("throughput fell from %v to %v at cross=%d",
				pts[i-1].Throughput, pts[i].Throughput, pts[i].CrossLinks)
		}
	}
	// Cut-bound regime: doubling 4 -> 8 should roughly double throughput.
	g01 := pts[1].Throughput / pts[0].Throughput
	if g01 < 1.4 || g01 > 2.8 {
		t.Fatalf("cut regime not linear: 2x cross gave %vx", g01)
	}
	// Plateau: 32 -> 48 should gain far less than proportionally.
	last, prev := pts[len(pts)-1], pts[len(pts)-2]
	gain := last.Throughput / prev.Throughput
	if gain > 1.3 {
		t.Fatalf("no plateau: 1.5x cross gave %vx at the top end", gain)
	}
	// Throughput is always bounded by the sparsest cut (Eq. 3 direction).
	for _, p := range pts {
		if p.Throughput > p.SparsestCut+1e-9 {
			t.Fatalf("cross=%d: throughput %v exceeds sparsest cut %v",
				p.CrossLinks, p.Throughput, p.SparsestCut)
		}
	}
}
