package experiments

import "testing"

// The Jellyfish background claim: an equal-equipment RRG beats the
// fat-tree under random permutation traffic. At k=4 and k=6 the gap is
// smaller than the paper's 25% asymptotic figure but must be positive.
func TestJellyfishBeatsFatTree(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	o := Options{Quick: true, Runs: 2, Seed: 2}
	c, err := JellyfishVsFatTree(o, 6)
	if err != nil {
		t.Fatal(err)
	}
	if c.BaseT <= 0 || c.ChallengerT <= 0 {
		t.Fatalf("degenerate throughputs: %+v", c)
	}
	if c.Gain < 0.05 {
		t.Fatalf("Jellyfish capacity gain only %.1f%%: %+v", c.Gain*100, c)
	}
}

// The §1 claim via [20]: RRGs beat hypercubes, with a healthy margin by
// 256 nodes (we use dim=8 rather than 512 nodes to keep test time down).
func TestRRGBeatsHypercube(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	o := Options{Quick: true, Runs: 2, Seed: 2, Epsilon: 0.12}
	c, err := RRGVsHypercube(o, 6, 2) // 64 nodes, degree 6
	if err != nil {
		t.Fatal(err)
	}
	if c.Gain < 0.05 {
		t.Fatalf("RRG gain over hypercube only %.1f%%: %+v", c.Gain*100, c)
	}
}
