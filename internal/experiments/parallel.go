package experiments

import (
	"errors"

	"repro/internal/hetero"
	"repro/internal/rrg"
	"repro/internal/runner"
)

// pool returns the worker pool used for grid-point evaluation, honoring
// Options.Parallel (0 = GOMAXPROCS, 1 = serial).
func (o Options) pool() *runner.Pool { return runner.New(o.Parallel) }

// sweepPoint is one evaluated point of a 1-D parameter sweep.
type sweepPoint struct {
	x, mean, std float64
	ok           bool // false: the point was physically infeasible, skip it
}

// sweepHetero evaluates a heterogeneous-topology sweep with one concurrent
// task per grid point, skipping infeasible points. Results come back in
// grid order, so downstream reduction is byte-identical to a serial run.
// wrap decorates real errors with the sweep's context.
func sweepHetero(o Options, xs []float64, cfgAt func(x float64) hetero.Config, seedAt func(x float64) int64, wrap func(x float64, err error) error) ([]sweepPoint, error) {
	return runner.Map(o.pool(), len(xs), func(i int) (sweepPoint, error) {
		x := xs[i]
		mean, std, err := heteroPoint(o, cfgAt(x), seedAt(x))
		if errors.Is(err, hetero.ErrInfeasiblePoint) || errors.Is(err, rrg.ErrInfeasible) {
			return sweepPoint{}, nil
		}
		if err != nil {
			return sweepPoint{}, wrap(x, err)
		}
		return sweepPoint{x: x, mean: mean, std: std, ok: true}, nil
	})
}

// collectSeries folds kept sweep points into a Series plus the raw means
// used by the normalization helpers.
func collectSeries(label string, pts []sweepPoint) (Series, []float64) {
	s := Series{Label: label}
	var raw []float64
	for _, p := range pts {
		if !p.ok {
			continue
		}
		s.X = append(s.X, p.x)
		raw = append(raw, p.mean)
		s.Err = append(s.Err, p.std)
	}
	return s, raw
}
