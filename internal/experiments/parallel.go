package experiments

import (
	"repro/internal/hetero"
	"repro/internal/runner"
	"repro/internal/scenario"
)

// pool returns the worker pool used for grid-point evaluation, honoring
// Options.Parallel (0 = GOMAXPROCS, 1 = serial).
func (o Options) pool() *runner.Pool { return runner.New(o.Parallel) }

// engine returns the scenario engine every figure runner executes on: the
// runner pool honoring Options.Parallel and the figure's solve cache (see
// Options.Cache — points sharing instances never re-solve). Infeasible
// builds are errors here, exactly as the pre-engine runners treated them;
// sweeps that legitimately skip unrealizable grid points use sweepEngine.
func (o Options) engine() *scenario.Engine {
	return &scenario.Engine{Parallel: o.Parallel, Cache: o.Cache}
}

// sweepEngine is engine with infeasible-point skipping, for the hetero
// parameter sweeps whose grids intentionally run past the physically
// realizable region (Fig. 4/6–11).
func (o Options) sweepEngine() *scenario.Engine {
	e := o.engine()
	e.SkipInfeasible = true
	return e
}

// evalPoint assembles the scenario point that core.Evaluation historically
// ran: runs seeded from (seed, run) with the default factor, permutation
// unless overridden, the figure's ε.
func (o Options) evalPoint(topo scenario.Topology, tr scenario.Traffic, seedMix int64) scenario.Point {
	return scenario.Point{
		Topo: topo, Traffic: tr, Eval: scenario.MCF{},
		Seed: o.Seed + seedMix, Runs: o.Runs, Epsilon: o.Epsilon,
	}
}

// sweepPoint is one evaluated point of a 1-D parameter sweep.
type sweepPoint struct {
	x, mean, std float64
	ok           bool // false: the point was physically infeasible, skip it
}

// sweepHetero evaluates a heterogeneous-topology sweep on the scenario
// engine, one point per grid value, skipping infeasible points. Results
// come back in grid order, so downstream reduction is byte-identical to a
// serial run.
func sweepHetero(o Options, xs []float64, cfgAt func(x float64) hetero.Config, seedAt func(x float64) int64) ([]sweepPoint, error) {
	pts := make([]scenario.Point, len(xs))
	for i, x := range xs {
		pts[i] = o.evalPoint(&scenario.Hetero{Cfg: cfgAt(x)}, scenario.Permutation{}, seedAt(x))
	}
	stats, err := o.sweepEngine().Measure(pts)
	if err != nil {
		return nil, err
	}
	out := make([]sweepPoint, len(xs))
	for i, st := range stats {
		out[i] = sweepPoint{x: xs[i], mean: st.Mean, std: st.Std, ok: st.OK}
	}
	return out, nil
}

// collectSeries folds kept sweep points into a Series plus the raw means
// used by the normalization helpers.
func collectSeries(label string, pts []sweepPoint) (Series, []float64) {
	s := Series{Label: label}
	var raw []float64
	for _, p := range pts {
		if !p.ok {
			continue
		}
		s.X = append(s.X, p.x)
		raw = append(raw, p.mean)
		s.Err = append(s.Err, p.std)
	}
	return s, raw
}
