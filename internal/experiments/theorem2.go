package experiments

import (
	"repro/internal/rrg"
	"repro/internal/scenario"
)

// Theorem2Point is one q-value of the §6.2 analysis on the restricted
// model: two equal clusters of constant-degree nodes, cross-cluster
// fraction q of the connectivity.
type Theorem2Point struct {
	CrossLinks  int
	Throughput  float64 // max concurrent flow for the bipartite demand
	SparsestCut float64 // non-uniform sparsest cut for K_{V1,V2} demand
}

// Theorem2Check instantiates the Theorem 2 setting — n nodes per cluster,
// degree d, unit capacities, complete bipartite demand K_{V1,V2} — and
// measures throughput and the sparsest-cut value across cross-cluster
// budgets. Each budget becomes two scenario points over the same
// twocluster × bipartite instance streams, one mcf-evaluated and one
// cut-evaluated. Theorem 2 predicts two regimes: T(q) = Θ(q), tracking
// the sparsest cut, until q* = Θ(p/⟨D⟩); beyond that a plateau within a
// constant factor of the peak.
func Theorem2Check(o Options, nPerCluster, degree int, crossBudgets []int) ([]Theorem2Point, error) {
	o = o.withDefaults()
	// Materialize points for the feasible budgets (x > 0) only, mirroring
	// the historical skip of degenerate zero-cross instances.
	var kept []int
	var pts []scenario.Point
	for _, cross := range crossBudgets {
		x, err := rrg.FeasibleCross(cross, nPerCluster*degree, nPerCluster*degree)
		if err != nil {
			return nil, err
		}
		if x == 0 {
			continue
		}
		mk := func(eval scenario.Evaluator) scenario.Point {
			return scenario.Point{
				Topo:    &scenario.TwoCluster{N: nPerCluster, Deg: degree, Cross: x},
				Traffic: scenario.Bipartite{N1: nPerCluster},
				Eval:    eval,
				Seed:    o.Seed*613 + int64(cross*100), SeedFactor: 1,
				Runs: o.Runs, Epsilon: o.Epsilon,
			}
		}
		kept = append(kept, x)
		pts = append(pts, mk(scenario.MCF{}), mk(scenario.Cut{N1: nPerCluster}))
	}
	stats, err := o.engine().Measure(pts)
	if err != nil {
		return nil, err
	}
	out := make([]Theorem2Point, len(kept))
	for i, x := range kept {
		out[i] = Theorem2Point{
			CrossLinks:  x,
			Throughput:  stats[2*i].Mean,
			SparsestCut: stats[2*i+1].Mean,
		}
	}
	return out, nil
}
