package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/spectral"
	"repro/internal/traffic"
)

// Theorem2Point is one q-value of the §6.2 analysis on the restricted
// model: two equal clusters of constant-degree nodes, cross-cluster
// fraction q of the connectivity.
type Theorem2Point struct {
	CrossLinks  int
	Throughput  float64 // max concurrent flow for the bipartite demand
	SparsestCut float64 // non-uniform sparsest cut for K_{V1,V2} demand
}

// Theorem2Check instantiates the Theorem 2 setting — n nodes per cluster,
// degree d, unit capacities, complete bipartite demand K_{V1,V2} — and
// measures throughput and the sparsest-cut value across cross-cluster
// budgets. Theorem 2 predicts two regimes: T(q) = Θ(q), tracking the
// sparsest cut, until q* = Θ(p/⟨D⟩); beyond that a plateau within a
// constant factor of the peak.
func Theorem2Check(o Options, nPerCluster, degree int, crossBudgets []int) ([]Theorem2Point, error) {
	o = o.withDefaults()
	type point struct {
		p  Theorem2Point
		ok bool
	}
	pts, err := runner.Map(o.pool(), len(crossBudgets), func(i int) (point, error) {
		cross := crossBudgets[i]
		deg := make([]int, nPerCluster)
		for i := range deg {
			deg[i] = degree
		}
		x, err := rrg.FeasibleCross(cross, nPerCluster*degree, nPerCluster*degree)
		if err != nil {
			return point{}, err
		}
		if x == 0 {
			return point{}, nil
		}
		var tSum, cutSum float64
		runs := o.Runs
		for run := 0; run < runs; run++ {
			rng := rand.New(rand.NewSource(o.Seed*613 + int64(cross*100+run)))
			g, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{
				DegA: deg, DegB: deg, CrossLinks: x, LinkCap: 1,
			})
			if err != nil {
				return point{}, fmt.Errorf("theorem2 cross=%d: %w", cross, err)
			}
			flows := bipartiteDemand(g, nPerCluster)
			res, err := mcf.Solve(g, flows, mcf.Options{Epsilon: o.Epsilon})
			if err != nil {
				return point{}, err
			}
			inV1 := make([]bool, g.N())
			for i := 0; i < nPerCluster; i++ {
				inV1[i] = true
			}
			tSum += res.Throughput
			cutSum += spectral.SparsestCutBipartite(g, inV1)
		}
		return point{p: Theorem2Point{
			CrossLinks:  x,
			Throughput:  tSum / float64(runs),
			SparsestCut: cutSum / float64(runs),
		}, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	var out []Theorem2Point
	for _, p := range pts {
		if p.ok {
			out = append(out, p.p)
		}
	}
	return out, nil
}

// bipartiteDemand builds the K_{V1,V2} demand graph: one unit between every
// cross-cluster ordered pair.
func bipartiteDemand(g *graph.Graph, nPerCluster int) []traffic.Flow {
	var flows []traffic.Flow
	for u := 0; u < nPerCluster; u++ {
		for v := nPerCluster; v < g.N(); v++ {
			flows = append(flows,
				traffic.Flow{Src: u, Dst: v, Demand: 1},
				traffic.Flow{Src: v, Dst: u, Demand: 1},
			)
		}
	}
	return flows
}
