// Package experiments regenerates every figure of the paper's evaluation.
// Each Fig* function returns a Figure whose series mirror the curves the
// paper plots; the topobench command and the repository benchmarks wrap
// these runners.
//
// Options.Quick trades point density and run counts for speed while
// preserving each figure's qualitative shape; the defaults reproduce the
// paper's full parameter grids with 20 runs per point.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/scenario"
)

// Options configures all experiment runners.
type Options struct {
	// Runs per data point (default 20, the paper's count; Quick uses 3).
	Runs int
	// Seed is the base RNG seed (default 1).
	Seed int64
	// Epsilon is the flow-solver approximation parameter (default 0.08;
	// Quick uses 0.12).
	Epsilon float64
	// Quick reduces grids and runs for fast regeneration (benchmarks).
	Quick bool
	// Parallel is the worker count used for independent work at every
	// level — figure grid points, evaluation runs, and packet simulations.
	// 0 means GOMAXPROCS; 1 forces fully serial execution. Because every
	// task derives its RNG deterministically from (Seed, point index),
	// parallel and serial runs produce byte-identical figures.
	Parallel int
	// Cache is the content-addressed solve cache the figure's scenario
	// points are memoized in. nil gives every figure invocation a private
	// cache: instances shared within one figure (e.g. a sizing search
	// repeated across chunky fractions) still solve once, while repeated
	// invocations — benchmarks, the parallel-vs-serial determinism tests —
	// measure real work. Pass scenario.Default (as topobench does) to
	// share solves across figures in one process. Cached values are
	// byte-identical to cold solves, so this field never changes output.
	Cache *scenario.Cache
}

func (o Options) withDefaults() Options {
	if o.Cache == nil {
		o.Cache = scenario.NewCache()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Runs <= 0 {
		if o.Quick {
			o.Runs = 3
		} else {
			o.Runs = 20
		}
	}
	if o.Epsilon <= 0 {
		if o.Quick {
			o.Epsilon = 0.12
		} else {
			o.Epsilon = 0.08
		}
	}
	return o
}

// Series is one curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	// Err holds one standard deviation per point (empty when not
	// applicable).
	Err []float64
	// Note carries per-series annotations such as the Fig. 11 C̄*
	// threshold position.
	Note string
}

// Figure is a regenerated paper figure.
type Figure struct {
	ID     string // e.g. "6a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// TSV writes the figure as tab-separated values, one block per series.
func (f *Figure) TSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# Figure %s: %s\n# x: %s\n# y: %s\n", f.ID, f.Title, f.XLabel, f.YLabel); err != nil {
		return err
	}
	for _, s := range f.Series {
		if _, err := fmt.Fprintf(w, "\n# series: %s\n", s.Label); err != nil {
			return err
		}
		if s.Note != "" {
			if _, err := fmt.Fprintf(w, "# note: %s\n", s.Note); err != nil {
				return err
			}
		}
		for i := range s.X {
			var b strings.Builder
			fmt.Fprintf(&b, "%g\t%g", s.X[i], s.Y[i])
			if i < len(s.Err) {
				fmt.Fprintf(&b, "\t%g", s.Err[i])
			}
			if _, err := fmt.Fprintln(w, b.String()); err != nil {
				return err
			}
		}
	}
	return nil
}

// Runner regenerates one figure.
type Runner func(Options) (*Figure, error)

// Registry maps figure IDs to their runners.
var Registry = map[string]Runner{
	"1a":  Fig1a,
	"1b":  Fig1b,
	"2a":  Fig2a,
	"2b":  Fig2b,
	"3":   Fig3,
	"4a":  Fig4a,
	"4b":  Fig4b,
	"4c":  Fig4c,
	"5":   Fig5,
	"6a":  Fig6a,
	"6b":  Fig6b,
	"6c":  Fig6c,
	"7a":  Fig7a,
	"7b":  Fig7b,
	"8a":  Fig8a,
	"8b":  Fig8b,
	"8c":  Fig8c,
	"9a":  Fig9a,
	"9b":  Fig9b,
	"9c":  Fig9c,
	"10a": Fig10a,
	"10b": Fig10b,
	"11":  Fig11,
	"12a": Fig12a,
	"12b": Fig12b,
	"12c": Fig12c,
	"13":  Fig13,
}

// IDs returns the registered figure IDs in display order.
func IDs() []string {
	return []string{
		"1a", "1b", "2a", "2b", "3",
		"4a", "4b", "4c", "5",
		"6a", "6b", "6c", "7a", "7b",
		"8a", "8b", "8c",
		"9a", "9b", "9c",
		"10a", "10b", "11",
		"12a", "12b", "12c", "13",
	}
}
