package experiments

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/runner"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// FailurePoint is one link-failure level of a resilience sweep.
type FailurePoint struct {
	Fraction   float64
	Throughput float64 // mean over runs, normalized to the zero-failure value
	Absolute   float64 // raw mean throughput
	// Disconnected counts runs whose failures disconnected some commodity
	// (those runs contribute zero throughput).
	Disconnected int
}

// FailureSweep measures throughput degradation under random link failures
// — the graceful-degradation property random graphs are known for. The
// builder creates the intact topology per run; the same permutation TM is
// solved after failing each fraction of links. Runs are independent (each
// has its own RNG seeded from (Seed, run)) and execute concurrently; the
// per-fraction loop inside a run stays serial because it consumes the
// run's RNG sequentially. Per-run results are reduced in run order, so the
// sweep is byte-identical to a serial execution.
func FailureSweep(o Options, build func(rng *rand.Rand) (*graph.Graph, error), fractions []float64) ([]FailurePoint, error) {
	o = o.withDefaults()
	out := make([]FailurePoint, len(fractions))
	for i, frac := range fractions {
		out[i].Fraction = frac
	}
	type runOut struct {
		absolute     []float64
		disconnected []int
		baseline     float64
	}
	runs, err := runner.Map(o.pool(), o.Runs, func(run int) (runOut, error) {
		ro := runOut{
			absolute:     make([]float64, len(fractions)),
			disconnected: make([]int, len(fractions)),
		}
		rng := rand.New(rand.NewSource(o.Seed*389 + int64(run)))
		g, err := build(rng)
		if err != nil {
			return ro, err
		}
		tm := traffic.Permutation(rng, traffic.HostsOf(g))
		for i, frac := range fractions {
			fg, err := g.FailRandomLinks(rng, frac)
			if err != nil {
				return ro, err
			}
			res, err := mcf.Solve(fg, tm.Flows, mcf.Options{Epsilon: o.Epsilon})
			if errors.Is(err, mcf.ErrUnreachable) {
				ro.disconnected[i]++
				continue
			}
			if err != nil {
				return ro, fmt.Errorf("failure sweep frac=%v: %w", frac, err)
			}
			ro.absolute[i] += res.Throughput
			if frac == 0 {
				ro.baseline += res.Throughput
			}
		}
		return ro, nil
	})
	if err != nil {
		return nil, err
	}
	var baseline float64
	for _, ro := range runs {
		for i := range out {
			out[i].Absolute += ro.absolute[i]
			out[i].Disconnected += ro.disconnected[i]
		}
		baseline += ro.baseline
	}
	for i := range out {
		out[i].Absolute /= float64(o.Runs)
	}
	if baseline > 0 {
		baseline /= float64(o.Runs)
		for i := range out {
			out[i].Throughput = out[i].Absolute / baseline
		}
	}
	return out, nil
}

// RRGVsFatTreeFailures compares graceful degradation: the same failure
// fractions applied to an RRG and a fat-tree of comparable equipment.
// Returns (rrg, fattree) sweeps. k is the fat-tree arity.
func RRGVsFatTreeFailures(o Options, k int, fractions []float64) (rrgPts, ftPts []FailurePoint, err error) {
	base, err := topo.FatTree(k)
	if err != nil {
		return nil, nil, err
	}
	nSwitches, servers := base.N(), base.TotalServers()
	ftPts, err = FailureSweep(o, func(rng *rand.Rand) (*graph.Graph, error) {
		return topo.FatTree(k)
	}, fractions)
	if err != nil {
		return nil, nil, err
	}
	rrgPts, err = FailureSweep(o, func(rng *rand.Rand) (*graph.Graph, error) {
		per, extra := servers/nSwitches, servers%nSwitches
		deg := make([]int, nSwitches)
		alloc := make([]int, nSwitches)
		for i := range deg {
			alloc[i] = per
			if i < extra {
				alloc[i]++
			}
			deg[i] = k - alloc[i]
		}
		if sumInts(deg)%2 != 0 {
			deg[0]--
		}
		g, err := rrgFromDegrees(rng, deg)
		if err != nil {
			return nil, err
		}
		for i, s := range alloc {
			g.SetServers(i, s)
		}
		return g, nil
	}, fractions)
	if err != nil {
		return nil, nil, err
	}
	return rrgPts, ftPts, nil
}
