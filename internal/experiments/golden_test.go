package experiments

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/store"
)

// Golden regression tests pin the quick-mode output of representative
// figure runners byte-for-byte. Solver or experiment changes that move any
// result — even within the ε class — fail loudly; when the drift is
// intended (a solver improvement changed trajectories), regenerate with
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff like any other code change. The runners are
// deterministic by construction (fixed seeds, parallel == serial), so the
// files are stable across machines and -race.
var update = flag.Bool("update", false, "rewrite the golden files with current outputs")

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output drifted from %s — if the change is intended, regenerate with -update and review the diff.\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// goldenOpts are the pinned quick-mode settings (benchmark-grade grids).
func goldenOpts() Options { return Options{Quick: true, Runs: 2, Seed: 1} }

func goldenFigure(t *testing.T, id string) {
	t.Helper()
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	fig, err := Registry[id](goldenOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.TSV(&buf); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig"+id+"_quick.tsv", buf.Bytes())
}

func TestGoldenFig2a(t *testing.T) { goldenFigure(t, "2a") }
func TestGoldenFig9a(t *testing.T) { goldenFigure(t, "9a") }

// TestGoldenFig2aWithStore pins the store's can-never-change-results
// contract against the golden files: the same figure run with the solve
// cache tiered onto a disk store — cold, then again from a fresh handle
// answering out of that store — must match the committed golden bytes
// exactly. (No -update here: the plain TestGoldenFig2a owns the file;
// a store-enabled run that drifts from it is a store bug.)
func TestGoldenFig2aWithStore(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	dir := t.TempDir()
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "fig2a_quick.tsv"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	for _, pass := range []string{"cold", "warm-restart"} {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache := scenario.NewCache()
		cache.SetBackend(st)
		opts := goldenOpts()
		opts.Cache = cache
		fig, err := Registry["2a"](opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := fig.TSV(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%s store-backed output differs from golden bytes", pass)
		}
		if pass == "warm-restart" {
			if cs := cache.Stats(); cs.StoreHits == 0 {
				t.Fatalf("warm restart did not answer from the store: %+v", cs)
			}
		}
	}
}

func TestGoldenTheorem2Check(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver experiment; skipped in -short")
	}
	pts, err := Theorem2Check(goldenOpts(), 12, 6, []int{4, 8, 16, 32, 48})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintln(&buf, "# Theorem2Check n=12 degree=6 quick runs=2 seed=1")
	fmt.Fprintln(&buf, "# cross\tthroughput\tsparsest_cut")
	for _, p := range pts {
		fmt.Fprintf(&buf, "%d\t%g\t%g\n", p.CrossLinks, p.Throughput, p.SparsestCut)
	}
	goldenCompare(t, "theorem2_quick.tsv", buf.Bytes())
}
