package experiments

import (
	"fmt"

	"repro/internal/hetero"
	"repro/internal/scenario"
)

// serverRatioXs is the Fig. 4 x grid (ratio of servers-at-large-switches
// to the port-proportional expectation).
func serverRatioXs(quick bool) []float64 {
	if quick {
		return []float64{0.4, 0.7, 1.0, 1.3, 1.6}
	}
	return []float64{0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4}
}

// sweepServerRatio evaluates one Fig. 4 curve: throughput across server
// placement ratios (one scenario point per ratio), normalized by the
// curve's peak. Infeasible ratios are skipped.
func sweepServerRatio(o Options, label string, base hetero.Config) (Series, error) {
	pts, err := sweepHetero(o, serverRatioXs(o.Quick),
		func(x float64) hetero.Config {
			cfg := base
			cfg.ServersPerLarge, cfg.ServersPerSmall = -1, -1
			cfg.ServerRatio = x
			return cfg
		},
		func(x float64) int64 { return labelSeed(label) })
	if err != nil {
		return Series{Label: label}, err
	}
	s, raw := collectSeries(label, pts)
	normalizePeak(&s, raw)
	return s, nil
}

// normalizePeak rescales Y (from raw) and Err so the curve's peak is 1.
func normalizePeak(s *Series, raw []float64) {
	var peak float64
	for _, v := range raw {
		if v > peak {
			peak = v
		}
	}
	if peak == 0 {
		s.Y = append([]float64(nil), raw...)
		return
	}
	s.Y = make([]float64, len(raw))
	for i, v := range raw {
		s.Y[i] = v / peak
		if i < len(s.Err) {
			s.Err[i] /= peak
		}
	}
}

func labelSeed(label string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range label {
		h = (h ^ int64(c)) * 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h % 1_000_000
}

// Fig4a: distributing servers across switch types — port ratios 3:1, 2:1,
// 3:2 with 20 large and 40 small switches. Peak expected at x = 1
// (port-proportional placement).
func Fig4a(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "4a", Title: "Server distribution vs. throughput (port ratios)",
		XLabel: "Number of Servers at Large Switches (Ratio to Expected Under Random Distribution)",
		YLabel: "Normalized Throughput",
	}
	cases := []struct {
		label      string
		portsSmall int
	}{
		{"3:1 Port-ratio", 10},
		{"2:1 Port-ratio", 15},
		{"3:2 Port-ratio", 20},
	}
	for _, c := range cases {
		base := hetero.Config{
			NumLarge: 20, NumSmall: 40,
			PortsLarge: 30, PortsSmall: c.portsSmall,
			Servers: serversForPool(20*30 + 40*c.portsSmall),
		}
		s, err := sweepServerRatio(o, c.label, base)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// serversForPool picks a server count leaving roughly 55% of ports for the
// network, a mid-oversubscription operating point.
func serversForPool(totalPorts int) int {
	return int(0.45 * float64(totalPorts))
}

// Fig4b: server distribution with varying counts of small switches.
func Fig4b(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "4b", Title: "Server distribution vs. throughput (switch counts)",
		XLabel: "Number of Servers at Large Switches (Ratio to Expected Under Random Distribution)",
		YLabel: "Normalized Throughput",
	}
	for _, nSmall := range []int{20, 30, 40} {
		base := hetero.Config{
			NumLarge: 20, NumSmall: nSmall,
			PortsLarge: 30, PortsSmall: 20,
			Servers: serversForPool(20*30 + nSmall*20),
		}
		s, err := sweepServerRatio(o, fmt.Sprintf("%d Small Switches", nSmall), base)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig4c: server distribution with varying oversubscription (480/510/540
// servers on 20 large 30-port and 30 small 20-port switches).
func Fig4c(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "4c", Title: "Server distribution vs. throughput (oversubscription)",
		XLabel: "Number of Servers at Large Switches (Ratio to Expected Under Random Distribution)",
		YLabel: "Normalized Throughput",
	}
	for _, servers := range []int{480, 510, 540} {
		base := hetero.Config{
			NumLarge: 20, NumSmall: 30,
			PortsLarge: 30, PortsSmall: 20,
			Servers: servers,
		}
		s, err := sweepServerRatio(o, fmt.Sprintf("%d Servers", servers), base)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5: power-law port counts; servers attached in proportion to
// degree^beta. The paper finds beta = 1 (proportional) among the optimal
// settings, with a broad optimum through beta ≈ 1.4.
func Fig5(o Options) (*Figure, error) {
	o = o.withDefaults()
	betas := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6}
	if o.Quick {
		betas = []float64{0, 0.5, 1.0, 1.4}
	}
	fig := &Figure{
		ID: "5", Title: "Power-law port counts: servers ∝ degree^β",
		XLabel: "β", YLabel: "Normalized Throughput",
	}
	const nSwitches = 40
	for _, avg := range []float64{6, 8, 10} {
		label := fmt.Sprintf("Avg port-count %d", int(avg))
		// Cap the tail at min(2.5·avg, n/2): a port count near n would
		// demand near-complete connectivity and leave no simple graph
		// after servers are attached. The port sequence itself is drawn
		// inside the plrrg topology from pseed — one sequence per average,
		// shared across betas and runs, so the curve isolates beta.
		kmax := int(2.5 * avg)
		if kmax > nSwitches/2 {
			kmax = nSwitches / 2
		}
		s := Series{Label: label}
		pts := make([]scenario.Point, len(betas))
		for i, beta := range betas {
			pts[i] = o.evalPoint(&scenario.PowerLawRRG{
				N: nSwitches, Avg: avg, Gamma: 2.2, Kmin: 3, Kmax: kmax,
				SFrac: 0.4, Beta: beta, PortSeed: o.Seed*31 + int64(avg),
			}, scenario.Permutation{}, int64(avg*100)+int64(beta*10))
		}
		stats, err := o.engine().Measure(pts)
		if err != nil {
			return nil, err
		}
		var raw []float64
		for i, st := range stats {
			s.X = append(s.X, betas[i])
			raw = append(raw, st.Mean)
			s.Err = append(s.Err, st.Std)
		}
		// The paper normalizes each curve to its β=1 value; x=1 is then
		// directly comparable across curves.
		var ref float64
		for i, b := range betas {
			if b == 1.0 {
				ref = raw[i]
			}
		}
		if ref == 0 {
			normalizePeak(&s, raw)
		} else {
			s.Y = make([]float64, len(raw))
			for i, v := range raw {
				s.Y[i] = v / ref
				s.Err[i] /= ref
			}
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
