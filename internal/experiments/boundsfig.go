package experiments

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/scenario"
)

// boundSweep measures, for every cross-cluster ratio (one detailed
// scenario point per ratio), the observed throughput and the Eq. 1
// two-cluster upper bound (averaged over runs). It also reports the
// measured cross-cluster capacity C̄ at every point.
func boundSweep(o Options, cfgAt func(x float64) hetero.Config, xs []float64, seedMix int64) (keptX, obs, bnd, crossCap []float64, n1, n2 int, err error) {
	pts := make([]scenario.Point, len(xs))
	for i, x := range xs {
		pts[i] = o.evalPoint(&scenario.Hetero{Cfg: cfgAt(x)}, scenario.Permutation{}, seedMix+int64(x*1000))
	}
	details, err := o.sweepEngine().MeasureDetailed(pts)
	if err != nil {
		return nil, nil, nil, nil, 0, 0, err
	}
	for i, dets := range details {
		if dets == nil {
			continue // infeasible sweep point
		}
		mask := hetero.LargeClusterMask(cfgAt(xs[i]))
		var tMean, bMean, cMean float64
		for _, det := range dets {
			g := det.G
			aspl, _ := g.ASPL()
			s1, s2 := clusterServers(g, mask)
			n1, n2 = s1, s2
			cbar := g.CrossCapacity(mask)
			tMean += det.Res.Throughput
			bMean += bounds.TwoClusterBound(g.TotalCapacity(), cbar, aspl, s1, s2)
			cMean += cbar
		}
		n := float64(len(dets))
		keptX = append(keptX, xs[i])
		obs = append(obs, tMean/n)
		bnd = append(bnd, bMean/n)
		crossCap = append(crossCap, cMean/n)
	}
	return keptX, obs, bnd, crossCap, n1, n2, nil
}

func clusterServers(g *graph.Graph, inS []bool) (s1, s2 int) {
	for u := 0; u < g.N(); u++ {
		if inS[u] {
			s1 += g.Servers(u)
		} else {
			s2 += g.Servers(u)
		}
	}
	return s1, s2
}

// Fig10a: the Eq. 1 analytical bound vs. observed throughput for two
// uniform line-speed cases. The bound should track the observed curve
// closely, including the knee.
func Fig10a(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "10a", Title: "Analytical bound vs. observed throughput (uniform line-speed)",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	cases := []struct {
		name string
		cfg  func(x float64) hetero.Config
	}{
		{"A", func(x float64) hetero.Config {
			return hetero.Config{
				NumLarge: 20, NumSmall: 40, PortsLarge: 30, PortsSmall: 10,
				Servers: serversForPool(20*30 + 40*10), ServersPerLarge: -1, ServersPerSmall: -1,
				ServerRatio: 1, CrossRatio: x,
			}
		}},
		{"B", func(x float64) hetero.Config {
			return hetero.Config{
				NumLarge: 20, NumSmall: 30, PortsLarge: 30, PortsSmall: 20,
				Servers: 500, ServersPerLarge: -1, ServersPerSmall: -1,
				ServerRatio: 1, CrossRatio: x,
			}
		}},
	}
	for ci, c := range cases {
		xs, obs, bnd, _, _, _, err := boundSweep(o, c.cfg, crossRatioXs(o.Quick), int64(10100+ci))
		if err != nil {
			return nil, err
		}
		// Normalize bound and observation by the same constant (the peak
		// observation) so their gap stays interpretable.
		ref := maxOf(obs)
		fig.Series = append(fig.Series,
			Series{Label: "Bound " + c.name, X: xs, Y: scaled(bnd, ref)},
			Series{Label: "Throughput " + c.name, X: xs, Y: scaled(obs, ref)},
		)
	}
	return fig, nil
}

// Fig10b: the same comparison with mixed line-speeds, where the bound can
// be looser (three cases with 3/6/9 high-speed links).
func Fig10b(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "10b", Title: "Analytical bound vs. observed throughput (mixed line-speeds)",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	for ci, hl := range []int{3, 6, 9} {
		name := string(rune('A' + ci))
		cfgAt := func(x float64) hetero.Config {
			cfg := fig8Base()
			cfg.ServersPerLarge, cfg.ServersPerSmall = fig8ServerSplit[0], fig8ServerSplit[1]
			cfg.HighLinksPerLarge, cfg.HighCap = hl, 4
			cfg.CrossRatio = x
			return cfg
		}
		xs, obs, bnd, _, _, _, err := boundSweep(o, cfgAt, crossRatioXs(o.Quick), int64(10200+ci))
		if err != nil {
			return nil, err
		}
		ref := maxOf(obs)
		fig.Series = append(fig.Series,
			Series{Label: "Bound " + name, X: xs, Y: scaled(bnd, ref)},
			Series{Label: "Throughput " + name, X: xs, Y: scaled(obs, ref)},
		)
	}
	return fig, nil
}

// Fig11: for a family of two-cluster configurations, mark the analytically
// determined cross-cluster capacity threshold C̄* = T*·2n1n2/(n1+n2) below
// which throughput must drop from its peak. Every curve should be below
// peak to the left of its mark.
func Fig11(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "11", Title: "Throughput profile vs. cross-cluster connectivity, with C̄* thresholds",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	type cfgCase struct {
		nSmall, portsSmall, servers int
	}
	var cases []cfgCase
	smalls := []int{20, 30, 40}
	portss := []int{10, 15, 20}
	if o.Quick {
		smalls = []int{20, 40}
		portss = []int{10, 20}
	}
	for _, ns := range smalls {
		for _, ps := range portss {
			pool := 20*30 + ns*ps
			cases = append(cases,
				cfgCase{ns, ps, int(0.40 * float64(pool))},
				cfgCase{ns, ps, int(0.50 * float64(pool))},
			)
		}
	}
	xs := []float64{0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	if o.Quick {
		xs = []float64{0.1, 0.2, 0.4, 0.7, 1.0}
	}
	for ci, c := range cases {
		label := fmt.Sprintf("%dS x %dp, %d servers", c.nSmall, c.portsSmall, c.servers)
		cfgAt := func(x float64) hetero.Config {
			return hetero.Config{
				NumLarge: 20, NumSmall: c.nSmall, PortsLarge: 30, PortsSmall: c.portsSmall,
				Servers: c.servers, ServersPerLarge: -1, ServersPerSmall: -1,
				ServerRatio: 1, CrossRatio: x,
			}
		}
		keptX, obs, _, crossCap, n1, n2, err := boundSweep(o, cfgAt, xs, int64(11000+ci))
		if err != nil {
			return nil, err
		}
		if len(obs) == 0 {
			continue
		}
		tstar := maxOf(obs)
		cstar := bounds.CrossCapThreshold(tstar, n1, n2)
		// Locate the threshold on the x axis by interpolating measured C̄.
		markX := math.NaN()
		for i := 0; i < len(keptX); i++ {
			if crossCap[i] >= cstar {
				if i == 0 {
					markX = keptX[0]
				} else {
					// Linear interpolation between i-1 and i.
					f := (cstar - crossCap[i-1]) / (crossCap[i] - crossCap[i-1])
					markX = keptX[i-1] + f*(keptX[i]-keptX[i-1])
				}
				break
			}
		}
		s := Series{Label: label, X: keptX, Y: scaled(obs, tstar)}
		s.Note = fmt.Sprintf("C̄* = %.1f (T* = %.4f, n1 = %d, n2 = %d); threshold at x ≈ %.3f", cstar, tstar, n1, n2, markX)
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

func maxOf(xs []float64) float64 {
	var m float64
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

func scaled(xs []float64, ref float64) []float64 {
	if ref == 0 {
		return append([]float64(nil), xs...)
	}
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = v / ref
	}
	return out
}
