package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// Fig13: packet-level MPTCP throughput vs. the flow-level optimum on the
// rewired VL2 topology, under random permutation traffic. Topologies are
// deliberately oversubscribed (ToR count ≈ 1.3× the full-throughput point)
// so the flow value is close to but below 1, exposing any routing or
// congestion-control inefficiency, as in §8.2.
//
// Each DA becomes two scenario points sharing topology and traffic specs
// — one mcf-evaluated, one packet-evaluated — whose runs draw identical
// RNG streams, so the pair measures the same instances. The packet
// evaluator certifies per-node packet conservation on every simulation.
//
// The paper's curve uses DI = 28 with DA from 6 to 18; the quick grid
// shrinks to DI = 16, DA up to 12 and fewer servers per ToR to bound the
// event count.
func Fig13(o Options) (*Figure, error) {
	o = o.withDefaults()
	di := 28
	das := []int{6, 8, 10, 12, 14, 16, 18}
	serversPerToR := 20
	subflows := 8
	warmup, measure := 60.0, 240.0
	if o.Quick {
		di = 16
		das = []int{6, 8, 10}
		subflows = 4
		warmup, measure = 40, 160
	}
	runs := o.Runs
	if runs > 5 {
		runs = 5 // packet simulations dominate runtime
	}
	flowS := Series{Label: "Flow-level"}
	pktS := Series{Label: "Packet-level"}
	mkPoint := func(da int, eval scenario.Evaluator) scenario.Point {
		cfg := scenario.RewiredVL2{DA: da, DI: di, ServersPerToR: serversPerToR}
		// Size at ~1.3x the designed full-throughput point so λ < 1 and
		// transport inefficiency is visible.
		designed := da * di / 4
		cfg.ToRs = designed + designed/3
		if cfg.ToRs < 3 {
			cfg.ToRs = 3
		}
		return scenario.Point{
			Topo: &cfg, Traffic: scenario.Permutation{}, Eval: eval,
			Seed: o.Seed*131 + int64(da*100), SeedFactor: 1,
			Runs: runs, Epsilon: o.Epsilon,
		}
	}
	var pts []scenario.Point
	for _, da := range das {
		pts = append(pts,
			mkPoint(da, scenario.MCF{}),
			mkPoint(da, scenario.Packet{Subflows: subflows, Warmup: warmup, Measure: measure}))
	}
	vals, err := o.engine().MeasureRuns(pts)
	if err != nil {
		return nil, fmt.Errorf("fig13: %w", err)
	}
	for daIdx, da := range das {
		var flowSum, pktSum float64
		for run := 0; run < runs; run++ {
			flowSum += capAtOne(vals[2*daIdx][run])
			pktSum += capAtOne(vals[2*daIdx+1][run])
		}
		flowS.X = append(flowS.X, float64(da))
		flowS.Y = append(flowS.Y, flowSum/float64(runs))
		pktS.X = append(pktS.X, float64(da))
		pktS.Y = append(pktS.Y, pktSum/float64(runs))
	}
	return &Figure{
		ID: "13", Title: fmt.Sprintf("Packet-level MPTCP vs. flow-level optimum (DI=%d)", di),
		XLabel: "Aggregation Switch Degree", YLabel: "Normalized Throughput",
		Series: []Series{flowS, pktS},
	}, nil
}

func capAtOne(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// simulatePermutation runs the packet simulator on the switch-level
// commodities of a permutation TM and returns the mean per-unit-demand
// goodput. A commodity of demand d (d colocated server pairs) is simulated
// as d parallel transport flows, so fairness granularity matches the
// server-level traffic.
func simulatePermutation(g *graph.Graph, tm *traffic.Matrix, subflows int, warmup, measure float64, rng *rand.Rand) (float64, error) {
	var specs []packet.FlowSpec
	for _, f := range tm.Flows {
		for k := 0; k < int(f.Demand); k++ {
			specs = append(specs, packet.FlowSpec{Src: f.Src, Dst: f.Dst})
		}
	}
	res, err := packet.Simulate(g, specs, packet.Config{
		SubflowsPerFlow: subflows,
		Warmup:          warmup,
		Measure:         measure,
	}, rng)
	if err != nil {
		return 0, err
	}
	return res.MeanGoodput, nil
}

// PacketVsFlow compares packet- and flow-level throughput on an arbitrary
// topology, exposed for the packetsim example and the ablation benches.
func PacketVsFlow(g *graph.Graph, eps float64, subflows int, seed int64) (flowT, packetT float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	h := traffic.HostsOf(g)
	tm := traffic.Permutation(rng, h)
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: eps})
	if err != nil {
		return 0, 0, err
	}
	pr, err := simulatePermutation(g, tm, subflows, 60, 240, rng)
	if err != nil {
		return 0, 0, err
	}
	return res.Throughput, pr, nil
}
