package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/runner"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Fig13: packet-level MPTCP throughput vs. the flow-level optimum on the
// rewired VL2 topology, under random permutation traffic. Topologies are
// deliberately oversubscribed (ToR count ≈ 1.3× the full-throughput point)
// so the flow value is close to but below 1, exposing any routing or
// congestion-control inefficiency, as in §8.2.
//
// The paper's curve uses DI = 28 with DA from 6 to 18; the quick grid
// shrinks to DI = 16, DA up to 12 and fewer servers per ToR to bound the
// event count.
func Fig13(o Options) (*Figure, error) {
	o = o.withDefaults()
	di := 28
	das := []int{6, 8, 10, 12, 14, 16, 18}
	serversPerToR := 20
	subflows := 8
	warmup, measure := 60.0, 240.0
	if o.Quick {
		di = 16
		das = []int{6, 8, 10}
		subflows = 4
		warmup, measure = 40, 160
	}
	runs := o.Runs
	if runs > 5 {
		runs = 5 // packet simulations dominate runtime
	}
	flowS := Series{Label: "Flow-level"}
	pktS := Series{Label: "Packet-level"}
	// Flatten (DA, run) so flow solves and packet simulations of all grid
	// points run concurrently; each task owns an RNG seeded from its point.
	type point struct{ da, run int }
	var grid []point
	for _, da := range das {
		for run := 0; run < runs; run++ {
			grid = append(grid, point{da, run})
		}
	}
	type meas struct{ flow, pkt float64 }
	vals, err := runner.Map(o.pool(), len(grid), func(i int) (meas, error) {
		p := grid[i]
		cfg := topo.VL2Config{DA: p.da, DI: di, ServersPerToR: serversPerToR}
		// Size at ~1.3x the designed full-throughput point so λ < 1 and
		// transport inefficiency is visible.
		tors := cfg.NumToRs() + cfg.NumToRs()/3
		if tors < 3 {
			tors = 3
		}
		rng := rand.New(rand.NewSource(o.Seed*131 + int64(p.da*100+p.run)))
		g, err := topo.RewiredVL2(rng, cfg, tors)
		if err != nil {
			return meas{}, fmt.Errorf("fig13 DA=%d: %w", p.da, err)
		}
		h := traffic.HostsOf(g)
		tm := traffic.Permutation(rng, h)
		res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: o.Epsilon})
		if err != nil {
			return meas{}, err
		}
		pr, err := simulatePermutation(g, tm, subflows, warmup, measure, rng)
		if err != nil {
			return meas{}, err
		}
		return meas{flow: capAtOne(res.Throughput), pkt: capAtOne(pr)}, nil
	})
	if err != nil {
		return nil, err
	}
	for daIdx, da := range das {
		var flowSum, pktSum float64
		for run := 0; run < runs; run++ {
			v := vals[daIdx*runs+run]
			flowSum += v.flow
			pktSum += v.pkt
		}
		flowS.X = append(flowS.X, float64(da))
		flowS.Y = append(flowS.Y, flowSum/float64(runs))
		pktS.X = append(pktS.X, float64(da))
		pktS.Y = append(pktS.Y, pktSum/float64(runs))
	}
	return &Figure{
		ID: "13", Title: fmt.Sprintf("Packet-level MPTCP vs. flow-level optimum (DI=%d)", di),
		XLabel: "Aggregation Switch Degree", YLabel: "Normalized Throughput",
		Series: []Series{flowS, pktS},
	}, nil
}

func capAtOne(v float64) float64 {
	if v > 1 {
		return 1
	}
	return v
}

// simulatePermutation runs the packet simulator on the switch-level
// commodities of a permutation TM and returns the mean per-unit-demand
// goodput. A commodity of demand d (d colocated server pairs) is simulated
// as d parallel transport flows, so fairness granularity matches the
// server-level traffic.
func simulatePermutation(g *graph.Graph, tm *traffic.Matrix, subflows int, warmup, measure float64, rng *rand.Rand) (float64, error) {
	var specs []packet.FlowSpec
	for _, f := range tm.Flows {
		for k := 0; k < int(f.Demand); k++ {
			specs = append(specs, packet.FlowSpec{Src: f.Src, Dst: f.Dst})
		}
	}
	res, err := packet.Simulate(g, specs, packet.Config{
		SubflowsPerFlow: subflows,
		Warmup:          warmup,
		Measure:         measure,
	}, rng)
	if err != nil {
		return 0, err
	}
	return res.MeanGoodput, nil
}

// PacketVsFlow compares packet- and flow-level throughput on an arbitrary
// topology, exposed for the packetsim example and the ablation benches.
func PacketVsFlow(g *graph.Graph, eps float64, subflows int, seed int64) (flowT, packetT float64, err error) {
	rng := rand.New(rand.NewSource(seed))
	h := traffic.HostsOf(g)
	tm := traffic.Permutation(rng, h)
	res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: eps})
	if err != nil {
		return 0, 0, err
	}
	pr, err := simulatePermutation(g, tm, subflows, 60, 240, rng)
	if err != nil {
		return 0, 0, err
	}
	return res.Throughput, pr, nil
}
