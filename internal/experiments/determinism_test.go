package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

// TestParallelMatchesSerial asserts the runner-pool contract: for the same
// seed, a parallel regeneration of a figure is byte-identical to a serial
// one. Fig. 2a exercises the homogeneous grid runner (flattened
// curve × size points over core.Evaluation), Fig. 9a the decomposition
// sweep (Detailed results reduced per point).
func TestParallelMatchesSerial(t *testing.T) {
	base := Options{Quick: true, Runs: 2, Seed: 3}
	for _, id := range []string{"2a", "9a"} {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			t.Parallel()
			serialOpts := base
			serialOpts.Parallel = 1
			parallelOpts := base
			parallelOpts.Parallel = 4

			serial, err := Registry[id](serialOpts)
			if err != nil {
				t.Fatalf("serial fig %s: %v", id, err)
			}
			parallel, err := Registry[id](parallelOpts)
			if err != nil {
				t.Fatalf("parallel fig %s: %v", id, err)
			}
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("fig %s: parallel output differs from serial\nserial:   %+v\nparallel: %+v", id, serial, parallel)
			}
			var sb, pb bytes.Buffer
			if err := serial.TSV(&sb); err != nil {
				t.Fatal(err)
			}
			if err := parallel.TSV(&pb); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
				t.Fatalf("fig %s: TSV output not byte-identical", id)
			}
		})
	}
}

// TestParallelDefaultMatchesExplicitWorkers guards the Parallel=0
// (GOMAXPROCS) default path against order dependence.
func TestParallelDefaultMatchesExplicitWorkers(t *testing.T) {
	base := Options{Quick: true, Runs: 2, Seed: 11}
	def := base
	def.Parallel = 0
	eight := base
	eight.Parallel = 8
	a, err := Fig1b(def)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1b(eight)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker-count dependence: %+v vs %+v", a, b)
	}
}
