package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/scenario"
)

// workloadTraffic maps the core workload enum onto the scenario traffic
// registry (the chunky fraction travels with the spec).
func workloadTraffic(w core.Workload, chunkyFrac float64) scenario.Traffic {
	switch w {
	case core.AllToAll:
		return scenario.AllToAll{}
	case core.Chunky:
		return scenario.Chunky{Frac: chunkyFrac}
	default:
		return scenario.Permutation{}
	}
}

// homPoint is the scenario point of one homogeneous (N, r, workload,
// serversPerSwitch) measurement, seeded exactly as the figures always
// seeded it.
func homPoint(o Options, n, r int, w core.Workload, serversPerSwitch int) scenario.Point {
	return o.evalPoint(&scenario.RRG{N: n, Deg: r, SPS: serversPerSwitch},
		workloadTraffic(w, 0), int64(n*1000+r))
}

// homUpperBound is the Theorem 1 + ASPL-bound throughput cap the
// homogeneous figures normalize by.
func homUpperBound(n, r int, w core.Workload, serversPerSwitch int) float64 {
	var f int
	switch w {
	case core.AllToAll:
		s := n * serversPerSwitch
		f = s * (s - 1)
	default:
		f = n * serversPerSwitch
	}
	return bounds.ThroughputUpperBound(n, r, f)
}

// homCurves are the three workload curves of Fig. 1a/2a.
var homCurves = []struct {
	label string
	w     core.Workload
	sps   int
}{
	{"All to All", core.AllToAll, 1},
	{"Permutation (10 Servers per switch)", core.Permutation, 10},
	{"Permutation (5 Servers per switch)", core.Permutation, 5},
}

// Fig1a: throughput of RRGs relative to the upper bound as density grows
// (N = 40 switches, degree sweep) for all-to-all and two permutation
// workloads.
func Fig1a(o Options) (*Figure, error) {
	o = o.withDefaults()
	const n = 40
	degrees := []int{3, 5, 7, 9, 11, 13, 15, 17, 19, 23, 27, 33}
	if o.Quick {
		degrees = []int{5, 11, 19, 27, 33}
	}
	fig := &Figure{
		ID: "1a", Title: "Random graphs vs. throughput bound (N=40)",
		XLabel: "Network Degree", YLabel: "Throughput (Ratio to Upper-bound)",
	}
	// Flatten the (curve × degree) grid so every point runs concurrently.
	type point struct{ ci, r int }
	var grid []point
	var pts []scenario.Point
	for ci, c := range homCurves {
		for _, r := range degrees {
			grid = append(grid, point{ci, r})
			pts = append(pts, homPoint(o, n, r, c.w, c.sps))
		}
	}
	stats, err := o.engine().Measure(pts)
	if err != nil {
		return nil, fmt.Errorf("fig1a: %w", err)
	}
	series := make([]Series, len(homCurves))
	for ci, c := range homCurves {
		series[ci] = Series{Label: c.label}
	}
	for i, p := range grid {
		c := homCurves[p.ci]
		ub := homUpperBound(n, p.r, c.w, c.sps)
		s := &series[p.ci]
		s.X = append(s.X, float64(p.r))
		s.Y = append(s.Y, stats[i].Mean/ub)
		s.Err = append(s.Err, stats[i].Std/ub)
	}
	fig.Series = series
	return fig, nil
}

// asplSeries measures RRG average shortest path length and the Cerf et al.
// lower bound across a parameter sweep, one scenario point per sweep
// value. Each run's RNG is seeded from (Seed, point, run), so the series
// is independent of evaluation order.
func asplSeries(o Options, pts []struct{ n, r int }, x func(i int) float64) (obs, bound Series, err error) {
	obs = Series{Label: "Observed ASPL"}
	bound = Series{Label: "ASPL lower-bound"}
	spts := make([]scenario.Point, len(pts))
	for i, p := range pts {
		spts[i] = scenario.Point{
			Topo: &scenario.RRG{N: p.n, Deg: p.r}, Traffic: scenario.None{}, Eval: scenario.ASPL{},
			Seed: o.Seed*7919 + int64(1000*p.n+p.r), SeedFactor: 1, Runs: o.Runs,
		}
	}
	stats, err := o.engine().Measure(spts)
	if err != nil {
		return obs, bound, err
	}
	for i, p := range pts {
		obs.X = append(obs.X, x(i))
		obs.Y = append(obs.Y, stats[i].Mean)
		bound.X = append(bound.X, x(i))
		bound.Y = append(bound.Y, bounds.ASPLLowerBound(p.n, p.r))
	}
	return obs, bound, nil
}

// Fig1b: ASPL of RRGs vs. the lower bound at N=40 across degrees.
func Fig1b(o Options) (*Figure, error) {
	o = o.withDefaults()
	degrees := []int{3, 4, 5, 6, 7, 8, 9, 10, 12, 14, 16, 18, 20, 23, 26, 29, 33}
	if o.Quick {
		degrees = []int{3, 6, 10, 16, 23, 33}
	}
	pts := make([]struct{ n, r int }, len(degrees))
	for i, r := range degrees {
		pts[i] = struct{ n, r int }{40, r}
	}
	obs, bound, err := asplSeries(o, pts, func(i int) float64 { return float64(degrees[i]) })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "1b", Title: "ASPL vs. lower bound (N=40)",
		XLabel: "Network Degree", YLabel: "Path Length",
		Series: []Series{obs, bound},
	}, nil
}

// Fig2a: throughput ratio to bound as size grows (degree fixed at 10).
func Fig2a(o Options) (*Figure, error) {
	o = o.withDefaults()
	sizes := []int{15, 20, 30, 40, 60, 80, 100, 130, 160, 200}
	if o.Quick {
		sizes = []int{15, 30, 60, 100}
	}
	const r = 10
	fig := &Figure{
		ID: "2a", Title: "Random graphs vs. throughput bound (degree=10)",
		XLabel: "Network Size", YLabel: "Throughput (Ratio to Upper-bound)",
	}
	type point struct{ ci, n int }
	var grid []point
	var pts []scenario.Point
	for ci, c := range homCurves {
		for _, n := range sizes {
			if c.w == core.AllToAll && n > 100 {
				// The paper notes its simulator does not scale for
				// all-to-all at large N; we follow the same cutoff.
				continue
			}
			grid = append(grid, point{ci, n})
			pts = append(pts, homPoint(o, n, r, c.w, c.sps))
		}
	}
	stats, err := o.engine().Measure(pts)
	if err != nil {
		return nil, fmt.Errorf("fig2a: %w", err)
	}
	series := make([]Series, len(homCurves))
	for ci, c := range homCurves {
		series[ci] = Series{Label: c.label}
	}
	for i, p := range grid {
		c := homCurves[p.ci]
		ub := homUpperBound(p.n, r, c.w, c.sps)
		s := &series[p.ci]
		s.X = append(s.X, float64(p.n))
		s.Y = append(s.Y, stats[i].Mean/ub)
		s.Err = append(s.Err, stats[i].Std/ub)
	}
	fig.Series = series
	return fig, nil
}

// Fig2b: ASPL of RRGs vs. the lower bound as size grows (degree=10).
func Fig2b(o Options) (*Figure, error) {
	o = o.withDefaults()
	sizes := []int{15, 20, 30, 40, 60, 80, 101, 120, 140, 160, 180, 200}
	if o.Quick {
		sizes = []int{15, 40, 101, 160, 200}
	}
	pts := make([]struct{ n, r int }, len(sizes))
	for i, n := range sizes {
		pts[i] = struct{ n, r int }{n, 10}
	}
	obs, bound, err := asplSeries(o, pts, func(i int) float64 { return float64(sizes[i]) })
	if err != nil {
		return nil, err
	}
	return &Figure{
		ID: "2b", Title: "ASPL vs. lower bound (degree=10)",
		XLabel: "Network Size", YLabel: "Path Length",
		Series: []Series{obs, bound},
	}, nil
}

// Fig3: the "curved step" behavior of the ASPL bound at degree 4, and the
// observed/bound ratio approaching 1 as N grows. The paper's x-tics
// (17, 53, 161, 485, 1457) are the sizes where the bound opens new
// distance levels.
func Fig3(o Options) (*Figure, error) {
	o = o.withDefaults()
	sizes := []int{9, 13, 17, 25, 37, 53, 77, 109, 161, 233, 337, 485, 701, 1009, 1457}
	if o.Quick {
		sizes = []int{17, 53, 161, 485}
	}
	const r = 4
	runs := o.Runs
	if runs > 5 {
		runs = 5 // ASPL variance is tiny; the paper notes σ ≪ 1%
	}
	obs := Series{Label: "Observed ASPL"}
	bound := Series{Label: "ASPL lower-bound"}
	ratio := Series{Label: "Ratio"}
	pts := make([]scenario.Point, len(sizes))
	for i, n := range sizes {
		pts[i] = scenario.Point{
			Topo: &scenario.RRG{N: n, Deg: r}, Traffic: scenario.None{}, Eval: scenario.ASPL{},
			Seed: o.Seed*104729 + int64(n), SeedFactor: 1, Runs: runs,
		}
	}
	stats, err := o.engine().Measure(pts)
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		mean := stats[i].Mean
		b := bounds.ASPLLowerBound(n, r)
		obs.X = append(obs.X, float64(n))
		obs.Y = append(obs.Y, mean)
		bound.X = append(bound.X, float64(n))
		bound.Y = append(bound.Y, b)
		ratio.X = append(ratio.X, float64(n))
		ratio.Y = append(ratio.Y, mean/b)
	}
	return &Figure{
		ID: "3", Title: "ASPL vs. lower bound (degree=4), step behavior",
		XLabel: "Network Size (log scale)", YLabel: "Path Length / Ratio",
		Series: []Series{obs, bound, ratio},
	}, nil
}
