package experiments

import (
	"fmt"

	"repro/internal/hetero"
)

// crossRatioXs is the Fig. 6/7 x grid (cross-cluster links as a ratio to
// the vanilla-random expectation).
func crossRatioXs(quick bool) []float64 {
	if quick {
		return []float64{0.2, 0.5, 1.0, 1.5, 2.0}
	}
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8, 2.0}
}

// sweepCrossRatio evaluates one cross-cluster connectivity curve with the
// server distribution held fixed (one scenario point per grid value),
// normalized to the curve's peak.
func sweepCrossRatio(o Options, label string, base hetero.Config, xs []float64) (Series, error) {
	pts, err := sweepHetero(o, xs,
		func(x float64) hetero.Config {
			cfg := base
			cfg.CrossRatio = x
			return cfg
		},
		func(x float64) int64 { return labelSeed(label) + int64(x*1000) })
	if err != nil {
		return Series{Label: label}, err
	}
	s, raw := collectSeries(label, pts)
	normalizePeak(&s, raw)
	return s, nil
}

// proportionalConfig returns base with the port-proportional server split.
func proportionalConfig(base hetero.Config) hetero.Config {
	base.ServersPerLarge, base.ServersPerSmall = -1, -1
	base.ServerRatio = 1
	return base
}

// Fig6a: cross-cluster connectivity sweep for three port ratios, servers
// distributed proportionally. The paper's headline: throughput is stable
// at its peak across a wide range of cross-cluster connectivity, dropping
// only when the cut becomes the bottleneck.
func Fig6a(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "6a", Title: "Cross-cluster connectivity vs. throughput (port ratios)",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	for _, c := range []struct {
		label      string
		portsSmall int
	}{
		{"3:1 Port-ratio", 10},
		{"2:1 Port-ratio", 15},
		{"3:2 Port-ratio", 20},
	} {
		base := proportionalConfig(hetero.Config{
			NumLarge: 20, NumSmall: 40,
			PortsLarge: 30, PortsSmall: c.portsSmall,
			Servers: serversForPool(20*30 + 40*c.portsSmall),
		})
		s, err := sweepCrossRatio(o, c.label, base, crossRatioXs(o.Quick))
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig6b: cross-cluster sweep with varying small-switch counts.
func Fig6b(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "6b", Title: "Cross-cluster connectivity vs. throughput (switch counts)",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	for _, nSmall := range []int{20, 30, 40} {
		base := proportionalConfig(hetero.Config{
			NumLarge: 20, NumSmall: nSmall,
			PortsLarge: 30, PortsSmall: 20,
			Servers: serversForPool(20*30 + nSmall*20),
		})
		s, err := sweepCrossRatio(o, fmt.Sprintf("%d Smaller Switches", nSmall), base, crossRatioXs(o.Quick))
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig6c: cross-cluster sweep with 300/500/700 servers (oversubscription).
func Fig6c(o Options) (*Figure, error) {
	o = o.withDefaults()
	fig := &Figure{
		ID: "6c", Title: "Cross-cluster connectivity vs. throughput (oversubscription)",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	for _, servers := range []int{300, 500, 700} {
		base := proportionalConfig(hetero.Config{
			NumLarge: 20, NumSmall: 30,
			PortsLarge: 30, PortsSmall: 20,
			Servers: servers,
		})
		s, err := sweepCrossRatio(o, fmt.Sprintf("%d Servers", servers), base, crossRatioXs(o.Quick))
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// fig7 runs the joint (server split × cross-cluster) sweep for explicit
// per-switch server counts.
func fig7(o Options, id string, portsSmall int, splits [][2]int) (*Figure, error) {
	fig := &Figure{
		ID: id, Title: "Joint server-distribution and interconnect sweep",
		XLabel: "Cross-cluster Links (Ratio to Expected Under Random Connection)",
		YLabel: "Normalized Throughput",
	}
	// Normalize the whole family by the global peak so the figure shows
	// which split wins, as in the paper.
	type curve struct {
		s   Series
		raw []float64
	}
	var curves []curve
	var peak float64
	for _, split := range splits {
		label := fmt.Sprintf("%dH, %dL", split[0], split[1])
		base := hetero.Config{
			NumLarge: 20, NumSmall: 40,
			PortsLarge: 30, PortsSmall: portsSmall,
			ServersPerLarge: split[0], ServersPerSmall: split[1],
		}
		pts, err := sweepHetero(o, crossRatioXs(o.Quick),
			func(x float64) hetero.Config {
				cfg := base
				cfg.CrossRatio = x
				return cfg
			},
			func(x float64) int64 { return labelSeed(label) + int64(x*1000) })
		if err != nil {
			return nil, err
		}
		s, raw := collectSeries(label, pts)
		for _, v := range raw {
			if v > peak {
				peak = v
			}
		}
		curves = append(curves, curve{s, raw})
	}
	for _, c := range curves {
		if peak > 0 {
			c.s.Y = make([]float64, len(c.raw))
			for i, v := range c.raw {
				c.s.Y[i] = v / peak
				c.s.Err[i] /= peak
			}
		} else {
			c.s.Y = c.raw
		}
		fig.Series = append(fig.Series, c.s)
	}
	return fig, nil
}

// Fig7a: joint sweep, 20 large (30-port) and 40 small (10-port) switches;
// five server splits totalling 400 servers. Proportional placement
// ("12H, 4L") with a vanilla random interconnect (x=1) should be among
// the optimal configurations.
func Fig7a(o Options) (*Figure, error) {
	o = o.withDefaults()
	return fig7(o, "7a", 10, [][2]int{{16, 2}, {14, 3}, {12, 4}, {10, 5}, {8, 6}})
}

// Fig7b: joint sweep, 20 large (30-port) and 40 small (20-port) switches;
// five splits totalling 560 servers ("14H, 7L" is proportional).
func Fig7b(o Options) (*Figure, error) {
	o = o.withDefaults()
	return fig7(o, "7b", 20, [][2]int{{22, 3}, {18, 5}, {14, 7}, {10, 9}, {6, 11}})
}
