package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/topo"
)

// fullThroughputThreshold is the λ above which a configuration counts as
// "full throughput". The exact criterion is λ ≥ 1; because the flow solver
// only underestimates λ (by at most ε), we subtract the solver slack so the
// criterion is not biased against either topology. The same threshold is
// applied to VL2 and to the rewired topology.
func fullThroughputThreshold(epsilon float64) float64 {
	return 1 - epsilon - 0.02
}

// maxToRs runs the §7 binary search on the scenario engine: the largest
// ToR count supported at full throughput by point(tors) under the
// workload. "Full throughput" means every server-level flow gets its full
// fair share: 1 unit for permutation/chunky traffic, 1/(S-1) for
// all-to-all among S servers. With the process-wide solve cache, probes
// shared across searches (e.g. the same sizing search under several
// chunky fractions) solve once.
func maxToRs(o Options, w core.Workload, lo, hi, serversPerToR int, point func(tors int) scenario.Point) (int, error) {
	base := fullThroughputThreshold(o.Epsilon)
	threshold := func(size int) float64 {
		if w == core.AllToAll {
			s := size * serversPerToR
			if s > 1 {
				return base / float64(s-1)
			}
		}
		return base
	}
	return o.engine().MaxAtFull(lo, hi, threshold, point)
}

// vl2Point and rewiredPoint are the scenario points of the §7 capacity
// search: the standard VL2 fabric (round-robin ToR uplinks) and the
// paper's rewiring of the same equipment, sized to an arbitrary ToR count.
func (o Options) vl2Point(w core.Workload, chunkyFrac float64, da, di, tors int, seedMix int64) scenario.Point {
	return o.evalPoint(&scenario.VL2{DA: da, DI: di, ToRs: tors}, workloadTraffic(w, chunkyFrac), seedMix)
}

func (o Options) rewiredPoint(w core.Workload, chunkyFrac float64, da, di, tors int, seedMix int64) scenario.Point {
	return o.evalPoint(&scenario.RewiredVL2{DA: da, DI: di, ToRs: tors}, workloadTraffic(w, chunkyFrac), seedMix)
}

// fig12aGrid returns the (DA, DI) grid for Fig. 12a/12c.
func fig12aGrid(quick bool) (das []int, dis []int) {
	if quick {
		return []int{6, 10, 14}, []int{16}
	}
	return []int{6, 8, 10, 12, 14, 16, 18, 20}, []int{16, 20, 24, 28}
}

// Fig12a: servers supported at full throughput by the rewired topology,
// as a ratio over VL2, across DA and DI. Both sides are measured with the
// same solver and threshold; VL2's measured capacity is the denominator.
func Fig12a(o Options) (*Figure, error) {
	o = o.withDefaults()
	das, dis := fig12aGrid(o.Quick)
	fig := &Figure{
		ID: "12a", Title: "Rewired VL2: servers at full throughput (ratio over VL2)",
		XLabel: "Aggregation Switch Degree (DA)", YLabel: "Servers at Full Throughput (Ratio Over VL2)",
	}
	// Each (DA, DI) point is a pair of binary searches — inherently
	// sequential inside, so parallelize across the flattened grid.
	type point struct{ di, da int }
	var grid []point
	for _, di := range dis {
		for _, da := range das {
			grid = append(grid, point{di, da})
		}
	}
	ratios, err := runner.Map(o.pool(), len(grid), func(i int) (float64, error) {
		p := grid[i]
		ratio, err := rewiredOverVL2(o, core.Permutation, 0, p.da, p.di, int64(12100+p.da*100+p.di))
		if err != nil {
			return 0, fmt.Errorf("fig12a DA=%d DI=%d: %w", p.da, p.di, err)
		}
		return ratio, nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(dis))
	for si, di := range dis {
		series[si] = Series{Label: fmt.Sprintf("%d Agg Switches (DI=%d)", di, di)}
	}
	for i, p := range grid {
		s := &series[i/len(das)]
		s.X = append(s.X, float64(p.da))
		s.Y = append(s.Y, ratios[i])
	}
	fig.Series = series
	return fig, nil
}

// rewiredOverVL2 measures max ToRs at full throughput for both topologies
// and returns rewired/VL2.
func rewiredOverVL2(o Options, w core.Workload, chunkyFrac float64, da, di int, seedMix int64) (float64, error) {
	cfg := topo.VL2Config{DA: da, DI: di}
	designed := cfg.NumToRs()
	hi := designed*2 + 4
	vl2Max, err := maxToRs(o, w, 1, hi, 20, func(tors int) scenario.Point {
		return o.vl2Point(w, chunkyFrac, da, di, tors, seedMix)
	})
	if err != nil {
		return 0, err
	}
	rewMax, err := maxToRs(o, w, 1, hi, 20, func(tors int) scenario.Point {
		return o.rewiredPoint(w, chunkyFrac, da, di, tors, seedMix+7)
	})
	if err != nil {
		return 0, err
	}
	if vl2Max < 1 {
		return 0, fmt.Errorf("VL2 DA=%d DI=%d supports no ToRs at threshold", da, di)
	}
	return float64(rewMax) / float64(vl2Max), nil
}

// Fig12b: throughput of the rewired topology under x% Chunky traffic, at
// the sizes found for permutation traffic (DI = 28 in the paper; the quick
// grid uses DI = 16).
func Fig12b(o Options) (*Figure, error) {
	o = o.withDefaults()
	di := 28
	das := []int{6, 8, 10, 12, 14, 16, 18}
	if o.Quick {
		di = 16
		das = []int{6, 10, 14}
	}
	fig := &Figure{
		ID: "12b", Title: fmt.Sprintf("Rewired VL2 under chunky traffic (DI=%d)", di),
		XLabel: "Aggregation Switch Degree (DA)", YLabel: "Normalized Throughput",
	}
	fractions := []float64{0.2, 0.6, 1.0}
	type point struct {
		frac float64
		da   int
	}
	var grid []point
	for _, frac := range fractions {
		for _, da := range das {
			grid = append(grid, point{frac, da})
		}
	}
	type meas struct {
		y, std float64
		ok     bool
	}
	vals, err := runner.Map(o.pool(), len(grid), func(i int) (meas, error) {
		p := grid[i]
		cfg := topo.VL2Config{DA: p.da, DI: di}
		// Size the topology at its permutation-full-throughput point. The
		// search's seed mix depends only on DA, so the three chunky
		// fractions share it — with the solve cache, it runs once.
		tors, err := maxToRs(o, core.Permutation, 1, cfg.NumToRs()*2+4, 20, func(t int) scenario.Point {
			return o.rewiredPoint(core.Permutation, 0, p.da, di, t, int64(12200+p.da))
		})
		if err != nil {
			return meas{}, err
		}
		if tors < 2 {
			return meas{}, nil
		}
		st, err := o.engine().MeasureOne(
			o.rewiredPoint(core.Chunky, p.frac, p.da, di, tors, int64(12250+p.da)))
		if err != nil {
			return meas{}, err
		}
		y := st.Mean
		if y > 1 {
			y = 1 // full throughput; demands are 1 unit per server
		}
		return meas{y: y, std: st.Std, ok: st.OK}, nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(fractions))
	for fi, frac := range fractions {
		series[fi] = Series{Label: fmt.Sprintf("%d%% Chunky", int(frac*100))}
	}
	for i, p := range grid {
		if !vals[i].ok {
			continue
		}
		s := &series[i/len(das)]
		s.X = append(s.X, float64(p.da))
		s.Y = append(s.Y, vals[i].y)
		s.Err = append(s.Err, vals[i].std)
	}
	fig.Series = series
	return fig, nil
}

// Fig12c: the Fig. 12a search repeated under all-to-all and 100% chunky
// traffic. Gains shrink for chunky but remain positive; all-to-all is
// easier to route than both.
func Fig12c(o Options) (*Figure, error) {
	o = o.withDefaults()
	di := 20
	das := []int{6, 8, 10, 12, 14, 16, 18, 20}
	if o.Quick {
		di = 16
		das = []int{6, 10}
	}
	fig := &Figure{
		ID: "12c", Title: fmt.Sprintf("Rewired VL2 under other workloads (DI=%d)", di),
		XLabel: "Aggregation Switch Degree (DA)", YLabel: "Servers at Full Throughput (Ratio Over VL2)",
	}
	cases := []struct {
		label string
		w     core.Workload
		frac  float64
	}{
		{"All-to-All Traffic", core.AllToAll, 0},
		{"Permutation Traffic", core.Permutation, 0},
		{"100% Chunky Traffic", core.Chunky, 1.0},
	}
	type point struct {
		ci, da int
	}
	var grid []point
	for ci := range cases {
		for _, da := range das {
			grid = append(grid, point{ci, da})
		}
	}
	ratios, err := runner.Map(o.pool(), len(grid), func(i int) (float64, error) {
		p := grid[i]
		c := cases[p.ci]
		ratio, err := rewiredOverVL2(o, c.w, c.frac, p.da, di, int64(12300+p.ci*997+p.da))
		if err != nil {
			return 0, fmt.Errorf("fig12c %s DA=%d: %w", c.label, p.da, err)
		}
		return ratio, nil
	})
	if err != nil {
		return nil, err
	}
	series := make([]Series, len(cases))
	for ci, c := range cases {
		series[ci] = Series{Label: c.label}
	}
	for i, p := range grid {
		s := &series[p.ci]
		s.X = append(s.X, float64(p.da))
		s.Y = append(s.Y, ratios[i])
	}
	fig.Series = series
	return fig, nil
}
