// Package runner is the worker-pool substrate of the experiment layer.
//
// Every figure of the evaluation is a grid of independent measurements:
// (topology family × parameter × run) points that share no state beyond
// read-only options. Map evaluates such a grid concurrently, bounded by
// GOMAXPROCS by default, and returns results indexed exactly as the grid
// was enumerated. Callers keep all randomness inside each task, seeded
// deterministically from (base seed, point index), and reduce the returned
// slice serially in index order — so parallel output is byte-identical to
// a serial run of the same grid.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool bounds the concurrency of grid evaluations. The zero value is not
// usable; call New. A Pool holds no goroutines between calls — each Map
// spins up at most Workers goroutines and joins them before returning.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently;
// workers <= 0 means GOMAXPROCS. New(1) yields a pool that runs tasks
// inline on the calling goroutine, which is the serial reference mode.
func New(workers int) *Pool {
	return &Pool{workers: Workers(workers)}
}

// Serial reports whether the pool runs tasks inline without goroutines.
func (p *Pool) Serial() bool { return p.workers <= 1 }

// Map evaluates fn(0), …, fn(n-1) on the pool and returns the results in
// index order. fn must be safe for concurrent invocation with distinct
// indices (it is called inline when the pool is serial).
//
// Error semantics match a serial loop: if any tasks fail, Map returns the
// error of the lowest failing index. Tasks with indices above the lowest
// known failure may be skipped, but every index below it is evaluated, so
// the returned error is deterministic.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if p.Serial() || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				mu.Lock()
				skip := errIdx >= 0 && errIdx < i
				mu.Unlock()
				if skip {
					continue
				}
				v, err := fn(i)
				if err != nil {
					mu.Lock()
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstErr
	}
	return out, nil
}

// Each is Map for tasks with no result value.
func Each(p *Pool, n int, fn func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
