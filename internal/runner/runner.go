// Package runner is the worker-pool substrate of the experiment layer.
//
// Every figure of the evaluation is a grid of independent measurements:
// (topology family × parameter × run) points that share no state beyond
// read-only options. Map evaluates such a grid concurrently, bounded by
// GOMAXPROCS by default, and returns results indexed exactly as the grid
// was enumerated. Callers keep all randomness inside each task, seeded
// deterministically from (base seed, point index), and reduce the returned
// slice serially in index order — so parallel output is byte-identical to
// a serial run of the same grid.
//
// Maps nest freely: figure grids call core.Evaluation, whose runs call
// packet simulations and bisection trials, each mapping onto a pool of its
// own. A process-wide weighted semaphore bounds the TOTAL in-flight work
// across all nesting levels to SetMaxInFlight (default GOMAXPROCS): the
// calling goroutine of every Map always works inline — it already owns a
// concurrency slot, inherited from whatever spawned it — and extra worker
// goroutines each need a token from the shared semaphore, acquired
// non-blockingly. When the semaphore is saturated by outer levels, inner
// Maps simply degrade toward serial execution instead of multiplying
// goroutines (workers² and worse before this bound existed). Results are
// unaffected: scheduling never changes task outputs or their order.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// inflight implements the shared weighted semaphore: extra (non-caller)
// worker tokens outstanding, and the cap on them. The cap is the max
// in-flight bound minus one, the caller's own slot.
var (
	inflightExtra atomic.Int64
	inflightCap   atomic.Int64
)

func init() { inflightCap.Store(int64(runtime.GOMAXPROCS(0)) - 1) }

// SetMaxInFlight bounds the total concurrently-running tasks across every
// Map in the process, including nested ones, to n (n <= 0 restores the
// GOMAXPROCS default). Top-level callers running tasks inline count
// against the bound by construction; helper goroutines are limited to
// n − 1.
func SetMaxInFlight(n int) {
	inflightCap.Store(int64(Workers(n)) - 1)
}

// tryAcquire takes one helper token if the semaphore has room.
func tryAcquire() bool {
	for {
		cur := inflightExtra.Load()
		if cur >= inflightCap.Load() {
			return false
		}
		if inflightExtra.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func release() { inflightExtra.Add(-1) }

// Workers normalizes a worker-count option: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool bounds the concurrency of grid evaluations. The zero value is not
// usable; call New. A Pool holds no goroutines between calls — each Map
// spins up at most Workers goroutines and joins them before returning.
type Pool struct {
	workers int
}

// New returns a pool running at most workers tasks concurrently;
// workers <= 0 means GOMAXPROCS. New(1) yields a pool that runs tasks
// inline on the calling goroutine, which is the serial reference mode.
func New(workers int) *Pool {
	return &Pool{workers: Workers(workers)}
}

// Serial reports whether the pool runs tasks inline without goroutines.
func (p *Pool) Serial() bool { return p.workers <= 1 }

// Map evaluates fn(0), …, fn(n-1) on the pool and returns the results in
// index order. fn must be safe for concurrent invocation with distinct
// indices (it is called inline when the pool is serial).
//
// Error semantics match a serial loop: if any tasks fail, Map returns the
// error of the lowest failing index. Tasks with indices above the lowest
// known failure may be skipped, but every index below it is evaluated, so
// the returned error is deterministic.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	if p.Serial() || n == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	var (
		next     atomic.Int64
		mu       sync.Mutex
		errIdx   = -1
		firstErr error
		wg       sync.WaitGroup
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			mu.Lock()
			skip := errIdx >= 0 && errIdx < i
			mu.Unlock()
			if skip {
				continue
			}
			v, err := fn(i)
			if err != nil {
				mu.Lock()
				if errIdx < 0 || i < errIdx {
					errIdx, firstErr = i, err
				}
				mu.Unlock()
				continue
			}
			out[i] = v
		}
	}
	// The caller participates inline (it already holds a concurrency slot);
	// extra workers spawn only while shared semaphore tokens are available,
	// so nested Maps cannot multiply goroutines past the process bound.
	extra := p.workers - 1
	if extra > n-1 {
		extra = n - 1
	}
	for w := 0; w < extra && tryAcquire(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
	if errIdx >= 0 {
		return nil, firstErr
	}
	return out, nil
}

// Each is Map for tasks with no result value.
func Each(p *Pool, n int, fn func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
