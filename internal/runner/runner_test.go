package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		p := New(workers)
		n := 100
		got, err := Map(p, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(New(4), 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map: got %v, %v", got, err)
	}
}

func TestMapLowestErrorWins(t *testing.T) {
	// Multiple failing indices: the reported error must be the one a serial
	// loop would hit first, regardless of scheduling.
	fail := map[int]bool{7: true, 23: true, 61: true}
	want := fmt.Sprintf("task %d", 7)
	for trial := 0; trial < 20; trial++ {
		_, err := Map(New(8), 100, func(i int) (int, error) {
			if fail[i] {
				return 0, errors.New(fmt.Sprintf("task %d", i))
			}
			return i, nil
		})
		if err == nil || err.Error() != want {
			t.Fatalf("trial %d: got error %v, want %q", trial, err, want)
		}
	}
}

func TestMapRunsEveryIndexBelowFailure(t *testing.T) {
	var ran [50]atomic.Bool
	_, err := Map(New(4), 50, func(i int) (int, error) {
		ran[i].Store(true)
		if i == 40 {
			return 0, errors.New("boom")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	for i := 0; i < 40; i++ {
		if !ran[i].Load() {
			t.Fatalf("index %d below the failure was skipped", i)
		}
	}
}

func TestEach(t *testing.T) {
	var count atomic.Int64
	if err := Each(New(4), 64, func(i int) error {
		count.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count.Load() != 64 {
		t.Fatalf("ran %d tasks, want 64", count.Load())
	}
}

func TestSerialPoolRunsInline(t *testing.T) {
	p := New(1)
	if !p.Serial() {
		t.Fatal("New(1) should be serial")
	}
	// Inline execution means strict index order.
	last := -1
	_, err := Map(p, 20, func(i int) (int, error) {
		if i != last+1 {
			t.Fatalf("serial pool ran %d after %d", i, last)
		}
		last = i
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) < 1 {
		t.Fatal("Workers(0) must be at least 1")
	}
	if Workers(5) != 5 {
		t.Fatalf("Workers(5) = %d", Workers(5))
	}
}

// TestNestedMapsBounded: with the shared semaphore capped at w, nested
// Maps (grid × runs, like every figure runner) must never have more than w
// tasks executing simultaneously — previously each level multiplied its
// own worker count.
func TestNestedMapsBounded(t *testing.T) {
	const cap = 4
	SetMaxInFlight(cap)
	defer SetMaxInFlight(0)
	var cur, peak atomic.Int64
	err := Each(New(cap), 6, func(i int) error {
		return Each(New(cap), 6, func(j int) error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			cur.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > cap {
		t.Fatalf("peak in-flight %d exceeds the %d bound", p, cap)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("no parallelism at all (peak %d); the semaphore is over-throttling", p)
	}
}

// TestMapAfterSaturationStillCompletes: when no helper tokens are
// available, Map must fall back to inline execution and still finish.
func TestMapAfterSaturationStillCompletes(t *testing.T) {
	SetMaxInFlight(1) // zero helper tokens: everything runs inline
	defer SetMaxInFlight(0)
	got, err := Map(New(8), 30, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
