package bounds

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rrg"
)

func TestASPLLowerBoundHandValues(t *testing.T) {
	cases := []struct {
		n, r int
		want float64
	}{
		// K4: everyone at distance 1.
		{4, 3, 1},
		// n=5, r=2 (cycle C5): from any node, 2 at distance 1, 2 at
		// distance 2 -> (2·1+2·2)/4 = 1.5.
		{5, 2, 1.5},
		// n=7, r=2: ideal tree 2 at d1, 2 at d2, 2 at d3 -> 12/6 = 2.
		{7, 2, 2},
		// n=10, r=3: 3 at d1, 6 at d2 -> (3+12)/9 = 15/9.
		{10, 3, 15.0 / 9.0},
		// n=12, r=3: 3 at d1, 6 at d2, 2 leftover at d3 -> (3+12+6)/11.
		{12, 3, 21.0 / 11.0},
		// Trivial.
		{1, 5, 0},
		{2, 1, 1},
	}
	for _, c := range cases {
		got := ASPLLowerBound(c.n, c.r)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("ASPLLowerBound(%d,%d) = %v, want %v", c.n, c.r, got, c.want)
		}
	}
}

func TestASPLLowerBoundEdgeCases(t *testing.T) {
	if !math.IsInf(ASPLLowerBound(5, 1), 1) {
		t.Fatal("1-regular on 5 nodes should be +Inf")
	}
	for _, c := range [][2]int{{0, 3}, {5, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ASPLLowerBound(%d,%d) should panic", c[0], c[1])
				}
			}()
			ASPLLowerBound(c[0], c[1])
		}()
	}
}

func TestASPLLowerBoundMonotonicity(t *testing.T) {
	// For fixed r, the bound is non-decreasing in n.
	for r := 3; r <= 8; r++ {
		prev := 0.0
		for n := r + 1; n < 300; n++ {
			b := ASPLLowerBound(n, r)
			if b < prev-1e-12 {
				t.Fatalf("bound decreased at n=%d r=%d: %v < %v", n, r, b, prev)
			}
			prev = b
		}
	}
	// For fixed n, non-increasing in r.
	for n := 20; n <= 60; n += 20 {
		prev := math.Inf(1)
		for r := 2; r < n; r++ {
			b := ASPLLowerBound(n, r)
			if b > prev+1e-12 {
				t.Fatalf("bound increased at n=%d r=%d", n, r)
			}
			prev = b
		}
	}
}

// The steps in the Fig. 3 bound open exactly at the paper's x-tics for
// degree 4: 17, 53, 161, 485, 1457 (sizes where a new tree level starts).
func TestASPLBoundStepSizes(t *testing.T) {
	// At n = 1 + 4·Σ3^i the idealized tree is exactly full; one more node
	// starts a new level.
	fullAt := []int{5, 17, 53, 161, 485, 1457}
	for li, n := range fullAt {
		level := li + 1
		// The bound at n should be achieved with all leaves at `level`.
		b := ASPLLowerBound(n, 4)
		bNext := ASPLLowerBound(n+1, 4)
		if !(bNext > b) {
			t.Fatalf("bound should strictly grow entering level %d", level+1)
		}
	}
}

// Property: every actually-constructed random regular graph respects the
// ASPL lower bound.
func TestASPLBoundIsActuallyALowerBound(t *testing.T) {
	f := func(seed int64, nRaw, rRaw uint8) bool {
		n := int(nRaw%40) + 5
		r := int(rRaw%5) + 3
		if r >= n {
			r = n - 1
		}
		if (n*r)%2 != 0 {
			r--
		}
		if r < 3 {
			return true
		}
		g, err := rrg.Regular(rand.New(rand.NewSource(seed)), n, r)
		if err != nil {
			return true
		}
		aspl, ok := g.ASPL()
		if !ok {
			return true
		}
		return aspl >= ASPLLowerBound(n, r)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestThroughputUpperBound(t *testing.T) {
	// K4 with f=4 unit flows: bound = 4·3/(1·4) = 3.
	if got := ThroughputUpperBound(4, 3, 4); math.Abs(got-3) > 1e-12 {
		t.Fatalf("got %v, want 3", got)
	}
	if !math.IsInf(ThroughputUpperBound(4, 3, 0), 1) {
		t.Fatal("f=0 should be +Inf")
	}
}

func TestThroughputBoundWithASPL(t *testing.T) {
	if got := ThroughputBoundWithASPL(100, 2, 10); got != 5 {
		t.Fatalf("got %v, want 5", got)
	}
	if !math.IsInf(ThroughputBoundWithASPL(100, 0, 10), 1) {
		t.Fatal("zero ASPL should be +Inf")
	}
}

func TestTwoClusterBound(t *testing.T) {
	// Path bound: C/(aspl·f) = 400/(2·100) = 2.
	// Cut bound: C̄(n1+n2)/(2n1n2) = 40·100/(2·50·50) = 0.8.
	got := TwoClusterBound(400, 40, 2, 50, 50)
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("got %v, want 0.8", got)
	}
	// Large C̄ -> path bound dominates.
	got = TwoClusterBound(400, 4000, 2, 50, 50)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("got %v, want 2", got)
	}
	// One empty cluster -> cut bound vacuous.
	got = TwoClusterBound(400, 0, 2, 100, 0)
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("got %v, want 2", got)
	}
}

func TestDropThresholdAndCrossCapThreshold(t *testing.T) {
	if got := DropThreshold(400, 2); got != 100 {
		t.Fatalf("drop threshold %v, want 100", got)
	}
	// C̄* = T*·2n1n2/(n1+n2).
	if got := CrossCapThreshold(0.5, 50, 50); got != 25 {
		t.Fatalf("C̄* = %v, want 25", got)
	}
	if got := CrossCapThreshold(0.5, 0, 0); got != 0 {
		t.Fatal("empty clusters should give 0")
	}
}

func TestMooreBound(t *testing.T) {
	cases := []struct {
		d, k int
		want float64
	}{
		{3, 1, 4},  // K4
		{3, 2, 10}, // Petersen graph meets it
		{4, 2, 17}, // paper's Fig. 3 first step
		{2, 3, 7},  // cycle C7
		{1, 1, 2},  // single edge
		{5, 0, 1},  // k=0
	}
	for _, c := range cases {
		if got := MooreBound(c.d, c.k); got != c.want {
			t.Errorf("MooreBound(%d,%d) = %v, want %v", c.d, c.k, got, c.want)
		}
	}
}

func TestDiameterLowerBound(t *testing.T) {
	if got := DiameterLowerBound(10, 3); got != 2 {
		t.Fatalf("Petersen-size bound %d, want 2", got)
	}
	if got := DiameterLowerBound(11, 3); got != 3 {
		t.Fatalf("11 nodes degree 3: %d, want 3", got)
	}
	if got := DiameterLowerBound(1, 3); got != 0 {
		t.Fatal("single node diameter 0")
	}
}

// Cross-check: the diameter of generated RRGs never beats the Moore-bound
// inversion.
func TestDiameterBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, c := range []struct{ n, r int }{{20, 3}, {50, 4}, {100, 5}} {
		g, err := rrg.Regular(rng, c.n, c.r)
		if err != nil {
			t.Fatal(err)
		}
		diam, ok := g.Diameter()
		if !ok {
			continue
		}
		if lb := DiameterLowerBound(c.n, c.r); diam < lb {
			t.Fatalf("RRG(%d,%d) diameter %d beats bound %d", c.n, c.r, diam, lb)
		}
	}
}
