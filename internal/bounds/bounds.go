// Package bounds implements the analytical bounds from "High Throughput
// Data Center Topology Design" (NSDI 2014):
//
//   - Theorem 1: a throughput upper bound T ≤ N·r/(⟨D⟩·f) for any r-regular
//     topology on N switches carrying f uniform flows.
//   - The Cerf–Cowan–Mullin–Stanton lower bound d* on the average shortest
//     path length of any r-regular graph, which combined with Theorem 1
//     yields T ≤ N·r/(d*·f).
//   - The heterogeneous two-cluster upper bound of §6.2 (Eq. 1), its drop
//     threshold (Eq. 2), and the C̄* threshold used in Fig. 11.
//   - The Moore bound for the related degree-diameter problem.
package bounds

import (
	"fmt"
	"math"
)

// ASPLLowerBound returns d*, the Cerf et al. lower bound on the average
// shortest path length of any r-regular graph with n nodes:
//
//	d* = (Σ_{j=1}^{k-1} j·r·(r-1)^{j-1} + k·R) / (n-1)
//	R  = n-1 - Σ_{j=1}^{k-1} r·(r-1)^{j-1} ≥ 0
//
// with k the largest integer for which R ≥ 0. Intuitively this counts an
// idealized BFS tree: r nodes at distance 1, r(r-1) at distance 2, and so
// on, with the R leftover nodes at distance k.
//
// It panics if n < 1 or r < 1. For n == 1 it returns 0. For r == 1 only
// n == 2 admits a regular graph; larger n return +Inf as no connected
// 1-regular graph exists.
func ASPLLowerBound(n, r int) float64 {
	switch {
	case n < 1 || r < 1:
		panic(fmt.Sprintf("bounds: invalid ASPLLowerBound(%d, %d)", n, r))
	case n == 1:
		return 0
	case r == 1:
		if n == 2 {
			return 1
		}
		return math.Inf(1)
	}
	remaining := float64(n - 1) // nodes still to place
	var sum float64             // Σ j · (nodes at level j)
	level := 1
	width := float64(r) // nodes the ideal tree fits at this level
	for remaining > width {
		sum += float64(level) * width
		remaining -= width
		width *= float64(r - 1)
		level++
	}
	sum += float64(level) * remaining
	return sum / float64(n-1)
}

// ThroughputUpperBound returns the Theorem 1 bound evaluated with the
// ASPL lower bound d*: the maximum per-flow throughput of any r-regular
// topology on n switches carrying f uniform flows of unit demand,
//
//	T ≤ n·r / (d*·f).
//
// Each network link is assumed to have unit capacity per direction, as in
// the paper's homogeneous setting (§4). Returns +Inf if f == 0.
func ThroughputUpperBound(n, r, f int) float64 {
	if f == 0 {
		return math.Inf(1)
	}
	dstar := ASPLLowerBound(n, r)
	return float64(n) * float64(r) / (dstar * float64(f))
}

// ThroughputBoundWithASPL returns the raw Theorem 1 bound C/(⟨D⟩·f) for a
// network of total capacity totalCap (counting both directions of every
// link), observed or bounded ASPL aspl, and f unit-demand flows.
func ThroughputBoundWithASPL(totalCap, aspl float64, f int) float64 {
	if f == 0 || aspl == 0 {
		return math.Inf(1)
	}
	return totalCap / (aspl * float64(f))
}

// TwoClusterBound is the §6.2 heterogeneous upper bound (Eq. 1):
//
//	T ≤ min{ C/(⟨D⟩·(n1+n2)),  C̄·(n1+n2)/(2·n1·n2) }
//
// where C is total network capacity (both directions), C̄ the capacity
// crossing between the clusters (both directions), ⟨D⟩ the average shortest
// path length, and n1, n2 the servers attached to each cluster. The flows
// are a random permutation over the n1+n2 servers.
func TwoClusterBound(totalCap, crossCap, aspl float64, n1, n2 int) float64 {
	f := n1 + n2
	if f == 0 {
		return math.Inf(1)
	}
	pathBound := totalCap / (aspl * float64(f))
	if n1 == 0 || n2 == 0 {
		return pathBound
	}
	cutBound := crossCap * float64(n1+n2) / (2 * float64(n1) * float64(n2))
	return math.Min(pathBound, cutBound)
}

// DropThreshold returns the Eq. 2 threshold for equal-size clusters: the
// upper bound begins to fall once the cross-cluster capacity C̄ drops below
// C/(2·⟨D⟩).
func DropThreshold(totalCap, aspl float64) float64 {
	return totalCap / (2 * aspl)
}

// CrossCapThreshold returns C̄* = T*·2·n1·n2/(n1+n2): given (an estimate of)
// the peak throughput T*, throughput must be below T* whenever the
// cross-cluster capacity is below C̄*. This is the marked point on each
// Fig. 11 curve.
func CrossCapThreshold(tstar float64, n1, n2 int) float64 {
	if n1+n2 == 0 {
		return 0
	}
	return tstar * 2 * float64(n1) * float64(n2) / float64(n1+n2)
}

// MooreBound returns the Moore bound: the maximum number of nodes of any
// graph with maximum degree d and diameter k,
//
//	1 + d·Σ_{i=0}^{k-1}(d-1)^i.
//
// It is the degree-diameter analogue of the ASPL bound and is included for
// the paper's §1 discussion of the degree-diameter problem.
func MooreBound(d, k int) float64 {
	if d < 1 || k < 0 {
		panic(fmt.Sprintf("bounds: invalid MooreBound(%d, %d)", d, k))
	}
	if k == 0 {
		return 1
	}
	if d == 1 {
		return 2
	}
	if d == 2 {
		return float64(2*k + 1)
	}
	sum := 1.0
	term := float64(d)
	for i := 0; i < k; i++ {
		sum += term
		term *= float64(d - 1)
	}
	return sum
}

// DiameterLowerBound returns the smallest diameter any graph with n nodes
// and maximum degree d can have (the Moore-bound inversion).
func DiameterLowerBound(n, d int) int {
	if n <= 1 {
		return 0
	}
	for k := 1; ; k++ {
		if MooreBound(d, k) >= float64(n) {
			return k
		}
	}
}
