// Package faultinject is the deterministic chaos harness for the
// distributed evaluation fleet: wrappers that inject seeded network and
// storage faults — latency, timeouts, 5xx responses, connection resets,
// truncated bodies, bit-flipped payloads, spurious backend errors — at
// the http.RoundTripper and store-backend seams, so the resilience layer
// (internal/remotestore's retries/breaker, internal/store's corruption
// tolerance and claim leases) is proven against the failures it exists
// for, in ordinary `go test` runs and the CI chaos smoke.
//
// Determinism is the point: every fault decision is drawn from one seeded
// RNG behind a mutex, so a failing chaos run replays exactly from its
// seed. The injectors corrupt and drop only what passes through them —
// they never touch the wrapped transport's or backend's own state — so
// the system under test is the real code on its real paths.
package faultinject

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Config sets per-call fault probabilities (each in [0, 1], drawn
// independently in the field order below) and the deterministic seed.
type Config struct {
	// Seed feeds the injector's RNG; equal seeds replay equal fault
	// sequences for equal call sequences.
	Seed int64
	// TimeoutProb hangs the call until its context expires — the
	// unresponsive-peer fault (the caller's deadline is what ends it).
	TimeoutProb float64
	// ResetProb fails the call with a connection-reset transport error
	// before reaching the peer.
	ResetProb float64
	// HTTP500Prob answers with a fabricated 500 instead of forwarding.
	HTTP500Prob float64
	// TruncateProb forwards the call but cuts the response body in half —
	// the torn-read fault the codec's length+CRC framing must catch.
	TruncateProb float64
	// CorruptProb forwards the call but flips one payload bit — the
	// bit-rot fault the CRC must catch.
	CorruptProb float64
	// LatencyProb delays the call by Latency before forwarding.
	LatencyProb float64
	// Latency is the injected delay (default 2ms when LatencyProb > 0).
	Latency time.Duration
}

// Stats counts what the injector did, by fault.
type Stats struct {
	Calls     int64 // total calls seen
	Timeouts  int64
	Resets    int64
	HTTP500s  int64
	Truncates int64
	Corrupts  int64
	Delays    int64
	Passed    int64 // calls forwarded untouched
}

// injector is the shared seeded decision engine.
type injector struct {
	mu  sync.Mutex
	rng *rand.Rand
	cfg Config
	st  Stats
}

func newInjector(cfg Config) *injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 2 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &injector{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
}

// fault is the decision for one call: at most one fault fires, chosen by
// independent draws in fixed field order so a seed pins the sequence.
type fault int

const (
	pass fault = iota
	timeout
	reset
	http500
	truncate
	corrupt
)

// draw decides one call's fate; delay > 0 additionally delays it.
func (in *injector) draw() (f fault, delay time.Duration, flipBit int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.st.Calls++
	switch {
	case in.rng.Float64() < in.cfg.TimeoutProb:
		in.st.Timeouts++
		return timeout, 0, 0
	case in.rng.Float64() < in.cfg.ResetProb:
		in.st.Resets++
		return reset, 0, 0
	case in.rng.Float64() < in.cfg.HTTP500Prob:
		in.st.HTTP500s++
		return http500, 0, 0
	case in.rng.Float64() < in.cfg.TruncateProb:
		in.st.Truncates++
		f = truncate
	case in.rng.Float64() < in.cfg.CorruptProb:
		in.st.Corrupts++
		f = corrupt
		flipBit = in.rng.Int63()
	default:
		in.st.Passed++
	}
	if in.rng.Float64() < in.cfg.LatencyProb {
		in.st.Delays++
		delay = in.cfg.Latency
	}
	return f, delay, flipBit
}

func (in *injector) stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st
}

// Transport wraps an http.RoundTripper with seeded fault injection — the
// "flaky network between replicas" of the chaos smoke. Place it on the
// remote-store client's transport (or `topobench serve -fault-inject`)
// and every remote call risks the configured faults while the peer itself
// stays healthy.
type Transport struct {
	base http.RoundTripper
	in   *injector
}

// NewTransport wraps base (nil means http.DefaultTransport).
func NewTransport(base http.RoundTripper, cfg Config) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{base: base, in: newInjector(cfg)}
}

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() Stats { return t.in.stats() }

// RoundTrip injects this call's drawn fault. Fabricated failures (reset,
// 500, timeout) never reach the wrapped transport; payload faults
// (truncate, corrupt) mutate a private copy of the real response body.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, delay, flipBit := t.in.draw()
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch f {
	case timeout:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case reset:
		return nil, fmt.Errorf("faultinject: connection reset by peer")
	case http500:
		return &http.Response{
			Status:     "500 Internal Server Error (injected)",
			StatusCode: http.StatusInternalServerError,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Body:    io.NopCloser(strings.NewReader("faultinject: injected server error\n")),
			Request: req,
			Header:  http.Header{},
		}, nil
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || (f != truncate && f != corrupt) {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	switch f {
	case truncate:
		body = body[:len(body)/2]
	case corrupt:
		if len(body) > 0 {
			bit := flipBit % int64(len(body)*8)
			body[bit/8] ^= 1 << (bit % 8)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Del("Content-Length")
	return resp, nil
}

// Backend wraps a store backend (Load/Save) with seeded fault injection —
// the storage-layer sibling of Transport, for torturing the tiered cache
// and the store's reader/writer/pruner interplay without a network. A
// reset or 500 draw fails the call (Load reports a miss, Save an error);
// timeout stalls it by the configured Latency (backends have no contexts
// to cancel); payload faults have no seam here — the disk codec's own
// tamper tests cover corruption — so truncate/corrupt draws pass through.
type Backend struct {
	load func(key string) ([]float64, bool)
	save func(key string, vals []float64) error
	in   *injector
}

// NewBackend wraps any Load/Save pair. The argument is deliberately a
// minimal structural interface so *store.Store, store.Tiered, and
// remotestore.Client all fit.
func NewBackend(base interface {
	Load(key string) ([]float64, bool)
	Save(key string, vals []float64) error
}, cfg Config) *Backend {
	return &Backend{load: base.Load, save: base.Save, in: newInjector(cfg)}
}

// Stats snapshots the injected-fault counters.
func (b *Backend) Stats() Stats { return b.in.stats() }

// Load injects the drawn fault, then delegates.
func (b *Backend) Load(key string) ([]float64, bool) {
	f, delay, _ := b.in.draw()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch f {
	case timeout:
		time.Sleep(b.in.cfg.Latency)
		return nil, false
	case reset, http500:
		return nil, false
	}
	return b.load(key)
}

// Save injects the drawn fault, then delegates.
func (b *Backend) Save(key string, vals []float64) error {
	f, delay, _ := b.in.draw()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch f {
	case timeout:
		time.Sleep(b.in.cfg.Latency)
		return fmt.Errorf("faultinject: save timed out")
	case reset, http500:
		return fmt.Errorf("faultinject: save failed")
	}
	return b.save(key, vals)
}

// ParseSpec parses the CLI fault specification, a comma-separated
// key=value list:
//
//	seed=7,error=0.2,corrupt=0.05,truncate=0.02,timeout=0.01,latency=5ms,latencyprob=0.5
//
// "error" splits evenly between connection resets and 5xx responses —
// the catch-all "20% of remote calls fail somehow" knob of the chaos
// smoke. Unknown keys are errors, matching the scenario grammar's rule
// that a typo must never silently weaken a test.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad spec entry %q (want key=value)", kv)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "latency":
			d, err := time.ParseDuration(v)
			if err != nil {
				return cfg, fmt.Errorf("faultinject: bad latency %q: %v", v, err)
			}
			cfg.Latency = d
			if cfg.LatencyProb == 0 {
				cfg.LatencyProb = 1
			}
		default:
			p, err := strconv.ParseFloat(v, 64)
			if err != nil || p < 0 || p > 1 {
				return cfg, fmt.Errorf("faultinject: bad probability %s=%q", k, v)
			}
			switch k {
			case "error":
				cfg.ResetProb = p / 2
				// The second draw happens only when the first passed, so the
				// combined rate is p: p/2 + (1-p/2)·q = p ⇒ q = (p/2)/(1-p/2).
				cfg.HTTP500Prob = (p / 2) / (1 - p/2)
			case "reset":
				cfg.ResetProb = p
			case "http500":
				cfg.HTTP500Prob = p
			case "timeout":
				cfg.TimeoutProb = p
			case "truncate":
				cfg.TruncateProb = p
			case "corrupt":
				cfg.CorruptProb = p
			case "latencyprob":
				cfg.LatencyProb = p
			default:
				return cfg, fmt.Errorf("faultinject: unknown spec key %q", k)
			}
		}
	}
	return cfg, nil
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.TimeoutProb > 0 || c.ResetProb > 0 || c.HTTP500Prob > 0 ||
		c.TruncateProb > 0 || c.CorruptProb > 0 || c.LatencyProb > 0
}
