package faultinject

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDeterministicReplay: equal seeds and equal call sequences draw
// identical fault sequences — the property that makes a failing chaos run
// reproducible from its seed.
func TestDeterministicReplay(t *testing.T) {
	cfg := Config{Seed: 42, ResetProb: 0.2, HTTP500Prob: 0.2, TruncateProb: 0.1, CorruptProb: 0.1}
	run := func() []fault {
		in := newInjector(cfg)
		var seq []fault
		for i := 0; i < 200; i++ {
			f, _, _ := in.draw()
			seq = append(seq, f)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	other := newInjector(Config{Seed: 43, ResetProb: 0.2, HTTP500Prob: 0.2, TruncateProb: 0.1, CorruptProb: 0.1})
	diverged := false
	for i := 0; i < 200; i++ {
		f, _, _ := other.draw()
		if f != a[i] {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("different seeds drew the identical 200-call fault sequence")
	}
}

// TestTransportFaults drives each fault class through a real HTTP stack
// and checks what the client observes.
func TestTransportFaults(t *testing.T) {
	payload := []byte("twelve bytes")
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(payload)
	}))
	t.Cleanup(hs.Close)
	do := func(cfg Config, ctx context.Context) (*http.Response, []byte, error) {
		tr := NewTransport(nil, cfg)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL, nil)
		resp, err := tr.RoundTrip(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body, nil
	}

	t.Run("pass", func(t *testing.T) {
		resp, body, err := do(Config{}, context.Background())
		if err != nil || resp.StatusCode != 200 || !bytes.Equal(body, payload) {
			t.Fatalf("clean pass-through broken: %v %v %q", err, resp, body)
		}
	})
	t.Run("reset", func(t *testing.T) {
		if _, _, err := do(Config{ResetProb: 1}, context.Background()); err == nil {
			t.Fatal("reset draw returned a response")
		}
	})
	t.Run("http500", func(t *testing.T) {
		resp, _, err := do(Config{HTTP500Prob: 1}, context.Background())
		if err != nil || resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("500 draw: %v %v", err, resp)
		}
	})
	t.Run("timeout", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		defer cancel()
		start := time.Now()
		_, _, err := do(Config{TimeoutProb: 1}, ctx)
		if err == nil {
			t.Fatal("timeout draw returned a response")
		}
		if time.Since(start) < 10*time.Millisecond {
			t.Fatal("timeout draw returned before the context expired")
		}
	})
	t.Run("truncate", func(t *testing.T) {
		_, body, err := do(Config{TruncateProb: 1}, context.Background())
		if err != nil || len(body) != len(payload)/2 {
			t.Fatalf("truncate draw: %v %q", err, body)
		}
	})
	t.Run("corrupt", func(t *testing.T) {
		_, body, err := do(Config{CorruptProb: 1}, context.Background())
		if err != nil || len(body) != len(payload) || bytes.Equal(body, payload) {
			t.Fatalf("corrupt draw: %v %q (must differ from %q by one bit)", err, body, payload)
		}
		diff := 0
		for i := range body {
			for b := body[i] ^ payload[i]; b != 0; b &= b - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("corrupt draw flipped %d bits, want exactly 1", diff)
		}
	})
}

// okBackend is a healthy Load/Save pair for Backend wrapper tests.
type okBackend struct{ saves, loads int }

func (b *okBackend) Load(key string) ([]float64, bool) { b.loads++; return []float64{1}, true }
func (b *okBackend) Save(key string, vals []float64) error {
	b.saves++
	return nil
}

// TestBackendFaults: fabricated failures never reach the wrapped backend;
// passes always do.
func TestBackendFaults(t *testing.T) {
	base := &okBackend{}
	fb := NewBackend(base, Config{ResetProb: 1})
	if _, ok := fb.Load("k"); ok {
		t.Fatal("reset draw surfaced a hit")
	}
	if err := fb.Save("k", nil); err == nil {
		t.Fatal("reset draw surfaced a successful save")
	}
	if base.loads != 0 || base.saves != 0 {
		t.Fatalf("fabricated failures reached the backend: %+v", base)
	}

	clean := NewBackend(base, Config{})
	if _, ok := clean.Load("k"); !ok {
		t.Fatal("clean wrapper lost the hit")
	}
	if err := clean.Save("k", nil); err != nil {
		t.Fatal(err)
	}
	if base.loads != 1 || base.saves != 1 {
		t.Fatalf("clean calls did not delegate: %+v", base)
	}
	if st := clean.Stats(); st.Passed != 2 || st.Calls != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestParseSpec: the CLI grammar, including the "error" convenience knob's
// combined-rate arithmetic and the unknown-key rule.
func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=7,error=0.2,corrupt=0.05,latency=5ms,latencyprob=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.CorruptProb != 0.05 || cfg.Latency != 5*time.Millisecond || cfg.LatencyProb != 0.5 {
		t.Fatalf("parsed: %+v", cfg)
	}
	// error=p splits so the combined reset+500 rate is exactly p.
	combined := cfg.ResetProb + (1-cfg.ResetProb)*cfg.HTTP500Prob
	if diff := combined - 0.2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("combined error rate %v, want 0.2 (reset=%v http500=%v)", combined, cfg.ResetProb, cfg.HTTP500Prob)
	}
	if !cfg.Enabled() {
		t.Fatal("parsed config reports disabled")
	}

	if c, err := ParseSpec(""); err != nil || c.Enabled() {
		t.Fatalf("empty spec: %+v %v", c, err)
	}
	for _, bad := range []string{"bogus=1", "error=2", "seed=x", "latency=fast", "error"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}

// TestErrorRateEmpirical: with error=0.5 over many draws, roughly half
// the calls fail — the knob means what it says.
func TestErrorRateEmpirical(t *testing.T) {
	cfg, err := ParseSpec("seed=3,error=0.5")
	if err != nil {
		t.Fatal(err)
	}
	in := newInjector(cfg)
	const n = 4000
	for i := 0; i < n; i++ {
		in.draw()
	}
	st := in.stats()
	failed := st.Resets + st.HTTP500s
	if failed < n*4/10 || failed > n*6/10 {
		t.Fatalf("error=0.5 produced %d/%d failures (%+v)", failed, n, st)
	}
}
