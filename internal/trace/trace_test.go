package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Options{Sample: 1})
	tid := tr.newTraceID()
	sid := tr.newSpanID()
	h := FormatTraceparent(tid, sid, true)
	if len(h) != traceparentLen || !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("malformed traceparent %q", h)
	}
	gt, gs, sampled, ok := ParseTraceparent(h)
	if !ok || gt != tid || gs != sid || !sampled {
		t.Fatalf("round trip lost data: %v %v %v %v", gt, gs, sampled, ok)
	}
	if _, _, s, _ := ParseTraceparent(FormatTraceparent(tid, sid, false)); s {
		t.Fatalf("unsampled flag did not round-trip")
	}
}

func TestTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",              // reserved version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",              // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",              // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",        // trailing data on v00
		"00-ZZf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",              // non-hex
		"00x4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",              // bad separator
		"004bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-0123456789abc", // shifted layout
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", h)
		}
	}
	// A future version with trailing fields parses by known prefix.
	h := "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-whatever"
	if _, _, sampled, ok := ParseTraceparent(h); !ok || !sampled {
		t.Errorf("ParseTraceparent(%q) = ok=%v sampled=%v, want prefix-parse success", h, ok, sampled)
	}
}

func TestSamplingGate(t *testing.T) {
	if (*Tracer)(nil).SampleNext() {
		t.Fatal("nil tracer sampled")
	}
	never := New(Options{Sample: 0})
	for i := 0; i < 100; i++ {
		if never.SampleNext() {
			t.Fatal("Sample:0 tracer sampled")
		}
	}
	always := New(Options{Sample: 1})
	for i := 0; i < 100; i++ {
		if !always.SampleNext() {
			t.Fatal("Sample:1 tracer skipped a request")
		}
	}
	tenth := New(Options{Sample: 0.1})
	hits := 0
	for i := 0; i < 1000; i++ {
		if tenth.SampleNext() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("Sample:0.1 over 1000 requests sampled %d, want exactly 100 (counter gate)", hits)
	}
}

func TestSpanHierarchyAndSnapshot(t *testing.T) {
	tcr := New(Options{Sample: 1, Buffer: 4})
	tr := tcr.Start(TraceID{}, SpanID{})
	root := tr.Root("HTTP POST /v1/eval")
	ctx := ContextWithSpan(context.Background(), root)
	child := StartSpan(ctx, "flight.lead")
	child.Attr("grid", "g1")
	child.AttrInt("runs", 3)
	grand := child.Child("mcf.solve")
	grand.End()
	child.End()
	root.End()
	tcr.Finish(tr, 5*time.Millisecond, false)

	snap := tcr.Snapshot(0)
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d traces, want 1", len(snap))
	}
	got := snap[0]
	if got.TraceID != tr.ID().String() || got.Root != "HTTP POST /v1/eval" {
		t.Fatalf("trace header wrong: %+v", got)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	if got.Spans[0].Parent != "" {
		t.Fatalf("root span has parent %q", got.Spans[0].Parent)
	}
	if got.Spans[1].Parent != got.Spans[0].SpanID {
		t.Fatalf("child not parented to root: %+v", got.Spans)
	}
	if got.Spans[2].Parent != got.Spans[1].SpanID {
		t.Fatalf("grandchild not parented to child: %+v", got.Spans)
	}
	if got.Spans[1].Attrs["grid"] != "g1" || got.Spans[1].Attrs["runs"] != int64(3) {
		t.Fatalf("attrs lost: %+v", got.Spans[1].Attrs)
	}
	// min-duration filter drops the 5ms trace.
	if n := len(tcr.Snapshot(10 * time.Millisecond)); n != 0 {
		t.Fatalf("min filter kept %d traces", n)
	}
}

func TestRemoteParentJoinsTrace(t *testing.T) {
	tcr := New(Options{Sample: 1})
	callerTID, _, _, _ := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	var remote SpanID
	copy(remote[:], []byte{0, 0xf0, 0x67, 0xaa, 0x0b, 0xa9, 0x02, 0xb7})
	tr := tcr.Start(callerTID, remote)
	tr.Root("GET /v1/result").End()
	tcr.Finish(tr, time.Millisecond, false)
	snap := tcr.Snapshot(0)
	if snap[0].TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("replica trace did not join caller's id: %s", snap[0].TraceID)
	}
	if snap[0].Spans[0].Parent != remote.String() {
		t.Fatalf("root span parent = %q, want caller's span %q", snap[0].Spans[0].Parent, remote.String())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	tcr := New(Options{Sample: 1, Buffer: 2})
	for i := 0; i < 3; i++ {
		tr := tcr.Start(TraceID{}, SpanID{})
		tr.Root("r").End()
		tcr.Finish(tr, time.Duration(i+1)*time.Millisecond, false)
	}
	snap := tcr.Snapshot(0)
	if len(snap) != 2 {
		t.Fatalf("ring holds %d, want 2", len(snap))
	}
	// Newest first: durations 3ms then 2ms; the 1ms trace evicted.
	if snap[0].DurationUS != 3000 || snap[1].DurationUS != 2000 {
		t.Fatalf("ring order wrong: %d, %d", snap[0].DurationUS, snap[1].DurationUS)
	}
}

func TestZeroSpanIsInert(t *testing.T) {
	var s Span
	s.End()
	s.Attr("k", "v")
	s.AttrInt("k", 1)
	if s.OK() || s.Child("x").OK() {
		t.Fatal("zero span claims to be live")
	}
	if got := StartSpan(context.Background(), "x"); got.OK() {
		t.Fatal("StartSpan on spanless context returned live span")
	}
	if got := StartSpan(nil, "x"); got.OK() { //nolint:staticcheck // nil ctx tolerated by design
		t.Fatal("StartSpan on nil context returned live span")
	}
	if ctx := ContextWithSpan(context.Background(), s); ctx != context.Background() {
		t.Fatal("inert span changed the context")
	}
}

func TestCaptureSlow(t *testing.T) {
	tcr := New(Options{Sample: 0, Slow: time.Millisecond})
	start := time.Now().Add(-50 * time.Millisecond)
	id := tcr.Capture("HTTP POST /v1/eval", start, 50*time.Millisecond,
		Attr{Key: "route", Str: "eval"}, Attr{Key: "status", Num: 200, IsNum: true})
	if id.IsZero() {
		t.Fatal("Capture returned zero id")
	}
	snap := tcr.Snapshot(0)
	if len(snap) != 1 || !snap[0].Slow || snap[0].TraceID != id.String() {
		t.Fatalf("slow capture missing: %+v", snap)
	}
	if snap[0].Spans[0].DurationUS != 50000 {
		t.Fatalf("captured duration %d", snap[0].Spans[0].DurationUS)
	}
	if snap[0].Spans[0].Attrs["route"] != "eval" {
		t.Fatalf("capture attrs lost: %+v", snap[0].Spans[0].Attrs)
	}
}
