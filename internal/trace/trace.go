// Package trace is a lightweight, allocation-disciplined span tracer
// for the topobench service stack.
//
// Design constraints, in order:
//
//  1. The warm dataplane must stay zero-extra-alloc when a request is
//     not sampled. Every entry point is therefore a no-op on the
//     unsampled path: StartSpan on a context without a live span
//     returns the zero Span (no allocation), and every Span method is
//     safe — and free — on the zero value. Instrumentation sites read
//     linearly with no "if traced" branches.
//  2. Sampling is decided once, at the request root, by a 1-in-N
//     counter gate (Tracer.SampleNext) or by an incoming sampled W3C
//     traceparent. Once a trace exists, span recording may allocate;
//     the sampled path is the slow path by construction.
//  3. Completed traces land in a fixed-size ring buffer so the tracer
//     has a hard memory bound regardless of uptime. Snapshot serves
//     the ring newest-first for GET /debug/traces.
//
// Trace identity is W3C trace-context compatible: 16-byte trace IDs,
// 8-byte span IDs, and ParseTraceparent/FormatTraceparent for the
// `traceparent` header, so a peer replica's spans join the caller's
// trace across process boundaries.
package trace

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID is a W3C trace-context trace id (16 bytes, rendered as 32
// lowercase hex characters).
type TraceID [16]byte

// SpanID is a W3C trace-context span id (8 bytes, 16 hex characters).
type SpanID [8]byte

// String renders the id as lowercase hex.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as lowercase hex.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the id is the invalid all-zero id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the invalid all-zero id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// Attr is a key/value annotation on a span. Exactly one of Str/Num is
// meaningful; IsNum selects which.
type Attr struct {
	Key   string
	Str   string
	Num   int64
	IsNum bool
}

// spanRec is the stored form of one span.
type spanRec struct {
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	end    time.Time
	attrs  []Attr
}

// maxSpans bounds the spans recorded per trace; beyond it spans are
// counted but dropped, so a pathological request cannot balloon the
// ring's memory.
const maxSpans = 512

// Options configures a Tracer.
type Options struct {
	// Sample is the fraction of requests traced, in [0, 1]. It is
	// quantized to a deterministic 1-in-N counter gate: 0 disables
	// head sampling entirely, 1 traces every request. Slow-request
	// capture (Slow) applies regardless.
	Sample float64
	// Slow is the duration at or above which a completed request is
	// always captured (and flagged slow), even when head sampling
	// skipped it. Zero disables slow capture.
	Slow time.Duration
	// Buffer is the number of completed traces retained in the ring
	// (default 256).
	Buffer int
}

// Tracer mints, samples, and retains traces.
type Tracer struct {
	every uint64 // sample 1 in every N requests; 0 = never
	slow  time.Duration

	ctr atomic.Uint64 // request counter for the sampling gate
	rng atomic.Uint64 // splitmix64 state for id generation

	mu   sync.Mutex
	ring []*traceRec
	next int
}

// traceRec is a completed trace as retained by the ring.
type traceRec struct {
	id    TraceID
	start time.Time
	dur   time.Duration
	slow  bool
	spans []spanRec
	drops int
}

// New builds a Tracer from o. A nil *Tracer is valid everywhere and
// disables tracing.
func New(o Options) *Tracer {
	every := uint64(0)
	switch {
	case o.Sample >= 1:
		every = 1
	case o.Sample > 0:
		every = uint64(1/o.Sample + 0.5)
	}
	buf := o.Buffer
	if buf <= 0 {
		buf = 256
	}
	t := &Tracer{every: every, slow: o.Slow, ring: make([]*traceRec, buf)}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Slow returns the configured slow-request threshold (0 = disabled).
func (t *Tracer) Slow() time.Duration {
	if t == nil {
		return 0
	}
	return t.slow
}

// SampleNext reports whether the next request should be head-sampled.
// It is a single atomic add — no allocation — so calling it per
// request on the warm dataplane is free.
func (t *Tracer) SampleNext() bool {
	if t == nil || t.every == 0 {
		return false
	}
	return t.ctr.Add(1)%t.every == 0
}

// rand64 is splitmix64 over an atomic state word: cheap, lock-free,
// and good enough for telemetry ids (never for anything
// security-sensitive).
func (t *Tracer) rand64() uint64 {
	x := t.rng.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (t *Tracer) newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := t.rand64()
		for i := range id {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

func (t *Tracer) newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := t.rand64(), t.rand64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// Start begins a live trace. A zero parent mints a fresh trace id; a
// non-zero parent (from an incoming traceparent) joins the caller's
// trace, and remote becomes the parent of this process's root span so
// the replica's spans nest under the caller's.
func (t *Tracer) Start(parent TraceID, remote SpanID) *Trace {
	if t == nil {
		return nil
	}
	id := parent
	if id.IsZero() {
		id = t.newTraceID()
	}
	return &Trace{tracer: t, id: id, remote: remote, start: time.Now()}
}

// Trace is an in-flight sampled trace. It is safe for concurrent use:
// a flight leader's evaluation goroutines may record spans while the
// HTTP goroutine records its own.
type Trace struct {
	tracer *Tracer
	id     TraceID
	remote SpanID
	start  time.Time

	mu    sync.Mutex
	spans []spanRec
	drops int
}

// ID returns the trace id.
func (tr *Trace) ID() TraceID {
	if tr == nil {
		return TraceID{}
	}
	return tr.id
}

// StartSpan opens a span with an explicit parent span id. Most call
// sites should use the package-level StartSpan(ctx, name) instead;
// this form exists for the root span (parent = the remote caller's
// span id, or zero).
func (tr *Trace) StartSpan(name string, parent SpanID) Span {
	if tr == nil {
		return Span{}
	}
	id := tr.tracer.newSpanID()
	tr.mu.Lock()
	if len(tr.spans) >= maxSpans {
		tr.drops++
		tr.mu.Unlock()
		return Span{}
	}
	idx := len(tr.spans)
	tr.spans = append(tr.spans, spanRec{id: id, parent: parent, name: name, start: time.Now()})
	tr.mu.Unlock()
	return Span{tr: tr, idx: int32(idx), id: id}
}

// Root opens the trace's root span, parented to the remote caller's
// span when the trace was joined from a traceparent.
func (tr *Trace) Root(name string) Span {
	if tr == nil {
		return Span{}
	}
	return tr.StartSpan(name, tr.remote)
}

// Finish completes the trace and commits it to the ring. dur is the
// request's wall-clock duration; slow marks always-sampled-slow
// captures so /debug/traces can distinguish them.
func (t *Tracer) Finish(tr *Trace, dur time.Duration, slow bool) {
	if t == nil || tr == nil {
		return
	}
	tr.mu.Lock()
	spans := tr.spans
	drops := tr.drops
	tr.mu.Unlock()
	rec := &traceRec{id: tr.id, start: tr.start, dur: dur, slow: slow, spans: spans, drops: drops}
	t.mu.Lock()
	t.ring[t.next] = rec
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.mu.Unlock()
}

// Capture records a single-span trace after the fact. It backs the
// always-sample-slow rule: a request that was not head-sampled has no
// span detail, but if it turned out slow it still deserves a row in
// /debug/traces and a trace id for the log line. Returns the minted
// trace id.
func (t *Tracer) Capture(name string, start time.Time, dur time.Duration, attrs ...Attr) TraceID {
	if t == nil {
		return TraceID{}
	}
	tr := t.Start(TraceID{}, SpanID{})
	tr.start = start
	tr.Root(name)
	tr.mu.Lock()
	tr.spans[0].start = start
	tr.spans[0].end = start.Add(dur)
	tr.spans[0].attrs = append(tr.spans[0].attrs, attrs...)
	tr.mu.Unlock()
	t.Finish(tr, dur, true)
	return tr.id
}

// Span is a handle onto one recorded span. The zero Span is valid and
// inert: every method is a no-op, so unsampled code paths cost
// nothing beyond the zero-value check.
type Span struct {
	tr  *Trace
	idx int32
	id  SpanID
}

// OK reports whether the span is live (recording).
func (s Span) OK() bool { return s.tr != nil }

// ID returns the span id (zero for an inert span).
func (s Span) ID() SpanID { return s.id }

// TraceID returns the owning trace's id (zero for an inert span).
func (s Span) TraceID() TraceID {
	if s.tr == nil {
		return TraceID{}
	}
	return s.tr.id
}

// End closes the span at time.Now. Ending twice keeps the first end.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	if s.tr.spans[s.idx].end.IsZero() {
		s.tr.spans[s.idx].end = time.Now()
	}
	s.tr.mu.Unlock()
}

// Attr attaches a string annotation.
func (s Span) Attr(key, val string) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.spans[s.idx].attrs = append(s.tr.spans[s.idx].attrs, Attr{Key: key, Str: val})
	s.tr.mu.Unlock()
}

// AttrInt attaches an integer annotation.
func (s Span) AttrInt(key string, val int64) {
	if s.tr == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.spans[s.idx].attrs = append(s.tr.spans[s.idx].attrs, Attr{Key: key, Num: val, IsNum: true})
	s.tr.mu.Unlock()
}

// Child opens a span parented to s. A convenience for call sites that
// hold a Span but no context.
func (s Span) Child(name string) Span {
	if s.tr == nil {
		return Span{}
	}
	return s.tr.StartSpan(name, s.id)
}

// ctxKey keys the current Span in a context.
type ctxKey struct{}

// ContextWithSpan returns a context carrying s as the current span.
// If s is inert the context is returned unchanged (no allocation).
func ContextWithSpan(ctx context.Context, s Span) context.Context {
	if s.tr == nil || ctx == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the current span, or the inert zero Span.
// Safe on a nil context.
func SpanFromContext(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	if s, ok := ctx.Value(ctxKey{}).(Span); ok {
		return s
	}
	return Span{}
}

// StartSpan opens a child of the context's current span. On a context
// with no live span (the unsampled path) it returns the zero Span
// without allocating, so instrumentation is free when tracing is off.
func StartSpan(ctx context.Context, name string) Span {
	parent := SpanFromContext(ctx)
	if parent.tr == nil {
		return Span{}
	}
	return parent.tr.StartSpan(name, parent.id)
}
