package trace

import "time"

// TraceJSON is the wire form of one completed trace as served by
// GET /debug/traces. The schema is documented in doc.go's
// Observability section; tests and the CI tracing smoke rely on it.
type TraceJSON struct {
	TraceID    string     `json:"trace_id"`
	Root       string     `json:"root"`
	Start      time.Time  `json:"start"`
	DurationUS int64      `json:"duration_us"`
	Slow       bool       `json:"slow,omitempty"`
	Dropped    int        `json:"dropped_spans,omitempty"`
	Spans      []SpanJSON `json:"spans"`
}

// SpanJSON is one span inside a TraceJSON.
type SpanJSON struct {
	SpanID     string         `json:"span_id"`
	Parent     string         `json:"parent,omitempty"`
	Name       string         `json:"name"`
	StartUS    int64          `json:"start_us"`
	DurationUS int64          `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// Snapshot returns the retained traces, newest first, keeping only
// traces with duration >= min (min <= 0 keeps everything).
func (t *Tracer) Snapshot(min time.Duration) []TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := len(t.ring)
	recs := make([]*traceRec, 0, n)
	// Walk backwards from the most recently written slot.
	for i := 1; i <= n; i++ {
		r := t.ring[(t.next-i+n)%n]
		if r == nil {
			break
		}
		recs = append(recs, r)
	}
	t.mu.Unlock()

	out := make([]TraceJSON, 0, len(recs))
	for _, r := range recs {
		if r.dur < min {
			continue
		}
		tj := TraceJSON{
			TraceID:    r.id.String(),
			Start:      r.start,
			DurationUS: r.dur.Microseconds(),
			Slow:       r.slow,
			Dropped:    r.drops,
			Spans:      make([]SpanJSON, 0, len(r.spans)),
		}
		if len(r.spans) > 0 {
			tj.Root = r.spans[0].name
		}
		for _, sp := range r.spans {
			sj := SpanJSON{
				SpanID:  sp.id.String(),
				Name:    sp.name,
				StartUS: sp.start.Sub(r.start).Microseconds(),
			}
			if !sp.parent.IsZero() {
				sj.Parent = sp.parent.String()
			}
			end := sp.end
			if end.IsZero() {
				// A span never ended (leaked or trace finished first):
				// clamp to the trace end so durations stay sane.
				end = r.start.Add(r.dur)
			}
			sj.DurationUS = end.Sub(sp.start).Microseconds()
			if len(sp.attrs) > 0 {
				attrs := make(map[string]any, len(sp.attrs))
				for _, a := range sp.attrs {
					if a.IsNum {
						attrs[a.Key] = a.Num
					} else {
						attrs[a.Key] = a.Str
					}
				}
				sj.Attrs = attrs
			}
			tj.Spans = append(tj.Spans, sj)
		}
		out = append(out, tj)
	}
	return out
}
