package trace

import "encoding/hex"

// W3C trace-context `traceparent` header handling. Only version 00 is
// emitted; any version is accepted as long as the field layout holds
// (per spec, future versions must keep the 00-layout prefix).
//
//	traceparent: 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01
//	             ^^ ^^^^^^^^^^^^^^^^ trace-id ^^^^^^ ^^ span-id ^^^^^^ flags

const traceparentLen = 2 + 1 + 32 + 1 + 16 + 1 + 2

// FormatTraceparent renders a traceparent header value.
func FormatTraceparent(tid TraceID, sid SpanID, sampled bool) string {
	b := make([]byte, 0, traceparentLen)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, tid[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, sid[:])
	if sampled {
		b = append(b, '-', '0', '1')
	} else {
		b = append(b, '-', '0', '0')
	}
	return string(b)
}

// ParseTraceparent parses a traceparent header value. ok is false for
// anything malformed or carrying the invalid all-zero ids; callers
// then mint a fresh trace instead of joining a broken one.
func ParseTraceparent(h string) (tid TraceID, sid SpanID, sampled, ok bool) {
	if len(h) < traceparentLen {
		return TraceID{}, SpanID{}, false, false
	}
	// Version ff is reserved-invalid; longer values are tolerated only
	// for versions above 00 (spec: parse the known prefix).
	if h[0] == 'f' && h[1] == 'f' {
		return TraceID{}, SpanID{}, false, false
	}
	if len(h) > traceparentLen && (h[:2] == "00" || h[traceparentLen] != '-') {
		return TraceID{}, SpanID{}, false, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(sid[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || sid.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, sid, flags[0]&1 == 1, true
}
