package store

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestOrphanTempGC: a writer SIGKILLed between CreateTemp and the
// publishing rename leaves a .tmp-* file. Open must index the tree
// cleanly, garbage-collect aged orphans, and leave fresh temps (a racing
// process's in-flight Save) alone.
func TestOrphanTempGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("live-key", []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: orphan temps in a shard dir and at the root,
	// plus one fresh temp that must survive.
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * orphanGrace)
	for _, p := range []string{filepath.Join(shard, ".tmp-dead1"), filepath.Join(dir, ".tmp-dead2")} {
		if err := os.WriteFile(p, []byte("torn half-written entry"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	fresh := filepath.Join(shard, ".tmp-live")
	if err := os.WriteFile(fresh, []byte("in-flight"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen over crash debris: %v", err)
	}
	if got := s2.Stats().Orphans; got != 2 {
		t.Fatalf("orphans GC'd: %d, want 2", got)
	}
	if s2.Stats().Entries != 1 {
		t.Fatalf("entries: %d, want 1 (debris must not be indexed)", s2.Stats().Entries)
	}
	if vals, ok := s2.Load("live-key"); !ok || !reflect.DeepEqual(vals, []float64{1, 2, 3}) {
		t.Fatalf("live entry lost across crash recovery: %v %v", vals, ok)
	}
	for _, p := range []string{filepath.Join(shard, ".tmp-dead1"), filepath.Join(dir, ".tmp-dead2")} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("aged orphan %s not removed", p)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp removed — would tear a racing writer: %v", err)
	}
}

// TestClaimLease exercises the claim primitive: atomic acquisition, a
// live lease losing the race, owner-checked release, and expired-lease
// reclaim.
func TestClaimLease(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr := Addr("claimed-point")

	won, deadline := s.Claim(addr, "alice", time.Minute)
	if !won {
		t.Fatal("first claim must win")
	}
	if time.Until(deadline) < 30*time.Second {
		t.Fatalf("deadline too near: %v", deadline)
	}
	if won, hd := s.Claim(addr, "bob", time.Minute); won {
		t.Fatal("second claim on a live lease must lose")
	} else if hd.Sub(deadline) > time.Second || deadline.Sub(hd) > time.Second {
		t.Fatalf("loser's deadline %v does not echo the holder's %v", hd, deadline)
	}
	if owner, _, ok := s.ClaimHolder(addr); !ok || owner != "alice" {
		t.Fatalf("holder: %q %v, want alice", owner, ok)
	}

	// A non-owner release is a no-op; the owner's releases.
	s.Unclaim(addr, "bob")
	if _, _, ok := s.ClaimHolder(addr); !ok {
		t.Fatal("bob stripped alice's lease")
	}
	s.Unclaim(addr, "alice")
	if _, _, ok := s.ClaimHolder(addr); ok {
		t.Fatal("lease survived its owner's release")
	}

	// Crash-safety: an expired lease is reclaimable by anyone.
	if won, _ := s.Claim(addr, "crasher", time.Millisecond); !won {
		t.Fatal("fresh claim must win")
	}
	time.Sleep(5 * time.Millisecond)
	if won, _ := s.Claim(addr, "heir", time.Minute); !won {
		t.Fatal("expired lease must be reclaimable")
	}
	if owner, _, ok := s.ClaimHolder(addr); !ok || owner != "heir" {
		t.Fatalf("holder after reclaim: %q %v, want heir", owner, ok)
	}
}

// mapBackend is an in-memory remote tier for Tiered tests.
type mapBackend struct {
	mu   sync.Mutex
	m    map[string][]float64
	down bool
}

func (b *mapBackend) Load(key string) ([]float64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil, false
	}
	v, ok := b.m[key]
	return v, ok
}

func (b *mapBackend) Save(key string, vals []float64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return fmt.Errorf("mapBackend: down")
	}
	if b.m == nil {
		b.m = map[string][]float64{}
	}
	b.m[key] = append([]float64(nil), vals...)
	return nil
}

// TestTieredPromotion: a remote hit is written back to local disk, so the
// next miss is a disk hit even with the remote down.
func TestTieredPromotion(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	remote := &mapBackend{m: map[string][]float64{"pt": {4, 5, 6}}}
	tiered := NewTiered(disk, remote, TieredOptions{})

	vals, ok := tiered.Load("pt")
	if !ok || !reflect.DeepEqual(vals, []float64{4, 5, 6}) {
		t.Fatalf("remote hit: %v %v", vals, ok)
	}
	remote.down = true
	if vals, ok := tiered.Load("pt"); !ok || !reflect.DeepEqual(vals, []float64{4, 5, 6}) {
		t.Fatalf("promoted entry not served from disk: %v %v", vals, ok)
	}
	st := tiered.Stats()
	if st.RemoteHits != 1 || st.Promotions != 1 || st.DiskHits != 1 {
		t.Fatalf("stats: %+v", st)
	}

	// A miss everywhere reports miss; a Save publishes to both tiers.
	if _, ok := tiered.Load("cold"); ok {
		t.Fatal("phantom hit")
	}
	remote.down = false
	if err := tiered.Save("cold", []float64{7}); err != nil {
		t.Fatal(err)
	}
	if v, ok := remote.Load("cold"); !ok || v[0] != 7 {
		t.Fatal("save did not reach the remote tier")
	}
	if v, ok := disk.Load("cold"); !ok || v[0] != 7 {
		t.Fatal("save did not reach disk")
	}
}

// TestTieredRemoteSaveFailureIsBestEffort: a down remote tier never fails
// a Save — the disk write is authoritative, the failure is counted.
func TestTieredRemoteSaveFailureIsBestEffort(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tiered := NewTiered(disk, &mapBackend{down: true}, TieredOptions{})
	if err := tiered.Save("pt", []float64{1}); err != nil {
		t.Fatalf("save failed because the REMOTE was down: %v", err)
	}
	if got := tiered.Stats().RemoteSaveErrs; got != 1 {
		t.Fatalf("remote save errors: %d, want 1", got)
	}
	if _, ok := disk.Load("pt"); !ok {
		t.Fatal("disk write lost")
	}
}

// TestTieredClaimSingleflight: two replicas (separate handles, shared
// pool) miss the same point concurrently. Exactly one wins the solve
// lease; the other waits and is served the winner's published result.
func TestTieredClaimSingleflight(t *testing.T) {
	dir := t.TempDir()
	open := func() *Tiered {
		disk, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewTiered(disk, nil, TieredOptions{LeaseTTL: 10 * time.Second, Poll: 2 * time.Millisecond})
	}
	r1, r2 := open(), open()

	if _, ok := r1.Load("pt"); ok {
		t.Fatal("cold pool must miss")
	}
	if got := r1.Stats().ClaimsWon; got != 1 {
		t.Fatalf("r1 claims won: %d", got)
	}

	type res struct {
		vals []float64
		ok   bool
	}
	waited := make(chan res, 1)
	go func() {
		v, ok := r2.Load("pt")
		waited <- res{v, ok}
	}()
	// Let r2 lose the claim and enter its poll loop, then publish.
	for r2.Stats().ClaimsLost == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := r1.Save("pt", []float64{9, 9}); err != nil {
		t.Fatal(err)
	}
	got := <-waited
	if !got.ok || !reflect.DeepEqual(got.vals, []float64{9, 9}) {
		t.Fatalf("waiter result: %v %v", got.vals, got.ok)
	}
	if st := r2.Stats(); st.WaitHits != 1 || st.ClaimsWon != 0 {
		t.Fatalf("waiter stats: %+v (must be served, not solve)", st)
	}
	// The lease was released on publish.
	if _, _, ok := r1.Disk().ClaimHolder(Addr("pt")); ok {
		t.Fatal("lease survived its publish")
	}
}

// TestTieredCrashReclaim: a claimant that dies mid-solve must not wedge
// the pool — its lease expires and a waiter takes over the solve.
func TestTieredCrashReclaim(t *testing.T) {
	dir := t.TempDir()
	open := func(ttl time.Duration) *Tiered {
		disk, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		return NewTiered(disk, nil, TieredOptions{LeaseTTL: ttl, Poll: 2 * time.Millisecond})
	}
	crasher := open(40 * time.Millisecond)
	heir := open(40 * time.Millisecond)

	if _, ok := crasher.Load("pt"); ok {
		t.Fatal("cold pool must miss")
	}
	// crasher now holds the lease and "dies": it never Saves.
	start := time.Now()
	if _, ok := heir.Load("pt"); ok {
		t.Fatal("heir must get the miss (and the solve) after the lease expires")
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("reclaim took %v — the no-stall bound failed", waited)
	}
	st := heir.Stats()
	if st.ClaimsLost == 0 || st.Reclaims == 0 {
		t.Fatalf("heir stats: %+v (expected a lost claim then a reclaim)", st)
	}
	if st.ClaimsWon == 0 && st.WaitTimeouts == 0 {
		t.Fatalf("heir stats: %+v (must end holding the lease or degrading to a local solve)", st)
	}
}

// TestPruneUnderFaultyConcurrentWriters tortures the reader/writer/pruner
// interplay through the fault injector: 16 writers publishing through a
// flaky backend while Prune runs continuously. The invariant is the
// corruption-tolerance rule end to end — every Load returns either the
// exact stored values or a miss, never torn data, and nothing panics.
func TestPruneUnderFaultyConcurrentWriters(t *testing.T) {
	disk, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	flaky := faultinject.NewBackend(disk, faultinject.Config{
		Seed: 7, ResetProb: 0.15, HTTP500Prob: 0.1, TimeoutProb: 0.05, Latency: 100 * time.Microsecond,
	})

	valsFor := func(w, i int) []float64 {
		return []float64{float64(w), float64(i), float64(w*1000 + i)}
	}
	const writers, rounds = 16, 40
	var writerWG, prunerWG sync.WaitGroup
	stop := make(chan struct{})
	prunerWG.Add(1)
	go func() { // continuous pruner: evicts everything it can, repeatedly
		defer prunerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				disk.Prune(1) // budget of 1 byte: maximum eviction pressure
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < rounds; i++ {
				key := fmt.Sprintf("w%d-i%d", w, i)
				flaky.Save(key, valsFor(w, i)) // errors are injected; ignore
				if vals, ok := flaky.Load(key); ok && !reflect.DeepEqual(vals, valsFor(w, i)) {
					t.Errorf("torn read: %s gave %v", key, vals)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	prunerWG.Wait()

	// Post-mortem: whatever survived eviction must decode exactly.
	for w := 0; w < writers; w++ {
		for i := 0; i < rounds; i++ {
			key := fmt.Sprintf("w%d-i%d", w, i)
			if vals, ok := disk.Load(key); ok && !reflect.DeepEqual(vals, valsFor(w, i)) {
				t.Fatalf("surviving entry %s corrupt: %v", key, vals)
			}
		}
	}
	if st := disk.Stats(); st.Corrupt != 0 {
		t.Fatalf("store reported %d corrupt entries under clean (if flaky) writers", st.Corrupt)
	}
}
