package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// TestRoundTripAcrossHandles is the durability contract: values written
// through one store handle are read back reflect.DeepEqual through a
// fresh handle on the same directory — the cross-process restart path.
func TestRoundTripAcrossHandles(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float64{
		"a|eps=0.1|seed=1": {0.25, 0.5, 1.0 / 3.0},
		"b|eps=0.1|seed=2": {},
		"c|eps=0.2|seed=3": {42},
	}
	for k, v := range vals {
		if err := w.Save(k, v); err != nil {
			t.Fatal(err)
		}
	}

	r, err := Open(dir) // fresh handle: index rebuilt from disk
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range vals {
		got, ok := r.Load(k)
		if !ok {
			t.Fatalf("key %q missing via fresh handle", k)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("key %q: got %v want %v", k, got, want)
		}
	}
	st := r.Stats()
	if st.Hits != 3 || st.Misses != 0 || st.Entries != 3 {
		t.Fatalf("stats after warm reads: %+v", st)
	}
	if _, ok := r.Load("never-written"); ok {
		t.Fatal("phantom hit")
	}
}

// TestLoadAdoptsLateWrite: an entry published by another handle (process)
// after this handle indexed the directory is still found, via the
// filesystem fallback.
func TestLoadAdoptsLateWrite(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Save("late", []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Load("late")
	if !ok || !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("late write not adopted: %v %v", got, ok)
	}
}

// TestConcurrentWritersOneKey races writers on a single key: every racer
// publishes atomically, so the surviving entry must decode to one of the
// written values, and the store must never error or read garbage.
func TestConcurrentWritersOneKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const racers = 16
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				if err := s.Save("hot", []float64{float64(i), float64(rep)}); err != nil {
					t.Errorf("save: %v", err)
					return
				}
				if vals, ok := s.Load("hot"); ok {
					if len(vals) != 2 || vals[0] < 0 || vals[0] >= racers {
						t.Errorf("torn read: %v", vals)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	vals, ok := s.Load("hot")
	if !ok || len(vals) != 2 {
		t.Fatalf("final read: %v %v", vals, ok)
	}
	if st := s.Stats(); st.Entries != 1 || st.Corrupt != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// No temp droppings left behind.
	matches, _ := filepath.Glob(filepath.Join(dir, "*", ".tmp-*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

// TestCorruptionIsAMiss is the tamper suite: truncation, bit flips, a
// wrong magic, a foreign codec version, and a checksum-breaking payload
// edit must each read as a miss (and drop the entry), never as data and
// never as an error.
func TestCorruptionIsAMiss(t *testing.T) {
	tampers := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"version", func(b []byte) []byte {
			binary.LittleEndian.PutUint16(b[4:6], CodecVersion+1)
			return b
		}},
		{"payload-bitflip", func(b []byte) []byte { b[headerSize] ^= 1; return b }},
		{"count", func(b []byte) []byte { b[8]++; return b }},
		{"garbage", func(b []byte) []byte { return []byte("not a store entry at all") }},
	}
	for _, tc := range tampers {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Save("k", []float64{1, 2, 3}); err != nil {
				t.Fatal(err)
			}
			path := s.path(Addr("k"))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			// Both through the live handle and a fresh one.
			for _, h := range []*Store{s, mustOpen(t, dir)} {
				if vals, ok := h.Load("k"); ok {
					t.Fatalf("tampered entry served: %v", vals)
				}
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("tampered entry not dropped from disk: %v", err)
			}
			if st := s.Stats(); st.Corrupt == 0 && tc.name != "empty" {
				t.Fatalf("corruption not counted: %+v", st)
			}
			// The key is writable again and round-trips.
			if err := s.Save("k", []float64{9}); err != nil {
				t.Fatal(err)
			}
			if vals, ok := s.Load("k"); !ok || !reflect.DeepEqual(vals, []float64{9}) {
				t.Fatalf("rewrite after corruption: %v %v", vals, ok)
			}
		})
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPruneRespectsBound: Prune evicts least-recently-used entries until
// the byte budget holds, and survivors still load.
func TestPruneRespectsBound(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	for i := 0; i < 10; i++ {
		if err := s.Save(fmt.Sprintf("k%d", i), []float64{float64(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	total := s.Stats().Bytes
	per := total / 10
	// Touch k7..k9 so k0..k6 are the LRU tail.
	for i := 7; i < 10; i++ {
		if _, ok := s.Load(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("k%d missing before prune", i)
		}
	}
	evicted := s.Prune(3 * per)
	if evicted != 7 {
		t.Fatalf("evicted %d entries, want 7", evicted)
	}
	st := s.Stats()
	if st.Bytes > 3*per || st.Entries != 3 {
		t.Fatalf("after prune: %+v (budget %d)", st, 3*per)
	}
	for i := 0; i < 7; i++ {
		if _, ok := s.Load(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d survived prune", i)
		}
	}
	for i := 7; i < 10; i++ {
		if vals, ok := s.Load(fmt.Sprintf("k%d", i)); !ok || vals[0] != float64(i) {
			t.Fatalf("k%d lost by prune: %v %v", i, vals, ok)
		}
	}
	// A fresh handle agrees with the on-disk state.
	if st := mustOpen(t, dir).Stats(); st.Entries != 3 {
		t.Fatalf("fresh handle sees %d entries, want 3", st.Entries)
	}
}

// TestPruneNeverEvictsMidRead pins the reader/pruner interaction: a Load
// that has started (pinned its entry) completes with its full value even
// when a concurrent Prune(0) tries to evict everything.
func TestPruneNeverEvictsMidRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := []float64{1, 2, 3, 4}
	if err := s.Save("pinned", want); err != nil {
		t.Fatal(err)
	}

	inRead := make(chan struct{})
	release := make(chan struct{})
	s.loadHook = func() {
		close(inRead)
		<-release
	}
	type res struct {
		vals []float64
		ok   bool
	}
	got := make(chan res, 1)
	go func() {
		v, ok := s.Load("pinned")
		got <- res{v, ok}
	}()
	<-inRead
	s.loadHook = nil
	if n := s.Prune(0); n != 0 {
		t.Fatalf("prune evicted %d entries under an in-flight read", n)
	}
	close(release)
	r := <-got
	if !r.ok || !reflect.DeepEqual(r.vals, want) {
		t.Fatalf("mid-prune read: %v %v", r.vals, r.ok)
	}
	// Unpinned now: the same budget evicts it.
	if n := s.Prune(0); n != 1 {
		t.Fatalf("post-read prune evicted %d, want 1", n)
	}
}

// TestOpenRejectsUnusableDir: an unwritable cache dir must fail at Open,
// with an error, not a panic and not a silently dead store.
func TestOpenRejectsUnusableDir(t *testing.T) {
	if _, err := Open("/dev/null/sub"); err == nil {
		t.Fatal("Open under /dev/null succeeded")
	}
	if os.Getuid() != 0 { // root ignores mode bits
		ro := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(ro); err == nil {
			t.Fatal("Open on read-only dir succeeded")
		}
	}
}

// TestOpenIgnoresForeignFiles: junk in the tree (temp leftovers, stray
// files) is not indexed and does not break Open.
func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if err := s.Save("k", []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, Addr("k")[:2], ".tmp-zzz"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	f := mustOpen(t, dir)
	if st := f.Stats(); st.Entries != 1 {
		t.Fatalf("foreign files indexed: %+v", st)
	}
	if vals, ok := f.Load("k"); !ok || vals[0] != 1 {
		t.Fatalf("real entry lost among junk: %v %v", vals, ok)
	}
}

// TestCodecRoundTrip exercises the codec directly, including NaN/Inf bit
// patterns and the empty value list.
func TestCodecRoundTrip(t *testing.T) {
	cases := [][]float64{
		{},
		{0},
		{1.5, -2.25, 1e-300, 1e300},
		{0.1, 0.2, 0.30000000000000004},
	}
	for _, vals := range cases {
		got, ok := DecodeValues(encode(vals, ""))
		if !ok || !reflect.DeepEqual(got, vals) {
			t.Fatalf("codec round trip %v -> %v (%v)", vals, got, ok)
		}
	}
}

// TestPruneNeverEvictsPinnedParent is the warm-start extension of the
// pinned-read rule: an entry pinned via PinKey (an in-flight delta solve
// depending on its parent's witness) survives any Prune, however far over
// budget the store is, and becomes evictable again only after release.
func TestPruneNeverEvictsPinnedParent(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := []float64{4, 5, 6}
	if err := s.Save("parent", want); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Save(fmt.Sprintf("filler%d", i), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	release := s.PinKey("parent")
	if s.Prune(0) != 5 {
		t.Fatal("prune did not evict exactly the unpinned entries")
	}
	if vals, ok := s.Load("parent"); !ok || !reflect.DeepEqual(vals, want) {
		t.Fatalf("pinned parent evicted or damaged: %v %v", vals, ok)
	}
	// Release is idempotent; after it the entry prunes normally.
	release()
	release()
	if s.Prune(0) != 1 {
		t.Fatal("released parent not evicted")
	}
	if _, ok := s.Load("parent"); ok {
		t.Fatal("parent survived post-release prune")
	}
	// Pinning an address that holds no entry is a harmless no-op.
	s.PinKey("absent")()
}

// TestNegativeCache: repeated lookups of an absent address are answered
// from the negative cache within the TTL (no disk stat), a Save
// invalidates the negative entry immediately, and entries expire.
func TestNegativeCache(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.EnableNegativeCache(4, 50*time.Millisecond)

	if _, ok := s.Load("ghost"); ok {
		t.Fatal("absent key loaded")
	}
	if _, ok := s.Load("ghost"); ok {
		t.Fatal("absent key loaded")
	}
	if st := s.Stats(); st.NegHits != 1 || st.Misses != 2 {
		t.Fatalf("negative cache did not absorb the repeat miss: %+v", st)
	}

	// A write through this handle drops the negative entry at once: the
	// very next lookup must see the fresh value.
	if err := s.Save("ghost", []float64{7}); err != nil {
		t.Fatal(err)
	}
	if vals, ok := s.Load("ghost"); !ok || vals[0] != 7 {
		t.Fatalf("negative entry outlived the publish: %v %v", vals, ok)
	}

	// Out-of-band publishes (another process) become visible after the
	// TTL: a fresh store handle on the same dir stands in for the writer.
	if _, ok := s.Load("late"); ok {
		t.Fatal("absent key loaded")
	}
	if err := mustOpen(t, dir).Save("late", []float64{8}); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("late"); ok {
		t.Fatal("negative entry expired early")
	}
	time.Sleep(60 * time.Millisecond)
	if vals, ok := s.Load("late"); !ok || vals[0] != 8 {
		t.Fatalf("publish invisible after TTL: %v %v", vals, ok)
	}

	// The memo is bounded: overflowing it evicts oldest-first rather than
	// growing without limit.
	for i := 0; i < 10; i++ {
		s.Load(fmt.Sprintf("bulk%d", i))
	}
	if n := len(s.neg.at); n > 4 {
		t.Fatalf("negative cache grew to %d entries, bound is 4", n)
	}
}

// TestCodecLinkedRoundTrip exercises the codec v2 parent link: linked
// entries round-trip values and parent address, DecodeValues still
// verifies and ignores the link, and malformed parents are dropped at
// encode time rather than corrupting the entry.
func TestCodecLinkedRoundTrip(t *testing.T) {
	vals := []float64{1, 2, 3}
	parent := Addr("the parent key")
	buf := EncodeLinked(vals, parent)
	got, gotParent, ok := DecodeEntry(buf)
	if !ok || !reflect.DeepEqual(got, vals) || gotParent != parent {
		t.Fatalf("linked round trip: %v %q %v", got, gotParent, ok)
	}
	if got, ok := DecodeValues(buf); !ok || !reflect.DeepEqual(got, vals) {
		t.Fatalf("DecodeValues on linked entry: %v %v", got, ok)
	}
	// Unlinked entries report no parent.
	if _, p, ok := DecodeEntry(EncodeValues(vals)); !ok || p != "" {
		t.Fatalf("unlinked entry carries parent %q (%v)", p, ok)
	}
	// A malformed parent cannot be followed, so encode drops it.
	if _, p, ok := DecodeEntry(EncodeLinked(vals, "not-hex")); !ok || p != "" {
		t.Fatalf("malformed parent survived encode: %q %v", p, ok)
	}
}

// TestCodecRejectsForeignEntries: entries from other codec versions or
// with unknown flag bits read as misses — never as values.
func TestCodecRejectsForeignEntries(t *testing.T) {
	buf := EncodeValues([]float64{1, 2})

	// A v1 writer's entry: same layout, older version word, valid CRC.
	v1 := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint16(v1[4:6], 1)
	binary.LittleEndian.PutUint32(v1[len(v1)-4:], crc32.ChecksumIEEE(v1[:len(v1)-4]))
	if _, ok := DecodeValues(v1); ok {
		t.Fatal("v1 entry decoded under the v2 codec")
	}

	// A future writer's entry: unknown flag bit, valid CRC.
	future := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint16(future[6:8], 1<<7)
	binary.LittleEndian.PutUint32(future[len(future)-4:], crc32.ChecksumIEEE(future[:len(future)-4]))
	if _, ok := DecodeValues(future); ok {
		t.Fatal("unknown-flag entry decoded")
	}

	// A linked entry with its parent bytes truncated fails the length
	// check.
	linked := EncodeLinked([]float64{1, 2}, Addr("p"))
	if _, _, ok := DecodeEntry(linked[:len(linked)-8]); ok {
		t.Fatal("truncated linked entry decoded")
	}
}

// TestStoreParentLinkPersists: SaveLinked writes an entry whose parent
// address a fresh handle reads back; Load treats it as an ordinary entry.
func TestStoreParentLinkPersists(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := []float64{1, 2}
	if err := s.SaveLinked("child", want, "parent"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ParentLinks != 1 {
		t.Fatalf("linked write not counted: %+v", st)
	}
	f := mustOpen(t, dir)
	raw, vals, ok := f.LoadAddrBuf(Addr("child"), nil, nil)
	if !ok || !reflect.DeepEqual(vals, want) {
		t.Fatalf("linked entry load: %v %v", vals, ok)
	}
	if _, parent, ok := DecodeEntry(raw); !ok || parent != Addr("parent") {
		t.Fatalf("parent link lost across handles: %q %v", parent, ok)
	}
	// A malformed parent address fails loudly at save time.
	if err := s.SaveAddrLinked(Addr("child"), want, "xyz"); err == nil {
		t.Fatal("malformed parent address accepted")
	}
}
