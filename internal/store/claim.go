package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Claims are the store's crash-safe cross-replica singleflight primitive.
// Before solving a missed point, a replica publishes a claim — a small
// file under <dir>/claims/<addr> naming the claimant and a lease deadline
// — so every other replica sharing the pool can wait for the result
// instead of solving the same point. The lease is what makes the scheme
// crash-safe: a claimant that dies mid-solve simply stops renewing
// nothing; once its deadline passes, any waiter reclaims the lease and
// solves. A claim can therefore delay work, never wedge it.
//
// Acquisition is atomic via link(2): the claim is written to a temp file
// and hard-linked into place, which succeeds for exactly one racer when
// the name is absent. Reclaiming an expired lease (remove + re-link) is
// intentionally weaker: two replicas racing a reclaim can, in the worst
// interleaving, both believe they won and both solve. Under the cache-key
// invariant both compute identical bytes, so the race costs duplicate
// work, never wrong data — the same last-writer-wins rule Save already
// lives by.

// claimsDir is the per-pool directory holding in-flight claims. Its files
// are invisible to the entry index (Open skips non-shard directories).
const claimsDir = "claims"

func (s *Store) claimPath(addr string) string {
	return filepath.Join(s.dir, claimsDir, addr)
}

// Claim tries to acquire the solve lease for addr on behalf of owner.
// won=true means the caller holds the lease until deadline and should
// solve, publish via Save/SaveAddr, and Unclaim. won=false means another
// owner holds it; deadline is when that lease expires (the longest a
// waiter should poll before reclaiming). Any filesystem failure degrades
// to won=true — when claims cannot be coordinated, solving locally is
// always safe, only deduplication is lost.
func (s *Store) Claim(addr, owner string, ttl time.Duration) (won bool, deadline time.Time) {
	dir := filepath.Join(s.dir, claimsDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return true, time.Now().Add(ttl)
	}
	for attempt := 0; attempt < 3; attempt++ {
		ours := time.Now().Add(ttl)
		tmp, err := os.CreateTemp(dir, ".tmp-*")
		if err != nil {
			return true, ours
		}
		_, werr := fmt.Fprintf(tmp, "%s\n%d\n", owner, ours.UnixNano())
		cerr := tmp.Close()
		if werr != nil || cerr != nil {
			os.Remove(tmp.Name())
			return true, ours
		}
		linkErr := os.Link(tmp.Name(), s.claimPath(addr))
		os.Remove(tmp.Name())
		if linkErr == nil {
			return true, ours
		}
		// Someone holds the name. A live lease loses the race; an expired
		// or unreadable one is a crashed claimant — clear it and retry.
		_, hd, ok := s.ClaimHolder(addr)
		if ok && time.Now().Before(hd) {
			return false, hd
		}
		os.Remove(s.claimPath(addr))
	}
	// Pathological churn (claims appearing and expiring faster than we can
	// clear them): solve locally rather than spin.
	return true, time.Now().Add(ttl)
}

// ClaimHolder reports the current claim on addr, if a parseable one
// exists. Callers must still check the deadline: an expired claim is a
// crashed claimant, not an active solve.
func (s *Store) ClaimHolder(addr string) (owner string, deadline time.Time, ok bool) {
	return readClaim(s.claimPath(addr))
}

// readClaim parses the claim file at path ("owner\ndeadline-nanos\n").
func readClaim(path string) (owner string, deadline time.Time, ok bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return "", time.Time{}, false
	}
	lines := strings.SplitN(strings.TrimSpace(string(buf)), "\n", 2)
	if len(lines) != 2 {
		return "", time.Time{}, false
	}
	ns, err := strconv.ParseInt(strings.TrimSpace(lines[1]), 10, 64)
	if err != nil {
		return "", time.Time{}, false
	}
	return lines[0], time.Unix(0, ns), true
}

// unclaimSeq makes each release's private rename target unique within the
// process; the pid in the name distinguishes processes sharing a pool.
var unclaimSeq atomic.Int64

// Unclaim releases addr's claim if owner still holds it. Releasing a
// claim another owner reclaimed in the meantime must be a no-op — a slow
// ex-claimant cannot strip a successor's lease.
//
// Release is atomic: the claim file is renamed to a private name first
// (taking whatever lease currently holds the name out of circulation in
// one step), THEN its owner is verified, and it is deleted only if it was
// ours. A holder-check-then-remove sequence would race: between the check
// reading our own stale claim and the remove, a successor can reclaim the
// expired lease, and the remove then deletes the successor's fresh claim
// unseen. With rename-first, the file we verify is exactly the file we
// took; a successor's lease renamed by mistake is put back via link(2)
// (which refuses to clobber an even newer claim).
func (s *Store) Unclaim(addr, owner string) {
	path := s.claimPath(addr)
	priv := filepath.Join(s.dir, claimsDir,
		fmt.Sprintf(".tmp-rel-%d-%d", os.Getpid(), unclaimSeq.Add(1)))
	if err := os.Rename(path, priv); err != nil {
		return // no claim to release (or lost the race to one)
	}
	if s.unclaimHook != nil {
		s.unclaimHook()
	}
	holder, _, ok := readClaim(priv)
	if ok && holder == owner {
		os.Remove(priv)
		return
	}
	// Not ours: a successor's live lease. Restore it — unless an even
	// newer claim took the name in the window, in which case our copy is
	// stale and is simply dropped (duplicate work at worst, never a
	// stripped lease plus a wedge: the displaced claimant still solves).
	os.Link(priv, path)
	os.Remove(priv)
}
