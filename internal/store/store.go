// Package store is the disk-backed tier of the scenario engine's
// content-addressed solve cache. It persists per-point run values under
// their content address — the SHA-256 of the point's Key() string, the
// same address the in-memory scenario.Cache uses — so a second process
// answers a previously-solved grid from disk instead of re-solving it.
//
// The durability contract extends the cache-key invariant across
// processes: under that invariant a stored entry holds exactly what a
// cold solve of the same key would compute, so a warm read is
// reflect.DeepEqual to a cold solve no matter which process wrote it.
// Anything that could break the contract reads as a miss, never as wrong
// data: entries are written with a versioned, checksummed codec (see
// codec.go) and published atomically (temp file + rename in the shard
// directory), so a truncated, tampered, torn, or stale-codec-version file
// is silently re-solved and replaced.
//
// Layout: <dir>/<addr[:2]>/<addr[2:]> where addr is the lowercase hex
// content address — 256 shard directories keep listings short at
// millions of entries. Open scans the tree once into an in-memory index
// (sizes + last-access ordering seeded from file mtimes); Prune evicts
// least-recently-used entries down to a byte budget, skipping entries
// pinned by in-flight reads.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Store is one handle on a result-store directory. It is safe for
// concurrent use within a process; across processes, atomic publication
// keeps concurrent writers safe (last writer wins with a complete entry),
// and readers fall back to the filesystem for addresses written after the
// handle was opened.
type Store struct {
	dir string

	mu      sync.Mutex
	index   map[string]*entry // content address -> entry
	bytes   int64
	clock   int64 // logical access clock for LRU ordering
	hits    int64
	misses  int64
	writes  int64
	corrupt int64
	evicted int64
	orphans int64
	// parentLinks counts entries written with a parent content-address
	// link (SaveAddrLinked with a non-empty parent).
	parentLinks int64

	// neg, when enabled, short-circuits repeated misses on addresses known
	// to be absent, so a hot 404 path costs a map probe instead of a disk
	// stat per request. See EnableNegativeCache.
	neg     *negCache
	negHits int64

	// loadHook, when set (tests only), runs after a Load has pinned its
	// entry and released the lock, before the file is read — the window a
	// concurrent Prune must not evict in.
	loadHook func()
	// pruneHook, when set (tests only), runs per victim after Prune's
	// selection pass has released the lock, before the victim's removal —
	// the window in which a concurrent Save may re-publish the entry.
	pruneHook func(addr string)
	// unclaimHook, when set (tests only), runs inside Unclaim after the
	// release has observed the claim file, before it decides to delete —
	// the window in which a successor may reclaim an expired lease.
	unclaimHook func()
}

type entry struct {
	size   int64
	access int64 // logical clock of the last lookup (mtime-seeded at open)
	pins   int   // in-flight reads; pinned entries are never evicted
}

// Stats is a point-in-time snapshot of a store handle's activity and
// resident state.
type Stats struct {
	Hits, Misses int64 // Load outcomes through this handle
	Writes       int64 // successful Saves
	Corrupt      int64 // entries dropped because they failed to decode
	Evicted      int64 // entries removed by Prune
	// Orphans counts crashed-writer temp files garbage-collected at Open: a
	// writer that died between CreateTemp and the publishing rename (a
	// SIGKILL mid-Save) leaves a .tmp-* file no entry ever points to.
	Orphans int64
	// NegHits counts misses answered by the negative cache — repeated
	// lookups of absent addresses that skipped the disk stat.
	NegHits int64
	// ParentLinks counts entries written with a parent content-address
	// link — the durable trace of warm-started (delta) solves.
	ParentLinks int64
	Entries     int   // resident entries in the index
	Bytes       int64 // total size of resident entries
}

// Addr is the content address of a cache key: lowercase hex SHA-256. It
// is the on-disk name of the entry and the <key> of the service's
// GET /v1/result/<key> route.
func Addr(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:])
}

// Open creates (if needed) and indexes a store directory. The directory
// must be writable: an unusable path is an error here, at open time, so
// commands can fail cleanly instead of discovering it mid-run.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: cache dir %s not usable: %w", dir, err)
	}
	// Probe writability now: MkdirAll succeeds on an existing read-only
	// directory, but Saves (and prune deletions) would fail later.
	probe, err := os.CreateTemp(dir, ".probe-*")
	if err != nil {
		return nil, fmt.Errorf("store: cache dir %s not writable: %w", dir, err)
	}
	probe.Close()
	os.Remove(probe.Name())

	s := &Store{dir: dir, index: map[string]*entry{}}
	err = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		shard, name := filepath.Split(rel)
		shard = filepath.Clean(shard)
		addr := shard + name
		if len(shard) != 2 || len(addr) != 2*sha256.Size || !isHex(addr) {
			// Crashed-writer leftovers: a Save killed between CreateTemp and
			// the publishing rename orphans a .tmp-* file. Old ones (a live
			// writer's temp exists for milliseconds; the grace period keeps a
			// racing process's in-flight write safe) are garbage-collected so
			// a crash loop cannot fill the disk with invisible files.
			if strings.HasPrefix(name, ".tmp-") {
				if info, err := d.Info(); err == nil && time.Since(info.ModTime()) > orphanGrace {
					if os.Remove(path) == nil {
						s.orphans++
					}
				}
			}
			return nil // probe leftovers, live temp files, foreign junk
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent prune/replace
		}
		e := &entry{size: info.Size(), access: info.ModTime().UnixNano()}
		s.index[addr] = e
		s.bytes += e.size
		if e.access > s.clock {
			s.clock = e.access
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: indexing %s: %w", dir, err)
	}
	return s, nil
}

// orphanGrace is how old a .tmp-* file must be before Open treats it as a
// crashed writer's orphan rather than a racing process's in-flight Save.
const orphanGrace = time.Minute

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func isHex(a string) bool {
	for i := 0; i < len(a); i++ {
		c := a[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(addr string) string {
	return filepath.Join(s.dir, addr[:2], addr[2:])
}

// Load returns the run values stored under key, if a valid entry exists.
// Corrupt or truncated entries are dropped and read as misses.
func (s *Store) Load(key string) ([]float64, bool) {
	return s.LoadAddr(Addr(key))
}

// LoadAddr is Load by precomputed content address (the service's
// GET /v1/result path).
func (s *Store) LoadAddr(addr string) ([]float64, bool) {
	_, vals, ok := s.LoadAddrBuf(addr, nil, nil)
	return vals, ok
}

// LoadAddrBuf is LoadAddr with caller-owned scratch: the entry file is
// read into buf (grown only when too small) and the values are decoded by
// appending to vals sliced to zero length, so a serving hot loop performs
// no per-read allocations once its scratch has grown to the working-set
// entry size. On ok=true, raw holds the verified entry bytes exactly as a
// Save wrote them — the TBRS wire format, forwardable to peers without
// re-encoding — and out holds the decoded values; both alias the scratch
// and are valid only until the caller's next use of it. Every semantic of
// LoadAddr is preserved: misses, corruption-as-miss (the damaged file is
// dropped), pinning against concurrent Prune, and the stats counters.
func (s *Store) LoadAddrBuf(addr string, buf []byte, vals []float64) (raw []byte, out []float64, ok bool) {
	return s.loadAddrBuf(addr, buf, vals, true)
}

// loadAddrFresh is LoadAddr bypassing the negative cache — the claim-wait
// poll path, which exists precisely to observe another process's publish
// the moment it lands and must not be blinded by a recent negative probe.
func (s *Store) loadAddrFresh(addr string) ([]float64, bool) {
	_, vals, ok := s.loadAddrBuf(addr, nil, nil, false)
	return vals, ok
}

func (s *Store) loadAddrBuf(addr string, buf []byte, vals []float64, useNeg bool) (raw []byte, out []float64, ok bool) {
	if len(addr) != 2*sha256.Size || !isHex(addr) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, nil, false
	}
	path := s.path(addr)
	s.mu.Lock()
	e, found := s.index[addr]
	if !found {
		// The entry may have been published by another process after this
		// handle indexed the tree; adopt it if the file exists. The
		// negative cache remembers recent failed probes so a hot 404 path
		// (a client polling an address nobody has solved) does not pay a
		// disk stat per lookup; entries expire after a short TTL, bounding
		// how long another process's out-of-band publish can stay unseen.
		if useNeg && s.neg != nil && s.neg.fresh(addr, time.Now()) {
			s.negHits++
			s.misses++
			s.mu.Unlock()
			return nil, nil, false
		}
		if info, err := os.Stat(path); err == nil {
			e = &entry{size: info.Size()}
			s.index[addr] = e
			s.bytes += e.size
			found = true
			if s.neg != nil {
				s.neg.drop(addr)
			}
		} else if s.neg != nil {
			s.neg.add(addr, time.Now())
		}
	}
	if !found {
		s.misses++
		s.mu.Unlock()
		return nil, nil, false
	}
	s.clock++
	e.access = s.clock
	e.pins++ // a pinned entry cannot be evicted mid-read
	s.mu.Unlock()

	if s.loadHook != nil {
		s.loadHook()
	}
	buf, readErr := readFileInto(path, buf)

	s.mu.Lock()
	defer s.mu.Unlock()
	e.pins--
	if readErr != nil {
		s.dropLocked(addr, e)
		s.misses++
		return nil, nil, false
	}
	vals, decOK := decodeAppend(buf, vals[:0])
	if !decOK {
		s.dropLocked(addr, e)
		s.corrupt++
		s.misses++
		return nil, nil, false
	}
	s.hits++
	return buf, vals, true
}

// readFileInto reads path into buf, growing it only when the file exceeds
// the scratch capacity. A file that grows between Stat and read returns an
// error (treated as a miss by the caller) rather than truncated bytes; the
// codec's CRC would reject a short read regardless.
func readFileInto(path string, buf []byte) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return buf, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return buf, err
	}
	n := int(info.Size())
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	// Entries are published by rename and never appended, so the opened
	// file cannot change size under the read; a racing replace swaps the
	// whole inode and this descriptor keeps the complete old bytes.
	if _, err := io.ReadFull(f, buf); err != nil {
		return buf, err
	}
	return buf, nil
}

// dropLocked removes an entry from the index and best-effort from disk.
// Caller holds s.mu.
func (s *Store) dropLocked(addr string, e *entry) {
	if cur, ok := s.index[addr]; ok && cur == e {
		delete(s.index, addr)
		s.bytes -= e.size
		os.Remove(s.path(addr))
	}
}

// Save publishes run values under key. Publication is atomic: the entry
// is written to a temp file in its shard directory and renamed into
// place, so concurrent writers racing on one key both leave a complete,
// decodable entry (last rename wins) and readers never observe a torn
// write.
func (s *Store) Save(key string, vals []float64) error {
	return s.SaveAddr(Addr(key), vals)
}

// SaveLinked is Save with a parent content-address link: the entry
// records (codec v2) which entry's result warm-started this solve.
// parentKey is the parent's cache KEY (hashed here); "" writes an
// unlinked entry.
func (s *Store) SaveLinked(key string, vals []float64, parentKey string) error {
	parent := ""
	if parentKey != "" {
		parent = Addr(parentKey)
	}
	return s.SaveAddrLinked(Addr(key), vals, parent)
}

// SaveAddr is Save by precomputed content address — the receiving end of
// the service's PUT /v1/result/<key> route, where only the address is on
// the wire. The address must be a well-formed content address; the caller
// vouches that vals were solved under the key hashing to it.
func (s *Store) SaveAddr(addr string, vals []float64) error {
	return s.SaveAddrLinked(addr, vals, "")
}

// SaveAddrLinked is SaveAddr with an optional parent content address
// (lowercase hex, or "" for none) recorded in the entry's codec-v2 parent
// link. A malformed parent is an error, like a malformed address: links
// exist to be followed, so a link that cannot be followed must fail loudly
// at write time rather than silently degrade.
func (s *Store) SaveAddrLinked(addr string, vals []float64, parent string) error {
	if len(addr) != 2*sha256.Size || !isHex(addr) {
		return fmt.Errorf("store: malformed content address %q", addr)
	}
	if parent != "" && (len(parent) != 2*sha256.Size || !isHex(parent)) {
		return fmt.Errorf("store: malformed parent content address %q", parent)
	}
	shard := filepath.Join(s.dir, addr[:2])
	if err := os.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	buf := encode(vals, parent)
	tmp, err := os.CreateTemp(shard, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}

	// The publishing rename happens under the store lock, together with
	// the index insert: file-at-addr and index[addr] change as one step
	// with respect to Prune, whose removals re-verify the index under the
	// same lock. A rename outside the lock would let a Prune that already
	// selected this addr as a victim unlink the freshly renamed file
	// before the index insert lands, orphaning the entry.
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(tmp.Name(), s.path(addr)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes++
	if parent != "" {
		s.parentLinks++
	}
	if s.neg != nil {
		// The address exists now: a negative entry recorded before this
		// publish must not outlive it.
		s.neg.drop(addr)
	}
	s.clock++
	if e, ok := s.index[addr]; ok {
		s.bytes += int64(len(buf)) - e.size
		e.size = int64(len(buf))
		e.access = s.clock
		return nil
	}
	s.index[addr] = &entry{size: int64(len(buf)), access: s.clock}
	s.bytes += int64(len(buf))
	return nil
}

// Prune evicts least-recently-used entries until the store's resident
// bytes are within maxBytes, returning how many entries were removed.
// Entries pinned by in-flight Loads are never evicted — a read started
// before the prune always completes against its bytes (or, if another
// process already replaced the file, decodes the complete replacement).
//
// Victims are selected in one sorted pass under the lock; each unlink
// then re-acquires the lock briefly and re-verifies the victim is still
// absent from the index before removing its file. The re-check closes the
// re-publish race: a Save racing the prune re-inserts the entry (rename +
// index insert are one locked step), so the prune sees it under the lock
// and keeps the fresh file — a selected-then-re-saved entry survives with
// its new bytes instead of leaving an orphaned index entry behind.
// Concurrent lookups see at most an O(n log n) selection stall plus
// per-victim lock handoffs, never one long syscall-laden critical section.
func (s *Store) Prune(maxBytes int64) int {
	s.mu.Lock()
	if s.bytes <= maxBytes {
		s.mu.Unlock()
		return 0
	}
	type victim struct {
		addr   string
		access int64
	}
	candidates := make([]victim, 0, len(s.index))
	for addr, e := range s.index {
		if e.pins == 0 {
			candidates = append(candidates, victim{addr, e.access})
		}
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].access < candidates[j].access })
	var evict []string
	for _, v := range candidates {
		if s.bytes <= maxBytes {
			break
		}
		e := s.index[v.addr]
		delete(s.index, v.addr)
		s.bytes -= e.size
		s.evicted++
		evict = append(evict, v.addr)
	}
	s.mu.Unlock()
	removed := 0
	for _, addr := range evict {
		if s.pruneHook != nil {
			s.pruneHook(addr)
		}
		s.mu.Lock()
		if _, resaved := s.index[addr]; resaved {
			// A concurrent Save re-published this entry after victim
			// selection: it is current again, not garbage. Keep the file
			// and take the eviction back out of the stats.
			s.evicted--
		} else {
			os.Remove(s.path(addr))
			removed++
		}
		s.mu.Unlock()
	}
	return removed
}

// Stats snapshots the handle's counters and resident state.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Writes: s.writes,
		Corrupt: s.corrupt, Evicted: s.evicted, Orphans: s.orphans,
		NegHits: s.negHits, ParentLinks: s.parentLinks,
		Entries: len(s.index), Bytes: s.bytes,
	}
}

// PinKey pins the entry stored under key against Prune eviction for the
// duration of an external use — an in-flight warm start reading the
// parent's witness, say — returning a release function (idempotent; call
// it exactly when the use ends). Pinning an absent entry is a no-op whose
// release does nothing: pins protect what exists, they do not reserve
// addresses.
func (s *Store) PinKey(key string) func() {
	return s.PinAddr(Addr(key))
}

// PinAddr is PinKey by precomputed content address. It shares the
// eviction exclusion with in-flight Loads (entry.pins), so a pinned
// parent entry survives any Prune that runs while a warm start depends on
// it — the parent-link extension of the pinned-read rule.
func (s *Store) PinAddr(addr string) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[addr]
	if !ok {
		return func() {}
	}
	e.pins++
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			e.pins--
			s.mu.Unlock()
		})
	}
}

// EnableNegativeCache attaches a bounded negative cache of at most max
// addresses with the given TTL (both > 0; zero values pick 4096 entries
// and 250ms). Repeated lookups of an absent address within the TTL are
// answered from memory instead of stat'ing the disk — the hot-404 path of
// GET /v1/result. The TTL bounds cross-process staleness: another
// process's publish becomes visible at worst one TTL late on this handle
// (same-handle Saves invalidate immediately, and the claim-wait poll path
// bypasses the negative cache entirely).
func (s *Store) EnableNegativeCache(max int, ttl time.Duration) {
	if max <= 0 {
		max = 4096
	}
	if ttl <= 0 {
		ttl = 250 * time.Millisecond
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.neg = &negCache{max: max, ttl: ttl, at: map[string]time.Time{}}
}

// negCache is the bounded absent-address memo. All methods are called
// under the store lock. Eviction is FIFO by insertion order: negative
// entries are worth at most one TTL, so recency refinements buy nothing.
type negCache struct {
	max  int
	ttl  time.Duration
	at   map[string]time.Time // addr -> when the failed probe happened
	fifo []string
}

func (n *negCache) fresh(addr string, now time.Time) bool {
	t, ok := n.at[addr]
	if !ok {
		return false
	}
	if now.Sub(t) >= n.ttl {
		delete(n.at, addr)
		return false
	}
	return true
}

func (n *negCache) add(addr string, now time.Time) {
	if _, ok := n.at[addr]; ok {
		n.at[addr] = now
		return
	}
	for len(n.at) >= n.max && len(n.fifo) > 0 {
		old := n.fifo[0]
		n.fifo = n.fifo[1:]
		delete(n.at, old)
	}
	n.at[addr] = now
	n.fifo = append(n.fifo, addr)
}

func (n *negCache) drop(addr string) {
	// The fifo keeps the address; a later eviction of an already-dropped
	// entry is harmless (delete of an absent key).
	delete(n.at, addr)
}
