package store

import (
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
	"math"
)

// The on-disk entry format is deliberately tiny and self-verifying:
//
//	offset  size  field
//	0       4     magic "TBRS"
//	4       2     codec version (little-endian uint16)
//	6       2     flags (little-endian uint16; bit 0 = parent link present)
//	8       4     value count (little-endian uint32)
//	12      8·n   IEEE-754 float64 values, little-endian bit patterns
//	12+8n   32    parent content address (raw SHA-256), iff flag bit 0
//	…       4     CRC-32 (IEEE) of everything before it
//
// decode treats ANY deviation — short file, wrong magic, foreign codec
// version, unknown flag bits, count/length mismatch, checksum failure —
// as "no entry": a store can only ever return exactly what encode wrote,
// never garbage.
//
// The parent link (codec v2) records which entry's solve warm-started
// this one — the delta-evaluation chain made durable, so a fresh process
// or a peer replica can observe the provenance of an incremental result.
// The link is an optimization/observability hint, never load-bearing for
// correctness: a reader that ignores it (DecodeValues) still gets exactly
// the certified run values.
//
// CodecVersion must be bumped whenever the encoding of values changes
// (layout, semantics, or the meaning of a run value): entries written by
// an older codec then simply read as misses and are re-solved, so a
// version bump can never resurrect stale bytes as fresh results. v1→v2
// added the flags word and the parent link; every v1 entry on disk reads
// as a miss once, then is re-solved and rewritten under v2.
const (
	CodecVersion uint16 = 2

	headerSize  = 12
	trailerSize = 4
	parentSize  = 32 // raw SHA-256 of the parent entry's cache key

	// flagParent marks an entry carrying a parent content-address link.
	flagParent uint16 = 1 << 0
	// knownFlags is the set decode accepts; any other bit means a future
	// (or corrupt) writer and the entry reads as a miss.
	knownFlags = flagParent
)

var magic = [4]byte{'T', 'B', 'R', 'S'}

// encode serializes run values into the versioned entry format, with an
// optional parent content-address link (parent is "" or 64 hex chars; a
// malformed parent is silently dropped rather than corrupting the entry).
func encode(vals []float64, parent string) []byte {
	var link []byte
	if len(parent) == 2*parentSize {
		if raw, err := hex.DecodeString(parent); err == nil {
			link = raw
		}
	}
	n := headerSize + 8*len(vals) + len(link)
	buf := make([]byte, n+trailerSize)
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint16(buf[4:6], CodecVersion)
	if link != nil {
		binary.LittleEndian.PutUint16(buf[6:8], flagParent)
	}
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[headerSize+8*i:], math.Float64bits(v))
	}
	copy(buf[headerSize+8*len(vals):], link)
	sum := crc32.ChecksumIEEE(buf[:n])
	binary.LittleEndian.PutUint32(buf[n:], sum)
	return buf
}

// EncodeValues serializes run values into the entry format — the bytes a
// Save would write. It is exported for transports that move entries
// between stores verbatim (the remote-store wire format is exactly the
// on-disk format, so the CRC travels with the values and the receiver
// re-verifies it).
func EncodeValues(vals []float64) []byte { return encode(vals, "") }

// EncodeLinked is EncodeValues plus a parent content-address link (hex;
// "" for none) — the linked-entry wire format.
func EncodeLinked(vals []float64, parent string) []byte { return encode(vals, parent) }

// DecodeValues parses entry bytes, ok=false on any corruption, version
// mismatch, or truncation — the receiving end of EncodeValues. A decoded
// entry is exactly what some encode produced; garbage never parses. A
// parent link, if present, is verified (it is under the CRC) but not
// returned; use DecodeEntry to read it.
func DecodeValues(buf []byte) ([]float64, bool) {
	vals, _, ok := decodeEntry(buf, nil)
	return vals, ok
}

// DecodeEntry parses entry bytes including the parent content-address
// link ("" when the entry carries none). Verification rules are
// DecodeValues's exactly.
func DecodeEntry(buf []byte) (vals []float64, parent string, ok bool) {
	return decodeEntry(buf, nil)
}

// decodeAppend is DecodeValues with caller-owned value scratch: parsed
// values are appended to vals (which may be nil or a reused slice sliced
// to zero length), so a hot read loop decodes entry after entry without
// allocating a fresh values slice per entry. On ok=false the returned
// slice is vals untouched.
func decodeAppend(buf []byte, vals []float64) ([]float64, bool) {
	out, _, ok := decodeEntry(buf, vals)
	return out, ok
}

// decodeEntry parses an entry, returning ok=false on any corruption,
// version mismatch, unknown flags, or truncation. Values are appended to
// vals (nil allocates fresh).
func decodeEntry(buf []byte, vals []float64) ([]float64, string, bool) {
	if len(buf) < headerSize+trailerSize {
		return vals, "", false
	}
	if [4]byte(buf[0:4]) != magic {
		return vals, "", false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != CodecVersion {
		return vals, "", false
	}
	flags := binary.LittleEndian.Uint16(buf[6:8])
	if flags&^knownFlags != 0 {
		return vals, "", false
	}
	extra := 0
	if flags&flagParent != 0 {
		extra = parentSize
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	if n > (1<<31-headerSize-trailerSize-parentSize)/8 ||
		len(buf) != headerSize+8*int(n)+extra+trailerSize {
		return vals, "", false
	}
	body := buf[:headerSize+8*int(n)+extra]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[len(body):]) {
		return vals, "", false
	}
	if vals == nil {
		// A successful decode always yields a non-nil slice, even for the
		// empty value list (nil would read as "no entry" to callers that
		// compare against what encode was given).
		vals = make([]float64, 0, n)
	}
	for i := 0; i < int(n); i++ {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+8*i:])))
	}
	parent := ""
	if extra > 0 {
		parent = hex.EncodeToString(buf[headerSize+8*int(n) : headerSize+8*int(n)+parentSize])
	}
	return vals, parent, true
}
