package store

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// The on-disk entry format is deliberately tiny and self-verifying:
//
//	offset  size  field
//	0       4     magic "TBRS"
//	4       2     codec version (little-endian uint16)
//	6       2     reserved (zero)
//	8       4     value count (little-endian uint32)
//	12      8·n   IEEE-754 float64 values, little-endian bit patterns
//	12+8n   4     CRC-32 (IEEE) of bytes [0, 12+8n)
//
// decode treats ANY deviation — short file, wrong magic, foreign codec
// version, count/length mismatch, checksum failure — as "no entry": a
// store can only ever return exactly what encode wrote, never garbage.
//
// CodecVersion must be bumped whenever the encoding of values changes
// (layout, semantics, or the meaning of a run value): entries written by
// an older codec then simply read as misses and are re-solved, so a
// version bump can never resurrect stale bytes as fresh results.
const (
	CodecVersion uint16 = 1

	headerSize  = 12
	trailerSize = 4
)

var magic = [4]byte{'T', 'B', 'R', 'S'}

// encode serializes run values into the versioned entry format.
func encode(vals []float64) []byte {
	buf := make([]byte, headerSize+8*len(vals)+trailerSize)
	copy(buf[0:4], magic[:])
	binary.LittleEndian.PutUint16(buf[4:6], CodecVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(vals)))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[headerSize+8*i:], math.Float64bits(v))
	}
	sum := crc32.ChecksumIEEE(buf[:headerSize+8*len(vals)])
	binary.LittleEndian.PutUint32(buf[headerSize+8*len(vals):], sum)
	return buf
}

// EncodeValues serializes run values into the entry format — the bytes a
// Save would write. It is exported for transports that move entries
// between stores verbatim (the remote-store wire format is exactly the
// on-disk format, so the CRC travels with the values and the receiver
// re-verifies it).
func EncodeValues(vals []float64) []byte { return encode(vals) }

// DecodeValues parses entry bytes, ok=false on any corruption, version
// mismatch, or truncation — the receiving end of EncodeValues. A decoded
// entry is exactly what some encode produced; garbage never parses.
func DecodeValues(buf []byte) ([]float64, bool) { return decode(buf) }

// decode parses an entry, returning ok=false on any corruption, version
// mismatch, or truncation.
func decode(buf []byte) ([]float64, bool) {
	return decodeAppend(buf, nil)
}

// decodeAppend is decode with caller-owned value scratch: parsed values
// are appended to vals (which may be nil or a reused slice sliced to
// zero length), so a hot read loop decodes entry after entry without
// allocating a fresh values slice per entry. The verification rules are
// decode's exactly — any deviation is "no entry" — and on ok=false the
// returned slice is vals untouched.
func decodeAppend(buf []byte, vals []float64) ([]float64, bool) {
	if len(buf) < headerSize+trailerSize {
		return vals, false
	}
	if [4]byte(buf[0:4]) != magic {
		return vals, false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != CodecVersion {
		return vals, false
	}
	n := binary.LittleEndian.Uint32(buf[8:12])
	if n > (1<<31-headerSize-trailerSize)/8 || len(buf) != headerSize+8*int(n)+trailerSize {
		return vals, false
	}
	body := buf[:headerSize+8*int(n)]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[len(body):]) {
		return vals, false
	}
	if vals == nil {
		// A successful decode always yields a non-nil slice, even for the
		// empty value list (nil would read as "no entry" to callers that
		// compare against what encode was given).
		vals = make([]float64, 0, n)
	}
	for i := 0; i < int(n); i++ {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(buf[headerSize+8*i:])))
	}
	return vals, true
}
