package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func sampleJob() JobRecord {
	return JobRecord{
		ID:         "00deadbeef00deadbeef00deadbeef00",
		Grid:       "topo=rrg:n=8,deg=3 traffic=permutation eval=aspl runs=1 seed=1",
		State:      JobDone,
		Status:     200,
		Done:       7,
		Total:      7,
		ResultAddr: Addr("some canonical bytes"),
		Error:      "",
		Created:    1700000000000000001,
		Updated:    1700000000000000002,
	}
}

func TestJobCodecRoundTrip(t *testing.T) {
	cases := []JobRecord{
		sampleJob(),
		{ID: "ab", State: JobQueued, Total: 3, Created: 1, Updated: 1},
		{ID: "ff", Grid: "g", State: JobFailed, Status: 500, Error: "solver exploded"},
		{ID: "0c", State: JobCanceled, Status: 499, Error: "all clients gone"},
	}
	for _, rec := range cases {
		got, ok := DecodeJob(EncodeJob(rec))
		if !ok {
			t.Fatalf("round trip rejected %+v", rec)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("round trip: got %+v, want %+v", got, rec)
		}
	}
}

// TestJobCodecTamper: the absolute corruption-tolerance rule, applied to
// job records. Any byte-level damage — truncation, bit flips anywhere,
// magic/version/state abuse, trailing junk — must read as "no record",
// never as a different record and never as a panic.
func TestJobCodecTamper(t *testing.T) {
	orig := sampleJob()
	good := EncodeJob(orig)

	for n := 0; n < len(good); n++ {
		if _, ok := DecodeJob(good[:n]); ok {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	for i := 0; i < len(good); i++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			bad := append([]byte(nil), good...)
			bad[i] ^= flip
			if rec, ok := DecodeJob(bad); ok && !reflect.DeepEqual(rec, orig) {
				t.Fatalf("flip at byte %d decoded as a DIFFERENT record: %+v", i, rec)
			}
		}
	}
	if _, ok := DecodeJob(append(append([]byte(nil), good...), 0)); ok {
		t.Fatal("trailing junk accepted")
	}
	if _, ok := DecodeJob(nil); ok {
		t.Fatal("nil accepted")
	}
	// A record claiming an out-of-range state must not decode even with a
	// valid CRC.
	weird := sampleJob()
	weird.State = JobState(77)
	if _, ok := DecodeJob(EncodeJob(weird)); ok {
		t.Fatal("out-of-range state accepted")
	}
}

func TestJobSaveLoadDeleteList(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a, b := sampleJob(), sampleJob()
	b.ID = "0123456789abcdef"
	b.State = JobRunning
	for _, rec := range []JobRecord{a, b} {
		if err := s.SaveJob(rec); err != nil {
			t.Fatal(err)
		}
	}
	got, ok := s.LoadJob(a.ID)
	if !ok || !reflect.DeepEqual(got, a) {
		t.Fatalf("load: %+v %v, want %+v", got, ok, a)
	}
	ids := s.Jobs()
	sort.Strings(ids)
	want := []string{a.ID, b.ID}
	sort.Strings(want)
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("jobs list: %v, want %v", ids, want)
	}
	// Overwrite is last-writer-wins.
	a2 := a
	a2.Done = 3
	if err := s.SaveJob(a2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.LoadJob(a.ID); got.Done != 3 {
		t.Fatalf("overwrite lost: %+v", got)
	}
	s.DeleteJob(a.ID)
	if _, ok := s.LoadJob(a.ID); ok {
		t.Fatal("deleted job still loads")
	}
	if got := s.Jobs(); len(got) != 1 || got[0] != b.ID {
		t.Fatalf("jobs after delete: %v", got)
	}
	// Malformed ids never touch the filesystem.
	if err := s.SaveJob(JobRecord{ID: "../escape"}); err == nil {
		t.Fatal("path-escaping id accepted")
	}
	if _, ok := s.LoadJob("../escape"); ok {
		t.Fatal("path-escaping id loaded")
	}
	if _, ok := s.LoadJob("UPPER"); ok {
		t.Fatal("non-hex id loaded")
	}
}

// TestJobLoadDropsDamage: a corrupt or misfiled record reads as unknown
// AND is removed, so damage cannot shadow a future job under the same id.
func TestJobLoadDropsDamage(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleJob()
	if err := s.SaveJob(rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, jobsDir, rec.ID)
	if err := os.WriteFile(path, []byte("not a TBRJ record"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadJob(rec.ID); ok {
		t.Fatal("corrupt record loaded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt record not dropped")
	}

	// Misfiled: a valid record stored under someone else's id.
	other := sampleJob()
	other.ID = "aaaa"
	if err := s.SaveJob(other); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(dir, jobsDir, "aaaa"), filepath.Join(dir, jobsDir, "bbbb")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.LoadJob("bbbb"); ok {
		t.Fatal("misfiled record loaded under the wrong id")
	}
	if _, err := os.Stat(filepath.Join(dir, jobsDir, "bbbb")); !os.IsNotExist(err) {
		t.Fatal("misfiled record not dropped")
	}
	// Jobs() skips temp files and junk names; every valid record above was
	// dropped as damage, so the listing must come back empty.
	os.WriteFile(filepath.Join(dir, jobsDir, ".tmp-junk"), []byte("x"), 0o644)
	os.WriteFile(filepath.Join(dir, jobsDir, "NOT-HEX"), []byte("x"), 0o644)
	if ids := s.Jobs(); len(ids) != 0 {
		t.Fatalf("jobs listing after damage sweep: %v, want empty", ids)
	}
}
