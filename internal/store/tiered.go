package store

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/trace"
)

// Backend is the key-value contract a Tiered remote tier must honor —
// structurally identical to scenario.Backend, restated here so the store
// layer does not depend on the scenario engine. Load must return false on
// any failure (a backend surfaces absence, never wrong data); both
// methods must be safe for concurrent use.
type Backend interface {
	Load(key string) ([]float64, bool)
	Save(key string, vals []float64) error
}

// CtxBackend is the optional Backend extension for context-aware loads
// (structurally scenario.CtxBackend): a backend that can propagate the
// caller's trace context downstream — the remotestore client forwards it
// as a W3C traceparent header so the peer's spans join the caller's
// trace — implements LoadCtx. Tiered.LoadCtx uses it when present.
type CtxBackend interface {
	LoadCtx(ctx context.Context, key string) ([]float64, bool)
}

// LinkedSaver is the optional Backend extension for parent-linked
// publication: a backend that can record which entry's result
// warm-started this one (codec v2 parent link) implements it. Callers
// fall back to plain Save — losing the link, never the values — when the
// backend does not.
type LinkedSaver interface {
	SaveLinked(key string, vals []float64, parentKey string) error
}

// TieredOptions configures a Tiered backend's claim-based singleflight.
type TieredOptions struct {
	// LeaseTTL enables cross-replica claims: before solving a missed key,
	// the replica publishes a claim with this lease; peers sharing the
	// pool wait for the result instead of duplicating the solve, and a
	// crashed claimant's lease expires so waiters reclaim it. 0 disables
	// claims (every replica solves its own misses). The TTL must comfortably
	// exceed a worst-case point solve — an expired-but-alive claimant only
	// costs a duplicate solve, never wrong data.
	LeaseTTL time.Duration
	// Poll is the claim-wait probe interval (default 25ms).
	Poll time.Duration
	// Owner identifies this replica on claims (default "host/pid").
	Owner string
	// WaitCycles bounds how many consecutive lost-claim leases a Load will
	// wait out before degrading to a local solve (default 2). The bound is
	// the no-stall guarantee: a Load blocks at most WaitCycles lease TTLs.
	WaitCycles int
}

// Tiered chains the local disk store with an optional remote tier into
// one scenario.Backend: reads go disk first, then remote (a remote hit is
// promoted — written back — to disk); writes go to disk, best-effort to
// the remote, and release any claim held on the key. With a LeaseTTL,
// misses coordinate through claim leases so a cold point is solved once
// fleet-wide even when many replicas (or many goroutines in one process)
// miss it concurrently — and a crashed claimant never wedges anyone,
// because leases expire.
//
// The degradation ladder is strict: remote failure → disk; disk miss →
// claim wait; claim churn or lease expiry → local solve. Every rung
// degrades toward "solve it yourself", which is always correct under the
// cache-key invariant, so a flaky fleet costs latency and duplicate work,
// never wrong bytes and never a stall.
type Tiered struct {
	disk   *Store
	remote Backend
	opt    TieredOptions

	mu    sync.Mutex
	stats TieredStats
}

// TieredStats snapshots a Tiered backend's routing and claim activity.
type TieredStats struct {
	DiskHits   int64 // served from the local store
	RemoteHits int64 // served from the remote tier
	Misses     int64 // served from neither; caller solves
	Promotions int64 // remote hits written back to disk
	// PromoteErrs counts failed write-backs; the hit is still served.
	PromoteErrs int64
	// RemoteSaveErrs counts failed best-effort remote publications.
	RemoteSaveErrs int64
	ClaimsWon      int64 // leases acquired before solving
	ClaimsLost     int64 // leases another owner held; we waited
	WaitHits       int64 // results that appeared while waiting on a claim
	// Reclaims counts leases that expired under a waiter — crashed or
	// wedged claimants whose work this replica took over.
	Reclaims int64
	// WaitTimeouts counts Loads that exhausted WaitCycles and degraded to
	// a local solve.
	WaitTimeouts int64
	// Abandons counts claims released without a result — failed, canceled,
	// or infeasible solves whose lease would otherwise park waiters for a
	// full TTL.
	Abandons int64
}

// NewTiered wires a tiered backend over the local disk store and an
// optional remote tier (nil for disk-only with claim singleflight).
func NewTiered(disk *Store, remote Backend, opt TieredOptions) *Tiered {
	if opt.Poll <= 0 {
		opt.Poll = 25 * time.Millisecond
	}
	if opt.Owner == "" {
		host, _ := os.Hostname()
		opt.Owner = fmt.Sprintf("%s/%d", host, os.Getpid())
	}
	if opt.WaitCycles <= 0 {
		opt.WaitCycles = 2
	}
	return &Tiered{disk: disk, remote: remote, opt: opt}
}

// Disk returns the local tier.
func (t *Tiered) Disk() *Store { return t.disk }

func (t *Tiered) count(f func(*TieredStats)) {
	t.mu.Lock()
	f(&t.stats)
	t.mu.Unlock()
}

// Load implements Backend/scenario.Backend over the tiers. A false return
// means the caller should solve — and, when claims are enabled, that this
// replica holds the solve lease (or waiting it out was exhausted).
func (t *Tiered) Load(key string) ([]float64, bool) {
	return t.LoadCtx(context.Background(), key)
}

// LoadCtx is Load carrying the caller's context. When the context holds
// a sampled trace span, every rung of the degradation ladder records a
// span — disk read, peer read (forwarded to the remote tier via
// CtxBackend so its spans join the same trace), and claim-lease waits
// with their outcome; on the unsampled path the span calls are inert
// and LoadCtx costs the same as Load.
func (t *Tiered) LoadCtx(ctx context.Context, key string) ([]float64, bool) {
	addr := Addr(key)
	dsp := trace.StartSpan(ctx, "tier.disk")
	if vals, ok := t.disk.LoadAddr(addr); ok {
		dsp.Attr("outcome", "hit")
		dsp.End()
		t.count(func(s *TieredStats) { s.DiskHits++ })
		return vals, true
	}
	dsp.Attr("outcome", "miss")
	dsp.End()
	if t.remote != nil {
		psp := trace.StartSpan(ctx, "tier.peer")
		vals, ok := t.loadRemote(ctx, key)
		if ok {
			psp.Attr("outcome", "hit")
			psp.End()
			// Write-back promotion: the next miss on this replica (or any
			// pool peer) is a disk hit even if the remote is down by then.
			if err := t.disk.SaveAddr(addr, vals); err != nil {
				t.count(func(s *TieredStats) { s.RemoteHits++; s.PromoteErrs++ })
			} else {
				t.count(func(s *TieredStats) { s.RemoteHits++; s.Promotions++ })
			}
			return vals, true
		}
		psp.Attr("outcome", "miss")
		psp.End()
	}
	if t.opt.LeaseTTL <= 0 {
		t.count(func(s *TieredStats) { s.Misses++ })
		return nil, false
	}
	// Claim-based singleflight: win the lease and solve, or wait for the
	// holder's result. Both waiting and reclaiming are bounded, so this
	// path can never stall a solve indefinitely.
	csp := trace.StartSpan(ctx, "claim.wait")
	defer csp.End()
	for cycle := 0; cycle < t.opt.WaitCycles; cycle++ {
		if cycle > 0 {
			// A previous holder may have published between our last poll and
			// now; re-check before contending for the lease. The fresh load
			// bypasses the negative cache: the whole point of polling is to
			// see another process's publish immediately.
			if vals, ok := t.disk.loadAddrFresh(addr); ok {
				csp.Attr("outcome", "wait-hit")
				t.count(func(s *TieredStats) { s.WaitHits++ })
				return vals, true
			}
		}
		won, deadline := t.disk.Claim(addr, t.opt.Owner, t.opt.LeaseTTL)
		if won {
			csp.Attr("outcome", "claimed")
			t.count(func(s *TieredStats) { s.ClaimsWon++; s.Misses++ })
			return nil, false
		}
		t.count(func(s *TieredStats) { s.ClaimsLost++ })
		released := false
		for time.Now().Before(deadline) {
			time.Sleep(t.opt.Poll)
			if vals, ok := t.disk.loadAddrFresh(addr); ok {
				csp.Attr("outcome", "wait-hit")
				t.count(func(s *TieredStats) { s.WaitHits++ })
				return vals, true
			}
			if _, _, ok := t.disk.ClaimHolder(addr); !ok {
				// The holder released without publishing (its solve failed):
				// stop waiting and contend for the lease ourselves.
				released = true
				break
			}
		}
		if !released {
			// The lease ran out under us: the claimant crashed or wedged.
			t.count(func(s *TieredStats) { s.Reclaims++ })
		}
	}
	csp.Attr("outcome", "wait-timeout")
	t.count(func(s *TieredStats) { s.WaitTimeouts++; s.Misses++ })
	return nil, false
}

// loadRemote dispatches one remote-tier read, via LoadCtx when the
// remote backend is context-aware.
func (t *Tiered) loadRemote(ctx context.Context, key string) ([]float64, bool) {
	if cb, ok := t.remote.(CtxBackend); ok {
		return cb.LoadCtx(ctx, key)
	}
	return t.remote.Load(key)
}

// Save publishes to disk, best-effort to the remote tier, and releases
// this replica's claim on the key (waiters see the result on their next
// poll). The disk write's error is the authoritative one; remote failures
// are counted, never raised — mirroring the cache's durability-is-best-
// effort rule.
func (t *Tiered) Save(key string, vals []float64) error {
	return t.SaveLinked(key, vals, "")
}

// SaveLinked is Save with a parent content-address link threaded through
// every tier that supports one: always the local disk entry, and the
// remote tier too when it implements LinkedSaver (the remotestore client
// does — the link travels inside the TBRS body). A remote tier without
// linked saves still gets the values; the link is an optimization hint,
// never load-bearing.
func (t *Tiered) SaveLinked(key string, vals []float64, parentKey string) error {
	addr := Addr(key)
	parent := ""
	if parentKey != "" {
		parent = Addr(parentKey)
	}
	err := t.disk.SaveAddrLinked(addr, vals, parent)
	if t.remote != nil {
		var rerr error
		if ls, ok := t.remote.(LinkedSaver); ok && parentKey != "" {
			rerr = ls.SaveLinked(key, vals, parentKey)
		} else {
			rerr = t.remote.Save(key, vals)
		}
		if rerr != nil {
			t.count(func(s *TieredStats) { s.RemoteSaveErrs++ })
		}
	}
	if t.opt.LeaseTTL > 0 {
		t.disk.Unclaim(addr, t.opt.Owner)
	}
	return err
}

// PinKey pins the disk entry under key against Prune eviction (see
// Store.PinKey); the returned release is idempotent. Remote tiers have no
// local eviction to pin against.
func (t *Tiered) PinKey(key string) func() { return t.disk.PinKey(key) }

// Abandon releases this replica's claim on a key whose solve produced no
// result — it errored, was canceled, or the point was infeasible. Save
// never runs for such a solve, so without this release the claim would
// park every fleet peer waiting on the key for the full lease TTL.
// Unclaim is owner-verified, so abandoning a claim this replica does not
// hold (a wait-timeout miss, say) is a safe no-op.
func (t *Tiered) Abandon(key string) {
	if t.opt.LeaseTTL <= 0 {
		return
	}
	t.disk.Unclaim(Addr(key), t.opt.Owner)
	t.count(func(s *TieredStats) { s.Abandons++ })
}

// Stats snapshots the tiered backend's counters.
func (t *Tiered) Stats() TieredStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}
