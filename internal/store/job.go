package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
)

// Job records are the durable half of the service's async job API
// (POST /v1/jobs): one small entry per submitted grid, holding the job's
// lifecycle state, its progress counters, and — once the evaluation
// completes — the content address of the canonical response bytes. They
// ride the same machinery as result entries: a versioned, CRC-checksummed
// binary codec (magic TBRJ, a sibling of codec.go's TBRS), atomic
// temp-file-plus-rename publication, and absolute corruption tolerance.
//
// The degradation ladder for job records is deliberately one rung
// shorter than for results: a result entry that is lost re-solves, a job
// record that is lost or corrupt reads as "unknown job" and the client
// resubmits the grid — never a wedge, never a wrong answer. Nothing in a
// job record is needed to *compute* anything; it only names work, so
// dropping a damaged record costs one resubmission.
//
// JobCodecVersion follows the same rule as CodecVersion: bump it whenever
// the record encoding or the meaning of any field changes. Old-version
// records then read as unknown jobs and are swept, never reinterpreted.

// JobState is a job's lifecycle position. The zero value is JobQueued.
type JobState uint8

const (
	JobQueued JobState = iota
	JobRunning
	JobDone
	JobFailed
	JobCanceled
)

// Terminal reports whether the state is final — no dispatcher will move
// the job again (a done job may still be re-run to replay its bytes after
// a restart, but its recorded state stays done).
func (st JobState) Terminal() bool {
	return st == JobDone || st == JobFailed || st == JobCanceled
}

// String names the state for status responses and logs.
func (st JobState) String() string {
	switch st {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	case JobCanceled:
		return "canceled"
	}
	return fmt.Sprintf("jobstate(%d)", uint8(st))
}

// JobRecord is one persisted async job.
type JobRecord struct {
	// ID is the job's identifier: 1-64 lowercase hex characters, assigned
	// at submission.
	ID string
	// Grid is the normalized grid line the job evaluates.
	Grid string
	// State is the lifecycle position last persisted.
	State JobState
	// Status is the HTTP status the job's result replays (200 for done;
	// the failure status for failed/canceled jobs).
	Status uint16
	// Done and Total are the progress counters: grid points completed and
	// the point count.
	Done, Total uint32
	// ResultAddr, for done jobs, is the content address (hex SHA-256) of
	// the canonical EvalResponse bytes — the byte-identity witness a
	// post-restart replay is verified against.
	ResultAddr string
	// Error carries the failure reason for failed/canceled jobs.
	Error string
	// Created and Updated are unix-nano timestamps.
	Created, Updated int64
}

// JobCodecVersion versions the job-record encoding. Bump it whenever the
// layout or the meaning of any field changes — stale-version records then
// read as unknown jobs (resubmit), never as misinterpreted bytes.
const JobCodecVersion uint16 = 1

var jobMagic = [4]byte{'T', 'B', 'R', 'J'}

// jobHeaderSize: magic(4) + version(2) + state(1) + reserved(1) +
// status(2) + reserved(2) + done(4) + total(4) + created(8) + updated(8).
const jobHeaderSize = 36

// EncodeJob serializes a job record into the versioned TBRJ format:
// fixed header, four length-prefixed strings (ID, Grid, ResultAddr,
// Error), CRC-32 trailer over everything before it.
func EncodeJob(rec JobRecord) []byte {
	strs := []string{rec.ID, rec.Grid, rec.ResultAddr, rec.Error}
	size := jobHeaderSize
	for _, s := range strs {
		size += 4 + len(s)
	}
	buf := make([]byte, size+trailerSize)
	copy(buf[0:4], jobMagic[:])
	binary.LittleEndian.PutUint16(buf[4:6], JobCodecVersion)
	buf[6] = byte(rec.State)
	binary.LittleEndian.PutUint16(buf[8:10], rec.Status)
	binary.LittleEndian.PutUint32(buf[12:16], rec.Done)
	binary.LittleEndian.PutUint32(buf[16:20], rec.Total)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(rec.Created))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(rec.Updated))
	off := jobHeaderSize
	for _, s := range strs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(s)))
		copy(buf[off+4:], s)
		off += 4 + len(s)
	}
	sum := crc32.ChecksumIEEE(buf[:size])
	binary.LittleEndian.PutUint32(buf[size:], sum)
	return buf
}

// DecodeJob parses a job record, ok=false on any corruption, truncation,
// or codec-version mismatch — the "unknown job, resubmit" rung of the
// degradation ladder. A decoded record is exactly what some EncodeJob
// produced; garbage never parses.
func DecodeJob(buf []byte) (JobRecord, bool) {
	if len(buf) < jobHeaderSize+trailerSize {
		return JobRecord{}, false
	}
	if [4]byte(buf[0:4]) != jobMagic {
		return JobRecord{}, false
	}
	if binary.LittleEndian.Uint16(buf[4:6]) != JobCodecVersion {
		return JobRecord{}, false
	}
	body := buf[:len(buf)-trailerSize]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[len(body):]) {
		return JobRecord{}, false
	}
	rec := JobRecord{
		State:   JobState(buf[6]),
		Status:  binary.LittleEndian.Uint16(buf[8:10]),
		Done:    binary.LittleEndian.Uint32(buf[12:16]),
		Total:   binary.LittleEndian.Uint32(buf[16:20]),
		Created: int64(binary.LittleEndian.Uint64(buf[20:28])),
		Updated: int64(binary.LittleEndian.Uint64(buf[28:36])),
	}
	if rec.State > JobCanceled {
		return JobRecord{}, false
	}
	off := jobHeaderSize
	fields := []*string{&rec.ID, &rec.Grid, &rec.ResultAddr, &rec.Error}
	for _, f := range fields {
		if off+4 > len(body) {
			return JobRecord{}, false
		}
		n := int(binary.LittleEndian.Uint32(buf[off:]))
		if n < 0 || off+4+n > len(body) {
			return JobRecord{}, false
		}
		*f = string(buf[off+4 : off+4+n])
		off += 4 + n
	}
	if off != len(body) {
		return JobRecord{}, false
	}
	return rec, true
}

// jobsDir is the per-store directory holding job records. Like claims,
// its files are invisible to the result-entry index (Open skips non-shard
// directories), and crashed-writer .tmp-* leftovers are swept by the
// orphan GC.
const jobsDir = "jobs"

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.dir, jobsDir, id)
}

// validJobID bounds what a record may be filed under: 1-64 lowercase hex
// characters, so a job id can never escape the jobs directory or collide
// with temp-file names.
func validJobID(id string) bool {
	return len(id) > 0 && len(id) <= 64 && isHex(id)
}

// SaveJob publishes a job record, atomically (temp file + rename), under
// its ID. Concurrent writers racing on one job leave a complete record —
// last writer wins, the same rule result entries live by.
func (s *Store) SaveJob(rec JobRecord) error {
	if !validJobID(rec.ID) {
		return fmt.Errorf("store: malformed job id %q", rec.ID)
	}
	dir := filepath.Join(s.dir, jobsDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := tmp.Write(EncodeJob(rec)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.jobPath(rec.ID)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadJob reads the record persisted under id. A missing, corrupt,
// truncated, stale-codec-version, or misfiled record reads as ok=false —
// "unknown job, resubmit" — and a damaged file is dropped so it cannot
// shadow a future job.
func (s *Store) LoadJob(id string) (JobRecord, bool) {
	if !validJobID(id) {
		return JobRecord{}, false
	}
	buf, err := os.ReadFile(s.jobPath(id))
	if err != nil {
		return JobRecord{}, false
	}
	rec, ok := DecodeJob(buf)
	if !ok || rec.ID != id {
		os.Remove(s.jobPath(id))
		return JobRecord{}, false
	}
	return rec, true
}

// DeleteJob removes the record persisted under id, if any.
func (s *Store) DeleteJob(id string) {
	if validJobID(id) {
		os.Remove(s.jobPath(id))
	}
}

// Jobs lists the ids of every persisted job record — the recovery scan a
// restarted service runs to re-adopt unfinished jobs. Temp files and
// foreign junk are skipped; damaged records are surfaced here and weeded
// by the LoadJob that follows.
func (s *Store) Jobs() []string {
	entries, err := os.ReadDir(filepath.Join(s.dir, jobsDir))
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		if name := e.Name(); !e.IsDir() && !strings.HasPrefix(name, ".") && validJobID(name) {
			ids = append(ids, name)
		}
	}
	return ids
}
