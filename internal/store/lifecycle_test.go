package store

import (
	"reflect"
	"testing"
	"time"
)

// TestUnclaimCannotStripSuccessor pins the atomic-release fix: a slow
// ex-claimant whose release interleaves with a successor's reclaim must
// not strip the successor's fresh lease. The hook fires inside Unclaim's
// check window — with the old holder-check-then-remove sequence (the
// check reading the releaser's own stale claim, the remove landing after
// the successor's re-link) this test fails: bob's lease vanishes.
func TestUnclaimCannotStripSuccessor(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	addr := Addr("contended-point")
	if won, _ := s.Claim(addr, "alice", time.Millisecond); !won {
		t.Fatal("alice's claim must win")
	}
	time.Sleep(5 * time.Millisecond) // let alice's lease expire

	// In the release window, bob reclaims the expired lease — exactly the
	// interleaving the invariant covers.
	hooked := false
	s.unclaimHook = func() {
		hooked = true
		if won, _ := s.Claim(addr, "bob", time.Minute); !won {
			t.Error("bob must be able to reclaim the expired lease mid-release")
		}
	}
	s.Unclaim(addr, "alice")
	if !hooked {
		t.Fatal("release never entered its check window — the test exercised nothing")
	}
	owner, deadline, ok := s.ClaimHolder(addr)
	if !ok || owner != "bob" {
		t.Fatalf("after alice's release, holder = %q (ok=%v) — the stale release stripped bob's lease", owner, ok)
	}
	if time.Until(deadline) < 30*time.Second {
		t.Fatalf("bob's lease deadline %v is not his fresh one", deadline)
	}

	// And a plain wrong-owner release with a mid-window successor: the
	// taken file is not ours, so the successor's lease is restored.
	s.unclaimHook = nil
	s.Unclaim(addr, "alice") // bob holds; alice's release must leave it
	if owner, _, ok := s.ClaimHolder(addr); !ok || owner != "bob" {
		t.Fatalf("wrong-owner release disturbed the lease: %q %v", owner, ok)
	}
	s.Unclaim(addr, "bob")
	if _, _, ok := s.ClaimHolder(addr); ok {
		t.Fatal("owner's release must clear the lease")
	}
}

// TestPruneConcurrentSaveRepublish pins the Prune re-verify fix: an entry
// re-saved between Prune's victim selection and its removal pass is
// current again and must survive with its new bytes. Pre-fix, the
// out-of-lock unlink deleted the freshly renamed file while the index
// still listed the entry — a subsequent Load missed (orphaned index
// entry), losing a write that Save had acknowledged.
func TestPruneConcurrentSaveRepublish(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("pt", []float64{1}); err != nil {
		t.Fatal(err)
	}
	addr := Addr("pt")
	republished := false
	s.pruneHook = func(a string) {
		if a == addr {
			republished = true
			if err := s.SaveAddr(addr, []float64{2, 2}); err != nil {
				t.Errorf("re-save during prune window: %v", err)
			}
		}
	}
	s.Prune(0) // evict everything unpinned
	if !republished {
		t.Fatal("prune never selected the entry — the test exercised nothing")
	}
	vals, ok := s.Load("pt")
	if !ok || !reflect.DeepEqual(vals, []float64{2, 2}) {
		t.Fatalf("re-published entry lost to the racing prune: %v %v", vals, ok)
	}
	st := s.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries: %d, want 1", st.Entries)
	}
	if st.Evicted != 0 {
		t.Fatalf("evicted: %d, want 0 (the skipped victim must not count)", st.Evicted)
	}
}
