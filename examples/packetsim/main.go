// packetsim: the §8.2 flow-vs-packet validation on a small random graph.
// Solves the fluid max concurrent flow, then runs the MPTCP-style packet
// simulator on the same instance and compares.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/experiments"
	"repro/internal/rrg"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	g, err := rrg.Regular(rng, 24, 6)
	if err != nil {
		log.Fatal(err)
	}
	// Oversubscribe slightly so the fluid optimum is below 1 and transport
	// inefficiency is visible (as the paper does for Fig. 13).
	for u := 0; u < g.N(); u++ {
		g.SetServers(u, 7)
	}
	fmt.Printf("RRG: %d switches, degree 6, %d servers\n", g.N(), g.TotalServers())

	for _, subflows := range []int{1, 2, 4, 8} {
		flowT, pktT, err := experiments.PacketVsFlow(g, 0.05, subflows, 33)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  subflows=%d  flow-level λ=%.3f  packet-level=%.3f  (packet/flow = %.1f%%)\n",
			subflows, flowT, pktT, 100*pktT/flowT)
	}
	fmt.Println("\nMore subflows close the gap to the fluid optimum — the paper's")
	fmt.Println("MPTCP result (within a few percent with 8 subflows).")
}
