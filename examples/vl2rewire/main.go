// vl2rewire: the paper's §7 case study at one scale. Builds VL2(DA, DI)
// and the rewired variant from the same equipment, then binary-searches
// how many ToRs each supports at full throughput under random permutation
// traffic. The rewired topology should support noticeably more.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/topo"
	"repro/internal/traffic"
)

func main() {
	cfg := topo.VL2Config{DA: 12, DI: 16}
	designed := cfg.NumToRs()
	fmt.Printf("VL2 with DA=%d, DI=%d: %d aggregation, %d core switches, designed for %d ToRs (%d servers)\n",
		cfg.DA, cfg.DI, cfg.NumAggs(), cfg.NumCores(), designed, designed*20)

	// Direct throughput comparison at the designed size.
	rng := rand.New(rand.NewSource(7))
	vl2, err := topo.VL2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rew, err := topo.RewiredVL2(rng, cfg, designed)
	if err != nil {
		log.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"VL2": vl2, "rewired": rew} {
		h := traffic.HostsOf(g)
		tm := traffic.Permutation(rand.New(rand.NewSource(3)), h)
		res, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.05})
		if err != nil {
			log.Fatal(err)
		}
		aspl, _ := g.ASPL()
		fmt.Printf("  %-8s λ=%.3f  links=%d  ASPL=%.3f\n", name, res.Throughput, g.NumLinks(), aspl)
	}

	// The §7 search: max ToRs at full throughput for each topology.
	const threshold = 0.90 // 1 minus solver slack
	ev := core.Evaluation{Workload: core.Permutation, Runs: 3, Seed: 11, Epsilon: 0.08}
	thr := func(int) float64 { return threshold }
	vl2Max, err := ev.MaxAtFullThroughput(1, designed*2, thr, func(tors int) core.Builder {
		return func(rng *rand.Rand) (*graph.Graph, error) {
			// Under/oversubscribed VL2: same fabric, different ToR count.
			return vl2Sized(cfg, tors)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	rewMax, err := ev.MaxAtFullThroughput(1, designed*2, thr, func(tors int) core.Builder {
		return func(rng *rand.Rand) (*graph.Graph, error) {
			return topo.RewiredVL2(rng, cfg, tors)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nToRs at full throughput:  VL2=%d  rewired=%d  (%.0f%% improvement)\n",
		vl2Max, rewMax, 100*(float64(rewMax)/float64(vl2Max)-1))
}

// vl2Sized rebuilds VL2 with an arbitrary ToR count on the same fabric.
func vl2Sized(cfg topo.VL2Config, tors int) (*graph.Graph, error) {
	nAgg, nCore := cfg.NumAggs(), cfg.NumCores()
	g := graph.New(tors + nAgg + nCore)
	for t := 0; t < tors; t++ {
		g.SetClass(t, topo.ClassToR)
		g.SetServers(t, 20)
		g.AddLink(t, tors+(2*t)%nAgg, 10)
		g.AddLink(t, tors+(2*t+1)%nAgg, 10)
	}
	for i := 0; i < nAgg; i++ {
		g.SetClass(tors+i, topo.ClassAgg)
		for j := 0; j < nCore; j++ {
			g.AddLink(tors+i, tors+nAgg+j, 10)
		}
	}
	for j := 0; j < nCore; j++ {
		g.SetClass(tors+nAgg+j, topo.ClassCore)
	}
	return g, nil
}
