// heterodesign: designing a network from a heterogeneous switch pool
// using the paper's §5 recipe. Given two switch types, the example
// (1) sweeps the server distribution to show port-proportional placement
// is optimal, and (2) sweeps cross-cluster connectivity to show the wide
// throughput plateau that gives cabling flexibility.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hetero"
)

func main() {
	base := hetero.Config{
		NumLarge: 10, NumSmall: 20,
		PortsLarge: 24, PortsSmall: 12,
		Servers:         200,
		ServersPerLarge: -1, ServersPerSmall: -1,
	}
	fmt.Printf("Switch pool: %d large (%d ports) + %d small (%d ports); %d servers\n",
		base.NumLarge, base.PortsLarge, base.NumSmall, base.PortsSmall, base.Servers)
	fmt.Printf("Port-proportional placement puts %.0f servers on large switches\n\n",
		hetero.ProportionalLargeServers(base))

	measure := func(cfg hetero.Config) (float64, bool) {
		ev := core.Evaluation{Workload: core.Permutation, Runs: 3, Seed: 9, Epsilon: 0.08}
		st, err := ev.Throughput(func(rng *rand.Rand) (*graph.Graph, error) {
			return hetero.Build(rng, cfg)
		})
		if errors.Is(err, hetero.ErrInfeasiblePoint) {
			return 0, false
		}
		if err != nil {
			log.Fatal(err)
		}
		return st.Mean, true
	}

	fmt.Println("1. Server distribution sweep (ratio to proportional):")
	for _, x := range []float64{0.5, 0.75, 1.0, 1.25, 1.5} {
		cfg := base
		cfg.ServerRatio = x
		if t, ok := measure(cfg); ok {
			fmt.Printf("   x=%.2f  throughput=%.4f  %s\n", x, t, bar(t))
		} else {
			fmt.Printf("   x=%.2f  (infeasible)\n", x)
		}
	}

	fmt.Println("\n2. Cross-cluster connectivity sweep (ratio to vanilla random):")
	for _, x := range []float64{0.2, 0.4, 0.6, 1.0, 1.5, 2.0} {
		cfg := base
		cfg.ServerRatio = 1
		cfg.CrossRatio = x
		if t, ok := measure(cfg); ok {
			fmt.Printf("   x=%.2f  throughput=%.4f  %s\n", x, t, bar(t))
		} else {
			fmt.Printf("   x=%.2f  (infeasible)\n", x)
		}
	}
	fmt.Println("\nDesign takeaways (paper §5): place servers proportionally to port")
	fmt.Println("count; any cross-cluster volume on the plateau works, so switches can")
	fmt.Println("be clustered for short cables without losing throughput.")
}

func bar(t float64) string {
	n := int(t * 60)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
