// Quickstart: build a Jellyfish-style random regular graph, measure its
// throughput under random permutation traffic, and compare against the
// paper's analytical upper bound (Theorem 1 + the ASPL lower bound).
//
// Expected output: the RRG lands within a few percent of the bound — the
// paper's headline homogeneous-design result.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	spec := core.HomogeneousSpec{
		Switches: 40, // N
		Ports:    15, // k ports per switch
		Servers:  200,
	}
	fmt.Printf("Designing a homogeneous network: N=%d switches, k=%d ports, S=%d servers\n",
		spec.Switches, spec.Ports, spec.Servers)
	fmt.Printf("=> %d servers per switch, network degree r=%d\n",
		spec.Servers/spec.Switches, spec.NetworkDegree())

	ev := core.Evaluation{
		Workload: core.Permutation,
		Runs:     5,
		Seed:     42,
		Epsilon:  0.05,
	}
	stat, err := ev.Throughput(func(rng *rand.Rand) (*graph.Graph, error) {
		return core.DesignHomogeneous(rng, spec)
	})
	if err != nil {
		log.Fatal(err)
	}

	ub := core.UpperBound(spec, spec.Servers)
	fmt.Printf("\nMeasured throughput: %.4f ± %.4f per flow (min %.4f over %d runs)\n",
		stat.Mean, stat.Std, stat.Min, stat.Runs)
	fmt.Printf("Upper bound for ANY topology with this equipment: %.4f\n", ub)
	fmt.Printf("=> the random graph achieves %.1f%% of the optimal-topology bound\n",
		100*stat.Mean/ub)

	dstar := bounds.ASPLLowerBound(spec.Switches, spec.NetworkDegree())
	fmt.Printf("\n(ASPL lower bound d* = %.4f; the bound is N·r/(d*·f) = %d·%d/(%.4f·%d))\n",
		dstar, spec.Switches, spec.NetworkDegree(), dstar, spec.Servers)
}
