// Benchmarks regenerating every figure of the paper's evaluation (quick
// grids; see cmd/topobench for full-fidelity runs), plus micro-benchmarks
// and ablations for the core algorithms.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/maxflow"
	"repro/internal/mcf"
	"repro/internal/packet"
	"repro/internal/routing"
	"repro/internal/rrg"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/store"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// benchOpts are the reduced settings used so every figure regenerates in
// benchmark time. The series shapes are preserved; only grids and run
// counts shrink.
func benchOpts() experiments.Options {
	return experiments.Options{Quick: true, Runs: 2, Seed: 1}
}

func benchFigure(b *testing.B, id string) {
	b.Helper()
	runner := experiments.Registry[id]
	if runner == nil {
		b.Fatalf("unknown figure %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := runner(benchOpts())
		if err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("figure %s produced no series", id)
		}
	}
}

// One benchmark per paper figure.

func BenchmarkFig1a(b *testing.B)  { benchFigure(b, "1a") }
func BenchmarkFig1b(b *testing.B)  { benchFigure(b, "1b") }
func BenchmarkFig2a(b *testing.B)  { benchFigure(b, "2a") }
func BenchmarkFig2b(b *testing.B)  { benchFigure(b, "2b") }
func BenchmarkFig3(b *testing.B)   { benchFigure(b, "3") }
func BenchmarkFig4a(b *testing.B)  { benchFigure(b, "4a") }
func BenchmarkFig4b(b *testing.B)  { benchFigure(b, "4b") }
func BenchmarkFig4c(b *testing.B)  { benchFigure(b, "4c") }
func BenchmarkFig5(b *testing.B)   { benchFigure(b, "5") }
func BenchmarkFig6a(b *testing.B)  { benchFigure(b, "6a") }
func BenchmarkFig6b(b *testing.B)  { benchFigure(b, "6b") }
func BenchmarkFig6c(b *testing.B)  { benchFigure(b, "6c") }
func BenchmarkFig7a(b *testing.B)  { benchFigure(b, "7a") }
func BenchmarkFig7b(b *testing.B)  { benchFigure(b, "7b") }
func BenchmarkFig8a(b *testing.B)  { benchFigure(b, "8a") }
func BenchmarkFig8b(b *testing.B)  { benchFigure(b, "8b") }
func BenchmarkFig8c(b *testing.B)  { benchFigure(b, "8c") }
func BenchmarkFig9a(b *testing.B)  { benchFigure(b, "9a") }
func BenchmarkFig9b(b *testing.B)  { benchFigure(b, "9b") }
func BenchmarkFig9c(b *testing.B)  { benchFigure(b, "9c") }
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "10a") }
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "10b") }
func BenchmarkFig11(b *testing.B)  { benchFigure(b, "11") }
func BenchmarkFig12a(b *testing.B) { benchFigure(b, "12a") }
func BenchmarkFig12b(b *testing.B) { benchFigure(b, "12b") }
func BenchmarkFig12c(b *testing.B) { benchFigure(b, "12c") }
func BenchmarkFig13(b *testing.B)  { benchFigure(b, "13") }

// ---- micro-benchmarks for the substrates ----

func solverInstance(b *testing.B, n, r, sps int) (*graph.Graph, []traffic.Flow) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, n, r)
	if err != nil {
		b.Fatal(err)
	}
	for u := 0; u < n; u++ {
		g.SetServers(u, sps)
	}
	tm := traffic.Permutation(rng, traffic.HostsOf(g))
	return g, tm.Flows
}

// Ablation: solver cost vs. approximation quality. The paper's results are
// ratios, so ε ≈ 0.1 suffices; this quantifies what tighter ε costs.
func BenchmarkSolverEpsilon(b *testing.B) {
	g, flows := solverInstance(b, 40, 10, 5)
	for _, eps := range []float64{0.2, 0.1, 0.05} {
		b.Run(fmt.Sprintf("eps=%v", eps), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: eps}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the prebuild staleness margin on the high-ε instance that pays
// the double-build tax (see ROADMAP): margin=0 is the exact phase-start
// staleness test, margin=0.5 additionally refreshes borderline-fresh trees
// at phase start — in parallel, and while their stale regions are still
// small enough to repair instead of rebuild. On a single core the margin
// mostly trades serial mid-phase refreshes for phase-start ones (flat
// wall-clock); the win scales with real cores via the widened parallel
// section, tracked per-worker by SolverPhasePar.
func BenchmarkSolverMargin(b *testing.B) {
	g, flows := solverInstance(b, 40, 10, 5)
	for _, m := range []float64{0, 0.5} {
		b.Run(fmt.Sprintf("margin=%v", m), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.2, PrebuildMargin: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the scenario engine's content-addressed solve cache on a
// repeated-instance sweep. "cold" solves the whole grid; "warm" re-runs
// the identical grid against a primed cache, so every point is a content
// hash lookup — the figures-sharing-instances case.
func BenchmarkScenarioCache(b *testing.B) {
	grid, err := scenario.ParseGrid("topo=rrg:n=40,sps=5 traffic=permutation eval=mcf sweep=deg:6..14:4 runs=2 eps=0.12 seed=1")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := &scenario.Engine{Parallel: 1}
			if _, _, err := grid.Run(e); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := &scenario.Engine{Parallel: 1, Cache: scenario.NewCache()}
		if _, _, err := grid.Run(e); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := grid.Run(e); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Ablation: the persistent result store's cross-process restart win on
// the same sweep. "cold" is a fresh process over an empty store dir
// (solve + persist), "warm" is a restarted process — fresh cache, fresh
// store handle — over a primed dir, answering every point from disk.
func BenchmarkStoreColdWarm(b *testing.B) {
	grid, err := scenario.ParseGrid("topo=rrg:n=40,sps=5 traffic=permutation eval=mcf sweep=deg:6..14:4 runs=2 eps=0.12 seed=1")
	if err != nil {
		b.Fatal(err)
	}
	runGrid := func(dir string) {
		st, err := store.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		cache := scenario.NewCache()
		cache.SetBackend(st)
		e := &scenario.Engine{Parallel: 1, Cache: cache}
		if _, _, err := grid.Run(e); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir := b.TempDir()
			b.StartTimer()
			runGrid(dir)
		}
	})
	b.Run("warm", func(b *testing.B) {
		dir := b.TempDir()
		runGrid(dir)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runGrid(dir)
		}
	})
}

// warmLadderPoints builds the failure ladder of the incremental-evaluation
// benchmarks: the PR 4 sweep instance (rrg n=40 deg=10 sps=5, permutation,
// mcf, eps=0.12, seed=1) degraded at frac=0.05..0.2. All rungs share one
// seed, so they share one frac=0 parent — the "what changed" ladder a
// warm-started engine answers from that parent's witness.
func warmLadderPoints(tb testing.TB) []scenario.Point {
	tb.Helper()
	topoSpec, err := scenario.ParseTopology("rrg:n=40,sps=5")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := scenario.ParseTraffic("permutation")
	if err != nil {
		tb.Fatal(err)
	}
	var pts []scenario.Point
	for _, frac := range []float64{0.05, 0.1, 0.15, 0.2} {
		inner, err := scenario.ParseEvaluator("mcf")
		if err != nil {
			tb.Fatal(err)
		}
		pts = append(pts, scenario.Point{
			Topo: topoSpec, Traffic: tr,
			Eval: scenario.Failures{Frac: frac, Inner: inner},
			Seed: 1, Runs: 2, Epsilon: 0.12,
		})
	}
	return pts
}

// warmExpandPoints is the expansion-step variant: one growth step on the
// same instance, whose parent is the unexpanded base fabric.
func warmExpandPoints(tb testing.TB) []scenario.Point {
	tb.Helper()
	topoSpec, err := scenario.ParseTopology("expand:n=40,deg=10,sps=5,steps=1")
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := scenario.ParseTraffic("permutation")
	if err != nil {
		tb.Fatal(err)
	}
	ev, err := scenario.ParseEvaluator("mcf")
	if err != nil {
		tb.Fatal(err)
	}
	return []scenario.Point{{
		Topo: topoSpec, Traffic: tr, Eval: ev,
		Seed: 1, Runs: 2, Epsilon: 0.12,
	}}
}

// primeWitnesses solves every point's parent once (warm-start engine, so
// witnesses are exported) and returns the witness entries, keyed ready
// for injection into a fresh cache. The benchmark loop injects ONLY these
// — no parent results, no child results — so each iteration measures the
// delta solves themselves with the parent witness resident, never a
// result-cache hit.
func primeWitnesses(tb testing.TB, pts []scenario.Point) map[string][]float64 {
	tb.Helper()
	prime := scenario.NewCache()
	eng := &scenario.Engine{Parallel: 1, Cache: prime, WarmStart: true}
	wit := map[string][]float64{}
	for _, p := range pts {
		pp, ok := scenario.ParentPoint(p)
		if !ok {
			tb.Fatalf("point %s has no parent", p.Key())
		}
		if _, err := eng.MeasureRuns([]scenario.Point{pp}); err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < p.Runs; i++ {
			k := scenario.WitnessKey(pp.Key(), i)
			w, ok := prime.Get(k)
			if !ok {
				tb.Fatalf("parent solve exported no witness under %s", k)
			}
			wit[k] = w
		}
	}
	return wit
}

// Ablation: incremental what-if evaluation. Each sub-benchmark solves the
// same delta-shaped points cold (from-scratch Fleischer solves) and warm
// (seeded from the parent's witness, flowcheck-recertified); the
// cold/warm ns/op ratio is the PR 9 acceptance number (≥3× on the
// ladder). Priming happens outside the timer, and the warm iterations
// carry witnesses only, so a warm op is parent-witness mapping + seeded
// solve + certification — the real marginal cost of answering "what if"
// against an already-evaluated fabric.
func BenchmarkSolverWarmStart(b *testing.B) {
	for _, c := range []struct {
		name string
		pts  func(testing.TB) []scenario.Point
	}{{"ladder", warmLadderPoints}, {"expand", warmExpandPoints}} {
		pts := c.pts(b)
		b.Run(c.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng := &scenario.Engine{Parallel: 1}
				if _, err := eng.MeasureRuns(pts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/warm", func(b *testing.B) {
			wit := primeWitnesses(b, pts)
			runsTotal := 0
			for _, p := range pts {
				runsTotal += p.Runs
			}
			b.ReportAllocs()
			b.ResetTimer()
			var last *scenario.Engine
			for i := 0; i < b.N; i++ {
				cache := scenario.NewCache()
				for k, v := range wit {
					cache.Put(k, v)
				}
				eng := &scenario.Engine{Parallel: 1, Cache: cache, WarmStart: true}
				if _, err := eng.MeasureRuns(pts); err != nil {
					b.Fatal(err)
				}
				last = eng
			}
			b.StopTimer()
			if ws := last.WarmStats(); ws.Starts != int64(runsTotal) {
				b.Fatalf("warm iteration did not warm-start every run: %+v (want %d starts)", ws, runsTotal)
			}
		})
	}
}

// Ablation: solver scaling with network size at fixed degree (the Fig. 2
// regime).
func BenchmarkSolverScale(b *testing.B) {
	for _, n := range []int{20, 40, 80} {
		g, flows := solverInstance(b, n, 10, 5)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: the phase-parallel tree prebuild's scaling with worker count
// on the Fig. 2 benchmark instance. The solver's output is byte-identical
// across worker counts (TestSolverDeterministicAcrossWorkers); only
// wall-clock moves, by parallelizing the predicted-stale tree builds each
// phase front-loads. The process-wide semaphore is widened to the worker
// count so the measurement reflects the requested parallelism rather than
// the machine's default cap.
func BenchmarkSolverPhasePar(b *testing.B) {
	g, flows := solverInstance(b, 80, 10, 5)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			runner.SetMaxInFlight(w)
			defer runner.SetMaxInFlight(0)
			for i := 0; i < b.N; i++ {
				if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: dynamic shortest-path-tree repair vs full rebuild on
// phase-to-phase length updates. Between two refreshes of one source's
// tree, the Garg–Könemann solver grows the arcs other sources routed on —
// from this tree's perspective a scattering of mostly non-tree and deep
// tree arcs. Each iteration applies one such cross-traffic batch and then
// brings the tree current, either incrementally (Repair) or from scratch
// (Run). The growth factor is kept infinitesimal so lengths stay finite
// over any b.N while leaving the repair work (which depends only on which
// arcs grew) unchanged. Growth concentrated on the tree's own root paths
// is the opposite regime — stale subtrees hang off the root and repair
// degenerates to a rebuild — which is why the solver budgets repairs and
// falls back adaptively (see internal/mcf).
func BenchmarkSolverRepair(b *testing.B) {
	for _, c := range []struct{ n, r int }{{80, 10}, {400, 6}} {
		g, err := rrg.Regular(rand.New(rand.NewSource(1)), c.n, c.r)
		if err != nil {
			b.Fatal(err)
		}
		m := g.NumArcs()
		prep := func() (*graph.DijkstraScratch, []float64, *rand.Rand) {
			lens := make([]float64, m)
			rng := rand.New(rand.NewSource(2))
			for a := range lens {
				lens[a] = 1 + 1e-3*rng.Float64()
			}
			d := g.NewDijkstraScratch()
			d.Run(0, lens, nil)
			return d, lens, rng
		}
		growBatch := func(lens []float64, rng *rand.Rand, changed []int32) []int32 {
			changed = changed[:0]
			for k := 0; k < 12; k++ {
				a := int32(rng.Intn(m))
				lens[a] *= 1 + 1e-9
				changed = append(changed, a)
			}
			return changed
		}
		b.Run(fmt.Sprintf("n=%d/repair", c.n), func(b *testing.B) {
			d, lens, rng := prep()
			var changed []int32
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				changed = growBatch(lens, rng, changed)
				if !d.Repair(lens, changed) {
					b.Fatal("repair refused")
				}
			}
		})
		b.Run(fmt.Sprintf("n=%d/rebuild", c.n), func(b *testing.B) {
			d, lens, rng := prep()
			var changed []int32
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				changed = growBatch(lens, rng, changed)
				d.Run(0, lens, nil)
			}
		})
	}
}

func BenchmarkRRGGeneration(b *testing.B) {
	for _, c := range []struct{ n, r int }{{40, 10}, {200, 10}, {1000, 4}} {
		b.Run(fmt.Sprintf("n=%d_r=%d", c.n, c.r), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rrg.Regular(rng, c.n, c.r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTwoClusterGeneration(b *testing.B) {
	degA := make([]int, 20)
	degB := make([]int, 40)
	for i := range degA {
		degA[i] = 12
	}
	for i := range degB {
		degB[i] = 6
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rrg.TwoCluster(rng, rrg.TwoClusterSpec{
			DegA: degA, DegB: degB, CrossLinks: 60, LinkCap: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: bisection bandwidth estimation, dominated by the
// Kernighan–Lin refinement (incremental swap gains since PR 1).
func BenchmarkBisectionBandwidth(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, 200, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v := maxflow.BisectionBandwidth(g, 4); v <= 0 {
			b.Fatal("non-positive bisection estimate")
		}
	}
}

func BenchmarkASPL(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, 200, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ASPL(); !ok {
			b.Fatal("disconnected")
		}
	}
}

func BenchmarkPacketSim(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g, err := rrg.Regular(rng, 24, 6)
	if err != nil {
		b.Fatal(err)
	}
	var flows []packet.FlowSpec
	for i := 0; i < 24; i++ {
		flows = append(flows, packet.FlowSpec{Src: i, Dst: (i + 11) % 24})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := packet.Simulate(g, flows, packet.Config{
			SubflowsPerFlow: 4, Warmup: 20, Measure: 100,
		}, rand.New(rand.NewSource(2))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRewiredVL2Build(b *testing.B) {
	cfg := topo.VL2Config{DA: 12, DI: 16}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topo.RewiredVL2(rng, cfg, cfg.NumToRs()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the Fig. 12 headline at one scale — rewired VL2 vs VL2
// throughput at the designed size (not the full binary search).
func BenchmarkVL2VsRewiredThroughput(b *testing.B) {
	cfg := topo.VL2Config{DA: 8, DI: 8}
	vl2, err := topo.VL2(cfg)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rew, err := topo.RewiredVL2(rng, cfg, cfg.NumToRs())
	if err != nil {
		b.Fatal(err)
	}
	for name, g := range map[string]*graph.Graph{"vl2": vl2, "rewired": rew} {
		b.Run(name, func(b *testing.B) {
			tm := traffic.Permutation(rand.New(rand.NewSource(2)), traffic.HostsOf(g))
			for i := 0; i < b.N; i++ {
				if _, err := mcf.Solve(g, tm.Flows, mcf.Options{Epsilon: 0.1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: optimal flow routing vs static ECMP vs Valiant load balancing
// on the same instance — the routing-quality gap that §8.2's MPTCP result
// closes dynamically.
func BenchmarkRoutingModels(b *testing.B) {
	g, flows := solverInstance(b, 40, 10, 5)
	b.Run("optimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mcf.Solve(g, flows, mcf.Options{Epsilon: 0.1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ecmp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := routing.ECMP(g, flows); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vlb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := routing.VLB(g, flows); err != nil {
				b.Fatal(err)
			}
		}
	})
}
