// Command flowsolve computes the maximum concurrent flow throughput of a
// topology under a chosen traffic matrix.
//
// Usage:
//
//	topogen -kind rrg -n 40 -r 10 -servers 200 -format json > g.json
//	flowsolve -graph g.json -tm permutation [-eps 0.05] [-seed 1] [-detail] [-verify]
//
// Traffic matrices: permutation | all-to-all | chunky:<fraction>.
// With -detail, per-link-class utilization and the §6.1 decomposition are
// printed alongside the throughput. With -verify, the solve records its
// path decomposition and the internal/flowcheck verifier replays
// conservation, capacity, demand proportionality, and the primal-dual
// ε-gap from first principles, printing the report (non-zero exit on
// failure).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/flowcheck"
	"repro/internal/graph"
	"repro/internal/mcf"
	"repro/internal/routing"
	"repro/internal/store"
	"repro/internal/traffic"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to a JSON graph (from topogen -format json)")
		tmName    = flag.String("tm", "permutation", "traffic matrix: permutation|all-to-all|chunky:<frac>")
		eps       = flag.Float64("eps", 0.05, "solver epsilon")
		seed      = flag.Int64("seed", 1, "RNG seed for the traffic matrix")
		detail    = flag.Bool("detail", false, "print decomposition and per-class utilization")
		lpOut     = flag.String("lp", "", "also write the CPLEX LP file for this instance (TopoBench parity)")
		ecmp      = flag.Bool("ecmp", false, "also report static ECMP-over-shortest-paths throughput")
		verify    = flag.Bool("verify", false, "independently verify the flow (conservation, capacity, demand, ε-gap) and print the report")
		cacheDir  = flag.String("cache-dir", "", "memoize throughputs in a persistent result store keyed on (graph bytes, tm, eps, seed)")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// Open the store before any heavy work: an unusable cache dir is a
	// clean non-zero exit, not a panic mid-solve.
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
	}
	data, err := os.ReadFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	var g graph.Graph
	if err := json.Unmarshal(data, &g); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", *graphPath, err))
	}
	if g.TotalServers() == 0 {
		fatal(fmt.Errorf("graph has no servers attached; traffic would be empty"))
	}

	rng := rand.New(rand.NewSource(*seed))
	h := traffic.HostsOf(&g)
	var tm *traffic.Matrix
	switch {
	case *tmName == "permutation":
		tm = traffic.Permutation(rng, h)
	case *tmName == "all-to-all":
		tm = traffic.AllToAll(h)
	case strings.HasPrefix(*tmName, "chunky:"):
		frac, err := strconv.ParseFloat(strings.TrimPrefix(*tmName, "chunky:"), 64)
		if err != nil {
			fatal(fmt.Errorf("bad chunky fraction: %w", err))
		}
		tm, err = traffic.Chunky(rng, h, frac)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown traffic matrix %q", *tmName))
	}

	if *lpOut != "" {
		f, err := os.Create(*lpOut)
		if err != nil {
			fatal(err)
		}
		if err := mcf.WriteLP(f, &g, tm.Flows); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("lp written:   %s\n", *lpOut)
	}

	// The solve is a pure function of (graph bytes, traffic name, eps,
	// seed); with -cache-dir that content address memoizes the throughput
	// across processes. Modes needing the full result object still solve.
	var cacheKey string
	if st != nil {
		cacheKey = fmt.Sprintf("flowsolve|graph=%x|tm=%s|eps=%g|seed=%d",
			sha256.Sum256(data), *tmName, *eps, *seed)
		if !*detail && !*verify && !*ecmp {
			if vals, ok := st.Load(cacheKey); ok && len(vals) == 1 {
				fmt.Printf("throughput:   %.5f per unit demand (cached)\n", vals[0])
				fmt.Printf("commodities:  %d (%d server flows, %d colocated)\n",
					len(tm.Flows), tm.ServerFlows, tm.Colocated)
				return
			}
		}
	}

	res, err := mcf.Solve(&g, tm.Flows, mcf.Options{Epsilon: *eps, RecordPaths: *verify})
	if err != nil {
		fatal(err)
	}
	if st != nil {
		if err := st.Save(cacheKey, []float64{res.Throughput}); err != nil {
			fmt.Fprintln(os.Stderr, "flowsolve: cache save:", err)
		}
	}
	fmt.Printf("throughput:   %.5f per unit demand\n", res.Throughput)
	fmt.Printf("commodities:  %d (%d server flows, %d colocated)\n",
		len(tm.Flows), tm.ServerFlows, tm.Colocated)
	fmt.Printf("phases:       %d (%d tree builds, %d repairs)\n", res.Phases, res.TreeBuilds, res.TreeRepairs)
	fmt.Printf("tree engine:  %d prebuilt concurrently at phase starts, %d bucket-queue builds\n",
		res.TreePrebuilds, res.BucketBuilds)
	if *verify {
		rep, err := flowcheck.Verify(&g, tm.Flows, res, flowcheck.Options{})
		if err != nil {
			fatal(err)
		}
		fmt.Print(rep)
		if !rep.OK() {
			fatal(rep.Err())
		}
	}
	if *ecmp {
		er, err := routing.ECMP(&g, tm.Flows)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("ecmp:         %.5f per unit demand (%.1f%% of optimal, %.1f paths/flow)\n",
			er.Throughput, 100*er.Throughput/res.Throughput, er.PathsPerFlow)
	}
	if *detail {
		d := analysis.Decompose(&g, res)
		fmt.Printf("capacity:     %.0f\n", d.Capacity)
		fmt.Printf("utilization:  %.4f\n", d.Utilization)
		fmt.Printf("spl:          %.4f\n", d.SPL)
		fmt.Printf("stretch:      %.4f\n", d.Stretch)
		fmt.Println("per-class utilization:")
		cu := analysis.ClassUtilization(&g, res)
		for _, p := range analysis.ClassPairs(&g) {
			fmt.Printf("  class %s: %.4f\n", p, cu[p])
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flowsolve:", err)
	os.Exit(1)
}
