// Command topogen generates and describes topologies.
//
// Usage:
//
//	topogen -kind rrg -n 40 -r 10 -servers 200 [-format json|dot|stats]
//	topogen -kind vl2 -da 12 -di 16
//	topogen -kind rewired-vl2 -da 12 -di 16 -tors 60 -seed 7
//	topogen -kind fattree -k 8
//	topogen -kind hypercube -dim 9
//	topogen -kind torus -a 8 -b 8
//	topogen -kind hetero -large 20 -small 40 -plarge 30 -psmall 10 -servers 450
//
// Formats: "stats" (default) prints size, degree, ASPL, diameter, and the
// relevant bounds; "dot" emits Graphviz; "json" emits the graph's JSON
// serialization (readable by flowsolve).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/bounds"
	"repro/internal/graph"
	"repro/internal/hetero"
	"repro/internal/rrg"
	"repro/internal/topo"
)

func main() {
	var (
		kind    = flag.String("kind", "rrg", "topology: rrg|vl2|rewired-vl2|fattree|hypercube|torus|complete|hetero")
		n       = flag.Int("n", 40, "switch count (rrg, complete)")
		r       = flag.Int("r", 10, "network degree (rrg)")
		servers = flag.Int("servers", 0, "total servers to attach (rrg, hetero)")
		da      = flag.Int("da", 12, "VL2 aggregation switch ports")
		di      = flag.Int("di", 16, "VL2 core switch ports")
		tors    = flag.Int("tors", 0, "ToR count (rewired-vl2; default DA*DI/4)")
		k       = flag.Int("k", 8, "fat-tree arity (even)")
		dim     = flag.Int("dim", 9, "hypercube dimension")
		ta      = flag.Int("a", 8, "torus rows")
		tb      = flag.Int("b", 8, "torus cols")
		nLarge  = flag.Int("large", 20, "hetero: large switch count")
		nSmall  = flag.Int("small", 40, "hetero: small switch count")
		pLarge  = flag.Int("plarge", 30, "hetero: large switch ports")
		pSmall  = flag.Int("psmall", 10, "hetero: small switch ports")
		xcross  = flag.Float64("cross", 1, "hetero: cross-cluster ratio")
		seed    = flag.Int64("seed", 1, "RNG seed")
		format  = flag.String("format", "stats", "output: stats|dot|json")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))

	var g *graph.Graph
	var err error
	switch *kind {
	case "rrg":
		g, err = rrg.Regular(rng, *n, *r)
		if err == nil && *servers > 0 {
			per := *servers / *n
			for u := 0; u < *n; u++ {
				g.SetServers(u, per)
			}
		}
	case "vl2":
		g, err = topo.VL2(topo.VL2Config{DA: *da, DI: *di})
	case "rewired-vl2":
		t := *tors
		if t == 0 {
			t = *da * *di / 4
		}
		g, err = topo.RewiredVL2(rng, topo.VL2Config{DA: *da, DI: *di}, t)
	case "fattree":
		g, err = topo.FatTree(*k)
	case "hypercube":
		g, err = topo.Hypercube(*dim)
	case "torus":
		g, err = topo.Torus2D(*ta, *tb)
	case "complete":
		g, err = topo.Complete(*n)
	case "hetero":
		g, err = hetero.Build(rng, hetero.Config{
			NumLarge: *nLarge, NumSmall: *nSmall,
			PortsLarge: *pLarge, PortsSmall: *pSmall,
			Servers: *servers, ServersPerLarge: -1, ServersPerSmall: -1,
			ServerRatio: 1, CrossRatio: *xcross,
		})
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	switch *format {
	case "dot":
		fmt.Print(g.DOT(*kind))
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(g); err != nil {
			fatal(err)
		}
	case "stats":
		printStats(g)
	default:
		fatal(fmt.Errorf("unknown format %q", *format))
	}
}

func printStats(g *graph.Graph) {
	aspl, connected := g.ASPL()
	diam, _ := g.Diameter()
	fmt.Printf("nodes:      %d\n", g.N())
	fmt.Printf("links:      %d\n", g.NumLinks())
	fmt.Printf("servers:    %d\n", g.TotalServers())
	fmt.Printf("capacity:   %.0f (both directions)\n", g.TotalCapacity())
	fmt.Printf("connected:  %v\n", connected)
	fmt.Printf("aspl:       %.4f\n", aspl)
	fmt.Printf("diameter:   %d\n", diam)
	if r, regular := g.IsRegular(); regular && r > 1 {
		lb := bounds.ASPLLowerBound(g.N(), r)
		fmt.Printf("regular:    degree %d\n", r)
		fmt.Printf("aspl bound: %.4f (observed/bound = %.4f)\n", lb, aspl/lb)
		if s := g.TotalServers(); s > 0 {
			fmt.Printf("throughput bound (permutation): %.4f per flow\n",
				bounds.ThroughputUpperBound(g.N(), r, s))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topogen:", err)
	os.Exit(1)
}
