// Command topobench regenerates the paper's figures, runs arbitrary
// topology-evaluation scenarios, and serves them over HTTP.
//
// Usage:
//
//	topobench -fig 6a [-runs 20] [-seed 1] [-eps 0.08] [-quick] [-o out.tsv]
//	topobench -list
//	topobench -all -quick -o results/
//	topobench -scenario "topo=rrg:n=400,deg=10 traffic=permutation eval=mcf sweep=deg:4..16"
//	topobench -scenario "..." -json -cache-dir ~/.cache/topobench
//	topobench -scenario-list
//	topobench serve -addr :8080 -cache-dir /var/lib/topobench [-jobs 8] [-store-max-bytes 1e9] [-trace-sample 0.01] [-log-format json]
//	topobench submit -server http://127.0.0.1:8080 -grid "topo=... traffic=... eval=..." [-o out.json]
//	topobench submit -server http://127.0.0.1:8080 -job <id>
//	topobench loadgen -server http://127.0.0.1:8080 -rate 300 -duration 5s [-miss 0.1] [-json]
//
// The submit subcommand drives the serve daemon's async job API
// (POST /v1/jobs): the grid is submitted as a detached job, progress is
// polled (and printed to stderr), and the finished canonical JSON — the
// same bytes a synchronous /v1/eval would return — is written out. With
// -job, an existing job (e.g. one submitted before a server restart) is
// re-polled to completion instead.
//
// The loadgen subcommand benchmarks a running daemon: a deterministic
// seeded open-loop load (zipf key popularity over a warm universe,
// configurable hit/miss mix, fixed arrival rate) reporting RPS and
// p50/p95/p99 latency measured from each request's scheduled arrival —
// see internal/loadgen. Serve-side, two observability switches matter for
// load work: `serve -pprof` exposes net/http/pprof profiling handlers
// under /debug/pprof/ (off by default: profiles are an operator tool, not
// part of the public API surface), and `serve -resp-cache-bytes` sizes
// the response-byte cache that answers warm grids without re-marshaling
// (0 = 64 MiB, negative disables; watch
// topobench_response_bytes_cache_{hits,misses,evictions}_total and the
// topobench_request_seconds histogram on /metrics). Request tracing is
// on by default at a 0.1% sample rate (`serve -trace-sample`, with
// `-trace-slow` always capturing slow requests): sampled requests carry
// an X-Trace-Id response header and land in GET /debug/traces with
// per-phase solver and store-tier spans; loadgen -json records the
// trace ids of the run's slowest requests so the tail can be looked up
// directly. Every subcommand takes -log-format text|json for its
// structured (log/slog) diagnostics on stderr.
//
// With -cache-dir, the content-addressed solve cache is tiered onto a
// persistent result store (internal/store): results computed by ANY
// earlier process with the same cache dir are reused instead of
// re-solved, and cache + store statistics are printed at exit. The serve
// subcommand exposes the same engine as a long-running JSON service (see
// internal/service for the API); -json prints a -scenario grid in the
// service's canonical response encoding, so batch and served results can
// be compared byte-for-byte.
//
// The -scenario mode executes a declarative grid over the scenario
// registries (see internal/scenario for the spec grammar): any registered
// topology × traffic × evaluator combination, swept over topo/traffic/eval
// parameters, with a content-addressed solve cache deduplicating repeated
// instances. Combinations no paper figure exercises work the same way,
// e.g.
//
//	topobench -scenario "topo=plrrg:n=40,avg=8,kmax=16,sfrac=0.4 traffic=hotspot:frac=0.3 eval=mcf sweep=traffic.frac:0.1,0.3,0.5"
//	topobench -scenario "topo=vl2:da=8,di=8 traffic=none eval=bisection sweep=da:4..12:2"
//
// Grid points and runs are evaluated concurrently by default (bounded by
// GOMAXPROCS); -parallel=false forces serial execution. Both modes emit
// byte-identical TSV for the same seed.
//
// Output is TSV, one block per curve, matching the series of the paper's
// figure (see DESIGN.md §4 for the per-figure index).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "submit" {
		runSubmit(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		runLoadgen(os.Args[2:])
		return
	}
	var (
		fig      = flag.String("fig", "", "figure ID to regenerate (e.g. 1a, 6c, 12a)")
		all      = flag.Bool("all", false, "regenerate every figure")
		list     = flag.Bool("list", false, "list available figure IDs")
		scen     = flag.String("scenario", "", "run a declarative scenario grid, e.g. \"topo=rrg:n=400,deg=10 traffic=permutation eval=mcf sweep=deg:4..16\"")
		scenList = flag.Bool("scenario-list", false, "list the scenario registry (topologies, traffics, evaluators)")
		runs     = flag.Int("runs", 0, "runs per data point (default: 20, or 3 with -quick; scenario default 3)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		eps      = flag.Float64("eps", 0, "flow solver epsilon (default 0.08, or 0.12 with -quick)")
		quick    = flag.Bool("quick", false, "reduced grids and run counts")
		parallel = flag.Bool("parallel", true, "evaluate grid points and runs concurrently (output is byte-identical to serial)")
		workers  = flag.Int("workers", 0, "worker count with -parallel (0 = GOMAXPROCS)")
		out      = flag.String("o", "", "output file (or directory with -all); default stdout")
		cacheDir = flag.String("cache-dir", "", "tier the solve cache onto a persistent result store in this directory")
		jsonOut  = flag.Bool("json", false, "with -scenario: emit the service's canonical JSON response instead of TSV")
		warm     = flag.Bool("warm-start", false, "with -scenario: seed delta-shaped points (failure ladders, expansion steps) from their parent's stored witness; every warm solve is flowcheck-certified")
		logFmt   = flag.String("log-format", "text", "structured log format: text or json")
	)
	flag.Parse()
	applyLogFormat(*logFmt)

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *scenList {
		fmt.Println("topologies:")
		for _, k := range scenario.TopologyKinds() {
			fmt.Println("  " + k)
		}
		fmt.Println("traffics:")
		for _, k := range scenario.TrafficKinds() {
			fmt.Println("  " + k)
		}
		fmt.Println("evaluators:")
		for _, k := range scenario.EvaluatorKinds() {
			fmt.Println("  " + k)
		}
		return
	}

	par := *workers
	if !*parallel {
		par = 1
	}
	// Bound TOTAL in-flight work (across nested grid/run/simulation
	// parallelism) to the requested worker count, not just each level.
	runner.SetMaxInFlight(par)
	// With -cache-dir, the shared solve cache persists beneath this and
	// every future invocation: an unusable dir must fail loudly here, not
	// silently degrade to re-solving everything.
	var st *store.Store
	if *cacheDir != "" {
		var err error
		st, err = store.Open(*cacheDir)
		if err != nil {
			fatal(err)
		}
		scenario.Default.SetBackend(st)
	}
	// Share one solve cache across everything this invocation runs, so
	// figures (and -all batches) reusing instances never re-solve.
	opts := experiments.Options{Runs: *runs, Seed: *seed, Epsilon: *eps, Quick: *quick, Parallel: par,
		Cache: scenario.Default}

	switch {
	case *scen != "":
		if err := runScenario(*scen, *runs, *seed, *eps, par, *out, *jsonOut, *warm); err != nil {
			fatal(err)
		}
	case *all:
		dir := *out
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, id := range experiments.IDs() {
			if err := runOne(id, opts, filepath.Join(dir, "fig"+id+".tsv")); err != nil {
				fatal(fmt.Errorf("figure %s: %w", id, err))
			}
		}
	case *fig != "":
		if err := runOne(*fig, opts, *out); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if st != nil {
		printCacheStats(scenario.Default, st)
	}
}

// runScenario parses and executes one -scenario grid. Flag values apply as
// defaults; runs/seed/eps inside the grid line win.
func runScenario(line string, runs int, seed int64, eps float64, par int, outPath string, jsonOut, warm bool) error {
	eng := &scenario.Engine{Parallel: par, Cache: scenario.Default, SkipInfeasible: true, WarmStart: warm}
	start := time.Now()
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if jsonOut {
		// The service's evaluation path and canonical encoding: the emitted
		// bytes equal a `topobench serve` response for the same grid.
		resp, err := service.EvalGrid(eng, line, service.Defaults{Runs: runs, Seed: seed, Epsilon: eps})
		if err != nil {
			return err
		}
		body, err := resp.MarshalCanonical()
		if err != nil {
			return err
		}
		if _, err := w.Write(body); err != nil {
			return err
		}
	} else {
		grid, err := scenario.ParseGrid(line)
		if err != nil {
			return err
		}
		if grid.Runs == 0 {
			grid.Runs = runs
		}
		if grid.Seed == 0 {
			grid.Seed = seed
		}
		if grid.Seed == 0 {
			// Match service.EvalGrid's normalization exactly: a zero seed
			// (even an explicit -seed 0) runs as 1, so the TSV and -json
			// paths address the same cache entries and draw the same streams.
			grid.Seed = 1
		}
		if grid.Epsilon == 0 {
			grid.Epsilon = eps
		}
		if err := grid.WriteTSV(eng, w); err != nil {
			return err
		}
	}
	cs := scenario.Default.Stats()
	logger.Info("scenario done",
		"elapsed", time.Since(start).Round(time.Millisecond),
		"cache_hits", cs.Hits, "store_hits", cs.StoreHits, "misses", cs.Misses)
	if warm {
		ws := eng.WarmStats()
		logger.Info("warm-start stats",
			"attempts", ws.Attempts, "certified", ws.Starts, "cert_fallbacks", ws.Fallbacks,
			"parent_hits", ws.ParentHits, "parent_misses", ws.ParentMisses)
	}
	return nil
}

func runOne(id string, opts experiments.Options, outPath string) error {
	runner, ok := experiments.Registry[id]
	if !ok {
		return fmt.Errorf("unknown figure %q (use -list)", id)
	}
	start := time.Now()
	figure, err := runner(opts)
	if err != nil {
		return err
	}
	logger.Info("figure done", "figure", id, "elapsed", time.Since(start).Round(time.Millisecond))
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return figure.TSV(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topobench:", err)
	os.Exit(1)
}
