// Command topobench regenerates the paper's figures.
//
// Usage:
//
//	topobench -fig 6a [-runs 20] [-seed 1] [-eps 0.08] [-quick] [-o out.tsv]
//	topobench -list
//	topobench -all -quick -o results/
//
// Grid points and runs are evaluated concurrently by default (bounded by
// GOMAXPROCS); -parallel=false forces serial execution. Both modes emit
// byte-identical TSV for the same seed.
//
// Output is TSV, one block per curve, matching the series of the paper's
// figure (see DESIGN.md §4 for the per-figure index).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/experiments"
	"repro/internal/runner"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure ID to regenerate (e.g. 1a, 6c, 12a)")
		all      = flag.Bool("all", false, "regenerate every figure")
		list     = flag.Bool("list", false, "list available figure IDs")
		runs     = flag.Int("runs", 0, "runs per data point (default: 20, or 3 with -quick)")
		seed     = flag.Int64("seed", 1, "base RNG seed")
		eps      = flag.Float64("eps", 0, "flow solver epsilon (default 0.08, or 0.12 with -quick)")
		quick    = flag.Bool("quick", false, "reduced grids and run counts")
		parallel = flag.Bool("parallel", true, "evaluate grid points and runs concurrently (output is byte-identical to serial)")
		workers  = flag.Int("workers", 0, "worker count with -parallel (0 = GOMAXPROCS)")
		out      = flag.String("o", "", "output file (or directory with -all); default stdout")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	par := *workers
	if !*parallel {
		par = 1
	}
	// Bound TOTAL in-flight work (across nested grid/run/simulation
	// parallelism) to the requested worker count, not just each level.
	runner.SetMaxInFlight(par)
	opts := experiments.Options{Runs: *runs, Seed: *seed, Epsilon: *eps, Quick: *quick, Parallel: par}

	switch {
	case *all:
		dir := *out
		if dir == "" {
			dir = "."
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		for _, id := range experiments.IDs() {
			if err := runOne(id, opts, filepath.Join(dir, "fig"+id+".tsv")); err != nil {
				fatal(fmt.Errorf("figure %s: %w", id, err))
			}
		}
	case *fig != "":
		if err := runOne(*fig, opts, *out); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(id string, opts experiments.Options, outPath string) error {
	runner, ok := experiments.Registry[id]
	if !ok {
		return fmt.Errorf("unknown figure %q (use -list)", id)
	}
	start := time.Now()
	figure, err := runner(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "figure %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
	w := os.Stdout
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return figure.TSV(w)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "topobench:", err)
	os.Exit(1)
}
