package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// runSubmit is the `topobench submit` subcommand: the client side of the
// serve daemon's async job API. It submits a grid as a detached job (or
// re-attaches to an existing job id with -job), polls its progress, and
// writes the finished canonical JSON — byte-identical to a synchronous
// POST /v1/eval for the same grid. SIGINT/SIGTERM cancels the job
// server-side before exiting, so an abandoned submit does not leave a
// solve burning.
func runSubmit(args []string) {
	fs := flag.NewFlagSet("topobench submit", flag.ExitOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "serve daemon base URL")
		grid     = fs.String("grid", "", "scenario grid line to submit")
		jobID    = fs.String("job", "", "existing job id to poll instead of submitting")
		interval = fs.Duration("interval", 500*time.Millisecond, "poll interval")
		timeout  = fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
		out      = fs.String("o", "", "output file for the result JSON (default stdout)")
		logFmt   = logFormatFlag(fs)
	)
	fs.Parse(args)
	applyLogFormat(*logFmt)
	base := strings.TrimRight(*server, "/")

	id := *jobID
	if id == "" {
		if strings.TrimSpace(*grid) == "" {
			fatal(fmt.Errorf("submit needs -grid (or -job to poll an existing job)"))
		}
		var err error
		id, err = submitJob(base, *grid)
		if err != nil {
			fatal(err)
		}
		logger.Info("job submitted", "job", id)
	}

	// Cancel the job server-side on interrupt: a detached solve nobody
	// will ever poll again should stop burning solver time.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+id, nil)
		if err == nil {
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
		logger.Info("canceled job", "job", id)
		os.Exit(1)
	}()

	body, err := pollJob(base, id, *interval, *timeout)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := w.Write(body); err != nil {
		fatal(err)
	}
}

// Submission retry policy — mirrors internal/remotestore's transport
// policy: a bounded number of attempts with full-jitter exponential
// backoff, retrying only failures that a later attempt could answer
// differently (network errors, 429 backpressure, 5xx). An authoritative
// 4xx — bad grid, malformed request — fails fast: retrying cannot change
// the answer. Retrying a POST whose accept response was lost can create a
// duplicate job; that is safe here because the daemon's flight table and
// solve cache deduplicate the actual work and both jobs yield identical
// canonical bytes.
const (
	submitAttempts    = 3
	submitBackoffBase = 50 * time.Millisecond
	submitBackoffMax  = time.Second
)

// retryableStatus reports whether an HTTP status is worth a retry
// (transient server state), as opposed to an authoritative verdict.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// submitBackoff returns the full-jitter sleep before attempt k (2-based):
// uniform over [0, min(submitBackoffMax, base·2^(k−2))].
func submitBackoff(attempt int, rng *rand.Rand) time.Duration {
	max := submitBackoffBase << (attempt - 2)
	if max > submitBackoffMax {
		max = submitBackoffMax
	}
	return time.Duration(rng.Int63n(int64(max) + 1))
}

// submitJob POSTs the grid and returns the assigned job id, retrying
// transient transport failures.
func submitJob(base, grid string) (string, error) {
	reqBody, _ := json.Marshal(struct {
		Grid string `json:"grid"`
	}{grid})
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastErr error
	for attempt := 1; attempt <= submitAttempts; attempt++ {
		if attempt > 1 {
			logger.Warn("submit retrying", "err", lastErr, "attempt", attempt, "attempts", submitAttempts)
			time.Sleep(submitBackoff(attempt, rng))
		}
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			lastErr = err
			continue
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			serr := fmt.Errorf("submitting job: %s: %s", resp.Status, strings.TrimSpace(string(body)))
			if !retryableStatus(resp.StatusCode) {
				return "", serr
			}
			lastErr = serr
			continue
		}
		var acc struct {
			Job string `json:"job"`
		}
		if err := json.Unmarshal(body, &acc); err != nil || acc.Job == "" {
			return "", fmt.Errorf("submitting job: malformed accept body %q", string(body))
		}
		return acc.Job, nil
	}
	return "", fmt.Errorf("submitting job: giving up after %d attempts: %w", submitAttempts, lastErr)
}

// pollJob polls the job's status until it is terminal and returns the
// result bytes (for done jobs) or an error carrying the recorded failure.
func pollJob(base, id string, interval, timeout time.Duration) ([]byte, error) {
	deadline := time.Time{}
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	lastDone := uint32(0)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			// A restarting server answers again soon; polling rides it out
			// (the job record survives the restart).
			logger.Warn("poll failed, retrying", "err", err)
		} else {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				return nil, fmt.Errorf("job %s: %s", id, strings.TrimSpace(string(body)))
			}
			var st struct {
				State string `json:"state"`
				Done  uint32 `json:"done"`
				Total uint32 `json:"total"`
				Error string `json:"error"`
			}
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &st) == nil {
				if st.Done != lastDone {
					lastDone = st.Done
					logger.Info("job progress", "state", st.State, "done", st.Done, "total", st.Total)
				}
				switch st.State {
				case "done":
					if b, ok, err := fetchResult(base, id); err != nil {
						return nil, err
					} else if ok {
						return b, nil
					}
					// 202: the replay is still materializing bytes; keep polling.
				case "failed", "canceled":
					return nil, fmt.Errorf("job %s %s: %s", id, st.State, st.Error)
				}
			}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s: gave up after %s", id, timeout)
		}
		time.Sleep(interval)
	}
}

// fetchResult GETs the finished bytes; ok=false means the server answered
// 202 (result not yet resident) and the caller should keep polling.
func fetchResult(base, id string) ([]byte, bool, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, false, nil // transient; outer loop retries
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, false, nil
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, true, nil
	case http.StatusAccepted:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("job %s result: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}
}
