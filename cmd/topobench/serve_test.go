package main

import (
	"testing"
	"time"
)

// TestValidateServeFlags pins the -claim-lease/-cache-dir coupling: claim
// leases live in the result-store directory, so asking for leases without
// a store must fail fast at startup instead of being silently ignored
// (the pre-fix behavior — the flag parsed fine and did nothing).
func TestValidateServeFlags(t *testing.T) {
	cases := []struct {
		name     string
		cacheDir string
		lease    time.Duration
		wantErr  bool
	}{
		{"lease without store rejected", "", 30 * time.Second, true},
		{"lease with store ok", "/tmp/cache", 30 * time.Second, false},
		{"no lease no store ok", "", 0, false},
		{"no lease with store ok", "/tmp/cache", 0, false},
	}
	for _, c := range cases {
		err := validateServeFlags(c.cacheDir, c.lease)
		if (err != nil) != c.wantErr {
			t.Errorf("%s: validateServeFlags(%q, %v) = %v, wantErr=%v",
				c.name, c.cacheDir, c.lease, err, c.wantErr)
		}
	}
}
