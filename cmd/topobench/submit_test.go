package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flakySubmitServer answers POST /v1/jobs with the scripted status codes
// in order, then accepts; it counts requests.
func flakySubmitServer(t *testing.T, failures ...int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
			http.Error(w, "bad route", http.StatusNotFound)
			return
		}
		n := int(calls.Add(1))
		if n <= len(failures) {
			http.Error(w, "scripted failure", failures[n-1])
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"job": fmt.Sprintf("job-%d", n)})
	}))
	t.Cleanup(srv.Close)
	return srv, &calls
}

// TestSubmitJobRetriesTransient: 5xx and 429 answers are retried with
// backoff until the submission lands; the accepted job id comes back.
func TestSubmitJobRetriesTransient(t *testing.T) {
	srv, calls := flakySubmitServer(t, http.StatusInternalServerError, http.StatusTooManyRequests)
	id, err := submitJob(srv.URL, "topo=rrg traffic=permutation eval=mcf")
	if err != nil {
		t.Fatal(err)
	}
	if id != "job-3" || calls.Load() != 3 {
		t.Fatalf("id=%q after %d calls, want job-3 after 3", id, calls.Load())
	}
}

// TestSubmitJobAuthoritative4xxFailsFast: a 400 is an authoritative
// verdict — retrying cannot change it, so submitJob returns after one
// request.
func TestSubmitJobAuthoritative4xxFailsFast(t *testing.T) {
	srv, calls := flakySubmitServer(t, http.StatusBadRequest, http.StatusBadRequest, http.StatusBadRequest)
	start := time.Now()
	_, err := submitJob(srv.URL, "nonsense")
	if err == nil || calls.Load() != 1 {
		t.Fatalf("err=%v after %d calls, want an error after exactly 1", err, calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("fail-fast path slept %v", elapsed)
	}
}

// TestSubmitJobGivesUpAfterRetries: persistent 5xx exhausts the attempt
// budget and surfaces the last error.
func TestSubmitJobGivesUpAfterRetries(t *testing.T) {
	srv, calls := flakySubmitServer(t,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable,
		http.StatusServiceUnavailable, http.StatusServiceUnavailable)
	_, err := submitJob(srv.URL, "topo=rrg traffic=permutation eval=mcf")
	if err == nil || !strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err=%v, want giving-up error", err)
	}
	if calls.Load() != submitAttempts {
		t.Fatalf("%d calls, want %d", calls.Load(), submitAttempts)
	}
}

// TestSubmitJobRetriesNetworkError: a dead server (connection refused) is
// a transient transport failure, retried like a 5xx.
func TestSubmitJobRetriesNetworkError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens here anymore
	if _, err := submitJob(srv.URL, "grid"); err == nil ||
		!strings.Contains(err.Error(), "giving up") {
		t.Fatalf("err=%v, want giving-up error after network retries", err)
	}
}

// TestRetryableStatus pins the retry classification: transient server
// states retry, authoritative client verdicts do not.
func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusTooManyRequests:       true,
		http.StatusInternalServerError:   true,
		http.StatusServiceUnavailable:    true,
		http.StatusBadGateway:            true,
		http.StatusBadRequest:            false,
		http.StatusNotFound:              false,
		http.StatusRequestEntityTooLarge: false,
	} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}
