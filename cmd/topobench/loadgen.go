package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/loadgen"
)

// runLoadgen is the `topobench loadgen` subcommand: a deterministic
// open-loop load generator against a running serve daemon (see
// internal/loadgen). The warm universe is -keys cheap aspl grids varying
// only their seed; -miss redirects that fraction of requests to fresh
// never-seen grids so hit/miss mixes are reproducible. Latency is
// measured from each request's scheduled arrival time, so a server that
// falls behind the requested rate shows the queueing delay it inflicts.
func runLoadgen(args []string) {
	fs := flag.NewFlagSet("topobench loadgen", flag.ExitOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "serve daemon base URL")
		rate     = fs.Float64("rate", 200, "open-loop arrival rate, requests/second")
		duration = fs.Duration("duration", 5*time.Second, "measured window; rate*duration requests are scheduled")
		conns    = fs.Int("conns", 8, "max concurrent in-flight requests")
		seed     = fs.Int64("seed", 1, "schedule RNG seed (same seed = identical request sequence)")
		keys     = fs.Int("keys", 16, "warm-universe size (distinct popular grids)")
		miss     = fs.Float64("miss", 0, "fraction of requests sent to fresh never-seen grids [0,1]")
		zipfS    = fs.Float64("zipf-s", 1.2, "zipf popularity skew (s > 1)")
		noPrime  = fs.Bool("no-prime", false, "skip priming the warm universe before the measured window")
		jsonOut  = fs.Bool("json", false, "emit the result as one JSON object instead of text")
		logFmt   = logFormatFlag(fs)
	)
	fs.Parse(args)
	applyLogFormat(*logFmt)
	if *miss < 0 || *miss > 1 {
		fatal(fmt.Errorf("-miss must be in [0,1], got %g", *miss))
	}
	if *keys < 1 {
		fatal(fmt.Errorf("-keys must be >= 1, got %d", *keys))
	}

	cfg := loadgen.Config{
		BaseURL:  *server,
		Universe: loadgenUniverse(*keys),
		Rate:     *rate,
		Duration: *duration,
		Conns:    *conns,
		Seed:     *seed,
		ZipfS:    *zipfS,
		MissFrac: *miss,
		MissGrid: loadgenMissGrid(*seed),
		Prime:    !*noPrime,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("loadgen: %d requests in %.2fs (%.1f rps), %d errors\n",
		res.Requests, res.Elapsed.Seconds(), res.RPS, res.Errors)
	statuses := make([]int, 0, len(res.Statuses))
	for st := range res.Statuses {
		statuses = append(statuses, st)
	}
	sort.Ints(statuses)
	for _, st := range statuses {
		fmt.Printf("status %d: %d\n", st, res.Statuses[st])
	}
	fmt.Printf("latency (open-loop): p50=%s p95=%s p99=%s\n", res.P50, res.P95, res.P99)
	for _, sr := range res.Slowest {
		// The tail's trace ids in the report: paste one into
		// GET /debug/traces to see where that request's time went.
		trace := sr.TraceID
		if trace == "" {
			trace = "-"
		}
		fmt.Printf("slow: %s status=%d trace=%s grid=%q\n", sr.Latency, sr.Status, trace, sr.Grid)
	}
}

// loadgenUniverse builds the warm universe: n cheap single-point aspl
// grids differing only in seed, so every key costs the same to solve and
// the measured spread is the serve path, not solver variance.
func loadgenUniverse(n int) []string {
	u := make([]string, n)
	for i := range u {
		u[i] = fmt.Sprintf("topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=aspl runs=1 seed=%d", i+1)
	}
	return u
}

// loadgenMissGrid maps miss index i to a grid no warm key uses: seeds
// start far above any universe seed, offset by the schedule seed so two
// runs with different seeds miss on different grids.
func loadgenMissGrid(seed int64) func(int) string {
	return func(i int) string {
		return fmt.Sprintf("topo=rrg:n=8,deg=3,sps=1 traffic=permutation eval=aspl runs=1 seed=%d",
			1_000_000+seed*100_000+int64(i))
	}
}
